//===- bench/ablation_preemption.cpp - Preemption vs barrier phases ----------===//
//
// Part of libsting. See DESIGN.md section 3 for the experiment index.
//
// Materializes section 4.2.2's two claims:
//
//   * preemption is what keeps compute-bound workers from starving ready
//     threads ("in its absence, long-running workers might occupy all
//     available VPs at the expense of other enqueued ready threads");
//
//   * in barrier-heavy master/slave phases, preemption can *hurt*: "if the
//     time to execute a particular set of workers is small relative to
//     the total time needed to complete the application, enabling
//     preemption may degrade performance" (citing Tucker & Gupta) — the
//     without-preemption form exists for exactly this.
//
//===----------------------------------------------------------------------===//

#include "ObsHarness.h"
#include "sting/Sting.h"

#include <benchmark/benchmark.h>

using namespace sting;
using TC = ThreadController;

namespace {

/// Barrier-phased master/slave: Phases rounds of tiny work quanta ended by
/// a full barrier. With preemption on, quantum expiry inserts pointless
/// yields between barriers; the guard variant wraps each quantum in
/// WithoutPreemption.
void BM_BarrierPhases(benchmark::State &State) {
  const bool Preempt = State.range(0) != 0;
  const bool Guarded = State.range(1) != 0;
  constexpr int Workers = 4;
  constexpr int Phases = 30;
  // Per-phase work must exceed the quantum or preemption never fires.
  constexpr int PhaseWork = 40'000;

  std::uint64_t Preempts = 0;
  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config;
    Config.NumVps = 2;
    Config.NumPps = 1;
    Config.EnablePreemption = Preempt;
    Config.DefaultQuantumNanos = 100'000; // aggressive 0.1 ms quantum
    Config.PreemptTickNanos = 50'000;
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    State.ResumeTiming();

    Vm.run([&]() -> AnyValue {
      CyclicBarrier Barrier(Workers);
      std::vector<ThreadRef> Pool;
      for (int W = 0; W != Workers; ++W)
        Pool.push_back(TC::forkThread([&]() -> AnyValue {
          for (int P = 0; P != Phases; ++P) {
            auto Quantum = [] {
              volatile long Acc = 0;
              for (int I = 0; I != PhaseWork; ++I) {
                Acc = Acc + I;
                if ((I & 255) == 0)
                  TC::checkpoint();
              }
            };
            if (Guarded) {
              WithoutPreemption Guard;
              Quantum();
            } else {
              Quantum();
            }
            Barrier.arriveAndWait();
          }
          return AnyValue();
        }));
      waitForAll(Pool);
      return AnyValue();
    });

    State.PauseTiming();
    Preempts += Vm.clock().preemptsRaised();
    sting::bench::ObsHarness::instance().capture("barrier_phases", Vm);
    State.ResumeTiming();
  }
  State.counters["preempts"] = benchmark::Counter(
      static_cast<double>(Preempts), benchmark::Counter::kAvgIterations);
  State.SetLabel(!Preempt          ? "preemption-off"
                 : Guarded         ? "preemption-on+guard"
                                   : "preemption-on");
}

/// The flip side: a spinner sharing one VP with queued short tasks. With
/// preemption off the spinner starves them until it finishes; with it on,
/// the short tasks finish almost immediately. Measures time until all
/// short tasks complete.
void BM_SpinnerFairness(benchmark::State &State) {
  const bool Preempt = State.range(0) != 0;

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config;
    Config.NumVps = 1;
    Config.NumPps = 1;
    Config.EnablePreemption = Preempt;
    Config.DefaultQuantumNanos = 200'000;
    Config.PreemptTickNanos = 100'000;
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    State.ResumeTiming();

    Vm.run([&]() -> AnyValue {
      std::atomic<bool> ShortDone{false};
      // A compute-bound spinner with checkpoints (~2.5 ms of work).
      ThreadRef Spinner = TC::forkThread([&]() -> AnyValue {
        volatile long Acc = 0;
        for (int I = 0; I != 2'000'000 && !ShortDone.load(); ++I) {
          Acc = Acc + I;
          if ((I & 1023) == 0)
            TC::checkpoint();
        }
        return AnyValue();
      });
      // Short tasks queued behind it.
      std::vector<ThreadRef> Shorts;
      SpawnOptions Opts;
      Opts.Stealable = false;
      for (int I = 0; I != 8; ++I)
        Shorts.push_back(
            TC::forkThread([]() -> AnyValue { return AnyValue(); }, Opts));
      waitForAll(Shorts);
      ShortDone.store(true);
      TC::threadWait(*Spinner);
      return AnyValue();
    });

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture("spinner_fairness", Vm);
    State.ResumeTiming();
  }
  State.SetLabel(Preempt ? "preemption-on" : "preemption-off");
}

} // namespace

BENCHMARK(BM_BarrierPhases)
    ->ArgNames({"preempt", "guard"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SpinnerFairness)
    ->ArgName("preempt")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

STING_BENCH_MAIN();
