//===- bench/app_router.cpp - Sharded tuple-space router soak -----------------===//
//
// Part of libsting. See DESIGN.md section 3 for the experiment index.
//
// Load generator for the src/dist subsystem (DESIGN.md sections 13-14):
// one logical tuple space served by three in-process shard VMs behind a
// SpaceRouter. Five workloads:
//
//   * routed token swarm — K workers each looping put(key, "tok", v) /
//     take(key, ...) against concrete keys spread over every shard; the
//     run fails on any lost or duplicated token (sum conservation);
//
//   * wildcard fan-out — takers match with a formal in the key field, so
//     every round arms a leg on every shard and retracts the losers; the
//     row surfaces the exactly-once ledger as counters;
//
//   * kill-one-shard failover — the same token swarm, but one shard is
//     shut down between soak halves. Every request in the second half
//     must still complete (puts fail over in ring order, registrations
//     reroute off the open breaker), the sum check still balances, and
//     the run fails unless at least one failover actually happened. This
//     row runs single-copy: resident tuples die with their shard, so it
//     drains to rest zero before the kill and measures the routing
//     plane's recovery, not durability.
//
//   * replicated put — the same put stream at replication factor 1 and 2
//     side by side; the factor:2 row pays one backup forward per put
//     (DESIGN.md section 14) and the pair bounds that overhead.
//
//   * kill-primary — factor 2, tuples left *resident* on their primary
//     when it dies. Every take must still find its tuple via the backup's
//     promotion: zero tuple loss, exact sum, promotions counted. This is
//     the durability row the failover row disclaims.
//
//===----------------------------------------------------------------------===//

#include "ObsHarness.h"
#include "dist/Replica.h"
#include "dist/Shard.h"
#include "dist/SpaceRouter.h"
#include "sting/Sting.h"
#include "support/Clock.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

using namespace sting;
using namespace sting::dist;
using TC = ThreadController;

namespace {

VmConfig routerConfig() {
  VmConfig Config;
  Config.NumVps = 4;
  Config.NumPps = 2;
  Config.EnablePreemption = true;
  return Config;
}

/// Three in-process shards plus a router over them (the bench twin of the
/// RouterTest fixture). Lives inside Vm.run — blocking members park.
struct ShardedSpace {
  std::vector<TupleSpaceRef> Spaces;
  std::vector<ReplicaRef> Reps;
  std::vector<std::unique_ptr<net::Server>> Servers;
  std::unique_ptr<SpaceRouter> Router;

  ShardedSpace(VirtualMachine &Vm, IoService &Io, std::size_t N,
               std::size_t Factor = 1) {
    RouterConfig RC;
    std::vector<net::ClientConfig> Ring;
    for (std::size_t S = 0; S != N; ++S) {
      Spaces.push_back(TupleSpace::create());
      ShardConfig SC;
      if (Factor >= 2) {
        Reps.push_back(std::make_shared<Replica>(Vm, Io, Spaces[S], S));
        SC.Rep = Reps[S];
      }
      Servers.push_back(
          net::Server::start(Vm, Io, shardHandler(Spaces[S], SC)));
      net::ClientConfig CC;
      CC.Port = Servers[S]->port();
      CC.MaxAttempts = 2;
      CC.ConnectTimeoutNanos = 200'000'000;
      CC.RequestTimeoutNanos = 2'000'000'000;
      // Open fast against a dead shard so the failover rows spend their
      // time routing, not timing out against the same corpse repeatedly.
      CC.Breaker.FailureThreshold = 2;
      CC.Breaker.OpenCooldownNanos = 50'000'000;
      Ring.push_back(CC);
      RC.Shards.push_back(CC);
    }
    for (auto &R : Reps)
      R->bind(Ring);
    RC.ReplicationFactor = Factor;
    Router = std::make_unique<SpaceRouter>(Vm, Io, std::move(RC));
  }

  bool valid() const {
    for (const auto &S : Servers)
      if (!S)
        return false;
    return true;
  }

  void teardown() {
    Router->shutdown();
    for (auto &S : Servers)
      if (S)
        S->shutdown();
    for (auto &R : Reps)
      R->shutdown();
  }
};

/// A fixnum key whose home shard (routeKey % Shards) is \p Want — spread
/// is a stable hash, so the bench scans rather than assumes.
std::int64_t keyHomedOn(std::size_t Want, std::size_t Shards) {
  for (std::int64_t K = 0;; ++K) {
    Tuple T;
    T.emplace_back(K);
    T.emplace_back("tok");
    T.emplace_back(0);
    auto H = routeKey(T);
    if (H && *H % Shards == Want)
      return K;
  }
}

/// One put/take round trip for worker key \p Key carrying \p Value.
/// \returns the taken value, or -1 on any failure.
std::int64_t roundTrip(SpaceRouter &R, std::int64_t Key, std::int64_t Value) {
  if (R.put(makeTuple(Key, "tok", Value)) != Status::Ok)
    return -1;
  Tuple Tmpl;
  Tmpl.emplace_back(Key);
  Tmpl.emplace_back("tok");
  Tmpl.push_back(formal(0));
  Match M;
  if (R.takeUntil(std::move(Tmpl), Deadline::in(10'000'000'000), M) !=
      Status::Ok)
    return -1;
  return M.binding(0).asFixnum();
}

/// Routed token swarm: \p range(0) workers, each owning one concrete key
/// (keys spread across all three shards), looping put/take. Conservation:
/// the sum of taken values must equal the sum of put values.
void BM_RouterSwarm(benchmark::State &State) {
  const int Workers = static_cast<int>(State.range(0));
  constexpr int Rounds = 32;
  constexpr std::size_t Shards = 3;

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config = routerConfig();
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    IoService Io;
    State.ResumeTiming();

    AnyValue R = Vm.run([&]() -> AnyValue {
      ShardedSpace SS(Vm, Io, Shards);
      if (!SS.valid())
        return AnyValue(false);
      std::atomic<long long> Sum{0};
      std::vector<ThreadRef> Pool;
      for (int W = 0; W != Workers; ++W)
        Pool.push_back(TC::forkThread([&, W]() -> AnyValue {
          const std::int64_t Key = keyHomedOn(W % Shards, Shards) + 100 * W;
          for (int I = 0; I != Rounds; ++I) {
            std::int64_t V = roundTrip(*SS.Router, Key, W * Rounds + I);
            if (V < 0)
              return AnyValue(false);
            Sum.fetch_add(V, std::memory_order_relaxed);
          }
          return AnyValue(true);
        }));
      bool Ok = true;
      for (ThreadRef &T : Pool)
        Ok = Ok && TC::threadValue(*T).as<bool>();
      const long long Total = (long long)Workers * Rounds;
      Ok = Ok && Sum.load() == Total * (Total - 1) / 2;
      SS.teardown();
      return AnyValue(Ok);
    });
    if (!R.as<bool>()) {
      State.SkipWithError("token lost or duplicated through the router");
      break;
    }

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture("router_swarm", Vm);
    State.ResumeTiming();
  }
  State.SetItemsProcessed(State.iterations() * State.range(0) * Rounds * 2);
}

/// Wildcard fan-out: producers put id-led tokens, takers match with a
/// formal key so every take arms a leg per shard and retracts the losers.
/// The exactly-once ledger (Fanouts == Deliveries + Retracts + Orphans at
/// rest) is the conservation property; its terms surface as counters.
void BM_RouterFanout(benchmark::State &State) {
  const int Takers = static_cast<int>(State.range(0));
  constexpr int Rounds = 16;
  std::uint64_t Fanouts = 0, Retracts = 0, Orphans = 0;

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config = routerConfig();
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    IoService Io;
    State.ResumeTiming();

    AnyValue R = Vm.run([&]() -> AnyValue {
      ShardedSpace SS(Vm, Io, 3);
      if (!SS.valid())
        return AnyValue(false);
      std::atomic<long long> Sum{0};
      std::vector<ThreadRef> Pool;
      for (int W = 0; W != Takers; ++W) {
        Pool.push_back(TC::forkThread([&, W]() -> AnyValue {
          for (int I = 0; I != Rounds; ++I)
            if (SS.Router->put(makeTuple(W * Rounds + I, "fan",
                                         W * Rounds + I)) != Status::Ok)
              return AnyValue(false);
          return AnyValue(true);
        }));
        Pool.push_back(TC::forkThread([&]() -> AnyValue {
          for (int I = 0; I != Rounds; ++I) {
            Tuple Tmpl;
            Tmpl.push_back(formal(0));
            Tmpl.emplace_back("fan");
            Tmpl.push_back(formal(1));
            Match M;
            if (SS.Router->takeUntil(std::move(Tmpl),
                                     Deadline::in(10'000'000'000),
                                     M) != Status::Ok)
              return AnyValue(false);
            Sum.fetch_add(M.binding(1).asFixnum(), std::memory_order_relaxed);
          }
          return AnyValue(true);
        }));
      }
      bool Ok = true;
      for (ThreadRef &T : Pool)
        Ok = Ok && TC::threadValue(*T).as<bool>();
      const long long Total = (long long)Takers * Rounds;
      Ok = Ok && Sum.load() == Total * (Total - 1) / 2;
      // Let every losing leg resolve before reading the ledger.
      Deadline D = Deadline::in(5'000'000'000);
      while (SS.Router->pendingLegs() != 0 && !D.expired())
        TC::yieldProcessor();
      RouterStatsSnapshot S = SS.Router->statsSnapshot();
      Ok = Ok && S.Fanouts == S.Deliveries + S.Retracts + S.Orphans;
      Fanouts += S.Fanouts;
      Retracts += S.Retracts;
      Orphans += S.Orphans;
      SS.teardown();
      return AnyValue(Ok);
    });
    if (!R.as<bool>()) {
      State.SkipWithError("fan-out ledger failed to balance");
      break;
    }

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture("router_fanout", Vm);
    State.ResumeTiming();
  }
  State.counters["fanouts"] = static_cast<double>(Fanouts);
  State.counters["retracts"] = static_cast<double>(Retracts);
  State.counters["orphans"] = static_cast<double>(Orphans);
  State.SetItemsProcessed(State.iterations() * State.range(0) * Rounds * 2);
}

/// Kill-one-shard failover: soak, drain to rest-zero, shut shard 2 down,
/// soak again with the same keys — including ones homed on the corpse.
/// Every second-half request must complete via failover/reroute, the sum
/// must balance, and at least one RouterFailover must have happened.
void BM_RouterFailover(benchmark::State &State) {
  const int Workers = static_cast<int>(State.range(0));
  constexpr int Rounds = 16;
  constexpr std::size_t Shards = 3;
  std::uint64_t Failovers = 0;

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config = routerConfig();
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    IoService Io;
    State.ResumeTiming();

    AnyValue R = Vm.run([&]() -> AnyValue {
      ShardedSpace SS(Vm, Io, Shards);
      if (!SS.valid())
        return AnyValue(false);

      std::atomic<long long> Sum{0};
      auto soak = [&](int Base) -> bool {
        std::vector<ThreadRef> Pool;
        for (int W = 0; W != Workers; ++W)
          Pool.push_back(TC::forkThread([&, W, Base]() -> AnyValue {
            // Every worker's key homes on the victim shard in turn-about
            // with the survivors, so the second half is guaranteed to
            // route operations at the corpse.
            const std::int64_t Key = keyHomedOn(W % Shards, Shards) + 100 * W;
            for (int I = 0; I != Rounds; ++I) {
              std::int64_t V =
                  roundTrip(*SS.Router, Key, Base + W * Rounds + I);
              if (V < 0)
                return AnyValue(false);
              Sum.fetch_add(V, std::memory_order_relaxed);
            }
            return AnyValue(true);
          }));
        bool Ok = true;
        for (ThreadRef &T : Pool)
          Ok = Ok && TC::threadValue(*T).as<bool>();
        return Ok;
      };

      // First half, all shards up. Each round trip ends in a take, so
      // joining the workers leaves zero tuples at rest anywhere — nothing
      // resident for the kill to destroy.
      if (!soak(0))
        return AnyValue(false);

      SS.Servers[2]->shutdown();
      SS.Servers[2].reset();

      // Second half: puts homed on shard 2 fail over in ring order, and
      // the matching registrations reroute once the breaker opens.
      if (!soak(Workers * Rounds))
        return AnyValue(false);

      const long long Total = 2LL * Workers * Rounds;
      bool Ok = Sum.load() == Total * (Total - 1) / 2;
      RouterStatsSnapshot S = SS.Router->statsSnapshot();
      Ok = Ok && S.Failovers >= 1;
      Failovers += S.Failovers;
      SS.teardown();
      return AnyValue(Ok);
    });
    if (!R.as<bool>()) {
      State.SkipWithError(
          "failover leaked, duplicated, or never left the home shard");
      break;
    }

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture("router_failover", Vm);
    State.ResumeTiming();
  }
  State.counters["failovers"] = static_cast<double>(Failovers);
  State.SetItemsProcessed(State.iterations() * State.range(0) * Rounds * 4);
}

/// Replicated put stream: \p range(0) is the replication factor. Four
/// workers each put/take Rounds concrete-keyed tokens; at factor 2 every
/// put pays a synchronous backup forward and every delivered take a
/// retract forward, so the factor:2/factor:1 ratio bounds the replication
/// overhead on the whole round trip. Conservation still holds.
void BM_RouterReplicatedPut(benchmark::State &State) {
  const std::size_t Factor = static_cast<std::size_t>(State.range(0));
  constexpr int Workers = 4;
  constexpr int Rounds = 32;
  constexpr std::size_t Shards = 3;
  std::uint64_t Unreplicated = 0;

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config = routerConfig();
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    IoService Io;
    State.ResumeTiming();

    AnyValue R = Vm.run([&]() -> AnyValue {
      ShardedSpace SS(Vm, Io, Shards, Factor);
      if (!SS.valid())
        return AnyValue(false);
      std::atomic<long long> Sum{0};
      std::vector<ThreadRef> Pool;
      for (int W = 0; W != Workers; ++W)
        Pool.push_back(TC::forkThread([&, W]() -> AnyValue {
          const std::int64_t Key = keyHomedOn(W % Shards, Shards) + 100 * W;
          for (int I = 0; I != Rounds; ++I) {
            std::int64_t V = roundTrip(*SS.Router, Key, W * Rounds + I);
            if (V < 0)
              return AnyValue(false);
            Sum.fetch_add(V, std::memory_order_relaxed);
          }
          return AnyValue(true);
        }));
      bool Ok = true;
      for (ThreadRef &T : Pool)
        Ok = Ok && TC::threadValue(*T).as<bool>();
      const long long Total = (long long)Workers * Rounds;
      Ok = Ok && Sum.load() == Total * (Total - 1) / 2;
      RouterStatsSnapshot S = SS.Router->statsSnapshot();
      // Healthy backups: every replicated put must really be two-copy.
      Ok = Ok && S.Unreplicated == 0;
      Unreplicated += S.Unreplicated;
      SS.teardown();
      return AnyValue(Ok);
    });
    if (!R.as<bool>()) {
      State.SkipWithError("replicated round trip lost a token or "
                          "degraded to single-copy");
      break;
    }

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture("router_repl_put", Vm);
    State.ResumeTiming();
  }
  State.counters["unreplicated"] = static_cast<double>(Unreplicated);
  State.SetItemsProcessed(State.iterations() * Workers * Rounds * 2);
}

/// Kill-primary durability: factor 2, every token left *resident* on its
/// slot-0 primary when that shard dies with no warning. Every take must
/// still find its tuple — the router promotes the backup, which
/// materializes the forwarded copies — with zero tuple loss and an exact
/// sum. The row fails unless at least one promotion happened.
void BM_RouterKillPrimary(benchmark::State &State) {
  const int Tokens = static_cast<int>(State.range(0));
  constexpr std::size_t Shards = 3;
  std::uint64_t Promotions = 0;

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config = routerConfig();
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    IoService Io;
    State.ResumeTiming();

    AnyValue R = Vm.run([&]() -> AnyValue {
      ShardedSpace SS(Vm, Io, Shards, /*Factor=*/2);
      if (!SS.valid())
        return AnyValue(false);

      // Seed slot 0 (replica group {0, 1}) with resident tuples, then
      // kill its primary dead — no drain, no goodbye.
      std::vector<std::int64_t> Keys;
      for (std::int64_t K = 0; Keys.size() != (std::size_t)Tokens; ++K) {
        Tuple T;
        T.emplace_back(K);
        T.emplace_back("tok");
        T.emplace_back(0);
        auto H = routeKey(T);
        if (H && *H % Shards == 0)
          Keys.push_back(K);
      }
      long long Want = 0;
      for (int I = 0; I != Tokens; ++I) {
        if (SS.Router->put(makeTuple(Keys[I], "tok", 1000 + I)) != Status::Ok)
          return AnyValue(false);
        Want += 1000 + I;
      }
      SS.Servers[0]->shutdown();
      SS.Servers[0].reset();

      long long Sum = 0;
      for (int I = 0; I != Tokens; ++I) {
        Tuple Tmpl;
        Tmpl.emplace_back(Keys[I]);
        Tmpl.emplace_back("tok");
        Tmpl.push_back(formal(0));
        Match M;
        if (SS.Router->takeUntil(std::move(Tmpl),
                                 Deadline::in(10'000'000'000), M) !=
            Status::Ok)
          return AnyValue(false); // a tuple died with its primary
        Sum += M.binding(0).asFixnum();
      }
      RouterStatsSnapshot S = SS.Router->statsSnapshot();
      bool Ok = Sum == Want && S.Promotions >= 1;
      Promotions += S.Promotions;
      SS.teardown();
      return AnyValue(Ok);
    });
    if (!R.as<bool>()) {
      State.SkipWithError("tuple lost with its primary, or no promotion");
      break;
    }

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture("router_kill_primary", Vm);
    State.ResumeTiming();
  }
  State.counters["promotions"] = static_cast<double>(Promotions);
  State.SetItemsProcessed(State.iterations() * Tokens * 2);
}

} // namespace

// Fixed iteration counts, same reasoning as app_netserver: every
// iteration stands up a whole machine, three shard servers, and a router.
BENCHMARK(BM_RouterSwarm)
    ->ArgName("workers")
    ->Arg(4)
    ->Arg(16)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_RouterFanout)
    ->ArgName("takers")
    ->Arg(4)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_RouterFailover)
    ->ArgName("workers")
    ->Arg(8)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

// factor:1 and factor:2 run the identical workload; their ratio is the
// replication overhead (DESIGN.md section 14 budgets it at <=2.5x).
BENCHMARK(BM_RouterReplicatedPut)
    ->ArgName("factor")
    ->Arg(1)
    ->Arg(2)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_RouterKillPrimary)
    ->ArgName("tokens")
    ->Arg(24)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

STING_BENCH_MAIN();
