//===- bench/app_tuplespace.cpp - Tuple-space throughput (paper 4.2) ---------===//
//
// Part of libsting. See DESIGN.md section 3 for the experiment index.
//
// Two claims from section 4.2:
//
//   * per-bin locking "permits multiple producers and consumers of a
//     tuple-space to concurrently access its hash tables" — measured as
//     producer/consumer throughput;
//
//   * specialized representations beat the general hashed form when usage
//     allows — measured as ops/sec for a FIFO workload under the hashed,
//     queue, bag and semaphore representations (the specialization the
//     paper's type inference would pick automatically).
//
//===----------------------------------------------------------------------===//

#include "ObsHarness.h"
#include "sting/Sting.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace sting;
using TC = ThreadController;

namespace {

/// put/take round trips through one space, single-threaded: isolates the
/// representation's op cost.
void BM_RepRoundTrip(benchmark::State &State) {
  const auto Rep = static_cast<TupleSpaceRep>(State.range(0));
  VmConfig Config;
  Config.NumVps = 1;
  Config.NumPps = 1;
  sting::bench::ObsHarness::instance().configure(Config);
  VirtualMachine Vm(Config);
  Vm.run([&]() -> AnyValue {
    TupleSpaceRef Ts = TupleSpace::create(Rep);
    for (auto _ : State) {
      Ts->put(makeTuple(7));
      Match M = Ts->take(makeTuple(formal(0)));
      benchmark::DoNotOptimize(M);
    }
    return AnyValue();
  });
  sting::bench::ObsHarness::instance().capture(
      std::string("rep_round_trip/") + tupleSpaceRepName(Rep), Vm);
  State.SetLabel(tupleSpaceRepName(Rep));
  State.SetItemsProcessed(State.iterations());
}

/// Concurrent producers and consumers through the hashed representation;
/// distinct tags spread load over the per-bin mutexes.
void BM_ProducerConsumer(benchmark::State &State) {
  const int Pairs = static_cast<int>(State.range(0));
  constexpr int ItemsPerPair = 300;

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config;
    Config.NumVps = 4;
    Config.NumPps = 1;
    Config.EnablePreemption = true;
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    State.ResumeTiming();

    Vm.run([&]() -> AnyValue {
      TupleSpaceRef Ts = TupleSpace::create();
      std::vector<ThreadRef> All;
      for (int P = 0; P != Pairs; ++P) {
        All.push_back(TC::forkThread([Ts, P]() -> AnyValue {
          for (int I = 0; I != ItemsPerPair; ++I)
            Ts->put(makeTuple((long long)P, I)); // tag spreads bins
          return AnyValue();
        }));
        All.push_back(TC::forkThread([Ts, P]() -> AnyValue {
          for (int I = 0; I != ItemsPerPair; ++I) {
            Match M = Ts->take(makeTuple((long long)P, formal(0)));
            benchmark::DoNotOptimize(M);
          }
          return AnyValue();
        }));
      }
      waitForAll(All);
      return AnyValue();
    });

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture("producer_consumer", Vm);
    State.ResumeTiming();
  }
  State.SetItemsProcessed(State.iterations() * Pairs * ItemsPerPair);
}

/// The section 4.2 counter idiom under contention:
///   (get TS [?x] (put TS [(+ x 1)]))
void BM_SharedCounter(benchmark::State &State) {
  const auto Rep = static_cast<TupleSpaceRep>(State.range(0));
  constexpr int Workers = 4;
  constexpr int IncrementsPerWorker = 150;

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config;
    Config.NumVps = 2;
    Config.NumPps = 1;
    Config.EnablePreemption = true;
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    State.ResumeTiming();

    AnyValue R = Vm.run([&]() -> AnyValue {
      TupleSpaceRef Ts = TupleSpace::create(Rep);
      Ts->put(makeTuple(0));
      std::vector<ThreadRef> Pool;
      for (int W = 0; W != Workers; ++W)
        Pool.push_back(TC::forkThread([Ts]() -> AnyValue {
          for (int I = 0; I != IncrementsPerWorker; ++I) {
            Match M = Ts->take(makeTuple(formal(0)));
            Ts->put(makeTuple(M.binding(0).asFixnum() + 1));
          }
          return AnyValue();
        }));
      waitForAll(Pool);
      Match M = Ts->take(makeTuple(formal(0)));
      return AnyValue(M.binding(0).asFixnum());
    });
    if (R.as<std::int64_t>() != Workers * IncrementsPerWorker)
      State.SkipWithError("lost increments");

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture(
        std::string("shared_counter/") + tupleSpaceRepName(Rep), Vm);
    State.ResumeTiming();
  }
  State.SetLabel(tupleSpaceRepName(Rep));
}

} // namespace

BENCHMARK(BM_RepRoundTrip)
    ->ArgName("rep")
    ->Arg(static_cast<int>(TupleSpaceRep::Hashed))
    ->Arg(static_cast<int>(TupleSpaceRep::Queue))
    ->Arg(static_cast<int>(TupleSpaceRep::Bag))
    ->Arg(static_cast<int>(TupleSpaceRep::Semaphore))
    ->Arg(static_cast<int>(TupleSpaceRep::SharedVariable));

BENCHMARK(BM_ProducerConsumer)
    ->ArgName("pairs")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SharedCounter)
    ->ArgName("rep")
    ->Arg(static_cast<int>(TupleSpaceRep::Hashed))
    ->Arg(static_cast<int>(TupleSpaceRep::SharedVariable))
    ->Unit(benchmark::kMillisecond);

STING_BENCH_MAIN();
