//===- bench/ObsHarness.h - Observability glue for benchmarks ---*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// Every benchmark binary links this harness so each run ends with the
// scheduler stats report on stderr, and `--trace-out <file>` (or
// `--trace-out=<file>`) captures the substrate's event trace as Chrome
// trace_event JSON, one process per captured machine (open the file at
// ui.perfetto.dev). Usage in a bench:
//
//   VmConfig Config = ...;
//   sting::bench::ObsHarness::instance().configure(Config);
//   VirtualMachine Vm(Config);
//   ... run workload ...
//   sting::bench::ObsHarness::instance().capture("label", Vm);
//
// and STING_BENCH_MAIN() instead of BENCHMARK_MAIN().
//
// Traced runs are diagnostic runs: when --trace-out is given, machines
// that already enable preemption get aggressive quanta so preemption
// shows up on benchmark-sized workloads. Timings from a traced run are
// not comparable to an untraced one (which is unchanged).
//
//===----------------------------------------------------------------------===//

#ifndef STING_BENCH_OBSHARNESS_H
#define STING_BENCH_OBSHARNESS_H

#include "sting/Sting.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace sting::bench {

class ObsHarness {
public:
  static ObsHarness &instance() {
    static ObsHarness Harness;
    return Harness;
  }

  /// Consumes --trace-out and --sample from argv (before
  /// benchmark::Initialize, which rejects flags it does not know).
  /// --sample <period-ns> turns on the background load sampler on every
  /// harness-configured machine; its series ride the trace file as
  /// Chrome counter events.
  void parseArgs(int *Argc, char **Argv) {
    int Out = 1;
    for (int In = 1; In != *Argc; ++In) {
      if (std::strcmp(Argv[In], "--trace-out") == 0 && In + 1 != *Argc) {
        TraceOutPath = Argv[++In];
        continue;
      }
      if (std::strncmp(Argv[In], "--trace-out=", 12) == 0) {
        TraceOutPath = Argv[In] + 12;
        continue;
      }
      if (std::strcmp(Argv[In], "--sample") == 0 && In + 1 != *Argc) {
        SamplePeriodNanos = std::strtoull(Argv[++In], nullptr, 10);
        continue;
      }
      if (std::strncmp(Argv[In], "--sample=", 9) == 0) {
        SamplePeriodNanos = std::strtoull(Argv[In] + 9, nullptr, 10);
        continue;
      }
      Argv[Out++] = Argv[In];
    }
    *Argc = Out;
  }

  bool tracingRequested() const { return !TraceOutPath.empty(); }

  /// Applies harness policy to a machine the benchmark is about to build.
  void configure(VmConfig &Config) const {
    Config.EnableTracing = tracingRequested();
    Config.SamplerPeriodNanos = SamplePeriodNanos;
    if (tracingRequested() && Config.EnablePreemption) {
      // Surface preemption on sub-millisecond workloads.
      if (Config.DefaultQuantumNanos > 50'000)
        Config.DefaultQuantumNanos = 50'000;
      if (Config.PreemptTickNanos > 20'000)
        Config.PreemptTickNanos = 20'000;
    }
  }

  /// Folds a machine's counters into the run-wide totals; with tracing on,
  /// the busiest capture per label (most ring events) contributes its event
  /// rings (one machine per label keeps repeated benchmark iterations from
  /// bloating the file while favouring the iteration with the richest
  /// schedule — the one most likely to show steals and preemptions).
  void capture(const std::string &Label, const VirtualMachine &Vm) {
    Total += Vm.aggregateStats();
    ++Captures;
    if (!tracingRequested())
      return;
    std::vector<obs::VpTraceSnapshot> Snaps = Vm.snapshotTrace();
    std::size_t Events = 0;
    for (const obs::VpTraceSnapshot &S : Snaps)
      Events += S.Events.size();
    BestPerLabel &Best = Traced[Label];
    if (Events > Best.Events) {
      Best.Events = Events;
      Best.Snaps = std::move(Snaps);
      Best.Samples = Vm.sampler() ? Vm.sampler()->snapshot()
                                  : std::vector<obs::LoadSample>();
    }
  }

  /// Prints the aggregate report and writes the trace file if requested.
  /// \returns false when the trace could not be written.
  bool finish() {
    if (Captures != 0) {
      std::fprintf(stderr, "\naggregate over %zu machine(s):\n%s",
                   Captures,
                   obs::formatStatsReport(Total, {}).c_str());
    }
    if (!tracingRequested())
      return true;
    for (auto &[Label, Best] : Traced)
      if (!Best.Snaps.empty()) {
        Exporter.addProcess(Label, std::move(Best.Snaps));
        if (!Best.Samples.empty())
          Exporter.addLoadSamples(std::move(Best.Samples));
      }
    if (Exporter.empty()) {
      std::fprintf(stderr,
                   "--trace-out: no events captured (build with "
                   "-DSTING_TRACE=ON?)\n");
      return false;
    }
    if (!Exporter.writeFile(TraceOutPath)) {
      std::fprintf(stderr, "--trace-out: cannot write %s\n",
                   TraceOutPath.c_str());
      return false;
    }
    std::fprintf(stderr, "trace written to %s (load at ui.perfetto.dev)\n",
                 TraceOutPath.c_str());
    return true;
  }

private:
  struct BestPerLabel {
    std::size_t Events = 0;
    std::vector<obs::VpTraceSnapshot> Snaps;
    std::vector<obs::LoadSample> Samples;
  };

  std::string TraceOutPath;
  std::uint64_t SamplePeriodNanos = 0;
  obs::SchedStatsSnapshot Total;
  obs::TraceExporter Exporter;
  std::map<std::string, BestPerLabel> Traced;
  std::size_t Captures = 0;
};

} // namespace sting::bench

/// Drop-in replacement for BENCHMARK_MAIN() that installs the harness.
#define STING_BENCH_MAIN()                                                   \
  int main(int argc, char **argv) {                                          \
    ::sting::bench::ObsHarness::instance().parseArgs(&argc, argv);           \
    ::benchmark::Initialize(&argc, argv);                                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))                \
      return 1;                                                              \
    ::benchmark::RunSpecifiedBenchmarks();                                   \
    ::benchmark::Shutdown();                                                 \
    return ::sting::bench::ObsHarness::instance().finish() ? 0 : 1;          \
  }                                                                          \
  int main(int, char **)

#endif // STING_BENCH_OBSHARNESS_H
