//===- bench/fig6_baseline.cpp - Paper Figure 6: baseline timings ------------===//
//
// Part of libsting. See DESIGN.md section 3 for the experiment index.
//
// Reproduces every row of the paper's Figure 6 ("Baseline timings",
// section 5). The paper's numbers come from an 8-processor SGI MIPS R3000
// (1992) with a single LIFO queue; absolute values on a modern x86-64 core
// are far smaller — what must reproduce is the *shape*: the cost ordering
// and the relative claims (synchronous context switch cheapest, stealing
// well below fork+value, tuple-space ops the most expensive).
//
// Each benchmark carries a `paper_us` counter with the paper's value in
// microseconds for side-by-side reading; EXPERIMENTS.md records the
// comparison.
//
//===----------------------------------------------------------------------===//

#include "ObsHarness.h"
#include "sting/Sting.h"

#include <benchmark/benchmark.h>

using namespace sting;
using TC = ThreadController;

namespace {

/// Single-VP machine mirroring the paper's single-queue measurement setup.
VmConfig baselineConfig() {
  VmConfig Config;
  Config.NumVps = 1;
  Config.NumPps = 1;
  Config.Policy = makeLocalLifoPolicy(); // "a single LIFO queue"
  return Config;
}

AnyValue nullThunk() { return AnyValue(); }

/// Runs the benchmark loop inside a sting thread of a fresh machine.
template <typename Fn>
void onMachine(benchmark::State &State, Fn &&Body, VmConfig Config) {
  auto &Obs = sting::bench::ObsHarness::instance();
  Obs.configure(Config);
  VirtualMachine Vm(std::move(Config));
  Vm.run([&]() -> AnyValue {
    Body(State, Vm);
    return AnyValue();
  });
  Obs.capture("fig6", Vm);
}

//===----------------------------------------------------------------------===//
// Row 1: Thread Creation — "the cost to create a thread not placed in the
// genealogy tree, and which has no dynamic state". Paper: 8.9 us.
//===----------------------------------------------------------------------===//

void BM_ThreadCreation(benchmark::State &State) {
  onMachine(
      State,
      [](benchmark::State &State, VirtualMachine &) {
        SpawnOptions Opts;
        Opts.NoGenealogy = true;
        for (auto _ : State) {
          ThreadRef T = TC::createThread(nullThunk, Opts);
          benchmark::DoNotOptimize(T);
        }
      },
      baselineConfig());
  State.counters["paper_us"] = 8.9;
}
BENCHMARK(BM_ThreadCreation);

//===----------------------------------------------------------------------===//
// Row 2: Thread Fork and Value — "create a thread that evaluates the null
// procedure and returns". Paper: 44.9 us.
//===----------------------------------------------------------------------===//

void BM_ThreadForkAndValue(benchmark::State &State) {
  onMachine(
      State,
      [](benchmark::State &State, VirtualMachine &) {
        SpawnOptions Opts;
        Opts.NoGenealogy = true;
        Opts.Stealable = false; // measure the full schedule/dispatch path
        for (auto _ : State) {
          ThreadRef T = TC::forkThread(nullThunk, Opts);
          TC::threadValue(*T);
        }
      },
      baselineConfig());
  State.counters["paper_us"] = 44.9;
}
BENCHMARK(BM_ThreadForkAndValue);

//===----------------------------------------------------------------------===//
// Row 3: Scheduling a Thread — "the cost of inserting a thread into the
// ready queue of the current VP". Paper: 18.9 us.
//===----------------------------------------------------------------------===//

void BM_SchedulingAThread(benchmark::State &State) {
  onMachine(
      State,
      [](benchmark::State &State, VirtualMachine &) {
        SpawnOptions Opts;
        Opts.NoGenealogy = true;
        // The bench thread never yields, so queued threads pile up behind
        // it and only the enqueue path is measured.
        std::vector<ThreadRef> Queued;
        Queued.reserve(1 << 20);
        for (auto _ : State) {
          ThreadRef T = TC::createThread(nullThunk, Opts);
          TC::threadRun(*T);
          Queued.push_back(std::move(T));
        }
        // Timing has stopped once the loop exits; drain the backlog so the
        // machine shuts down cleanly.
        for (auto &T : Queued)
          TC::threadTerminate(*T); // claimed without ever running
        Queued.clear();
      },
      baselineConfig());
  State.counters["paper_us"] = 18.9;
}
// Fixed iteration count: the backlog this benchmark accumulates must stay
// small enough not to distort the measurement with memory effects.
BENCHMARK(BM_SchedulingAThread)->Iterations(100000);

//===----------------------------------------------------------------------===//
// Row 4: Synchronous Context Switch — "a yield-processor call in which the
// calling thread is resumed immediately". Paper: 3.77 us.
//===----------------------------------------------------------------------===//

void BM_SynchronousContextSwitch(benchmark::State &State) {
  onMachine(
      State,
      [](benchmark::State &State, VirtualMachine &) {
        for (auto _ : State)
          TC::yieldProcessor();
      },
      baselineConfig());
  State.counters["paper_us"] = 3.77;
}
BENCHMARK(BM_SynchronousContextSwitch);

//===----------------------------------------------------------------------===//
// Row 5: Stealing — touch of a delayed null thread, evaluated on the
// toucher's TCB. (The paper's figure excludes scheduling cost, so the
// stolen thread is created delayed and never enqueued; the measurement
// includes the creation from row 1.) Paper: 7.7 us.
//===----------------------------------------------------------------------===//

void BM_Stealing(benchmark::State &State) {
  onMachine(
      State,
      [](benchmark::State &State, VirtualMachine &Vm) {
        SpawnOptions Opts;
        Opts.NoGenealogy = true;
        for (auto _ : State) {
          ThreadRef T = TC::createThread(nullThunk, Opts);
          TC::threadWait(*T); // delayed + stealable -> inline steal
        }
        State.counters["steals"] =
            static_cast<double>(Vm.stats().Steals.load());
      },
      baselineConfig());
  State.counters["paper_us"] = 7.7;
}
BENCHMARK(BM_Stealing);

//===----------------------------------------------------------------------===//
// Row 6: Thread Block and Resume — "the cost to block and resume a null
// thread". Paper: 27.9 us. A partner thread on the same VP blocks itself;
// each iteration resumes it and yields so it can block again.
//===----------------------------------------------------------------------===//

void BM_ThreadBlockAndResume(benchmark::State &State) {
  // FIFO here: the benchmark alternates two threads on one VP, and under
  // LIFO a yielding thread re-dispatches itself ahead of its partner.
  VmConfig Config = baselineConfig();
  Config.Policy = makeLocalFifoPolicy();
  onMachine(
      State,
      [](benchmark::State &State, VirtualMachine &) {
        std::atomic<bool> Stop{false};
        ThreadRef Partner = TC::forkThread([&]() -> AnyValue {
          while (!Stop.load(std::memory_order_relaxed))
            TC::threadBlock("bench");
          return AnyValue();
        });
        // Let the partner reach its first block.
        while (!Partner->isUserBlocked())
          TC::yieldProcessor();
        for (auto _ : State) {
          TC::threadRun(*Partner); // resume
          TC::yieldProcessor();    // run it; it blocks again
        }
        Stop.store(true);
        while (!Partner->isDetermined()) {
          TC::threadRun(*Partner);
          TC::yieldProcessor();
        }
      },
      std::move(Config));
  State.counters["paper_us"] = 27.9;
}
BENCHMARK(BM_ThreadBlockAndResume);

//===----------------------------------------------------------------------===//
// Row 7: Tuple Space — "create a tuple-space, insert and then remove a
// singleton tuple". Paper: 170 us.
//===----------------------------------------------------------------------===//

void BM_TupleSpace(benchmark::State &State) {
  onMachine(
      State,
      [](benchmark::State &State, VirtualMachine &) {
        for (auto _ : State) {
          TupleSpaceRef Ts = TupleSpace::create();
          Ts->put(makeTuple(1));
          Match M = Ts->take(makeTuple(formal(0)));
          benchmark::DoNotOptimize(M);
        }
      },
      baselineConfig());
  State.counters["paper_us"] = 170.0;
}
BENCHMARK(BM_TupleSpace);

//===----------------------------------------------------------------------===//
// Row 8: Speculative Fork (2 threads) — "compute two null threads
// speculatively". Paper: 68.9 us.
//===----------------------------------------------------------------------===//

void BM_SpeculativeFork2(benchmark::State &State) {
  onMachine(
      State,
      [](benchmark::State &State, VirtualMachine &) {
        SpawnOptions Opts;
        Opts.Stealable = false;
        for (auto _ : State) {
          std::vector<ThreadRef> Group;
          Group.push_back(TC::forkThread(nullThunk, Opts));
          Group.push_back(TC::forkThread(nullThunk, Opts));
          ThreadRef Winner = waitForOne(Group);
          benchmark::DoNotOptimize(Winner);
        }
      },
      baselineConfig());
  State.counters["paper_us"] = 68.9;
}
BENCHMARK(BM_SpeculativeFork2);

//===----------------------------------------------------------------------===//
// Row 9: Barrier Synchronization (2 threads) — "build a barrier
// synchronization point on two threads both computing the null
// procedure". Paper: 144.8 us.
//===----------------------------------------------------------------------===//

void BM_BarrierSynchronization2(benchmark::State &State) {
  onMachine(
      State,
      [](benchmark::State &State, VirtualMachine &) {
        SpawnOptions Opts;
        Opts.Stealable = false;
        for (auto _ : State) {
          std::vector<ThreadRef> Group;
          Group.push_back(TC::forkThread(nullThunk, Opts));
          Group.push_back(TC::forkThread(nullThunk, Opts));
          waitForAll(Group);
        }
      },
      baselineConfig());
  State.counters["paper_us"] = 144.8;
}
BENCHMARK(BM_BarrierSynchronization2);

//===----------------------------------------------------------------------===//
// Extra row (not in the paper's figure): contended tuple-space traffic.
// A pool of parked takers services a putter in a put/ack ping-pong across
// two VPs, so every operation runs the registered-waiter handoff path
// (DESIGN.md §12) rather than the empty-space fast path BM_TupleSpace
// measures. The wakeups_per_put counter is the ablation hook: direct
// handoff holds it at ~1.0 regardless of the pool size, while a wake-all
// scheme scales it with the number of parked waiters.
//===----------------------------------------------------------------------===//

void BM_TupleContended(benchmark::State &State) {
  VmConfig Config;
  Config.NumVps = 2;
  Config.NumPps = 2;
  onMachine(
      State,
      [](benchmark::State &State, VirtualMachine &) {
        TupleSpaceRef Ts = TupleSpace::create();
        constexpr int Takers = 4;
        std::vector<ThreadRef> Pool;
        for (int I = 0; I != Takers; ++I)
          Pool.push_back(TC::forkThread([Ts]() -> AnyValue {
            for (;;) {
              Match M = Ts->take(makeTuple("job", formal(0)));
              if (M.binding(0).asFixnum() < 0)
                return AnyValue();
              Ts->put(makeTuple("ack", M.binding(0).asFixnum()));
            }
          }));
        // Only start timing once the whole pool is parked on "job": the
        // measurement is the contended path, not pool spin-up.
        while (Ts->stats().Blocks.load(std::memory_order_acquire) <
               static_cast<std::uint64_t>(Takers))
          TC::yieldProcessor();
        long I = 0;
        for (auto _ : State) {
          Ts->put(makeTuple("job", I++));
          Match A = Ts->take(makeTuple("ack", formal(0)));
          benchmark::DoNotOptimize(A);
        }
        for (int K = 0; K != Takers; ++K)
          Ts->put(makeTuple("job", -1));
        for (auto &T : Pool)
          TC::threadWait(*T);
        auto Puts = Ts->stats().Puts.load();
        State.counters["wakeups_per_put"] =
            Puts ? static_cast<double>(Ts->stats().Wakeups.load()) /
                       static_cast<double>(Puts)
                 : 0.0;
        State.counters["handoffs"] =
            static_cast<double>(Ts->stats().Handoffs.load());
      },
      std::move(Config));
}
BENCHMARK(BM_TupleContended);

} // namespace

STING_BENCH_MAIN();
