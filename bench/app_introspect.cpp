//===- bench/app_introspect.cpp - Live-introspection demo ---------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// Not a Google-Benchmark binary: a small end-to-end demo of the
// observability surface, and the CI artifact generator for it. Brings up
// a machine with a tuple-space service and a metrics service, drives
// client traffic whose requests carry causal flow ids across the wire,
// then scrapes its own /metrics endpoint over plain HTTP exactly the way
// curl would and prints the exposition body to stdout. With --trace-out
// (and a -DSTING_TRACE=ON build) the run's event rings, flow arrows and
// sampler series are written as Chrome trace_event JSON.
//
//   app_introspect [--trace-out FILE] [--clients N] [--requests N]
//
//===----------------------------------------------------------------------===//

#include "sting/Sting.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace sting;
using namespace sting::net;
using TC = ThreadController;

namespace {

/// One client doing \p Requests out/in round trips over a resilient
/// net::Client (lazy connect, retry with backoff, reconnect on reset),
/// each request stamped with its own fresh flow so every round trip
/// renders as a distinct causal path through the server.
bool runClient(IoService &Io, std::uint16_t Port, int Requests) {
  ClientConfig CC;
  CC.Port = Port;
  CC.MaxAttempts = 5;
  Client Cl(Io, CC);
  std::vector<std::uint8_t> Frame;
  for (int I = 0; I != Requests; ++I) {
    obs::FlowId Flow = obs::newFlowId();
    wire::Writer Out(wire::Op::TsOut);
    Out.flow(Flow);
    Out.text("job");
    Out.fixnum(I);
    if (Cl.request(Out, Frame) != RequestStatus::Ok)
      return false;

    wire::Writer In(wire::Op::TsIn);
    In.flow(Flow);
    In.text("job");
    In.formal(0);
    if (Cl.request(In, Frame) != RequestStatus::Ok)
      return false;
    if (wire::Reader(Frame.data(), Frame.size()).op() != wire::Op::TsMatch)
      return false;
  }
  return true;
}

/// Scrapes http://127.0.0.1:Port/metrics the way curl would and \returns
/// the exposition body ("" on failure).
std::string httpScrape(IoService &Io, std::uint16_t Port) {
  BufferedConn Conn(Socket::connectTo(Io, "127.0.0.1", Port));
  if (!Conn.valid())
    return "";
  const char Req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  if (!Conn.write(Req, sizeof(Req) - 1) || !Conn.flush())
    return "";
  std::string Response;
  char B = 0;
  Deadline D = Deadline::in(10'000'000'000);
  while (Response.size() < (1u << 20) && Conn.readExact(&B, 1, D))
    Response.push_back(B);
  std::size_t BodyAt = Response.find("\r\n\r\n");
  if (Response.rfind("HTTP/1.0 200", 0) != 0 || BodyAt == std::string::npos)
    return "";
  return Response.substr(BodyAt + 4);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string TraceOut;
  int Clients = 4, Requests = 64;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--trace-out") == 0 && I + 1 != Argc)
      TraceOut = Argv[++I];
    else if (std::strncmp(Argv[I], "--trace-out=", 12) == 0)
      TraceOut = Argv[I] + 12;
    else if (std::strcmp(Argv[I], "--clients") == 0 && I + 1 != Argc)
      Clients = std::atoi(Argv[++I]);
    else if (std::strcmp(Argv[I], "--requests") == 0 && I + 1 != Argc)
      Requests = std::atoi(Argv[++I]);
    else {
      std::fprintf(stderr,
                   "usage: %s [--trace-out FILE] [--clients N] "
                   "[--requests N]\n",
                   Argv[0]);
      return 2;
    }
  }

  VmConfig Config;
  Config.NumVps = 2;
  Config.EnableTracing = true;
  Config.SamplerPeriodNanos = 100'000; // 10 kHz load samples
  VirtualMachine Vm(Config);
  IoService Io;

  AnyValue V = Vm.run([&]() -> AnyValue {
    TupleSpaceRef Space = TupleSpace::create();
    auto TupleServer = Server::start(Vm, Io, tupleSpaceHandler(Space));
    auto MetricsServer = Server::start(Vm, Io, metricsHandler(Vm));
    if (!TupleServer || !MetricsServer)
      return AnyValue(false);

    std::vector<ThreadRef> Workers;
    for (int I = 0; I != Clients; ++I)
      Workers.push_back(TC::forkThread([&]() -> AnyValue {
        return AnyValue(runClient(Io, TupleServer->port(), Requests));
      }));
    bool Ok = true;
    for (ThreadRef &W : Workers)
      Ok = TC::threadValue(*W).as<bool>() && Ok;

    // Scrape the machine we are running on, over the wire, while it is
    // still serving — the same path `curl http://host:port/metrics` takes.
    std::string Scrape = httpScrape(Io, MetricsServer->port());
    Ok = Ok && !Scrape.empty();
    std::fwrite(Scrape.data(), 1, Scrape.size(), stdout);

    std::fprintf(stderr,
                 "app_introspect: %d client(s) x %d round trip(s); "
                 "tuple port %u, metrics port %u, scrape %zu bytes\n",
                 Clients, Requests, TupleServer->port(),
                 MetricsServer->port(), Scrape.size());

    TupleServer->shutdown();
    MetricsServer->shutdown();
    return AnyValue(Ok);
  });

  if (!TraceOut.empty()) {
    if (Vm.writeChromeTrace(TraceOut, "app_introspect"))
      std::fprintf(stderr, "trace written to %s (load at ui.perfetto.dev)\n",
                   TraceOut.c_str());
    else
      std::fprintf(stderr,
                   "--trace-out: no events captured (build with "
                   "-DSTING_TRACE=ON?)\n");
  }
  return V.as<bool>() ? 0 : 1;
}
