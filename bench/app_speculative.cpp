//===- bench/app_speculative.cpp - OR-parallel search (paper 4.3) ------------===//
//
// Part of libsting. See DESIGN.md section 3 for the experiment index.
//
// Speculative search latency: one of K alternatives finds the answer after
// `WinnerWork` units; the others search fruitlessly. Measures
//
//   * how quickly wait-for-one returns once the winner completes, and
//     that losers are torn down promptly (the termination half of 4.3);
//
//   * the priority claim: when the winner's task is given high priority
//     under the priority policy, time-to-answer drops versus FIFO, because
//     "promising tasks can execute before unlikely ones".
//
//===----------------------------------------------------------------------===//

#include "ObsHarness.h"
#include "sting/Sting.h"

#include <benchmark/benchmark.h>

using namespace sting;
using TC = ThreadController;

namespace {

void BM_SpeculativeSearch(benchmark::State &State) {
  const int Alternatives = static_cast<int>(State.range(0));
  const bool UsePriorities = State.range(1) != 0;
  constexpr int WinnerWork = 20'000;

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config;
    Config.NumVps = 2;
    Config.NumPps = 1;
    Config.EnablePreemption = true;
    Config.DefaultQuantumNanos = 200'000;
    Config.PreemptTickNanos = 100'000;
    Config.Policy =
        UsePriorities ? makePriorityPolicy() : makeLocalFifoPolicy();
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    State.ResumeTiming();

    Vm.run([&]() -> AnyValue {
      SpeculativeSet Set;
      for (int A = 0; A != Alternatives; ++A) {
        const bool IsWinner = A == Alternatives - 1; // worst FIFO position
        Set.add(
            [IsWinner]() -> long {
              volatile long Acc = 0;
              if (IsWinner) {
                for (int I = 0; I != WinnerWork; ++I) {
                  Acc = Acc + I;
                  if ((I & 1023) == 0)
                    TC::checkpoint();
                }
                return Acc;
              }
              for (;;) { // fruitless: dies by terminate request
                for (int I = 0; I != 1024; ++I)
                  Acc = Acc + I;
                TC::checkpoint();
              }
            },
            /*Priority=*/IsWinner ? 10 : 0);
      }
      ThreadRef Winner = Set.awaitFirst();
      benchmark::DoNotOptimize(Winner);
      // Wait for the losers to die so teardown is inside the measurement
      // (prompt teardown is part of the claim).
      for (const ThreadRef &T : Set.tasks())
        TC::threadWait(*T);
      return AnyValue();
    });

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture("speculative_search", Vm);
    State.ResumeTiming();
  }
  State.SetLabel(UsePriorities ? "priority-policy" : "fifo-policy");
}

} // namespace

BENCHMARK(BM_SpeculativeSearch)
    ->ArgNames({"alts", "prio"})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond);

STING_BENCH_MAIN();
