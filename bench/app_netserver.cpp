//===- bench/app_netserver.cpp - TCP server load generator --------------------===//
//
// Part of libsting. See DESIGN.md section 3 for the experiment index.
//
// Load generator for the src/net subsystem (DESIGN.md section 9): a
// thread-per-connection server built on thread-parking sockets should pay
// user-level context-switch prices for connection concurrency, not kernel
// ones. Three workloads:
//
//   * echo round-trip latency under a modest client pool — each client
//     thread records per-request latency into a shared Histogram, and the
//     run reports p50/p95/p99 alongside the throughput row;
//
//   * tuple-space service round trips — the remote out/in path including
//     marshalling, escape to the shared heap, and connection threads
//     parking in the space;
//
//   * connection scaling — a swarm of concurrent connections (up to 1024,
//     past the default descriptor soft limit, which the bench raises with
//     setrlimit) each completing a fixed number of echoes with every reply
//     verified; a lost or duplicated reply fails the run.
//
//===----------------------------------------------------------------------===//

#include "ObsHarness.h"
#include "sting/Sting.h"
#include "support/Clock.h"
#include "support/Histogram.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <vector>

#include <sys/resource.h>

using namespace sting;
using TC = ThreadController;

namespace {

/// The connection-scaling workload needs (connections x 2 sockets) plus
/// epoll/eventfd/test overhead; lift the soft descriptor limit toward the
/// hard one once per process.
void raiseFdLimit() {
  static bool Done = [] {
    rlimit Rl{};
    if (getrlimit(RLIMIT_NOFILE, &Rl) == 0 && Rl.rlim_cur < Rl.rlim_max) {
      Rl.rlim_cur = Rl.rlim_max;
      (void)setrlimit(RLIMIT_NOFILE, &Rl);
    }
    return true;
  }();
  (void)Done;
}

VmConfig serverConfig() {
  VmConfig Config;
  Config.NumVps = 4;
  Config.NumPps = 2;
  Config.EnablePreemption = true;
  return Config;
}

/// One echo round trip; \returns false on any transport error or a reply
/// that does not match the request.
bool echoRoundTrip(net::BufferedConn &Conn, std::int64_t Token,
                   std::vector<std::uint8_t> &Frame) {
  net::wire::Writer W(net::wire::Op::Echo);
  W.fixnum(Token);
  if (!Conn.writeFrame(W.payload().data(), W.payload().size()) ||
      !Conn.flush() || !Conn.readFrame(Frame))
    return false;
  net::wire::Reader R(Frame.data(), Frame.size());
  net::wire::ReadField F;
  return R.op() == net::wire::Op::EchoReply && R.next(F) && F.Num == Token;
}

/// Echo latency/throughput: \p range(0) concurrent clients, each doing a
/// fixed number of round trips. Latency quantiles go to the row label.
void BM_EchoLatency(benchmark::State &State) {
  raiseFdLimit();
  const int Clients = static_cast<int>(State.range(0));
  constexpr int Rounds = 64;
  Histogram Latency;

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config = serverConfig();
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    IoService Io;
    State.ResumeTiming();

    AnyValue R = Vm.run([&]() -> AnyValue {
      auto Server = net::Server::start(Vm, Io, net::echoHandler());
      if (!Server)
        return AnyValue(false);
      std::vector<ThreadRef> Pool;
      for (int C = 0; C != Clients; ++C)
        Pool.push_back(TC::forkThread([&, C]() -> AnyValue {
          net::BufferedConn Conn(
              net::Socket::connectTo(Io, "127.0.0.1", Server->port()));
          if (!Conn.valid())
            return AnyValue(false);
          std::vector<std::uint8_t> Frame;
          for (int I = 0; I != Rounds; ++I) {
            std::uint64_t T0 = nowNanos();
            if (!echoRoundTrip(Conn, C * Rounds + I, Frame))
              return AnyValue(false);
            Latency.record(nowNanos() - T0);
          }
          return AnyValue(true);
        }));
      bool Ok = true;
      for (ThreadRef &T : Pool)
        Ok = Ok && TC::threadValue(*T).as<bool>();
      Server->shutdown();
      return AnyValue(Ok);
    });
    if (!R.as<bool>()) {
      State.SkipWithError("echo round trip failed");
      break;
    }

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture("net_echo", Vm);
    State.ResumeTiming();
  }
  char Label[96];
  std::snprintf(Label, sizeof(Label),
                "p50=%lluus p95=%lluus p99=%lluus",
                static_cast<unsigned long long>(Latency.p50Nanos() / 1000),
                static_cast<unsigned long long>(Latency.p95Nanos() / 1000),
                static_cast<unsigned long long>(Latency.p99Nanos() / 1000));
  State.SetLabel(Label);
  State.SetItemsProcessed(State.iterations() * Clients * Rounds);
}

/// Tuple-space service: producer clients out tokens, consumer clients in
/// them; every token must be delivered exactly once (sum check).
void BM_TupleService(benchmark::State &State) {
  raiseFdLimit();
  const int Pairs = static_cast<int>(State.range(0));
  constexpr int PerProducer = 48;

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config = serverConfig();
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    IoService Io;
    State.ResumeTiming();

    AnyValue R = Vm.run([&]() -> AnyValue {
      TupleSpaceRef Space = TupleSpace::create();
      auto Server = net::Server::start(Vm, Io, net::tupleSpaceHandler(Space));
      if (!Server)
        return AnyValue(false);
      const int Total = Pairs * PerProducer;
      std::atomic<long long> Sum{0};
      // Producers and consumers ride net::Client — the resilient
      // request/reply path (lazy connect, per-attempt deadlines) is what
      // applications actually use, so its overhead belongs in this row.
      // The tuple ops are not idempotent, so retries are effectively off
      // (one extra attempt only for the lazy first connect).
      net::ClientConfig CC;
      CC.Port = Server->port();
      CC.MaxAttempts = 2;
      CC.RequestTimeoutNanos = 30'000'000'000;
      std::vector<ThreadRef> Pool;
      for (int P = 0; P != Pairs; ++P) {
        Pool.push_back(TC::forkThread([&, P]() -> AnyValue {
          net::Client C(Io, CC);
          std::vector<std::uint8_t> Frame;
          for (int I = 0; I != PerProducer; ++I) {
            net::wire::Writer Out(net::wire::Op::TsOut);
            Out.text("tok");
            Out.fixnum(P * PerProducer + I);
            if (C.request(Out, Frame) != net::RequestStatus::Ok)
              return AnyValue(false);
          }
          return AnyValue(true);
        }));
        Pool.push_back(TC::forkThread([&]() -> AnyValue {
          net::Client C(Io, CC);
          std::vector<std::uint8_t> Frame;
          for (int I = 0; I != PerProducer; ++I) {
            net::wire::Writer In(net::wire::Op::TsIn);
            In.text("tok");
            In.formal(0);
            if (C.request(In, Frame) != net::RequestStatus::Ok)
              return AnyValue(false);
            net::wire::Reader Rd(Frame.data(), Frame.size());
            Rd.takeFlow(); // replies carry the server-side causal flow
            net::wire::ReadField F;
            if (Rd.op() != net::wire::Op::TsMatch || !Rd.next(F) ||
                !Rd.next(F))
              return AnyValue(false);
            Sum.fetch_add(F.Num, std::memory_order_relaxed);
          }
          return AnyValue(true);
        }));
      }
      bool Ok = true;
      for (ThreadRef &T : Pool)
        Ok = Ok && TC::threadValue(*T).as<bool>();
      Ok = Ok && Sum.load() == (long long)Total * (Total - 1) / 2;
      Server->shutdown();
      return AnyValue(Ok);
    });
    if (!R.as<bool>()) {
      State.SkipWithError("tuple token lost or duplicated");
      break;
    }

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture("net_tuple", Vm);
    State.ResumeTiming();
  }
  State.SetItemsProcessed(State.iterations() * Pairs * PerProducer * 2);
}

/// Overload: a net::Client swarm at 4x the server's admission cap, in
/// shedding mode (a small admission budget). The server must refuse the
/// excess explicitly (Op::Overload) and the clients' retry/backoff must
/// drain the whole swarm — every request eventually served, none hung.
/// The label reports the latency quantiles of requests served on their
/// first attempt — the admitted population, with no client backoff folded
/// in — so the row answers "does overload degrade the served requests?"
/// The acceptance bar is p99 within 2x the uncontended echo row at the
/// same client count; time spent being shed and backing off is the
/// client's explicit retry policy, visible in the sheds counter instead.
void BM_Overload(benchmark::State &State) {
  raiseFdLimit();
  constexpr int Cap = 8;
  const int Swarm = static_cast<int>(State.range(0));
  constexpr int Rounds = 16;
  Histogram Latency;
  std::uint64_t Shedded = 0;

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config = serverConfig();
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    IoService Io;
    State.ResumeTiming();

    AnyValue R = Vm.run([&]() -> AnyValue {
      net::ServerConfig SC;
      SC.MaxConnections = Cap;
      SC.Backlog = Swarm;
      SC.AdmissionBudgetNanos = 2'000'000;
      SC.AcceptBackoffNanos = 1'000'000;
      auto Server = net::Server::start(Vm, Io, net::echoHandler(), SC);
      if (!Server)
        return AnyValue(false);
      std::vector<ThreadRef> Pool;
      for (int C = 0; C != Swarm; ++C)
        Pool.push_back(TC::forkThread([&, C]() -> AnyValue {
          net::ClientConfig CC;
          CC.Port = Server->port();
          CC.MaxAttempts = 100;
          CC.RequestTimeoutNanos = 2'000'000'000;
          CC.Retry = BackoffPolicy{500'000, 10'000'000};
          CC.Breaker.FailureThreshold = 1u << 30; // overload expected
          net::Client Cl(Io, CC);
          std::vector<std::uint8_t> Frame;
          for (int I = 0; I != Rounds; ++I) {
            std::uint64_t RetriesBefore = Cl.retries();
            std::uint64_t T0 = nowNanos();
            net::wire::Writer W(net::wire::Op::Echo);
            W.fixnum(C * Rounds + I);
            if (Cl.request(W, Frame) != net::RequestStatus::Ok)
              return AnyValue(false);
            net::wire::Reader Rd(Frame.data(), Frame.size());
            net::wire::ReadField F;
            if (Rd.op() != net::wire::Op::EchoReply || !Rd.next(F) ||
                F.Num != C * Rounds + I)
              return AnyValue(false);
            if (Cl.retries() == RetriesBefore)
              Latency.record(nowNanos() - T0);
          }
          // Dropping the client closes its connection, freeing a server
          // slot for the shed-and-retrying remainder of the swarm.
          return AnyValue(true);
        }));
      bool Ok = true;
      for (ThreadRef &T : Pool)
        Ok = Ok && TC::threadValue(*T).as<bool>();
      // Shed counts surface as a row counter; the deterministic "4x must
      // shed" property is pinned by tests/net/OverloadTest.cpp, where the
      // handler's hold time dwarfs the budget regardless of host speed.
      Shedded += Server->totalShedded();
      Server->shutdown();
      return AnyValue(Ok);
    });
    if (!R.as<bool>()) {
      State.SkipWithError("request lost or hung under overload");
      break;
    }

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture("net_overload", Vm);
    State.ResumeTiming();
  }
  char Label[96];
  std::snprintf(Label, sizeof(Label),
                "p50=%lluus p95=%lluus p99=%lluus",
                static_cast<unsigned long long>(Latency.p50Nanos() / 1000),
                static_cast<unsigned long long>(Latency.p95Nanos() / 1000),
                static_cast<unsigned long long>(Latency.p99Nanos() / 1000));
  State.SetLabel(Label);
  State.counters["sheds"] = static_cast<double>(Shedded);
  State.SetItemsProcessed(State.iterations() * Swarm * Rounds);
}

/// Connection scaling: \p range(0) concurrent connections, all connected
/// before any echoes begin (a barrier over an atomic), each doing a few
/// verified round trips. 1024 connections crosses the acceptance bar of
/// a thousand concurrent thread-per-connection sockets.
void BM_ConnectionScaling(benchmark::State &State) {
  raiseFdLimit();
  const int Connections = static_cast<int>(State.range(0));
  constexpr int Rounds = 4;

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config = serverConfig();
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    IoService Io;
    State.ResumeTiming();

    AnyValue R = Vm.run([&]() -> AnyValue {
      // The whole swarm SYNs at once; with the default backlog of 128 the
      // kernel drops the overflow and those clients stall in 1s+ SYN
      // retransmits, turning a 4s row into a bimodal 30s one. Size the
      // backlog to the swarm (somaxconn permitting) — the row measures
      // connection-thread scaling, not SYN-queue overflow recovery.
      net::ServerConfig SC;
      SC.Backlog = Connections;
      auto Server = net::Server::start(Vm, Io, net::echoHandler(), SC);
      if (!Server)
        return AnyValue(false);
      std::atomic<int> Connected{0};
      std::vector<ThreadRef> Pool;
      for (int C = 0; C != Connections; ++C)
        Pool.push_back(TC::forkThread([&, C]() -> AnyValue {
          net::BufferedConn Conn(
              net::Socket::connectTo(Io, "127.0.0.1", Server->port()));
          if (!Conn.valid())
            return AnyValue(false);
          // Hold every connection open until the whole swarm is up, so
          // the server really carries `Connections` live threads at once.
          Connected.fetch_add(1);
          while (Connected.load() != Connections)
            TC::yieldProcessor();
          std::vector<std::uint8_t> Frame;
          for (int I = 0; I != Rounds; ++I)
            if (!echoRoundTrip(Conn, C * Rounds + I, Frame))
              return AnyValue(false);
          return AnyValue(true);
        }));
      bool Ok = true;
      for (ThreadRef &T : Pool)
        Ok = Ok && TC::threadValue(*T).as<bool>();
      Server->shutdown();
      Ok = Ok && Server->liveConnections() == 0;
      return AnyValue(Ok);
    });
    if (!R.as<bool>()) {
      State.SkipWithError("reply lost or duplicated under connection swarm");
      break;
    }

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture("net_scaling", Vm);
    State.ResumeTiming();
  }
  State.SetItemsProcessed(State.iterations() * Connections * Rounds);
}

} // namespace

// Fixed iteration counts: each iteration builds and tears down a whole
// machine plus a server, so time-based iteration targets would spend
// minutes per row on setup. A handful of iterations per repetition keeps
// the medians stable and the full suite in CI-smoke territory.
BENCHMARK(BM_EchoLatency)
    ->ArgName("clients")
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Iterations(5)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_TupleService)
    ->ArgName("pairs")
    ->Arg(1)
    ->Arg(4)
    ->Iterations(5)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Overload)
    ->ArgName("clients")
    ->Arg(32)
    ->Iterations(5)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ConnectionScaling)
    ->ArgName("connections")
    ->Arg(256)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

STING_BENCH_MAIN();
