//===- bench/ablation_stealing.cpp - Stealing vs scheduling order ------------===//
//
// Part of libsting. See DESIGN.md section 3 for the experiment index.
//
// Materializes section 4.1.1's qualitative claims on the Fig. 3 futures
// workload (a dependency chain where future i touches future i-2):
//
//   * under LIFO scheduling "stealing will occur much more frequently ...
//     the process call graph will unfold more effectively";
//   * under a preemptible FIFO scheduler "stealing operations will be
//     minimal";
//   * disabling stealing forces every touch of an undetermined future to
//     block and context-switch.
//
// The `steals` and `blocks`-oriented counters tell the story; wall time
// shows the locality payoff.
//
//===----------------------------------------------------------------------===//

#include "ObsHarness.h"
#include "sting/Sting.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace sting;
using TC = ThreadController;

namespace {

struct Node {
  int Prime;
  std::shared_ptr<Node> Rest;
};
using PList = std::shared_ptr<Node>;

/// The Fig. 3 chain: one future per odd candidate, each touching the
/// previous future's list.
long primesChain(int Limit, bool Stealable) {
  SpawnOptions Opts;
  Opts.Stealable = Stealable;
  Future<PList> Primes = Future<PList>::spawn(
      [] { return std::make_shared<Node>(Node{2, nullptr}); }, Opts);
  for (int N = 3; N <= Limit; N += 2) {
    Future<PList> Prev = Primes;
    Primes = Future<PList>::spawn(
        [N, Prev] {
          PList Known = Prev.touch();
          for (Node *J = Known.get(); J; J = J->Rest.get())
            if (J->Prime * J->Prime <= N && N % J->Prime == 0)
              return Known;
          return std::make_shared<Node>(Node{N, Known});
        },
        Opts);
  }
  // Block on the final future *without* stealing it, so the ready queue's
  // order decides which thread runs first (touching here would steal the
  // whole chain regardless of policy and mask the contrast).
  Thread *Last = &Primes.thread();
  ThreadController::blockOnGroup(1, std::span<Thread *const>(&Last, 1));

  long Count = 0;
  for (PList P = Primes.touch(); P; P = P->Rest)
    ++Count;
  return Count;
}

enum class Variant { Lifo, Fifo, FifoNoSteal };

void BM_PrimesChain(benchmark::State &State) {
  const auto Which = static_cast<Variant>(State.range(0));
  const int Limit = static_cast<int>(State.range(1));

  std::uint64_t Steals = 0;
  std::uint64_t Dispatches = 0;
  long Count = 0;
  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config;
    Config.NumVps = 1;
    Config.NumPps = 1;
    Config.Policy = Which == Variant::Lifo ? makeLocalLifoPolicy()
                                           : makeLocalFifoPolicy();
    Config.StackSize = 4 * 1024 * 1024;
    Config.MaxStealDepth = 1 << 20;
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    State.ResumeTiming();

    AnyValue R = Vm.run([&]() -> AnyValue {
      return AnyValue(
          primesChain(Limit, Which != Variant::FifoNoSteal));
    });
    Count = R.as<long>();

    State.PauseTiming();
    Steals += Vm.stats().Steals.load();
    for (const auto &Vp : Vm.vps())
      Dispatches += Vp->stats().Dispatches;
    sting::bench::ObsHarness::instance().capture("primes_chain", Vm);
    State.ResumeTiming();
  }
  State.counters["steals"] =
      benchmark::Counter(static_cast<double>(Steals),
                         benchmark::Counter::kAvgIterations);
  State.counters["dispatches"] =
      benchmark::Counter(static_cast<double>(Dispatches),
                         benchmark::Counter::kAvgIterations);
  State.counters["primes"] = static_cast<double>(Count);
}

} // namespace

// Variant x Limit sweep. pi(2000) = 303, pi(6000) = 783.
BENCHMARK(BM_PrimesChain)
    ->ArgNames({"variant", "limit"})
    ->Args({static_cast<int>(Variant::Lifo), 2000})
    ->Args({static_cast<int>(Variant::Fifo), 2000})
    ->Args({static_cast<int>(Variant::FifoNoSteal), 2000})
    ->Args({static_cast<int>(Variant::Lifo), 6000})
    ->Args({static_cast<int>(Variant::Fifo), 6000})
    ->Args({static_cast<int>(Variant::FifoNoSteal), 6000})
    ->Unit(benchmark::kMillisecond);

STING_BENCH_MAIN();
