//===- bench/ablation_userlevel.cpp - User-level vs OS-level threading -------===//
//
// Part of libsting. See DESIGN.md section 3 for the experiment index.
//
// The paper's motivating claim (section 1): language implementations built
// on "low-level operating system services ... necessarily sacrifice
// efficiency since every (low-level) kernel call requires a context switch
// between the application and the operating system". This bench puts
// numbers on it, comparing each substrate operation against its
// OS-service equivalent on the same machine:
//
//   fork+join:       sting thread         vs std::thread
//   context switch:  yieldProcessor        vs sched_yield (kernel RR)
//   block+resume:    park/threadRun        vs condition_variable ping
//
//===----------------------------------------------------------------------===//

#include "ObsHarness.h"
#include "sting/Sting.h"

#include <benchmark/benchmark.h>

#include <condition_variable>
#include <thread>

using namespace sting;
using TC = ThreadController;

namespace {

VmConfig smallMachine() {
  VmConfig Config;
  Config.NumVps = 1;
  Config.NumPps = 1;
  sting::bench::ObsHarness::instance().configure(Config);
  return Config;
}

void BM_StingForkJoin(benchmark::State &State) {
  VirtualMachine Vm(smallMachine());
  Vm.run([&]() -> AnyValue {
    SpawnOptions Opts;
    Opts.Stealable = false;
    for (auto _ : State) {
      ThreadRef T = TC::forkThread(
          []() -> AnyValue { return AnyValue(1); }, Opts);
      benchmark::DoNotOptimize(TC::threadValue(*T).as<int>());
    }
    return AnyValue();
  });
  sting::bench::ObsHarness::instance().capture("sting_fork_join", Vm);
}
BENCHMARK(BM_StingForkJoin);

void BM_OsThreadForkJoin(benchmark::State &State) {
  for (auto _ : State) {
    int Out = 0;
    std::thread T([&Out] { Out = 1; });
    T.join();
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_OsThreadForkJoin);

void BM_StingYield(benchmark::State &State) {
  VirtualMachine Vm(smallMachine());
  Vm.run([&]() -> AnyValue {
    for (auto _ : State)
      TC::yieldProcessor();
    return AnyValue();
  });
  sting::bench::ObsHarness::instance().capture("sting_yield", Vm);
}
BENCHMARK(BM_StingYield);

void BM_OsSchedYield(benchmark::State &State) {
  for (auto _ : State)
    sched_yield();
}
BENCHMARK(BM_OsSchedYield);

void BM_StingBlockResume(benchmark::State &State) {
  VmConfig Config = smallMachine();
  Config.Policy = makeLocalFifoPolicy();
  VirtualMachine Vm(Config);
  Vm.run([&]() -> AnyValue {
    std::atomic<bool> Stop{false};
    ThreadRef Partner = TC::forkThread([&]() -> AnyValue {
      while (!Stop.load(std::memory_order_relaxed))
        TC::threadBlock("bench");
      return AnyValue();
    });
    while (!Partner->isUserBlocked())
      TC::yieldProcessor();
    for (auto _ : State) {
      TC::threadRun(*Partner);
      TC::yieldProcessor();
    }
    Stop.store(true);
    while (!Partner->isDetermined()) {
      TC::threadRun(*Partner);
      TC::yieldProcessor();
    }
    return AnyValue();
  });
  sting::bench::ObsHarness::instance().capture("sting_block_resume", Vm);
}
BENCHMARK(BM_StingBlockResume);

void BM_OsCondvarBlockResume(benchmark::State &State) {
  std::mutex Mu;
  std::condition_variable Cv;
  int Turn = 0; // 0: partner's turn to wait, 1: partner signaled
  bool Stop = false;

  std::thread Partner([&] {
    std::unique_lock<std::mutex> Lock(Mu);
    for (;;) {
      Cv.wait(Lock, [&] { return Turn == 1 || Stop; });
      if (Stop)
        return;
      Turn = 0;
      Cv.notify_all();
    }
  });

  for (auto _ : State) {
    std::unique_lock<std::mutex> Lock(Mu);
    Turn = 1;
    Cv.notify_all();
    Cv.wait(Lock, [&] { return Turn == 0; });
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
  }
  Cv.notify_all();
  Partner.join();
}
BENCHMARK(BM_OsCondvarBlockResume);

} // namespace

STING_BENCH_MAIN();
