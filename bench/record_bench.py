#!/usr/bin/env python3
"""Record and check committed benchmark baselines.

Runs a Google-Benchmark binary with JSON output, reduces each benchmark
family to its median real time across repetitions, and either writes the
result as a committed baseline file or compares it against one:

    # Refresh the committed baseline (run on a quiet machine):
    python3 bench/record_bench.py record \
        --bench build/bench/fig6_baseline --out bench/BENCH_fig6.json

    # CI perf smoke: fail on a >2x per-benchmark regression:
    python3 bench/record_bench.py check \
        --bench build/bench/fig6_baseline --baseline bench/BENCH_fig6.json \
        --max-ratio 2.0 --out fig6-current.json

    # Paired mode: additionally run the merge-base build of the same
    # binary on the same runner and fail on >20% per-row drift. Because
    # both builds execute back to back on one machine, machine speed
    # cancels out and the gate can be much tighter than the absolute one:
    python3 bench/record_bench.py check \
        --bench build/bench/fig6_baseline --baseline bench/BENCH_fig6.json \
        --base-bench base-build/bench/fig6_baseline --drift-ratio 1.2

The baseline stores medians in nanoseconds keyed by benchmark run name.
Medians (not means) keep one descheduled repetition from poisoning the
record; the absolute check ratio is generous because CI runners are slower
and noisier than the recording machine — that gate exists to catch order-
of-magnitude mistakes (an accidental lock on the fast path), not 10%
drifts. The paired gate covers the 10%-to-2x gap.
"""

import argparse
import json
import re
import statistics
import subprocess
import sys

# app_netserver reports client-observed latency quantiles in the row label
# ("p50=12us p95=40us p99=85us"); surface them as synthetic rows so the
# paired drift gate watches tail latency, not just throughput.
LABEL_QUANTILES = re.compile(r"p(50|95|99)=(\d+)us")

# Those quantiles come out of support/Histogram's log-scale cells, which are
# spaced 2x apart: one bucket of scheduler noise on a quantile near a cell
# edge is indistinguishable from a true 2x shift. Both gates therefore
# grant quantile rows one extra bucket of slack on top of their ratio.
BUCKETED_ROW = re.compile(r"#p\d+us$")


def gate_for(name, ratio):
    return ratio * 2.0 if BUCKETED_ROW.search(name) else ratio


def run_benchmarks(bench, repetitions, bench_filter, warmup):
    cmd = [
        bench,
        "--benchmark_format=json",
        f"--benchmark_repetitions={repetitions}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    # The harness prints its stats report to stderr; stdout is pure JSON.
    out = subprocess.run(cmd, check=True, stdout=subprocess.PIPE).stdout
    data = json.loads(out)

    samples = {}
    for run in data.get("benchmarks", []):
        # One entry per repetition; skip the synthesized aggregate rows.
        if run.get("run_type") != "iteration":
            continue
        name = run.get("run_name", run["name"])
        samples.setdefault(name, []).append(float(run["real_time"]))
        # Latency-label rows, kept in the baseline's nanosecond unit.
        for q, us in LABEL_QUANTILES.findall(run.get("label", "")):
            samples.setdefault(f"{name}#p{q}us", []).append(
                float(us) * 1000.0)

    kept = {}
    for name, times in samples.items():
        # Repetitions arrive in execution order; the first few in a fresh
        # process are dominated by allocator and page-fault warmup (up to
        # ~7x on the scheduling microbenchmarks), so drop them as long as
        # at least one sample survives.
        kept[name] = times[warmup:] if len(times) > warmup else times[-1:]
    if not kept:
        sys.exit(f"error: {bench} produced no iteration runs")
    return kept


def reduce_samples(samples, stat):
    """Reduce post-warmup repetition lists to one number per row.

    "median" keeps one descheduled repetition from poisoning the record and
    is what baselines store. "min" is for paired same-machine comparisons
    of a deterministic per-op cost (the tracing-overhead guard): scheduler
    noise only ever inflates a repetition, so best-of-N isolates the real
    cost where medians flip between the machine's contention modes."""
    if stat == "min":
        return {name: min(times) for name, times in samples.items()}
    return {name: statistics.median(times) for name, times in samples.items()}


def cmd_record(args):
    medians = reduce_samples(
        run_benchmarks(args.bench, args.repetitions, args.filter,
                       args.warmup), "median")
    doc = {
        "schema": 1,
        "unit": "ns",
        "repetitions": args.repetitions,
        "benchmarks": medians,
    }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"recorded {len(medians)} benchmark(s) -> {args.out}")
    for name in sorted(medians):
        print(f"  {name:<50} {medians[name]:10.1f} ns")


def cmd_check(args):
    with open(args.baseline) as f:
        baseline = json.load(f)
    base = baseline.get("benchmarks", {})
    samples = run_benchmarks(args.bench, args.repetitions, args.filter,
                             args.warmup)
    medians = reduce_samples(samples, "median")

    if args.out:
        with open(args.out, "w") as f:
            json.dump(
                {"schema": 1, "unit": "ns", "benchmarks": medians}, f,
                indent=2, sort_keys=True)
            f.write("\n")

    failures = []
    for name in sorted(base):
        if name not in medians:
            print(f"MISSING  {name} (in baseline, not measured)")
            failures.append(name)
            continue
        ratio = medians[name] / base[name] if base[name] > 0 else float("inf")
        gate = gate_for(name, args.max_ratio)
        verdict = "FAIL" if ratio > gate else "ok"
        print(f"{verdict:<8} {name:<50} {base[name]:10.1f} -> "
              f"{medians[name]:10.1f} ns  ({ratio:.2f}x)")
        if ratio > gate:
            failures.append(name)
    for name in sorted(set(medians) - set(base)):
        print(f"NEW      {name:<50} {medians[name]:10.1f} ns (no baseline)")

    if failures:
        sys.exit(f"error: {len(failures)} benchmark(s) regressed beyond "
                 f"{args.max_ratio}x: {', '.join(failures)}")
    print(f"all {len(base)} baselined benchmark(s) within "
          f"{args.max_ratio}x")

    if args.base_bench:
        check_paired(args, reduce_samples(samples, args.stat))


def check_paired(args, medians):
    """Paired drift gate: re-run the merge-base build of the binary on this
    same runner and compare row by row. Rows only in one build (added or
    removed benchmarks) are reported but never fail the gate."""
    print(f"\npaired drift check against {args.base_bench} "
          f"(gate {args.drift_ratio:.2f}x, stat {args.stat}):")
    base = reduce_samples(
        run_benchmarks(args.base_bench, args.repetitions, args.filter,
                       args.warmup), args.stat)
    if args.base_out:
        with open(args.base_out, "w") as f:
            json.dump(
                {"schema": 1, "unit": "ns", "benchmarks": base}, f,
                indent=2, sort_keys=True)
            f.write("\n")

    drifted = []
    for name in sorted(set(base) & set(medians)):
        ratio = medians[name] / base[name] if base[name] > 0 else float("inf")
        gate = gate_for(name, args.drift_ratio)
        verdict = "DRIFT" if ratio > gate else "ok"
        print(f"{verdict:<8} {name:<50} {base[name]:10.1f} -> "
              f"{medians[name]:10.1f} ns  ({ratio:.2f}x)")
        if ratio > gate:
            drifted.append(name)
    for name in sorted(set(medians) - set(base)):
        print(f"NEW      {name:<50} (not in merge-base build)")
    for name in sorted(set(base) - set(medians)):
        print(f"GONE     {name:<50} (only in merge-base build)")

    if drifted:
        sys.exit(f"error: {len(drifted)} benchmark(s) drifted beyond "
                 f"{args.drift_ratio}x vs the merge-base build: "
                 f"{', '.join(drifted)}")
    print(f"no paired drift beyond {args.drift_ratio}x "
          f"({len(set(base) & set(medians))} row(s) compared)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--bench", required=True,
                        help="path to the benchmark binary")
    common.add_argument("--repetitions", type=int, default=5)
    common.add_argument("--warmup", type=int, default=2,
                        help="leading repetitions to discard per benchmark")
    common.add_argument("--filter", default=None,
                        help="--benchmark_filter regex passthrough")

    rec = sub.add_parser("record", parents=[common],
                         help="write a new baseline file")
    rec.add_argument("--out", required=True)
    rec.set_defaults(func=cmd_record)

    chk = sub.add_parser("check", parents=[common],
                         help="compare against a baseline; nonzero exit on "
                              "regression")
    chk.add_argument("--baseline", required=True)
    chk.add_argument("--max-ratio", type=float, default=2.0)
    chk.add_argument("--out", default=None,
                     help="also write the current medians here (artifact)")
    chk.add_argument("--base-bench", default=None,
                     help="merge-base build of the same binary; enables the "
                          "paired drift gate")
    chk.add_argument("--drift-ratio", type=float, default=1.2,
                     help="paired gate: fail when current/base exceeds this")
    chk.add_argument("--stat", choices=["median", "min"], default="median",
                     help="paired-gate reduction; \"min\" (best-of-N) for "
                          "deterministic-overhead guards on noisy runners")
    chk.add_argument("--base-out", default=None,
                     help="write the merge-base medians here (artifact)")
    chk.set_defaults(func=cmd_check)

    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
