//===- bench/app_sieve.cpp - Sieve coordination regimes (paper 3.1.1) --------===//
//
// Part of libsting. See DESIGN.md section 3 for the experiment index.
//
// Throughput of the section 3.1.1 stream sieve under its three
// coordination regimes (eager fork, demand-scheduled, round-robin
// placement), over a range of limits. The paper uses the program to show
// one definition spanning paradigms; the bench quantifies what each regime
// costs on this substrate.
//
//===----------------------------------------------------------------------===//

#include "ObsHarness.h"
#include "sting/Sting.h"

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>

using namespace sting;
using TC = ThreadController;

namespace {

/// Wraps the next stage's thunk in a regime-specific spawn. Lazy regimes
/// return a thread that has not been scheduled; the stage demands it when
/// its own input runs dry.
struct FilterOp {
  std::function<ThreadRef(Thread::Thunk)> Spawn;
  bool DemandDownstream = false;
};

constexpr int EndMarker = -1;

void filterStage(int Prime, std::shared_ptr<Stream<int>> Input,
                 const FilterOp &Op, std::shared_ptr<Stream<int>> Primes) {
  auto NextOut = std::make_shared<Stream<int>>();
  auto Pos = Input->begin();
  ThreadRef Next;
  int Seen = 0;
  for (;;) {
    int N = Input->next(Pos);
    if (N == EndMarker)
      break;
    // A controller safe point: consumes a pending preemption, if any.
    if ((++Seen & 15) == 0)
      TC::checkpoint();
    if (N % Prime == 0)
      continue;
    if (!Next) {
      Primes->attach(N);
      const FilterOp OpCopy = Op;
      Next = Op.Spawn([NextPrime = N, NextOut, OpCopy, Primes]() -> AnyValue {
        filterStage(NextPrime, NextOut, OpCopy, Primes);
        return AnyValue();
      });
    }
    NextOut->attach(N);
  }
  if (Next) {
    NextOut->attach(EndMarker);
    if (Op.DemandDownstream) {
      // Demand the delayed stage. thread-run first so a steal refused by
      // the depth bound still leaves the stage runnable, then touch it —
      // usually inlining the whole downstream chain onto this TCB (the
      // paper's thunk stealing, Fig. 4).
      TC::threadRun(*Next);
      TC::threadWait(*Next);
    }
  } else {
    Primes->attach(EndMarker);
  }
}

int sieve(const FilterOp &Op, int Limit) {
  auto Input = std::make_shared<Stream<int>>();
  auto Primes = std::make_shared<Stream<int>>();
  Primes->attach(2);
  ThreadRef First = Op.Spawn([Input, Op, Primes]() -> AnyValue {
    filterStage(2, Input, Op, Primes);
    return AnyValue();
  });
  if (Op.DemandDownstream)
    TC::threadRun(*First); // the producer below is the demand
  for (int N = 3; N <= Limit; ++N)
    Input->attach(N);
  Input->attach(EndMarker);
  int Count = 0;
  auto Pos = Primes->begin();
  while (Primes->next(Pos) != EndMarker)
    ++Count;
  return Count;
}

enum class Regime { Eager, Demand, Throttled, Lazy };

const char *regimeName(Regime R) {
  switch (R) {
  case Regime::Eager:
    return "eager";
  case Regime::Demand:
    return "demand";
  case Regime::Throttled:
    return "throttled";
  case Regime::Lazy:
    return "lazy";
  }
  return "?";
}

void BM_Sieve(benchmark::State &State) {
  const auto Which = static_cast<Regime>(State.range(0));
  const int Limit = static_cast<int>(State.range(1));
  auto &Obs = sting::bench::ObsHarness::instance();

  int Count = 0;
  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config;
    Config.NumVps = 4;
    Config.NumPps = 1;
    Config.EnablePreemption = true;
    Obs.configure(Config);
    VirtualMachine Vm(Config);
    State.ResumeTiming();

    AnyValue R = Vm.run([&]() -> AnyValue {
      FilterOp Op;
      switch (Which) {
      case Regime::Eager:
        Op.Spawn = [](Thread::Thunk Code) {
          return TC::forkThread(std::move(Code));
        };
        break;
      case Regime::Demand:
        Op.Spawn = [](Thread::Thunk Code) {
          ThreadRef T = TC::createThread(std::move(Code));
          TC::threadRun(*T);
          return T;
        };
        break;
      case Regime::Throttled:
        Op.Spawn = [](Thread::Thunk Code) {
          SpawnOptions Opts;
          Opts.Vp = &currentVp()->rightVp();
          return TC::forkThread(std::move(Code), Opts);
        };
        break;
      case Regime::Lazy:
        // Stages stay delayed until the upstream stage demands them; the
        // touch steals the stage's thunk (paper 4.1.1).
        Op.Spawn = [](Thread::Thunk Code) {
          return TC::createThread(std::move(Code));
        };
        Op.DemandDownstream = true;
        break;
      }
      return AnyValue(sieve(Op, Limit));
    });
    Count = R.as<int>();

    State.PauseTiming();
    Obs.capture(std::string("sieve/") + regimeName(Which), Vm);
    State.ResumeTiming();
  }
  State.counters["primes"] = Count;
  State.SetLabel(regimeName(Which));
}

} // namespace

BENCHMARK(BM_Sieve)
    ->ArgNames({"regime", "limit"})
    ->Args({static_cast<int>(Regime::Eager), 500})
    ->Args({static_cast<int>(Regime::Demand), 500})
    ->Args({static_cast<int>(Regime::Throttled), 500})
    ->Args({static_cast<int>(Regime::Lazy), 500})
    ->Args({static_cast<int>(Regime::Eager), 2000})
    ->Args({static_cast<int>(Regime::Demand), 2000})
    ->Args({static_cast<int>(Regime::Throttled), 2000})
    ->Args({static_cast<int>(Regime::Lazy), 2000})
    ->Unit(benchmark::kMillisecond);

STING_BENCH_MAIN();
