//===- bench/app_sieve.cpp - Sieve coordination regimes (paper 3.1.1) --------===//
//
// Part of libsting. See DESIGN.md section 3 for the experiment index.
//
// Throughput of the section 3.1.1 stream sieve under its three
// coordination regimes (eager fork, demand-scheduled, round-robin
// placement), over a range of limits. The paper uses the program to show
// one definition spanning paradigms; the bench quantifies what each regime
// costs on this substrate.
//
//===----------------------------------------------------------------------===//

#include "sting/Sting.h"

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>

using namespace sting;
using TC = ThreadController;

namespace {

using FilterOp = std::function<ThreadRef(Thread::Thunk)>;
constexpr int EndMarker = -1;

void filterStage(int Prime, std::shared_ptr<Stream<int>> Input,
                 const FilterOp &Op, std::shared_ptr<Stream<int>> Primes) {
  auto NextOut = std::make_shared<Stream<int>>();
  auto Pos = Input->begin();
  bool SpawnedNext = false;
  for (;;) {
    int N = Input->next(Pos);
    if (N == EndMarker)
      break;
    if (N % Prime == 0)
      continue;
    if (!SpawnedNext) {
      SpawnedNext = true;
      Primes->attach(N);
      const FilterOp OpCopy = Op;
      Op([NextPrime = N, NextOut, OpCopy, Primes]() -> AnyValue {
        filterStage(NextPrime, NextOut, OpCopy, Primes);
        return AnyValue();
      });
    }
    NextOut->attach(N);
  }
  if (SpawnedNext)
    NextOut->attach(EndMarker);
  else
    Primes->attach(EndMarker);
}

int sieve(const FilterOp &Op, int Limit) {
  auto Input = std::make_shared<Stream<int>>();
  auto Primes = std::make_shared<Stream<int>>();
  Primes->attach(2);
  Op([Input, Op, Primes]() -> AnyValue {
    filterStage(2, Input, Op, Primes);
    return AnyValue();
  });
  for (int N = 3; N <= Limit; ++N)
    Input->attach(N);
  Input->attach(EndMarker);
  int Count = 0;
  auto Pos = Primes->begin();
  while (Primes->next(Pos) != EndMarker)
    ++Count;
  return Count;
}

enum class Regime { Eager, Demand, Throttled };

void BM_Sieve(benchmark::State &State) {
  const auto Which = static_cast<Regime>(State.range(0));
  const int Limit = static_cast<int>(State.range(1));

  int Count = 0;
  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config;
    Config.NumVps = 4;
    Config.NumPps = 1;
    Config.EnablePreemption = true;
    VirtualMachine Vm(Config);
    State.ResumeTiming();

    AnyValue R = Vm.run([&]() -> AnyValue {
      FilterOp Op;
      switch (Which) {
      case Regime::Eager:
        Op = [](Thread::Thunk Code) {
          return TC::forkThread(std::move(Code));
        };
        break;
      case Regime::Demand:
        Op = [](Thread::Thunk Code) {
          ThreadRef T = TC::createThread(std::move(Code));
          TC::threadRun(*T);
          return T;
        };
        break;
      case Regime::Throttled:
        Op = [](Thread::Thunk Code) {
          SpawnOptions Opts;
          Opts.Vp = &currentVp()->rightVp();
          return TC::forkThread(std::move(Code), Opts);
        };
        break;
      }
      return AnyValue(sieve(Op, Limit));
    });
    Count = R.as<int>();
  }
  State.counters["primes"] = Count;
  State.SetLabel(Which == Regime::Eager    ? "eager"
                 : Which == Regime::Demand ? "demand"
                                           : "throttled");
}

} // namespace

BENCHMARK(BM_Sieve)
    ->ArgNames({"regime", "limit"})
    ->Args({static_cast<int>(Regime::Eager), 500})
    ->Args({static_cast<int>(Regime::Demand), 500})
    ->Args({static_cast<int>(Regime::Throttled), 500})
    ->Args({static_cast<int>(Regime::Eager), 2000})
    ->Args({static_cast<int>(Regime::Demand), 2000})
    ->Args({static_cast<int>(Regime::Throttled), 2000})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
