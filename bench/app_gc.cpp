//===- bench/app_gc.cpp - Storage model costs ---------------------------------===//
//
// Part of libsting. See DESIGN.md section 3 for the experiment index.
//
// The storage claims of paper section 2 item 3, quantified:
//
//   * allocation is a bump (compare against malloc);
//   * a scavenge costs in proportion to *live* data, not allocation
//     volume (the generational bet) — swept over live-set fractions;
//   * escape() — the cross-thread hand-off — costs one forced scavenge;
//   * per-thread independence: N mutator heaps scavenge with no shared
//     state beyond old-generation refills.
//
//===----------------------------------------------------------------------===//

#include "ObsHarness.h"

#include "gc/GlobalHeap.h"
#include "gc/LocalHeap.h"
#include "gc/Object.h"

#include <benchmark/benchmark.h>

using namespace sting::gc;

namespace {

void BM_YoungAllocation(benchmark::State &State) {
  GlobalHeap Global;
  LocalHeap Heap(Global, 256 * 1024);
  for (auto _ : State) {
    Value V = Heap.cons(Value::fixnum(1), Value::nil());
    benchmark::DoNotOptimize(V);
  }
  State.SetItemsProcessed(State.iterations());
  State.counters["scavenges"] =
      static_cast<double>(Heap.stats().Scavenges);
}
BENCHMARK(BM_YoungAllocation);

void BM_MallocBaseline(benchmark::State &State) {
  for (auto _ : State) {
    void *P = malloc(32);
    benchmark::DoNotOptimize(P);
    free(P);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_MallocBaseline);

/// Scavenge cost over *freshly allocated* live data of varying size: the
/// generational bet is that cost tracks the live set, not allocation
/// volume. (Each iteration rebuilds the set; data old enough to promote
/// leaves the young area entirely — see BM_SteadyStatePromotion.)
void BM_ScavengeFreshLive(benchmark::State &State) {
  const int LivePercent = static_cast<int>(State.range(0));
  constexpr std::size_t Young = 256 * 1024;
  GlobalHeap Global;
  LocalHeap Heap(Global, Young);
  const auto LivePairs =
      static_cast<std::size_t>(Young / 32.0 * LivePercent / 100.0);

  for (auto _ : State) {
    HandleScope Scope(Heap);
    Handle List(Scope, Value::nil());
    for (std::size_t I = 0; I != LivePairs; ++I)
      List.set(Heap.cons(Value::fixnum(static_cast<std::int64_t>(I)),
                         List.get()));
    Heap.scavenge(); // copies exactly the live list
  }
  State.counters["live_kb"] =
      static_cast<double>(LivePairs * 32) / 1024.0;
  State.counters["copied_mb_total"] =
      static_cast<double>(Heap.stats().BytesCopied) / (1024.0 * 1024.0);
}
BENCHMARK(BM_ScavengeFreshLive)
    ->ArgName("live_pct")
    ->Arg(1)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50);

/// Steady state with long-lived data: after PromoteAge scavenges the live
/// set is promoted and further scavenges cost (almost) nothing — the
/// generational payoff for "long-lived or persistent data".
void BM_SteadyStatePromotion(benchmark::State &State) {
  GlobalHeap Global;
  LocalHeap Heap(Global, 256 * 1024);
  HandleScope Scope(Heap);
  Handle List(Scope, Value::nil());
  for (int I = 0; I != 2000; ++I)
    List.set(Heap.cons(Value::fixnum(I), List.get()));
  for (auto _ : State)
    Heap.scavenge();
  State.counters["promoted_kb"] =
      static_cast<double>(Heap.stats().BytesPromoted) / 1024.0;
}
BENCHMARK(BM_SteadyStatePromotion);

void BM_EscapeSmallGraph(benchmark::State &State) {
  const int Nodes = static_cast<int>(State.range(0));
  GlobalHeap Global;
  LocalHeap Heap(Global, 256 * 1024);
  for (auto _ : State) {
    HandleScope Scope(Heap);
    Value List = Value::nil();
    for (int I = 0; I != Nodes; ++I)
      List = Heap.cons(Value::fixnum(I), List);
    Handle H(Scope, List);
    Value Escaped = Heap.escape(H.get());
    benchmark::DoNotOptimize(Escaped);
  }
  State.counters["escapes"] = static_cast<double>(Heap.stats().Escapes);
}
BENCHMARK(BM_EscapeSmallGraph)->ArgName("nodes")->Arg(1)->Arg(16)->Arg(128);

void BM_SharedAllocationContention(benchmark::State &State) {
  // Old-generation allocation takes the heap lock; measure the
  // single-threaded op cost that producers pay on the shared path.
  GlobalHeap Global;
  for (auto _ : State) {
    Value V = Global.consShared(Value::fixnum(1), Value::nil());
    benchmark::DoNotOptimize(V);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SharedAllocationContention);

void BM_FullCollection(benchmark::State &State) {
  const int LiveLists = static_cast<int>(State.range(0));
  GlobalHeap Global(64 * 1024);
  std::vector<Value> Roots(static_cast<std::size_t>(LiveLists),
                           Value::nil());
  for (auto &Root : Roots) {
    Global.addRoot(&Root);
    for (int I = 0; I != 200; ++I)
      Root = Global.consShared(Value::fixnum(I), Root);
  }
  // Plus garbage.
  for (int I = 0; I != 5000; ++I)
    Global.consShared(Value::fixnum(I), Value::nil());

  for (auto _ : State)
    Global.collectFull({});

  for (auto &Root : Roots)
    Global.removeRoot(&Root);
  State.counters["live_lists"] = LiveLists;
}
BENCHMARK(BM_FullCollection)->ArgName("live")->Arg(1)->Arg(8)->Arg(32);

} // namespace

// No virtual machines here — the harness main only supplies the
// --trace-out flag surface and (empty) stats epilogue.
STING_BENCH_MAIN();
