//===- bench/ablation_queues.cpp - Queue locality vs sharing ----------------===//
//
// Part of libsting. See DESIGN.md section 3 for the experiment index.
//
// Materializes section 3.3's scheduling-policy discussion:
//
//   * "when there exist many long-lived non-blocking threads (of roughly
//     equal duration), most VPs will be busy most of the time executing
//     threads on their own local ready queue" — local queues win (no
//     cross-VP contention on dispatch);
//   * "global queues imply contention among policy managers whenever they
//     need to execute a new thread, but such an implementation is useful"
//     for worker farms — the shared queue balances unequal work for free;
//   * steal-half gives local dispatch plus migration for bursty spawn
//     storms.
//
//===----------------------------------------------------------------------===//

#include "ObsHarness.h"
#include "sting/Sting.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace sting;
using TC = ThreadController;

namespace {

enum class Policy { LocalFifo, GlobalFifo, StealHalf };

PolicyFactory makePolicy(Policy P) {
  switch (P) {
  case Policy::LocalFifo:
    return makeLocalFifoPolicy();
  case Policy::GlobalFifo:
    return makeGlobalFifoPolicy();
  case Policy::StealHalf:
    return makeStealHalfPolicy();
  }
  STING_UNREACHABLE("bad policy");
}

const char *policyName(Policy P) {
  switch (P) {
  case Policy::LocalFifo:
    return "local-fifo";
  case Policy::GlobalFifo:
    return "global-fifo";
  case Policy::StealHalf:
    return "steal-half";
  }
  STING_UNREACHABLE("bad policy");
}

/// Worker farm: a bounded pool of long-lived threads that churn through
/// equal-size work quanta and rarely block.
void BM_WorkerFarm(benchmark::State &State) {
  const auto Which = static_cast<Policy>(State.range(0));
  constexpr int Workers = 8;
  constexpr int QuantaPerWorker = 400;

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config;
    Config.NumVps = 4;
    Config.NumPps = 1;
    Config.Policy = makePolicy(Which);
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    State.ResumeTiming();

    Vm.run([&]() -> AnyValue {
      std::vector<ThreadRef> Pool;
      for (int W = 0; W != Workers; ++W)
        Pool.push_back(TC::forkThread([&]() -> AnyValue {
          volatile long Acc = 0;
          for (int Q = 0; Q != QuantaPerWorker; ++Q) {
            for (int I = 0; I != 300; ++I)
              Acc = Acc + I;
            TC::yieldProcessor(); // end of quantum
          }
          return AnyValue();
        }));
      waitForAll(Pool);
      return AnyValue();
    });

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture(
        std::string("worker_farm/") + policyName(Which), Vm);
    State.ResumeTiming();
  }
  State.SetLabel(policyName(Which));
}

/// Spawn storm: a tree of short-lived threads created on one VP — the
/// bursty shape where migration (steal-half / global) beats strictly
/// local queues.
void BM_SpawnStorm(benchmark::State &State) {
  const auto Which = static_cast<Policy>(State.range(0));
  constexpr int Depth = 9; // 2^9 leaves

  for (auto _ : State) {
    State.PauseTiming();
    VmConfig Config;
    Config.NumVps = 4;
    Config.NumPps = 1;
    Config.Policy = makePolicy(Which);
    sting::bench::ObsHarness::instance().configure(Config);
    VirtualMachine Vm(Config);
    State.ResumeTiming();

    struct Tree {
      static AnyValue node(int D) {
        if (D == 0) {
          volatile long Acc = 0;
          for (int I = 0; I != 500; ++I)
            Acc = Acc + I;
          return AnyValue(1);
        }
        SpawnOptions Opts;
        Opts.Stealable = false; // isolate queue behaviour from stealing
        ThreadRef L = TC::forkThread(
            [D]() -> AnyValue { return node(D - 1); }, Opts);
        ThreadRef R = TC::forkThread(
            [D]() -> AnyValue { return node(D - 1); }, Opts);
        return AnyValue(TC::threadValue(*L).as<int>() +
                        TC::threadValue(*R).as<int>());
      }
    };

    SpawnOptions Root;
    Root.Vp = &Vm.vp(0);
    AnyValue R = Vm.run(
        []() -> AnyValue { return Tree::node(Depth); }, Root);
    if (R.as<int>() != (1 << Depth))
      State.SkipWithError("wrong tree sum");

    State.PauseTiming();
    sting::bench::ObsHarness::instance().capture(
        std::string("spawn_storm/") + policyName(Which), Vm);
    State.ResumeTiming();
  }
  State.SetLabel(policyName(Which));
}

} // namespace

BENCHMARK(BM_WorkerFarm)
    ->ArgName("policy")
    ->Arg(static_cast<int>(Policy::LocalFifo))
    ->Arg(static_cast<int>(Policy::GlobalFifo))
    ->Arg(static_cast<int>(Policy::StealHalf))
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SpawnStorm)
    ->ArgName("policy")
    ->Arg(static_cast<int>(Policy::LocalFifo))
    ->Arg(static_cast<int>(Policy::GlobalFifo))
    ->Arg(static_cast<int>(Policy::StealHalf))
    ->Unit(benchmark::kMillisecond);

STING_BENCH_MAIN();
