//===- obs/SchedStats.cpp - Per-VP scheduler counters ---------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "obs/SchedStats.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace sting::obs {

SchedStatsSnapshot SchedStats::snapshot() const {
  SchedStatsSnapshot S;
  S.Enqueues = Enqueues;
  S.Dequeues = Dequeues;
  S.SkippedStale = SkippedStale;
  S.MailboxPosts = MailboxPosts;
  S.MailboxDrains = MailboxDrains;
  S.Dispatches = Dispatches;
  S.FreshBinds = FreshBinds;
  S.Resumes = Resumes;
  S.Yields = Yields;
  S.Parks = Parks;
  S.Exits = Exits;
  S.IdleCalls = IdleCalls;
  S.TcbReuses = TcbReuses;
  S.TcbAllocs = TcbAllocs;
  S.StealsAttempted = StealsAttempted;
  S.StealsSucceeded = StealsSucceeded;
  S.StealsFailed = StealsFailed;
  S.DequeSteals = DequeSteals;
  S.DequeStealCas = DequeStealCas;
  S.VpParks = VpParks;
  S.VpUnparks = VpUnparks;
  S.PreemptsDelivered = PreemptsDelivered;
  S.PreemptsDeferred = PreemptsDeferred;
  S.ThreadsCreated = ThreadsCreated;
  S.ThreadsTerminated = ThreadsTerminated;
  S.Blocks = Blocks;
  S.Wakeups = Wakeups;
  S.NetAccepts = NetAccepts;
  S.NetReads = NetReads;
  S.NetWrites = NetWrites;
  S.NetBackpressureStalls = NetBackpressureStalls;
  S.NetRetries = NetRetries;
  S.NetBreakerOpens = NetBreakerOpens;
  S.NetShedded = NetShedded;
  S.PoolCheckoutWaits = PoolCheckoutWaits;
  S.TupleHandoffs = TupleHandoffs;
  S.TupleWakeups = TupleWakeups;
  S.RouterRoutes = RouterRoutes;
  S.RouterFanouts = RouterFanouts;
  S.RouterRetracts = RouterRetracts;
  S.RouterFailovers = RouterFailovers;
  S.ReplForwards = ReplForwards;
  S.ReplPromotions = ReplPromotions;
  S.ReplCatchupTuples = ReplCatchupTuples;
  S.RunSliceNanos = RunSliceNanos;
  S.GcPauseNanos = GcPauseNanos;
  return S;
}

SchedStatsSnapshot &
SchedStatsSnapshot::operator+=(const SchedStatsSnapshot &Other) {
  Enqueues += Other.Enqueues;
  Dequeues += Other.Dequeues;
  SkippedStale += Other.SkippedStale;
  MailboxPosts += Other.MailboxPosts;
  MailboxDrains += Other.MailboxDrains;
  Dispatches += Other.Dispatches;
  FreshBinds += Other.FreshBinds;
  Resumes += Other.Resumes;
  Yields += Other.Yields;
  Parks += Other.Parks;
  Exits += Other.Exits;
  IdleCalls += Other.IdleCalls;
  TcbReuses += Other.TcbReuses;
  TcbAllocs += Other.TcbAllocs;
  StealsAttempted += Other.StealsAttempted;
  StealsSucceeded += Other.StealsSucceeded;
  StealsFailed += Other.StealsFailed;
  DequeSteals += Other.DequeSteals;
  DequeStealCas += Other.DequeStealCas;
  VpParks += Other.VpParks;
  VpUnparks += Other.VpUnparks;
  PreemptsDelivered += Other.PreemptsDelivered;
  PreemptsDeferred += Other.PreemptsDeferred;
  ThreadsCreated += Other.ThreadsCreated;
  ThreadsTerminated += Other.ThreadsTerminated;
  Blocks += Other.Blocks;
  Wakeups += Other.Wakeups;
  NetAccepts += Other.NetAccepts;
  NetReads += Other.NetReads;
  NetWrites += Other.NetWrites;
  NetBackpressureStalls += Other.NetBackpressureStalls;
  NetRetries += Other.NetRetries;
  NetBreakerOpens += Other.NetBreakerOpens;
  NetShedded += Other.NetShedded;
  PoolCheckoutWaits += Other.PoolCheckoutWaits;
  TupleHandoffs += Other.TupleHandoffs;
  TupleWakeups += Other.TupleWakeups;
  RouterRoutes += Other.RouterRoutes;
  RouterFanouts += Other.RouterFanouts;
  RouterRetracts += Other.RouterRetracts;
  RouterFailovers += Other.RouterFailovers;
  ReplForwards += Other.ReplForwards;
  ReplPromotions += Other.ReplPromotions;
  ReplCatchupTuples += Other.ReplCatchupTuples;
  TraceEvents += Other.TraceEvents;
  TraceDrops += Other.TraceDrops;
  RunSliceNanos.merge(Other.RunSliceNanos);
  GcPauseNanos.merge(Other.GcPauseNanos);
  return *this;
}

namespace {

constexpr CounterRow Rows[] = {
    {"enqueues", "sting_enqueues_total", &SchedStatsSnapshot::Enqueues},
    {"dequeues", "sting_dequeues_total", &SchedStatsSnapshot::Dequeues},
    {"stale skips", "sting_stale_skips_total",
     &SchedStatsSnapshot::SkippedStale},
    {"mailbox posts", "sting_mailbox_posts_total",
     &SchedStatsSnapshot::MailboxPosts},
    {"mailbox drains", "sting_mailbox_drains_total",
     &SchedStatsSnapshot::MailboxDrains},
    {"dispatches", "sting_dispatches_total",
     &SchedStatsSnapshot::Dispatches},
    {"  fresh binds", "sting_fresh_binds_total",
     &SchedStatsSnapshot::FreshBinds},
    {"  resumes", "sting_resumes_total", &SchedStatsSnapshot::Resumes},
    {"yields", "sting_yields_total", &SchedStatsSnapshot::Yields},
    {"parks", "sting_parks_total", &SchedStatsSnapshot::Parks},
    {"exits", "sting_exits_total", &SchedStatsSnapshot::Exits},
    {"idle calls", "sting_idle_calls_total",
     &SchedStatsSnapshot::IdleCalls},
    {"tcb reuses", "sting_tcb_reuses_total",
     &SchedStatsSnapshot::TcbReuses},
    {"tcb allocs", "sting_tcb_allocs_total",
     &SchedStatsSnapshot::TcbAllocs},
    {"steals attempted", "sting_steals_attempted_total",
     &SchedStatsSnapshot::StealsAttempted},
    {"steals succeeded", "sting_steals_succeeded_total",
     &SchedStatsSnapshot::StealsSucceeded},
    {"steals failed", "sting_steals_failed_total",
     &SchedStatsSnapshot::StealsFailed},
    {"deque steals", "sting_deque_steals_total",
     &SchedStatsSnapshot::DequeSteals},
    {"deque steal cas", "sting_deque_steal_cas_total",
     &SchedStatsSnapshot::DequeStealCas},
    {"vp parks", "sting_vp_parks_total", &SchedStatsSnapshot::VpParks},
    {"vp unparks", "sting_vp_unparks_total",
     &SchedStatsSnapshot::VpUnparks},
    {"preempts delivered", "sting_preempts_delivered_total",
     &SchedStatsSnapshot::PreemptsDelivered},
    {"preempts deferred", "sting_preempts_deferred_total",
     &SchedStatsSnapshot::PreemptsDeferred},
    {"threads created", "sting_threads_created_total",
     &SchedStatsSnapshot::ThreadsCreated},
    {"threads terminated", "sting_threads_terminated_total",
     &SchedStatsSnapshot::ThreadsTerminated},
    {"blocks", "sting_blocks_total", &SchedStatsSnapshot::Blocks},
    {"wakeups", "sting_wakeups_total", &SchedStatsSnapshot::Wakeups},
    {"net accepts", "sting_net_accepts_total",
     &SchedStatsSnapshot::NetAccepts},
    {"net reads", "sting_net_reads_total", &SchedStatsSnapshot::NetReads},
    {"net writes", "sting_net_writes_total",
     &SchedStatsSnapshot::NetWrites},
    {"net bp stalls", "sting_net_backpressure_stalls_total",
     &SchedStatsSnapshot::NetBackpressureStalls},
    {"net retries", "sting_net_retries_total",
     &SchedStatsSnapshot::NetRetries},
    {"net breaker opens", "sting_net_breaker_opens_total",
     &SchedStatsSnapshot::NetBreakerOpens},
    {"net shedded", "sting_net_shedded_total",
     &SchedStatsSnapshot::NetShedded},
    {"pool checkout waits", "sting_pool_checkout_waits_total",
     &SchedStatsSnapshot::PoolCheckoutWaits},
    {"tuple handoffs", "sting_tuple_handoffs_total",
     &SchedStatsSnapshot::TupleHandoffs},
    {"tuple wakeups", "sting_tuple_wakeups_total",
     &SchedStatsSnapshot::TupleWakeups},
    {"router routes", "sting_router_routes_total",
     &SchedStatsSnapshot::RouterRoutes},
    {"router fanouts", "sting_router_fanouts_total",
     &SchedStatsSnapshot::RouterFanouts},
    {"router retracts", "sting_router_retracts_total",
     &SchedStatsSnapshot::RouterRetracts},
    {"router failovers", "sting_router_failovers_total",
     &SchedStatsSnapshot::RouterFailovers},
    {"repl forwards", "sting_repl_forwards_total",
     &SchedStatsSnapshot::ReplForwards},
    {"repl promotions", "sting_repl_promotions_total",
     &SchedStatsSnapshot::ReplPromotions},
    {"repl catchup tuples", "sting_repl_catchup_tuples_total",
     &SchedStatsSnapshot::ReplCatchupTuples},
    {"trace events", "sting_trace_events_total",
     &SchedStatsSnapshot::TraceEvents},
    {"trace drops", "sting_trace_drops_total",
     &SchedStatsSnapshot::TraceDrops},
};

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (N > 0)
    Out.append(Buf, static_cast<std::size_t>(N) < sizeof(Buf)
                        ? static_cast<std::size_t>(N)
                        : sizeof(Buf) - 1);
}

} // namespace

const CounterRow *counterRows(std::size_t &Count) {
  Count = sizeof(Rows) / sizeof(Rows[0]);
  return Rows;
}

std::string formatStatsReport(const SchedStatsSnapshot &Total,
                              const std::vector<SchedStatsSnapshot> &PerVp) {
  std::string Out;
  Out += "--- scheduler stats ";
  Out.append(59, '-');
  Out += '\n';
  appendf(Out, "%-20s %14s", "counter", "total");
  for (std::size_t V = 0; V != PerVp.size(); ++V)
    appendf(Out, " %10s%zu", "vp", V);
  Out += '\n';
  for (const CounterRow &R : Rows) {
    appendf(Out, "%-20s %14" PRIu64, R.Name, Total.*(R.Field));
    for (const SchedStatsSnapshot &S : PerVp)
      appendf(Out, " %11" PRIu64, S.*(R.Field));
    Out += '\n';
  }
  // Zero samples is the common case (slices are only timed while event
  // tracing is on); print the line anyway so readers learn it exists.
  appendf(Out,
          "run slices: %" PRIu64 " samples, mean %.0fns, "
          "p50 %" PRIu64 "ns, p95 %" PRIu64 "ns, p99 %" PRIu64 "ns\n",
          Total.RunSliceNanos.count(), Total.RunSliceNanos.meanNanos(),
          Total.RunSliceNanos.p50Nanos(), Total.RunSliceNanos.p95Nanos(),
          Total.RunSliceNanos.p99Nanos());
  appendf(Out,
          "gc pauses:  %" PRIu64 " samples, mean %.0fns, "
          "p50 %" PRIu64 "ns, p95 %" PRIu64 "ns, p99 %" PRIu64 "ns\n",
          Total.GcPauseNanos.count(), Total.GcPauseNanos.meanNanos(),
          Total.GcPauseNanos.p50Nanos(), Total.GcPauseNanos.p95Nanos(),
          Total.GcPauseNanos.p99Nanos());
  Out.append(79, '-');
  Out += '\n';
  return Out;
}

} // namespace sting::obs
