//===- obs/SchedStats.cpp - Per-VP scheduler counters ---------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "obs/SchedStats.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace sting::obs {

SchedStatsSnapshot SchedStats::snapshot() const {
  SchedStatsSnapshot S;
  S.Enqueues = Enqueues;
  S.Dequeues = Dequeues;
  S.SkippedStale = SkippedStale;
  S.MailboxPosts = MailboxPosts;
  S.MailboxDrains = MailboxDrains;
  S.Dispatches = Dispatches;
  S.FreshBinds = FreshBinds;
  S.Resumes = Resumes;
  S.Yields = Yields;
  S.Parks = Parks;
  S.Exits = Exits;
  S.IdleCalls = IdleCalls;
  S.TcbReuses = TcbReuses;
  S.TcbAllocs = TcbAllocs;
  S.StealsAttempted = StealsAttempted;
  S.StealsSucceeded = StealsSucceeded;
  S.StealsFailed = StealsFailed;
  S.DequeSteals = DequeSteals;
  S.DequeStealCas = DequeStealCas;
  S.VpParks = VpParks;
  S.VpUnparks = VpUnparks;
  S.PreemptsDelivered = PreemptsDelivered;
  S.PreemptsDeferred = PreemptsDeferred;
  S.ThreadsCreated = ThreadsCreated;
  S.ThreadsTerminated = ThreadsTerminated;
  S.Blocks = Blocks;
  S.Wakeups = Wakeups;
  S.NetAccepts = NetAccepts;
  S.NetReads = NetReads;
  S.NetWrites = NetWrites;
  S.NetBackpressureStalls = NetBackpressureStalls;
  S.RunSliceNanos = RunSliceNanos;
  return S;
}

SchedStatsSnapshot &
SchedStatsSnapshot::operator+=(const SchedStatsSnapshot &Other) {
  Enqueues += Other.Enqueues;
  Dequeues += Other.Dequeues;
  SkippedStale += Other.SkippedStale;
  MailboxPosts += Other.MailboxPosts;
  MailboxDrains += Other.MailboxDrains;
  Dispatches += Other.Dispatches;
  FreshBinds += Other.FreshBinds;
  Resumes += Other.Resumes;
  Yields += Other.Yields;
  Parks += Other.Parks;
  Exits += Other.Exits;
  IdleCalls += Other.IdleCalls;
  TcbReuses += Other.TcbReuses;
  TcbAllocs += Other.TcbAllocs;
  StealsAttempted += Other.StealsAttempted;
  StealsSucceeded += Other.StealsSucceeded;
  StealsFailed += Other.StealsFailed;
  DequeSteals += Other.DequeSteals;
  DequeStealCas += Other.DequeStealCas;
  VpParks += Other.VpParks;
  VpUnparks += Other.VpUnparks;
  PreemptsDelivered += Other.PreemptsDelivered;
  PreemptsDeferred += Other.PreemptsDeferred;
  ThreadsCreated += Other.ThreadsCreated;
  ThreadsTerminated += Other.ThreadsTerminated;
  Blocks += Other.Blocks;
  Wakeups += Other.Wakeups;
  NetAccepts += Other.NetAccepts;
  NetReads += Other.NetReads;
  NetWrites += Other.NetWrites;
  NetBackpressureStalls += Other.NetBackpressureStalls;
  RunSliceNanos.merge(Other.RunSliceNanos);
  return *this;
}

namespace {

struct Row {
  const char *Name;
  std::uint64_t SchedStatsSnapshot::*Field;
};

constexpr Row Rows[] = {
    {"enqueues", &SchedStatsSnapshot::Enqueues},
    {"dequeues", &SchedStatsSnapshot::Dequeues},
    {"stale skips", &SchedStatsSnapshot::SkippedStale},
    {"mailbox posts", &SchedStatsSnapshot::MailboxPosts},
    {"mailbox drains", &SchedStatsSnapshot::MailboxDrains},
    {"dispatches", &SchedStatsSnapshot::Dispatches},
    {"  fresh binds", &SchedStatsSnapshot::FreshBinds},
    {"  resumes", &SchedStatsSnapshot::Resumes},
    {"yields", &SchedStatsSnapshot::Yields},
    {"parks", &SchedStatsSnapshot::Parks},
    {"exits", &SchedStatsSnapshot::Exits},
    {"idle calls", &SchedStatsSnapshot::IdleCalls},
    {"tcb reuses", &SchedStatsSnapshot::TcbReuses},
    {"tcb allocs", &SchedStatsSnapshot::TcbAllocs},
    {"steals attempted", &SchedStatsSnapshot::StealsAttempted},
    {"steals succeeded", &SchedStatsSnapshot::StealsSucceeded},
    {"steals failed", &SchedStatsSnapshot::StealsFailed},
    {"deque steals", &SchedStatsSnapshot::DequeSteals},
    {"deque steal cas", &SchedStatsSnapshot::DequeStealCas},
    {"vp parks", &SchedStatsSnapshot::VpParks},
    {"vp unparks", &SchedStatsSnapshot::VpUnparks},
    {"preempts delivered", &SchedStatsSnapshot::PreemptsDelivered},
    {"preempts deferred", &SchedStatsSnapshot::PreemptsDeferred},
    {"threads created", &SchedStatsSnapshot::ThreadsCreated},
    {"threads terminated", &SchedStatsSnapshot::ThreadsTerminated},
    {"blocks", &SchedStatsSnapshot::Blocks},
    {"wakeups", &SchedStatsSnapshot::Wakeups},
    {"net accepts", &SchedStatsSnapshot::NetAccepts},
    {"net reads", &SchedStatsSnapshot::NetReads},
    {"net writes", &SchedStatsSnapshot::NetWrites},
    {"net bp stalls", &SchedStatsSnapshot::NetBackpressureStalls},
};

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (N > 0)
    Out.append(Buf, static_cast<std::size_t>(N) < sizeof(Buf)
                        ? static_cast<std::size_t>(N)
                        : sizeof(Buf) - 1);
}

} // namespace

std::string formatStatsReport(const SchedStatsSnapshot &Total,
                              const std::vector<SchedStatsSnapshot> &PerVp) {
  std::string Out;
  Out += "--- scheduler stats ";
  Out.append(59, '-');
  Out += '\n';
  appendf(Out, "%-20s %14s", "counter", "total");
  for (std::size_t V = 0; V != PerVp.size(); ++V)
    appendf(Out, " %10s%zu", "vp", V);
  Out += '\n';
  for (const Row &R : Rows) {
    appendf(Out, "%-20s %14" PRIu64, R.Name, Total.*(R.Field));
    for (const SchedStatsSnapshot &S : PerVp)
      appendf(Out, " %11" PRIu64, S.*(R.Field));
    Out += '\n';
  }
  // Zero samples is the common case (slices are only timed while event
  // tracing is on); print the line anyway so readers learn it exists.
  appendf(Out,
          "run slices: %" PRIu64 " samples, mean %.0fns, "
          "p50 %" PRIu64 "ns, p95 %" PRIu64 "ns, p99 %" PRIu64 "ns\n",
          Total.RunSliceNanos.count(), Total.RunSliceNanos.meanNanos(),
          Total.RunSliceNanos.p50Nanos(), Total.RunSliceNanos.p95Nanos(),
          Total.RunSliceNanos.p99Nanos());
  Out.append(79, '-');
  Out += '\n';
  return Out;
}

} // namespace sting::obs
