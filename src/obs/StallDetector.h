//===- obs/StallDetector.h - Dispatch-progress stall detection ---*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pure stall-detection logic over per-VP heartbeat samples (DESIGN.md
/// section 7.3). The obs layer cannot see core types, so the sampler
/// (core/Watchdog) flattens machine state into plain structs and feeds
/// them in; the detector keeps per-VP progress history and renders
/// budget-sustained verdicts:
///
///   - VpStalled: a VP has held work (a running thread or a non-empty
///     ready queue) for a full budget while its dispatch-progress counter
///     never moved — a runaway thread that never reaches a checkpoint, or
///     a wedged scheduler loop. Both clocks must exhaust the budget: work
///     that just arrived on a long-idle VP (a timer wake racing the
///     sampler) is not a stall until it sits unserviced for a budget too.
///   - MachineBlocked: every VP has been progress-free and work-free for a
///     full budget while live threads remain and no timer is pending —
///     nothing inside the machine can ever wake it (a deadlock).
///
/// Verdicts are edge-triggered: once a stall is reported the detector
/// stays silent until progress resumes, so one deadlock yields one report.
///
//===----------------------------------------------------------------------===//

#ifndef STING_OBS_STALLDETECTOR_H
#define STING_OBS_STALLDETECTOR_H

#include <cstdint>
#include <vector>

namespace sting::obs {

/// One VP's heartbeat at a sampling instant.
struct VpSample {
  /// Monotonic dispatch-progress value (sum of switch counters); any
  /// change means the scheduler loop is alive and moving threads.
  std::uint64_t Progress = 0;
  bool HasReadyWork = false;  ///< policy reports queued schedulables
  bool RunningThread = false; ///< a TCB is dispatched right now
};

/// The whole machine's heartbeat at a sampling instant.
struct MachineSample {
  std::uint64_t NowNanos = 0;
  std::uint64_t LiveThreads = 0;   ///< created minus determined
  std::uint64_t PendingTimers = 0; ///< clock timers that will still fire
  std::vector<VpSample> Vps;
};

enum class StallVerdict : std::uint8_t {
  Healthy,
  VpStalled,      ///< at least one VP holds work without progressing
  MachineBlocked, ///< no VP can ever progress again (deadlock)
};

const char *stallVerdictName(StallVerdict V);

/// Budget-sustained stall detection over a stream of samples.
class StallDetector {
public:
  explicit StallDetector(std::uint64_t BudgetNanos)
      : BudgetNanos(BudgetNanos) {}

  /// Feeds one sample; \returns the verdict for this instant. Healthy is
  /// returned while a previously reported stall persists (edge
  /// triggering); a fresh verdict fires again only after progress resumes.
  StallVerdict observe(const MachineSample &S);

  /// VP indexes implicated by the last non-Healthy verdict.
  const std::vector<unsigned> &stalledVps() const { return Stalled; }

  /// Nanoseconds the given VP has gone without progress as of the last
  /// sample (0 if it progressed in that sample).
  std::uint64_t stallAgeNanos(unsigned Vp) const;

  std::uint64_t budgetNanos() const { return BudgetNanos; }

private:
  struct VpHistory {
    std::uint64_t LastProgress = 0;
    std::uint64_t LastChangeNanos = 0;
    /// Instant work was first seen in the current continuously-has-work
    /// run (meaningful while HadWork).
    std::uint64_t WorkSinceNanos = 0;
    bool HadWork = false;
    bool Seen = false;
  };

  std::uint64_t BudgetNanos;
  std::vector<VpHistory> History;
  std::vector<unsigned> Stalled;
  std::uint64_t LastNowNanos = 0;
  bool Reported = false; ///< edge-trigger latch
};

} // namespace sting::obs

#endif // STING_OBS_STALLDETECTOR_H
