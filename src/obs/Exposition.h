//===- obs/Exposition.h - Prometheus text exposition ------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders scheduler statistics in the Prometheus text exposition format
/// (version 0.0.4), so a running VM can be scraped over the wire by the
/// net-layer metrics service or dumped by tools.
///
/// Every counter from the shared CounterRow table becomes a `# TYPE`
/// header plus an aggregate sample and one `{vp="N"}`-labelled sample per
/// virtual processor. The run-slice and GC-pause histograms are exported
/// as summaries (p50/p95/p99 quantiles, _sum, _count). The formatter is
/// pure string work over snapshots — callers decide when it is safe to
/// snapshot (see SchedStats.h for the concurrency contract).
///
//===----------------------------------------------------------------------===//

#ifndef STING_OBS_EXPOSITION_H
#define STING_OBS_EXPOSITION_H

#include "obs/SchedStats.h"

#include <string>
#include <vector>

namespace sting::obs {

/// Renders \p Total plus the per-VP breakdown as Prometheus text.
/// \p PerVp may be empty (aggregate samples only).
std::string formatPrometheus(const SchedStatsSnapshot &Total,
                             const std::vector<SchedStatsSnapshot> &PerVp);

} // namespace sting::obs

#endif // STING_OBS_EXPOSITION_H
