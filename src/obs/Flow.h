//===- obs/Flow.h - Causal flow identifiers ----------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 64-bit causal flow identifiers. A flow names one logical request or
/// activity as it hops across threads, VPs and machines: every thread gets
/// a FlowId at fork (inherited from its creator when the creator has one,
/// freshly minted otherwise), unpark edges adopt the waker's flow into the
/// wakee, tuple put→take handoffs carry the depositor's flow to the
/// matcher, and the wire protocol's Flow tag extends the chain across
/// request/reply frames. TraceBuffer stamps the current flow into every
/// record, and TraceExporter turns same-flow hops across VP tracks into
/// Chrome/Perfetto flow arrows.
///
/// Propagation is unconditional — a TLS word plus relaxed atomics, cheap
/// enough to leave on in every build — while *recording* stays behind
/// STING_TRACE like every other event.
///
/// FlowId 0 means "no flow": external OS threads (the preemption clock,
/// test drivers) carry 0 and never overwrite a thread's inherited flow.
///
/// The accessors are deliberately out-of-line (and noinline): sting
/// threads migrate between OS threads at user-level context switches, so a
/// compiler that caches the thread_local's address across a park would
/// read another OS thread's slot — or a dead one — after resumption.
/// Keeping every TLS access behind an opaque call makes the address
/// non-cacheable.
///
//===----------------------------------------------------------------------===//

#ifndef STING_OBS_FLOW_H
#define STING_OBS_FLOW_H

#include <cstdint>

namespace sting::obs {

/// Identifies one causal flow; 0 = no flow.
using FlowId = std::uint64_t;

/// \returns the flow the calling OS thread is currently executing on
/// behalf of (0 off-substrate or before any flow was installed).
FlowId currentFlowId();

/// Installs \p Flow as the calling OS thread's current flow. The scheduler
/// calls this around every dispatch; subsystems adopting a flow (unpark,
/// tuple match, net handlers) call it with the adopted id.
void setCurrentFlowId(FlowId Flow);

/// Mints a fresh process-unique nonzero FlowId.
FlowId newFlowId();

/// Saves the current flow, installs \p Flow, restores on destruction.
/// Used around stolen-thunk execution and net connection handlers.
class FlowScope {
public:
  explicit FlowScope(FlowId Flow) : Saved(currentFlowId()) {
    setCurrentFlowId(Flow);
  }
  ~FlowScope() { setCurrentFlowId(Saved); }

  FlowScope(const FlowScope &) = delete;
  FlowScope &operator=(const FlowScope &) = delete;

private:
  FlowId Saved;
};

} // namespace sting::obs

#endif // STING_OBS_FLOW_H
