//===- obs/Flow.cpp - Causal flow identifiers ------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "obs/Flow.h"

#include <atomic>

namespace sting::obs {

namespace {
thread_local FlowId TlsCurrentFlow = 0;
} // namespace

// noinline is load-bearing, not an optimization hint: with the accessors
// inlined (or IPO'd), the compiler may compute the thread_local's address
// once and reuse it across a user-level context switch, after which the
// sting thread may be running on a different OS thread — UBSan flagged
// exactly that as a load through a stale FlowId pointer. An opaque call
// re-derives the address on every access.
__attribute__((noinline)) FlowId currentFlowId() { return TlsCurrentFlow; }

__attribute__((noinline)) void setCurrentFlowId(FlowId Flow) {
  TlsCurrentFlow = Flow;
}

FlowId newFlowId() {
  // Process-wide; flows cross VM boundaries (a test may run several VMs),
  // so the counter cannot live on VirtualMachine. Starts at 1: 0 is the
  // "no flow" sentinel.
  static std::atomic<FlowId> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace sting::obs
