//===- obs/Flow.cpp - Causal flow identifiers ------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "obs/Flow.h"

#include <atomic>

namespace sting::obs {

namespace detail {
thread_local FlowId TlsCurrentFlow = 0;
} // namespace detail

FlowId newFlowId() {
  // Process-wide; flows cross VM boundaries (a test may run several VMs),
  // so the counter cannot live on VirtualMachine. Starts at 1: 0 is the
  // "no flow" sentinel.
  static std::atomic<FlowId> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace sting::obs
