//===- obs/TraceBuffer.cpp - Per-VP SPSC trace ring -----------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceBuffer.h"

#include "obs/Flow.h"
#include "support/Clock.h"

#include <bit>

namespace sting::obs {

namespace detail {
thread_local TraceBuffer *TlsTraceBuffer = nullptr;
} // namespace detail

TraceBuffer::TraceBuffer(unsigned VpId, std::size_t Capacity)
    : OwnerVpId(VpId) {
  if (Capacity < 8)
    Capacity = 8;
  Ring.resize(std::bit_ceil(Capacity));
}

void TraceBuffer::emit(TraceEventKind Kind, std::uint64_t ThreadId,
                       std::uint32_t Payload) {
  // The emission macro pre-checks enabled() to skip payload computation,
  // but direct callers rely on the gate living here.
  if (!enabled())
    return;
  TraceEvent E;
  E.TimeNanos = nowNanos();
  E.ThreadId = ThreadId;
  E.Flow = currentFlowId();
  E.Payload = Payload;
  E.KindRaw = static_cast<std::uint8_t>(Kind);
  push(E);
}

void TraceBuffer::push(const TraceEvent &E) {
  std::uint64_t H = Head.load(std::memory_order_relaxed);
  TraceEvent &Slot = Ring[H & (Ring.size() - 1)];
  Slot = E;
  Slot.VpId = static_cast<std::uint16_t>(OwnerVpId);
  // Publish after the slot write so a concurrent snapshot never reads an
  // unwritten recent entry.
  Head.store(H + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::uint64_t H = Head.load(std::memory_order_acquire);
  std::uint64_t From = H > Ring.size() ? H - Ring.size() : 0;
  std::vector<TraceEvent> Out;
  Out.reserve(H - From);
  for (std::uint64_t I = From; I != H; ++I)
    Out.push_back(Ring[I & (Ring.size() - 1)]);
  return Out;
}

void mark(std::uint64_t ThreadId, std::uint32_t Payload) {
  if (TraceBuffer *B = threadTraceBuffer(); B && B->enabled())
    B->emit(TraceEventKind::UserMark, ThreadId, Payload);
}

const char *traceEventKindName(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::ThreadCreate:
    return "thread_create";
  case TraceEventKind::ThreadStart:
    return "thread_start";
  case TraceEventKind::ThreadExit:
    return "thread_exit";
  case TraceEventKind::Dispatch:
    return "dispatch";
  case TraceEventKind::SwitchYield:
    return "switch_yield";
  case TraceEventKind::SwitchPark:
    return "switch_park";
  case TraceEventKind::SwitchExit:
    return "switch_exit";
  case TraceEventKind::Enqueue:
    return "enqueue";
  case TraceEventKind::DequeueStale:
    return "dequeue_stale";
  case TraceEventKind::Wakeup:
    return "wakeup";
  case TraceEventKind::StealAttempt:
    return "steal_attempt";
  case TraceEventKind::StealCommit:
    return "steal_commit";
  case TraceEventKind::StealFail:
    return "steal_fail";
  case TraceEventKind::Migrate:
    return "migrate";
  case TraceEventKind::PreemptDeliver:
    return "preempt_deliver";
  case TraceEventKind::PreemptDefer:
    return "preempt_defer";
  case TraceEventKind::MutexBlock:
    return "mutex_block";
  case TraceEventKind::MutexAcquire:
    return "mutex_acquire";
  case TraceEventKind::BarrierArrive:
    return "barrier_arrive";
  case TraceEventKind::BarrierRelease:
    return "barrier_release";
  case TraceEventKind::SemaphoreBlock:
    return "semaphore_block";
  case TraceEventKind::TuplePut:
    return "tuple_put";
  case TraceEventKind::TupleTake:
    return "tuple_take";
  case TraceEventKind::TupleRead:
    return "tuple_read";
  case TraceEventKind::TupleBlock:
    return "tuple_block";
  case TraceEventKind::UserMark:
    return "user_mark";
  case TraceEventKind::TimeoutFired:
    return "timeout_fired";
  case TraceEventKind::CancelDelivered:
    return "cancel_delivered";
  case TraceEventKind::WatchdogReport:
    return "watchdog_report";
  case TraceEventKind::ChaosInject:
    return "chaos_inject";
  case TraceEventKind::MailboxPost:
    return "mailbox_post";
  case TraceEventKind::MailboxDrain:
    return "mailbox_drain";
  case TraceEventKind::VpPark:
    return "vp_park";
  case TraceEventKind::VpUnpark:
    return "vp_unpark";
  case TraceEventKind::NetAccept:
    return "net_accept";
  case TraceEventKind::NetClose:
    return "net_close";
  case TraceEventKind::NetBackpressure:
    return "net_backpressure";
  case TraceEventKind::NetRetry:
    return "net_retry";
  case TraceEventKind::NetShed:
    return "net_shed";
  case TraceEventKind::BreakerTransition:
    return "breaker_transition";
  case TraceEventKind::TupleHandoff:
    return "tuple_handoff";
  case TraceEventKind::RouterRoute:
    return "router_route";
  case TraceEventKind::RouterRetract:
    return "router_retract";
  case TraceEventKind::ReplForward:
    return "repl_forward";
  case TraceEventKind::ReplPromote:
    return "repl_promote";
  case TraceEventKind::NumKinds:
    break;
  }
  return "unknown";
}

} // namespace sting::obs
