//===- obs/TraceEvent.h - Fixed-size scheduler trace record -----*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event taxonomy and the fixed-size record written into per-VP trace
/// rings. Records are 32 bytes so a 16K-entry ring is 512KiB per VP; the
/// writer never allocates or takes a lock.
///
//===----------------------------------------------------------------------===//

#ifndef STING_OBS_TRACEEVENT_H
#define STING_OBS_TRACEEVENT_H

#include <cstddef>
#include <cstdint>

namespace sting::obs {

/// Everything the substrate considers schedulingly interesting. Grouped by
/// the subsystem that emits it; see DESIGN.md "Observability" for the full
/// taxonomy with payload meanings.
enum class TraceEventKind : std::uint8_t {
  // Thread lifecycle (core/Thread, core/ThreadController).
  ThreadCreate,  ///< a Thread object was created (payload: creating VP)
  ThreadStart,   ///< a fresh thread was bound to a TCB and first ran
  ThreadExit,    ///< a thread was determined (payload: 1 if absorbed inline)

  // Context switches (core/VirtualProcessor scheduler loop).
  Dispatch,      ///< the scheduler switched into a thread
  SwitchYield,   ///< the running thread yielded back to the scheduler
  SwitchPark,    ///< the running thread parked (blocked)
  SwitchExit,    ///< the running thread terminated

  // Ready-queue traffic (core/policy managers).
  Enqueue,       ///< a policy manager enqueued a schedulable (payload:
                 ///< queue depth after insert, low 24 bits | reason << 24)
  DequeueStale,  ///< a queue entry was skipped because the thread was
                 ///< already stolen or running elsewhere
  Wakeup,        ///< an unpark was delivered (payload: target VP)

  // Thunk stealing (core/ThreadController::trySteal).
  StealAttempt,  ///< a VP tried to absorb a Scheduled thread
  StealCommit,   ///< the steal ran the thread to determination
  StealFail,     ///< the thread was no longer stealable (payload: reason)

  // Migration (core/policy/StealHalfPolicy and friends).
  Migrate,       ///< threads moved between VPs in bulk (payload: count)

  // Preemption (core/ThreadController::checkpoint).
  PreemptDeliver, ///< a preemption flag was consumed and the thread yielded
  PreemptDefer,   ///< a preemption flag was seen while preemption-disabled

  // Blocking primitives (sync/).
  MutexBlock,     ///< a mutex acquire escalated to blocking
  MutexAcquire,   ///< a previously blocked acquire finally succeeded
  BarrierArrive,  ///< a party arrived at a cyclic barrier (payload: phase)
  BarrierRelease, ///< the last party released a barrier phase
  SemaphoreBlock, ///< a semaphore acquire blocked

  // Tuple space (tuple/TupleSpace).
  TuplePut,      ///< a tuple was deposited (payload: tuple width)
  TupleTake,     ///< a take matched (payload: tuple width)
  TupleRead,     ///< a read matched (payload: tuple width)
  TupleBlock,    ///< a take/read found no match and blocked

  // User-defined marks (obs::mark).
  UserMark,

  // Fault paths (appended after UserMark so earlier ordinals — and the
  // golden traces pinned to them — stay stable).
  TimeoutFired,     ///< a timed wait gave up (payload: site-specific)
  CancelDelivered,  ///< an async terminate (0) / raise (1) unwound a thread
  WatchdogReport,   ///< the stall watchdog emitted a report (payload:
                    ///< stalled-VP count)
  ChaosInject,      ///< a chaos fault fired (payload: chaos::Site ordinal)

  // Lock-free scheduling fast path (appended after ChaosInject so earlier
  // ordinals — and the golden traces pinned to them — stay stable).
  MailboxPost,  ///< a cross-VP enqueue was posted to a mailbox (payload:
                ///< target VP | ring-path bit << 16)
  MailboxDrain, ///< the owner drained its mailbox (payload: items moved)
  VpPark,       ///< a VP's dispatch loop found no work and parked
  VpUnpark,     ///< a parked VP dispatched again (payload: idle episodes)

  // Network subsystem (appended after VpUnpark so earlier ordinals — and
  // the golden traces pinned to them — stay stable).
  NetAccept,       ///< a server accepted a connection (payload: live count)
  NetClose,        ///< a connection closed (payload: live count after)
  NetBackpressure, ///< a writer stalled on the write high-water mark
                   ///< (payload: buffered bytes, saturated)

  // Wire-layer resilience (appended after NetBackpressure so earlier
  // ordinals — and the golden traces pinned to them — stay stable).
  NetRetry,          ///< a client retried a request (payload: attempt number)
  NetShed,           ///< the server shed a queued connection past its
                     ///< admission budget (payload: pending-queue depth)
  BreakerTransition, ///< a circuit breaker changed state (payload:
                     ///< from-state << 8 | to-state, BreakerState ordinals)

  // Tuple-space handoff (appended after BreakerTransition so earlier
  // ordinals — and the golden traces pinned to them — stay stable).
  TupleHandoff, ///< a deposit transferred straight into registered
                ///< waiters' slots (payload: deliveries this deposit)

  // Sharded router (appended after TupleHandoff so earlier ordinals — and
  // the golden traces pinned to them — stay stable).
  RouterRoute,   ///< the router picked a shard for an operation (payload:
                 ///< shard index | fan-out-leg count << 16; 0xffff in the
                 ///< low bits means fan-out, no single home)
  RouterRetract, ///< a fan-out loser leg was retracted (payload: shard
                 ///< index | wasArmed bit << 16)

  // Shard replication (appended after RouterRetract so earlier ordinals —
  // and the golden traces pinned to them — stay stable).
  ReplForward, ///< a primary forwarded a put/retract copy to its backup
               ///< (payload: slot | retract bit << 16 | epoch-low << 17)
  ReplPromote, ///< a slot changed primaries (payload: slot | new-epoch-low
               ///< << 16); emitted by the router on promote and by the
               ///< shard applying it, joined by the caller's flow id

  NumKinds
};

/// Packs a MailboxPost payload: the target VP index in the low 16 bits and
/// whether the lock-free ring path was taken (vs. the locked overflow
/// list) in bit 16.
inline std::uint32_t mailboxPostPayload(unsigned TargetVp, bool RingPath) {
  std::uint32_t V = TargetVp > 0xffff ? 0xffffu
                                      : static_cast<std::uint32_t>(TargetVp);
  return V | (RingPath ? (1u << 16) : 0u);
}

/// \returns a stable short name for \p K, used by the exporter and reports.
const char *traceEventKindName(TraceEventKind K);

/// Packs an Enqueue event payload: queue depth after the insert (saturated
/// to 24 bits) in the low bits, the policy's EnqueueReason ordinal in the
/// high byte.
inline std::uint32_t enqueuePayload(std::size_t Depth, std::uint8_t Reason) {
  std::uint32_t D = Depth > 0xffffff ? 0xffffffu
                                     : static_cast<std::uint32_t>(Depth);
  return D | (static_cast<std::uint32_t>(Reason) << 24);
}

/// One ring entry. Timestamps come from support/Clock (monotonic ns); VpId
/// is the ring owner's index and is stamped by the buffer, not the caller.
struct TraceEvent {
  std::uint64_t TimeNanos = 0;
  std::uint64_t ThreadId = 0; ///< subject thread, 0 when not thread-specific
  std::uint64_t Flow = 0;     ///< causal flow id (obs/Flow.h), 0 = no flow
  std::uint32_t Payload = 0;  ///< kind-specific, see taxonomy above
  std::uint16_t VpId = 0;
  std::uint8_t KindRaw = 0;
  std::uint8_t Reserved = 0;

  TraceEventKind kind() const { return static_cast<TraceEventKind>(KindRaw); }
};

static_assert(sizeof(TraceEvent) == 32, "ring entries must stay compact");

} // namespace sting::obs

#endif // STING_OBS_TRACEEVENT_H
