//===- obs/SchedStats.h - Per-VP scheduler counters -------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-line-padded scheduler counters, one block per VirtualProcessor.
///
/// Nearly every counter is written only by the VP that owns the block (a VP
/// is pinned to one OS thread for its whole life), so increments use a
/// relaxed load/store pair instead of a lock-prefixed RMW — other threads
/// may read a value that is one behind, never a torn one. The few counters
/// that genuinely have remote writers (Enqueues and Wakeups can come from
/// the clock thread or from outside the machine) fall back to fetch_add via
/// incShared().
///
//===----------------------------------------------------------------------===//

#ifndef STING_OBS_SCHEDSTATS_H
#define STING_OBS_SCHEDSTATS_H

#include "support/Histogram.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sting::obs {

/// A monotonic event counter. Reads are always safe; inc()/add() are
/// single-writer only (the owning VP), incShared() is safe from anywhere.
class Counter {
public:
  /// Owner-only increment: no lock prefix, so the scheduler fast path pays
  /// a plain load+store per event.
  void inc() {
    Value.store(Value.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  }

  /// Owner-only bulk add.
  void add(std::uint64_t N) {
    Value.store(Value.load(std::memory_order_relaxed) + N,
                std::memory_order_relaxed);
  }

  /// Increment from a thread that does not own the stats block.
  void incShared() { Value.fetch_add(1, std::memory_order_relaxed); }

  std::uint64_t get() const { return Value.load(std::memory_order_relaxed); }

  /// Implicit read so call sites can compare counters like plain integers.
  operator std::uint64_t() const { return get(); }

private:
  std::atomic<std::uint64_t> Value{0};
};

struct SchedStatsSnapshot;

/// The per-VP counter block. Padded to cache-line multiples so two VPs'
/// counters never share a line (the whole point of per-VP blocks), and
/// internally split so the counters that remote threads bump via
/// incShared() (Enqueues, Wakeups, MailboxPosts) live on their own line —
/// a posting storm from sibling VPs must not invalidate the line holding
/// the owner's dispatch-loop counters.
struct alignas(64) SchedStats {
  // --- Remote-written line(s): any thread may incShared() these. --------
  Counter Enqueues;     ///< schedulables inserted into this VP's queues
  Counter Wakeups;      ///< unparks delivered from this VP (incShared for
                        ///< deliveries from non-VP threads, e.g. the clock)
  Counter MailboxPosts; ///< cross-VP enqueues posted to this VP's mailbox
                        ///< (always written by the remote producer)

  // --- Owner-written lines: only the owning VP's OS thread writes. ------
  alignas(64) Counter Dequeues; ///< schedulables popped by this VP's
                                ///< scheduler loop
  Counter SkippedStale; ///< popped entries whose thread was already taken
  Counter MailboxDrains; ///< items the owner drained from its mailbox

  // Context switches.
  Counter Dispatches;  ///< switches from the scheduler into a thread
  Counter FreshBinds;  ///< dispatches that bound a fresh thread to a TCB
  Counter Resumes;     ///< dispatches that resumed a suspended TCB
  Counter Yields;      ///< switches back caused by an explicit yield
  Counter Parks;       ///< switches back caused by blocking
  Counter Exits;       ///< switches back caused by thread termination
  Counter IdleCalls;   ///< times the policy's vpIdle hook ran

  // TCB cache (paper 4.2: stack/TCB reuse is the fork fast path).
  Counter TcbReuses; ///< TCB acquisitions served from the per-VP cache
  Counter TcbAllocs; ///< TCB acquisitions that had to allocate

  // Thunk stealing.
  Counter StealsAttempted;
  Counter StealsSucceeded;
  Counter StealsFailed;

  // Ready-queue stealing (the Chase-Lev migration edge).
  Counter DequeSteals;    ///< elements this VP stole from sibling deques
  Counter DequeStealCas;  ///< failed steal CASes (lost races, retried)

  // Idle protocol (DESIGN.md section 8): a VP "parks" when its dispatch
  // loop finds no work anywhere and yields to its physical processor,
  // which then sleeps on the machine eventcount.
  Counter VpParks;   ///< transitions into the parked-idle state
  Counter VpUnparks; ///< dispatches that ended a parked-idle episode

  // Preemption.
  Counter PreemptsDelivered; ///< checkpoint consumed a flag and yielded
  Counter PreemptsDeferred;  ///< flag seen while preemption was disabled

  // Thread lifecycle and blocking, attributed to the VP that ran the op.
  Counter ThreadsCreated;
  Counter ThreadsTerminated;
  Counter Blocks; ///< parkCurrent entries (intent to block)

  // Network subsystem (src/net), attributed to the VP whose thread ran the
  // operation.
  Counter NetAccepts;            ///< connections accepted by servers
  Counter NetReads;              ///< successful socket read syscalls
  Counter NetWrites;             ///< successful socket write syscalls
  Counter NetBackpressureStalls; ///< writers parked on the high-water mark
  Counter NetRetries;            ///< client request attempts after the first
  Counter NetBreakerOpens;       ///< circuit-breaker closed/half-open -> open
  Counter NetShedded;            ///< connections shed past the admission budget
  Counter PoolCheckoutWaits;     ///< pool checkouts that parked at the cap

  // Tuple space (src/tuple), attributed to the depositing VP.
  Counter TupleHandoffs; ///< deposits transferred straight to a waiter
  Counter TupleWakeups;  ///< threads woken by deposits (deliveries+nudges)

  // Sharded router (src/dist), attributed to the VP whose thread ran the
  // routing decision.
  Counter RouterRoutes;    ///< operations routed to a home shard
  Counter RouterFanouts;   ///< fan-out registration legs armed on shards
  Counter RouterRetracts;  ///< fan-out legs retracted while still armed
  Counter RouterFailovers; ///< operations rerouted off an open-breaker shard

  // Shard replication (src/dist Replica, DESIGN.md §14). Forwards land on
  // the primary shard's VPs, promotions on whichever side applied the
  // epoch bump, catch-up tuples on the rejoining backup's VPs.
  Counter ReplForwards;      ///< put/retract copies forwarded to a backup
  Counter ReplPromotions;    ///< slot promotions applied (epoch advanced)
  Counter ReplCatchupTuples; ///< tuples installed by anti-entropy pulls

  /// Run-slice lengths (dispatch to switch-back), recorded only while
  /// tracing is enabled so the default path never pays the extra clock
  /// read. Owner-written, racy to read mid-run; snapshot after quiesce.
  Histogram RunSliceNanos;

  /// Per-collection stop durations of this VP's local heap scavenges
  /// (plus any full collections its thread triggered). Fed by the gc
  /// layer's pause sink (gc cannot link obs, so gc::LocalHeap exposes a
  /// plain function-pointer hook that core wires here). Always recorded:
  /// a scavenge already costs tens of microseconds, so one extra clock
  /// read is noise.
  Histogram GcPauseNanos;

  SchedStatsSnapshot snapshot() const;
};

/// A plain-integer copy of SchedStats, safe to aggregate and pass around.
/// Field names match SchedStats so reporting code reads naturally.
struct SchedStatsSnapshot {
  std::uint64_t Enqueues = 0;
  std::uint64_t Dequeues = 0;
  std::uint64_t SkippedStale = 0;
  std::uint64_t MailboxPosts = 0;
  std::uint64_t MailboxDrains = 0;
  std::uint64_t Dispatches = 0;
  std::uint64_t FreshBinds = 0;
  std::uint64_t Resumes = 0;
  std::uint64_t Yields = 0;
  std::uint64_t Parks = 0;
  std::uint64_t Exits = 0;
  std::uint64_t IdleCalls = 0;
  std::uint64_t TcbReuses = 0;
  std::uint64_t TcbAllocs = 0;
  std::uint64_t StealsAttempted = 0;
  std::uint64_t StealsSucceeded = 0;
  std::uint64_t StealsFailed = 0;
  std::uint64_t DequeSteals = 0;
  std::uint64_t DequeStealCas = 0;
  std::uint64_t VpParks = 0;
  std::uint64_t VpUnparks = 0;
  std::uint64_t PreemptsDelivered = 0;
  std::uint64_t PreemptsDeferred = 0;
  std::uint64_t ThreadsCreated = 0;
  std::uint64_t ThreadsTerminated = 0;
  std::uint64_t Blocks = 0;
  std::uint64_t Wakeups = 0;
  std::uint64_t NetAccepts = 0;
  std::uint64_t NetReads = 0;
  std::uint64_t NetWrites = 0;
  std::uint64_t NetBackpressureStalls = 0;
  std::uint64_t NetRetries = 0;
  std::uint64_t NetBreakerOpens = 0;
  std::uint64_t NetShedded = 0;
  std::uint64_t PoolCheckoutWaits = 0;
  std::uint64_t TupleHandoffs = 0;
  std::uint64_t TupleWakeups = 0;
  std::uint64_t RouterRoutes = 0;
  std::uint64_t RouterFanouts = 0;
  std::uint64_t RouterRetracts = 0;
  std::uint64_t RouterFailovers = 0;
  std::uint64_t ReplForwards = 0;
  std::uint64_t ReplPromotions = 0;
  std::uint64_t ReplCatchupTuples = 0;
  /// Snapshot-only (no SchedStats counterpart): filled by the machine at
  /// snapshot time from the VP's trace ring, so truncated traces are
  /// detectable instead of silently misleading.
  std::uint64_t TraceEvents = 0; ///< events ever emitted into the ring
  std::uint64_t TraceDrops = 0;  ///< events lost to ring overwrite
  Histogram RunSliceNanos;
  Histogram GcPauseNanos;

  SchedStatsSnapshot &operator+=(const SchedStatsSnapshot &Other);
};

/// One reportable counter: the report label, the Prometheus-style metric
/// name the exposition formatter serves, and the snapshot field. The
/// table is shared by formatStatsReport and obs/Exposition.
struct CounterRow {
  const char *Name;       ///< report label (may carry indent for grouping)
  const char *MetricName; ///< e.g. "sting_dispatches_total"
  std::uint64_t SchedStatsSnapshot::*Field;
};

/// The full counter table, in report order.
const CounterRow *counterRows(std::size_t &Count);

/// Renders the aggregate and the per-VP breakdown as a plain-text table.
/// \p PerVp may be empty (totals only).
std::string formatStatsReport(const SchedStatsSnapshot &Total,
                              const std::vector<SchedStatsSnapshot> &PerVp);

} // namespace sting::obs

#endif // STING_OBS_SCHEDSTATS_H
