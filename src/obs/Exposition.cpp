//===- obs/Exposition.cpp - Prometheus text exposition --------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "obs/Exposition.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace sting::obs {

namespace {

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (N > 0)
    Out.append(Buf, static_cast<std::size_t>(N) < sizeof(Buf)
                        ? static_cast<std::size_t>(N)
                        : sizeof(Buf) - 1);
}

/// One summary block: quantile samples plus _sum and _count. The
/// histogram tracks its sum internally but only exposes the mean, so the
/// exported _sum is mean*count — exact up to double rounding.
void appendSummary(std::string &Out, const char *Name, const Histogram &H) {
  appendf(Out, "# TYPE %s summary\n", Name);
  appendf(Out, "%s{quantile=\"0.5\"} %" PRIu64 "\n", Name, H.p50Nanos());
  appendf(Out, "%s{quantile=\"0.95\"} %" PRIu64 "\n", Name, H.p95Nanos());
  appendf(Out, "%s{quantile=\"0.99\"} %" PRIu64 "\n", Name, H.p99Nanos());
  appendf(Out, "%s_sum %.0f\n", Name,
          H.meanNanos() * static_cast<double>(H.count()));
  appendf(Out, "%s_count %" PRIu64 "\n", Name, H.count());
}

} // namespace

std::string formatPrometheus(const SchedStatsSnapshot &Total,
                             const std::vector<SchedStatsSnapshot> &PerVp) {
  std::string Out;
  // ~40 counters x (header + 1 + nvp) short lines; reserve generously so
  // the scrape path does one allocation in the common case.
  Out.reserve(4096 + PerVp.size() * 2048);

  std::size_t NumRows = 0;
  const CounterRow *Rows = counterRows(NumRows);
  for (std::size_t I = 0; I != NumRows; ++I) {
    const CounterRow &R = Rows[I];
    appendf(Out, "# TYPE %s counter\n", R.MetricName);
    appendf(Out, "%s %" PRIu64 "\n", R.MetricName, Total.*(R.Field));
    for (std::size_t V = 0; V != PerVp.size(); ++V)
      appendf(Out, "%s{vp=\"%zu\"} %" PRIu64 "\n", R.MetricName, V,
              PerVp[V].*(R.Field));
  }

  appendf(Out, "# TYPE sting_vps gauge\nsting_vps %zu\n", PerVp.size());
  appendSummary(Out, "sting_run_slice_nanos", Total.RunSliceNanos);
  appendSummary(Out, "sting_gc_pause_nanos", Total.GcPauseNanos);
  return Out;
}

} // namespace sting::obs
