//===- obs/Sampler.h - Periodic load sampler --------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A background thread that periodically probes machine load — ready-queue
/// depth, mailbox occupancy, parked-VP count — into a fixed ring of
/// samples, exported as Chrome counter ("ph":"C") series next to the event
/// trace. Off by default (VmConfig::SamplerPeriodNanos == 0); one probe
/// per period touches a handful of relaxed counters, so the overhead
/// budget is microseconds per sample.
///
/// The obs layer cannot see core, so the probe is a caller-supplied
/// closure: VirtualMachine wires a lambda over its VPs.
///
//===----------------------------------------------------------------------===//

#ifndef STING_OBS_SAMPLER_H
#define STING_OBS_SAMPLER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sting::obs {

/// One probe result. TimeNanos is stamped by the sampler.
struct LoadSample {
  std::uint64_t TimeNanos = 0;
  std::uint64_t ReadyDepth = 0;   ///< runnable items across all VPs
  std::uint64_t MailboxDepth = 0; ///< cross-VP posts not yet drained
  std::uint64_t ParkedVps = 0;    ///< VPs idle-parked right now
};

/// Periodic sampler with an overwrite-oldest ring, same retention policy
/// as TraceBuffer: the writer never blocks, taken() counts every sample,
/// and a snapshot returns the most recent capacity() of them.
class Sampler {
public:
  /// The probe fills everything but TimeNanos; it runs on the sampler
  /// thread and must only touch data safe to read off-VP (relaxed
  /// counters, atomics).
  using Probe = std::function<LoadSample()>;

  /// \p Capacity is rounded up to a power of two (minimum 8).
  Sampler(std::uint64_t PeriodNanos, std::size_t Capacity, Probe P);
  ~Sampler();

  Sampler(const Sampler &) = delete;
  Sampler &operator=(const Sampler &) = delete;

  /// Starts the sampler thread. No-op if already running.
  void start();

  /// Stops and joins the sampler thread. No-op if not running. The ring
  /// keeps its samples so a stopped sampler can still be exported.
  void stop();

  bool running() const { return Thread.joinable(); }
  std::uint64_t periodNanos() const { return PeriodNanos; }
  std::size_t capacity() const { return Ring.size(); }

  /// Total samples ever taken (monotonic across start/stop cycles).
  std::uint64_t taken() const {
    return Head.load(std::memory_order_acquire);
  }

  /// The retained window, oldest first. Callable while running; may tear
  /// the oldest entries (being overwritten), never the recent ones.
  std::vector<LoadSample> snapshot() const;

private:
  void run();

  std::uint64_t PeriodNanos;
  Probe TheProbe;
  std::vector<LoadSample> Ring;
  std::atomic<std::uint64_t> Head{0};

  std::mutex M;
  std::condition_variable Cv;
  bool StopRequested = false;
  std::thread Thread;
};

} // namespace sting::obs

#endif // STING_OBS_SAMPLER_H
