//===- obs/TraceExporter.cpp - Chrome trace_event export ------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceExporter.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace sting::obs {

namespace {

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Args;
  va_start(Args, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (N > 0)
    Out.append(Buf, static_cast<std::size_t>(N) < sizeof(Buf)
                        ? static_cast<std::size_t>(N)
                        : sizeof(Buf) - 1);
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        appendf(Out, "\\u%04x", static_cast<unsigned char>(C));
      else
        Out += C;
    }
  }
  return Out;
}

/// Chrome expects microseconds; keep sub-ns precision out of the file so
/// golden comparisons are byte-stable.
void appendMicros(std::string &Out, std::uint64_t Nanos,
                  std::uint64_t Base) {
  std::uint64_t Rel = Nanos >= Base ? Nanos - Base : 0;
  appendf(Out, "%" PRIu64 ".%03u", Rel / 1000,
          static_cast<unsigned>(Rel % 1000));
}

bool isSwitchBack(TraceEventKind K) {
  return K == TraceEventKind::SwitchYield ||
         K == TraceEventKind::SwitchPark || K == TraceEventKind::SwitchExit;
}

} // namespace

void TraceExporter::addProcess(std::string Name,
                               std::vector<VpTraceSnapshot> Vps) {
  Procs.push_back({std::move(Name), std::move(Vps), {}});
}

void TraceExporter::addLoadSamples(std::vector<LoadSample> Samples) {
  if (Procs.empty())
    return;
  Procs.back().Samples = std::move(Samples);
}

std::string TraceExporter::toJson() const {
  // Rebase to the earliest timestamp so Perfetto opens at t=0.
  std::uint64_t Base = ~0ull;
  for (const Process &P : Procs) {
    for (const VpTraceSnapshot &V : P.Vps)
      for (const TraceEvent &E : V.Events)
        if (E.TimeNanos < Base)
          Base = E.TimeNanos;
    for (const LoadSample &S : P.Samples)
      if (S.TimeNanos < Base)
        Base = S.TimeNanos;
  }
  if (Base == ~0ull)
    Base = 0;

  std::string Out;
  Out += "{\"traceEvents\":[";
  bool First = true;
  auto comma = [&] {
    if (!First)
      Out += ",\n";
    else
      Out += "\n";
    First = false;
  };

  std::uint64_t BindId = 0; // arrow ids are unique across the whole file
  for (std::size_t Pid = 0; Pid != Procs.size(); ++Pid) {
    const Process &P = Procs[Pid];
    comma();
    appendf(Out,
            "{\"ph\":\"M\",\"pid\":%zu,\"name\":\"process_name\","
            "\"args\":{\"name\":\"%s\"}}",
            Pid, jsonEscape(P.Name).c_str());
    for (const VpTraceSnapshot &V : P.Vps) {
      comma();
      appendf(Out,
              "{\"ph\":\"M\",\"pid\":%zu,\"tid\":%u,\"name\":"
              "\"thread_name\",\"args\":{\"name\":\"vp%u\"}}",
              Pid, V.VpId, V.VpId);
      if (V.Dropped != 0 && !V.Events.empty()) {
        // Flag the overwrite so a truncated ring is visible in the viewer.
        comma();
        appendf(Out,
                "{\"ph\":\"i\",\"pid\":%zu,\"tid\":%u,\"ts\":", Pid,
                V.VpId);
        appendMicros(Out, V.Events.front().TimeNanos, Base);
        appendf(Out,
                ",\"s\":\"t\",\"name\":\"trace_overflow\",\"args\":"
                "{\"thread\":0,\"payload\":%" PRIu64 "}}",
                V.Dropped);
      }

      // One pass: Dispatch opens a run slice, the matching Switch* closes
      // it as a complete event; everything else is an instant.
      bool SliceOpen = false;
      std::uint64_t SliceStart = 0, SliceThread = 0;
      for (const TraceEvent &E : V.Events) {
        TraceEventKind K = E.kind();
        if (K == TraceEventKind::Dispatch) {
          SliceOpen = true;
          SliceStart = E.TimeNanos;
          SliceThread = E.ThreadId;
          continue;
        }
        if (isSwitchBack(K)) {
          if (SliceOpen) {
            SliceOpen = false;
            comma();
            appendf(Out,
                    "{\"ph\":\"X\",\"pid\":%zu,\"tid\":%u,\"ts\":", Pid,
                    V.VpId);
            appendMicros(Out, SliceStart, Base);
            std::uint64_t End = E.TimeNanos >= SliceStart ? E.TimeNanos
                                                          : SliceStart;
            appendf(Out, ",\"dur\":");
            appendMicros(Out, End - SliceStart, 0);
            appendf(Out,
                    ",\"name\":\"run\",\"args\":{\"thread\":%" PRIu64
                    ",\"end\":\"%s\"}}",
                    SliceThread, traceEventKindName(K));
          }
          continue;
        }
        comma();
        appendf(Out, "{\"ph\":\"i\",\"pid\":%zu,\"tid\":%u,\"ts\":", Pid,
                V.VpId);
        appendMicros(Out, E.TimeNanos, Base);
        appendf(Out,
                ",\"s\":\"t\",\"name\":\"%s\",\"args\":{\"thread\":%" PRIu64
                ",\"payload\":%" PRIu32 "}}",
                traceEventKindName(K), E.ThreadId, E.Payload);
      }
      // A slice still open at the end of the ring (the VP was mid-run when
      // captured, or the closer was overwritten) degrades to an instant.
      if (SliceOpen) {
        comma();
        appendf(Out, "{\"ph\":\"i\",\"pid\":%zu,\"tid\":%u,\"ts\":", Pid,
                V.VpId);
        appendMicros(Out, SliceStart, Base);
        appendf(Out,
                ",\"s\":\"t\",\"name\":\"dispatch\",\"args\":{\"thread\":%"
                PRIu64 ",\"payload\":0}}",
                SliceThread);
      }
    }

    // Causal flow arrows: every hop of a nonzero FlowId between VP tracks
    // becomes an "s"/"f" bind pair, so one request's cross-VP journey
    // renders as a connected path. Same-track steps need no arrow (they
    // are already adjacent on the track), and flow-less events render
    // exactly as before — a trace with no flows is byte-identical to the
    // pre-flow format.
    struct FlowRef {
      std::uint64_t Flow = 0;
      std::uint64_t TimeNanos = 0;
      unsigned VpId = 0;
    };
    std::vector<FlowRef> Refs;
    for (const VpTraceSnapshot &V : P.Vps)
      for (const TraceEvent &E : V.Events)
        if (E.Flow != 0)
          Refs.push_back({E.Flow, E.TimeNanos, V.VpId});
    std::stable_sort(Refs.begin(), Refs.end(),
                     [](const FlowRef &A, const FlowRef &B) {
                       if (A.Flow != B.Flow)
                         return A.Flow < B.Flow;
                       if (A.TimeNanos != B.TimeNanos)
                         return A.TimeNanos < B.TimeNanos;
                       return A.VpId < B.VpId;
                     });
    for (std::size_t I = 1; I < Refs.size(); ++I) {
      const FlowRef &From = Refs[I - 1];
      const FlowRef &To = Refs[I];
      if (From.Flow != To.Flow || From.VpId == To.VpId)
        continue;
      ++BindId;
      comma();
      appendf(Out,
              "{\"ph\":\"s\",\"pid\":%zu,\"tid\":%u,\"ts\":", Pid,
              From.VpId);
      appendMicros(Out, From.TimeNanos, Base);
      appendf(Out,
              ",\"cat\":\"flow\",\"name\":\"flow\",\"id\":%" PRIu64
              ",\"args\":{\"flow\":%" PRIu64 "}}",
              BindId, From.Flow);
      comma();
      appendf(Out,
              "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":%zu,\"tid\":%u,\"ts\":",
              Pid, To.VpId);
      appendMicros(Out, To.TimeNanos, Base);
      appendf(Out,
              ",\"cat\":\"flow\",\"name\":\"flow\",\"id\":%" PRIu64
              ",\"args\":{\"flow\":%" PRIu64 "}}",
              BindId, To.Flow);
    }

    // Sampler series: one counter track with the three load series.
    for (const LoadSample &S : P.Samples) {
      comma();
      appendf(Out, "{\"ph\":\"C\",\"pid\":%zu,\"tid\":0,\"ts\":", Pid);
      appendMicros(Out, S.TimeNanos, Base);
      appendf(Out,
              ",\"name\":\"vm_load\",\"args\":{\"ready\":%" PRIu64
              ",\"mailbox\":%" PRIu64 ",\"parked\":%" PRIu64 "}}",
              S.ReadyDepth, S.MailboxDepth, S.ParkedVps);
    }
  }

  Out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

bool TraceExporter::writeFile(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Json = toJson();
  bool Ok = std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}

} // namespace sting::obs
