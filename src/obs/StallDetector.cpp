//===- obs/StallDetector.cpp - Dispatch-progress stall detection -------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "obs/StallDetector.h"

namespace sting::obs {

const char *stallVerdictName(StallVerdict V) {
  switch (V) {
  case StallVerdict::Healthy:
    return "healthy";
  case StallVerdict::VpStalled:
    return "vp-stalled";
  case StallVerdict::MachineBlocked:
    return "machine-blocked";
  }
  return "unknown";
}

std::uint64_t StallDetector::stallAgeNanos(unsigned Vp) const {
  if (Vp >= History.size() || !History[Vp].Seen)
    return 0;
  return LastNowNanos - History[Vp].LastChangeNanos;
}

StallVerdict StallDetector::observe(const MachineSample &S) {
  History.resize(S.Vps.size());
  LastNowNanos = S.NowNanos;

  bool AnyProgress = false;
  for (std::size_t I = 0; I != S.Vps.size(); ++I) {
    VpHistory &H = History[I];
    if (!H.Seen || S.Vps[I].Progress != H.LastProgress) {
      H.LastProgress = S.Vps[I].Progress;
      H.LastChangeNanos = S.NowNanos;
      H.Seen = true;
      AnyProgress = true;
    }
  }

  // Re-arm the latch as soon as anything moves again.
  if (AnyProgress)
    Reported = false;

  Stalled.clear();
  bool AllDead = true; // every VP budget-stale with no work and no thread
  for (std::size_t I = 0; I != S.Vps.size(); ++I) {
    const VpSample &Vp = S.Vps[I];
    VpHistory &H = History[I];
    const bool Stale = S.NowNanos - H.LastChangeNanos >= BudgetNanos;
    const bool HasWork = Vp.HasReadyWork || Vp.RunningThread;
    if (HasWork && !H.HadWork)
      H.WorkSinceNanos = S.NowNanos;
    H.HadWork = HasWork;
    // Work must also have sat unserviced for a full budget: a fresh
    // enqueue onto a long-idle VP (a timer wake racing this sample) is
    // about to be dispatched, not stalled.
    const bool WorkAged =
        HasWork && S.NowNanos - H.WorkSinceNanos >= BudgetNanos;
    if (Stale && WorkAged)
      Stalled.push_back(static_cast<unsigned>(I));
    if (!Stale || HasWork)
      AllDead = false;
  }

  if (Reported)
    return StallVerdict::Healthy;

  if (!Stalled.empty()) {
    Reported = true;
    return StallVerdict::VpStalled;
  }

  // Deadlock: threads exist, every VP has been idle past the budget, and
  // no pending timer can inject a wakeup from outside.
  if (AllDead && !S.Vps.empty() && S.LiveThreads > 0 &&
      S.PendingTimers == 0) {
    Stalled.reserve(S.Vps.size());
    for (std::size_t I = 0; I != S.Vps.size(); ++I)
      Stalled.push_back(static_cast<unsigned>(I));
    Reported = true;
    return StallVerdict::MachineBlocked;
  }

  return StallVerdict::Healthy;
}

} // namespace sting::obs
