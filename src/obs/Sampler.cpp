//===- obs/Sampler.cpp - Periodic load sampler ------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "obs/Sampler.h"

#include "support/Clock.h"

#include <bit>
#include <chrono>

namespace sting::obs {

Sampler::Sampler(std::uint64_t PeriodNanos, std::size_t Capacity, Probe P)
    : PeriodNanos(PeriodNanos ? PeriodNanos : 1'000'000),
      TheProbe(std::move(P)) {
  if (Capacity < 8)
    Capacity = 8;
  Ring.resize(std::bit_ceil(Capacity));
}

Sampler::~Sampler() { stop(); }

void Sampler::start() {
  if (Thread.joinable())
    return;
  {
    std::lock_guard<std::mutex> Guard(M);
    StopRequested = false;
  }
  Thread = std::thread([this] { run(); });
}

void Sampler::stop() {
  if (!Thread.joinable())
    return;
  {
    std::lock_guard<std::mutex> Guard(M);
    StopRequested = true;
  }
  Cv.notify_all();
  Thread.join();
}

void Sampler::run() {
  std::unique_lock<std::mutex> Lock(M);
  while (!StopRequested) {
    // Probe outside the lock so a concurrent stop() is never delayed by a
    // slow probe's counters.
    Lock.unlock();
    LoadSample S = TheProbe();
    S.TimeNanos = nowNanos();
    std::uint64_t H = Head.load(std::memory_order_relaxed);
    Ring[H & (Ring.size() - 1)] = S;
    Head.store(H + 1, std::memory_order_release);
    Lock.lock();
    Cv.wait_for(Lock, std::chrono::nanoseconds(PeriodNanos),
                [this] { return StopRequested; });
  }
}

std::vector<LoadSample> Sampler::snapshot() const {
  std::uint64_t H = Head.load(std::memory_order_acquire);
  std::uint64_t From = H > Ring.size() ? H - Ring.size() : 0;
  std::vector<LoadSample> Out;
  Out.reserve(H - From);
  for (std::uint64_t I = From; I != H; ++I)
    Out.push_back(Ring[I & (Ring.size() - 1)]);
  return Out;
}

} // namespace sting::obs
