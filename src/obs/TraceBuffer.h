//===- obs/TraceBuffer.h - Per-VP SPSC trace ring ---------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free single-producer ring of TraceEvent records, one per
/// VirtualProcessor.
///
/// The single-writer discipline: a VP is pinned to exactly one OS thread
/// for the lifetime of the machine, and PhysicalProcessor points a
/// thread-local at the current VP's ring around every switch into VP
/// context. All substrate code therefore writes to *its own* VP's ring —
/// events about another VP or thread carry the target in the payload —
/// and threads with no VP (the preemption clock, external callers) see a
/// null thread-local and drop the event. Readers (the exporter) run after
/// quiesce or tolerate a slightly stale tail.
///
/// Overflow policy is overwrite-oldest: the writer never blocks or fails,
/// Head counts every event ever pushed, and a snapshot reconstructs the
/// most recent capacity() events plus a dropped() count for the rest.
///
//===----------------------------------------------------------------------===//

#ifndef STING_OBS_TRACEBUFFER_H
#define STING_OBS_TRACEBUFFER_H

#include "obs/TraceEvent.h"

#include <atomic>
#include <cstddef>
#include <vector>

namespace sting::obs {

class TraceBuffer {
public:
  /// \p Capacity is rounded up to a power of two (minimum 8).
  TraceBuffer(unsigned VpId, std::size_t Capacity);

  TraceBuffer(const TraceBuffer &) = delete;
  TraceBuffer &operator=(const TraceBuffer &) = delete;

  unsigned vpId() const { return OwnerVpId; }
  std::size_t capacity() const { return Ring.size(); }

  /// Runtime gate. emit() is a no-op while disabled; the check is one
  /// relaxed load and a predicted-not-taken branch.
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Stamps the current time and the owning VP and appends. Owner thread
  /// only.
  void emit(TraceEventKind Kind, std::uint64_t ThreadId,
            std::uint32_t Payload);

  /// Appends a fully-formed record, bypassing the clock and the enabled
  /// gate. Owner thread only; used by tests and replay tooling to build
  /// deterministic rings.
  void push(const TraceEvent &E);

  /// Total events ever pushed (monotonic).
  std::uint64_t written() const {
    return Head.load(std::memory_order_acquire);
  }

  /// Events lost to overwrite: written() minus what a snapshot can return.
  std::uint64_t dropped() const {
    std::uint64_t H = written();
    return H > Ring.size() ? H - Ring.size() : 0;
  }

  /// The retained window, oldest first. Safe to call from any thread once
  /// the owner has quiesced; concurrent with the writer it may tear the
  /// oldest entries (they are being overwritten), never the recent ones.
  std::vector<TraceEvent> snapshot() const;

private:
  std::vector<TraceEvent> Ring;
  std::atomic<std::uint64_t> Head{0};
  std::atomic<bool> Enabled{false};
  unsigned OwnerVpId;
};

/// A ring snapshot bundled with its provenance, as consumed by the
/// exporter.
struct VpTraceSnapshot {
  unsigned VpId = 0;
  std::uint64_t Dropped = 0;
  std::vector<TraceEvent> Events;
};

namespace detail {
extern thread_local TraceBuffer *TlsTraceBuffer;
} // namespace detail

/// Installs \p Buffer as the calling OS thread's event sink (null to
/// clear). Called by PhysicalProcessor around VP context entry.
inline void setThreadTraceBuffer(TraceBuffer *Buffer) {
  detail::TlsTraceBuffer = Buffer;
}

/// \returns the calling OS thread's event sink, null off-substrate.
inline TraceBuffer *threadTraceBuffer() { return detail::TlsTraceBuffer; }

/// Emits a user-defined mark into the current VP's ring (dropped when the
/// caller is not on a traced VP or tracing is off).
void mark(std::uint64_t ThreadId, std::uint32_t Payload);

} // namespace sting::obs

/// Event-emission macro used at instrumentation sites. Compiles to nothing
/// without STING_TRACE; with it, costs a TLS load and a predicted-not-taken
/// branch when tracing is disabled. Arguments are evaluated only when the
/// event will actually be recorded, so sites may compute payloads freely.
#ifdef STING_TRACE
#define STING_TRACE_EVENT(Kind, ThreadId, Payload)                           \
  do {                                                                       \
    if (::sting::obs::TraceBuffer *TraceBuf_ =                               \
            ::sting::obs::threadTraceBuffer();                               \
        TraceBuf_ && TraceBuf_->enabled())                                   \
      TraceBuf_->emit(::sting::obs::TraceEventKind::Kind, (ThreadId),        \
                      (Payload));                                            \
  } while (false)
#else
// sizeof keeps the operands unevaluated (zero cost) while still marking
// their variables as used, so instrumented functions need no (void) casts.
#define STING_TRACE_EVENT(Kind, ThreadId, Payload)                           \
  do {                                                                       \
    (void)sizeof(ThreadId);                                                  \
    (void)sizeof(Payload);                                                   \
  } while (false)
#endif

#endif // STING_OBS_TRACEBUFFER_H
