//===- obs/TraceExporter.h - Chrome trace_event export ----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Merges per-VP trace rings into Chrome trace_event JSON ("JSON Object
/// Format"), loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
/// Each captured machine becomes a process, each VP a thread track;
/// Dispatch→Switch* pairs become complete ("X") slices and everything else
/// an instant ("i") event, so both the run-slice structure and the raw
/// event stream survive the export.
///
/// Events carrying a nonzero causal FlowId (obs/Flow.h) additionally get
/// flow arrows: every hop of a flow between VP tracks becomes an
/// "s"/"f" bind pair, so one request's cross-VP journey renders as one
/// connected path. Load samples (obs/Sampler.h) become counter ("C")
/// series on the owning process.
///
//===----------------------------------------------------------------------===//

#ifndef STING_OBS_TRACEEXPORTER_H
#define STING_OBS_TRACEEXPORTER_H

#include "obs/Sampler.h"
#include "obs/TraceBuffer.h"

#include <string>
#include <vector>

namespace sting::obs {

class TraceExporter {
public:
  /// Adds one captured machine as a Chrome process named \p Name.
  void addProcess(std::string Name, std::vector<VpTraceSnapshot> Vps);

  /// Attaches \p Samples to the most recently added process as counter
  /// series (ready depth, mailbox occupancy, parked VPs). No-op without a
  /// process.
  void addLoadSamples(std::vector<LoadSample> Samples);

  bool empty() const { return Procs.empty(); }

  /// Renders everything added so far. Timestamps are rebased to the
  /// earliest event across all processes so traces open near t=0.
  std::string toJson() const;

  /// Writes toJson() to \p Path. \returns false on I/O failure.
  bool writeFile(const std::string &Path) const;

private:
  struct Process {
    std::string Name;
    std::vector<VpTraceSnapshot> Vps;
    std::vector<LoadSample> Samples;
  };
  std::vector<Process> Procs;
};

} // namespace sting::obs

#endif // STING_OBS_TRACEEXPORTER_H
