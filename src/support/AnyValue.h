//===- support/AnyValue.h - Type-erased thread result -----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value a determined thread carries. In STING, a thread's thunk is
/// "executed for effect, not value" yet its application result is stored in
/// the thread on completion (paper section 3.1); because the computation
/// language here is C++ rather than Scheme, results are type-erased.
/// AnyValue is move-only with small-buffer optimization so determining a
/// thread with a scalar result performs no allocation.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_ANYVALUE_H
#define STING_SUPPORT_ANYVALUE_H

#include "support/Debug.h"

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sting {

/// A move-only container for a single value of arbitrary type.
class AnyValue {
  static constexpr std::size_t InlineSize = 3 * sizeof(void *);

  union Storage {
    alignas(std::max_align_t) unsigned char Inline[InlineSize];
    void *Heap;
  };

  enum class Op { Destroy, Move };

  struct VTable {
    void (*Manage)(Op, Storage &, Storage *);
    void *(*Get)(Storage &);
  };

  template <typename T>
  static constexpr bool IsInline =
      sizeof(T) <= InlineSize && alignof(T) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<T>;

  template <typename T> static const VTable *vtableFor() {
    if constexpr (IsInline<T>) {
      static constexpr VTable VT = {
          [](Op O, Storage &S, Storage *Dst) {
            T *P = std::launder(reinterpret_cast<T *>(S.Inline));
            if (O == Op::Move) {
              ::new (static_cast<void *>(Dst->Inline)) T(std::move(*P));
            }
            P->~T();
          },
          [](Storage &S) -> void * {
            return std::launder(reinterpret_cast<T *>(S.Inline));
          }};
      return &VT;
    } else {
      static constexpr VTable VT = {
          [](Op O, Storage &S, Storage *Dst) {
            if (O == Op::Move) {
              Dst->Heap = S.Heap;
              S.Heap = nullptr;
              return;
            }
            delete static_cast<T *>(S.Heap);
          },
          [](Storage &S) -> void * { return S.Heap; }};
      return &VT;
    }
  }

public:
  AnyValue() = default;

  template <typename T,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<T>, AnyValue>>>
  AnyValue(T &&Val) {
    using Decayed = std::decay_t<T>;
    if constexpr (IsInline<Decayed>) {
      ::new (static_cast<void *>(Store.Inline))
          Decayed(std::forward<T>(Val));
    } else {
      Store.Heap = new Decayed(std::forward<T>(Val));
    }
    VT = vtableFor<Decayed>();
  }

  AnyValue(AnyValue &&Other) noexcept { moveFrom(Other); }

  AnyValue &operator=(AnyValue &&Other) noexcept {
    if (this == &Other)
      return *this;
    reset();
    moveFrom(Other);
    return *this;
  }

  AnyValue(const AnyValue &) = delete;
  AnyValue &operator=(const AnyValue &) = delete;

  ~AnyValue() { reset(); }

  void reset() {
    if (!VT)
      return;
    VT->Manage(Op::Destroy, Store, nullptr);
    VT = nullptr;
  }

  bool hasValue() const { return VT != nullptr; }

  /// Unchecked typed access. The caller must know the stored type; a
  /// mismatch is a programmatic error caught only by the type system at the
  /// producer/consumer boundary (futures wrap this with a typed API).
  template <typename T> T &as() {
    STING_CHECK(VT, "AnyValue::as on an empty value");
    return *static_cast<T *>(VT->Get(Store));
  }

  template <typename T> const T &as() const {
    return const_cast<AnyValue *>(this)->as<T>();
  }

  /// Moves the stored value out, leaving the AnyValue empty.
  template <typename T> T take() {
    T Result = std::move(as<T>());
    reset();
    return Result;
  }

private:
  void moveFrom(AnyValue &Other) noexcept {
    VT = Other.VT;
    if (VT)
      VT->Manage(Op::Move, Other.Store, &Store);
    Other.VT = nullptr;
  }

  Storage Store;
  const VTable *VT = nullptr;
};

} // namespace sting

#endif // STING_SUPPORT_ANYVALUE_H
