//===- support/Chaos.cpp - Deterministic fault injection -------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// Determinism model: each OS thread draws from its own SplitMix64 stream,
// seeded as mix(GlobalSeed, StreamIndex) where StreamIndex is assigned in
// thread-creation order. A given (seed, thread, call ordinal) therefore
// always produces the same decision; cross-thread interleaving still
// varies, which is exactly the space the soak tests want to explore while
// keeping any single thread's fault schedule replayable.
//
//===----------------------------------------------------------------------===//

#include "support/Chaos.h"

#include <atomic>
#include <cstdlib>

namespace sting::chaos {

namespace {

struct State {
  std::atomic<bool> Enabled{false};
  std::atomic<std::uint64_t> Seed{1};
  std::atomic<std::uint32_t> RatePerMille{20};
  /// Bumped by configure(); threads reseed lazily when it changes.
  std::atomic<std::uint64_t> Epoch{0};
  std::atomic<std::uint64_t> NextStream{0};
  std::atomic<std::uint64_t> Injections[static_cast<int>(Site::NumSites)]{};
};

State &state() {
  static State S;
  return S;
}

std::uint64_t splitmix64(std::uint64_t &X) {
  X += 0x9e3779b97f4a7c15ull;
  std::uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

struct ThreadStream {
  std::uint64_t X = 0;
  std::uint64_t SeenEpoch = ~0ull;
  std::uint64_t StreamIndex = ~0ull;
};

thread_local ThreadStream TlsStream;

std::uint64_t nextRandom() {
  State &S = state();
  ThreadStream &T = TlsStream;
  std::uint64_t E = S.Epoch.load(std::memory_order_acquire);
  if (T.SeenEpoch != E) {
    if (T.StreamIndex == ~0ull)
      T.StreamIndex = S.NextStream.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t Mix = S.Seed.load(std::memory_order_relaxed);
    // Fold the stream index in through two splitmix steps so adjacent
    // streams do not correlate.
    std::uint64_t X = Mix + 0x632be59bd9b4e019ull * (T.StreamIndex + 1);
    (void)splitmix64(X);
    T.X = X;
    T.SeenEpoch = E;
  }
  return splitmix64(T.X);
}

} // namespace

const char *siteName(Site S) {
  switch (S) {
  case Site::SpuriousWake:
    return "spurious-wake";
  case Site::PreemptPoint:
    return "preempt-point";
  case Site::StealDeny:
    return "steal-deny";
  case Site::UnparkDelay:
    return "unpark-delay";
  case Site::NetShortIo:
    return "net-short-io";
  case Site::NetAcceptDeny:
    return "net-accept-deny";
  case Site::NetConnectFail:
    return "net-connect-fail";
  case Site::NetPeerReset:
    return "net-peer-reset";
  case Site::NetSlowPeer:
    return "net-slow-peer";
  case Site::NetSynFlood:
    return "net-syn-flood";
  case Site::NumSites:
    break;
  }
  return "?";
}

void configure(std::uint64_t Seed, std::uint32_t RatePerMille) {
  State &S = state();
  S.Seed.store(Seed, std::memory_order_relaxed);
  S.RatePerMille.store(RatePerMille > 1000 ? 1000 : RatePerMille,
                       std::memory_order_relaxed);
  for (auto &C : S.Injections)
    C.store(0, std::memory_order_relaxed);
  S.Epoch.fetch_add(1, std::memory_order_release);
  S.Enabled.store(true, std::memory_order_release);
}

void initFromEnvOnce() {
#ifdef STING_CHAOS
  static bool Done = [] {
    const char *On = std::getenv("STING_CHAOS");
    if (!On || On[0] == '\0' || On[0] == '0')
      return true;
    std::uint64_t Seed = 1;
    std::uint32_t Rate = 20;
    if (const char *S = std::getenv("STING_CHAOS_SEED"))
      Seed = std::strtoull(S, nullptr, 10);
    if (const char *R = std::getenv("STING_CHAOS_RATE"))
      Rate = static_cast<std::uint32_t>(std::strtoul(R, nullptr, 10));
    configure(Seed ? Seed : 1, Rate);
    return true;
  }();
  (void)Done;
#endif
}

void setEnabled(bool On) {
  state().Enabled.store(On, std::memory_order_release);
}

bool enabled() { return state().Enabled.load(std::memory_order_acquire); }

std::uint64_t seed() { return state().Seed.load(std::memory_order_relaxed); }

bool fire(Site S) {
  State &St = state();
  if (!St.Enabled.load(std::memory_order_relaxed))
    return false;
  std::uint32_t Rate = St.RatePerMille.load(std::memory_order_relaxed);
  if (Rate == 0)
    return false;
  if (nextRandom() % 1000 >= Rate)
    return false;
  St.Injections[static_cast<int>(S)].fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t injections(Site S) {
  return state().Injections[static_cast<int>(S)].load(
      std::memory_order_relaxed);
}

std::uint64_t totalInjections() {
  std::uint64_t Sum = 0;
  for (int I = 0; I != static_cast<int>(Site::NumSites); ++I)
    Sum += injections(static_cast<Site>(I));
  return Sum;
}

} // namespace sting::chaos
