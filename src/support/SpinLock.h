//===- support/SpinLock.h - TTAS spin lock ----------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serialization primitive that policy-manager queues, thread waiter
/// chains, and tuple-space hash bins are built from (the "Serialization"
/// axis of the paper's scheduling-policy classification, section 3.3).
/// Test-and-test-and-set with bounded exponential backoff; BasicLockable so
/// it composes with std::lock_guard / std::unique_lock.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_SPINLOCK_H
#define STING_SUPPORT_SPINLOCK_H

#include "support/Backoff.h"
#include "support/Debug.h"

#include <atomic>

namespace sting {

/// A test-and-test-and-set spin lock with exponential backoff.
class SpinLock {
public:
  SpinLock() = default;
  SpinLock(const SpinLock &) = delete;
  SpinLock &operator=(const SpinLock &) = delete;

  void lock() {
    Backoff B;
    for (;;) {
      if (!Locked.exchange(true, std::memory_order_acquire))
        return;
      while (Locked.load(std::memory_order_relaxed))
        B.pause();
    }
  }

  /// Attempts to acquire without waiting. \returns true on success.
  bool tryLock() {
    return !Locked.load(std::memory_order_relaxed) &&
           !Locked.exchange(true, std::memory_order_acquire);
  }

  void unlock() {
    STING_DCHECK(Locked.load(std::memory_order_relaxed),
                 "unlock of an unlocked SpinLock");
    Locked.store(false, std::memory_order_release);
  }

  /// True if some owner currently holds the lock (racy; for assertions).
  bool isLocked() const { return Locked.load(std::memory_order_relaxed); }

private:
  std::atomic<bool> Locked{false};
};

} // namespace sting

#endif // STING_SUPPORT_SPINLOCK_H
