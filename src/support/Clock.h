//===- support/Clock.h - Monotonic time -------------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic nanosecond clock used for scheduling quanta, suspend timeouts
/// and the benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_CLOCK_H
#define STING_SUPPORT_CLOCK_H

#include <cstdint>

namespace sting {

/// \returns monotonic time in nanoseconds since an arbitrary epoch.
std::uint64_t nowNanos();

/// Busy-sleeps for \p Nanos using the monotonic clock; used by tests that
/// need sub-millisecond delays without blocking the OS thread in the kernel.
void spinForNanos(std::uint64_t Nanos);

/// Measures the wall-clock duration of a region.
class StopWatch {
public:
  StopWatch() : Start(nowNanos()) {}

  /// \returns nanoseconds elapsed since construction or the last restart.
  std::uint64_t elapsedNanos() const { return nowNanos() - Start; }

  void restart() { Start = nowNanos(); }

private:
  std::uint64_t Start;
};

} // namespace sting

#endif // STING_SUPPORT_CLOCK_H
