//===- support/UniqueFunction.h - Move-only callable ------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A move-only type-erased callable with small-buffer optimization. Thread
/// thunks are move-only (they often capture unique resources), so
/// std::function does not fit; this is the substrate's equivalent of
/// llvm::unique_function.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_UNIQUEFUNCTION_H
#define STING_SUPPORT_UNIQUEFUNCTION_H

#include "support/Debug.h"

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sting {

template <typename Signature> class UniqueFunction;

/// Move-only function wrapper. Callables up to three pointers large with
/// nothrow move construction are stored inline; larger ones on the heap.
template <typename Ret, typename... Args> class UniqueFunction<Ret(Args...)> {
  static constexpr std::size_t InlineSize = 3 * sizeof(void *);

  union Storage {
    alignas(std::max_align_t) unsigned char Inline[InlineSize];
    void *Heap;
  };

  enum class Op { Destroy, Move };

  using InvokeFn = Ret (*)(Storage &, Args &&...);
  using ManageFn = void (*)(Op, Storage &, Storage *);

  template <typename Fn>
  static constexpr bool IsInline =
      sizeof(Fn) <= InlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn, bool Inline = IsInline<Fn>> struct Traits;

  template <typename Fn> struct Traits<Fn, true> {
    static Fn *get(Storage &S) {
      return std::launder(reinterpret_cast<Fn *>(S.Inline));
    }
    static void construct(Storage &S, Fn &&F) {
      ::new (static_cast<void *>(S.Inline)) Fn(std::move(F));
    }
    static Ret invoke(Storage &S, Args &&...As) {
      return (*get(S))(std::forward<Args>(As)...);
    }
    static void manage(Op O, Storage &S, Storage *Dst) {
      switch (O) {
      case Op::Destroy:
        get(S)->~Fn();
        return;
      case Op::Move:
        ::new (static_cast<void *>(Dst->Inline)) Fn(std::move(*get(S)));
        get(S)->~Fn();
        return;
      }
      STING_UNREACHABLE("bad UniqueFunction op");
    }
  };

  template <typename Fn> struct Traits<Fn, false> {
    static Fn *get(Storage &S) { return static_cast<Fn *>(S.Heap); }
    static void construct(Storage &S, Fn &&F) { S.Heap = new Fn(std::move(F)); }
    static Ret invoke(Storage &S, Args &&...As) {
      return (*get(S))(std::forward<Args>(As)...);
    }
    static void manage(Op O, Storage &S, Storage *Dst) {
      switch (O) {
      case Op::Destroy:
        delete get(S);
        return;
      case Op::Move:
        Dst->Heap = S.Heap;
        S.Heap = nullptr;
        return;
      }
      STING_UNREACHABLE("bad UniqueFunction op");
    }
  };

public:
  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}

  template <typename Fn,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<Fn>, UniqueFunction> &&
                std::is_invocable_r_v<Ret, std::decay_t<Fn> &, Args...>>>
  UniqueFunction(Fn &&F) {
    using Decayed = std::decay_t<Fn>;
    Traits<Decayed>::construct(Store, Decayed(std::forward<Fn>(F)));
    Invoke = &Traits<Decayed>::invoke;
    Manage = &Traits<Decayed>::manage;
  }

  UniqueFunction(UniqueFunction &&Other) noexcept { moveFrom(Other); }

  UniqueFunction &operator=(UniqueFunction &&Other) noexcept {
    if (this == &Other)
      return *this;
    reset();
    moveFrom(Other);
    return *this;
  }

  UniqueFunction(const UniqueFunction &) = delete;
  UniqueFunction &operator=(const UniqueFunction &) = delete;

  ~UniqueFunction() { reset(); }

  /// Destroys the held callable, leaving the wrapper empty.
  void reset() {
    if (!Manage)
      return;
    Manage(Op::Destroy, Store, nullptr);
    Invoke = nullptr;
    Manage = nullptr;
  }

  explicit operator bool() const { return Invoke != nullptr; }

  Ret operator()(Args... As) {
    STING_CHECK(Invoke, "calling an empty UniqueFunction");
    return Invoke(Store, std::forward<Args>(As)...);
  }

private:
  void moveFrom(UniqueFunction &Other) noexcept {
    Invoke = Other.Invoke;
    Manage = Other.Manage;
    if (Manage)
      Manage(Op::Move, Other.Store, &Store);
    Other.Invoke = nullptr;
    Other.Manage = nullptr;
  }

  Storage Store;
  InvokeFn Invoke = nullptr;
  ManageFn Manage = nullptr;
};

} // namespace sting

#endif // STING_SUPPORT_UNIQUEFUNCTION_H
