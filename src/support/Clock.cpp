//===- support/Clock.cpp - Monotonic time ---------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/Clock.h"

#include <ctime>

namespace sting {

std::uint64_t nowNanos() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<std::uint64_t>(Ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(Ts.tv_nsec);
}

void spinForNanos(std::uint64_t Nanos) {
  const std::uint64_t Deadline = nowNanos() + Nanos;
  while (nowNanos() < Deadline) {
  }
}

} // namespace sting
