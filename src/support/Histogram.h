//===- support/Histogram.h - Latency histogram ------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A log-bucketed latency histogram for the benchmark harness. Records
/// nanosecond samples; reports count, mean and approximate percentiles.
///
/// Concurrency contract: one writer (record/merge/clear), any number of
/// concurrent readers. Storage is relaxed-atomic cells, so remote readers
/// (a stats snapshot taken while the owning VP still runs) get tear-free
/// per-field values; cross-field consistency is only guaranteed once the
/// writer has quiesced.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_HISTOGRAM_H
#define STING_SUPPORT_HISTOGRAM_H

#include <atomic>
#include <cstdint>

namespace sting {

namespace detail {

/// A uint64 with relaxed atomic access and value-copy semantics: plain
/// mov instructions on x86, but defined behaviour when a reader samples a
/// cell the single writer is updating.
class RelaxedCell {
public:
  RelaxedCell(std::uint64_t Init = 0) : V(Init) {}
  RelaxedCell(const RelaxedCell &Other) : V(Other.get()) {}
  RelaxedCell &operator=(const RelaxedCell &Other) {
    set(Other.get());
    return *this;
  }
  std::uint64_t get() const { return V.load(std::memory_order_relaxed); }
  void set(std::uint64_t X) { V.store(X, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> V;
};

} // namespace detail

/// Fixed-footprint histogram with power-of-two buckets from 1ns to ~1100s.
class Histogram {
public:
  static constexpr int NumBuckets = 40;

  void record(std::uint64_t Nanos);

  std::uint64_t count() const { return Count.get(); }
  double meanNanos() const;
  std::uint64_t minNanos() const { return Count.get() ? Min.get() : 0; }
  std::uint64_t maxNanos() const { return Max.get(); }

  /// \returns an upper bound on the \p Q quantile (0 <= Q <= 1), accurate to
  /// a factor of two (the bucket width).
  std::uint64_t quantileNanos(double Q) const;

  std::uint64_t p50Nanos() const { return quantileNanos(0.50); }
  std::uint64_t p95Nanos() const { return quantileNanos(0.95); }
  std::uint64_t p99Nanos() const { return quantileNanos(0.99); }

  /// Folds \p Other into this histogram. Buckets are summed, so the merged
  /// quantiles are exactly what a single histogram fed both sample streams
  /// would report. Used by the trace exporter to aggregate per-VP latency
  /// histograms.
  void merge(const Histogram &Other);

  void clear();

private:
  detail::RelaxedCell Buckets[NumBuckets] = {};
  detail::RelaxedCell Count;
  detail::RelaxedCell Sum;
  detail::RelaxedCell Min{~0ull};
  detail::RelaxedCell Max;
};

} // namespace sting

#endif // STING_SUPPORT_HISTOGRAM_H
