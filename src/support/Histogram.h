//===- support/Histogram.h - Latency histogram ------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A log-bucketed latency histogram for the benchmark harness. Records
/// nanosecond samples; reports count, mean and approximate percentiles.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_HISTOGRAM_H
#define STING_SUPPORT_HISTOGRAM_H

#include <cstdint>

namespace sting {

/// Fixed-footprint histogram with power-of-two buckets from 1ns to ~1100s.
class Histogram {
public:
  static constexpr int NumBuckets = 40;

  void record(std::uint64_t Nanos);

  std::uint64_t count() const { return Count; }
  double meanNanos() const;
  std::uint64_t minNanos() const { return Count ? Min : 0; }
  std::uint64_t maxNanos() const { return Max; }

  /// \returns an upper bound on the \p Q quantile (0 <= Q <= 1), accurate to
  /// a factor of two (the bucket width).
  std::uint64_t quantileNanos(double Q) const;

  void clear();

private:
  std::uint64_t Buckets[NumBuckets] = {};
  std::uint64_t Count = 0;
  std::uint64_t Sum = 0;
  std::uint64_t Min = ~0ull;
  std::uint64_t Max = 0;
};

} // namespace sting

#endif // STING_SUPPORT_HISTOGRAM_H
