//===- support/Parker.h - Event count for idle processors -------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An event count used by idle physical processors. The paper's pm-vp-idle
/// hook lets a policy "call the physical processor to have the processor
/// switch itself to another VP"; when no VP anywhere has work, the physical
/// processor must sleep rather than burn its core. Parker provides the
/// standard prepare/commit protocol that avoids lost wakeups:
///
///   Epoch E = P.prepareWait();
///   if (workAvailable()) { P.cancelWait(); ... }
///   else P.commitWait(E);
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_PARKER_H
#define STING_SUPPORT_PARKER_H

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace sting {

/// A monotone event count with blocking wait.
class Parker {
public:
  using Epoch = std::uint64_t;

  /// Announces intent to sleep. The caller must re-check its wait condition
  /// after this call and either cancelWait() or commitWait(E).
  Epoch prepareWait() { return Version.load(std::memory_order_acquire); }

  /// Abandons a prepared wait.
  void cancelWait() {}

  /// Sleeps until notify() advances the epoch past \p E, or until
  /// \p TimeoutNanos elapses (0 means wait without timeout).
  void commitWait(Epoch E, std::uint64_t TimeoutNanos = 0) {
    std::unique_lock<std::mutex> Lock(Mu);
    auto Pred = [&] { return Version.load(std::memory_order_relaxed) != E; };
    if (TimeoutNanos == 0) {
      Cv.wait(Lock, Pred);
      return;
    }
    Cv.wait_for(Lock, std::chrono::nanoseconds(TimeoutNanos), Pred);
  }

  /// Wakes all waiters; called whenever new work is published.
  void notify() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Version.fetch_add(1, std::memory_order_release);
    }
    Cv.notify_all();
  }

private:
  std::mutex Mu;
  std::condition_variable Cv;
  std::atomic<Epoch> Version{0};
};

} // namespace sting

#endif // STING_SUPPORT_PARKER_H
