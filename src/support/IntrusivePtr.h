//===- support/IntrusivePtr.h - Intrusive reference counting ----*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Intrusive reference counting for first-class runtime objects. Threads,
/// thread groups and tuple spaces are first-class: they "may be passed as
/// arguments to procedures, returned as results, and stored in data
/// structures" and "can outlive the objects that create them" (paper
/// section 3.1) — so their lifetime is reference-managed, with the count
/// embedded to keep ready-queue retain/release a single atomic op.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_INTRUSIVEPTR_H
#define STING_SUPPORT_INTRUSIVEPTR_H

#include "support/Debug.h"

#include <atomic>
#include <cstdint>
#include <utility>

namespace sting {

/// CRTP base providing an atomic reference count. Objects start with a
/// count of one, owned by the creating IntrusivePtr.
template <typename Derived> class RefCounted {
public:
  void retain() const { RefCount.fetch_add(1, std::memory_order_relaxed); }

  void release() const {
    if (RefCount.fetch_sub(1, std::memory_order_acq_rel) == 1)
      delete static_cast<const Derived *>(this);
  }

  /// Racy count, for assertions and tests only.
  std::uint32_t refCount() const {
    return RefCount.load(std::memory_order_relaxed);
  }

  /// Retains only if the object is still alive (count non-zero). For
  /// registries that enumerate objects they do not own: a plain retain
  /// could resurrect an object whose final release already committed.
  bool retainIfAlive() const {
    std::uint32_t Count = RefCount.load(std::memory_order_relaxed);
    while (Count != 0) {
      if (RefCount.compare_exchange_weak(Count, Count + 1,
                                         std::memory_order_acq_rel))
        return true;
    }
    return false;
  }

protected:
  RefCounted() = default;
  ~RefCounted() = default;

private:
  mutable std::atomic<std::uint32_t> RefCount{1};
};

/// Smart pointer for RefCounted objects.
template <typename T> class IntrusivePtr {
public:
  IntrusivePtr() = default;
  IntrusivePtr(std::nullptr_t) {}

  /// Adopts \p Obj *without* retaining: takes over the initial reference.
  static IntrusivePtr adopt(T *Obj) { return IntrusivePtr(Obj, AdoptTag()); }

  /// Shares \p Obj, retaining it.
  explicit IntrusivePtr(T *Obj) : Obj(Obj) {
    if (Obj)
      Obj->retain();
  }

  IntrusivePtr(const IntrusivePtr &Other) : Obj(Other.Obj) {
    if (Obj)
      Obj->retain();
  }

  IntrusivePtr(IntrusivePtr &&Other) noexcept : Obj(Other.Obj) {
    Other.Obj = nullptr;
  }

  IntrusivePtr &operator=(const IntrusivePtr &Other) {
    IntrusivePtr(Other).swap(*this);
    return *this;
  }

  IntrusivePtr &operator=(IntrusivePtr &&Other) noexcept {
    IntrusivePtr(std::move(Other)).swap(*this);
    return *this;
  }

  ~IntrusivePtr() {
    if (Obj)
      Obj->release();
  }

  void swap(IntrusivePtr &Other) noexcept { std::swap(Obj, Other.Obj); }

  void reset() { IntrusivePtr().swap(*this); }

  T *get() const { return Obj; }
  T &operator*() const {
    STING_DCHECK(Obj, "dereferencing null IntrusivePtr");
    return *Obj;
  }
  T *operator->() const {
    STING_DCHECK(Obj, "dereferencing null IntrusivePtr");
    return Obj;
  }
  explicit operator bool() const { return Obj != nullptr; }

  bool operator==(const IntrusivePtr &RHS) const { return Obj == RHS.Obj; }
  bool operator==(const T *RHS) const { return Obj == RHS; }

  /// Releases ownership to the caller without dropping the count.
  T *detach() {
    T *Result = Obj;
    Obj = nullptr;
    return Result;
  }

private:
  struct AdoptTag {};
  IntrusivePtr(T *Obj, AdoptTag) : Obj(Obj) {}

  T *Obj = nullptr;
};

} // namespace sting

#endif // STING_SUPPORT_INTRUSIVEPTR_H
