//===- support/Deadline.h - Timed-wait deadlines ----------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared deadline/result vocabulary for every timed blocking
/// operation in the substrate (DESIGN.md section 7). A Deadline is an
/// absolute point on the monotonic clock; "wait forever" is the distinct
/// never() value, so the untimed paths stay branch-cheap (one comparison
/// against a sentinel) and a deadline survives retry loops unchanged —
/// re-deriving it from a relative duration each iteration would stretch
/// the total wait.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_DEADLINE_H
#define STING_SUPPORT_DEADLINE_H

#include "support/Clock.h"

#include <cstdint>
#include <limits>

namespace sting {

/// Outcome of a timed wait. Ready means the awaited condition held (a
/// timed wait that races its deadline resolves in favor of the wake:
/// waiters re-check the condition before reporting Timeout).
enum class WaitResult : std::uint8_t {
  Ready,   ///< the condition held / the resource was acquired
  Timeout, ///< the deadline passed with the condition still false
};

/// An absolute point on the monotonic nanosecond clock, or never().
struct Deadline {
  /// Sentinel for "no deadline"; compares after every real time point.
  static constexpr std::uint64_t NeverNanos =
      std::numeric_limits<std::uint64_t>::max();

  std::uint64_t AtNanos = NeverNanos;

  /// A wait with no deadline (the untimed default).
  static constexpr Deadline never() { return Deadline{NeverNanos}; }

  /// A deadline \p DelayNanos from now.
  static Deadline in(std::uint64_t DelayNanos) {
    std::uint64_t Now = nowNanos();
    // Saturate: a huge relative delay must not wrap into the past.
    if (DelayNanos >= NeverNanos - Now)
      return never();
    return Deadline{Now + DelayNanos};
  }

  /// A deadline at the absolute monotonic time \p AbsNanos.
  static constexpr Deadline at(std::uint64_t AbsNanos) {
    return Deadline{AbsNanos};
  }

  constexpr bool isNever() const { return AtNanos == NeverNanos; }

  /// True once the deadline has passed. never() never expires.
  bool expired() const { return !isNever() && nowNanos() >= AtNanos; }
  constexpr bool expired(std::uint64_t NowNanos) const {
    return !isNever() && NowNanos >= AtNanos;
  }

  /// Nanoseconds until expiry (0 if already expired, NeverNanos if never).
  std::uint64_t remainingNanos() const {
    if (isNever())
      return NeverNanos;
    std::uint64_t Now = nowNanos();
    return Now >= AtNanos ? 0 : AtNanos - Now;
  }
};

} // namespace sting

#endif // STING_SUPPORT_DEADLINE_H
