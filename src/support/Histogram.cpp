//===- support/Histogram.cpp - Latency histogram --------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <bit>

namespace sting {

static int bucketFor(std::uint64_t Nanos) {
  if (Nanos == 0)
    return 0;
  int B = 64 - std::countl_zero(Nanos);
  if (B >= Histogram::NumBuckets)
    B = Histogram::NumBuckets - 1;
  return B;
}

void Histogram::record(std::uint64_t Nanos) {
  detail::RelaxedCell &B = Buckets[bucketFor(Nanos)];
  B.set(B.get() + 1);
  Count.set(Count.get() + 1);
  Sum.set(Sum.get() + Nanos);
  if (Nanos < Min.get())
    Min.set(Nanos);
  if (Nanos > Max.get())
    Max.set(Nanos);
}

double Histogram::meanNanos() const {
  std::uint64_t N = Count.get();
  if (N == 0)
    return 0.0;
  return static_cast<double>(Sum.get()) / static_cast<double>(N);
}

std::uint64_t Histogram::quantileNanos(double Q) const {
  std::uint64_t N = Count.get();
  if (N == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  std::uint64_t Target = static_cast<std::uint64_t>(Q * (N - 1)) + 1;
  std::uint64_t Seen = 0;
  for (int B = 0; B != NumBuckets; ++B) {
    Seen += Buckets[B].get();
    if (Seen >= Target)
      return B == 0 ? 0 : (1ull << B) - 1;
  }
  return Max.get();
}

void Histogram::merge(const Histogram &Other) {
  for (int B = 0; B != NumBuckets; ++B)
    Buckets[B].set(Buckets[B].get() + Other.Buckets[B].get());
  Count.set(Count.get() + Other.Count.get());
  Sum.set(Sum.get() + Other.Sum.get());
  if (Other.Min.get() < Min.get())
    Min.set(Other.Min.get());
  if (Other.Max.get() > Max.get())
    Max.set(Other.Max.get());
}

void Histogram::clear() { *this = Histogram(); }

} // namespace sting
