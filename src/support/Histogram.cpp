//===- support/Histogram.cpp - Latency histogram --------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <bit>

namespace sting {

static int bucketFor(std::uint64_t Nanos) {
  if (Nanos == 0)
    return 0;
  int B = 64 - std::countl_zero(Nanos);
  if (B >= Histogram::NumBuckets)
    B = Histogram::NumBuckets - 1;
  return B;
}

void Histogram::record(std::uint64_t Nanos) {
  ++Buckets[bucketFor(Nanos)];
  ++Count;
  Sum += Nanos;
  if (Nanos < Min)
    Min = Nanos;
  if (Nanos > Max)
    Max = Nanos;
}

double Histogram::meanNanos() const {
  if (Count == 0)
    return 0.0;
  return static_cast<double>(Sum) / static_cast<double>(Count);
}

std::uint64_t Histogram::quantileNanos(double Q) const {
  if (Count == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  std::uint64_t Target = static_cast<std::uint64_t>(Q * (Count - 1)) + 1;
  std::uint64_t Seen = 0;
  for (int B = 0; B != NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen >= Target)
      return B == 0 ? 0 : (1ull << B) - 1;
  }
  return Max;
}

void Histogram::clear() { *this = Histogram(); }

} // namespace sting
