//===- support/Debug.h - Assertion and fatal-error helpers ------*- C++ -*-===//
//
// Part of libsting, a reproduction of "A Customizable Substrate for
// Concurrent Languages" (Jagannathan & Philbin, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion macros used throughout the substrate. Programmatic errors abort
/// at the point of failure with a diagnostic; there is no exception-based
/// error channel inside the runtime (the thread controller must never
/// allocate or unwind).
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_DEBUG_H
#define STING_SUPPORT_DEBUG_H

#include <cstdio>
#include <cstdlib>

namespace sting {

/// Prints a fatal diagnostic and aborts. Never returns.
[[noreturn]] inline void reportFatalError(const char *File, int Line,
                                          const char *Msg) {
  std::fprintf(stderr, "sting fatal error: %s:%d: %s\n", File, Line, Msg);
  std::fflush(stderr);
  std::abort();
}

} // namespace sting

/// Always-on invariant check. The substrate is a scheduler: a broken
/// invariant silently corrupts every program above it, so these stay enabled
/// in release builds (they are cheap flag/pointer tests).
#define STING_CHECK(Cond, Msg)                                                 \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::sting::reportFatalError(__FILE__, __LINE__, Msg);                      \
  } while (false)

/// Debug-only check for hot paths (context switch, allocation fast path).
#ifndef NDEBUG
#define STING_DCHECK(Cond, Msg) STING_CHECK(Cond, Msg)
#else
#define STING_DCHECK(Cond, Msg)                                               \
  do {                                                                         \
  } while (false)
#endif

/// Marks a point in control flow that must be unreachable.
#define STING_UNREACHABLE(Msg)                                                 \
  ::sting::reportFatalError(__FILE__, __LINE__, "unreachable: " Msg)

#endif // STING_SUPPORT_DEBUG_H
