//===- support/Chaos.h - Deterministic fault injection ----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded fault-injection hooks (DESIGN.md section 7.4). Instrumented
/// sites in the scheduler and the blocking primitives ask STING_CHAOS_FIRE
/// whether to inject a fault — a spurious wakeup, an extra preemption
/// point, a denied steal, a delayed unpark. The decision stream is a pure
/// function of the global seed and the calling OS thread's stream index,
/// so a failing run replays with the same seed.
///
/// The macro compiles to `false` unless the build sets -DSTING_CHAOS, so
/// release binaries pay nothing at the injection sites. The runtime knobs
/// (environment or chaos::configure) only matter in chaos builds:
///
///   STING_CHAOS=1         enable injection
///   STING_CHAOS_SEED=N    global seed (default 1)
///   STING_CHAOS_RATE=N    per-site firing rate in per-mille (default 20)
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_CHAOS_H
#define STING_SUPPORT_CHAOS_H

#include <cstdint>

namespace sting::chaos {

/// The chaos-site taxonomy: every injection point belongs to exactly one
/// site class, and rates/counters are tracked per site.
enum class Site : std::uint8_t {
  SpuriousWake,  ///< kernel park entry: pretend a wake already arrived
  PreemptPoint,  ///< extra control-transfer inside await/retry loops
  StealDeny,     ///< trySteal artificially refuses a stealable thread
  UnparkDelay,   ///< unpark stalls before touching the park state word
  NetShortIo,    ///< socket read/write artificially truncated to one byte
  NetAcceptDeny, ///< accept pretends the queue was empty and re-parks
  // Wire-layer resilience sites. These fire only on paths whose callers
  // absorb the fault by design: the first three inside net::Client (which
  // retries with backoff), the last inside the server's admission queue
  // (which sheds with an explicit Overload reply). Raw Socket/BufferedConn
  // users never see them.
  NetConnectFail, ///< client connect attempt fails as if refused
  NetPeerReset,   ///< client drops its connection as if the peer reset it
  NetSlowPeer,    ///< client stalls briefly before reading the reply
  NetSynFlood,    ///< admission queue sheds its oldest pending connection
  NumSites
};

/// \returns a stable short name for \p S (reports, traces, tests).
const char *siteName(Site S);

/// Enables injection with an explicit seed and per-mille firing rate.
/// Callable at any time; resets per-site counters and reseeds the
/// per-thread decision streams lazily.
void configure(std::uint64_t Seed, std::uint32_t RatePerMille);

/// Reads STING_CHAOS / STING_CHAOS_SEED / STING_CHAOS_RATE once and
/// configures accordingly. No-op when the build lacks -DSTING_CHAOS or the
/// variable is unset. Called from VirtualMachine construction.
void initFromEnvOnce();

void setEnabled(bool On);
bool enabled();

/// The active global seed (meaningful while enabled).
std::uint64_t seed();

/// Decision point: true if a fault should be injected at \p S now. Callers
/// use STING_CHAOS_FIRE so non-chaos builds skip the call entirely.
bool fire(Site S);

/// Faults injected at \p S since the last configure().
std::uint64_t injections(Site S);

/// Sum of injections over all sites.
std::uint64_t totalInjections();

} // namespace sting::chaos

/// Site guard used at instrumentation points. Evaluates to false (and
/// costs nothing) unless the build defines STING_CHAOS.
#ifdef STING_CHAOS
#define STING_CHAOS_FIRE(S) (::sting::chaos::fire(::sting::chaos::Site::S))
#else
#define STING_CHAOS_FIRE(S) (false)
#endif

#endif // STING_SUPPORT_CHAOS_H
