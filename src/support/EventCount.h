//===- support/EventCount.h - Waiter-counting event count -------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An event count whose notify side is a single atomic load when nobody
/// waits — the idle protocol of the lock-free scheduling fast path
/// (DESIGN.md section 8). Parker (support/Parker.h) already provides the
/// prepare/commit shape, but its notify() always takes the mutex, so every
/// enqueue on a busy machine pays a lock round-trip for a wakeup nobody
/// needs. EventCount folds a waiter count into the same atomic word as the
/// epoch:
///
///   waiter:                          notifier:
///     Key K = Ec.prepareWait();        publish work (release or stronger)
///     if (workAvailable())             Ec.notifyAll();  // one seq_cst load
///       Ec.cancelWait();               //   when no waiter is registered
///     else
///       Ec.commitWait(K);
///
/// Correctness argument (the standard eventcount handshake): prepareWait
/// is a seq_cst RMW on State and the notifier's first read of State is
/// seq_cst, so the two are totally ordered. If the notifier's load comes
/// first it observes zero waiters — but then the waiter's RMW (and its
/// subsequent re-check of the wait condition) follows the notifier's
/// publication in the seq_cst order, so the re-check sees the work and the
/// waiter cancels. If the waiter's RMW comes first, the notifier sees a
/// non-zero waiter count, takes the mutex, bumps the epoch and broadcasts;
/// commitWait re-validates the epoch under the same mutex, so the wakeup
/// cannot be lost between prepare and sleep. Seq_cst operations (not
/// standalone fences) are used deliberately: ThreadSanitizer models atomic
/// operations precisely but approximates fences.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_EVENTCOUNT_H
#define STING_SUPPORT_EVENTCOUNT_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace sting {

/// A monotone event count with a waiter-count-gated notify fast path.
/// State packs (epoch << 32) | waiters so one atomic read answers both
/// "did anything happen" and "is anyone asleep".
class EventCount {
public:
  using Key = std::uint32_t;

  /// Registers this thread as a prospective waiter and \returns the epoch
  /// to pass to commitWait. The caller must re-check its wait condition
  /// after this call and then either cancelWait() or commitWait(K).
  Key prepareWait() {
    std::uint64_t Prev = State.fetch_add(1, std::memory_order_seq_cst);
    return static_cast<Key>(Prev >> EpochShift);
  }

  /// Abandons a prepared wait (the re-check found work).
  void cancelWait() { State.fetch_sub(1, std::memory_order_seq_cst); }

  /// Sleeps until the epoch advances past \p K, or until \p TimeoutNanos
  /// elapses (0 = no timeout). Consumes the prepareWait registration.
  void commitWait(Key K, std::uint64_t TimeoutNanos = 0) {
    {
      std::unique_lock<std::mutex> Lock(Mu);
      auto Pred = [&] {
        return static_cast<Key>(State.load(std::memory_order_relaxed) >>
                                EpochShift) != K;
      };
      if (TimeoutNanos == 0)
        Cv.wait(Lock, Pred);
      else
        Cv.wait_for(Lock, std::chrono::nanoseconds(TimeoutNanos), Pred);
    }
    State.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Wakes every registered waiter. One uncontended seq_cst load when no
  /// waiter is registered — the enqueue-path common case.
  void notifyAll() {
    if ((State.load(std::memory_order_seq_cst) & WaiterMask) == 0)
      return;
    {
      // The epoch bump must be ordered with commitWait's predicate check,
      // which runs under the same mutex; otherwise a waiter could check,
      // miss the bump, and sleep through the broadcast.
      std::lock_guard<std::mutex> Lock(Mu);
      State.fetch_add(std::uint64_t(1) << EpochShift,
                      std::memory_order_seq_cst);
    }
    Cv.notify_all();
  }

  /// Registered waiters right now (diagnostics; racy by nature).
  std::uint32_t waiters() const {
    return static_cast<std::uint32_t>(
        State.load(std::memory_order_relaxed) & WaiterMask);
  }

private:
  static constexpr unsigned EpochShift = 32;
  static constexpr std::uint64_t WaiterMask = 0xffffffffull;

  std::atomic<std::uint64_t> State{0};
  std::mutex Mu;
  std::condition_variable Cv;
};

} // namespace sting

#endif // STING_SUPPORT_EVENTCOUNT_H
