//===- support/IntrusiveList.h - Intrusive doubly-linked list ---*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An intrusive doubly-linked list. The thread controller allocates no
/// storage (paper section 3.1: "The thread controller allocates no storage;
/// thus, a TC call never triggers garbage collection"), so every
/// controller-side collection — ready queues, waiter chains, TCB caches —
/// links nodes embedded in the objects themselves.
///
/// A \c Tag type parameter lets one object carry several independent hooks
/// (e.g. a TCB is simultaneously on a ready queue and on its VP's cache
/// list).
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_INTRUSIVELIST_H
#define STING_SUPPORT_INTRUSIVELIST_H

#include "support/Debug.h"

#include <cstddef>
#include <iterator>

namespace sting {

struct DefaultListTag;

/// Hook to embed in a class T that should live on an IntrusiveList<T, Tag>.
template <typename Tag = DefaultListTag> class ListNode {
public:
  ListNode() = default;
  ListNode(const ListNode &) = delete;
  ListNode &operator=(const ListNode &) = delete;

  /// True while the node is linked into some list.
  bool isLinked() const { return Next != nullptr; }

private:
  template <typename, typename> friend class IntrusiveList;

  ListNode *Prev = nullptr;
  ListNode *Next = nullptr;
};

/// An intrusive circular doubly-linked list with a sentinel head.
///
/// The list does not own its elements; erasing merely unlinks. All
/// operations are O(1) except size() and iteration.
template <typename T, typename Tag = DefaultListTag> class IntrusiveList {
  using Node = ListNode<Tag>;

public:
  IntrusiveList() { Head.Prev = Head.Next = &Head; }
  IntrusiveList(const IntrusiveList &) = delete;
  IntrusiveList &operator=(const IntrusiveList &) = delete;
  ~IntrusiveList() { STING_DCHECK(empty(), "destroying a non-empty list"); }

  class iterator {
  public:
    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = T *;
    using reference = T &;

    iterator() = default;
    explicit iterator(Node *N) : Cur(N) {}

    reference operator*() const { return *fromNode(Cur); }
    pointer operator->() const { return fromNode(Cur); }

    iterator &operator++() {
      Cur = Cur->Next;
      return *this;
    }
    iterator operator++(int) {
      iterator Tmp = *this;
      ++*this;
      return Tmp;
    }
    iterator &operator--() {
      Cur = Cur->Prev;
      return *this;
    }

    bool operator==(const iterator &RHS) const { return Cur == RHS.Cur; }

  private:
    friend class IntrusiveList;
    Node *Cur = nullptr;
  };

  bool empty() const { return Head.Next == &Head; }

  /// Counts elements; O(n), intended for tests and diagnostics.
  std::size_t size() const {
    std::size_t N = 0;
    for (const Node *P = Head.Next; P != &Head; P = P->Next)
      ++N;
    return N;
  }

  iterator begin() { return iterator(Head.Next); }
  iterator end() { return iterator(&Head); }

  T &front() {
    STING_DCHECK(!empty(), "front() on empty list");
    return *fromNode(Head.Next);
  }
  T &back() {
    STING_DCHECK(!empty(), "back() on empty list");
    return *fromNode(Head.Prev);
  }

  void pushFront(T &Elt) { insertAfter(&Head, toNode(Elt)); }
  void pushBack(T &Elt) { insertAfter(Head.Prev, toNode(Elt)); }

  /// Unlinks and returns the first element.
  T &popFront() {
    T &Elt = front();
    erase(Elt);
    return Elt;
  }

  /// Unlinks and returns the last element.
  T &popBack() {
    T &Elt = back();
    erase(Elt);
    return Elt;
  }

  /// Unlinks \p Elt from this list.
  static void erase(T &Elt) {
    Node *N = toNode(Elt);
    STING_DCHECK(N->isLinked(), "erasing an unlinked node");
    N->Prev->Next = N->Next;
    N->Next->Prev = N->Prev;
    N->Prev = N->Next = nullptr;
  }

  /// Moves every element of \p Other to the back of this list.
  void splice(IntrusiveList &Other) {
    if (Other.empty())
      return;
    Node *First = Other.Head.Next;
    Node *Last = Other.Head.Prev;
    Other.Head.Prev = Other.Head.Next = &Other.Head;
    Last->Next = &Head;
    First->Prev = Head.Prev;
    Head.Prev->Next = First;
    Head.Prev = Last;
  }

private:
  static Node *toNode(T &Elt) { return static_cast<Node *>(&Elt); }
  static T *fromNode(Node *N) { return static_cast<T *>(N); }

  static void insertAfter(Node *Pos, Node *N) {
    STING_DCHECK(!N->isLinked(), "inserting an already-linked node");
    N->Prev = Pos;
    N->Next = Pos->Next;
    Pos->Next->Prev = N;
    Pos->Next = N;
  }

  Node Head;
};

} // namespace sting

#endif // STING_SUPPORT_INTRUSIVELIST_H
