//===- support/Random.h - Deterministic PRNGs -------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small deterministic random number generators for tests, property sweeps
/// and workload generation in the benchmark harness. SplitMix64 seeds
/// xoshiro256**; both are the reference public-domain algorithms.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_RANDOM_H
#define STING_SUPPORT_RANDOM_H

#include <cstdint>

namespace sting {

/// SplitMix64: a tiny, well-distributed 64-bit generator; mainly used to
/// expand a user seed into state for Xoshiro256.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t Seed) : State(Seed) {}

  std::uint64_t next() {
    std::uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

private:
  std::uint64_t State;
};

/// xoshiro256**: the general-purpose generator used by tests and benches.
class Xoshiro256 {
public:
  explicit Xoshiro256(std::uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (auto &Word : S)
      Word = SM.next();
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t Result = rotl(S[1] * 5, 7) * 9;
    const std::uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// \returns a uniform integer in [0, Bound). \p Bound must be non-zero.
  std::uint64_t nextBelow(std::uint64_t Bound) { return next() % Bound; }

  /// \returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  static std::uint64_t rotl(std::uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  std::uint64_t S[4];
};

} // namespace sting

#endif // STING_SUPPORT_RANDOM_H
