//===- support/Backoff.h - Bounded exponential backoff ----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spin-wait backoff used by SpinLock and by the active-spin phase of the
/// substrate's Mutex (paper section 4.2.1). Escalates from a pause
/// instruction through sched_yield so a single-core host (like the paper's
/// uniprocessor degenerate case) still makes progress.
///
/// Also home of BackoffPolicy, the shared retry-delay policy (bounded
/// exponential growth with decorrelating jitter) used by the resilient
/// wire layer (net::Client) and anything else that retries a failed
/// operation on a timescale of milliseconds rather than cycles.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_BACKOFF_H
#define STING_SUPPORT_BACKOFF_H

#include <cstdint>

#include <sched.h>

namespace sting {

/// Issues a CPU pause/relax hint.
inline void cpuRelax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

/// Bounded exponential backoff. Spins with pause hints for the first few
/// rounds, then yields the OS thread; the spin bound doubles per round up to
/// a cap.
class Backoff {
public:
  /// Performs one backoff round.
  void pause() {
    if (Limit <= SpinCap) {
      for (std::uint32_t I = 0; I != Limit; ++I)
        cpuRelax();
      Limit *= 2;
      return;
    }
    sched_yield();
  }

  /// Resets the backoff to its initial (cheapest) state.
  void reset() { Limit = 1; }

  /// True once pause() has escalated to OS-level yields.
  bool isYielding() const { return Limit > SpinCap; }

private:
  static constexpr std::uint32_t SpinCap = 1u << 10;
  std::uint32_t Limit = 1;
};

/// Retry-delay policy: bounded exponential backoff with jitter. Attempt 0
/// draws from [Base/2, Base], attempt K from [Base*2^K / 2, Base*2^K],
/// saturating at CapNanos. Jitter is drawn from a caller-owned SplitMix64
/// state so concurrent retriers decorrelate (no thundering herd on the
/// endpoint that just came back) while any single retrier's schedule stays
/// replayable from its seed.
struct BackoffPolicy {
  std::uint64_t BaseNanos = 1'000'000;  ///< first-retry delay (1ms)
  std::uint64_t CapNanos = 100'000'000; ///< delay ceiling (100ms)

  /// \returns the jittered delay for retry number \p Attempt (0-based),
  /// advancing \p RngState (SplitMix64).
  std::uint64_t delayNanos(unsigned Attempt, std::uint64_t &RngState) const {
    std::uint64_t Ceiling = BaseNanos ? BaseNanos : 1;
    // Saturating doubling: stop shifting once past the cap.
    for (unsigned I = 0; I != Attempt && Ceiling < CapNanos; ++I)
      Ceiling *= 2;
    if (Ceiling > CapNanos)
      Ceiling = CapNanos;
    RngState += 0x9e3779b97f4a7c15ull;
    std::uint64_t Z = RngState;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    Z ^= Z >> 31;
    std::uint64_t Half = Ceiling / 2;
    return Half + (Half ? Z % (Ceiling - Half + 1) : Ceiling);
  }
};

} // namespace sting

#endif // STING_SUPPORT_BACKOFF_H
