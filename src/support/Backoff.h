//===- support/Backoff.h - Bounded exponential backoff ----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spin-wait backoff used by SpinLock and by the active-spin phase of the
/// substrate's Mutex (paper section 4.2.1). Escalates from a pause
/// instruction through sched_yield so a single-core host (like the paper's
/// uniprocessor degenerate case) still makes progress.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SUPPORT_BACKOFF_H
#define STING_SUPPORT_BACKOFF_H

#include <cstdint>

#include <sched.h>

namespace sting {

/// Issues a CPU pause/relax hint.
inline void cpuRelax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

/// Bounded exponential backoff. Spins with pause hints for the first few
/// rounds, then yields the OS thread; the spin bound doubles per round up to
/// a cap.
class Backoff {
public:
  /// Performs one backoff round.
  void pause() {
    if (Limit <= SpinCap) {
      for (std::uint32_t I = 0; I != Limit; ++I)
        cpuRelax();
      Limit *= 2;
      return;
    }
    sched_yield();
  }

  /// Resets the backoff to its initial (cheapest) state.
  void reset() { Limit = 1; }

  /// True once pause() has escalated to OS-level yields.
  bool isYielding() const { return Limit > SpinCap; }

private:
  static constexpr std::uint32_t SpinCap = 1u << 10;
  std::uint32_t Limit = 1;
};

} // namespace sting

#endif // STING_SUPPORT_BACKOFF_H
