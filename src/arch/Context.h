//===- arch/Context.h - User-level execution contexts -----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-level substrate of the thread controller: saving and
/// restoring execution contexts. The paper's TC "is written entirely in
/// Scheme with the exception of a few primitive operations to save and
/// restore registers" (section 3.1); these are those primitives, written in
/// x86-64 assembly (ContextX86_64.S).
///
/// A Context is just a saved stack pointer; the callee-saved registers and
/// resume address live in a fixed-layout frame on the context's own stack.
/// Switching costs one store, one load, and six pushes/pops per side.
///
//===----------------------------------------------------------------------===//

#ifndef STING_ARCH_CONTEXT_H
#define STING_ARCH_CONTEXT_H

#include <cstddef>
#include <cstdint>

// ThreadSanitizer must be told about user-level stack switches or it
// crashes walking shadow stacks. Each Context carries a TSan "fiber";
// switchContext() announces the transition.
#if defined(__SANITIZE_THREAD__)
#define STING_TSAN_CONTEXT 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define STING_TSAN_CONTEXT 1
#endif
#endif
#if STING_TSAN_CONTEXT
#include <sanitizer/tsan_interface.h>
#endif

namespace sting {

/// A suspended user-level execution context.
struct Context {
  /// Saved stack pointer; null until the context is initialized or first
  /// suspended into.
  void *Sp = nullptr;
#if STING_TSAN_CONTEXT
  /// TSan fiber state. Set by initContext for fresh contexts; captured
  /// from the running thread the first time a native stack (a PP's PpCtx)
  /// is switched away from. Fibers are retained for reuse when a context
  /// is re-initialized (TCB caching), never destroyed.
  void *TsanFiber = nullptr;
#endif
};

/// Entry function for a fresh context. Must never return; its final act
/// must be a contextSwitch away (or terminating the program).
using ContextEntry = void (*)(void *Arg);

/// Prepares \p Ctx so that the first switch into it enters \p Entry with
/// \p Arg, running on the stack [\p StackBase, \p StackBase + \p StackSize).
/// \p StackBase is the lowest address of usable stack memory.
void initContext(Context &Ctx, void *StackBase, std::size_t StackSize,
                 ContextEntry Entry, void *Arg);

extern "C" {
/// Saves the current context into \p From and resumes \p To. Returns (in
/// the \p From context) when some other context switches back into it.
/// Call through switchContext() so sanitizer state stays coherent.
void stingContextSwitch(Context *From, Context *To);
} // extern "C"

/// The substrate's context-switch entry point: annotates the fiber change
/// for ThreadSanitizer (no-op otherwise) and performs the switch. \p To
/// must be initialized (initContext) or previously switched away from.
inline void switchContext(Context &From, Context &To) {
#if STING_TSAN_CONTEXT
  if (!From.TsanFiber)
    From.TsanFiber = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(To.TsanFiber, 0);
#endif
  stingContextSwitch(&From, &To);
}

} // namespace sting

#endif // STING_ARCH_CONTEXT_H
