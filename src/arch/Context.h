//===- arch/Context.h - User-level execution contexts -----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-level substrate of the thread controller: saving and
/// restoring execution contexts. The paper's TC "is written entirely in
/// Scheme with the exception of a few primitive operations to save and
/// restore registers" (section 3.1); these are those primitives, written in
/// x86-64 assembly (ContextX86_64.S).
///
/// A Context is just a saved stack pointer; the callee-saved registers and
/// resume address live in a fixed-layout frame on the context's own stack.
/// Switching costs one store, one load, and six pushes/pops per side.
///
//===----------------------------------------------------------------------===//

#ifndef STING_ARCH_CONTEXT_H
#define STING_ARCH_CONTEXT_H

#include <cstddef>
#include <cstdint>

namespace sting {

/// A suspended user-level execution context.
struct Context {
  /// Saved stack pointer; null until the context is initialized or first
  /// suspended into.
  void *Sp = nullptr;
};

/// Entry function for a fresh context. Must never return; its final act
/// must be a contextSwitch away (or terminating the program).
using ContextEntry = void (*)(void *Arg);

/// Prepares \p Ctx so that the first switch into it enters \p Entry with
/// \p Arg, running on the stack [\p StackBase, \p StackBase + \p StackSize).
/// \p StackBase is the lowest address of usable stack memory.
void initContext(Context &Ctx, void *StackBase, std::size_t StackSize,
                 ContextEntry Entry, void *Arg);

extern "C" {
/// Saves the current context into \p From and resumes \p To. Returns (in
/// the \p From context) when some other context switches back into it.
void stingContextSwitch(Context *From, Context *To);
} // extern "C"

} // namespace sting

#endif // STING_ARCH_CONTEXT_H
