//===- arch/Context.h - User-level execution contexts -----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-level substrate of the thread controller: saving and
/// restoring execution contexts. The paper's TC "is written entirely in
/// Scheme with the exception of a few primitive operations to save and
/// restore registers" (section 3.1); these are those primitives, written in
/// x86-64 assembly (ContextX86_64.S).
///
/// A Context is just a saved stack pointer; the callee-saved registers and
/// resume address live in a fixed-layout frame on the context's own stack.
/// Switching costs one store, one load, and six pushes/pops per side.
///
//===----------------------------------------------------------------------===//

#ifndef STING_ARCH_CONTEXT_H
#define STING_ARCH_CONTEXT_H

#include <cstddef>
#include <cstdint>

// ThreadSanitizer must be told about user-level stack switches or it
// crashes walking shadow stacks. Each Context carries a TSan "fiber";
// switchContext() announces the transition.
#if defined(__SANITIZE_THREAD__)
#define STING_TSAN_CONTEXT 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define STING_TSAN_CONTEXT 1
#endif
#endif
#if STING_TSAN_CONTEXT
#include <sanitizer/tsan_interface.h>
#endif

// AddressSanitizer likewise tracks one stack region per OS thread; a
// user-level switch must be bracketed with start/finish_switch_fiber or
// ASan misattributes the live stack (and __asan_handle_no_return — run on
// every throw — unpoisons garbage bounds). Each Context records its stack
// extent; native thread stacks (a PP's PpCtx) are captured lazily the
// first time they are switched away from.
#if defined(__SANITIZE_ADDRESS__)
#define STING_ASAN_CONTEXT 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define STING_ASAN_CONTEXT 1
#endif
#endif
#if STING_ASAN_CONTEXT
#include <sanitizer/common_interface_defs.h>
#endif

namespace sting {

/// A suspended user-level execution context.
struct Context {
  /// Saved stack pointer; null until the context is initialized or first
  /// suspended into.
  void *Sp = nullptr;
#if STING_TSAN_CONTEXT
  /// TSan fiber state. Set by initContext for fresh contexts; captured
  /// from the running thread the first time a native stack (a PP's PpCtx)
  /// is switched away from. Fibers are retained for reuse when a context
  /// is re-initialized (TCB caching), never destroyed.
  void *TsanFiber = nullptr;
#endif
#if STING_ASAN_CONTEXT
  /// Lowest address of this context's stack; set by initContext for fiber
  /// stacks, captured from pthread attributes for native stacks. Null
  /// means "not yet known" (a native stack never switched away from).
  const void *AsanStackBottom = nullptr;
  std::size_t AsanStackSize = 0;
  /// ASan fake-stack handle saved when this context last switched away;
  /// consumed (and cleared) when it resumes.
  void *AsanFakeStack = nullptr;
#endif
};

/// Entry function for a fresh context. Must never return; its final act
/// must be a contextSwitch away (or terminating the program).
using ContextEntry = void (*)(void *Arg);

/// Prepares \p Ctx so that the first switch into it enters \p Entry with
/// \p Arg, running on the stack [\p StackBase, \p StackBase + \p StackSize).
/// \p StackBase is the lowest address of usable stack memory.
void initContext(Context &Ctx, void *StackBase, std::size_t StackSize,
                 ContextEntry Entry, void *Arg);

extern "C" {
/// Saves the current context into \p From and resumes \p To. Returns (in
/// the \p From context) when some other context switches back into it.
/// Call through switchContext() so sanitizer state stays coherent.
void stingContextSwitch(Context *From, Context *To);
} // extern "C"

#if STING_ASAN_CONTEXT
/// Records the calling OS thread's stack extent into \p Ctx (used for
/// native contexts, whose stacks we did not allocate).
void asanCaptureNativeStack(Context &Ctx);
#endif

/// Must be the first act of every fresh-context entry function (before any
/// ASan-instrumented frame does real work): tells ASan the switch into
/// this brand-new fiber completed. No-op without ASan.
inline void enteredContext() {
#if STING_ASAN_CONTEXT
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
}

/// The substrate's context-switch entry point: annotates the fiber change
/// for Thread/AddressSanitizer (no-op otherwise) and performs the switch.
/// \p To must be initialized (initContext) or previously switched away
/// from.
inline void switchContext(Context &From, Context &To) {
#if STING_TSAN_CONTEXT
  if (!From.TsanFiber)
    From.TsanFiber = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(To.TsanFiber, 0);
#endif
#if STING_ASAN_CONTEXT
  if (!From.AsanStackBottom)
    asanCaptureNativeStack(From);
  __sanitizer_start_switch_fiber(&From.AsanFakeStack, To.AsanStackBottom,
                                 To.AsanStackSize);
#endif
  stingContextSwitch(&From, &To);
#if STING_ASAN_CONTEXT
  // Back on From's stack: complete the switch that resumed us.
  __sanitizer_finish_switch_fiber(From.AsanFakeStack, nullptr, nullptr);
  From.AsanFakeStack = nullptr;
#endif
}

} // namespace sting

#endif // STING_ARCH_CONTEXT_H
