//===- arch/Context.cpp - Context boot-frame construction -----------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "arch/Context.h"

#include "support/Debug.h"

#include <cstring>

#if STING_ASAN_CONTEXT
#include <pthread.h>
#endif

namespace sting {

extern "C" void stingContextTrampoline();

void initContext(Context &Ctx, void *StackBase, std::size_t StackSize,
                 ContextEntry Entry, void *Arg) {
  STING_CHECK(StackSize >= 512, "context stack too small");

  // Align the stack top down to 16 bytes, then lay out the boot frame. Two
  // fake qwords above the trampoline's return-address slot make rsp % 16 == 0
  // at trampoline entry, so the `call *%r14` inside it leaves the callee with
  // the ABI-required rsp % 16 == 8.
  auto Top = reinterpret_cast<std::uintptr_t>(StackBase) + StackSize;
  Top &= ~std::uintptr_t(15);

  auto *Slots = reinterpret_cast<std::uintptr_t *>(Top);
  // Slots[-1], Slots[-2]: fake frame words (also give backtraces a null pc).
  Slots[-1] = 0;
  Slots[-2] = 0;
  // Slots[-3]: return address -> trampoline.
  Slots[-3] = reinterpret_cast<std::uintptr_t>(&stingContextTrampoline);
  // Callee-saved register slots, in pop order from the saved SP:
  // [-9]=r15 [-8]=r14 [-7]=r13 [-6]=r12 [-5]=rbx [-4]=rbp.
  Slots[-4] = 0;                                        // rbp
  Slots[-5] = 0;                                        // rbx
  Slots[-6] = 0;                                        // r12
  Slots[-7] = 0;                                        // r13
  Slots[-8] = reinterpret_cast<std::uintptr_t>(Entry);  // r14
  Slots[-9] = reinterpret_cast<std::uintptr_t>(Arg);    // r15

  Ctx.Sp = &Slots[-9];

#if STING_TSAN_CONTEXT
  // Reuse the fiber across re-initialization (TCB caching re-inits the
  // same Context object for each new occupant of a cached stack).
  if (!Ctx.TsanFiber)
    Ctx.TsanFiber = __tsan_create_fiber(0);
#endif
#if STING_ASAN_CONTEXT
  Ctx.AsanStackBottom = StackBase;
  Ctx.AsanStackSize = StackSize;
  // A stale fake-stack save from the stack's previous occupant must not be
  // consumed by the fresh context's first resume.
  Ctx.AsanFakeStack = nullptr;
#endif
}

#if STING_ASAN_CONTEXT
void asanCaptureNativeStack(Context &Ctx) {
  pthread_attr_t Attr;
  if (pthread_getattr_np(pthread_self(), &Attr) != 0)
    return;
  void *Base = nullptr;
  std::size_t Size = 0;
  if (pthread_attr_getstack(&Attr, &Base, &Size) == 0) {
    Ctx.AsanStackBottom = Base;
    Ctx.AsanStackSize = Size;
  }
  pthread_attr_destroy(&Attr);
}
#endif

} // namespace sting
