//===- arch/Stack.h - Thread stacks and the per-VP stack cache --*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread stacks, mmap'd with a PROT_NONE guard page below the usable
/// region, and StackPool, the per-virtual-processor cache that realizes the
/// paper's storage-locality optimization: "storage for running threads are
/// cached on VPs and are recycled for immediate reuse when a thread
/// terminates" (section 2).
///
//===----------------------------------------------------------------------===//

#ifndef STING_ARCH_STACK_H
#define STING_ARCH_STACK_H

#include "support/IntrusiveList.h"

#include <cstddef>
#include <cstdint>

namespace sting {

struct StackCacheTag;

/// An mmap'd stack with a guard page at its low end. The Stack header
/// itself lives at the *top* of the mapping, so a Stack is created and
/// destroyed with no separate allocation.
class Stack : public ListNode<StackCacheTag> {
public:
  /// Maps a new stack whose usable size is at least \p UsableSize bytes.
  /// \returns nullptr if the mapping fails.
  static Stack *create(std::size_t UsableSize);

  /// Unmaps the stack. The Stack object is destroyed.
  void destroy();

  /// Lowest usable address.
  void *base() const { return Base; }

  /// Usable byte count (excludes guard page and this header).
  std::size_t size() const { return Size; }

  /// Top of the usable region (== address of this header, 16-aligned).
  void *top() const {
    return reinterpret_cast<char *>(Base) + Size;
  }

  /// True if \p Addr falls inside the usable region; used by overflow
  /// diagnostics in tests.
  bool contains(const void *Addr) const {
    return Addr >= Base && Addr < top();
  }

private:
  Stack(void *MapBase, std::size_t MapSize, void *UsableBase,
        std::size_t UsableSize)
      : MapBase(MapBase), MapSize(MapSize), Base(UsableBase),
        Size(UsableSize) {}

  void *MapBase;
  std::size_t MapSize;
  void *Base;
  std::size_t Size;
};

/// An unsynchronized cache of equal-sized stacks. Each virtual processor
/// owns one, so allocation on the thread-fork fast path touches no shared
/// state.
class StackPool {
public:
  explicit StackPool(std::size_t StackSize, std::size_t MaxCached = 64)
      : StackSize(StackSize), MaxCached(MaxCached) {}
  ~StackPool();

  StackPool(const StackPool &) = delete;
  StackPool &operator=(const StackPool &) = delete;

  /// Pops a cached stack or maps a fresh one. Aborts if the system is out
  /// of address space (a scheduler cannot usefully continue without stacks).
  Stack &allocate();

  /// Returns \p S to the cache, or unmaps it if the cache is full.
  void release(Stack &S);

  /// Cache statistics, used by tests and the benchmark harness.
  std::uint64_t mapCount() const { return Maps; }
  std::uint64_t reuseCount() const { return Reuses; }
  std::size_t cachedCount() const { return Cached; }
  std::size_t stackSize() const { return StackSize; }

private:
  std::size_t StackSize;
  std::size_t MaxCached;
  std::size_t Cached = 0;
  std::uint64_t Maps = 0;
  std::uint64_t Reuses = 0;
  IntrusiveList<Stack, StackCacheTag> Free;
};

} // namespace sting

#endif // STING_ARCH_STACK_H
