//===- arch/Stack.cpp - Thread stacks --------------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "arch/Stack.h"

#include "support/Debug.h"

#include <new>

#include <sys/mman.h>
#include <unistd.h>

namespace sting {

static std::size_t pageSize() {
  static const std::size_t Size =
      static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return Size;
}

static std::size_t roundUpTo(std::size_t N, std::size_t Align) {
  return (N + Align - 1) & ~(Align - 1);
}

Stack *Stack::create(std::size_t UsableSize) {
  const std::size_t Page = pageSize();
  // Header lives at the top of the mapping; keep the usable top 16-aligned.
  const std::size_t HeaderSize = roundUpTo(sizeof(Stack), 16);
  const std::size_t Body = roundUpTo(UsableSize + HeaderSize, Page);
  const std::size_t MapSize = Body + Page; // + guard page

  void *Map = mmap(nullptr, MapSize, PROT_NONE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Map == MAP_FAILED)
    return nullptr;

  char *Usable = static_cast<char *>(Map) + Page;
  if (mprotect(Usable, Body, PROT_READ | PROT_WRITE) != 0) {
    munmap(Map, MapSize);
    return nullptr;
  }

  char *HeaderAddr = Usable + Body - HeaderSize;
  return ::new (HeaderAddr)
      Stack(Map, MapSize, Usable, Body - HeaderSize);
}

void Stack::destroy() {
  void *Map = MapBase;
  std::size_t Size = MapSize;
  this->~Stack();
  munmap(Map, Size);
}

StackPool::~StackPool() {
  while (!Free.empty())
    Free.popFront().destroy();
}

Stack &StackPool::allocate() {
  if (!Free.empty()) {
    --Cached;
    ++Reuses;
    return Free.popFront();
  }
  Stack *S = Stack::create(StackSize);
  STING_CHECK(S, "stack allocation failed: out of address space");
  ++Maps;
  return *S;
}

void StackPool::release(Stack &S) {
  if (Cached >= MaxCached || S.size() < StackSize) {
    S.destroy();
    return;
  }
  ++Cached;
  Free.pushFront(S);
}

} // namespace sting
