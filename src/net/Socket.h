//===- net/Socket.h - Thread-parking TCP sockets ----------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII non-blocking TCP endpoints whose blocking operations park the
/// calling *thread* on the IoService poller — never the VP, which keeps
/// dispatching other threads (the paper's non-blocking I/O requirement,
/// section 6, applied to sockets). Every operation has a Deadline-taking
/// variant, and all of them ride awaitUntil's cancellation protocol: a
/// threadTerminate/raiseIn aimed at a thread parked here unwinds through
/// the waiter-record retraction in IoService, so no registration survives
/// the frame and no wakeup is lost.
///
/// Chaos builds perturb the data plane: Site::NetShortIo truncates a
/// read/write request to one byte (forcing resumption loops through the
/// buffering layer), and Site::NetAcceptDeny makes accept spin one extra
/// lap as if the backlog were empty.
///
//===----------------------------------------------------------------------===//

#ifndef STING_NET_SOCKET_H
#define STING_NET_SOCKET_H

#include "io/IoService.h"
#include "support/Deadline.h"

#include <cstdint>
#include <sys/types.h>

namespace sting::net {

/// A connected TCP stream, move-only, closing its descriptor on
/// destruction. All I/O parks the calling thread (not the VP) until the
/// kernel is ready; deadline overruns surface as -1 with errno=ETIMEDOUT,
/// service shutdown as -1 with errno=ECANCELED.
class Socket {
public:
  Socket() = default;
  /// Adopts \p Fd (made non-blocking here if it is not already).
  Socket(IoService &Io, int Fd);
  ~Socket() { close(); }

  Socket(Socket &&O) noexcept : Io(O.Io), Fd(O.Fd) { O.Fd = -1; }
  Socket &operator=(Socket &&O) noexcept {
    if (this != &O) {
      close();
      Io = O.Io;
      Fd = O.Fd;
      O.Fd = -1;
    }
    return *this;
  }
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }
  IoService &io() const { return *Io; }

  /// Reads up to \p N bytes, parking until data (or EOF) arrives.
  /// \returns bytes read, 0 on EOF, -1 on error.
  ssize_t read(void *Buf, std::size_t N) {
    return readUntil(Buf, N, Deadline::never());
  }

  /// Timed read; -1/ETIMEDOUT once \p D expires with nothing read.
  ssize_t readUntil(void *Buf, std::size_t N, Deadline D);

  /// Writes up to \p N bytes, parking while the send buffer is full.
  ssize_t write(const void *Buf, std::size_t N) {
    return writeUntil(Buf, N, Deadline::never());
  }

  /// Timed write; -1/ETIMEDOUT once \p D expires with nothing written.
  ssize_t writeUntil(const void *Buf, std::size_t N, Deadline D);

  /// Writes all \p N bytes (multiple rounds). \returns false on error.
  bool writeAll(const void *Buf, std::size_t N) {
    return writeAllUntil(Buf, N, Deadline::never());
  }

  /// Timed writeAll; false with errno=ETIMEDOUT if \p D expires first.
  bool writeAllUntil(const void *Buf, std::size_t N, Deadline D);

  /// Closes the descriptor now (idempotent).
  void close();

  /// Releases ownership of the descriptor without closing it.
  int release() {
    int F = Fd;
    Fd = -1;
    return F;
  }

  /// Connects to \p Host:\p Port (dotted-quad IPv4 only — there is no
  /// resolver thread pool; parks through the non-blocking connect).
  /// \returns an invalid Socket on failure (errno preserved).
  static Socket connectTo(IoService &Io, const char *Host,
                          std::uint16_t Port) {
    return connectUntil(Io, Host, Port, Deadline::never());
  }

  /// Timed connect; invalid Socket with errno=ETIMEDOUT on deadline.
  static Socket connectUntil(IoService &Io, const char *Host,
                             std::uint16_t Port, Deadline D);

private:
  IoService *Io = nullptr;
  int Fd = -1;
};

/// A listening TCP socket bound to 127.0.0.1. accept() parks the calling
/// thread until a connection is pending.
class Listener {
public:
  Listener() = default;
  ~Listener() { close(); }

  Listener(Listener &&O) noexcept : Io(O.Io), Fd(O.Fd), BoundPort(O.BoundPort) {
    O.Fd = -1;
  }
  Listener &operator=(Listener &&O) noexcept {
    if (this != &O) {
      close();
      Io = O.Io;
      Fd = O.Fd;
      BoundPort = O.BoundPort;
      O.Fd = -1;
    }
    return *this;
  }
  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;

  /// Binds and listens on 127.0.0.1:\p Port (0 picks an ephemeral port,
  /// readable afterwards via port()). With \p ReusePort the socket joins
  /// (or starts) an SO_REUSEPORT group, letting several listeners share
  /// one port with kernel-side load balancing — every member of the group
  /// must set the flag, including the first. \returns an invalid Listener
  /// on failure (errno preserved).
  static Listener listenOn(IoService &Io, std::uint16_t Port,
                           int Backlog = 128, bool ReusePort = false);

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }
  std::uint16_t port() const { return BoundPort; }
  IoService &io() const { return *Io; }

  /// Accepts one connection, parking until the backlog is non-empty.
  /// \returns an invalid Socket on error or service shutdown.
  Socket accept() { return acceptUntil(Deadline::never()); }

  /// Timed accept; invalid Socket with errno=ETIMEDOUT on deadline.
  Socket acceptUntil(Deadline D);

  void close();

private:
  IoService *Io = nullptr;
  int Fd = -1;
  std::uint16_t BoundPort = 0;
};

} // namespace sting::net

#endif // STING_NET_SOCKET_H
