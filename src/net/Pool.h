//===- net/Pool.h - Bounded multi-endpoint connection pool ------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded pool of net::Clients over one *or more* endpoints, with the
/// substrate's own blocking discipline: checkout at the size cap parks the
/// calling *thread* on a ParkList (charging PoolCheckoutWaits) until a
/// lease is returned — the VP keeps dispatching.
///
/// Each endpoint owns one CircuitBreaker shared by all of its clients, so
/// the pool learns an endpoint outage once per endpoint instead of
/// MaxConnections times — and an outage of shard A never trips shard B's
/// breaker. The unpinned checkout does a weighted pick among endpoints
/// whose breaker is not open (most free capacity wins, round-robin on
/// ties); the pinned checkout(Endpoint, D) is what a router uses to reach
/// a tuple's home shard.
///
/// Invariants (pinned by tests, documented in DESIGN.md sections 11/13):
///  - at most MaxConnections clients exist *per endpoint* (leased + idle);
///  - a Lease is single-owner and returns its client on destruction, on
///    every path including cancellation unwind;
///  - clients are returned to the pool even when their connection broke —
///    reconnect is the client's own lazy job, not the pool's.
///
//===----------------------------------------------------------------------===//

#ifndef STING_NET_POOL_H
#define STING_NET_POOL_H

#include "net/Client.h"
#include "support/SpinLock.h"
#include "sync/ParkList.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace sting::net {

struct PoolConfig {
  std::size_t MaxConnections = 8; ///< cap per endpoint (leased + idle)
  /// Single-endpoint form (the PR 7 surface): used when Endpoints is
  /// empty, so existing call sites configure exactly one endpoint here.
  ClientConfig Client;
  /// Multi-endpoint form: when non-empty, one pooled endpoint (with its
  /// own breaker, from each entry's Breaker config) per element; the
  /// Client field above is ignored.
  std::vector<ClientConfig> Endpoints;
};

/// A bounded, parking client pool. Thread-safe; leases are not.
class ConnectionPool {
public:
  ConnectionPool(IoService &Io, PoolConfig Config) : Io(&Io) {
    if (Config.MaxConnections == 0)
      Config.MaxConnections = 1;
    if (Config.Endpoints.empty())
      Config.Endpoints.push_back(Config.Client);
    this->Config = std::move(Config);
    Ends.reserve(this->Config.Endpoints.size());
    for (const ClientConfig &CC : this->Config.Endpoints)
      Ends.push_back(std::make_unique<Endpoint>(CC.Breaker));
  }

  ~ConnectionPool() {
    // Every lease must be home before the pool dies (same contract as a
    // Server outliving its connections).
#ifndef NDEBUG
    for (const auto &E : Ends)
      assert(E->Outstanding == 0 && "pool destroyed with leases outstanding");
#endif
  }

  ConnectionPool(const ConnectionPool &) = delete;
  ConnectionPool &operator=(const ConnectionPool &) = delete;

  /// An exclusively-owned checkout; returns the client on destruction.
  class Lease {
  public:
    Lease() = default;
    Lease(Lease &&O) noexcept
        : P(std::exchange(O.P, nullptr)), E(O.E), C(std::move(O.C)) {}
    Lease &operator=(Lease &&O) noexcept {
      if (this != &O) {
        reset();
        P = std::exchange(O.P, nullptr);
        E = O.E;
        C = std::move(O.C);
      }
      return *this;
    }
    ~Lease() { reset(); }

    explicit operator bool() const { return C != nullptr; }
    Client &operator*() { return *C; }
    Client *operator->() { return C.get(); }
    /// Which endpoint the client dials (index into PoolConfig::Endpoints).
    std::size_t endpoint() const { return E; }

    /// Early checkin.
    void reset() {
      if (P && C)
        P->checkin(E, std::move(C));
      P = nullptr;
      C = nullptr;
    }

  private:
    friend class ConnectionPool;
    Lease(ConnectionPool *Pool, std::size_t E, std::unique_ptr<Client> Cl)
        : P(Pool), E(E), C(std::move(Cl)) {}

    ConnectionPool *P = nullptr;
    std::size_t E = 0;
    std::unique_ptr<Client> C;
  };

  /// Checks a client out of any endpoint — weighted pick among endpoints
  /// whose breaker is not open (most free capacity first, round-robin on
  /// ties), falling back to open-breaker endpoints so the caller gets the
  /// breaker's fast BreakerOpen verdict rather than a bogus timeout.
  /// Parks at the cap until a lease is returned or \p D expires (empty
  /// lease, errno=ETIMEDOUT) — unless the wait was cut short by service
  /// shutdown, which yields an empty lease with errno=ECANCELED so callers
  /// can tell teardown from endpoint slowness. Parking requires a sting
  /// thread; off-substrate callers must size the pool so the fast path
  /// always succeeds.
  Lease checkout(Deadline D = Deadline::never());

  /// Pinned checkout from endpoint \p E (a router's home-shard path).
  /// Same parking/deadline contract as the unpinned form.
  Lease checkoutFrom(std::size_t E, Deadline D = Deadline::never());

  /// Convenience: checkout + request + checkin.
  RequestStatus request(const wire::Writer &W,
                        std::vector<std::uint8_t> &Reply,
                        Deadline D = Deadline::never());

  /// Pinned convenience for endpoint \p E.
  RequestStatus requestFrom(std::size_t E, const wire::Writer &W,
                            std::vector<std::uint8_t> &Reply,
                            Deadline D = Deadline::never());

  std::size_t endpointCount() const { return Ends.size(); }

  /// Endpoint \p E's breaker.
  CircuitBreaker &breaker(std::size_t E) { return Ends[E]->Breaker; }

  /// The first endpoint's breaker (the whole pool's, in the
  /// single-endpoint configuration — the PR 7 surface).
  CircuitBreaker &breaker() { return breaker(0); }

  /// Clients in existence across all endpoints (leased + idle).
  std::size_t clientCount() const {
    std::lock_guard<SpinLock> Guard(Lock);
    std::size_t N = 0;
    for (const auto &E : Ends)
      N += E->Outstanding + E->Idle.size();
    return N;
  }

  /// Checkouts that had to park at the cap.
  std::uint64_t checkoutWaits() const {
    return Waits.load(std::memory_order_relaxed);
  }

private:
  friend class Lease;

  /// One pooled endpoint: its breaker (shared by all its clients) and its
  /// bounded client set. Idle/Outstanding are guarded by the pool Lock.
  struct Endpoint {
    explicit Endpoint(const BreakerConfig &BC) : Breaker(BC) {}
    CircuitBreaker Breaker;
    std::vector<std::unique_ptr<Client>> Idle;
    std::size_t Outstanding = 0;
  };

  void checkin(std::size_t E, std::unique_ptr<Client> C);
  /// Idle pop or under-cap create on endpoint \p E; null at the cap.
  /// Bumps Outstanding on success.
  std::unique_ptr<Client> tryTake(std::size_t E);
  /// Weighted any-endpoint take; sets \p E to the chosen endpoint.
  std::unique_ptr<Client> tryTakeAny(std::size_t &E);
  std::unique_ptr<Client> takeLocked(Endpoint &End, std::size_t Idx);
  /// The parking slow path shared by both checkout flavors.
  template <typename TakeFn> Lease slowCheckout(TakeFn Take, Deadline D);

  IoService *Io;
  PoolConfig Config;
  std::vector<std::unique_ptr<Endpoint>> Ends;
  mutable SpinLock Lock;
  ParkList Waiters;
  std::atomic<std::uint64_t> Waits{0};
  std::atomic<std::uint64_t> Rr{0}; ///< round-robin tie-break cursor
};

} // namespace sting::net

#endif // STING_NET_POOL_H
