//===- net/Pool.h - Bounded client connection pool --------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded pool of net::Clients for one endpoint, with the substrate's
/// own blocking discipline: checkout at the size cap parks the calling
/// *thread* on a ParkList (charging PoolCheckoutWaits) until a lease is
/// returned — the VP keeps dispatching. All clients share one
/// CircuitBreaker, so the pool learns an endpoint outage once instead of
/// MaxConnections times.
///
/// Invariants (pinned by tests, documented in DESIGN.md section 11):
///  - at most MaxConnections clients exist (leased + idle);
///  - a Lease is single-owner and returns its client on destruction, on
///    every path including cancellation unwind;
///  - clients are returned to the pool even when their connection broke —
///    reconnect is the client's own lazy job, not the pool's.
///
//===----------------------------------------------------------------------===//

#ifndef STING_NET_POOL_H
#define STING_NET_POOL_H

#include "net/Client.h"
#include "support/SpinLock.h"
#include "sync/ParkList.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace sting::net {

struct PoolConfig {
  std::size_t MaxConnections = 8; ///< hard cap on clients (leased + idle)
  ClientConfig Client;            ///< endpoint + retry policy per client
};

/// A bounded, parking client pool. Thread-safe; leases are not.
class ConnectionPool {
public:
  ConnectionPool(IoService &Io, PoolConfig Config)
      : Io(&Io), Config(std::move(Config)),
        Breaker(this->Config.Client.Breaker) {
    if (this->Config.MaxConnections == 0)
      this->Config.MaxConnections = 1;
  }

  ~ConnectionPool() {
    // Every lease must be home before the pool dies (same contract as a
    // Server outliving its connections).
    assert(Outstanding == 0 && "pool destroyed with leases outstanding");
  }

  ConnectionPool(const ConnectionPool &) = delete;
  ConnectionPool &operator=(const ConnectionPool &) = delete;

  /// An exclusively-owned checkout; returns the client on destruction.
  class Lease {
  public:
    Lease() = default;
    Lease(Lease &&O) noexcept
        : P(std::exchange(O.P, nullptr)), C(std::move(O.C)) {}
    Lease &operator=(Lease &&O) noexcept {
      if (this != &O) {
        reset();
        P = std::exchange(O.P, nullptr);
        C = std::move(O.C);
      }
      return *this;
    }
    ~Lease() { reset(); }

    explicit operator bool() const { return C != nullptr; }
    Client &operator*() { return *C; }
    Client *operator->() { return C.get(); }

    /// Early checkin.
    void reset() {
      if (P && C)
        P->checkin(std::move(C));
      P = nullptr;
      C = nullptr;
    }

  private:
    friend class ConnectionPool;
    Lease(ConnectionPool *Pool, std::unique_ptr<Client> Cl)
        : P(Pool), C(std::move(Cl)) {}

    ConnectionPool *P = nullptr;
    std::unique_ptr<Client> C;
  };

  /// Checks a client out, parking at the cap until one is returned or
  /// \p D expires (empty lease, errno=ETIMEDOUT) — unless the wait was
  /// cut short by service shutdown, which yields an empty lease with
  /// errno=ECANCELED so callers can tell teardown from endpoint
  /// slowness. Parking requires a sting thread; off-substrate callers
  /// must size the pool so the fast path always succeeds.
  Lease checkout(Deadline D = Deadline::never());

  /// Convenience: checkout + request + checkin.
  RequestStatus request(const wire::Writer &W,
                        std::vector<std::uint8_t> &Reply,
                        Deadline D = Deadline::never());

  /// The shared per-endpoint breaker.
  CircuitBreaker &breaker() { return Breaker; }

  /// Clients in existence (leased + idle).
  std::size_t clientCount() const {
    std::lock_guard<SpinLock> Guard(Lock);
    return Outstanding + Idle.size();
  }

  /// Checkouts that had to park at the cap.
  std::uint64_t checkoutWaits() const {
    return Waits.load(std::memory_order_relaxed);
  }

private:
  friend class Lease;

  void checkin(std::unique_ptr<Client> C);
  /// Idle pop or under-cap create; null at the cap. Bumps Outstanding on
  /// success.
  std::unique_ptr<Client> tryTake();

  IoService *Io;
  PoolConfig Config;
  CircuitBreaker Breaker;
  mutable SpinLock Lock;
  std::vector<std::unique_ptr<Client>> Idle;
  std::size_t Outstanding = 0;
  ParkList Waiters;
  std::atomic<std::uint64_t> Waits{0};
};

} // namespace sting::net

#endif // STING_NET_POOL_H
