//===- net/BufferedConn.cpp - Buffered connection I/O ------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "net/BufferedConn.h"

#include "core/Current.h"
#include "core/VirtualProcessor.h"
#include "obs/TraceBuffer.h"

#include <cerrno>
#include <cstring>

namespace sting::net {

void BufferedConn::reserveTail(std::size_t Chunk) {
  if (In.size() - InEnd >= Chunk)
    return;
  std::size_t Live = InEnd - InPos;
  // Compact only once the consumed head dominates the store: the memmove
  // costs O(live) and reclaims InPos bytes, so each buffered byte moves at
  // most O(1) amortized times. Compacting eagerly (the old scheme) made a
  // large frame arriving in small chunks pay O(frame) per refill.
  if (InPos > In.size() / 2) {
    std::memmove(In.data(), In.data() + InPos, Live);
    InCopied += Live;
    InPos = 0;
    InEnd = Live;
    if (In.size() - InEnd >= Chunk)
      return;
  }
  // Grow geometrically, carrying only the live bytes into the new store —
  // a plain resize() would both zero-fill and drag the dead head along.
  std::size_t NewCap = In.empty() ? 4096 : In.size() * 2;
  while (NewCap - Live < Chunk)
    NewCap *= 2;
  std::vector<std::uint8_t> Fresh(NewCap);
  if (Live != 0) // In.data() is null while the store is still unallocated
    std::memcpy(Fresh.data(), In.data() + InPos, Live);
  InCopied += Live;
  In.swap(Fresh);
  InPos = 0;
  InEnd = Live;
}

bool BufferedConn::ensureBuffered(std::size_t N, Deadline D) {
  while (InEnd - InPos < N) {
    std::size_t Need = N - (InEnd - InPos);
    reserveTail(Need < 4096 ? 4096 : Need);
    ssize_t Rc = Sock.readUntil(In.data() + InEnd, In.size() - InEnd, D);
    if (Rc == 0) {
      // EOF. ::read leaves errno untouched on a clean close, which would
      // let whatever errno the carrier OS thread last saw leak through —
      // a serve loop distinguishing "poll lap" (ETIMEDOUT) from
      // "connection gone" would then spin on a dead socket forever.
      errno = ECONNRESET;
      return false;
    }
    if (Rc < 0)
      return false; // a timed-out call consumes and keeps nothing
    InEnd += static_cast<std::size_t>(Rc);
  }
  return true;
}

bool BufferedConn::readExact(void *Buf, std::size_t N, Deadline D) {
  if (!ensureBuffered(N, D))
    return false;
  std::memcpy(Buf, In.data() + InPos, N);
  InPos += N;
  if (InPos == InEnd)
    InPos = InEnd = 0; // cheap rewind; the store is kept for reuse
  return true;
}

bool BufferedConn::readFrame(std::vector<std::uint8_t> &Frame, Deadline D,
                             std::size_t MaxFrame) {
  // Buffer the whole frame before consuming any of it, so a deadline that
  // fires mid-frame leaves the stream position untouched.
  if (!ensureBuffered(4, D))
    return false;
  const std::uint8_t *L = In.data() + InPos;
  std::uint32_t Len = static_cast<std::uint32_t>(L[0]) |
                      static_cast<std::uint32_t>(L[1]) << 8 |
                      static_cast<std::uint32_t>(L[2]) << 16 |
                      static_cast<std::uint32_t>(L[3]) << 24;
  if (Len > MaxFrame) {
    errno = EMSGSIZE;
    return false;
  }
  if (!ensureBuffered(4 + static_cast<std::size_t>(Len), D))
    return false;
  const std::uint8_t *Body = In.data() + InPos + 4;
  Frame.assign(Body, Body + Len);
  InPos += 4 + Len;
  if (InPos == InEnd)
    InPos = InEnd = 0;
  return true;
}

bool BufferedConn::write(const void *Buf, std::size_t N, Deadline D) {
  const std::uint8_t *P = static_cast<const std::uint8_t *>(Buf);
  Out.insert(Out.end(), P, P + N);
  if (pendingWrite() <= HighWater)
    return true;
  // Backpressure: the producer thread parks inside the socket write until
  // the residue is back under the mark. The VP keeps running other
  // connections; only this producer stalls.
  if (VirtualProcessor *Vp = currentVp())
    Vp->stats().NetBackpressureStalls.inc();
  STING_TRACE_EVENT(NetBackpressure, 0,
                    static_cast<std::uint32_t>(
                        pendingWrite() > 0xffffffff ? 0xffffffff
                                                    : pendingWrite()));
  return drainTo(HighWater, D);
}

bool BufferedConn::writeFrame(const void *Buf, std::size_t N, Deadline D) {
  if (N > 0xffffffffu) {
    // The u32 prefix cannot carry it; emitting a truncated length followed
    // by all N bytes would corrupt the stream framing for good.
    errno = EMSGSIZE;
    return false;
  }
  std::uint8_t LenBytes[4] = {
      static_cast<std::uint8_t>(N & 0xff),
      static_cast<std::uint8_t>((N >> 8) & 0xff),
      static_cast<std::uint8_t>((N >> 16) & 0xff),
      static_cast<std::uint8_t>((N >> 24) & 0xff),
  };
  return write(LenBytes, sizeof(LenBytes), D) && (N == 0 || write(Buf, N, D));
}

bool BufferedConn::flush(Deadline D) { return drainTo(0, D); }

bool BufferedConn::drainTo(std::size_t Target, Deadline D) {
  while (pendingWrite() > Target) {
    ssize_t Rc = Sock.writeUntil(Out.data() + OutPos, Out.size() - OutPos, D);
    if (Rc <= 0)
      return false;
    OutPos += static_cast<std::size_t>(Rc);
  }
  if (OutPos == Out.size()) {
    Out.clear();
    OutPos = 0;
  } else if (OutPos > (1 << 16) && OutPos > Out.size() / 2) {
    // Compact once the flushed prefix dominates, so Out does not grow
    // without bound across a long-lived connection.
    Out.erase(Out.begin(), Out.begin() + static_cast<std::ptrdiff_t>(OutPos));
    OutPos = 0;
  }
  return true;
}

} // namespace sting::net
