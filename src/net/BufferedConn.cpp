//===- net/BufferedConn.cpp - Buffered connection I/O ------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "net/BufferedConn.h"

#include "core/Current.h"
#include "core/VirtualProcessor.h"
#include "obs/TraceBuffer.h"

#include <cerrno>
#include <cstring>

namespace sting::net {

bool BufferedConn::ensureBuffered(std::size_t N, Deadline D) {
  while (In.size() - InPos < N) {
    // Compact a dominant consumed prefix before growing further.
    if (InPos > 4096 && InPos > In.size() / 2) {
      In.erase(In.begin(), In.begin() + static_cast<std::ptrdiff_t>(InPos));
      InPos = 0;
    }
    std::size_t Old = In.size();
    std::size_t Need = N - (Old - InPos);
    In.resize(Old + (Need < 4096 ? 4096 : Need));
    ssize_t Rc = Sock.readUntil(In.data() + Old, In.size() - Old, D);
    if (Rc <= 0) {
      In.resize(Old); // a timed-out/EOF'd call consumes and keeps nothing
      return false;
    }
    In.resize(Old + static_cast<std::size_t>(Rc));
  }
  return true;
}

bool BufferedConn::readExact(void *Buf, std::size_t N, Deadline D) {
  if (!ensureBuffered(N, D))
    return false;
  std::memcpy(Buf, In.data() + InPos, N);
  InPos += N;
  if (InPos == In.size()) {
    In.clear();
    InPos = 0;
  }
  return true;
}

bool BufferedConn::readFrame(std::vector<std::uint8_t> &Frame, Deadline D,
                             std::size_t MaxFrame) {
  // Buffer the whole frame before consuming any of it, so a deadline that
  // fires mid-frame leaves the stream position untouched.
  if (!ensureBuffered(4, D))
    return false;
  const std::uint8_t *L = In.data() + InPos;
  std::uint32_t Len = static_cast<std::uint32_t>(L[0]) |
                      static_cast<std::uint32_t>(L[1]) << 8 |
                      static_cast<std::uint32_t>(L[2]) << 16 |
                      static_cast<std::uint32_t>(L[3]) << 24;
  if (Len > MaxFrame) {
    errno = EMSGSIZE;
    return false;
  }
  if (!ensureBuffered(4 + static_cast<std::size_t>(Len), D))
    return false;
  Frame.assign(In.begin() + static_cast<std::ptrdiff_t>(InPos) + 4,
               In.begin() + static_cast<std::ptrdiff_t>(InPos) + 4 + Len);
  InPos += 4 + Len;
  if (InPos == In.size()) {
    In.clear();
    InPos = 0;
  }
  return true;
}

bool BufferedConn::write(const void *Buf, std::size_t N) {
  const std::uint8_t *P = static_cast<const std::uint8_t *>(Buf);
  Out.insert(Out.end(), P, P + N);
  if (pendingWrite() <= HighWater)
    return true;
  // Backpressure: the producer thread parks inside the socket write until
  // the residue is back under the mark. The VP keeps running other
  // connections; only this producer stalls.
  if (VirtualProcessor *Vp = currentVp())
    Vp->stats().NetBackpressureStalls.inc();
  STING_TRACE_EVENT(NetBackpressure, 0,
                    static_cast<std::uint32_t>(
                        pendingWrite() > 0xffffffff ? 0xffffffff
                                                    : pendingWrite()));
  return drainTo(HighWater);
}

bool BufferedConn::writeFrame(const void *Buf, std::size_t N) {
  if (N > 0xffffffffu) {
    // The u32 prefix cannot carry it; emitting a truncated length followed
    // by all N bytes would corrupt the stream framing for good.
    errno = EMSGSIZE;
    return false;
  }
  std::uint8_t LenBytes[4] = {
      static_cast<std::uint8_t>(N & 0xff),
      static_cast<std::uint8_t>((N >> 8) & 0xff),
      static_cast<std::uint8_t>((N >> 16) & 0xff),
      static_cast<std::uint8_t>((N >> 24) & 0xff),
  };
  return write(LenBytes, sizeof(LenBytes)) && (N == 0 || write(Buf, N));
}

bool BufferedConn::flush() { return drainTo(0); }

bool BufferedConn::drainTo(std::size_t Target) {
  while (pendingWrite() > Target) {
    ssize_t Rc = Sock.write(Out.data() + OutPos, Out.size() - OutPos);
    if (Rc <= 0)
      return false;
    OutPos += static_cast<std::size_t>(Rc);
  }
  if (OutPos == Out.size()) {
    Out.clear();
    OutPos = 0;
  } else if (OutPos > (1 << 16) && OutPos > Out.size() / 2) {
    // Compact once the flushed prefix dominates, so Out does not grow
    // without bound across a long-lived connection.
    Out.erase(Out.begin(), Out.begin() + static_cast<std::ptrdiff_t>(OutPos));
    OutPos = 0;
  }
  return true;
}

} // namespace sting::net
