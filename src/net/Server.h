//===- net/Server.h - Thread-per-connection TCP server ----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TCP server in the substrate's own idiom: one listener *thread* (not
/// OS thread) per accept path, forking one connection thread per accept,
/// all of them members of a dedicated ThreadGroup — so the paper's
/// kill-group is literally the server's graceful shutdown: every
/// connection thread unwinds out of whatever park it is in (socket
/// readiness, tuple-space block, backpressure stall), runs its RAII
/// cleanup, and the descriptors close.
///
/// Admission control comes in two flavors (DESIGN.md section 11):
///
/// - Queueing (AdmissionBudgetNanos == 0, the default): at the connection
///   cap the listener stops accepting and parks on a condition signaled
///   when a slot frees (with a timed backstop) — *not* on the listen fd,
///   which is already readable while the backlog holds the burst and
///   would return immediately. The kernel backlog absorbs the excess, so
///   clients see queueing, not resets.
///
/// - Shedding (AdmissionBudgetNanos > 0): the listener keeps accepting at
///   the cap into a bounded pending queue; a connection still waiting for
///   a slot when its budget expires gets one explicit wire::Op::Overload
///   frame and a close instead of an unbounded stall. Explicit refusal is
///   what lets net::Client retry with backoff rather than hang.
///
/// NumListeners > 1 forks that many listener threads over an SO_REUSEPORT
/// group, so accept throughput scales past one thread for listener-bound
/// workloads.
///
//===----------------------------------------------------------------------===//

#ifndef STING_NET_SERVER_H
#define STING_NET_SERVER_H

#include "core/ThreadGroup.h"
#include "core/VirtualMachine.h"
#include "net/BufferedConn.h"
#include "net/Socket.h"
#include "sync/ParkList.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace sting::net {

struct ServerConfig {
  std::uint16_t Port = 0;          ///< 0 = ephemeral; read back via port()
  int Backlog = 128;               ///< kernel listen backlog
  std::size_t MaxConnections = 0;  ///< 0 = unlimited
  std::size_t WriteHighWater = 1 << 20; ///< per-connection backpressure mark
  std::uint64_t AcceptBackoffNanos = 2'000'000; ///< cap-full re-poll period
  /// Overload protection: how long an accepted connection may wait for an
  /// admission slot before being shed with an explicit Overload reply.
  /// 0 keeps the queueing behavior (never shed; the kernel backlog and a
  /// parked listener absorb bursts).
  std::uint64_t AdmissionBudgetNanos = 0;
  /// Shedding mode only: accepted-but-unadmitted connections held per
  /// listener before it stops accepting and waits for slots/expiries.
  std::size_t MaxPendingAdmissions = 256;
  /// Shedding mode only: drop shed connections with a plain close instead
  /// of writing the Overload frame first. The frame is best-effort under a
  /// short deadline, but a peer that never reads can still pin the
  /// listener for that deadline per shed; close-only shedding keeps the
  /// accept loop's latency independent of peer behavior, at the cost of
  /// peers seeing ECONNRESET/EOF instead of an explicit Overload verdict.
  bool ShedCloseOnly = false;
  /// Listener threads sharing the port via SO_REUSEPORT (1 = plain bind).
  unsigned NumListeners = 1;
};

/// A running server. start() forks the listener(s); shutdown() terminates
/// the server's thread group and joins every member.
class Server {
public:
  /// Per-connection entry point, run on a fresh thread inside the server's
  /// group. Return (or throw) to close the connection.
  using Handler = std::function<void(BufferedConn &)>;

  /// Binds and starts serving. \returns null on bind failure (errno
  /// preserved). Must be called with \p Vm running.
  static std::unique_ptr<Server> start(VirtualMachine &Vm, IoService &Io,
                                       Handler OnConnection,
                                       ServerConfig Config = {});

  ~Server() { shutdown(); }

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  std::uint16_t port() const { return Port; }

  /// Connections currently being served.
  std::size_t liveConnections() const {
    return Live.load(std::memory_order_acquire);
  }

  /// Connections admitted (forked a connection thread) over the server's
  /// lifetime. Shed connections are not counted here.
  std::uint64_t totalAccepted() const {
    return Accepted.load(std::memory_order_relaxed);
  }

  /// Connections refused with an Overload reply over the server's
  /// lifetime (shedding mode only).
  std::uint64_t totalShedded() const {
    return Shedded.load(std::memory_order_relaxed);
  }

  /// The group holding the listener and every connection thread.
  ThreadGroup &group() { return *Group; }

  /// Graceful stop: kill-group on the server's ThreadGroup, then join all
  /// members. Parked connection threads unwind through their cancellation
  /// paths; every socket closes via RAII. Idempotent.
  void shutdown();

private:
  Server() = default;

  /// Owns one admission slot (a `Live` increment) from accept time until
  /// the connection thunk is destroyed. The thunk is destroyed on *every*
  /// exit path — normal return, handler throw, kill-group unwind, and
  /// termination before the thread's first instruction (Thread::determine
  /// resets the thunk) — so the counter always drains to zero once the
  /// server's group is empty.
  struct Slot {
    Server *S = nullptr;
    explicit Slot(Server *Srv) : S(Srv) {}
    Slot(Slot &&O) noexcept : S(std::exchange(O.S, nullptr)) {}
    Slot &operator=(Slot &&O) noexcept {
      if (this != &O) {
        release();
        S = std::exchange(O.S, nullptr);
      }
      return *this;
    }
    ~Slot() { release(); }
    void release();
  };

  /// A connection accepted while all slots were taken: it waits in the
  /// listener's pending queue until a slot frees or its budget expires.
  struct PendingConn {
    Socket Conn;
    Deadline Expiry; ///< never() in queueing mode (multi-listener race)
  };

  bool atCap() const {
    return Config.MaxConnections != 0 &&
           Live.load(std::memory_order_acquire) >= Config.MaxConnections;
  }

  /// Claims one admission slot if the cap allows (CAS loop, so concurrent
  /// listeners cannot overshoot). \returns false at the cap.
  bool tryAcquireSlot();

  void listenerLoop(Listener &L);
  /// Forks the connection thread for an admitted connection (slot already
  /// acquired via tryAcquireSlot).
  void admit(Socket Conn);
  /// Refuses \p Conn: best-effort Overload frame, then close.
  void shed(Socket Conn, std::size_t DepthAfter);
  void serveConnection(Socket Conn);

  VirtualMachine *Vm = nullptr;
  IoService *Io = nullptr;
  Handler OnConnection;
  ServerConfig Config;
  std::vector<Listener> Listeners;
  std::uint16_t Port = 0;
  ThreadGroupRef Group;
  std::vector<ThreadRef> ListenerThreads;
  std::atomic<std::size_t> Live{0};
  std::atomic<std::uint64_t> Accepted{0};
  std::atomic<std::uint64_t> Shedded{0};
  std::atomic<bool> Stopped{false};
  /// Parks listeners while at the connection cap (and between retries
  /// after a transient accept failure); Slot::release wakes it, so a
  /// freed slot — or a freed descriptor — is picked up immediately.
  ParkList AdmissionWaiters;
  /// Releases between their first and last touch of this Server. A release
  /// decrements Live and *then* wakes AdmissionWaiters; shutdown() must
  /// not return (allowing destruction) between those two steps, so it
  /// drains this counter after Live reaches zero.
  std::atomic<std::size_t> ReleasesInFlight{0};
};

} // namespace sting::net

#endif // STING_NET_SERVER_H
