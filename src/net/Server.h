//===- net/Server.h - Thread-per-connection TCP server ----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TCP server in the substrate's own idiom: one listener *thread* (not
/// OS thread) accepting connections, forking one connection thread per
/// accept, all of them members of a dedicated ThreadGroup — so the
/// paper's kill-group is literally the server's graceful shutdown: every
/// connection thread unwinds out of whatever park it is in (socket
/// readiness, tuple-space block, backpressure stall), runs its RAII
/// cleanup, and the descriptors close.
///
/// Admission control: a connection cap. At the cap the listener stops
/// accepting and parks on a condition signaled when a slot frees (with a
/// timed backstop) — *not* on the listen fd, which is already readable
/// while the backlog holds the burst and would return immediately. The
/// kernel backlog absorbs the excess, so clients see queueing, not
/// resets, and the listener wakes the instant a connection closes.
///
//===----------------------------------------------------------------------===//

#ifndef STING_NET_SERVER_H
#define STING_NET_SERVER_H

#include "core/ThreadGroup.h"
#include "core/VirtualMachine.h"
#include "net/BufferedConn.h"
#include "net/Socket.h"
#include "sync/ParkList.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

namespace sting::net {

struct ServerConfig {
  std::uint16_t Port = 0;          ///< 0 = ephemeral; read back via port()
  int Backlog = 128;               ///< kernel listen backlog
  std::size_t MaxConnections = 0;  ///< 0 = unlimited
  std::size_t WriteHighWater = 1 << 20; ///< per-connection backpressure mark
  std::uint64_t AcceptBackoffNanos = 2'000'000; ///< cap-full re-poll period
};

/// A running server. start() forks the listener; shutdown() terminates
/// the server's thread group and joins every member.
class Server {
public:
  /// Per-connection entry point, run on a fresh thread inside the server's
  /// group. Return (or throw) to close the connection.
  using Handler = std::function<void(BufferedConn &)>;

  /// Binds and starts serving. \returns null on bind failure (errno
  /// preserved). Must be called with \p Vm running.
  static std::unique_ptr<Server> start(VirtualMachine &Vm, IoService &Io,
                                       Handler OnConnection,
                                       ServerConfig Config = {});

  ~Server() { shutdown(); }

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  std::uint16_t port() const { return Port; }

  /// Connections currently being served.
  std::size_t liveConnections() const {
    return Live.load(std::memory_order_acquire);
  }

  /// Connections accepted over the server's lifetime.
  std::uint64_t totalAccepted() const {
    return Accepted.load(std::memory_order_relaxed);
  }

  /// The group holding the listener and every connection thread.
  ThreadGroup &group() { return *Group; }

  /// Graceful stop: kill-group on the server's ThreadGroup, then join all
  /// members. Parked connection threads unwind through their cancellation
  /// paths; every socket closes via RAII. Idempotent.
  void shutdown();

private:
  Server() = default;

  /// Owns one admission slot (a `Live` increment) from accept time until
  /// the connection thunk is destroyed. The thunk is destroyed on *every*
  /// exit path — normal return, handler throw, kill-group unwind, and
  /// termination before the thread's first instruction (Thread::determine
  /// resets the thunk) — so the counter always drains to zero once the
  /// server's group is empty.
  struct Slot {
    Server *S = nullptr;
    explicit Slot(Server *Srv) : S(Srv) {}
    Slot(Slot &&O) noexcept : S(std::exchange(O.S, nullptr)) {}
    Slot &operator=(Slot &&O) noexcept {
      if (this != &O) {
        release();
        S = std::exchange(O.S, nullptr);
      }
      return *this;
    }
    ~Slot() { release(); }
    void release();
  };

  void listenerLoop();
  void serveConnection(Socket Conn);

  VirtualMachine *Vm = nullptr;
  IoService *Io = nullptr;
  Handler OnConnection;
  ServerConfig Config;
  Listener Lst;
  std::uint16_t Port = 0;
  ThreadGroupRef Group;
  ThreadRef ListenerThread;
  std::atomic<std::size_t> Live{0};
  std::atomic<std::uint64_t> Accepted{0};
  std::atomic<bool> Stopped{false};
  /// Parks the listener while at the connection cap (and between retries
  /// after a transient accept failure); Slot::release wakes it, so a
  /// freed slot — or a freed descriptor — is picked up immediately.
  ParkList AdmissionWaiters;
  /// Releases between their first and last touch of this Server. A release
  /// decrements Live and *then* wakes AdmissionWaiters; shutdown() must
  /// not return (allowing destruction) between those two steps, so it
  /// drains this counter after Live reaches zero.
  std::atomic<std::size_t> ReleasesInFlight{0};
};

} // namespace sting::net

#endif // STING_NET_SERVER_H
