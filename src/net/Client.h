//===- net/Client.h - Resilient request/reply client ------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the resilient wire layer (DESIGN.md section 11): a
/// reusable request/reply endpoint that wraps connect + writeFrame +
/// readFrame with per-attempt Deadlines, bounded exponential backoff with
/// jitter (support/Backoff.h's BackoffPolicy), transparent reconnect on
/// ECONNRESET/EPIPE/EOF/short-frame, and a per-endpoint circuit breaker
/// (closed → open → half-open with probe requests). Every bench and test
/// that used to hand-roll a connect loop rides this instead, so the
/// retry/timeout discipline lives in the substrate once — not per
/// application.
///
/// Chaos builds perturb exactly the paths that are built to absorb
/// faults: Site::NetConnectFail fails a connect attempt as if refused,
/// Site::NetPeerReset drops the cached connection before a send (never
/// after — a retried request must not duplicate server-side effects), and
/// Site::NetSlowPeer stalls briefly before the reply read.
///
//===----------------------------------------------------------------------===//

#ifndef STING_NET_CLIENT_H
#define STING_NET_CLIENT_H

#include "net/BufferedConn.h"
#include "net/Socket.h"
#include "net/Wire.h"
#include "support/Backoff.h"
#include "support/SpinLock.h"
#include "sync/ParkList.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sting::net {

/// Circuit-breaker state machine (DESIGN.md section 11). Closed admits
/// everything; Open fails fast until a cooldown elapses; HalfOpen admits
/// exactly one probe whose outcome decides between Closed and Open.
enum class BreakerState : std::uint8_t { Closed = 0, Open = 1, HalfOpen = 2 };

/// \returns a stable short name for \p S (reports, tests).
const char *breakerStateName(BreakerState S);

struct BreakerConfig {
  /// Consecutive failures that trip Closed -> Open.
  std::uint32_t FailureThreshold = 5;
  /// How long Open fails fast before admitting a half-open probe.
  std::uint64_t OpenCooldownNanos = 100'000'000;
};

/// Thread-safe per-endpoint circuit breaker, shareable between the
/// clients of a ConnectionPool so one endpoint outage is learned once.
class CircuitBreaker {
public:
  CircuitBreaker() = default;
  explicit CircuitBreaker(BreakerConfig Config) : Config(Config) {}

  /// Admission gate, called before each attempt. Closed: always true.
  /// Open: false until the cooldown elapses, then transitions to HalfOpen
  /// and admits the caller as the probe. HalfOpen: false while the probe
  /// is in flight. \p BecameProbe is set true when this caller holds the
  /// probe token — it then owes the breaker exactly one of
  /// recordSuccess/recordFailure/abortProbe, on every exit path.
  bool tryAdmit(bool &BecameProbe);
  bool tryAdmit() {
    bool BecameProbe;
    return tryAdmit(BecameProbe);
  }

  /// The admitted attempt got a reply: reset the failure count and close
  /// from any state.
  void recordSuccess();

  /// The admitted attempt failed: HalfOpen reopens immediately (the probe
  /// answered the question), Closed opens at the failure threshold.
  void recordFailure();

  /// The probe was abandoned without an outcome (cancellation unwind —
  /// shutdown says nothing about endpoint health): return the token so
  /// the breaker is not wedged in HalfOpen with every tryAdmit refused.
  /// Only the caller tryAdmit marked as the probe may call this.
  void abortProbe();

  BreakerState state() const;

  /// Transitions into Open over this breaker's lifetime.
  std::uint64_t opens() const {
    return Opens.load(std::memory_order_relaxed);
  }

private:
  void transitionLocked(BreakerState To);

  BreakerConfig Config;
  mutable SpinLock Lock;
  BreakerState St = BreakerState::Closed;
  std::uint32_t Failures = 0; ///< consecutive, reset on success
  std::uint64_t OpenedAtNanos = 0;
  bool ProbeInFlight = false;
  std::atomic<std::uint64_t> Opens{0};
};

struct ClientConfig {
  std::string Host = "127.0.0.1";
  std::uint16_t Port = 0;
  std::uint64_t ConnectTimeoutNanos = 1'000'000'000;
  /// Per-attempt budget covering send and reply.
  std::uint64_t RequestTimeoutNanos = 5'000'000'000;
  /// Total attempts per request() (first try + retries); min 1.
  unsigned MaxAttempts = 5;
  /// Delay policy between attempts.
  BackoffPolicy Retry{1'000'000, 50'000'000};
  /// Breaker thresholds (ignored when a shared breaker is supplied).
  BreakerConfig Breaker;
  std::size_t WriteHighWater = 1 << 20;
  /// Jitter seed; 0 derives one from the client's identity so concurrent
  /// clients decorrelate.
  std::uint64_t RetrySeed = 0;
};

/// How a request() ended. Only Ok delivered a reply frame (which may
/// still carry Op::Err — application errors are not transport failures
/// and are never retried).
enum class RequestStatus : std::uint8_t {
  Ok,          ///< a reply frame arrived; parse it
  Overload,    ///< server shed us every attempt (explicit Op::Overload)
  Timeout,     ///< an attempt deadline expired on the final attempt
  BreakerOpen, ///< breaker failed the final attempt fast
  Canceled,    ///< IoService shutdown unwound the operation
  Error,       ///< connect/socket error on the final attempt
};

/// \returns a stable short name for \p S.
const char *requestStatusName(RequestStatus S);

/// A resilient request/reply client for the net::Server wire protocol.
/// Single-owner like BufferedConn: one thread drives it at a time (the
/// ConnectionPool enforces that with leases). Connects lazily on first
/// use and transparently reconnects after resets, EOFs, short frames,
/// timeouts, and Overload sheds.
class Client {
public:
  /// \p SharedBreaker (optional) replaces the client's own breaker so a
  /// pool's clients share one view of the endpoint's health.
  Client(IoService &Io, ClientConfig Config,
         CircuitBreaker *SharedBreaker = nullptr);

  ~Client() { close(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Sends \p Payload as one frame and reads one reply frame into
  /// \p Reply. Retries with backoff on transport failures and Overload
  /// sheds, reconnecting as needed, for up to MaxAttempts attempts.
  RequestStatus request(const void *Payload, std::size_t N,
                        std::vector<std::uint8_t> &Reply);

  /// Convenience: sends \p W's payload.
  RequestStatus request(const wire::Writer &W,
                        std::vector<std::uint8_t> &Reply) {
    return request(W.payload().data(), W.payload().size(), Reply);
  }

  bool connected() const { return Conn.valid(); }
  CircuitBreaker &breaker() { return *Breaker; }

  /// Attempts beyond the first across this client's lifetime.
  std::uint64_t retries() const { return Retries; }

  /// Drops the cached connection (next request reconnects).
  void close() { dropConnection(); }

private:
  RequestStatus attemptOnce(const void *Payload, std::size_t N,
                            std::vector<std::uint8_t> &Reply);
  bool ensureConnected(Deadline D);
  void dropConnection();
  void sleepFor(std::uint64_t Nanos);

  IoService *Io;
  ClientConfig Config;
  BufferedConn Conn{Socket()};
  CircuitBreaker OwnBreaker;
  CircuitBreaker *Breaker; ///< &OwnBreaker or the shared one
  ParkList RetrySleep;     ///< never signaled; timed park = backoff sleep
  std::uint64_t RngState;
  std::uint64_t Retries = 0;
};

} // namespace sting::net

#endif // STING_NET_CLIENT_H
