//===- net/BufferedConn.h - Buffered connection I/O -------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Growable read/write buffering over a Socket, owned by exactly one
/// connection thread (the Server forks one per accept). Reads accumulate
/// until a frame is complete; writes append to an output buffer that is
/// flushed opportunistically and *parks the producer* once it crosses the
/// high-water mark — backpressure propagates to whoever generates the
/// bytes instead of ballooning memory. Each stall charges the VP's
/// NetBackpressureStalls counter and emits a NetBackpressure trace event.
///
/// The read side is a head-offset buffer: valid bytes live in
/// [InPos, InEnd) of a fixed-capacity store, refills append at InEnd, and
/// the consumed head is only compacted (one memmove of the live bytes)
/// once it exceeds half the capacity. A large frame dribbling in over many
/// refills therefore copies each byte O(1) amortized times instead of the
/// O(n)-per-refill the old resize/erase scheme paid.
///
//===----------------------------------------------------------------------===//

#ifndef STING_NET_BUFFEREDCONN_H
#define STING_NET_BUFFEREDCONN_H

#include "net/Socket.h"

#include <cstdint>
#include <vector>

namespace sting::net {

/// Buffered, single-owner connection I/O. Not thread-safe: one connection
/// thread drives it (the Server's model), so no locks.
class BufferedConn {
public:
  /// \p WriteHighWater bounds the pending output before write() parks the
  /// producer to drain it.
  explicit BufferedConn(Socket Sock, std::size_t WriteHighWater = 1 << 20)
      : Sock(std::move(Sock)), HighWater(WriteHighWater) {}

  Socket &socket() { return Sock; }
  bool valid() const { return Sock.valid(); }

  /// Reads exactly \p N bytes into \p Buf. \returns false on EOF/error
  /// before \p N bytes arrived (errno preserved; ETIMEDOUT on deadline).
  /// Timeout-safe: a timed-out call consumes nothing — partial bytes stay
  /// buffered, so the same read can simply be retried.
  bool readExact(void *Buf, std::size_t N,
                 Deadline D = Deadline::never());

  /// Reads one u32-length-prefixed frame into \p Frame (replacing its
  /// contents). \returns false on EOF/error/deadline or a frame larger
  /// than \p MaxFrame (errno=EMSGSIZE). Like readExact, a timed-out call
  /// consumes nothing: the length prefix and any partial body stay
  /// buffered for the retry.
  bool readFrame(std::vector<std::uint8_t> &Frame,
                 Deadline D = Deadline::never(),
                 std::size_t MaxFrame = 1 << 24);

  /// Appends \p N bytes to the output buffer, flushing to the socket as
  /// the kernel accepts them. Parks (backpressure) while the buffered
  /// residue exceeds the high-water mark. \returns false on write error
  /// (ETIMEDOUT once \p D expires mid-drain).
  bool write(const void *Buf, std::size_t N, Deadline D = Deadline::never());

  /// Appends a u32 length prefix followed by the \p N payload bytes.
  /// \returns false without buffering anything when \p N exceeds the u32
  /// prefix (errno=EMSGSIZE) — mirroring the read side's MaxFrame guard.
  bool writeFrame(const void *Buf, std::size_t N,
                  Deadline D = Deadline::never());

  /// Flushes the entire output buffer. \returns false on error.
  bool flush(Deadline D = Deadline::never());

  /// Bytes currently buffered for write (diagnostics/tests).
  std::size_t pendingWrite() const { return Out.size() - OutPos; }

  /// Bytes buffered but not yet consumed by readExact/readFrame.
  std::size_t pendingRead() const { return InEnd - InPos; }

  /// Test hook: total bytes the read side has re-copied (compaction
  /// memmoves plus live bytes carried across a growth reallocation). The
  /// head-offset scheme bounds this at O(bytes ever buffered); the unit
  /// test pins that bound so compaction regressions show up as a counter
  /// jump, not a silent p99 cliff.
  std::uint64_t readCopiedBytes() const { return InCopied; }

  void close() { Sock.close(); }

private:
  /// Accumulates socket bytes into In until at least \p N are unconsumed.
  /// Never consumes; this is what makes timed reads retryable.
  bool ensureBuffered(std::size_t N, Deadline D);

  /// Makes room for at least \p Chunk bytes after InEnd, compacting the
  /// consumed head or growing the store as needed.
  void reserveTail(std::size_t Chunk);

  /// Flushes until pendingWrite() <= \p Target. \returns false on error.
  bool drainTo(std::size_t Target, Deadline D);

  Socket Sock;
  std::size_t HighWater;

  std::vector<std::uint8_t> In; ///< read store; size() == capacity in use
  std::size_t InPos = 0;        ///< first unconsumed byte
  std::size_t InEnd = 0;        ///< one past the last valid byte
  std::uint64_t InCopied = 0;   ///< test hook: bytes moved by compaction/growth

  std::vector<std::uint8_t> Out; ///< write-side pending bytes
  std::size_t OutPos = 0;        ///< flushed prefix of Out
};

} // namespace sting::net

#endif // STING_NET_BUFFEREDCONN_H
