//===- net/Wire.h - Length-prefixed binary protocol -------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol spoken by net::Server services: u32-LE
/// length-prefixed frames whose payload is one opcode byte followed by a
/// sequence of tagged fields. The field vocabulary mirrors the substrate's
/// tagged gc::Value plus the tuple-template formal, so a remote client can
/// express exactly the out/rd/in requests a local thread can:
///
///   frame   := u32 payload-length, payload
///   payload := u8 opcode, field*
///   field   := u8 tag, body
///     Fixnum(0): i64 LE          True(1)/False(2)/Nil(3): empty
///     Text(4):   u32 len, bytes  -- interned as a Symbol on arrival
///     Formal(5): u32 index       -- template binding slot (?x)
///     Blob(6):   u32 len, bytes  -- carried as pending bytes; the tuple
///                                   space's prepare() allocates it as a
///                                   String in the shared old generation
///     Flow(7):   u64 LE          -- causal flow id (obs/Flow.h); request
///                                   metadata, sent first when present.
///                                   Handlers adopt it so server-side
///                                   trace events join the client's flow,
///                                   and echo it ahead of reply fields.
///
/// Opcodes: requests Echo/TsOut/TsRd/TsIn/Metrics/StatsSnap; replies
/// EchoReply/TsAck/TsMatch/Err/MetricsText/StatsReply. TsMatch carries the
/// matched tuple's resolved fields in positional order (bindings are
/// recovered client-side from the request's formal positions).
///
//===----------------------------------------------------------------------===//

#ifndef STING_NET_WIRE_H
#define STING_NET_WIRE_H

#include "gc/Value.h"
#include "tuple/Tuple.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sting::net::wire {

enum class Op : std::uint8_t {
  // Requests.
  Echo = 0,      ///< fields echoed back verbatim
  TsOut = 1,     ///< deposit the fields as a tuple
  TsRd = 2,      ///< blocking read of a template (formals allowed)
  TsIn = 3,      ///< blocking take of a template (formals allowed)
  Metrics = 4,   ///< no fields: request a Prometheus text scrape
  StatsSnap = 5, ///< no fields: request a binary stats snapshot
  // Replies.
  EchoReply = 16,
  TsAck = 17,       ///< out accepted
  TsMatch = 18,     ///< rd/in matched; fields are the resolved tuple
  Err = 19,         ///< one Text field: human-readable reason
  MetricsText = 20, ///< one Blob field: Prometheus text exposition
  StatsReply = 21,  ///< (Text name, Fixnum value) pairs, aggregate totals
  Overload = 22,    ///< no fields: the server shed this connection before
                    ///< serving it (admission budget exceeded). Sent by the
                    ///< listener, not a handler; the connection closes right
                    ///< after. net::Client treats it as retryable.

  // Router protocol (src/dist). A registration connection opens with a
  // Hello/HelloOk version handshake, then the router arms registrations
  // (proxied blocking rd/in waiters) on shards and the shard pushes
  // Deliver frames when a deposit matches. The Armed→Delivered discipline
  // of sync::HandoffList is mirrored on the wire: a registration is
  // delivered at most once, and Retract reports whether it won the race
  // (wasArmed) so fan-out losers conserve tuples exactly-once.
  Hello = 23,       ///< one Fixnum field: protocol version (dist::WireVersion)
  Register = 24,    ///< Fixnum id, Fixnum flags (bit0 = take), template fields
  Retract = 25,     ///< one Fixnum field: registration id to cancel
  RouterStats = 26, ///< no fields: router-side stats snapshot (StatsReply)
  HelloOk = 27,     ///< one Fixnum field: the version the shard speaks
  Deliver = 28,     ///< Fixnum id, then the resolved tuple fields; pushed by
                    ///< the shard when a registration matches. For a take
                    ///< registration the tuple has been consumed shard-side;
                    ///< the router must hand it to exactly one caller or
                    ///< re-deposit it.
  Retracted = 29,   ///< Fixnum id, bool wasArmed. wasArmed=false means a
                    ///< delivery owns the registration: its Deliver frame is
                    ///< on this connection but may arrive *after* this reply
                    ///< (the depositor's callback and the Retract reply are
                    ///< queued by different shard threads), so the router
                    ///< keeps the registration record until the Deliver lands.

  // Replication protocol (src/dist, DESIGN.md §14). Each hash slot maps to
  // a two-member replica group; every Rep* request names the slot and the
  // sender's slot epoch, and the receiver fences on that epoch: an op
  // carrying a smaller epoch than the receiver's gets Err("stale epoch"),
  // an op carrying a larger one advances the receiver (with the role
  // change's side effects) before applying. Success replies are RepAck;
  // refusals are ordinary Err frames (so old peers fail cleanly) with the
  // receiver's current epoch as a trailing Fixnum, letting a peer
  // arbitrarily far behind adopt the fresh view in one hop.
  RepPut = 30,     ///< Fixnum slot, Fixnum epoch, Fixnum flags (bit0 =
                   ///< forwarded: primary→backup copy; clear = router→primary
                   ///< deposit), then the tuple fields. The primary forwards
                   ///< to its backup and waits for the RepAck *before*
                   ///< depositing locally, so a matched tuple always has a
                   ///< backup copy older than any delivery of it.
  RepAck = 31,     ///< Fixnum epoch (receiver's slot epoch), Fixnum info —
                   ///< for a primary put, bit0 = the backup holds a copy
                   ///< (clear = degraded single-copy ack, backup down); for
                   ///< promote/demote, the tuples materialized/discarded.
  RepRetract = 32, ///< Fixnum slot, Fixnum epoch, then the tuple fields:
                   ///< primary→backup "a copy of these bytes was consumed".
                   ///< Retracting bytes with no stored copy records a
                   ///< tombstone that eats the next RepPut of equal bytes, so
                   ///< put/retract commute across unordered connections.
  RepPromote = 33, ///< Fixnum slot, Fixnum epoch: "become primary at epoch
                   ///< ≥ this; reply your epoch". Idempotent; refused with
                   ///< Err("not caught up") while the member still owes an
                   ///< anti-entropy pull, and Err("wrong member") when the
                   ///< epoch's parity does not elect the receiver.
  RepDemote = 34,  ///< Fixnum slot, Fixnum epoch: fence a stale primary —
                   ///< it discards its replicated residents for the slot and
                   ///< starts a catch-up pull as the new backup.
  RepPull = 35,    ///< Fixnum slot, Fixnum epoch, Fixnum offset: catch-up
                   ///< request; the primary answers RepState with a chunk
                   ///< of its resident ledger starting \c offset copies in.
  RepState = 36,   ///< Fixnum slot, Fixnum epoch, Fixnum complete (0/1),
                   ///< Fixnum version, then one Blob per resident tuple
                   ///< (its encoded field bytes). complete=0 means more
                   ///< copies remain past this chunk; \c version is the
                   ///< ledger version the chunk was cut at — chunks only
                   ///< tile one coherent snapshot while it holds still,
                   ///< and the puller installs the whole snapshot as a
                   ///< *replacement* for its side store (never additively)
                   ///< once a complete, version-stable, unraced sequence
                   ///< has been assembled.
};

enum class Tag : std::uint8_t {
  Fixnum = 0,
  True = 1,
  False = 2,
  Nil = 3,
  Text = 4,
  Formal = 5,
  Blob = 6,
  Flow = 7,
};

/// Serializes one frame payload (opcode + fields). The payload is handed
/// to BufferedConn::writeFrame, which adds the length prefix.
class Writer {
public:
  explicit Writer(Op O) { Buf.push_back(static_cast<std::uint8_t>(O)); }

  void fixnum(std::int64_t N);
  void boolean(bool B) {
    Buf.push_back(static_cast<std::uint8_t>(B ? Tag::True : Tag::False));
  }
  void nil() { Buf.push_back(static_cast<std::uint8_t>(Tag::Nil)); }
  void text(std::string_view S) { bytesField(Tag::Text, S); }
  void blob(std::string_view S) { bytesField(Tag::Blob, S); }
  void formal(std::uint32_t Index);
  /// Causal flow id; by convention the first field when present.
  void flow(std::uint64_t F);

  /// Marshals a resolved gc::Value: fixnum/bool/nil map to their tags,
  /// Symbols to Text, Strings and Bytes to Blob. Anything else (foreign
  /// pointers, pairs, live threads' unboxed slots) degrades to Nil — the
  /// wire carries data, not references into the server heap.
  void value(gc::Value V);

  const std::vector<std::uint8_t> &payload() const { return Buf; }

private:
  void bytesField(Tag T, std::string_view S);
  void u32(std::uint32_t N);

  std::vector<std::uint8_t> Buf;
};

/// One decoded field. Bytes-backed kinds (Text/Blob) view into the frame
/// buffer the Reader was constructed over.
struct ReadField {
  Tag T = Tag::Nil;
  std::int64_t Num = 0;          ///< Fixnum payload
  std::string_view Bytes;        ///< Text/Blob payload
  std::uint32_t FormalIndex = 0; ///< Formal payload
  std::uint64_t Flow = 0;        ///< Flow payload
};

/// Decodes one frame payload. Malformed input flips ok() to false and
/// stops iteration; it never reads out of bounds.
class Reader {
public:
  Reader(const std::uint8_t *Data, std::size_t N);

  bool ok() const { return Ok; }
  Op op() const { return TheOp; }

  /// Decodes the next field into \p F. \returns false at end of payload
  /// or on malformed input (distinguish via ok()).
  bool next(ReadField &F);

  /// If the next field is a Flow tag, consumes it and \returns its value;
  /// otherwise leaves the position untouched and \returns 0. Handlers call
  /// this once after construction to peel request metadata before the
  /// payload fields.
  std::uint64_t takeFlow();

  bool atEnd() const { return Pos == Len; }

private:
  bool take(std::size_t N, const std::uint8_t *&P);

  const std::uint8_t *Data;
  std::size_t Len;
  std::size_t Pos = 0;
  Op TheOp = Op::Err;
  bool Ok = false;
};

/// Rebuilds a Tuple (or template) from the remaining fields of \p R. Text
/// fields become pending-intern symbol fields, Blob fields become
/// pending-bytes fields (TupleSpace::prepare allocates them as shared-heap
/// Strings on deposit — decode itself never allocates GC objects, so no
/// young value sits unrooted while later fields are read), Formal fields
/// become template formals. \returns false on malformed input.
bool readTuple(Reader &R, Tuple &Out);

/// Marshals \p M's resolved fields into \p W (positional order).
void writeMatch(Writer &W, const Match &M);

} // namespace sting::net::wire

#endif // STING_NET_WIRE_H
