//===- net/Services.h - Wire-protocol services ------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Connection handlers speaking the net::wire protocol. Two services:
///
///  - echoHandler: EchoReply's each Echo frame's fields back verbatim —
///    the protocol smoke test and throughput baseline.
///
///  - tupleSpaceHandler: exposes a first-class tuple space over the wire.
///    TsOut deposits; TsRd/TsIn match templates (Formal fields allowed)
///    and *block the connection thread in the space* exactly like a local
///    reader — the thread parks in the space's blocked-reader table while
///    the VP serves other connections, and a matching deposit (from any
///    client or local thread) wakes it. Blob fields arrive as young
///    strings on the connection thread's heap and ride
///    LocalHeap::escape() into the shared old generation on deposit.
///
///  - metricsHandler: live introspection of a running machine. Speaks the
///    wire protocol (Metrics -> MetricsText with the Prometheus scrape as
///    one Blob; StatsSnap -> StatsReply with (name, value) pairs) and also
///    sniffs plain HTTP GETs so `curl http://host:port/metrics` works
///    against the same port.
///
/// Every handler peels an optional leading Flow field (net/Wire.h) and
/// adopts it into the connection thread, so one client request's
/// cross-thread journey through the server shares a single causal flow id
/// in exported traces.
///
//===----------------------------------------------------------------------===//

#ifndef STING_NET_SERVICES_H
#define STING_NET_SERVICES_H

#include "net/Server.h"
#include "tuple/TupleSpace.h"

namespace sting::net {

/// \returns a handler that echoes every Echo frame's fields back.
Server::Handler echoHandler();

/// \returns a handler serving out/rd/in on \p Space. The reference keeps
/// the space alive for the server's lifetime.
Server::Handler tupleSpaceHandler(TupleSpaceRef Space);

/// \returns a handler serving live metrics for \p Vm (which must outlive
/// the server): Metrics/StatsSnap wire requests plus plain-HTTP GET
/// scrapes on the same port.
Server::Handler metricsHandler(VirtualMachine &Vm);

} // namespace sting::net

#endif // STING_NET_SERVICES_H
