//===- net/Socket.cpp - Thread-parking TCP sockets ---------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "net/Socket.h"

#include "core/Current.h"
#include "core/VirtualProcessor.h"
#include "obs/TraceBuffer.h"
#include "support/Chaos.h"
#include "support/Clock.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace sting::net {

namespace {

/// Charges a per-VP scheduler counter when running on a VP (client code on
/// plain OS threads — e.g. a test harness — simply goes uncounted).
template <typename Pick> void chargeVp(Pick P) {
  if (VirtualProcessor *Vp = currentVp())
    P(Vp->stats()).inc();
}

} // namespace

Socket::Socket(IoService &Io, int Fd) : Io(&Io), Fd(Fd) {
  if (Fd >= 0)
    IoService::makeNonBlocking(Fd);
}

void Socket::close() {
  if (Fd < 0)
    return;
  ::close(Fd);
  Fd = -1;
}

ssize_t Socket::readUntil(void *Buf, std::size_t N, Deadline D) {
  if (Fd < 0) {
    errno = EBADF;
    return -1;
  }
  // Chaos: truncate the request to one byte so callers that assume a read
  // fills their buffer in one call get caught by the soak.
  std::size_t Want = N;
  if (N > 1 && STING_CHAOS_FIRE(NetShortIo)) {
    STING_TRACE_EVENT(ChaosInject, 0,
                      static_cast<std::uint32_t>(chaos::Site::NetShortIo));
    Want = 1;
  }
  for (;;) {
    ssize_t Rc = ::read(Fd, Buf, Want);
    if (Rc >= 0) {
      if (Rc > 0)
        chargeVp([](obs::SchedStats &S) -> auto & { return S.NetReads; });
      return Rc;
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK)
      return -1;
    WaitResult W = Io->awaitUntil(Fd, IoEvent::Readable, D);
    if (W == WaitResult::Timeout) {
      errno = Io->stopping() ? ECANCELED : ETIMEDOUT;
      return -1;
    }
  }
}

ssize_t Socket::writeUntil(const void *Buf, std::size_t N, Deadline D) {
  if (Fd < 0) {
    errno = EBADF;
    return -1;
  }
  std::size_t Want = N;
  if (N > 1 && STING_CHAOS_FIRE(NetShortIo)) {
    STING_TRACE_EVENT(ChaosInject, 0,
                      static_cast<std::uint32_t>(chaos::Site::NetShortIo));
    Want = 1;
  }
  for (;;) {
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE, not a
    // process-wide SIGPIPE.
    ssize_t Rc = ::send(Fd, Buf, Want, MSG_NOSIGNAL);
    if (Rc >= 0) {
      if (Rc > 0)
        chargeVp([](obs::SchedStats &S) -> auto & { return S.NetWrites; });
      return Rc;
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK)
      return -1;
    WaitResult W = Io->awaitUntil(Fd, IoEvent::Writable, D);
    if (W == WaitResult::Timeout) {
      errno = Io->stopping() ? ECANCELED : ETIMEDOUT;
      return -1;
    }
  }
}

bool Socket::writeAllUntil(const void *Buf, std::size_t N, Deadline D) {
  const char *P = static_cast<const char *>(Buf);
  std::size_t Left = N;
  while (Left != 0) {
    ssize_t Rc = writeUntil(P, Left, D);
    if (Rc <= 0)
      return false;
    P += Rc;
    Left -= static_cast<std::size_t>(Rc);
  }
  return true;
}

Socket Socket::connectUntil(IoService &Io, const char *Host,
                            std::uint16_t Port, Deadline D) {
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return Socket();

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (inet_pton(AF_INET, Host, &Addr.sin_addr) != 1) {
    ::close(Fd);
    errno = EINVAL;
    return Socket();
  }

  int Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  if (Rc != 0 && errno != EINPROGRESS) {
    int Saved = errno;
    ::close(Fd);
    errno = Saved;
    return Socket();
  }
  if (Rc != 0) {
    // Non-blocking connect completes when the descriptor turns writable;
    // success/failure is then read back through SO_ERROR.
    WaitResult W = Io.awaitUntil(Fd, IoEvent::Writable, D);
    if (W == WaitResult::Timeout) {
      ::close(Fd);
      errno = Io.stopping() ? ECANCELED : ETIMEDOUT;
      return Socket();
    }
    int Err = 0;
    socklen_t Len = sizeof(Err);
    if (getsockopt(Fd, SOL_SOCKET, SO_ERROR, &Err, &Len) != 0 || Err != 0) {
      ::close(Fd);
      errno = Err ? Err : ECONNREFUSED;
      return Socket();
    }
  }
  return Socket(Io, Fd);
}

Listener Listener::listenOn(IoService &Io, std::uint16_t Port, int Backlog,
                            bool ReusePort) {
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return Listener();

  int One = 1;
  setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (ReusePort)
    setsockopt(Fd, SOL_SOCKET, SO_REUSEPORT, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, Backlog) != 0) {
    int Saved = errno;
    ::close(Fd);
    errno = Saved;
    return Listener();
  }

  socklen_t Len = sizeof(Addr);
  if (getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    int Saved = errno;
    ::close(Fd);
    errno = Saved;
    return Listener();
  }

  Listener L;
  L.Io = &Io;
  L.Fd = Fd;
  L.BoundPort = ntohs(Addr.sin_port);
  return L;
}

void Listener::close() {
  if (Fd < 0)
    return;
  ::close(Fd);
  Fd = -1;
}

Socket Listener::acceptUntil(Deadline D) {
  if (Fd < 0) {
    errno = EBADF;
    return Socket();
  }
  for (;;) {
    int Conn = ::accept4(Fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Conn >= 0) {
      if (STING_CHAOS_FIRE(NetAcceptDeny)) {
        // Pretend the backlog was empty: the connection stays accepted
        // (closing it would change observable behavior), but this lap
        // stalls briefly as if the thread had re-parked, shaking out
        // accept-loop assumptions about prompt hand-off.
        STING_TRACE_EVENT(
            ChaosInject, 0,
            static_cast<std::uint32_t>(chaos::Site::NetAcceptDeny));
        spinForNanos(50'000);
      }
      chargeVp([](obs::SchedStats &S) -> auto & { return S.NetAccepts; });
      return Socket(*Io, Conn);
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK)
      return Socket();
    WaitResult W = Io->awaitUntil(Fd, IoEvent::Readable, D);
    if (W == WaitResult::Timeout) {
      errno = Io->stopping() ? ECANCELED : ETIMEDOUT;
      return Socket();
    }
  }
}

} // namespace sting::net
