//===- net/Services.cpp - Wire-protocol services ------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "net/Services.h"

#include "core/Current.h"
#include "net/Wire.h"
#include "obs/Exposition.h"
#include "obs/Flow.h"
#include "obs/SchedStats.h"

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

namespace sting::net {

namespace {

bool sendPayload(BufferedConn &C, const wire::Writer &W) {
  return C.writeFrame(W.payload().data(), W.payload().size()) && C.flush();
}

bool sendError(BufferedConn &C, const char *Reason) {
  wire::Writer W(wire::Op::Err);
  W.text(Reason);
  return sendPayload(C, W);
}

/// Adopts a client-supplied flow id into the connection thread, so this
/// request's server-side work — trace events, forks, tuple deposits —
/// joins the client's causal flow. Updating Thread::flowId as well as the
/// TLS keeps the adoption across re-dispatches (yield, park/unpark).
void adoptFlow(std::uint64_t F) {
  if (!F)
    return;
  obs::setCurrentFlowId(F);
  if (Thread *T = currentThread())
    T->setFlowId(F);
}

/// Prefixes \p W with the connection's current flow so the client can
/// stitch the reply into its trace. For matched reads the current flow is
/// the *depositor's* (the facade adopts it on take/read) — the reply then
/// carries the causal history of the data, which is the edge the flow
/// arrows want.
void stampReplyFlow(wire::Writer &W) {
  if (obs::FlowId F = obs::currentFlowId())
    W.flow(F);
}

} // namespace

Server::Handler echoHandler() {
  return [](BufferedConn &C) {
    std::vector<std::uint8_t> Frame;
    while (C.readFrame(Frame)) {
      wire::Reader R(Frame.data(), Frame.size());
      if (!R.ok() || R.op() != wire::Op::Echo) {
        if (!sendError(C, "expected Echo"))
          return;
        continue;
      }
      // Adopt the request flow (the raw echo below returns the Flow field
      // to the client automatically).
      adoptFlow(R.takeFlow());
      // Echo the raw field bytes back under the reply opcode; no decode
      // round-trip needed.
      std::vector<std::uint8_t> Reply;
      Reply.push_back(static_cast<std::uint8_t>(wire::Op::EchoReply));
      Reply.insert(Reply.end(), Frame.begin() + 1, Frame.end());
      if (!C.writeFrame(Reply.data(), Reply.size()) || !C.flush())
        return;
    }
  };
}

namespace {

/// Serves one plain-HTTP scrape for curl/Prometheus after the "GET " sniff
/// matched. Drains the request head (bounded), then writes a complete
/// HTTP/1.0 response and closes.
void serveHttpScrape(VirtualMachine &Vm, BufferedConn &C) {
  // Consume the request line and headers up to the blank line. Bounded in
  // both bytes and time so a stalled client cannot pin the thread.
  Deadline D = Deadline::in(2'000'000'000); // 2 s
  unsigned Seen = 0;
  for (std::size_t N = 0; Seen != 4 && N < 8192; ++N) {
    char B = 0;
    if (!C.readExact(&B, 1, D))
      break; // EOF/timeout: answer anyway, the GET line already arrived
    if (B == (Seen % 2 == 0 ? '\r' : '\n'))
      ++Seen;
    else
      Seen = B == '\r' ? 1 : 0;
  }
  std::string Body = Vm.metricsText();
  std::string Head = "HTTP/1.0 200 OK\r\n"
                     "Content-Type: text/plain; version=0.0.4\r\n"
                     "Content-Length: " +
                     std::to_string(Body.size()) +
                     "\r\n"
                     "Connection: close\r\n\r\n";
  if (C.write(Head.data(), Head.size()) && C.write(Body.data(), Body.size()))
    C.flush();
}

} // namespace

Server::Handler metricsHandler(VirtualMachine &Vm) {
  return [&Vm](BufferedConn &C) {
    std::vector<std::uint8_t> Frame;
    for (;;) {
      if (!C.readFrame(Frame)) {
        if (errno != EMSGSIZE)
          return;
        // The length prefix was implausibly large — likely ASCII, and
        // readFrame consumed nothing. Sniff for an HTTP GET ("GET " reads
        // as length 0x20544547, far above MaxFrame) and serve a one-shot
        // plain-text scrape so `curl http://host:port/metrics` works.
        char Head[4] = {};
        if (!C.readExact(Head, sizeof(Head)) ||
            std::memcmp(Head, "GET ", 4) != 0)
          return;
        serveHttpScrape(Vm, C);
        return;
      }
      wire::Reader R(Frame.data(), Frame.size());
      if (!R.ok()) {
        if (!sendError(C, "malformed frame"))
          return;
        continue;
      }
      adoptFlow(R.takeFlow());
      switch (R.op()) {
      case wire::Op::Metrics: {
        wire::Writer W(wire::Op::MetricsText);
        stampReplyFlow(W);
        W.blob(Vm.metricsText());
        if (!sendPayload(C, W))
          return;
        break;
      }
      case wire::Op::StatsSnap: {
        obs::SchedStatsSnapshot S = Vm.aggregateStats();
        wire::Writer W(wire::Op::StatsReply);
        stampReplyFlow(W);
        std::size_t NumRows = 0;
        const obs::CounterRow *Rows = obs::counterRows(NumRows);
        for (std::size_t I = 0; I != NumRows; ++I) {
          W.text(Rows[I].MetricName);
          W.fixnum(static_cast<std::int64_t>(S.*(Rows[I].Field)));
        }
        if (!sendPayload(C, W))
          return;
        break;
      }
      default:
        if (!sendError(C, "unknown op"))
          return;
        break;
      }
    }
  };
}

Server::Handler tupleSpaceHandler(TupleSpaceRef Space) {
  return [Space](BufferedConn &C) {
    std::vector<std::uint8_t> Frame;
    while (C.readFrame(Frame)) {
      wire::Reader R(Frame.data(), Frame.size());
      if (!R.ok()) {
        if (!sendError(C, "malformed frame"))
          return;
        continue;
      }
      adoptFlow(R.takeFlow());
      Tuple T;
      switch (R.op()) {
      case wire::Op::TsOut: {
        if (!wire::readTuple(R, T)) {
          if (!sendError(C, "malformed tuple"))
            return;
          break;
        }
        Space->put(std::move(T));
        wire::Writer W(wire::Op::TsAck);
        stampReplyFlow(W);
        if (!sendPayload(C, W))
          return;
        break;
      }
      case wire::Op::TsRd:
      case wire::Op::TsIn: {
        bool Destructive = R.op() == wire::Op::TsIn;
        if (!wire::readTuple(R, T)) {
          if (!sendError(C, "malformed template"))
            return;
          break;
        }
        // Blocks the *connection thread* in the space — it parks in the
        // blocked-reader table like any local reader while the VP keeps
        // serving other connections; kill-group cancellation unwinds it
        // out of the park.
        Match M = Destructive ? Space->take(std::move(T))
                              : Space->read(std::move(T));
        wire::Writer W(wire::Op::TsMatch);
        stampReplyFlow(W);
        wire::writeMatch(W, M);
        if (!sendPayload(C, W))
          return;
        break;
      }
      default:
        if (!sendError(C, "unknown op"))
          return;
        break;
      }
    }
  };
}

} // namespace sting::net
