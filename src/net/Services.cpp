//===- net/Services.cpp - Wire-protocol services ------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "net/Services.h"

#include "net/Wire.h"

#include <vector>

namespace sting::net {

namespace {

bool sendPayload(BufferedConn &C, const wire::Writer &W) {
  return C.writeFrame(W.payload().data(), W.payload().size()) && C.flush();
}

bool sendError(BufferedConn &C, const char *Reason) {
  wire::Writer W(wire::Op::Err);
  W.text(Reason);
  return sendPayload(C, W);
}

} // namespace

Server::Handler echoHandler() {
  return [](BufferedConn &C) {
    std::vector<std::uint8_t> Frame;
    while (C.readFrame(Frame)) {
      wire::Reader R(Frame.data(), Frame.size());
      if (!R.ok() || R.op() != wire::Op::Echo) {
        if (!sendError(C, "expected Echo"))
          return;
        continue;
      }
      // Echo the raw field bytes back under the reply opcode; no decode
      // round-trip needed.
      std::vector<std::uint8_t> Reply;
      Reply.push_back(static_cast<std::uint8_t>(wire::Op::EchoReply));
      Reply.insert(Reply.end(), Frame.begin() + 1, Frame.end());
      if (!C.writeFrame(Reply.data(), Reply.size()) || !C.flush())
        return;
    }
  };
}

Server::Handler tupleSpaceHandler(TupleSpaceRef Space) {
  return [Space](BufferedConn &C) {
    std::vector<std::uint8_t> Frame;
    while (C.readFrame(Frame)) {
      wire::Reader R(Frame.data(), Frame.size());
      if (!R.ok()) {
        if (!sendError(C, "malformed frame"))
          return;
        continue;
      }
      Tuple T;
      switch (R.op()) {
      case wire::Op::TsOut: {
        if (!wire::readTuple(R, T)) {
          if (!sendError(C, "malformed tuple"))
            return;
          break;
        }
        Space->put(std::move(T));
        wire::Writer W(wire::Op::TsAck);
        if (!sendPayload(C, W))
          return;
        break;
      }
      case wire::Op::TsRd:
      case wire::Op::TsIn: {
        bool Destructive = R.op() == wire::Op::TsIn;
        if (!wire::readTuple(R, T)) {
          if (!sendError(C, "malformed template"))
            return;
          break;
        }
        // Blocks the *connection thread* in the space — it parks in the
        // blocked-reader table like any local reader while the VP keeps
        // serving other connections; kill-group cancellation unwinds it
        // out of the park.
        Match M = Destructive ? Space->take(std::move(T))
                              : Space->read(std::move(T));
        wire::Writer W(wire::Op::TsMatch);
        wire::writeMatch(W, M);
        if (!sendPayload(C, W))
          return;
        break;
      }
      default:
        if (!sendError(C, "unknown op"))
          return;
        break;
      }
    }
  };
}

} // namespace sting::net
