//===- net/Server.cpp - Thread-per-connection TCP server ---------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include "core/Current.h"
#include "core/ThreadController.h"
#include "core/VirtualProcessor.h"
#include "net/Wire.h"
#include "obs/Flow.h"
#include "obs/TraceBuffer.h"
#include "support/Chaos.h"

#include <cerrno>
#include <deque>
#include <thread>
#include <utility>

namespace sting::net {

namespace {

Deadline minDeadline(Deadline A, Deadline B) {
  return A.AtNanos < B.AtNanos ? A : B;
}

} // namespace

std::unique_ptr<Server> Server::start(VirtualMachine &Vm, IoService &Io,
                                      Handler OnConnection,
                                      ServerConfig Config) {
  if (Config.NumListeners == 0)
    Config.NumListeners = 1;
  // Every member of an SO_REUSEPORT group must set the flag before bind,
  // including the first socket.
  bool Reuse = Config.NumListeners > 1;
  Listener First = Listener::listenOn(Io, Config.Port, Config.Backlog, Reuse);
  if (!First.valid())
    return nullptr;

  // The unique_ptr constructor is private to Server; build by hand.
  std::unique_ptr<Server> S(new Server());
  S->Vm = &Vm;
  S->Io = &Io;
  S->OnConnection = std::move(OnConnection);
  S->Config = Config;
  S->Port = First.port();
  S->Listeners.push_back(std::move(First));
  for (unsigned I = 1; I != Config.NumListeners; ++I) {
    Listener L = Listener::listenOn(Io, S->Port, Config.Backlog, true);
    if (!L.valid())
      return nullptr; // earlier listeners close via RAII
    S->Listeners.push_back(std::move(L));
  }
  S->Group = ThreadGroup::create(&Vm.rootGroup());

  SpawnOptions Opts;
  Opts.Group = S->Group.get();
  Server *Raw = S.get();
  for (Listener &L : S->Listeners) {
    Listener *Lp = &L; // stable: Listeners never grows after this loop
    S->ListenerThreads.push_back(Vm.fork(
        [Raw, Lp]() -> AnyValue {
          Raw->listenerLoop(*Lp);
          return AnyValue();
        },
        Opts));
  }
  return S;
}

bool Server::tryAcquireSlot() {
  if (Config.MaxConnections == 0) {
    Live.fetch_add(1, std::memory_order_acq_rel);
    return true;
  }
  std::size_t L = Live.load(std::memory_order_relaxed);
  while (L < Config.MaxConnections)
    if (Live.compare_exchange_weak(L, L + 1, std::memory_order_acq_rel,
                                   std::memory_order_relaxed))
      return true;
  return false;
}

void Server::listenerLoop(Listener &L) {
  // Connections accepted while all slots were taken (shedding mode, plus
  // the multi-listener race in queueing mode). Local to this listener
  // thread; kill-group unwind destroys the deque and RAII closes every
  // queued descriptor.
  std::deque<PendingConn> Pending;

  while (!Stopped.load(std::memory_order_acquire)) {
    // Promote queued connections into freed slots, oldest first — they
    // have been waiting longest and are closest to their budget.
    while (!Pending.empty() && tryAcquireSlot()) {
      Socket C = std::move(Pending.front().Conn);
      Pending.pop_front();
      admit(std::move(C));
    }

    // Shed whoever overstayed the admission budget. Chaos builds also
    // shed the oldest pending connection at random (Site::NetSynFlood),
    // simulating a flood that exhausts budgets faster than real time —
    // only in shedding mode, where clients expect Overload replies.
    bool ChaosShed = Config.AdmissionBudgetNanos != 0 && !Pending.empty() &&
                     STING_CHAOS_FIRE(NetSynFlood);
    if (ChaosShed)
      STING_TRACE_EVENT(ChaosInject, 0,
                        static_cast<std::uint32_t>(chaos::Site::NetSynFlood));
    while (!Pending.empty() &&
           (ChaosShed || Pending.front().Expiry.expired())) {
      ChaosShed = false;
      Socket C = std::move(Pending.front().Conn);
      Pending.pop_front();
      shed(std::move(C), Pending.size());
    }

    bool AtCap = atCap();

    // Queueing mode at the cap: stop accepting and park until a slot
    // frees (Slot::release wakes us) with the configured backoff as a
    // timed backstop. Parking on the listen fd would busy-loop here: with
    // the backlog non-empty the fd is already readable, so a readiness
    // wait returns immediately. The kernel backlog queues the burst.
    // Pending may hold residue from the multi-listener race below; it is
    // promoted by the loop top on wake, and must not keep us accepting —
    // queueing mode's contract is stop-accepting-at-cap, and every
    // accept here would park a connection in userspace with no deadline.
    if (AtCap && Config.AdmissionBudgetNanos == 0) {
      AdmissionWaiters.awaitUntil(
          [this] {
            return Stopped.load(std::memory_order_acquire) || !atCap();
          },
          this, Deadline::in(Config.AcceptBackoffNanos));
      continue;
    }

    // Shedding mode with a full pending queue (queueing mode parked
    // above): accepting more would only grow the shed list, so wait for
    // a slot or the oldest expiry.
    if (AtCap && !Pending.empty() &&
        Pending.size() >= Config.MaxPendingAdmissions) {
      AdmissionWaiters.awaitUntil(
          [this] {
            return Stopped.load(std::memory_order_acquire) || !atCap();
          },
          this,
          minDeadline(Pending.front().Expiry,
                      Deadline::in(Config.AcceptBackoffNanos)));
      continue;
    }

    // Accept with a deadline when there is queued work to revisit: the
    // oldest expiry bounds the shed latency, the backoff period bounds
    // how long a freed slot waits for promotion (Slot::release wakes
    // AdmissionWaiters, but this thread is parked on the fd here).
    Deadline AcceptBy = Deadline::never();
    if (!Pending.empty())
      AcceptBy = minDeadline(Pending.front().Expiry,
                             Deadline::in(Config.AcceptBackoffNanos));

    Socket Conn = L.acceptUntil(AcceptBy);
    if (!Conn.valid()) {
      if (errno == ECANCELED || Stopped.load(std::memory_order_acquire))
        return;
      if (errno == ETIMEDOUT)
        continue; // lap back to promote/shed
      // Transient accept failure (e.g. an EMFILE/ENFILE burst): accept
      // fails synchronously, so retrying immediately would hot-spin. Back
      // off on a timed park; a connection close (which frees a
      // descriptor — exactly what EMFILE is waiting for) wakes it early
      // via Slot::release.
      AdmissionWaiters.awaitUntil(
          [this] { return Stopped.load(std::memory_order_acquire); }, this,
          Deadline::in(Config.AcceptBackoffNanos));
      continue;
    }

    if (tryAcquireSlot()) {
      admit(std::move(Conn));
      continue;
    }
    // All slots taken. In shedding mode the connection waits out its
    // budget in the pending queue; in queueing mode this point is only
    // reachable through a multi-listener race (the at-cap check above ran
    // before a sibling filled the last slot), and un-accepting is not
    // possible — hold the connection without a deadline until a slot
    // frees, which preserves the never-shed contract.
    Pending.push_back({std::move(Conn),
                       Config.AdmissionBudgetNanos != 0
                           ? Deadline::in(Config.AdmissionBudgetNanos)
                           : Deadline::never()});
  }
}

void Server::admit(Socket Conn) {
  Accepted.fetch_add(1, std::memory_order_relaxed);
  STING_TRACE_EVENT(
      NetAccept, 0,
      static_cast<std::uint32_t>(Live.load(std::memory_order_acquire)));
  Slot Admission(this);

  SpawnOptions Opts;
  Opts.Group = Group.get();
  // The connection thread owns the socket and its admission slot; moving
  // both into the thunk is what makes kill-group leak-free — destroying
  // the thunk (on any exit path, even termination before the thread's
  // first instruction) closes the descriptor and releases the slot.
  Vm->fork(
      [this, C = std::move(Conn),
       A = std::move(Admission)]() mutable -> AnyValue {
        (void)A;
        serveConnection(std::move(C));
        return AnyValue();
      },
      Opts);
}

void Server::shed(Socket Conn, std::size_t DepthAfter) {
  // Explicit refusal beats a silent stall: one tiny Overload frame so the
  // peer can tell "server overloaded, retry later" from a crash, sent
  // best-effort under a short deadline so a peer that never reads cannot
  // stall the listener. The descriptor closes via RAII either way.
  // ShedCloseOnly skips even that: the peer sees a bare close, and the
  // listener never blocks on a peer's receive window.
  if (!Config.ShedCloseOnly) {
    static const std::uint8_t Frame[5] = {
        1, 0, 0, 0, static_cast<std::uint8_t>(wire::Op::Overload)};
    (void)Conn.writeAllUntil(Frame, sizeof(Frame),
                             Deadline::in(Config.AcceptBackoffNanos));
  }
  Shedded.fetch_add(1, std::memory_order_relaxed);
  if (VirtualProcessor *Vp = currentVp())
    Vp->stats().NetShedded.inc();
  STING_TRACE_EVENT(NetShed, 0, static_cast<std::uint32_t>(DepthAfter));
}

void Server::Slot::release() {
  if (!S)
    return;
  Server *Srv = std::exchange(S, nullptr);
  // Pin the server before the decrement: once Live hits zero shutdown()
  // may return and the Server be destroyed, so everything after the
  // fetch_sub below must be covered by ReleasesInFlight (shutdown drains
  // it after the Live spin).
  Srv->ReleasesInFlight.fetch_add(1, std::memory_order_acq_rel);
  std::size_t NowLive =
      Srv->Live.fetch_sub(1, std::memory_order_acq_rel) - 1;
  STING_TRACE_EVENT(NetClose, 0, static_cast<std::uint32_t>(NowLive));
  // A listener parked at the cap (or backing off after EMFILE) wants this
  // slot/descriptor; wake it rather than letting the timed backstop burn
  // the full backoff period.
  Srv->AdmissionWaiters.wakeOne();
  Srv->ReleasesInFlight.fetch_sub(1, std::memory_order_release);
}

void Server::serveConnection(Socket Conn) {
  // Fresh causal flow per connection: forked threads inherit their
  // creator's flow, so without this every connection thread would share
  // the listener's flow and all requests would render as one path.
  // Requests carrying their own Flow field re-adopt on top (Services).
  obs::FlowId F = obs::newFlowId();
  obs::setCurrentFlowId(F);
  if (Thread *T = currentThread())
    T->setFlowId(F);

  BufferedConn C(std::move(Conn), Config.WriteHighWater);
  OnConnection(C);
  C.flush();
}

void Server::shutdown() {
  if (Stopped.exchange(true, std::memory_order_acq_rel))
    return;
  if (Group) {
    // terminateAll snapshots the membership, but a connection accepted
    // just as Stopped flipped may still be mid-fork in the listener: its
    // thread joins the group (in Thread's constructor) after the snapshot.
    // Loop: each lap terminates and joins every member visible at that
    // instant; once the listener is dead no new members can appear, so an
    // empty group is final. threadWaitFor works from sting threads and
    // external OS threads alike, so shutdown can be driven from either.
    do {
      Group->terminateAll();
      for (ThreadRef &T : Group->threads())
        ThreadController::threadWaitFor(*T, Deadline::never());
    } while (Group->liveCount() != 0);
  }
  // A joiner can race a few instructions ahead of the determine path that
  // destroys a dead thread's thunk (and releases its admission slot);
  // settle the counter before promising liveConnections() == 0. Then
  // drain in-flight releases: a release that already decremented Live may
  // still be about to wake AdmissionWaiters, and destruction must wait
  // for that last touch. (A release pins itself *before* decrementing, so
  // observing Live == 0 guarantees its pin is visible here.)
  while (Live.load(std::memory_order_acquire) != 0 ||
         ReleasesInFlight.load(std::memory_order_acquire) != 0) {
    if (onStingThread())
      ThreadController::yieldProcessor();
    else
      std::this_thread::yield();
  }
  for (Listener &L : Listeners)
    L.close();
}

} // namespace sting::net
