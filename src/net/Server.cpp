//===- net/Server.cpp - Thread-per-connection TCP server ---------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include "core/Current.h"
#include "core/ThreadController.h"
#include "obs/Flow.h"
#include "obs/TraceBuffer.h"

#include <cerrno>
#include <thread>
#include <utility>

namespace sting::net {

std::unique_ptr<Server> Server::start(VirtualMachine &Vm, IoService &Io,
                                      Handler OnConnection,
                                      ServerConfig Config) {
  Listener Lst = Listener::listenOn(Io, Config.Port, Config.Backlog);
  if (!Lst.valid())
    return nullptr;

  // The unique_ptr constructor is private to Server; build by hand.
  std::unique_ptr<Server> S(new Server());
  S->Vm = &Vm;
  S->Io = &Io;
  S->OnConnection = std::move(OnConnection);
  S->Config = Config;
  S->Port = Lst.port();
  S->Lst = std::move(Lst);
  S->Group = ThreadGroup::create(&Vm.rootGroup());

  SpawnOptions Opts;
  Opts.Group = S->Group.get();
  Server *Raw = S.get();
  S->ListenerThread = Vm.fork(
      [Raw]() -> AnyValue {
        Raw->listenerLoop();
        return AnyValue();
      },
      Opts);
  return S;
}

void Server::listenerLoop() {
  while (!Stopped.load(std::memory_order_acquire)) {
    // Admission control: at the cap, stop accepting and park until a slot
    // frees (Slot::release wakes us) with the configured backoff as a
    // timed backstop. Parking on the listen fd would busy-loop here: with
    // the backlog non-empty the fd is already readable, so a readiness
    // wait returns immediately. The kernel backlog queues the burst.
    if (Config.MaxConnections != 0 &&
        Live.load(std::memory_order_acquire) >= Config.MaxConnections) {
      AdmissionWaiters.awaitUntil(
          [this] {
            return Stopped.load(std::memory_order_acquire) ||
                   Live.load(std::memory_order_acquire) <
                       Config.MaxConnections;
          },
          this, Deadline::in(Config.AcceptBackoffNanos));
      continue;
    }

    Socket Conn = Lst.accept();
    if (!Conn.valid()) {
      if (errno == ECANCELED || Stopped.load(std::memory_order_acquire))
        return;
      // Transient accept failure (e.g. an EMFILE/ENFILE burst): accept
      // fails synchronously, so retrying immediately would hot-spin. Back
      // off on a timed park; a connection close (which frees a
      // descriptor — exactly what EMFILE is waiting for) wakes it early
      // via Slot::release.
      AdmissionWaiters.awaitUntil(
          [this] { return Stopped.load(std::memory_order_acquire); }, this,
          Deadline::in(Config.AcceptBackoffNanos));
      continue;
    }

    Accepted.fetch_add(1, std::memory_order_relaxed);
    std::size_t NowLive = Live.fetch_add(1, std::memory_order_acq_rel) + 1;
    STING_TRACE_EVENT(NetAccept, 0, static_cast<std::uint32_t>(NowLive));
    Slot Admission(this);

    SpawnOptions Opts;
    Opts.Group = Group.get();
    // The connection thread owns the socket and its admission slot; moving
    // both into the thunk is what makes kill-group leak-free — destroying
    // the thunk (on any exit path, even termination before the thread's
    // first instruction) closes the descriptor and releases the slot.
    Vm->fork(
        [this, C = std::move(Conn),
         A = std::move(Admission)]() mutable -> AnyValue {
          (void)A;
          serveConnection(std::move(C));
          return AnyValue();
        },
        Opts);
  }
}

void Server::Slot::release() {
  if (!S)
    return;
  Server *Srv = std::exchange(S, nullptr);
  // Pin the server before the decrement: once Live hits zero shutdown()
  // may return and the Server be destroyed, so everything after the
  // fetch_sub below must be covered by ReleasesInFlight (shutdown drains
  // it after the Live spin).
  Srv->ReleasesInFlight.fetch_add(1, std::memory_order_acq_rel);
  std::size_t NowLive =
      Srv->Live.fetch_sub(1, std::memory_order_acq_rel) - 1;
  STING_TRACE_EVENT(NetClose, 0, static_cast<std::uint32_t>(NowLive));
  // A listener parked at the cap (or backing off after EMFILE) wants this
  // slot/descriptor; wake it rather than letting the timed backstop burn
  // the full backoff period.
  Srv->AdmissionWaiters.wakeOne();
  Srv->ReleasesInFlight.fetch_sub(1, std::memory_order_release);
}

void Server::serveConnection(Socket Conn) {
  // Fresh causal flow per connection: forked threads inherit their
  // creator's flow, so without this every connection thread would share
  // the listener's flow and all requests would render as one path.
  // Requests carrying their own Flow field re-adopt on top (Services).
  obs::FlowId F = obs::newFlowId();
  obs::setCurrentFlowId(F);
  if (Thread *T = currentThread())
    T->setFlowId(F);

  BufferedConn C(std::move(Conn), Config.WriteHighWater);
  OnConnection(C);
  C.flush();
}

void Server::shutdown() {
  if (Stopped.exchange(true, std::memory_order_acq_rel))
    return;
  if (Group) {
    // terminateAll snapshots the membership, but a connection accepted
    // just as Stopped flipped may still be mid-fork in the listener: its
    // thread joins the group (in Thread's constructor) after the snapshot.
    // Loop: each lap terminates and joins every member visible at that
    // instant; once the listener is dead no new members can appear, so an
    // empty group is final. threadWaitFor works from sting threads and
    // external OS threads alike, so shutdown can be driven from either.
    do {
      Group->terminateAll();
      for (ThreadRef &T : Group->threads())
        ThreadController::threadWaitFor(*T, Deadline::never());
    } while (Group->liveCount() != 0);
  }
  // A joiner can race a few instructions ahead of the determine path that
  // destroys a dead thread's thunk (and releases its admission slot);
  // settle the counter before promising liveConnections() == 0. Then
  // drain in-flight releases: a release that already decremented Live may
  // still be about to wake AdmissionWaiters, and destruction must wait
  // for that last touch. (A release pins itself *before* decrementing, so
  // observing Live == 0 guarantees its pin is visible here.)
  while (Live.load(std::memory_order_acquire) != 0 ||
         ReleasesInFlight.load(std::memory_order_acquire) != 0) {
    if (onStingThread())
      ThreadController::yieldProcessor();
    else
      std::this_thread::yield();
  }
  Lst.close();
}

} // namespace sting::net
