//===- net/Wire.cpp - Length-prefixed binary protocol ------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "net/Wire.h"

#include "gc/Object.h"

#include <cstring>

namespace sting::net::wire {

void Writer::u32(std::uint32_t N) {
  Buf.push_back(static_cast<std::uint8_t>(N & 0xff));
  Buf.push_back(static_cast<std::uint8_t>((N >> 8) & 0xff));
  Buf.push_back(static_cast<std::uint8_t>((N >> 16) & 0xff));
  Buf.push_back(static_cast<std::uint8_t>((N >> 24) & 0xff));
}

void Writer::fixnum(std::int64_t N) {
  Buf.push_back(static_cast<std::uint8_t>(Tag::Fixnum));
  std::uint64_t U = static_cast<std::uint64_t>(N);
  for (int I = 0; I != 8; ++I)
    Buf.push_back(static_cast<std::uint8_t>((U >> (8 * I)) & 0xff));
}

void Writer::formal(std::uint32_t Index) {
  Buf.push_back(static_cast<std::uint8_t>(Tag::Formal));
  u32(Index);
}

void Writer::flow(std::uint64_t F) {
  Buf.push_back(static_cast<std::uint8_t>(Tag::Flow));
  for (int I = 0; I != 8; ++I)
    Buf.push_back(static_cast<std::uint8_t>((F >> (8 * I)) & 0xff));
}

void Writer::bytesField(Tag T, std::string_view S) {
  Buf.push_back(static_cast<std::uint8_t>(T));
  u32(static_cast<std::uint32_t>(S.size()));
  Buf.insert(Buf.end(), S.begin(), S.end());
}

void Writer::value(gc::Value V) {
  if (V.isFixnum())
    return fixnum(V.asFixnum());
  if (V.isTrue())
    return boolean(true);
  if (V.isFalse())
    return boolean(false);
  if (V.isObject()) {
    gc::Object *O = V.asObject();
    switch (O->kind()) {
    case gc::ObjectKind::Symbol:
      return text({O->bytes(), O->byteLength()});
    case gc::ObjectKind::String:
    case gc::ObjectKind::Bytes:
      return blob({O->bytes(), O->byteLength()});
    default:
      break;
    }
  }
  nil();
}

Reader::Reader(const std::uint8_t *Data, std::size_t N)
    : Data(Data), Len(N) {
  if (N == 0)
    return;
  TheOp = static_cast<Op>(Data[0]);
  Pos = 1;
  Ok = true;
}

bool Reader::take(std::size_t N, const std::uint8_t *&P) {
  if (Len - Pos < N) {
    Ok = false;
    return false;
  }
  P = Data + Pos;
  Pos += N;
  return true;
}

bool Reader::next(ReadField &F) {
  if (!Ok || atEnd())
    return false;
  const std::uint8_t *P = nullptr;
  if (!take(1, P))
    return false;
  F = ReadField();
  F.T = static_cast<Tag>(*P);
  switch (F.T) {
  case Tag::Fixnum: {
    if (!take(8, P))
      return false;
    std::uint64_t U = 0;
    for (int I = 0; I != 8; ++I)
      U |= static_cast<std::uint64_t>(P[I]) << (8 * I);
    F.Num = static_cast<std::int64_t>(U);
    return true;
  }
  case Tag::True:
  case Tag::False:
  case Tag::Nil:
    return true;
  case Tag::Formal: {
    if (!take(4, P))
      return false;
    F.FormalIndex = static_cast<std::uint32_t>(P[0]) |
                    static_cast<std::uint32_t>(P[1]) << 8 |
                    static_cast<std::uint32_t>(P[2]) << 16 |
                    static_cast<std::uint32_t>(P[3]) << 24;
    return true;
  }
  case Tag::Flow: {
    if (!take(8, P))
      return false;
    for (int I = 0; I != 8; ++I)
      F.Flow |= static_cast<std::uint64_t>(P[I]) << (8 * I);
    return true;
  }
  case Tag::Text:
  case Tag::Blob: {
    if (!take(4, P))
      return false;
    std::uint32_t N = static_cast<std::uint32_t>(P[0]) |
                      static_cast<std::uint32_t>(P[1]) << 8 |
                      static_cast<std::uint32_t>(P[2]) << 16 |
                      static_cast<std::uint32_t>(P[3]) << 24;
    const std::uint8_t *Body = nullptr;
    if (!take(N, Body))
      return false;
    F.Bytes = {reinterpret_cast<const char *>(Body), N};
    return true;
  }
  }
  Ok = false; // unknown tag
  return false;
}

std::uint64_t Reader::takeFlow() {
  if (!Ok || atEnd() || static_cast<Tag>(Data[Pos]) != Tag::Flow)
    return 0;
  ReadField F;
  if (!next(F))
    return 0;
  return F.Flow;
}

bool readTuple(Reader &R, Tuple &Out) {
  ReadField F;
  while (R.next(F)) {
    switch (F.T) {
    case Tag::Fixnum:
      Out.emplace_back(static_cast<long long>(F.Num));
      break;
    case Tag::True:
      Out.emplace_back(true);
      break;
    case Tag::False:
      Out.emplace_back(false);
      break;
    case Tag::Nil:
      Out.emplace_back(gc::Value::nil());
      break;
    case Tag::Text:
      // Pending text: TupleSpace::prepare interns it as a Symbol, so
      // remote keys get the same identity as local string literals.
      Out.emplace_back(std::string_view(F.Bytes));
      break;
    case Tag::Formal:
      Out.emplace_back(Field::formal(F.FormalIndex));
      break;
    case Tag::Blob:
      // Pending bytes: TupleSpace::prepare allocates the String directly
      // in the shared heap. Decode must not allocate GC objects — a young
      // String held unrooted in the half-built tuple would be moved or
      // reclaimed by any scavenge a later field's allocation triggers.
      Out.emplace_back(Field::blob(F.Bytes));
      break;
    case Tag::Flow:
      // Request metadata, not a tuple field; tolerated mid-payload so a
      // client that tags late still round-trips.
      break;
    }
  }
  return R.ok();
}

void writeMatch(Writer &W, const Match &M) {
  for (gc::Value V : M.Fields)
    W.value(V);
}

} // namespace sting::net::wire
