//===- net/Client.cpp - Resilient request/reply client -----------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"

#include "core/Current.h"
#include "core/VirtualProcessor.h"
#include "obs/TraceBuffer.h"
#include "support/Chaos.h"
#include "support/Clock.h"

#include <cerrno>
#include <chrono>
#include <mutex>
#include <thread>

namespace sting::net {

namespace {

void chargeVp(obs::Counter obs::SchedStats::*Field) {
  if (VirtualProcessor *Vp = currentVp())
    (Vp->stats().*Field).inc();
}

std::uint64_t selfThreadId() {
  Thread *T = currentThread();
  return T ? T->id() : 0;
}

Deadline minDeadline(Deadline A, Deadline B) {
  return A.AtNanos < B.AtNanos ? A : B;
}

} // namespace

const char *breakerStateName(BreakerState S) {
  switch (S) {
  case BreakerState::Closed:
    return "closed";
  case BreakerState::Open:
    return "open";
  case BreakerState::HalfOpen:
    return "half-open";
  }
  return "?";
}

const char *requestStatusName(RequestStatus S) {
  switch (S) {
  case RequestStatus::Ok:
    return "ok";
  case RequestStatus::Overload:
    return "overload";
  case RequestStatus::Timeout:
    return "timeout";
  case RequestStatus::BreakerOpen:
    return "breaker-open";
  case RequestStatus::Canceled:
    return "canceled";
  case RequestStatus::Error:
    return "error";
  }
  return "?";
}

void CircuitBreaker::transitionLocked(BreakerState To) {
  STING_TRACE_EVENT(BreakerTransition, selfThreadId(),
                    static_cast<std::uint32_t>(St) << 8 |
                        static_cast<std::uint32_t>(To));
  St = To;
  if (To == BreakerState::Open) {
    Opens.fetch_add(1, std::memory_order_relaxed);
    chargeVp(&obs::SchedStats::NetBreakerOpens);
  }
}

bool CircuitBreaker::tryAdmit(bool &BecameProbe) {
  BecameProbe = false;
  std::lock_guard<SpinLock> Guard(Lock);
  switch (St) {
  case BreakerState::Closed:
    return true;
  case BreakerState::Open:
    if (nowNanos() - OpenedAtNanos < Config.OpenCooldownNanos)
      return false;
    // Cooldown over: this caller becomes the half-open probe.
    transitionLocked(BreakerState::HalfOpen);
    ProbeInFlight = true;
    BecameProbe = true;
    return true;
  case BreakerState::HalfOpen:
    if (ProbeInFlight)
      return false;
    ProbeInFlight = true;
    BecameProbe = true;
    return true;
  }
  return true;
}

void CircuitBreaker::recordSuccess() {
  std::lock_guard<SpinLock> Guard(Lock);
  Failures = 0;
  ProbeInFlight = false;
  if (St != BreakerState::Closed)
    transitionLocked(BreakerState::Closed);
}

void CircuitBreaker::recordFailure() {
  std::lock_guard<SpinLock> Guard(Lock);
  ++Failures;
  if (St == BreakerState::HalfOpen) {
    // The probe failed; the endpoint is still down.
    ProbeInFlight = false;
    OpenedAtNanos = nowNanos();
    transitionLocked(BreakerState::Open);
    return;
  }
  if (St == BreakerState::Closed && Failures >= Config.FailureThreshold) {
    OpenedAtNanos = nowNanos();
    transitionLocked(BreakerState::Open);
  }
}

void CircuitBreaker::abortProbe() {
  // No transition and no failure count: the probe never reached a
  // verdict, so the breaker stays HalfOpen and the next tryAdmit hands
  // the token to a fresh caller instead of refusing forever.
  std::lock_guard<SpinLock> Guard(Lock);
  ProbeInFlight = false;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<SpinLock> Guard(Lock);
  return St;
}

Client::Client(IoService &Io, ClientConfig Config,
               CircuitBreaker *SharedBreaker)
    : Io(&Io), Config(std::move(Config)), OwnBreaker(this->Config.Breaker),
      Breaker(SharedBreaker ? SharedBreaker : &OwnBreaker),
      RngState(this->Config.RetrySeed
                   ? this->Config.RetrySeed
                   : reinterpret_cast<std::uintptr_t>(this) ^ nowNanos()) {}

RequestStatus Client::request(const void *Payload, std::size_t N,
                              std::vector<std::uint8_t> &Reply) {
  RequestStatus Last = RequestStatus::Error;
  unsigned Attempts = Config.MaxAttempts ? Config.MaxAttempts : 1;
  for (unsigned Attempt = 0; Attempt != Attempts; ++Attempt) {
    if (Attempt != 0) {
      // Bounded exponential backoff with jitter between attempts; the
      // jitter decorrelates a swarm retrying against one endpoint.
      ++Retries;
      chargeVp(&obs::SchedStats::NetRetries);
      STING_TRACE_EVENT(NetRetry, selfThreadId(), Attempt);
      sleepFor(Config.Retry.delayNanos(Attempt - 1, RngState));
    }
    bool Probe = false;
    if (!Breaker->tryAdmit(Probe)) {
      // Keep consuming attempts while open: the backoff above waits out
      // the cooldown, so a long MaxAttempts rides through an endpoint
      // restart instead of failing the whole request fast.
      Last = RequestStatus::BreakerOpen;
      continue;
    }
    try {
      Last = attemptOnce(Payload, N, Reply);
    } catch (...) {
      // Async terminate/raise unwinding out of a park inside the
      // attempt. A leaked probe token would wedge a shared breaker in
      // HalfOpen forever (tryAdmit refusing every survivor), so hand it
      // back before the unwind continues.
      if (Probe)
        Breaker->abortProbe();
      throw;
    }
    if (Last == RequestStatus::Ok) {
      Breaker->recordSuccess();
      return Last;
    }
    if (Last == RequestStatus::Canceled) {
      // Shutdown, not endpoint health: no success/failure to record, but
      // a probe token must still go back (see the catch above).
      if (Probe)
        Breaker->abortProbe();
      return Last;
    }
    Breaker->recordFailure();
  }
  return Last;
}

RequestStatus Client::attemptOnce(const void *Payload, std::size_t N,
                                  std::vector<std::uint8_t> &Reply) {
  Deadline D = Deadline::in(Config.RequestTimeoutNanos);

  // Chaos: drop the cached connection as if the peer had reset it —
  // injected *before* the send so the retry can never duplicate a
  // request the server already executed.
  if (Conn.valid() && STING_CHAOS_FIRE(NetPeerReset)) {
    STING_TRACE_EVENT(ChaosInject, selfThreadId(),
                      static_cast<std::uint32_t>(chaos::Site::NetPeerReset));
    dropConnection();
  }

  if (!ensureConnected(D)) {
    if (errno == ECANCELED)
      return RequestStatus::Canceled;
    return errno == ETIMEDOUT ? RequestStatus::Timeout : RequestStatus::Error;
  }

  if (!Conn.writeFrame(Payload, N, D) || !Conn.flush(D)) {
    int E = errno;
    dropConnection(); // EPIPE/reset/timeout: the stream is unusable
    if (E == ECANCELED)
      return RequestStatus::Canceled;
    return E == ETIMEDOUT ? RequestStatus::Timeout : RequestStatus::Error;
  }

  // Chaos: a peer that takes its time — stretches the reply-wait window
  // without breaking anything, shaking out deadline arithmetic.
  if (STING_CHAOS_FIRE(NetSlowPeer)) {
    STING_TRACE_EVENT(ChaosInject, selfThreadId(),
                      static_cast<std::uint32_t>(chaos::Site::NetSlowPeer));
    spinForNanos(200'000);
  }

  if (!Conn.readFrame(Reply, D)) {
    int E = errno;
    // EOF, reset, short frame, or deadline: in every case the stream has
    // fallen out of request/reply lockstep (a late reply to *this*
    // request could arrive after we resend), so reconnect on retry.
    dropConnection();
    if (E == ECANCELED)
      return RequestStatus::Canceled;
    return E == ETIMEDOUT ? RequestStatus::Timeout : RequestStatus::Error;
  }

  if (!Reply.empty() &&
      Reply[0] == static_cast<std::uint8_t>(wire::Op::Overload)) {
    // The server shed this connection before serving it and closes right
    // after; retry against a fresh connection after backoff.
    dropConnection();
    return RequestStatus::Overload;
  }
  return RequestStatus::Ok;
}

bool Client::ensureConnected(Deadline D) {
  if (Conn.valid())
    return true;
  if (STING_CHAOS_FIRE(NetConnectFail)) {
    STING_TRACE_EVENT(ChaosInject, selfThreadId(),
                      static_cast<std::uint32_t>(chaos::Site::NetConnectFail));
    errno = ECONNREFUSED;
    return false;
  }
  Socket S =
      Socket::connectUntil(*Io, Config.Host.c_str(), Config.Port,
                           minDeadline(D, Deadline::in(Config.ConnectTimeoutNanos)));
  if (!S.valid())
    return false;
  Conn = BufferedConn(std::move(S), Config.WriteHighWater);
  return true;
}

void Client::dropConnection() { Conn = BufferedConn(Socket()); }

void Client::sleepFor(std::uint64_t Nanos) {
  if (Nanos == 0)
    return;
  if (onStingThread()) {
    // A timed park on a never-signaled list is the substrate's sleep: the
    // VP keeps dispatching other threads, and kill-group cancellation
    // unwinds straight out of the wait.
    (void)RetrySleep.awaitUntil([] { return false; }, this,
                                Deadline::in(Nanos));
    return;
  }
  std::this_thread::sleep_for(std::chrono::nanoseconds(Nanos));
}

} // namespace sting::net
