//===- net/Pool.cpp - Bounded client connection pool --------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "net/Pool.h"

#include "core/Current.h"
#include "core/VirtualProcessor.h"

#include <cerrno>
#include <mutex>

namespace sting::net {

std::unique_ptr<Client> ConnectionPool::tryTake() {
  std::lock_guard<SpinLock> Guard(Lock);
  if (!Idle.empty()) {
    std::unique_ptr<Client> C = std::move(Idle.back());
    Idle.pop_back();
    ++Outstanding;
    return C;
  }
  if (Outstanding + Idle.size() < Config.MaxConnections) {
    ++Outstanding;
    return std::make_unique<Client>(*Io, Config.Client, &Breaker);
  }
  return nullptr;
}

ConnectionPool::Lease ConnectionPool::checkout(Deadline D) {
  std::unique_ptr<Client> C = tryTake();
  if (!C) {
    // At the cap: park until a checkin frees a client. The condition's
    // side effect (taking the client) runs under the ParkList protocol,
    // so a checkin racing the deadline is never lost.
    Waits.fetch_add(1, std::memory_order_relaxed);
    if (VirtualProcessor *Vp = currentVp())
      Vp->stats().PoolCheckoutWaits.inc();
    WaitResult W = Waiters.awaitUntil(
        [&] { return (C = tryTake()) != nullptr; }, this, D);
    if (!C) {
      // Tell shutdown apart from endpoint slowness: a wait cut short by
      // service teardown (or any non-timeout unwind that left us without
      // a client) is not the endpoint's fault and must not be reported
      // as one.
      errno = (W == WaitResult::Timeout && !Io->stopping()) ? ETIMEDOUT
                                                            : ECANCELED;
      return Lease();
    }
  }
  return Lease(this, std::move(C));
}

RequestStatus ConnectionPool::request(const wire::Writer &W,
                                      std::vector<std::uint8_t> &Reply,
                                      Deadline D) {
  Lease L = checkout(D);
  if (!L)
    return errno == ECANCELED ? RequestStatus::Canceled
                              : RequestStatus::Timeout;
  return L->request(W, Reply);
}

void ConnectionPool::checkin(std::unique_ptr<Client> C) {
  {
    std::lock_guard<SpinLock> Guard(Lock);
    --Outstanding;
    // Returned even when its connection broke: the client reconnects
    // lazily, and dropping it here would shrink the pool under churn.
    Idle.push_back(std::move(C));
  }
  Waiters.wakeOne();
}

} // namespace sting::net
