//===- net/Pool.cpp - Bounded multi-endpoint connection pool ------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "net/Pool.h"

#include "core/Current.h"
#include "core/VirtualProcessor.h"

#include <cerrno>
#include <mutex>

namespace sting::net {

std::unique_ptr<Client> ConnectionPool::takeLocked(Endpoint &End,
                                                   std::size_t Idx) {
  if (!End.Idle.empty()) {
    std::unique_ptr<Client> C = std::move(End.Idle.back());
    End.Idle.pop_back();
    ++End.Outstanding;
    return C;
  }
  if (End.Outstanding + End.Idle.size() < Config.MaxConnections) {
    ++End.Outstanding;
    return std::make_unique<Client>(*Io, Config.Endpoints[Idx], &End.Breaker);
  }
  return nullptr;
}

std::unique_ptr<Client> ConnectionPool::tryTake(std::size_t E) {
  std::lock_guard<SpinLock> Guard(Lock);
  return takeLocked(*Ends[E], E);
}

std::unique_ptr<Client> ConnectionPool::tryTakeAny(std::size_t &E) {
  const std::size_t N = Ends.size();
  const std::size_t Start = Rr.fetch_add(1, std::memory_order_relaxed) % N;
  std::lock_guard<SpinLock> Guard(Lock);
  // Two passes: prefer endpoints whose breaker is not open (so a downed
  // shard carries no new traffic while its siblings have capacity), but
  // when *every* breaker is open still hand out a client — the request
  // then collects the breaker's fast BreakerOpen verdict (or becomes its
  // half-open probe) instead of a misleading checkout timeout.
  for (int Pass = 0; Pass < 2; ++Pass) {
    std::size_t Best = N;          // N = none found
    std::size_t BestFree = 0;
    for (std::size_t I = 0; I < N; ++I) {
      const std::size_t Idx = (Start + I) % N;
      Endpoint &End = *Ends[Idx];
      if (Pass == 0 && End.Breaker.state() == BreakerState::Open)
        continue;
      if (End.Idle.empty() &&
          End.Outstanding + End.Idle.size() >= Config.MaxConnections)
        continue; // at the cap with nothing idle: cannot lease
      // Weight: free lease capacity. Idle clients count as free, so the
      // pick spreads load toward the least-loaded live endpoint; ties go
      // to the rotating start offset (round-robin).
      const std::size_t Free = Config.MaxConnections > End.Outstanding
                                   ? Config.MaxConnections - End.Outstanding
                                   : 0;
      if (Best == N || Free > BestFree) {
        Best = Idx;
        BestFree = Free;
      }
    }
    if (Best != N) {
      E = Best;
      return takeLocked(*Ends[Best], Best);
    }
  }
  return nullptr;
}

template <typename TakeFn>
ConnectionPool::Lease ConnectionPool::slowCheckout(TakeFn Take, Deadline D) {
  std::size_t E = 0;
  std::unique_ptr<Client> C = Take(E);
  if (!C) {
    // At the cap: park until a checkin frees a client. The condition's
    // side effect (taking the client) runs under the ParkList protocol,
    // so a checkin racing the deadline is never lost.
    Waits.fetch_add(1, std::memory_order_relaxed);
    if (VirtualProcessor *Vp = currentVp())
      Vp->stats().PoolCheckoutWaits.inc();
    WaitResult W = Waiters.awaitUntil(
        [&] { return (C = Take(E)) != nullptr; }, this, D);
    if (!C) {
      // Tell shutdown apart from endpoint slowness: a wait cut short by
      // service teardown (or any non-timeout unwind that left us without
      // a client) is not the endpoint's fault and must not be reported
      // as one.
      errno = (W == WaitResult::Timeout && !Io->stopping()) ? ETIMEDOUT
                                                            : ECANCELED;
      return Lease();
    }
  }
  return Lease(this, E, std::move(C));
}

ConnectionPool::Lease ConnectionPool::checkout(Deadline D) {
  return slowCheckout([this](std::size_t &E) { return tryTakeAny(E); }, D);
}

ConnectionPool::Lease ConnectionPool::checkoutFrom(std::size_t E, Deadline D) {
  return slowCheckout(
      [this, E](std::size_t &Out) {
        Out = E;
        return tryTake(E);
      },
      D);
}

RequestStatus ConnectionPool::request(const wire::Writer &W,
                                      std::vector<std::uint8_t> &Reply,
                                      Deadline D) {
  Lease L = checkout(D);
  if (!L)
    return errno == ECANCELED ? RequestStatus::Canceled
                              : RequestStatus::Timeout;
  return L->request(W, Reply);
}

RequestStatus ConnectionPool::requestFrom(std::size_t E, const wire::Writer &W,
                                          std::vector<std::uint8_t> &Reply,
                                          Deadline D) {
  Lease L = checkoutFrom(E, D);
  if (!L)
    return errno == ECANCELED ? RequestStatus::Canceled
                              : RequestStatus::Timeout;
  return L->request(W, Reply);
}

void ConnectionPool::checkin(std::size_t E, std::unique_ptr<Client> C) {
  {
    std::lock_guard<SpinLock> Guard(Lock);
    Endpoint &End = *Ends[E];
    --End.Outstanding;
    // Returned even when its connection broke: the client reconnects
    // lazily, and dropping it here would shrink the pool under churn.
    End.Idle.push_back(std::move(C));
  }
  Waiters.wakeOne();
}

} // namespace sting::net
