//===- tuple/TupleSpace.cpp - Facade and the hashed representation ----------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// The general representation follows paper section 4.2: a hash table of
// passive tuples (HP) and, per bin, the blocked readers (HB), with "a
// mutex with every hash bin rather than a global mutex on the entire
// hash table". Tuples whose first field cannot be hashed (live threads)
// live in a wildcard bin scanned by every reader.
//
// The contended path is a direct put→waiter handoff (DESIGN.md §12): a
// blocked reader registers its prepared template in its home bin before
// parking, and a deposit scans the registered waiters under the bin lock,
// transfers the entry straight into one compatible taker's slot (plus a
// reference to every compatible rd waiter) and wakes exactly those
// threads — no insert, no wake-all, no re-scan by the losers. Tuples
// containing live threads cannot be matched under a spinlock (resolution
// may steal and run user code), so they are inserted and compatible
// waiters are *nudged* to re-scan.
//
// Thread fields integrate with stealing: a reader that needs the value of
// a delayed/scheduled thread found in a tuple steals it via threadWait; a
// reader blocked on an *evaluating* thread field waits on that thread
// directly (the paper: "P may choose to either block on one (or both)
// thread(s), or examine other potentially matching tuples").
//
//===----------------------------------------------------------------------===//

#include "tuple/TupleSpace.h"

#include "core/Current.h"
#include "core/Gc.h"
#include "core/Tcb.h"
#include "core/ThreadController.h"
#include "core/VirtualProcessor.h"
#include "obs/Flow.h"
#include "obs/TraceBuffer.h"
#include "gc/GlobalHeap.h"
#include "gc/Object.h"
#include "support/Chaos.h"
#include "sync/HandoffList.h"
#include "tuple/RepBase.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace sting {

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

const char *tupleSpaceRepName(TupleSpaceRep Rep) {
  switch (Rep) {
  case TupleSpaceRep::Hashed:
    return "hashed";
  case TupleSpaceRep::Queue:
    return "queue";
  case TupleSpaceRep::Bag:
    return "bag";
  case TupleSpaceRep::Set:
    return "set";
  case TupleSpaceRep::SharedVariable:
    return "shared-variable";
  case TupleSpaceRep::Semaphore:
    return "semaphore";
  case TupleSpaceRep::Vector:
    return "vector";
  }
  STING_UNREACHABLE("bad tuple-space representation");
}

TupleSpaceRep chooseRepresentation(const TupleOpsProfile &P) {
  if (P.TokensOnly)
    return TupleSpaceRep::Semaphore;
  if (P.SingleCell)
    return TupleSpaceRep::SharedVariable;
  if (P.IndexedAccess)
    return TupleSpaceRep::Vector;
  if (!P.UsesTemplates && P.SingletonTuples) {
    if (P.OrderedConsumption)
      return TupleSpaceRep::Queue;
    return P.AllowsDuplicates ? TupleSpaceRep::Bag : TupleSpaceRep::Set;
  }
  return TupleSpaceRep::Hashed;
}

std::size_t detail::bindingCount(const Tuple &Template) {
  std::size_t Count = 0;
  for (const Field &F : Template)
    if (F.isFormal())
      Count = std::max(Count, std::size_t(F.formalIndex()) + 1);
  return Count;
}

Match detail::buildMatch(const std::vector<gc::Value> &Values,
                         const Tuple &Template) {
  Match M;
  M.Fields = Values;
  M.Bindings.resize(bindingCount(Template), gc::Value::nil());
  for (std::size_t I = 0; I != Template.size(); ++I)
    if (Template[I].isFormal())
      M.Bindings[Template[I].formalIndex()] = Values[I];
  return M;
}

//===----------------------------------------------------------------------===//
// Hashed representation
//===----------------------------------------------------------------------===//

namespace {

using namespace sting::detail;

constexpr std::size_t NumBins = 64;

class HashedRep;
struct BinItemTag;

/// A deposited tuple. Intrusively refcounted and recycled through the
/// owning representation's pool: matchers may pin an entry across
/// thread-field resolution while a competing taker removes it, and a
/// dropped last reference returns the node to the freelist instead of
/// the allocator.
struct Entry : ListNode<BinItemTag> {
  Entry(HashedRep &Owner, gc::GlobalHeap &Heap) : Owner(Owner), Heap(Heap) {}

  void retain() { Refs.fetch_add(1, std::memory_order_relaxed); }
  void release(); ///< recycles into Owner's pool on the last reference

  /// Replaces a determined live-thread field with its value, once.
  void resolveField(std::size_t I, gc::Value V) {
    std::lock_guard<SpinLock> Guard(Lock);
    if (!Fields[I].isLiveThread())
      return;
    Fields[I].becomeDatum(V);
    Heap.addRoot(Fields[I].valueSlot());
  }

  HashedRep &Owner;
  Tuple Fields;
  gc::GlobalHeap &Heap;
  SpinLock Lock; ///< guards live-thread resolution and Removed
  /// The depositor's causal flow at put time, handed to the matcher.
  std::uint64_t Flow = 0;
  bool Removed = false;
  std::atomic<std::uint32_t> Refs{0};
  Entry *NextFree = nullptr; ///< pool freelist link (while recycled)
};

/// Minimal intrusive handle; the last release recycles into the pool.
class EntryRef {
public:
  EntryRef() = default;
  explicit EntryRef(Entry *E) : P(E) {
    if (P)
      P->retain();
  }
  /// Takes over a reference the caller already owns.
  static EntryRef adopt(Entry *E) {
    EntryRef R;
    R.P = E;
    return R;
  }
  EntryRef(const EntryRef &O) : P(O.P) {
    if (P)
      P->retain();
  }
  EntryRef(EntryRef &&O) noexcept : P(O.P) { O.P = nullptr; }
  EntryRef &operator=(EntryRef O) noexcept {
    std::swap(P, O.P);
    return *this;
  }
  ~EntryRef() {
    if (P)
      P->release();
  }

  Entry *get() const { return P; }
  Entry &operator*() const { return *P; }
  Entry *operator->() const { return P; }
  explicit operator bool() const { return P != nullptr; }

private:
  Entry *P = nullptr;
};

/// A blocked reader's registration: the prepared template plus the
/// delivery slot, guarded by the home bin's lock (see HandoffList).
struct TupleWaiter : HandoffWaiterBase {
  TupleWaiter(const Tuple &T, bool Remove)
      : Template(&T), Remove(Remove), Arity(T.size()) {}

  const Tuple *Template; ///< stack-pinned for the registration's lifetime
  bool Remove;           ///< take (consume the entry) vs rd (share a ref)
  std::size_t Arity;     ///< producers reject on arity before field compare
  bool IsProxy = false;  ///< heap-owned ProxyReg, no thread parks on it
  EntryRef Slot;         ///< where a deposit lands
};

/// A heap-owned registration armed on behalf of a *remote* waiter (the
/// multi-VM hook, DESIGN.md §13). Linkage and HandoffState are guarded by
/// the home bin's lock like any TupleWaiter; the completion flags below are
/// guarded by the owning representation's registry lock; lifetime is
/// intrusively refcounted — the registry holds one reference, and every
/// in-flight completion (a deposit's delivery/nudge, an active rescan
/// driver) pins its own, so no path ever touches a freed record.
struct ProxyReg final : TupleWaiter {
  ProxyReg(std::unique_ptr<Tuple> T, bool Remove, std::uint64_t Id,
           TupleSpace::ProxyDeliverFn Deliver)
      : TupleWaiter(*T, Remove), Owned(std::move(T)), Id(Id),
        Deliver(std::move(Deliver)) {
    IsProxy = true;
  }

  void retain() { Refs.fetch_add(1, std::memory_order_relaxed); }
  /// \returns true when the caller dropped the last reference and must
  /// dispose (the rep unroots the template fields and deletes).
  bool release() { return Refs.fetch_sub(1, std::memory_order_acq_rel) == 1; }

  std::unique_ptr<Tuple> Owned; ///< what TupleWaiter::Template points at
  std::uint64_t Id;
  TupleSpace::ProxyDeliverFn Deliver;
  std::atomic<std::uint32_t> Refs{1}; ///< the registry's reference

  // Guarded by the representation's RegLock. Exactly one of a retract
  // (Canceled while armed) or a delivery (Delivering) ever owns the
  // registration's outcome — the wire-level mirror of HandoffList's
  // exactly-one-transition-out-of-Armed discipline.
  bool Canceled = false;   ///< retract won; suppress any later delivery
  bool Delivering = false; ///< a delivery callback claimed the outcome
  bool Driving = false;    ///< a rescan driver owns re-arm decisions
  bool Renudged = false;   ///< a nudge landed while a driver was active
};

/// One hash bin: a lock, the passive tuples (HP row), and the registered
/// blocked readers (HB row). Padded so neighboring bins' locks never
/// share a cache line.
struct alignas(64) Bin {
  SpinLock Lock;
  IntrusiveList<Entry, BinItemTag> Items;
  HandoffList<TupleWaiter> Waiters;
  /// Racy occupancy gate: scans skip empty bins without locking them.
  /// Updated under Lock; the bin lock carries the happens-before for any
  /// reader that goes on to walk Items.
  std::atomic<std::size_t> EntryCount{0};
};

/// Result of matching one entry against a template.
enum class EntryMatch {
  No,         ///< incompatible
  Yes,        ///< all fields matched and resolved
  NeedThread, ///< datum fields match; a thread field is unresolved
};

class HashedRep final : public TupleSpaceRepBase {
public:
  HashedRep(gc::GlobalHeap &Heap, TupleSpaceStats &Stats)
      : TupleSpaceRepBase(Stats), Heap(Heap) {}

  ~HashedRep() override {
    // Proxies ought to be retracted before the space dies (the shard
    // service retracts at connection teardown); drop stragglers
    // defensively so their entry pins and roots are returned.
    for (auto &[Id, P] : Registry) {
      (void)Id;
      Bin &Home = binForTemplate(*P->Template);
      {
        std::lock_guard<SpinLock> Guard(Home.Lock);
        if (P->isLinked())
          Home.Waiters.finish(*P);
        P->Slot = EntryRef();
      }
      if (P->release())
        disposeProxy(P);
    }
    Registry.clear();
    auto Drain = [](Bin &B) {
      while (!B.Items.empty())
        B.Items.popFront().release(); // the Items reference
    };
    for (Bin &B : Bins)
      Drain(B);
    Drain(Wildcard);
    for (Entry *E = FreeList; E;) {
      Entry *Next = E->NextFree;
      delete E;
      E = Next;
    }
  }

  void put(Tuple T) override { deposit(makeEntry(std::move(T))); }

  std::optional<Match> tryMatch(const Tuple &Template,
                                bool Remove) override {
    ThreadRef Unresolved;
    return scanOnce(Template, Remove, /*AllowSteal=*/true, Unresolved);
  }

  std::optional<Match> matchUntil(const Tuple &Template, bool Remove,
                                  Deadline D) override {
    // Hot path: one unregistered scan.
    {
      ThreadRef Unresolved;
      if (auto M =
              scanOnce(Template, Remove, /*AllowSteal=*/true, Unresolved))
        return M;
      if (D.expired()) {
        STING_TRACE_EVENT(TimeoutFired, selfId(), 2);
        return std::nullopt;
      }
      if (Unresolved) {
        // Wait on the thread element itself; its completion may complete
        // our match. (Steals of delayed/scheduled threads happen inside
        // threadWaitFor.)
        noteBlocked(1);
        ThreadController::threadWaitFor(*Unresolved, D);
      }
    }

    // Contended path: register in the home bin, then re-scan. A deposit
    // racing the failed scan above either published before the
    // registration (the re-scan finds it) or after (its waiter walk finds
    // the registration and delivers/nudges) — the bin lock orders the
    // two, so no epoch counter is needed and no wakeup can be lost.
    Bin &Home = binForTemplate(Template);
    for (;;) {
      TupleWaiter W(Template, Remove);
      {
        std::lock_guard<SpinLock> Guard(Home.Lock);
        Home.Waiters.enqueue(W);
      }
      ThreadRef Unresolved;
      std::optional<Match> M;
      try {
        M = scanOnce(Template, Remove, /*AllowSteal=*/true, Unresolved);
      } catch (...) {
        settleUnwind(Home, W, Remove);
        throw;
      }
      if (M) {
        // Our own scan won; a delivery may have raced it. A take delivery
        // was never inserted — put it back, never strand it.
        if (EntryRef Extra = settle(Home, W); Extra && Remove)
          deposit(std::move(Extra));
        return M;
      }
      if (D.expired()) {
        // Scan-before-deadline ordering: a deposit racing the deadline
        // wins, either via the scan above or via a delivery in our slot.
        if (EntryRef Got = settle(Home, W))
          return matchFromEntry(Got, Template);
        STING_TRACE_EVENT(TimeoutFired, selfId(), 2);
        return std::nullopt;
      }
      if (Unresolved) {
        // Deregister before waiting on the thread: a delivery landing
        // while we sleep on an unrelated thread would sit invisible in
        // our slot. On timeout, loop back: the re-scan then falls through
        // to the expired() check above.
        if (EntryRef Got = settle(Home, W))
          return matchFromEntry(Got, Template);
        noteBlocked(1);
        ThreadController::threadWaitFor(*Unresolved, D);
        continue;
      }

      // Park until delivered, nudged or timed out (the HB row).
      noteBlocked(0);
      bool Renew = false;
      while (!Renew) {
        // Chaos: an extra control transfer right where the waiter decides
        // to sleep on its published registration.
        if (STING_CHAOS_FIRE(PreemptPoint)) {
          STING_TRACE_EVENT(ChaosInject, selfId(),
                            static_cast<std::uint32_t>(
                                chaos::Site::PreemptPoint));
          ThreadController::yieldProcessor();
        }
        try {
          ThreadController::parkCurrent(ParkClass::Kernel, this, D);
        } catch (...) {
          // Async terminate / raise unwinding out of the park: retract
          // the registration; a take delivery that raced the unwind goes
          // back into the space.
          settleUnwind(Home, W, Remove);
          throw;
        }
        HandoffState St = HandoffState::Armed;
        EntryRef Got;
        bool TimedOut = false;
        {
          std::lock_guard<SpinLock> Guard(Home.Lock);
          if (W.isLinked()) {
            // Still armed: nothing was handed to us. Only now may a
            // timeout be reported — delivery and timeout are arbitrated
            // under this lock, so the slot can never be left holding a
            // tuple nobody owns.
            if (D.expired()) {
              Home.Waiters.finish(W);
              TimedOut = true;
            }
            // else: spurious return; stay registered and re-park.
          } else {
            St = W.state();
            Got = std::move(W.Slot);
          }
        }
        if (TimedOut) {
          STING_TRACE_EVENT(TimeoutFired, selfId(), 2);
          return std::nullopt;
        }
        if (St == HandoffState::Delivered)
          return matchFromEntry(Got, Template);
        if (St == HandoffState::Nudged)
          Renew = true; // a potential match landed: re-register, re-scan
      }
    }
  }

  std::size_t size() const override {
    std::size_t N = Wildcard.EntryCount.load(std::memory_order_relaxed);
    for (const Bin &B : Bins)
      N += B.EntryCount.load(std::memory_order_relaxed);
    return N;
  }

  bool registerProxy(std::uint64_t Id, Tuple Template, bool Remove,
                     TupleSpace::ProxyDeliverFn Deliver) override {
    auto Owned = std::make_unique<Tuple>(std::move(Template));
    auto *P = new ProxyReg(std::move(Owned), Remove, Id, std::move(Deliver));
    // Root the template's datum fields for the registration's lifetime
    // (the owned vector never resizes, so the slots are stable) — the
    // remote waiter has no stack frame pinning them, cf. makeEntry.
    for (Field &F : *P->Owned)
      if (F.isDatum())
        Heap.addRoot(F.valueSlot());
    Bin &Home = binForTemplate(*P->Template);
    bool Duplicate = false;
    {
      std::lock_guard<SpinLock> Reg(RegLock);
      if (!Registry.emplace(Id, P).second) {
        Duplicate = true;
      } else {
        P->Driving = true; // the inline register-then-rescan below
        std::lock_guard<SpinLock> Guard(Home.Lock);
        Home.Waiters.enqueueDetached(*P);
      }
    }
    if (Duplicate) {
      disposeProxy(P);
      return false;
    }
    // Register-then-rescan, the same lost-wakeup-freedom argument as
    // matchUntil: a deposit racing this call either published before the
    // enqueue (the drive's scan finds it) or after (its waiter walk finds
    // the registration and delivers/nudges).
    P->retain(); // the driver's reference
    driveProxy(P);
    return true;
  }

  bool retractProxy(std::uint64_t Id) override {
    ProxyReg *P = nullptr;
    bool WasArmed = false;
    {
      std::lock_guard<SpinLock> Reg(RegLock);
      auto It = Registry.find(Id);
      if (It == Registry.end())
        return false;
      P = It->second;
      Bin &Home = binForTemplate(*P->Template);
      {
        std::lock_guard<SpinLock> Guard(Home.Lock);
        if (P->isLinked()) {
          // Still armed: the retract wins, exactly like a local waiter's
          // finish() on timeout — no delivery fired and none will.
          Home.Waiters.finish(*P);
          P->Canceled = true;
          WasArmed = true;
        } else if (P->state() == HandoffState::Delivered || P->Delivering) {
          // A completion owns the tuple; the caller will observe its
          // delivery (possibly after this retract reports wasArmed=false).
          WasArmed = false;
        } else {
          // Nudged (a rescan is scheduled/running) or momentarily
          // unlinked by a driver mid-decision: cancel before it delivers.
          P->Canceled = true;
          WasArmed = true;
        }
      }
      Registry.erase(It);
    }
    if (P->release())
      disposeProxy(P);
    return WasArmed;
  }

  /// Returns a recycled entry to the pool (called from Entry::release).
  void recycle(Entry *E) {
    for (Field &F : E->Fields)
      if (F.isDatum())
        Heap.removeRoot(F.valueSlot());
    E->Fields.clear();
    std::lock_guard<SpinLock> Guard(PoolLock);
    E->NextFree = FreeList;
    FreeList = E;
  }

private:
  static std::uint64_t selfId() {
    return currentThread() ? currentThread()->id() : 0;
  }

  void noteBlocked(std::uint32_t Payload) {
    Stats.Blocks.fetch_add(1, std::memory_order_relaxed);
    STING_TRACE_EVENT(TupleBlock, selfId(), Payload);
  }

  static std::size_t hashKey(std::size_t Arity, gc::Value V) {
    std::uint64_t H = gc::valueHash(V);
    H ^= Arity * 0x9e3779b97f4a7c15ull;
    return H % NumBins;
  }

  Bin &binForTuple(const Tuple &T) {
    if (T.empty() || !T.front().isDatum())
      return Wildcard;
    return Bins[hashKey(T.size(), T.front().value())];
  }

  /// The bin a reader registers in; concrete-first-field templates use
  /// their hash bin, others the wildcard bin (which every deposit scans).
  Bin &binForTemplate(const Tuple &T) {
    if (T.empty() || !T.front().isDatum())
      return Wildcard;
    return Bins[hashKey(T.size(), T.front().value())];
  }

  //--- Entry pool ---------------------------------------------------------

  EntryRef makeEntry(Tuple T) {
    Entry *E = nullptr;
    {
      std::lock_guard<SpinLock> Guard(PoolLock);
      if ((E = FreeList))
        FreeList = E->NextFree;
    }
    if (!E)
      E = new Entry(*this, Heap);
    E->Refs.store(1, std::memory_order_relaxed);
    E->Fields = std::move(T);
    E->Flow = obs::currentFlowId();
    E->Removed = false;
    for (Field &F : E->Fields)
      if (F.isDatum())
        Heap.addRoot(F.valueSlot());
    return EntryRef::adopt(E);
  }

  //--- Deposit ------------------------------------------------------------

  void deposit(EntryRef E) {
    Bin &B = binForTuple(E->Fields);
    bool AllDatum = true;
    for (const Field &F : E->Fields)
      if (!F.isDatum()) {
        AllDatum = false;
        break;
      }
    if (AllDatum)
      depositDirect(B, std::move(E));
    else
      depositPotential(B, std::move(E));
  }

  /// Collects the threads a deposit decides to wake under the bin locks;
  /// the unparks run after every lock is released. One deposit usually
  /// wakes at most one thread, so the overflow vector stays untouched.
  struct WakeSet {
    ThreadRef First;
    std::vector<ThreadRef> More;
    /// Proxy completions collected under the bin locks (each entry holds
    /// its own ProxyReg reference); run by completeProxies outside them.
    std::vector<ProxyReg *> DeliveredProxies;
    std::vector<ProxyReg *> NudgedProxies;

    void add(ThreadRef T) {
      if (!First)
        First = std::move(T);
      else
        More.push_back(std::move(T));
    }
    void fire() const {
      HandoffList<TupleWaiter>::wake(First);
      for (const ThreadRef &T : More)
        HandoffList<TupleWaiter>::wake(T);
    }
  };

  /// Does \p W's template accept an all-datum tuple \p Fields? This *is*
  /// the full match for datum tuples, so a delivery needs no re-check by
  /// the waiter. The entry is unpublished or freshly published under the
  /// caller's locks, so its fields are stable without taking its lock.
  static bool waiterAccepts(const TupleWaiter &W, const Tuple &Fields) {
    if (W.Arity != Fields.size())
      return false;
    const Tuple &T = *W.Template;
    for (std::size_t I = 0; I != T.size(); ++I)
      if (!T[I].isFormal() &&
          !gc::valueEqual(T[I].value(), Fields[I].value()))
        return false;
    return true;
  }

  /// Deposits an all-datum tuple. Under the home bin's lock (wildcard
  /// nested for cross-bin waiters — lock order is always bin, then
  /// wildcard), every compatible rd waiter receives a reference and the
  /// first compatible take waiter consumes the entry outright: no insert,
  /// no broadcast, exactly the matched threads wake.
  void depositDirect(Bin &B, EntryRef E) {
    WakeSet Wakes;
    std::uint32_t Deliveries = 0;
    bool Consumed = false;

    auto Offer = [&](Bin &L) { // caller holds L.Lock
      L.Waiters.visit([&](TupleWaiter &W) {
        if (!waiterAccepts(W, E->Fields))
          return true;
        W.Slot = E;
        if (W.IsProxy) {
          auto &P = static_cast<ProxyReg &>(W);
          P.retain(); // dropped by finishDeliveredProxy
          L.Waiters.deliver(W);
          Wakes.DeliveredProxies.push_back(&P);
        } else {
          Wakes.add(L.Waiters.deliver(W));
        }
        ++Deliveries;
        if (W.Remove) {
          Consumed = true;
          return false;
        }
        return true;
      });
    };

    {
      std::lock_guard<SpinLock> Guard(B.Lock);
      Offer(B);
      if (!Consumed && &B != &Wildcard && Wildcard.Waiters.count() != 0) {
        std::lock_guard<SpinLock> WGuard(Wildcard.Lock);
        Offer(Wildcard);
      }
      if (!Consumed)
        publishLocked(B, E);
    }
    chargeDeposit(Deliveries, Deliveries);
    Wakes.fire();
    completeProxies(Wakes);
  }

  /// Deposits a tuple with live-thread fields. It cannot be fully matched
  /// under a spinlock (resolution may steal and run user code), so it is
  /// inserted first and prefilter-compatible waiters are *nudged* to
  /// re-scan — still no blanket broadcast, but more than one nudge when
  /// several waiters plausibly match, since a nudged waiter may fail
  /// resolution and park again.
  void depositPotential(Bin &B, EntryRef E) {
    WakeSet Wakes;
    std::uint32_t Nudges = 0;

    auto NudgeCompatible = [&](Bin &L) { // caller holds L.Lock
      L.Waiters.visit([&](TupleWaiter &W) {
        if (prefilter(*E, *W.Template)) {
          if (W.IsProxy) {
            auto &P = static_cast<ProxyReg &>(W);
            P.retain(); // dropped by scheduleProxyRescan or its driver
            L.Waiters.nudge(W);
            Wakes.NudgedProxies.push_back(&P);
          } else {
            Wakes.add(L.Waiters.nudge(W));
          }
          ++Nudges;
        }
        return true;
      });
    };

    {
      std::lock_guard<SpinLock> Guard(B.Lock);
      publishLocked(B, E);
      NudgeCompatible(B);
      if (&B != &Wildcard && Wildcard.Waiters.count() != 0) {
        std::lock_guard<SpinLock> WGuard(Wildcard.Lock);
        NudgeCompatible(Wildcard);
      }
    }
    if (&B == &Wildcard) {
      // A wildcard-bin tuple (live first field) can match any template.
      // The entry is already published, so the concrete bins can be
      // visited one at a time — never wildcard-then-bin, preserving the
      // bin→wildcard lock order.
      for (Bin &C : Bins) {
        if (C.Waiters.count() == 0)
          continue;
        std::lock_guard<SpinLock> Guard(C.Lock);
        NudgeCompatible(C);
      }
    }
    chargeDeposit(0, Nudges);
    Wakes.fire();
    completeProxies(Wakes);
  }

  void chargeDeposit(std::uint32_t Deliveries, std::uint32_t Wakes) {
    if (Deliveries) {
      Stats.Handoffs.fetch_add(Deliveries, std::memory_order_relaxed);
      STING_TRACE_EVENT(TupleHandoff, selfId(), Deliveries);
    }
    if (!Wakes)
      return;
    Stats.Wakeups.fetch_add(Wakes, std::memory_order_relaxed);
    if (VirtualProcessor *Vp = currentVp()) {
      Vp->stats().TupleHandoffs.add(Deliveries);
      Vp->stats().TupleWakeups.add(Wakes);
    }
  }

  /// Caller holds B.Lock.
  void publishLocked(Bin &B, const EntryRef &E) {
    E->retain(); // the Items reference
    B.Items.pushBack(*E);
    B.EntryCount.fetch_add(1, std::memory_order_relaxed);
  }

  /// Caller holds B.Lock. Unpublishes \p E; \returns false if a competing
  /// taker already did.
  bool detachLocked(Bin &B, Entry &E) {
    {
      std::lock_guard<SpinLock> Guard(E.Lock);
      if (E.Removed)
        return false;
      E.Removed = true;
    }
    IntrusiveList<Entry, BinItemTag>::erase(E);
    B.EntryCount.fetch_sub(1, std::memory_order_relaxed);
    E.release(); // the Items reference; callers hold their own pin
    return true;
  }

  bool removeFromBin(Bin &B, Entry &E) {
    std::lock_guard<SpinLock> Guard(B.Lock);
    return detachLocked(B, E);
  }

  //--- Waiter-side registration maintenance -------------------------------

  /// Ends \p W's registration episode. \returns the entry a racing deposit
  /// delivered, if any — the caller owns it (return it or re-deposit it).
  EntryRef settle(Bin &Home, TupleWaiter &W) {
    std::lock_guard<SpinLock> Guard(Home.Lock);
    if (Home.Waiters.finish(W) == HandoffState::Delivered)
      return std::move(W.Slot);
    return EntryRef();
  }

  /// Unwind flavor: a take delivery was consumed from the space and must
  /// go back in; an rd delivery is only a reference and is dropped.
  void settleUnwind(Bin &Home, TupleWaiter &W, bool Remove) {
    if (EntryRef Got = settle(Home, W); Got && Remove)
      deposit(std::move(Got));
  }

  //--- Registration proxies (the multi-VM hook) ---------------------------

  void disposeProxy(ProxyReg *P) {
    for (Field &F : *P->Owned)
      if (F.isDatum())
        Heap.removeRoot(F.valueSlot());
    delete P;
  }

  void releaseProxy(ProxyReg *P) {
    if (P->release())
      disposeProxy(P);
  }

  /// Drops the registry's reference to \p P if the map still holds it (a
  /// retract may have erased it first, in which case it also released).
  void eraseRegistration(ProxyReg *P) {
    bool Erased = false;
    {
      std::lock_guard<SpinLock> Guard(RegLock);
      auto It = Registry.find(P->Id);
      if (It != Registry.end() && It->second == P) {
        Registry.erase(It);
        Erased = true;
      }
    }
    if (Erased)
      releaseProxy(P);
  }

  /// Runs the proxy completions a deposit collected, outside every lock.
  void completeProxies(WakeSet &Wakes) {
    for (ProxyReg *P : Wakes.DeliveredProxies)
      finishDeliveredProxy(P);
    for (ProxyReg *P : Wakes.NudgedProxies)
      scheduleProxyRescan(P);
  }

  /// Completes a proxy registration the deposit path delivered to: fires
  /// the callback outside every lock, then drops the registry reference.
  /// Runs on the depositing thread. A driver that found its own match may
  /// have raced us for the outcome — the Delivering flag arbitrates, and
  /// the loser's consumed take goes back into the space.
  void finishDeliveredProxy(ProxyReg *P) {
    Bin &Home = binForTemplate(*P->Template);
    EntryRef Got;
    {
      std::lock_guard<SpinLock> Guard(Home.Lock);
      Got = std::move(P->Slot);
    }
    bool Own = false;
    if (Got) {
      std::lock_guard<SpinLock> Reg(RegLock);
      if (!P->Delivering) {
        P->Delivering = true;
        Own = true;
      }
    }
    if (Own) {
      Match M = matchFromEntry(Got, *P->Template);
      P->Deliver(P->Id, std::move(M));
      eraseRegistration(P);
    } else if (Got && P->Remove) {
      deposit(std::move(Got)); // a competing completion won; conserve
    }
    releaseProxy(P); // the deposit path's reference
  }

  /// A potential (live-thread) deposit nudged a proxy: the registration is
  /// unlinked and must be re-scanned on its behalf, since no local thread
  /// wakes to do it. Forks a driver so the deposit doesn't pay for the
  /// steals/resolution the rescan may perform.
  void scheduleProxyRescan(ProxyReg *P) {
    bool Fork = false;
    {
      std::lock_guard<SpinLock> Reg(RegLock);
      if (P->Canceled || P->Delivering) {
        // A retract or a delivery already owns the registration.
      } else if (P->Driving) {
        P->Renudged = true; // the active driver goes around once more
      } else {
        P->Driving = true;
        Fork = true;
      }
    }
    if (!Fork) {
      releaseProxy(P);
      return;
    }
    // The deposit path's reference transfers to the forked driver.
    ThreadController::forkThread([this, P]() -> AnyValue {
      driveProxy(P);
      return AnyValue();
    });
  }

  /// The proxy rescan driver: ensures the registration is armed, scans on
  /// its behalf, and either delivers through the callback, leaves the
  /// registration parked in its home bin, or bows out to a concurrent
  /// deliverer/retractor. At most one driver runs per registration
  /// (Driving); the caller set the flag and handed us a reference.
  void driveProxy(ProxyReg *P) {
    Bin &Home = binForTemplate(*P->Template);
    for (;;) {
      bool Exit = false;
      {
        std::lock_guard<SpinLock> Reg(RegLock);
        P->Renudged = false; // the scan below covers anything already here
        if (P->Canceled || P->Delivering) {
          P->Driving = false;
          Exit = true;
        } else {
          std::lock_guard<SpinLock> Guard(Home.Lock);
          if (!P->isLinked()) {
            if (P->state() == HandoffState::Delivered) {
              // The depositing thread owns the completion.
              P->Driving = false;
              Exit = true;
            } else {
              Home.Waiters.enqueueDetached(*P); // nudged: re-arm first
            }
          }
        }
      }
      if (Exit)
        break;

      ThreadRef Unresolved;
      std::optional<Match> M;
      try {
        M = scanOnce(*P->Template, P->Remove, /*AllowSteal=*/true,
                     Unresolved);
      } catch (...) {
        // A stolen tuple-thread failed. A local matcher rethrows to its
        // caller; a proxy has none on this machine, so leave the
        // registration armed — local matchers will surface the failure.
        M.reset();
      }
      if (M) {
        // Our scan won; a delivery may have raced it. A consumed take
        // delivery goes back in, never stranded (cf. matchUntil).
        if (EntryRef Extra = settle(Home, *P); Extra && P->Remove)
          deposit(std::move(Extra));
        bool Suppressed = false;
        {
          std::lock_guard<SpinLock> Reg(RegLock);
          if (P->Canceled || P->Delivering)
            Suppressed = true;
          else
            P->Delivering = true; // terminal: no new driver re-arms it
          P->Driving = false;
        }
        if (!Suppressed) {
          P->Deliver(P->Id, std::move(*M));
          eraseRegistration(P);
        } else if (P->Remove) {
          // A retract was reported as armed (or a deposit delivery owns
          // the outcome); conservation: rebuild the consumed tuple.
          Tuple T;
          T.reserve(M->Fields.size());
          for (gc::Value V : M->Fields)
            T.push_back(Field(V));
          deposit(makeEntry(std::move(T)));
        }
        break;
      }

      // Nothing matched. A completion may have raced the scan; only a
      // nudge warrants another pass (Delivered belongs to the depositor,
      // still-linked means stay armed and exit).
      bool Renew = false;
      {
        std::lock_guard<SpinLock> Guard(Home.Lock);
        if (!P->isLinked() && P->state() == HandoffState::Nudged)
          Renew = true;
      }
      if (Renew)
        continue;
      bool Again = false;
      {
        std::lock_guard<SpinLock> Reg(RegLock);
        if (!P->Canceled && P->Renudged)
          Again = true; // a nudge landed after our last look
        else
          P->Driving = false; // leave the registration armed in its bin
      }
      if (!Again)
        break;
    }
    releaseProxy(P);
  }

  //--- Scanning -----------------------------------------------------------

  /// Builds the match from an all-datum entry (a Yes scan hit or a
  /// delivered slot); no lock needed, the fields can no longer change.
  static Match matchFromEntry(const EntryRef &E, const Tuple &Template) {
    std::vector<gc::Value> Values(Template.size());
    for (std::size_t I = 0; I != Template.size(); ++I)
      Values[I] = E->Fields[I].value();
    Match M = buildMatch(Values, Template);
    M.Flow = E->Flow;
    return M;
  }

  /// One pass over the candidate bins. On success returns the match; on
  /// failure sets \p Unresolved to an evaluating thread field worth
  /// waiting on (if any).
  std::optional<Match> scanOnce(const Tuple &Template, bool Remove,
                                bool AllowSteal, ThreadRef &Unresolved) {
    if (!Template.empty() && Template.front().isDatum()) {
      Bin &B = Bins[hashKey(Template.size(), Template.front().value())];
      if (auto M = scanBin(B, Template, Remove, AllowSteal, Unresolved))
        return M;
      return scanBin(Wildcard, Template, Remove, AllowSteal, Unresolved);
    }
    // Formal first field: full scan (the slow path the paper's hashing is
    // designed to avoid); the occupancy gates make it 65 relaxed loads
    // when the space is empty.
    for (Bin &B : Bins)
      if (auto M = scanBin(B, Template, Remove, AllowSteal, Unresolved))
        return M;
    return scanBin(Wildcard, Template, Remove, AllowSteal, Unresolved);
  }

  std::optional<Match> scanBin(Bin &B, const Tuple &Template, bool Remove,
                               bool AllowSteal, ThreadRef &Unresolved) {
    if (B.EntryCount.load(std::memory_order_relaxed) == 0)
      return std::nullopt;

    // Walk under the bin lock; all-datum matches resolve right here and
    // only a live-thread candidate is pinned and resolved outside the
    // lock (stealing runs arbitrary user code). No candidate vector: the
    // common scan allocates nothing.
    std::vector<const Entry *> Waiting; // resolution already failed this pass
    for (;;) {
      EntryRef Ready, Candidate;
      {
        std::lock_guard<SpinLock> Guard(B.Lock);
        for (Entry &E : B.Items) {
          if (!Waiting.empty() &&
              std::find(Waiting.begin(), Waiting.end(), &E) != Waiting.end())
            continue;
          EntryMatch R = matchLocked(E, Template);
          if (R == EntryMatch::No)
            continue;
          if (R == EntryMatch::NeedThread) {
            if (!Candidate)
              Candidate = EntryRef(&E);
            continue;
          }
          Ready = EntryRef(&E);
          if (Remove)
            detachLocked(B, E); // cannot fail: we held the lock throughout
          break;
        }
      }
      if (Ready)
        return matchFromEntry(Ready, Template);
      if (!Candidate)
        return std::nullopt;

      std::vector<gc::Value> Values;
      EntryMatch R = resolveEntry(*Candidate, Template, AllowSteal, Values);
      if (R == EntryMatch::Yes) {
        if (Remove && !removeFromBin(B, *Candidate))
          continue; // a competing taker won; re-walk the bin
        Match M = buildMatch(Values, Template);
        M.Flow = Candidate->Flow;
        return M;
      }
      if (R == EntryMatch::NeedThread) {
        if (!Unresolved)
          Unresolved = firstUnresolvedThread(*Candidate);
        Waiting.push_back(Candidate.get());
        continue; // other candidates may still resolve
      }
      // No: resolution exposed a mismatch (or the entry was removed); the
      // re-walk now skips it via matchLocked.
    }
  }

  /// Matches one entry under the bin lock: arity, removal, and per-field
  /// compatibility. Yes means every field is a datum and matched — the
  /// full match, usable without further resolution.
  EntryMatch matchLocked(Entry &E, const Tuple &Template) {
    if (E.Fields.size() != Template.size())
      return EntryMatch::No;
    std::lock_guard<SpinLock> Guard(E.Lock);
    if (E.Removed)
      return EntryMatch::No;
    EntryMatch R = EntryMatch::Yes;
    for (std::size_t I = 0; I != Template.size(); ++I) {
      const Field &TF = Template[I];
      const Field &EF = E.Fields[I];
      if (EF.isLiveThread()) {
        R = EntryMatch::NeedThread; // formal or datum: need the value
        continue;
      }
      if (!TF.isFormal() && !gc::valueEqual(TF.value(), EF.value()))
        return EntryMatch::No;
    }
    return R;
  }

  /// Cheap compatibility check (arity + datum-datum positions) used to
  /// pick which waiters a potential deposit nudges.
  bool prefilter(Entry &E, const Tuple &Template) {
    if (E.Fields.size() != Template.size())
      return false;
    std::lock_guard<SpinLock> Guard(E.Lock);
    if (E.Removed)
      return false;
    for (std::size_t I = 0; I != Template.size(); ++I) {
      const Field &TF = Template[I];
      const Field &EF = E.Fields[I];
      if (TF.isFormal() || EF.isLiveThread())
        continue;
      if (!gc::valueEqual(TF.value(), EF.value()))
        return false;
    }
    return true;
  }

  /// Full resolution outside the bin lock. Fills \p Values on success.
  EntryMatch resolveEntry(Entry &E, const Tuple &Template, bool AllowSteal,
                          std::vector<gc::Value> &Values) {
    Values.resize(Template.size());
    for (std::size_t I = 0; I != Template.size(); ++I) {
      gc::Value V;
      ThreadRef Pending;
      {
        std::lock_guard<SpinLock> Guard(E.Lock);
        if (E.Removed)
          return EntryMatch::No;
        const Field &EF = E.Fields[I];
        if (EF.isDatum())
          V = EF.value();
        else
          Pending = EF.thread();
      }
      if (Pending) {
        // Resolve the live thread outside every lock: stealing runs the
        // thunk right here on our TCB (paper 4.2's key integration).
        Thread &T = *Pending;
        if (!T.isDetermined()) {
          if (!AllowSteal)
            return EntryMatch::NeedThread;
          if (!ThreadController::trySteal(T) && !T.isDetermined())
            return EntryMatch::NeedThread; // evaluating elsewhere
        }
        T.rethrowIfFailed();
        V = T.result().as<gc::Value>();
        E.resolveField(I, V);
      }
      const Field &TF = Template[I];
      if (!TF.isFormal() && !gc::valueEqual(TF.value(), V))
        return EntryMatch::No;
      Values[I] = V;
    }
    return EntryMatch::Yes;
  }

  ThreadRef firstUnresolvedThread(Entry &E) {
    std::lock_guard<SpinLock> Guard(E.Lock);
    for (const Field &F : E.Fields)
      if (F.isLiveThread() && !F.thread()->isDetermined())
        return F.thread();
    return ThreadRef();
  }

  gc::GlobalHeap &Heap;
  Bin Bins[NumBins];
  Bin Wildcard;
  /// Entry freelist (the pool): recycled nodes keep their storage, so a
  /// steady-state put allocates nothing for the entry itself.
  SpinLock PoolLock;
  Entry *FreeList = nullptr;
  /// Proxy registrations by id. Lock order: RegLock, then a bin lock —
  /// the deposit path (bin lock only) never takes RegLock, so the nesting
  /// is acyclic.
  SpinLock RegLock;
  std::unordered_map<std::uint64_t, ProxyReg *> Registry;
};

void Entry::release() {
  if (Refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
    Owner.recycle(this);
}

} // namespace

std::unique_ptr<detail::TupleSpaceRepBase>
detail::makeHashedRep(gc::GlobalHeap &Heap, TupleSpaceStats &Stats) {
  return std::make_unique<HashedRep>(Heap, Stats);
}

//===----------------------------------------------------------------------===//
// Facade
//===----------------------------------------------------------------------===//

namespace {

/// A successful match continues the depositor's causal flow: the matcher
/// adopts it for its subsequent work (and trace records). Deposits from
/// flow-less contexts leave the matcher's flow untouched.
void adoptMatchFlow(const Match &M) {
  if (!M.Flow)
    return;
  obs::setCurrentFlowId(M.Flow);
  if (Thread *T = currentThread())
    T->setFlowId(M.Flow);
}

} // namespace

TupleSpace::TupleSpace(TupleSpaceRep Rep, gc::GlobalHeap &Heap)
    : Rep(Rep), Heap(&Heap) {
  if (Rep == TupleSpaceRep::Hashed)
    Impl = detail::makeHashedRep(Heap, Stats);
  else
    Impl = detail::makeSpecializedRep(Rep, Heap, Stats);
}

TupleSpace::~TupleSpace() = default;

TupleSpaceRef TupleSpace::create(TupleSpaceRep Rep, gc::GlobalHeap *Heap) {
  return TupleSpaceRef::adopt(
      new TupleSpace(Rep, Heap ? *Heap : sharedHeap()));
}

TupleSpaceRef TupleSpace::create(const TupleOpsProfile &Profile,
                                 gc::GlobalHeap *Heap) {
  return create(chooseRepresentation(Profile), Heap);
}

void TupleSpace::prepare(Tuple &T) {
  // Pass 1: root every young datum slot for the duration. Escaping one
  // field scavenges the caller's young heap, and a scavenge roots only
  // handle scopes / external roots / the remembered set — an unrooted
  // sibling young value would be left behind in from-space (dangling once
  // the space is reused). Pending text/blob fields carry plain bytes, not
  // heap values, so they need no rooting.
  gc::LocalHeap *Mutator = nullptr;
  std::vector<gc::Value *> Rooted;
  for (Field &F : T) {
    if (!F.isDatum() || F.hasPendingText() || F.hasPendingBlob())
      continue;
    gc::Value V = F.value();
    if (V.isObject() && !V.asObject()->isInOld()) {
      STING_CHECK(onStingThread(),
                  "young tuple values require a sting thread to escape");
      if (!Mutator)
        Mutator = &mutatorHeap();
      Mutator->addRoot(F.valueSlot());
      Rooted.push_back(F.valueSlot());
    }
  }

  // Pass 2: resolve. Pending bytes go straight to the shared heap (no
  // young object ever exists for them — the reason net/Wire defers blob
  // allocation here); young values are promoted via escape, with the
  // remaining fields' slots forwarded by the roots above.
  for (Field &F : T) {
    if (!F.isDatum())
      continue;
    if (F.hasPendingText()) {
      F.resolveText(Heap->intern(F.pendingText()));
      continue;
    }
    if (F.hasPendingBlob()) {
      F.resolveBlob(Heap->makeStringShared(F.pendingBlob()));
      continue;
    }
    gc::Value V = F.value();
    if (V.isObject() && !V.asObject()->isInOld())
      F.setValue(Mutator->escape(V));
  }

  for (std::size_t I = Rooted.size(); I != 0; --I)
    Mutator->removeRoot(Rooted[I - 1]);
}

void TupleSpace::put(Tuple T) {
  for (const Field &F : T)
    STING_CHECK(!F.isFormal() && !F.isThunk(),
                "put tuple may not contain formals or thunks");
  prepare(T);
  Stats.Puts.fetch_add(1, std::memory_order_relaxed);
  STING_TRACE_EVENT(TuplePut, currentThread() ? currentThread()->id() : 0,
                    static_cast<std::uint32_t>(T.size()));
  Impl->put(std::move(T));
}

std::vector<ThreadRef> TupleSpace::spawn(Tuple T) {
  STING_CHECK(Rep == TupleSpaceRep::Hashed,
              "spawn requires the general representation");
  Stats.Spawns.fetch_add(1, std::memory_order_relaxed);
  std::vector<ThreadRef> Forked;
  for (Field &F : T) {
    STING_CHECK(!F.isFormal(), "spawn tuple may not contain formals");
    if (!F.isThunk())
      continue;
    ThreadRef Th = ThreadController::forkThread(
        [Code = F.takeThunk()]() mutable -> AnyValue {
          gc::Value V = Code();
          // The value becomes visible to arbitrary matchers: escape it.
          if (V.isObject() && !V.asObject()->isInOld())
            V = mutatorHeap().escape(V);
          return AnyValue(V);
        });
    F.becomeLiveThread(Th);
    Forked.push_back(std::move(Th));
  }
  prepare(T);
  Impl->put(std::move(T));
  return Forked;
}

Match TupleSpace::read(Tuple Template) {
  prepare(Template);
  Stats.Reads.fetch_add(1, std::memory_order_relaxed);
  STING_TRACE_EVENT(TupleRead, currentThread() ? currentThread()->id() : 0,
                    static_cast<std::uint32_t>(Template.size()));
  Match M = Impl->match(std::move(Template), /*Remove=*/false);
  adoptMatchFlow(M);
  return M;
}

Match TupleSpace::take(Tuple Template) {
  prepare(Template);
  Stats.Takes.fetch_add(1, std::memory_order_relaxed);
  STING_TRACE_EVENT(TupleTake, currentThread() ? currentThread()->id() : 0,
                    static_cast<std::uint32_t>(Template.size()));
  Match M = Impl->match(std::move(Template), /*Remove=*/true);
  adoptMatchFlow(M);
  return M;
}

std::optional<Match> TupleSpace::readUntil(Tuple Template, Deadline D) {
  prepare(Template);
  Stats.Reads.fetch_add(1, std::memory_order_relaxed);
  STING_TRACE_EVENT(TupleRead, currentThread() ? currentThread()->id() : 0,
                    static_cast<std::uint32_t>(Template.size()));
  auto M = Impl->matchUntil(Template, /*Remove=*/false, D);
  if (M)
    adoptMatchFlow(*M);
  return M;
}

std::optional<Match> TupleSpace::takeUntil(Tuple Template, Deadline D) {
  prepare(Template);
  Stats.Takes.fetch_add(1, std::memory_order_relaxed);
  STING_TRACE_EVENT(TupleTake, currentThread() ? currentThread()->id() : 0,
                    static_cast<std::uint32_t>(Template.size()));
  auto M = Impl->matchUntil(Template, /*Remove=*/true, D);
  if (M)
    adoptMatchFlow(*M);
  return M;
}

std::optional<Match> TupleSpace::tryRead(Tuple Template) {
  prepare(Template);
  // Attempts are counted like the blocking variants (see TupleSpaceStats).
  Stats.Reads.fetch_add(1, std::memory_order_relaxed);
  auto M = Impl->tryMatch(std::move(Template), /*Remove=*/false);
  if (M)
    adoptMatchFlow(*M);
  return M;
}

std::optional<Match> TupleSpace::tryTake(Tuple Template) {
  prepare(Template);
  Stats.Takes.fetch_add(1, std::memory_order_relaxed);
  auto M = Impl->tryMatch(std::move(Template), /*Remove=*/true);
  if (M)
    adoptMatchFlow(*M);
  return M;
}

std::size_t TupleSpace::size() const { return Impl->size(); }

bool TupleSpace::registerProxy(std::uint64_t Id, Tuple Template, bool Remove,
                               ProxyDeliverFn Deliver) {
  for (const Field &F : Template)
    STING_CHECK(!F.isThunk(), "proxy template may not contain thunks");
  prepare(Template);
  (Remove ? Stats.Takes : Stats.Reads).fetch_add(1, std::memory_order_relaxed);
  return Impl->registerProxy(Id, std::move(Template), Remove,
                             std::move(Deliver));
}

bool TupleSpace::retractProxy(std::uint64_t Id) {
  return Impl->retractProxy(Id);
}

} // namespace sting
