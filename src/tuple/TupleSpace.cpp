//===- tuple/TupleSpace.cpp - Facade and the hashed representation ----------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// The general representation follows paper section 4.2: a hash table of
// passive tuples (HP) and, per bin, a queue of blocked readers (HB), with
// "a mutex with every hash bin rather than a global mutex on the entire
// hash table". Tuples whose first field cannot be hashed (live threads)
// live in a wildcard bin scanned by every reader.
//
// Thread fields integrate with stealing: a reader that needs the value of
// a delayed/scheduled thread found in a tuple steals it via threadWait; a
// reader blocked on an *evaluating* thread field waits on that thread
// directly (the paper: "P may choose to either block on one (or both)
// thread(s), or examine other potentially matching tuples").
//
//===----------------------------------------------------------------------===//

#include "tuple/TupleSpace.h"

#include "core/Current.h"
#include "core/Gc.h"
#include "core/ThreadController.h"
#include "obs/Flow.h"
#include "obs/TraceBuffer.h"
#include "gc/GlobalHeap.h"
#include "gc/Object.h"
#include "sync/ParkList.h"
#include "tuple/RepBase.h"

#include <memory>
#include <mutex>
#include <vector>

namespace sting {

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

const char *tupleSpaceRepName(TupleSpaceRep Rep) {
  switch (Rep) {
  case TupleSpaceRep::Hashed:
    return "hashed";
  case TupleSpaceRep::Queue:
    return "queue";
  case TupleSpaceRep::Bag:
    return "bag";
  case TupleSpaceRep::Set:
    return "set";
  case TupleSpaceRep::SharedVariable:
    return "shared-variable";
  case TupleSpaceRep::Semaphore:
    return "semaphore";
  case TupleSpaceRep::Vector:
    return "vector";
  }
  STING_UNREACHABLE("bad tuple-space representation");
}

TupleSpaceRep chooseRepresentation(const TupleOpsProfile &P) {
  if (P.TokensOnly)
    return TupleSpaceRep::Semaphore;
  if (P.SingleCell)
    return TupleSpaceRep::SharedVariable;
  if (P.IndexedAccess)
    return TupleSpaceRep::Vector;
  if (!P.UsesTemplates && P.SingletonTuples) {
    if (P.OrderedConsumption)
      return TupleSpaceRep::Queue;
    return P.AllowsDuplicates ? TupleSpaceRep::Bag : TupleSpaceRep::Set;
  }
  return TupleSpaceRep::Hashed;
}

std::size_t detail::bindingCount(const Tuple &Template) {
  std::size_t Count = 0;
  for (const Field &F : Template)
    if (F.isFormal())
      Count = std::max(Count, std::size_t(F.formalIndex()) + 1);
  return Count;
}

Match detail::buildMatch(const std::vector<gc::Value> &Values,
                         const Tuple &Template) {
  Match M;
  M.Fields = Values;
  M.Bindings.resize(bindingCount(Template), gc::Value::nil());
  for (std::size_t I = 0; I != Template.size(); ++I)
    if (Template[I].isFormal())
      M.Bindings[Template[I].formalIndex()] = Values[I];
  return M;
}

//===----------------------------------------------------------------------===//
// Hashed representation
//===----------------------------------------------------------------------===//

namespace {

using namespace sting::detail;

constexpr std::size_t NumBins = 64;

/// A deposited tuple. Shared ownership: matchers may hold an entry across
/// thread-field resolution while a competing taker removes it.
struct Entry {
  explicit Entry(Tuple T, gc::GlobalHeap &Heap)
      : Fields(std::move(T)), Heap(Heap), Flow(obs::currentFlowId()) {
    for (Field &F : Fields)
      if (F.isDatum())
        Heap.addRoot(F.valueSlot());
  }

  ~Entry() {
    for (Field &F : Fields)
      if (F.isDatum())
        Heap.removeRoot(F.valueSlot());
  }

  /// Replaces a determined live-thread field with its value, once.
  void resolveField(std::size_t I, gc::Value V) {
    std::lock_guard<SpinLock> Guard(Lock);
    if (!Fields[I].isLiveThread())
      return;
    Fields[I].becomeDatum(V);
    Heap.addRoot(Fields[I].valueSlot());
  }

  Tuple Fields;
  gc::GlobalHeap &Heap;
  SpinLock Lock; ///< guards live-thread resolution
  /// The depositor's causal flow at put time, handed to the matcher.
  std::uint64_t Flow;
  bool Removed = false;
};

using EntryRef = std::shared_ptr<Entry>;

/// One hash bin: a lock, the passive tuples (HP row), and the blocked
/// readers (HB row).
struct Bin {
  SpinLock Lock;
  std::vector<EntryRef> Items;
  ParkList Waiters;
};

/// Result of matching one entry against a template.
enum class EntryMatch {
  No,         ///< incompatible
  Yes,        ///< all fields matched and resolved
  NeedThread, ///< datum fields match; a thread field is unresolved
};

class HashedRep final : public TupleSpaceRepBase {
public:
  explicit HashedRep(gc::GlobalHeap &Heap) : Heap(Heap) {}

  void put(Tuple T) override {
    auto E = std::make_shared<Entry>(std::move(T), Heap);
    Bin &B = binForTuple(E->Fields);
    {
      std::lock_guard<SpinLock> Guard(B.Lock);
      B.Items.push_back(E);
    }
    DepositEpoch.fetch_add(1, std::memory_order_release);
    Count.fetch_add(1, std::memory_order_release);
    // Wake this bin's readers and the formal-first-field readers parked on
    // the wildcard bin.
    B.Waiters.wakeAll();
    if (&B != &Wildcard)
      Wildcard.Waiters.wakeAll();
    else
      broadcast(); // a wildcard tuple can match any template
  }

  std::optional<Match> tryMatch(const Tuple &Template,
                                bool Remove) override {
    ThreadRef Unresolved;
    return scanOnce(Template, Remove, /*AllowSteal=*/true, Unresolved);
  }

  std::optional<Match> matchUntil(const Tuple &Template, bool Remove,
                                  TupleSpaceStats &Stats,
                                  Deadline D) override {
    for (;;) {
      // Snapshot the deposit epoch *before* scanning: a deposit landing
      // mid-scan advances it, so the await below cannot sleep through it.
      std::uint64_t Epoch = DepositEpoch.load(std::memory_order_acquire);

      ThreadRef Unresolved;
      if (auto M =
              scanOnce(Template, Remove, /*AllowSteal=*/true, Unresolved))
        return M;

      // Scan-before-deadline ordering: the scan above is the final
      // re-check, so a deposit racing the deadline is never lost.
      if (D.expired()) {
        STING_TRACE_EVENT(TimeoutFired,
                          currentThread() ? currentThread()->id() : 0, 2);
        return std::nullopt;
      }

      if (Unresolved) {
        // Wait on the thread element itself; its completion may complete
        // our match. (Steals of delayed/scheduled threads happen inside
        // threadWaitFor.) On timeout, loop back: the re-scan then falls
        // through to the expired() check above.
        Stats.Blocks.fetch_add(1, std::memory_order_relaxed);
        STING_TRACE_EVENT(TupleBlock,
                          currentThread() ? currentThread()->id() : 0, 1);
        ThreadController::threadWaitFor(*Unresolved, D);
        continue;
      }

      // Block until another deposit lands (the HB row).
      Stats.Blocks.fetch_add(1, std::memory_order_relaxed);
      STING_TRACE_EVENT(TupleBlock,
                        currentThread() ? currentThread()->id() : 0, 0);
      Bin &B = binForTemplate(Template);
      B.Waiters.awaitUntil(
          [&] {
            return DepositEpoch.load(std::memory_order_acquire) != Epoch;
          },
          this, D);
    }
  }

  std::size_t size() const override {
    return Count.load(std::memory_order_acquire);
  }

private:
  static std::size_t hashKey(std::size_t Arity, gc::Value V) {
    std::uint64_t H = gc::valueHash(V);
    H ^= Arity * 0x9e3779b97f4a7c15ull;
    return H % NumBins;
  }

  Bin &binForTuple(const Tuple &T) {
    if (T.empty() || !T.front().isDatum())
      return Wildcard;
    return Bins[hashKey(T.size(), T.front().value())];
  }

  /// The bin a reader parks on; concrete-first-field templates use their
  /// hash bin, others the wildcard bin (which every deposit wakes).
  Bin &binForTemplate(const Tuple &T) {
    if (T.empty() || !T.front().isDatum())
      return Wildcard;
    return Bins[hashKey(T.size(), T.front().value())];
  }

  /// One pass over the candidate bins. On success returns the match; on
  /// failure sets \p Unresolved to an evaluating thread field worth
  /// waiting on (if any).
  std::optional<Match> scanOnce(const Tuple &Template, bool Remove,
                                bool AllowSteal, ThreadRef &Unresolved) {
    if (!Template.empty() && Template.front().isDatum()) {
      Bin &B = Bins[hashKey(Template.size(), Template.front().value())];
      if (auto M = scanBin(B, Template, Remove, AllowSteal, Unresolved))
        return M;
      return scanBin(Wildcard, Template, Remove, AllowSteal, Unresolved);
    }
    // Formal first field: full scan (the slow path the paper's hashing is
    // designed to avoid).
    for (Bin &B : Bins)
      if (auto M = scanBin(B, Template, Remove, AllowSteal, Unresolved))
        return M;
    return scanBin(Wildcard, Template, Remove, AllowSteal, Unresolved);
  }

  std::optional<Match> scanBin(Bin &B, const Tuple &Template, bool Remove,
                               bool AllowSteal, ThreadRef &Unresolved) {
    // Snapshot candidates under the bin lock; resolve thread fields
    // outside it (stealing runs arbitrary user code).
    std::vector<EntryRef> Candidates;
    {
      std::lock_guard<SpinLock> Guard(B.Lock);
      for (const EntryRef &E : B.Items)
        if (prefilter(*E, Template))
          Candidates.push_back(E);
    }

    for (const EntryRef &E : Candidates) {
      std::vector<gc::Value> Values;
      EntryMatch R = resolveEntry(*E, Template, AllowSteal, Values);
      if (R == EntryMatch::NeedThread) {
        if (!Unresolved)
          Unresolved = firstUnresolvedThread(*E);
        continue;
      }
      if (R != EntryMatch::Yes)
        continue;
      if (Remove && !removeEntry(B, E))
        continue; // a competing taker won; keep scanning
      Match M = buildMatch(Values, Template);
      M.Flow = E->Flow;
      return M;
    }
    return std::nullopt;
  }

  /// Cheap compatibility check under the bin lock: arity and datum-datum
  /// positions only.
  bool prefilter(Entry &E, const Tuple &Template) {
    if (E.Fields.size() != Template.size())
      return false;
    std::lock_guard<SpinLock> Guard(E.Lock);
    if (E.Removed)
      return false;
    for (std::size_t I = 0; I != Template.size(); ++I) {
      const Field &TF = Template[I];
      const Field &EF = E.Fields[I];
      if (TF.isFormal() || EF.isLiveThread())
        continue;
      if (!gc::valueEqual(TF.value(), EF.value()))
        return false;
    }
    return true;
  }

  /// Full resolution outside the bin lock. Fills \p Values on success.
  EntryMatch resolveEntry(Entry &E, const Tuple &Template, bool AllowSteal,
                          std::vector<gc::Value> &Values) {
    Values.resize(Template.size());
    for (std::size_t I = 0; I != Template.size(); ++I) {
      gc::Value V;
      ThreadRef Pending;
      {
        std::lock_guard<SpinLock> Guard(E.Lock);
        if (E.Removed)
          return EntryMatch::No;
        const Field &EF = E.Fields[I];
        if (EF.isDatum())
          V = EF.value();
        else
          Pending = EF.thread();
      }
      if (Pending) {
        // Resolve the live thread outside every lock: stealing runs the
        // thunk right here on our TCB (paper 4.2's key integration).
        Thread &T = *Pending;
        if (!T.isDetermined()) {
          if (!AllowSteal)
            return EntryMatch::NeedThread;
          if (!ThreadController::trySteal(T) && !T.isDetermined())
            return EntryMatch::NeedThread; // evaluating elsewhere
        }
        T.rethrowIfFailed();
        V = T.result().as<gc::Value>();
        E.resolveField(I, V);
      }
      const Field &TF = Template[I];
      if (!TF.isFormal() && !gc::valueEqual(TF.value(), V))
        return EntryMatch::No;
      Values[I] = V;
    }
    return EntryMatch::Yes;
  }

  ThreadRef firstUnresolvedThread(Entry &E) {
    std::lock_guard<SpinLock> Guard(E.Lock);
    for (const Field &F : E.Fields)
      if (F.isLiveThread() && !F.thread()->isDetermined())
        return F.thread();
    return ThreadRef();
  }

  /// Removes \p E from \p B; \returns false if someone else already did.
  bool removeEntry(Bin &B, const EntryRef &E) {
    std::lock_guard<SpinLock> Guard(B.Lock);
    for (auto It = B.Items.begin(); It != B.Items.end(); ++It) {
      if (It->get() != E.get())
        continue;
      {
        std::lock_guard<SpinLock> EGuard(E->Lock);
        E->Removed = true;
      }
      B.Items.erase(It);
      Count.fetch_sub(1, std::memory_order_release);
      return true;
    }
    return false;
  }

  /// Wakes every parked reader (used when a wildcard tuple arrives).
  void broadcast() {
    for (Bin &B : Bins)
      B.Waiters.wakeAll();
    Wildcard.Waiters.wakeAll();
  }

  gc::GlobalHeap &Heap;
  Bin Bins[NumBins];
  Bin Wildcard;
  std::atomic<std::size_t> Count{0};
  /// Machine-wide deposit counter; readers snapshot it before scanning so
  /// a racing deposit is never slept through.
  std::atomic<std::uint64_t> DepositEpoch{0};
};

} // namespace

std::unique_ptr<detail::TupleSpaceRepBase>
detail::makeHashedRep(gc::GlobalHeap &Heap) {
  return std::make_unique<HashedRep>(Heap);
}

//===----------------------------------------------------------------------===//
// Facade
//===----------------------------------------------------------------------===//

namespace {

/// A successful match continues the depositor's causal flow: the matcher
/// adopts it for its subsequent work (and trace records). Deposits from
/// flow-less contexts leave the matcher's flow untouched.
void adoptMatchFlow(const Match &M) {
  if (!M.Flow)
    return;
  obs::setCurrentFlowId(M.Flow);
  if (Thread *T = currentThread())
    T->setFlowId(M.Flow);
}

} // namespace

TupleSpace::TupleSpace(TupleSpaceRep Rep, gc::GlobalHeap &Heap)
    : Rep(Rep), Heap(&Heap) {
  if (Rep == TupleSpaceRep::Hashed)
    Impl = detail::makeHashedRep(Heap);
  else
    Impl = detail::makeSpecializedRep(Rep, Heap);
}

TupleSpace::~TupleSpace() = default;

TupleSpaceRef TupleSpace::create(TupleSpaceRep Rep, gc::GlobalHeap *Heap) {
  return TupleSpaceRef::adopt(
      new TupleSpace(Rep, Heap ? *Heap : sharedHeap()));
}

TupleSpaceRef TupleSpace::create(const TupleOpsProfile &Profile,
                                 gc::GlobalHeap *Heap) {
  return create(chooseRepresentation(Profile), Heap);
}

void TupleSpace::prepare(Tuple &T) {
  // Pass 1: root every young datum slot for the duration. Escaping one
  // field scavenges the caller's young heap, and a scavenge roots only
  // handle scopes / external roots / the remembered set — an unrooted
  // sibling young value would be left behind in from-space (dangling once
  // the space is reused). Pending text/blob fields carry plain bytes, not
  // heap values, so they need no rooting.
  gc::LocalHeap *Mutator = nullptr;
  std::vector<gc::Value *> Rooted;
  for (Field &F : T) {
    if (!F.isDatum() || F.hasPendingText() || F.hasPendingBlob())
      continue;
    gc::Value V = F.value();
    if (V.isObject() && !V.asObject()->isInOld()) {
      STING_CHECK(onStingThread(),
                  "young tuple values require a sting thread to escape");
      if (!Mutator)
        Mutator = &mutatorHeap();
      Mutator->addRoot(F.valueSlot());
      Rooted.push_back(F.valueSlot());
    }
  }

  // Pass 2: resolve. Pending bytes go straight to the shared heap (no
  // young object ever exists for them — the reason net/Wire defers blob
  // allocation here); young values are promoted via escape, with the
  // remaining fields' slots forwarded by the roots above.
  for (Field &F : T) {
    if (!F.isDatum())
      continue;
    if (F.hasPendingText()) {
      F.resolveText(Heap->intern(F.pendingText()));
      continue;
    }
    if (F.hasPendingBlob()) {
      F.resolveBlob(Heap->makeStringShared(F.pendingBlob()));
      continue;
    }
    gc::Value V = F.value();
    if (V.isObject() && !V.asObject()->isInOld())
      F.setValue(Mutator->escape(V));
  }

  for (std::size_t I = Rooted.size(); I != 0; --I)
    Mutator->removeRoot(Rooted[I - 1]);
}

void TupleSpace::put(Tuple T) {
  for (const Field &F : T)
    STING_CHECK(!F.isFormal() && !F.isThunk(),
                "put tuple may not contain formals or thunks");
  prepare(T);
  Stats.Puts.fetch_add(1, std::memory_order_relaxed);
  STING_TRACE_EVENT(TuplePut, currentThread() ? currentThread()->id() : 0,
                    static_cast<std::uint32_t>(T.size()));
  Impl->put(std::move(T));
}

std::vector<ThreadRef> TupleSpace::spawn(Tuple T) {
  STING_CHECK(Rep == TupleSpaceRep::Hashed,
              "spawn requires the general representation");
  Stats.Spawns.fetch_add(1, std::memory_order_relaxed);
  std::vector<ThreadRef> Forked;
  for (Field &F : T) {
    STING_CHECK(!F.isFormal(), "spawn tuple may not contain formals");
    if (!F.isThunk())
      continue;
    ThreadRef Th = ThreadController::forkThread(
        [Code = F.takeThunk()]() mutable -> AnyValue {
          gc::Value V = Code();
          // The value becomes visible to arbitrary matchers: escape it.
          if (V.isObject() && !V.asObject()->isInOld())
            V = mutatorHeap().escape(V);
          return AnyValue(V);
        });
    F.becomeLiveThread(Th);
    Forked.push_back(std::move(Th));
  }
  prepare(T);
  Impl->put(std::move(T));
  return Forked;
}

Match TupleSpace::read(Tuple Template) {
  prepare(Template);
  Stats.Reads.fetch_add(1, std::memory_order_relaxed);
  STING_TRACE_EVENT(TupleRead, currentThread() ? currentThread()->id() : 0,
                    static_cast<std::uint32_t>(Template.size()));
  Match M = Impl->match(std::move(Template), /*Remove=*/false, Stats);
  adoptMatchFlow(M);
  return M;
}

Match TupleSpace::take(Tuple Template) {
  prepare(Template);
  Stats.Takes.fetch_add(1, std::memory_order_relaxed);
  STING_TRACE_EVENT(TupleTake, currentThread() ? currentThread()->id() : 0,
                    static_cast<std::uint32_t>(Template.size()));
  Match M = Impl->match(std::move(Template), /*Remove=*/true, Stats);
  adoptMatchFlow(M);
  return M;
}

std::optional<Match> TupleSpace::readUntil(Tuple Template, Deadline D) {
  prepare(Template);
  Stats.Reads.fetch_add(1, std::memory_order_relaxed);
  STING_TRACE_EVENT(TupleRead, currentThread() ? currentThread()->id() : 0,
                    static_cast<std::uint32_t>(Template.size()));
  auto M = Impl->matchUntil(Template, /*Remove=*/false, Stats, D);
  if (M)
    adoptMatchFlow(*M);
  return M;
}

std::optional<Match> TupleSpace::takeUntil(Tuple Template, Deadline D) {
  prepare(Template);
  Stats.Takes.fetch_add(1, std::memory_order_relaxed);
  STING_TRACE_EVENT(TupleTake, currentThread() ? currentThread()->id() : 0,
                    static_cast<std::uint32_t>(Template.size()));
  auto M = Impl->matchUntil(Template, /*Remove=*/true, Stats, D);
  if (M)
    adoptMatchFlow(*M);
  return M;
}

std::optional<Match> TupleSpace::tryRead(Tuple Template) {
  prepare(Template);
  auto M = Impl->tryMatch(std::move(Template), /*Remove=*/false);
  if (M)
    adoptMatchFlow(*M);
  return M;
}

std::optional<Match> TupleSpace::tryTake(Tuple Template) {
  prepare(Template);
  auto M = Impl->tryMatch(std::move(Template), /*Remove=*/true);
  if (M) {
    Stats.Takes.fetch_add(1, std::memory_order_relaxed);
    adoptMatchFlow(*M);
  }
  return M;
}

std::size_t TupleSpace::size() const { return Impl->size(); }

} // namespace sting
