//===- tuple/Tuple.h - Tuples, templates and matches -------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tuples and templates for first-class tuple spaces (paper section 4.2).
/// "Our system also treats tuples as objects, and tuple operations as
/// binding expressions, not statements."
///
/// A Field is one tuple position:
///   - a datum (tagged gc value; C++ integers and strings convert —
///     strings intern as symbols, so equality is identity),
///   - a *live thread* (the paper's spawn deposits threads as bona fide
///     tuple elements),
///   - a *thunk* (only in spawn: forked into a live thread),
///   - a *formal* ("?x"): only in templates; acquires a binding on match.
///
//===----------------------------------------------------------------------===//

#ifndef STING_TUPLE_TUPLE_H
#define STING_TUPLE_TUPLE_H

#include "core/Thread.h"
#include "gc/Value.h"
#include "support/UniqueFunction.h"

#include <string>
#include <string_view>
#include <vector>

namespace sting {

/// One position of a tuple or template.
class Field {
public:
  enum class Kind : std::uint8_t {
    Datum,      ///< a gc::Value (possibly pending text/blob allocation)
    LiveThread, ///< a running/scheduled thread; its value is the field
    Thunk,      ///< spawn-only: code to fork into a LiveThread
    Formal,     ///< template-only: binds the matched value
  };

  /// Fixnum datum.
  Field(int V) : TheKind(Kind::Datum), V(gc::Value::fixnum(V)) {}
  Field(long V) : TheKind(Kind::Datum), V(gc::Value::fixnum(V)) {}
  Field(long long V) : TheKind(Kind::Datum), V(gc::Value::fixnum(V)) {}

  /// Boolean datum.
  Field(bool B) : TheKind(Kind::Datum), V(gc::Value::boolean(B)) {}

  /// Text datum; interned as a symbol when the tuple enters a space.
  Field(const char *Text)
      : TheKind(Kind::Datum), ThePending(Pending::Text), Text(Text) {}
  Field(std::string_view Text)
      : TheKind(Kind::Datum), ThePending(Pending::Text), Text(Text) {}

  /// Arbitrary tagged value. Young values are escaped to the shared old
  /// generation when the tuple enters a space.
  Field(gc::Value V) : TheKind(Kind::Datum), V(V) {}

  /// A live thread (the paper's threads-in-tuples). The thread's result
  /// must be an AnyValue holding a gc::Value.
  Field(ThreadRef T) : TheKind(Kind::LiveThread), Th(std::move(T)) {}

  /// Spawn-only thunk field.
  Field(UniqueFunction<gc::Value()> Code)
      : TheKind(Kind::Thunk), Code(std::move(Code)) {}

  /// Template formal binding slot \p Index (the paper's ?x).
  static Field formal(unsigned Index) {
    Field F;
    F.TheKind = Kind::Formal;
    F.FormalIndex = Index;
    return F;
  }

  /// Binary datum carried as raw pending bytes; allocated as a String in
  /// the *shared* heap when the tuple enters a space. Decode paths
  /// (net/Wire) use this so building a tuple never allocates young
  /// objects — a young String held unrooted in a half-built tuple would
  /// be lost to any scavenge a later field's allocation triggers.
  static Field blob(std::string_view Bytes) {
    Field F;
    F.TheKind = Kind::Datum;
    F.ThePending = Pending::Blob;
    F.Text.assign(Bytes.data(), Bytes.size());
    return F;
  }

  Kind kind() const { return TheKind; }
  bool isDatum() const { return TheKind == Kind::Datum; }
  bool isFormal() const { return TheKind == Kind::Formal; }
  bool isLiveThread() const { return TheKind == Kind::LiveThread; }
  bool isThunk() const { return TheKind == Kind::Thunk; }

  /// Datum access; pending text/blob must have been resolved by the space.
  gc::Value value() const {
    STING_DCHECK(isDatum() && !hasPendingText() && !hasPendingBlob(),
                 "field has no value yet");
    return V;
  }

  /// Address of the datum slot, for GC root registration by spaces.
  gc::Value *valueSlot() { return &V; }

  bool hasPendingText() const { return ThePending == Pending::Text; }
  bool hasPendingBlob() const { return ThePending == Pending::Blob; }
  const std::string &pendingText() const { return Text; }
  const std::string &pendingBlob() const { return Text; }
  void resolveText(gc::Value Symbol) { resolvePending(Symbol); }
  void resolveBlob(gc::Value String) { resolvePending(String); }
  void setValue(gc::Value NewV) { V = NewV; }

  unsigned formalIndex() const {
    STING_DCHECK(isFormal(), "formalIndex of non-formal");
    return FormalIndex;
  }

  const ThreadRef &thread() const { return Th; }
  UniqueFunction<gc::Value()> takeThunk() { return std::move(Code); }

  /// Converts a thunk field into the live thread that evaluates it.
  void becomeLiveThread(ThreadRef T) {
    STING_DCHECK(isThunk(), "becomeLiveThread on non-thunk");
    TheKind = Kind::LiveThread;
    Th = std::move(T);
    Code.reset();
  }

  /// Replaces a live-thread field with its determined value.
  void becomeDatum(gc::Value NewV) {
    TheKind = Kind::Datum;
    V = NewV;
    Th.reset();
  }

private:
  /// Datum payloads that defer GC-heap allocation until the tuple enters
  /// a space (where they resolve under TupleSpace::prepare's rooting).
  enum class Pending : std::uint8_t { None, Text, Blob };

  Field() = default;

  void resolvePending(gc::Value NewV) {
    V = NewV;
    Text.clear();
    ThePending = Pending::None;
  }

  Kind TheKind = Kind::Datum;
  Pending ThePending = Pending::None;
  gc::Value V;
  std::string Text; ///< pending Text or Blob bytes
  ThreadRef Th;
  UniqueFunction<gc::Value()> Code;
  unsigned FormalIndex = 0;
};

/// The paper's ?x notation: formal(0), formal(1), ...
inline Field formal(unsigned Index) { return Field::formal(Index); }

/// A tuple (or template — templates simply contain Formal fields).
using Tuple = std::vector<Field>;

/// Builds a tuple from field-convertible arguments. (Fields are move-only
/// because thunk fields own their code, so brace-initialization of the
/// vector is unavailable.)
template <typename... Args> Tuple makeTuple(Args &&...As) {
  Tuple T;
  T.reserve(sizeof...(As));
  (T.emplace_back(std::forward<Args>(As)), ...);
  return T;
}

/// The result of a successful read/take: resolved field values plus the
/// bindings acquired by formals, indexed by their formal number.
struct Match {
  std::vector<gc::Value> Fields;
  std::vector<gc::Value> Bindings;
  /// The depositor's causal flow (obs/Flow.h), carried across the
  /// put→take handoff; 0 when the representation does not stamp deposits.
  /// The facade adopts a nonzero flow into the matching thread.
  std::uint64_t Flow = 0;

  gc::Value binding(unsigned Index) const {
    STING_CHECK(Index < Bindings.size(), "formal index out of range");
    return Bindings[Index];
  }
};

} // namespace sting

#endif // STING_TUPLE_TUPLE_H
