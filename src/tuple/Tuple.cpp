//===- tuple/Tuple.cpp - Tuple helpers ---------------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "tuple/Tuple.h"

// Field and Tuple are header-only; this TU anchors the module and hosts
// nothing else at present.
