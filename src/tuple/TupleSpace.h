//===- tuple/TupleSpace.h - First-class tuple spaces -------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First-class tuple spaces (paper section 4.2): "an abstraction of a
/// synchronizing content-addressable memory", with the paper's two design
/// signatures reproduced:
///
///  - the general representation uses hash tables with *a mutex per hash
///    bin* ("this permits multiple producers and consumers of a tuple-space
///    to concurrently access its hash tables"), one table of passive
///    tuples and one of blocked readers;
///
///  - representations can be *specialized* — "tuple-spaces can be
///    specialized as synchronized vectors, queues, sets, shared variables,
///    semaphores, or bags; the operations permitted on tuple-spaces remain
///    invariant over their representation" — via an explicit choice or a
///    usage profile standing in for the paper's type-inference pass [17].
///
/// Live threads are bona fide tuple elements: spawn forks thunk fields into
/// threads; matching applies thread-value to determined threads and
/// *steals* delayed/scheduled ones onto the reader's TCB (section 4.2).
///
//===----------------------------------------------------------------------===//

#ifndef STING_TUPLE_TUPLESPACE_H
#define STING_TUPLE_TUPLESPACE_H

#include "support/Deadline.h"
#include "support/IntrusivePtr.h"
#include "tuple/Tuple.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

namespace sting {

namespace gc {
class GlobalHeap;
} // namespace gc

/// Available tuple-space representations.
enum class TupleSpaceRep : std::uint8_t {
  Hashed,         ///< general fully-associative two-hash-table form
  Queue,          ///< FIFO of singleton tuples
  Bag,            ///< unordered multiset of singleton tuples
  Set,            ///< deduplicated bag
  SharedVariable, ///< one mutable cell
  Semaphore,      ///< counting tokens
  Vector,         ///< indexed cells: tuples of the form [index value]
};

const char *tupleSpaceRepName(TupleSpaceRep Rep);

/// A usage description driving representation choice — the stand-in for
/// the paper's compile-time specialization analysis [17].
struct TupleOpsProfile {
  bool UsesTemplates = true;    ///< reads match on field contents
  bool SingletonTuples = false; ///< every tuple has arity 1
  bool OrderedConsumption = false; ///< FIFO takes
  bool AllowsDuplicates = true;
  bool IndexedAccess = false;   ///< tuples are [index value]
  bool TokensOnly = false;      ///< only counts matter
  bool SingleCell = false;      ///< at most one live tuple
};

/// \returns the most specialized representation consistent with \p Profile.
TupleSpaceRep chooseRepresentation(const TupleOpsProfile &Profile);

/// Operation counters for tests and benchmarks. Puts/Reads/Takes count
/// *attempts* (blocking, timed and try variants alike), not successes;
/// Blocks counts the episodes where a match had to wait.
struct TupleSpaceStats {
  std::atomic<std::uint64_t> Puts{0};
  std::atomic<std::uint64_t> Reads{0};
  std::atomic<std::uint64_t> Takes{0};
  std::atomic<std::uint64_t> Blocks{0};
  std::atomic<std::uint64_t> Spawns{0};
  /// Deposits transferred straight into a registered waiter's slot (no
  /// insert, exactly one wake) — the contended fast path.
  std::atomic<std::uint64_t> Handoffs{0};
  /// Threads woken by deposits (deliveries + re-scan nudges). With parked
  /// takers this should track Puts 1:1, not O(waiters) per put.
  std::atomic<std::uint64_t> Wakeups{0};
};

namespace detail {
class TupleSpaceRepBase;
} // namespace detail

class TupleSpace;
using TupleSpaceRef = IntrusivePtr<TupleSpace>;

/// A first-class tuple space.
class TupleSpace final : public RefCounted<TupleSpace> {
public:
  /// Creates a space with the given representation over \p Heap (defaults
  /// to the calling context's shared old generation).
  static TupleSpaceRef create(TupleSpaceRep Rep = TupleSpaceRep::Hashed,
                              gc::GlobalHeap *Heap = nullptr);

  /// Creates a space whose representation is chosen from \p Profile.
  static TupleSpaceRef create(const TupleOpsProfile &Profile,
                              gc::GlobalHeap *Heap = nullptr);

  TupleSpaceRep representation() const { return Rep; }
  gc::GlobalHeap &heap() const { return *Heap; }
  const TupleSpaceStats &stats() const { return Stats; }

  // --- Operations (invariant over representation) -------------------------

  /// Deposits \p T (Linda's out / the paper's put). Text fields intern as
  /// symbols; young gc values are escaped to the old generation.
  void put(Tuple T);

  /// Blocking non-destructive match (rd).
  Match read(Tuple Template);

  /// Blocking destructive match (get / Linda's in).
  Match take(Tuple Template);

  /// Non-blocking variants.
  std::optional<Match> tryRead(Tuple Template);
  std::optional<Match> tryTake(Tuple Template);

  /// Timed variants: nullopt if \p D expired with no match; a deposit (or
  /// live-thread determination) racing the deadline wins.
  std::optional<Match> readUntil(Tuple Template, Deadline D);
  std::optional<Match> takeUntil(Tuple Template, Deadline D);
  std::optional<Match> readFor(Tuple Template, std::uint64_t Nanos) {
    return readUntil(std::move(Template), Deadline::in(Nanos));
  }
  std::optional<Match> takeFor(Tuple Template, std::uint64_t Nanos) {
    return takeUntil(std::move(Template), Deadline::in(Nanos));
  }

  /// Deposits an *active* tuple: thunk fields are forked into threads that
  /// live in the tuple until resolved by a matcher (the paper's spawn).
  /// \returns the forked threads.
  std::vector<ThreadRef> spawn(Tuple T);

  // --- Registration proxies (the multi-VM hook, DESIGN.md §13) ------------

  /// Delivery callback for a proxied registration. Runs on the depositing
  /// (or registering) thread, outside every tuple-space lock; it fires at
  /// most once per registration. Implementations typically enqueue a wire
  /// frame, so the callback must not block on the space itself.
  using ProxyDeliverFn = std::function<void(std::uint64_t Id, Match M)>;

  /// Arms a blocked-reader registration on behalf of a *remote* waiter: the
  /// template parks in the representation's waiter table (the HB row,
  /// reusing the HandoffList discipline) instead of a connection thread
  /// parking per blocked take. If a tuple already matches, \p Deliver fires
  /// before this returns. For \p Remove registrations the delivered tuple
  /// has been consumed; the caller must hand it to exactly one remote
  /// matcher or re-deposit it. \returns false if the representation does
  /// not support proxies (only Hashed does) or \p Id is already registered.
  bool registerProxy(std::uint64_t Id, Tuple Template, bool Remove,
                     ProxyDeliverFn Deliver);

  /// Retracts a proxied registration. \returns true iff it was still armed
  /// — no delivery fired and none will, mirroring HandoffList::finish's
  /// retract-or-observe contract. False means the id is unknown or a
  /// delivery callback already fired / is in flight (the caller will still
  /// observe it; deliveries and retractions are never both reported as
  /// owning the tuple).
  bool retractProxy(std::uint64_t Id);

  /// Live (passive) tuple count.
  std::size_t size() const;

private:
  friend class RefCounted<TupleSpace>;
  TupleSpace(TupleSpaceRep Rep, gc::GlobalHeap &Heap);
  ~TupleSpace();

  /// Interns pending text and escapes young values in place.
  void prepare(Tuple &T);

  TupleSpaceRep Rep;
  gc::GlobalHeap *Heap;
  TupleSpaceStats Stats; ///< before Impl: representations keep a reference
  std::unique_ptr<detail::TupleSpaceRepBase> Impl;
};

} // namespace sting

#endif // STING_TUPLE_TUPLESPACE_H
