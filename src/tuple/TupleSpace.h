//===- tuple/TupleSpace.h - First-class tuple spaces -------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First-class tuple spaces (paper section 4.2): "an abstraction of a
/// synchronizing content-addressable memory", with the paper's two design
/// signatures reproduced:
///
///  - the general representation uses hash tables with *a mutex per hash
///    bin* ("this permits multiple producers and consumers of a tuple-space
///    to concurrently access its hash tables"), one table of passive
///    tuples and one of blocked readers;
///
///  - representations can be *specialized* — "tuple-spaces can be
///    specialized as synchronized vectors, queues, sets, shared variables,
///    semaphores, or bags; the operations permitted on tuple-spaces remain
///    invariant over their representation" — via an explicit choice or a
///    usage profile standing in for the paper's type-inference pass [17].
///
/// Live threads are bona fide tuple elements: spawn forks thunk fields into
/// threads; matching applies thread-value to determined threads and
/// *steals* delayed/scheduled ones onto the reader's TCB (section 4.2).
///
//===----------------------------------------------------------------------===//

#ifndef STING_TUPLE_TUPLESPACE_H
#define STING_TUPLE_TUPLESPACE_H

#include "support/Deadline.h"
#include "support/IntrusivePtr.h"
#include "tuple/Tuple.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

namespace sting {

namespace gc {
class GlobalHeap;
} // namespace gc

/// Available tuple-space representations.
enum class TupleSpaceRep : std::uint8_t {
  Hashed,         ///< general fully-associative two-hash-table form
  Queue,          ///< FIFO of singleton tuples
  Bag,            ///< unordered multiset of singleton tuples
  Set,            ///< deduplicated bag
  SharedVariable, ///< one mutable cell
  Semaphore,      ///< counting tokens
  Vector,         ///< indexed cells: tuples of the form [index value]
};

const char *tupleSpaceRepName(TupleSpaceRep Rep);

/// A usage description driving representation choice — the stand-in for
/// the paper's compile-time specialization analysis [17].
struct TupleOpsProfile {
  bool UsesTemplates = true;    ///< reads match on field contents
  bool SingletonTuples = false; ///< every tuple has arity 1
  bool OrderedConsumption = false; ///< FIFO takes
  bool AllowsDuplicates = true;
  bool IndexedAccess = false;   ///< tuples are [index value]
  bool TokensOnly = false;      ///< only counts matter
  bool SingleCell = false;      ///< at most one live tuple
};

/// \returns the most specialized representation consistent with \p Profile.
TupleSpaceRep chooseRepresentation(const TupleOpsProfile &Profile);

/// Operation counters for tests and benchmarks. Puts/Reads/Takes count
/// *attempts* (blocking, timed and try variants alike), not successes;
/// Blocks counts the episodes where a match had to wait.
struct TupleSpaceStats {
  std::atomic<std::uint64_t> Puts{0};
  std::atomic<std::uint64_t> Reads{0};
  std::atomic<std::uint64_t> Takes{0};
  std::atomic<std::uint64_t> Blocks{0};
  std::atomic<std::uint64_t> Spawns{0};
  /// Deposits transferred straight into a registered waiter's slot (no
  /// insert, exactly one wake) — the contended fast path.
  std::atomic<std::uint64_t> Handoffs{0};
  /// Threads woken by deposits (deliveries + re-scan nudges). With parked
  /// takers this should track Puts 1:1, not O(waiters) per put.
  std::atomic<std::uint64_t> Wakeups{0};
};

namespace detail {
class TupleSpaceRepBase;
} // namespace detail

class TupleSpace;
using TupleSpaceRef = IntrusivePtr<TupleSpace>;

/// A first-class tuple space.
class TupleSpace final : public RefCounted<TupleSpace> {
public:
  /// Creates a space with the given representation over \p Heap (defaults
  /// to the calling context's shared old generation).
  static TupleSpaceRef create(TupleSpaceRep Rep = TupleSpaceRep::Hashed,
                              gc::GlobalHeap *Heap = nullptr);

  /// Creates a space whose representation is chosen from \p Profile.
  static TupleSpaceRef create(const TupleOpsProfile &Profile,
                              gc::GlobalHeap *Heap = nullptr);

  TupleSpaceRep representation() const { return Rep; }
  gc::GlobalHeap &heap() const { return *Heap; }
  const TupleSpaceStats &stats() const { return Stats; }

  // --- Operations (invariant over representation) -------------------------

  /// Deposits \p T (Linda's out / the paper's put). Text fields intern as
  /// symbols; young gc values are escaped to the old generation.
  void put(Tuple T);

  /// Blocking non-destructive match (rd).
  Match read(Tuple Template);

  /// Blocking destructive match (get / Linda's in).
  Match take(Tuple Template);

  /// Non-blocking variants.
  std::optional<Match> tryRead(Tuple Template);
  std::optional<Match> tryTake(Tuple Template);

  /// Timed variants: nullopt if \p D expired with no match; a deposit (or
  /// live-thread determination) racing the deadline wins.
  std::optional<Match> readUntil(Tuple Template, Deadline D);
  std::optional<Match> takeUntil(Tuple Template, Deadline D);
  std::optional<Match> readFor(Tuple Template, std::uint64_t Nanos) {
    return readUntil(std::move(Template), Deadline::in(Nanos));
  }
  std::optional<Match> takeFor(Tuple Template, std::uint64_t Nanos) {
    return takeUntil(std::move(Template), Deadline::in(Nanos));
  }

  /// Deposits an *active* tuple: thunk fields are forked into threads that
  /// live in the tuple until resolved by a matcher (the paper's spawn).
  /// \returns the forked threads.
  std::vector<ThreadRef> spawn(Tuple T);

  /// Live (passive) tuple count.
  std::size_t size() const;

private:
  friend class RefCounted<TupleSpace>;
  TupleSpace(TupleSpaceRep Rep, gc::GlobalHeap &Heap);
  ~TupleSpace();

  /// Interns pending text and escapes young values in place.
  void prepare(Tuple &T);

  TupleSpaceRep Rep;
  gc::GlobalHeap *Heap;
  TupleSpaceStats Stats; ///< before Impl: representations keep a reference
  std::unique_ptr<detail::TupleSpaceRepBase> Impl;
};

} // namespace sting

#endif // STING_TUPLE_TUPLESPACE_H
