//===- tuple/Specialize.cpp - Specialized tuple-space representations --------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// "In our current implementation, tuple-spaces can be specialized as
// synchronized vectors, queues, sets, shared variables, semaphores, or
// bags; the operations permitted on tuple-spaces remain invariant over
// their representation." (paper section 4.2)
//
// Each representation implements the same put/match interface over storage
// tailored to its access pattern; shape restrictions (singleton tuples,
// [index value] pairs) are checked at the operation boundary.
//
//===----------------------------------------------------------------------===//

#include "tuple/RepBase.h"

#include "gc/GlobalHeap.h"
#include "gc/Object.h"
#include "sync/ParkList.h"

#include <deque>
#include <mutex>
#include <vector>

namespace sting {
namespace {

using namespace sting::detail;

/// Common base for the singleton-tuple representations: storage is a set
/// of gc values registered as GC roots, guarded by one lock, with one
/// waiter list.
class SingletonRepBase : public TupleSpaceRepBase {
public:
  explicit SingletonRepBase(gc::GlobalHeap &Heap) : Heap(Heap) {}

  ~SingletonRepBase() override {
    std::lock_guard<SpinLock> Guard(Lock);
    for (auto &Slot : Slots)
      Heap.removeRoot(Slot.get());
  }

  std::optional<Match> matchUntil(const Tuple &Template, bool Remove,
                                  TupleSpaceStats &Stats,
                                  Deadline D) override {
    std::optional<Match> Result;
    Waiters.awaitUntil(
        [&] {
          Result = tryMatch(Template, Remove);
          return Result.has_value();
        },
        this, D);
    (void)Stats;
    return Result;
  }

protected:
  /// Single-value tuples only.
  static gc::Value soleValue(const Tuple &T) {
    STING_CHECK(T.size() == 1 && T.front().isDatum(),
                "this representation holds singleton tuples");
    return T.front().value();
  }

  /// Registers a stored value as a GC root; returns a stable slot.
  gc::Value *pin(gc::Value V) {
    Slots.push_back(std::make_unique<gc::Value>(V));
    Heap.addRoot(Slots.back().get());
    return Slots.back().get();
  }

  void unpin(gc::Value *Slot) {
    Heap.removeRoot(Slot);
    for (auto It = Slots.begin(); It != Slots.end(); ++It) {
      if (It->get() != Slot)
        continue;
      Slots.erase(It);
      return;
    }
  }

  static Match singletonMatch(gc::Value V, const Tuple &Template) {
    return buildMatch({V}, Template);
  }

  gc::GlobalHeap &Heap;
  SpinLock Lock;
  ParkList Waiters;

private:
  std::vector<std::unique_ptr<gc::Value>> Slots;
};

//===----------------------------------------------------------------------===//
// Queue: ordered singleton tuples, no content matching on take.
//===----------------------------------------------------------------------===//

class QueueRep final : public SingletonRepBase {
public:
  using SingletonRepBase::SingletonRepBase;

  void put(Tuple T) override {
    gc::Value V = soleValue(T);
    {
      std::lock_guard<SpinLock> Guard(Lock);
      Items.push_back(pin(V));
    }
    Waiters.wakeAll();
  }

  std::optional<Match> tryMatch(const Tuple &Template,
                                bool Remove) override {
    checkTemplate(Template);
    std::lock_guard<SpinLock> Guard(Lock);
    if (Items.empty())
      return std::nullopt;
    gc::Value *Slot = Items.front();
    gc::Value V = *Slot;
    if (Remove) {
      Items.pop_front();
      unpin(Slot);
    }
    return singletonMatch(V, Template);
  }

  std::size_t size() const override {
    std::lock_guard<SpinLock> Guard(
        const_cast<SpinLock &>(Lock));
    return Items.size();
  }

private:
  static void checkTemplate(const Tuple &Template) {
    STING_CHECK(Template.size() == 1 && Template.front().isFormal(),
                "queue representation matches only [?x] templates");
  }

  std::deque<gc::Value *> Items;
};

//===----------------------------------------------------------------------===//
// Bag / Set: unordered singleton tuples; templates may be [?x] or [v].
//===----------------------------------------------------------------------===//

class BagRep : public SingletonRepBase {
public:
  BagRep(gc::GlobalHeap &Heap, bool Dedupe)
      : SingletonRepBase(Heap), Dedupe(Dedupe) {}

  void put(Tuple T) override {
    gc::Value V = soleValue(T);
    {
      std::lock_guard<SpinLock> Guard(Lock);
      if (Dedupe) {
        for (gc::Value *Slot : Items)
          if (gc::valueEqual(*Slot, V))
            return; // set semantics: ignore duplicates
      }
      Items.push_back(pin(V));
    }
    Waiters.wakeAll();
  }

  std::optional<Match> tryMatch(const Tuple &Template,
                                bool Remove) override {
    STING_CHECK(Template.size() == 1,
                "bag/set representation holds singleton tuples");
    const Field &TF = Template.front();
    std::lock_guard<SpinLock> Guard(Lock);
    for (auto It = Items.begin(); It != Items.end(); ++It) {
      gc::Value V = **It;
      if (!TF.isFormal() && !gc::valueEqual(TF.value(), V))
        continue;
      if (Remove) {
        gc::Value *Slot = *It;
        Items.erase(It);
        unpin(Slot);
      }
      return singletonMatch(V, Template);
    }
    return std::nullopt;
  }

  std::size_t size() const override {
    std::lock_guard<SpinLock> Guard(const_cast<SpinLock &>(Lock));
    return Items.size();
  }

private:
  bool Dedupe;
  std::vector<gc::Value *> Items;
};

//===----------------------------------------------------------------------===//
// Shared variable: a single cell; put overwrites, read blocks until set,
// take empties.
//===----------------------------------------------------------------------===//

class SharedVariableRep final : public SingletonRepBase {
public:
  explicit SharedVariableRep(gc::GlobalHeap &Heap) : SingletonRepBase(Heap) {
    Heap.addRoot(&Cell);
  }
  ~SharedVariableRep() override { Heap.removeRoot(&Cell); }

  void put(Tuple T) override {
    gc::Value V = soleValue(T);
    {
      std::lock_guard<SpinLock> Guard(Lock);
      Cell = V;
      Full = true;
    }
    Waiters.wakeAll();
  }

  std::optional<Match> tryMatch(const Tuple &Template,
                                bool Remove) override {
    STING_CHECK(Template.size() == 1,
                "shared-variable representation holds singleton tuples");
    const Field &TF = Template.front();
    std::lock_guard<SpinLock> Guard(Lock);
    if (!Full)
      return std::nullopt;
    if (!TF.isFormal() && !gc::valueEqual(TF.value(), Cell))
      return std::nullopt;
    gc::Value V = Cell;
    if (Remove) {
      Full = false;
      Cell = gc::Value::nil();
    }
    return singletonMatch(V, Template);
  }

  std::size_t size() const override {
    std::lock_guard<SpinLock> Guard(const_cast<SpinLock &>(Lock));
    return Full ? 1 : 0;
  }

private:
  gc::Value Cell;
  bool Full = false;
};

//===----------------------------------------------------------------------===//
// Semaphore: only counts matter; the paper's get/put over a singleton
// token tuple compile down to P and V.
//===----------------------------------------------------------------------===//

class SemaphoreRep final : public SingletonRepBase {
public:
  using SingletonRepBase::SingletonRepBase;

  void put(Tuple T) override {
    STING_CHECK(T.size() == 1, "semaphore representation takes one token");
    Tokens.fetch_add(1, std::memory_order_release);
    Waiters.wakeOne();
  }

  std::optional<Match> tryMatch(const Tuple &Template,
                                bool Remove) override {
    STING_CHECK(Template.size() == 1,
                "semaphore representation takes one token");
    if (!Remove) {
      // rd: observe a token without consuming.
      if (Tokens.load(std::memory_order_acquire) == 0)
        return std::nullopt;
      return singletonMatch(gc::Value::fixnum(1), Template);
    }
    std::int64_t Cur = Tokens.load(std::memory_order_relaxed);
    while (Cur > 0) {
      if (Tokens.compare_exchange_weak(Cur, Cur - 1,
                                       std::memory_order_acquire))
        return singletonMatch(gc::Value::fixnum(1), Template);
    }
    return std::nullopt;
  }

  std::size_t size() const override {
    std::int64_t N = Tokens.load(std::memory_order_acquire);
    return N > 0 ? static_cast<std::size_t>(N) : 0;
  }

private:
  std::atomic<std::int64_t> Tokens{0};
};

//===----------------------------------------------------------------------===//
// Vector: tuples of the form [index value]; reads of [index ?x] block
// until the cell is written.
//===----------------------------------------------------------------------===//

class VectorRep final : public TupleSpaceRepBase {
public:
  explicit VectorRep(gc::GlobalHeap &Heap) : Heap(Heap) {}

  ~VectorRep() override {
    std::lock_guard<SpinLock> Guard(Lock);
    for (auto &Cell : Cells)
      if (Cell)
        Heap.removeRoot(Cell.get());
  }

  void put(Tuple T) override {
    STING_CHECK(T.size() == 2 && T[0].isDatum() && T[0].value().isFixnum() &&
                    T[1].isDatum(),
                "vector representation stores [index value] tuples");
    auto Index = static_cast<std::size_t>(T[0].value().asFixnum());
    {
      std::lock_guard<SpinLock> Guard(Lock);
      if (Cells.size() <= Index)
        Cells.resize(Index + 1);
      if (!Cells[Index]) {
        Cells[Index] = std::make_unique<gc::Value>(T[1].value());
        Heap.addRoot(Cells[Index].get());
      } else {
        *Cells[Index] = T[1].value();
      }
    }
    Waiters.wakeAll();
  }

  std::optional<Match> matchUntil(const Tuple &Template, bool Remove,
                                  TupleSpaceStats &, Deadline D) override {
    std::optional<Match> Result;
    Waiters.awaitUntil(
        [&] {
          Result = tryMatch(Template, Remove);
          return Result.has_value();
        },
        this, D);
    return Result;
  }

  std::optional<Match> tryMatch(const Tuple &Template,
                                bool Remove) override {
    STING_CHECK(Template.size() == 2 && Template[0].isDatum() &&
                    Template[0].value().isFixnum(),
                "vector representation matches [index ?x] templates");
    auto Index = static_cast<std::size_t>(Template[0].value().asFixnum());
    std::lock_guard<SpinLock> Guard(Lock);
    if (Index >= Cells.size() || !Cells[Index])
      return std::nullopt;
    gc::Value V = *Cells[Index];
    const Field &TF = Template[1];
    if (!TF.isFormal() && !gc::valueEqual(TF.value(), V))
      return std::nullopt;
    if (Remove) {
      Heap.removeRoot(Cells[Index].get());
      Cells[Index].reset();
    }
    return buildMatch({Template[0].value(), V}, Template);
  }

  std::size_t size() const override {
    std::lock_guard<SpinLock> Guard(const_cast<SpinLock &>(Lock));
    std::size_t N = 0;
    for (const auto &Cell : Cells)
      N += Cell != nullptr;
    return N;
  }

private:
  gc::GlobalHeap &Heap;
  mutable SpinLock Lock;
  std::vector<std::unique_ptr<gc::Value>> Cells;
  ParkList Waiters;
};

} // namespace

std::unique_ptr<detail::TupleSpaceRepBase>
detail::makeSpecializedRep(TupleSpaceRep Rep, gc::GlobalHeap &Heap) {
  switch (Rep) {
  case TupleSpaceRep::Queue:
    return std::make_unique<QueueRep>(Heap);
  case TupleSpaceRep::Bag:
    return std::make_unique<BagRep>(Heap, /*Dedupe=*/false);
  case TupleSpaceRep::Set:
    return std::make_unique<BagRep>(Heap, /*Dedupe=*/true);
  case TupleSpaceRep::SharedVariable:
    return std::make_unique<SharedVariableRep>(Heap);
  case TupleSpaceRep::Semaphore:
    return std::make_unique<SemaphoreRep>(Heap);
  case TupleSpaceRep::Vector:
    return std::make_unique<VectorRep>(Heap);
  case TupleSpaceRep::Hashed:
    break;
  }
  STING_UNREACHABLE("not a specialized representation");
}

} // namespace sting
