//===- tuple/Specialize.cpp - Specialized tuple-space representations --------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// "In our current implementation, tuple-spaces can be specialized as
// synchronized vectors, queues, sets, shared variables, semaphores, or
// bags; the operations permitted on tuple-spaces remain invariant over
// their representation." (paper section 4.2)
//
// Each representation implements the same put/match interface over storage
// tailored to its access pattern; shape restrictions (singleton tuples,
// [index value] pairs) are checked at the operation boundary.
//
// The queue and bag/set forms use the same direct put→waiter handoff as
// the hashed representation (DESIGN.md §12): a put matches registered
// waiters under the storage lock and wakes exactly the threads it
// satisfied — a queue put with parked takers wakes one taker, not all of
// them. The shared-variable, semaphore and vector forms keep ParkList
// (semaphore puts were already wake-one; the others are cell overwrites
// where every waiter's predicate may flip).
//
//===----------------------------------------------------------------------===//

#include "tuple/RepBase.h"

#include "core/Current.h"
#include "core/Tcb.h"
#include "core/ThreadController.h"
#include "gc/GlobalHeap.h"
#include "gc/Object.h"
#include "obs/TraceBuffer.h"
#include "support/Chaos.h"
#include "sync/HandoffList.h"
#include "sync/ParkList.h"

#include <deque>
#include <mutex>
#include <vector>

namespace sting {
namespace {

using namespace sting::detail;

/// Common base for the singleton-tuple representations: storage is a set
/// of gc values registered as GC roots, guarded by one lock, with one
/// waiter list.
class SingletonRepBase : public TupleSpaceRepBase {
public:
  SingletonRepBase(gc::GlobalHeap &Heap, TupleSpaceStats &Stats)
      : TupleSpaceRepBase(Stats), Heap(Heap) {}

  ~SingletonRepBase() override {
    std::lock_guard<SpinLock> Guard(Lock);
    for (auto &Slot : Slots)
      Heap.removeRoot(Slot.get());
  }

  std::optional<Match> matchUntil(const Tuple &Template, bool Remove,
                                  Deadline D) override {
    std::optional<Match> Result;
    Waiters.awaitUntil(
        [&] {
          Result = tryMatch(Template, Remove);
          return Result.has_value();
        },
        this, D);
    return Result;
  }

protected:
  /// Single-value tuples only.
  static gc::Value soleValue(const Tuple &T) {
    STING_CHECK(T.size() == 1 && T.front().isDatum(),
                "this representation holds singleton tuples");
    return T.front().value();
  }

  /// Registers a stored value as a GC root; returns a stable slot.
  gc::Value *pin(gc::Value V) {
    Slots.push_back(std::make_unique<gc::Value>(V));
    Heap.addRoot(Slots.back().get());
    return Slots.back().get();
  }

  void unpin(gc::Value *Slot) {
    Heap.removeRoot(Slot);
    for (auto It = Slots.begin(); It != Slots.end(); ++It) {
      if (It->get() != Slot)
        continue;
      Slots.erase(It);
      return;
    }
  }

  static Match singletonMatch(gc::Value V, const Tuple &Template) {
    return buildMatch({V}, Template);
  }

  gc::GlobalHeap &Heap;
  SpinLock Lock;
  ParkList Waiters;

private:
  std::vector<std::unique_ptr<gc::Value>> Slots;
};

//===----------------------------------------------------------------------===//
// Handoff machinery for the queue and bag/set forms.
//===----------------------------------------------------------------------===//

/// Singleton reps whose put hands the value straight to registered
/// waiters. Storage access is split into a locked core (matchLocked /
/// restoreLocked) so a depositor can match waiters' templates against
/// the just-updated storage without reacquiring the lock. All values are
/// plain datums here, so every deposit is "direct" in the hashed rep's
/// sense: there is no nudge path, a completed registration is always a
/// delivery.
class HandoffSingletonRep : public SingletonRepBase {
protected:
  using SingletonRepBase::SingletonRepBase;

  /// A blocked reader's registration; Slot is a GC root for the duration
  /// (thread stacks are not scanned, and a delivery may sit in the slot
  /// across a park).
  struct SingletonWaiter : HandoffWaiterBase {
    SingletonWaiter(const Tuple &T, bool Remove)
        : Template(&T), Remove(Remove) {}

    const Tuple *Template;
    bool Remove;
    gc::Value Slot;
  };

  /// The storage-specific match, with Lock held. A Remove match consumes
  /// from storage.
  virtual std::optional<gc::Value> matchLocked(const Tuple &Template,
                                               bool Remove) = 0;

  /// Returns a consumed value to storage (Lock held): a take delivery
  /// whose waiter unwound (timeout racing the handoff, cancellation) goes
  /// back where it came from.
  virtual void restoreLocked(gc::Value V) = 0;

  /// With Lock held and storage just updated: hand the new state to every
  /// waiter whose template now matches. rd waiters all receive the value;
  /// a take match consumes storage (via matchLocked), so exactly the
  /// first matching taker is satisfied and later takers stay armed.
  void deliverLocked(std::vector<ThreadRef> &Wakes) {
    std::uint32_t Deliveries = 0;
    Handoff.visit([&](SingletonWaiter &W) {
      if (auto V = matchLocked(*W.Template, W.Remove)) {
        W.Slot = *V;
        Wakes.push_back(Handoff.deliver(W));
        ++Deliveries;
      }
      return true;
    });
    if (Deliveries) {
      Stats.Handoffs.fetch_add(Deliveries, std::memory_order_relaxed);
      Stats.Wakeups.fetch_add(Deliveries, std::memory_order_relaxed);
      STING_TRACE_EVENT(TupleHandoff,
                        currentThread() ? currentThread()->id() : 0,
                        Deliveries);
    }
  }

  static void fire(const std::vector<ThreadRef> &Wakes) {
    for (const ThreadRef &T : Wakes)
      HandoffList<SingletonWaiter>::wake(T);
  }

public:
  std::optional<Match> tryMatch(const Tuple &Template,
                                bool Remove) override {
    std::lock_guard<SpinLock> Guard(Lock);
    if (auto V = matchLocked(Template, Remove))
      return singletonMatch(*V, Template);
    return std::nullopt;
  }

  std::optional<Match> matchUntil(const Tuple &Template, bool Remove,
                                  Deadline D) override {
    if (auto M = tryMatch(Template, Remove))
      return M;
    if (D.expired())
      return std::nullopt;

    // Contended path: mirror of the hashed representation's registered
    // episode (DESIGN.md §12) without the nudge state — register, re-scan
    // (the lock orders registration against deposits, so no wakeup can be
    // lost), then park until delivered or timed out.
    for (;;) {
      SingletonWaiter W(Template, Remove);
      {
        std::lock_guard<SpinLock> Guard(Lock);
        Handoff.enqueue(W);
        Heap.addRoot(&W.Slot);
      }
      std::optional<Match> M;
      try {
        M = tryMatch(Template, Remove);
      } catch (...) {
        retire(W, /*Redeposit=*/true);
        throw;
      }
      if (M) {
        // Our own scan won; a racing delivery of a take value was
        // consumed from storage and must go back.
        retire(W, /*Redeposit=*/true);
        return M;
      }
      if (D.expired()) {
        if (auto Got = retire(W, /*Redeposit=*/false))
          return singletonMatch(*Got, Template);
        return std::nullopt;
      }

      Stats.Blocks.fetch_add(1, std::memory_order_relaxed);
      for (;;) {
        if (STING_CHAOS_FIRE(PreemptPoint)) {
          STING_TRACE_EVENT(ChaosInject,
                            currentThread() ? currentThread()->id() : 0,
                            static_cast<std::uint32_t>(
                                chaos::Site::PreemptPoint));
          ThreadController::yieldProcessor();
        }
        try {
          ThreadController::parkCurrent(ParkClass::Kernel, this, D);
        } catch (...) {
          retire(W, /*Redeposit=*/true);
          throw;
        }
        bool TimedOut = false, Delivered = false;
        gc::Value Got;
        {
          std::lock_guard<SpinLock> Guard(Lock);
          if (W.isLinked()) {
            // Still armed: timeout and delivery arbitrate under Lock, so
            // reporting the timeout here cannot strand a value.
            if (D.expired()) {
              Handoff.finish(W);
              Heap.removeRoot(&W.Slot);
              TimedOut = true;
            }
            // else: spurious unpark; stay registered and re-park.
          } else {
            Delivered = true; // deliver() is the only completion here
            Got = W.Slot;
            Heap.removeRoot(&W.Slot);
          }
        }
        if (TimedOut)
          return std::nullopt;
        if (Delivered)
          return singletonMatch(Got, Template);
      }
    }
  }

private:
  /// Ends \p W's registration episode; \returns the value a racing put
  /// delivered, if any. With \p Redeposit, a delivered take value is
  /// returned to storage (and offered onward) before the slot's root is
  /// dropped, so it is never left unrooted or stranded.
  std::optional<gc::Value> retire(SingletonWaiter &W, bool Redeposit) {
    std::optional<gc::Value> Got;
    std::vector<ThreadRef> Wakes;
    {
      std::lock_guard<SpinLock> Guard(Lock);
      if (Handoff.finish(W) == HandoffState::Delivered) {
        Got = W.Slot;
        if (Redeposit && W.Remove) {
          restoreLocked(*Got);
          deliverLocked(Wakes);
        }
      }
      Heap.removeRoot(&W.Slot);
    }
    fire(Wakes);
    return Got;
  }

protected:
  HandoffList<SingletonWaiter> Handoff;
};

//===----------------------------------------------------------------------===//
// Queue: ordered singleton tuples, no content matching on take.
//===----------------------------------------------------------------------===//

class QueueRep final : public HandoffSingletonRep {
public:
  using HandoffSingletonRep::HandoffSingletonRep;

  void put(Tuple T) override {
    gc::Value V = soleValue(T);
    std::vector<ThreadRef> Wakes;
    {
      std::lock_guard<SpinLock> Guard(Lock);
      Items.push_back(pin(V));
      deliverLocked(Wakes);
    }
    fire(Wakes);
  }

  std::size_t size() const override {
    std::lock_guard<SpinLock> Guard(
        const_cast<SpinLock &>(Lock));
    return Items.size();
  }

private:
  std::optional<gc::Value> matchLocked(const Tuple &Template,
                                       bool Remove) override {
    checkTemplate(Template);
    if (Items.empty())
      return std::nullopt;
    gc::Value *Slot = Items.front();
    gc::Value V = *Slot;
    if (Remove) {
      Items.pop_front();
      unpin(Slot);
    }
    return V;
  }

  void restoreLocked(gc::Value V) override {
    // The value was taken from the front; put it back there so FIFO order
    // survives an unwound delivery.
    Items.push_front(pin(V));
  }

  static void checkTemplate(const Tuple &Template) {
    STING_CHECK(Template.size() == 1 && Template.front().isFormal(),
                "queue representation matches only [?x] templates");
  }

  std::deque<gc::Value *> Items;
};

//===----------------------------------------------------------------------===//
// Bag / Set: unordered singleton tuples; templates may be [?x] or [v].
//===----------------------------------------------------------------------===//

class BagRep : public HandoffSingletonRep {
public:
  BagRep(gc::GlobalHeap &Heap, TupleSpaceStats &Stats, bool Dedupe)
      : HandoffSingletonRep(Heap, Stats), Dedupe(Dedupe) {}

  void put(Tuple T) override {
    gc::Value V = soleValue(T);
    std::vector<ThreadRef> Wakes;
    {
      std::lock_guard<SpinLock> Guard(Lock);
      if (Dedupe) {
        for (gc::Value *Slot : Items)
          if (gc::valueEqual(*Slot, V))
            return; // set semantics: ignore duplicates
      }
      Items.push_back(pin(V));
      deliverLocked(Wakes);
    }
    fire(Wakes);
  }

  std::size_t size() const override {
    std::lock_guard<SpinLock> Guard(const_cast<SpinLock &>(Lock));
    return Items.size();
  }

private:
  std::optional<gc::Value> matchLocked(const Tuple &Template,
                                       bool Remove) override {
    STING_CHECK(Template.size() == 1,
                "bag/set representation holds singleton tuples");
    const Field &TF = Template.front();
    for (auto It = Items.begin(); It != Items.end(); ++It) {
      gc::Value V = **It;
      if (!TF.isFormal() && !gc::valueEqual(TF.value(), V))
        continue;
      if (Remove) {
        gc::Value *Slot = *It;
        Items.erase(It);
        unpin(Slot);
      }
      return V;
    }
    return std::nullopt;
  }

  void restoreLocked(gc::Value V) override { Items.push_back(pin(V)); }

  bool Dedupe;
  std::vector<gc::Value *> Items;
};

//===----------------------------------------------------------------------===//
// Shared variable: a single cell; put overwrites, read blocks until set,
// take empties.
//===----------------------------------------------------------------------===//

class SharedVariableRep final : public SingletonRepBase {
public:
  SharedVariableRep(gc::GlobalHeap &Heap, TupleSpaceStats &Stats)
      : SingletonRepBase(Heap, Stats) {
    Heap.addRoot(&Cell);
  }
  ~SharedVariableRep() override { Heap.removeRoot(&Cell); }

  void put(Tuple T) override {
    gc::Value V = soleValue(T);
    {
      std::lock_guard<SpinLock> Guard(Lock);
      Cell = V;
      Full = true;
    }
    Waiters.wakeAll();
  }

  std::optional<Match> tryMatch(const Tuple &Template,
                                bool Remove) override {
    STING_CHECK(Template.size() == 1,
                "shared-variable representation holds singleton tuples");
    const Field &TF = Template.front();
    std::lock_guard<SpinLock> Guard(Lock);
    if (!Full)
      return std::nullopt;
    if (!TF.isFormal() && !gc::valueEqual(TF.value(), Cell))
      return std::nullopt;
    gc::Value V = Cell;
    if (Remove) {
      Full = false;
      Cell = gc::Value::nil();
    }
    return singletonMatch(V, Template);
  }

  std::size_t size() const override {
    std::lock_guard<SpinLock> Guard(const_cast<SpinLock &>(Lock));
    return Full ? 1 : 0;
  }

private:
  gc::Value Cell;
  bool Full = false;
};

//===----------------------------------------------------------------------===//
// Semaphore: only counts matter; the paper's get/put over a singleton
// token tuple compile down to P and V.
//===----------------------------------------------------------------------===//

class SemaphoreRep final : public SingletonRepBase {
public:
  using SingletonRepBase::SingletonRepBase;

  void put(Tuple T) override {
    STING_CHECK(T.size() == 1, "semaphore representation takes one token");
    Tokens.fetch_add(1, std::memory_order_release);
    Waiters.wakeOne();
  }

  std::optional<Match> tryMatch(const Tuple &Template,
                                bool Remove) override {
    STING_CHECK(Template.size() == 1,
                "semaphore representation takes one token");
    if (!Remove) {
      // rd: observe a token without consuming.
      if (Tokens.load(std::memory_order_acquire) == 0)
        return std::nullopt;
      return singletonMatch(gc::Value::fixnum(1), Template);
    }
    std::int64_t Cur = Tokens.load(std::memory_order_relaxed);
    while (Cur > 0) {
      if (Tokens.compare_exchange_weak(Cur, Cur - 1,
                                       std::memory_order_acquire))
        return singletonMatch(gc::Value::fixnum(1), Template);
    }
    return std::nullopt;
  }

  std::size_t size() const override {
    std::int64_t N = Tokens.load(std::memory_order_acquire);
    return N > 0 ? static_cast<std::size_t>(N) : 0;
  }

private:
  std::atomic<std::int64_t> Tokens{0};
};

//===----------------------------------------------------------------------===//
// Vector: tuples of the form [index value]; reads of [index ?x] block
// until the cell is written.
//===----------------------------------------------------------------------===//

class VectorRep final : public TupleSpaceRepBase {
public:
  VectorRep(gc::GlobalHeap &Heap, TupleSpaceStats &Stats)
      : TupleSpaceRepBase(Stats), Heap(Heap) {}

  ~VectorRep() override {
    std::lock_guard<SpinLock> Guard(Lock);
    for (auto &Cell : Cells)
      if (Cell)
        Heap.removeRoot(Cell.get());
  }

  void put(Tuple T) override {
    STING_CHECK(T.size() == 2 && T[0].isDatum() && T[0].value().isFixnum() &&
                    T[1].isDatum(),
                "vector representation stores [index value] tuples");
    auto Index = static_cast<std::size_t>(T[0].value().asFixnum());
    {
      std::lock_guard<SpinLock> Guard(Lock);
      if (Cells.size() <= Index)
        Cells.resize(Index + 1);
      if (!Cells[Index]) {
        Cells[Index] = std::make_unique<gc::Value>(T[1].value());
        Heap.addRoot(Cells[Index].get());
      } else {
        *Cells[Index] = T[1].value();
      }
    }
    Waiters.wakeAll();
  }

  std::optional<Match> matchUntil(const Tuple &Template, bool Remove,
                                  Deadline D) override {
    std::optional<Match> Result;
    Waiters.awaitUntil(
        [&] {
          Result = tryMatch(Template, Remove);
          return Result.has_value();
        },
        this, D);
    return Result;
  }

  std::optional<Match> tryMatch(const Tuple &Template,
                                bool Remove) override {
    STING_CHECK(Template.size() == 2 && Template[0].isDatum() &&
                    Template[0].value().isFixnum(),
                "vector representation matches [index ?x] templates");
    auto Index = static_cast<std::size_t>(Template[0].value().asFixnum());
    std::lock_guard<SpinLock> Guard(Lock);
    if (Index >= Cells.size() || !Cells[Index])
      return std::nullopt;
    gc::Value V = *Cells[Index];
    const Field &TF = Template[1];
    if (!TF.isFormal() && !gc::valueEqual(TF.value(), V))
      return std::nullopt;
    if (Remove) {
      Heap.removeRoot(Cells[Index].get());
      Cells[Index].reset();
    }
    return buildMatch({Template[0].value(), V}, Template);
  }

  std::size_t size() const override {
    std::lock_guard<SpinLock> Guard(const_cast<SpinLock &>(Lock));
    std::size_t N = 0;
    for (const auto &Cell : Cells)
      N += Cell != nullptr;
    return N;
  }

private:
  gc::GlobalHeap &Heap;
  mutable SpinLock Lock;
  std::vector<std::unique_ptr<gc::Value>> Cells;
  ParkList Waiters;
};

} // namespace

std::unique_ptr<detail::TupleSpaceRepBase>
detail::makeSpecializedRep(TupleSpaceRep Rep, gc::GlobalHeap &Heap,
                           TupleSpaceStats &Stats) {
  switch (Rep) {
  case TupleSpaceRep::Queue:
    return std::make_unique<QueueRep>(Heap, Stats);
  case TupleSpaceRep::Bag:
    return std::make_unique<BagRep>(Heap, Stats, /*Dedupe=*/false);
  case TupleSpaceRep::Set:
    return std::make_unique<BagRep>(Heap, Stats, /*Dedupe=*/true);
  case TupleSpaceRep::SharedVariable:
    return std::make_unique<SharedVariableRep>(Heap, Stats);
  case TupleSpaceRep::Semaphore:
    return std::make_unique<SemaphoreRep>(Heap, Stats);
  case TupleSpaceRep::Vector:
    return std::make_unique<VectorRep>(Heap, Stats);
  case TupleSpaceRep::Hashed:
    break;
  }
  STING_UNREACHABLE("not a specialized representation");
}

} // namespace sting
