//===- tuple/RepBase.h - Tuple-space representation interface ----*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Private interface implemented by each tuple-space representation. The
/// facade (TupleSpace) normalizes tuples (interning, escaping) before
/// calling in; representations only see resolved gc values, live threads
/// and formals.
///
//===----------------------------------------------------------------------===//

#ifndef STING_TUPLE_REPBASE_H
#define STING_TUPLE_REPBASE_H

#include "tuple/Tuple.h"
#include "tuple/TupleSpace.h"

#include <optional>

namespace sting {
namespace detail {

class TupleSpaceRepBase {
public:
  /// \p Stats outlives the representation (it is a member of the owning
  /// TupleSpace, declared before Impl); representations charge Blocks,
  /// Handoffs and Wakeups to it directly.
  explicit TupleSpaceRepBase(TupleSpaceStats &Stats) : Stats(Stats) {}
  virtual ~TupleSpaceRepBase() = default;

  virtual void put(Tuple T) = 0;
  /// Blocking match bounded by \p D; nullopt only on timeout. A deposit
  /// racing the deadline wins: implementations re-scan (or consume a
  /// pending handoff delivery) before reporting failure.
  virtual std::optional<Match> matchUntil(const Tuple &Template, bool Remove,
                                          Deadline D) = 0;
  virtual std::optional<Match> tryMatch(const Tuple &Template,
                                        bool Remove) = 0;
  virtual std::size_t size() const = 0;

  /// Registration-proxy hook (see TupleSpace::registerProxy). Only the
  /// hashed representation implements it; specialized representations
  /// report unsupported and the caller falls back to a blocking thread.
  virtual bool registerProxy(std::uint64_t /*Id*/, Tuple /*Template*/,
                             bool /*Remove*/,
                             TupleSpace::ProxyDeliverFn /*Deliver*/) {
    return false;
  }
  /// \returns true iff the registration was retracted while still armed.
  virtual bool retractProxy(std::uint64_t /*Id*/) { return false; }

  /// Unbounded match: a never deadline cannot time out.
  Match match(const Tuple &Template, bool Remove) {
    auto M = matchUntil(Template, Remove, Deadline::never());
    STING_CHECK(M, "unbounded tuple match timed out");
    return std::move(*M);
  }

protected:
  TupleSpaceStats &Stats;
};

/// The general two-hash-table representation (TupleSpace.cpp).
std::unique_ptr<TupleSpaceRepBase> makeHashedRep(gc::GlobalHeap &Heap,
                                                 TupleSpaceStats &Stats);

/// Specialized representations (Specialize.cpp).
std::unique_ptr<TupleSpaceRepBase> makeSpecializedRep(TupleSpaceRep Rep,
                                                      gc::GlobalHeap &Heap,
                                                      TupleSpaceStats &Stats);

/// Shared helper: number of formals referenced by \p Template (max index
/// + 1); also validates that formals appear only in templates.
std::size_t bindingCount(const Tuple &Template);

/// Shared helper: builds a Match from resolved values and a template.
Match buildMatch(const std::vector<gc::Value> &Values,
                 const Tuple &Template);

} // namespace detail
} // namespace sting

#endif // STING_TUPLE_REPBASE_H
