//===- sting/Sting.h - Public umbrella header --------------------*- C++ -*-===//
//
// Part of libsting, a reproduction of "A Customizable Substrate for
// Concurrent Languages" (Jagannathan & Philbin, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public API of libsting. Downstream users include this header and
/// link the `sting` target.
///
/// Paper-to-API index (see DESIGN.md for the full system inventory):
///
///   Concurrency objects (section 3)
///     Thread, ThreadRef, ThreadGroup      core/Thread.h, core/ThreadGroup.h
///     VirtualProcessor, VirtualMachine    core/VirtualProcessor.h, ...
///     PolicyManager + built-in policies   core/PolicyManager.h
///     Topology (left-vp/right-vp/...)     core/Topology.h
///
///   Thread controller operations (section 3.1)
///     ThreadController::forkThread        (fork-thread expr vp)
///     ThreadController::createThread      (create-thread expr)
///     ThreadController::threadRun         (thread-run thread [vp])
///     ThreadController::threadWait        (thread-wait thread)
///     ThreadController::threadValue       (thread-value thread)
///     ThreadController::threadBlock       (thread-block ...)
///     ThreadController::threadSuspend     (thread-suspend ...)
///     ThreadController::threadTerminate   (thread-terminate ...)
///     ThreadController::yieldProcessor    (yield-processor)
///     currentThread / currentVp           (current-thread) / (current-vp)
///     WithoutPreemption                   (without-preemption body)
///
///   Synchronization structures (section 4)
///     Mutex / withMutex                   (make-mutex active passive)
///     Future<T> / future / delay          futures + touch + stealing
///     Stream<T>                           the sieve's synchronizing stream
///     waitForAll / CyclicBarrier          barrier synchronization
///     waitForOne / SpeculativeSet         speculative OR-parallelism
///     Semaphore, Channel<T>               derived structures
///
///   Tuple spaces (section 4.2)
///     TupleSpace, Tuple, Field, formal    tuple/TupleSpace.h
///     TupleSpaceRep, chooseRepresentation representation specialization
///
///   Network subsystem (section 6's non-blocking I/O, applied to TCP)
///     net::Socket, net::Listener          net/Socket.h
///     net::BufferedConn                   net/BufferedConn.h
///     net::Server, net::ServerConfig      net/Server.h
///     net::Client, net::CircuitBreaker    net/Client.h
///     net::ConnectionPool                 net/Pool.h
///     net::wire, echo/tuple services      net/Wire.h, net/Services.h
///
///   Storage model (section 2 item 3)
///     gc::Value, gc::LocalHeap,
///     gc::GlobalHeap, gc::HandleScope     gc/, core/Gc.h
///
//===----------------------------------------------------------------------===//

#ifndef STING_STING_H
#define STING_STING_H

#include "core/Current.h"
#include "core/Fluid.h"
#include "support/Chaos.h"
#include "support/Deadline.h"
#include "core/Gc.h"
#include "core/Monitor.h"
#include "core/PhysicalPolicy.h"
#include "core/PolicyManager.h"
#include "core/PreemptionClock.h"
#include "core/Thread.h"
#include "core/ThreadController.h"
#include "core/ThreadGroup.h"
#include "core/Topology.h"
#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "core/Watchdog.h"
#include "gc/HeapImage.h"
#include "gc/Object.h"
#include "io/IoService.h"
#include "net/BufferedConn.h"
#include "net/Client.h"
#include "net/Pool.h"
#include "net/Server.h"
#include "net/Services.h"
#include "net/Socket.h"
#include "net/Wire.h"
#include "obs/Flow.h"
#include "obs/SchedStats.h"
#include "obs/StallDetector.h"
#include "obs/TraceBuffer.h"
#include "obs/TraceExporter.h"
#include "sync/Barrier.h"
#include "sync/Channel.h"
#include "sync/Future.h"
#include "sync/Mutex.h"
#include "sync/Semaphore.h"
#include "sync/Speculative.h"
#include "sync/Stream.h"
#include "tuple/TupleSpace.h"

#endif // STING_STING_H
