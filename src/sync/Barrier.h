//===- sync/Barrier.h - Barrier synchronization ------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Barrier synchronization (paper section 4.3): wait-for-all over thread
/// groups via the controller's block-on-group (Fig. 5), plus a reusable
/// phase barrier for master/slave programs that "generate a new set of
/// worker processes after all previously created workers complete"
/// (section 4.2.2).
///
//===----------------------------------------------------------------------===//

#ifndef STING_SYNC_BARRIER_H
#define STING_SYNC_BARRIER_H

#include "core/Thread.h"
#include "sync/ParkList.h"

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace sting {

/// The paper's wait-for-all: blocks until every thread in \p Group is
/// determined. "Acts as a barrier synchronization point."
void waitForAll(std::span<const ThreadRef> Group);
void waitForAll(std::span<Thread *const> Group);

/// Timed wait-for-all. \returns Timeout if \p D expired with group members
/// still undetermined; all stack-side waiter records are retracted either
/// way.
WaitResult waitForAllUntil(std::span<Thread *const> Group, Deadline D);
WaitResult waitForAllUntil(std::span<const ThreadRef> Group, Deadline D);

/// A reusable counting barrier for N participants. arriveAndWait parks
/// until all N arrive, then releases the phase and resets.
class CyclicBarrier {
public:
  explicit CyclicBarrier(std::size_t Parties);

  /// Blocks until all parties arrive; the last arrival wakes the rest.
  /// \returns the phase number that just completed.
  std::uint64_t arriveAndWait();

  /// Timed arrival: if \p D expires before the phase completes, the
  /// arrival is *retracted* (the barrier behaves as if this party never
  /// showed up) and nullopt is returned; other parties keep a consistent
  /// count. A phase release racing the deadline wins and returns the
  /// completed phase. An async cancellation unwinding out of the wait
  /// retracts the arrival the same way.
  std::optional<std::uint64_t> arriveAndWaitUntil(Deadline D);
  std::optional<std::uint64_t> arriveAndWaitFor(std::uint64_t Nanos) {
    return arriveAndWaitUntil(Deadline::in(Nanos));
  }

  std::size_t parties() const { return Parties; }
  std::uint64_t phase() const {
    return Phase.load(std::memory_order_acquire);
  }

private:
  /// Undoes an arrival for a waiter that timed out or was cancelled.
  /// \returns false if the phase already completed (the arrival counted).
  bool retractArrival(std::uint64_t MyPhase);

  const std::size_t Parties;
  SpinLock Lock;
  std::size_t Arrived = 0;
  std::atomic<std::uint64_t> Phase{0};
  ParkList Waiters;
};

} // namespace sting

#endif // STING_SYNC_BARRIER_H
