//===- sync/Mutex.cpp - Active/passive spinning mutexes ---------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sync/Mutex.h"

#include "core/Current.h"
#include "core/Thread.h"
#include "obs/TraceBuffer.h"
#include "support/Backoff.h"

namespace sting {

void Mutex::acquire() {
  STING_CHECK(onStingThread(), "Mutex::acquire outside a sting thread");

  if (tryAcquire()) {
    Stats.FastAcquires.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Phase 1: active spinning — "causes the thread to retain control of its
  // virtual processor during the period that it is blocked".
  for (std::uint32_t I = 0; I != ActiveSpins; ++I) {
    cpuRelax();
    if (Locked.load(std::memory_order_relaxed))
      continue;
    if (tryAcquire()) {
      Stats.ActiveAcquires.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  // Phase 2: passive spinning — "the thread relinquishes control of its
  // VP, and inserts itself into an appropriate ready queue. When next run,
  // it attempts to re-acquire the mutex."
  for (std::uint32_t I = 0; I != PassiveSpins; ++I) {
    ThreadController::yieldProcessor();
    if (tryAcquire()) {
      Stats.PassiveAcquires.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  // Phase 3: block — "if the passive spin count is exhausted ... the
  // executing thread blocks on the mutex."
  Stats.BlockedAcquires.fetch_add(1, std::memory_order_relaxed);
  STING_TRACE_EVENT(MutexBlock, currentThread()->id(), 0);
  Blocked.await([this] { return tryAcquire(); }, this);
  STING_TRACE_EVENT(MutexAcquire, currentThread()->id(), 0);
}

bool Mutex::tryAcquireUntil(Deadline D) {
  STING_CHECK(onStingThread(), "Mutex::tryAcquireUntil outside a sting thread");

  if (tryAcquire()) {
    Stats.FastAcquires.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Phase 1: active spin rounds separated by bounded exponential backoff —
  // the deadline is only consulted between rounds so the common contended
  // case stays a pure register loop.
  Backoff B;
  for (std::uint32_t I = 0; I != ActiveSpins; ++I) {
    B.pause();
    if (!Locked.load(std::memory_order_relaxed) && tryAcquire()) {
      Stats.ActiveAcquires.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (D.expired())
      return tryAcquireExpiring();
  }

  // Phase 2: passive yields, deadline-checked on each redispatch.
  for (std::uint32_t I = 0; I != PassiveSpins; ++I) {
    ThreadController::yieldProcessor();
    if (tryAcquire()) {
      Stats.PassiveAcquires.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (D.expired())
      return tryAcquireExpiring();
  }

  // Phase 3: timed park.
  Stats.BlockedAcquires.fetch_add(1, std::memory_order_relaxed);
  STING_TRACE_EVENT(MutexBlock, currentThread()->id(), 1);
  WaitResult R = Blocked.awaitUntil([this] { return tryAcquire(); }, this, D);
  if (R == WaitResult::Timeout)
    return false;
  STING_TRACE_EVENT(MutexAcquire, currentThread()->id(), 1);
  return true;
}

bool Mutex::tryAcquireExpiring() {
  // Last chance at the deadline: a release racing the expiry must win
  // (the "wake racing the deadline is never lost" rule).
  if (!tryAcquire())
    return false;
  Stats.ActiveAcquires.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Mutex::release() {
  STING_DCHECK(isLocked(), "releasing an unlocked Mutex");
  Locked.store(false, std::memory_order_release);
  Blocked.wakeAll();
}

} // namespace sting
