//===- sync/Semaphore.cpp - Counting semaphores -------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sync/Semaphore.h"

#include "core/Current.h"
#include "core/Thread.h"
#include "obs/TraceBuffer.h"

namespace sting {

bool Semaphore::tryAcquire() {
  std::int64_t Cur = Count.load(std::memory_order_relaxed);
  while (Cur > 0) {
    if (Count.compare_exchange_weak(Cur, Cur - 1,
                                    std::memory_order_acquire))
      return true;
  }
  return false;
}

void Semaphore::acquire() {
  if (tryAcquire())
    return;
  Thread *Self = currentThread();
  STING_TRACE_EVENT(SemaphoreBlock, Self ? Self->id() : 0, 0);
  Waiters.await([this] { return tryAcquire(); }, this);
}

bool Semaphore::tryAcquireUntil(Deadline D) {
  if (tryAcquire())
    return true;
  Thread *Self = currentThread();
  STING_TRACE_EVENT(SemaphoreBlock, Self ? Self->id() : 0, 1);
  return Waiters.awaitUntil([this] { return tryAcquire(); }, this, D) ==
         WaitResult::Ready;
}

void Semaphore::release(std::int64_t N) {
  Count.fetch_add(N, std::memory_order_release);
  if (N == 1)
    Waiters.wakeOne();
  else
    Waiters.wakeAll();
}

} // namespace sting
