//===- sync/Speculative.h - Speculative parallelism --------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Speculative concurrency (paper section 4.3), built from the three
/// primitives the paper lists: programmable priorities, waiting on the
/// completion of other threads (block-on-group), and the ability of a
/// winner to terminate losers.
///
///   waitForOne  — OR-parallelism: returns the first determined thread and
///                 (optionally) terminates the rest.
///   SpeculativeSet — a task set with per-task priorities and abort.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SYNC_SPECULATIVE_H
#define STING_SYNC_SPECULATIVE_H

#include "core/Thread.h"
#include "core/ThreadController.h"

#include <span>
#include <vector>

namespace sting {

/// The paper's wait-for-one: blocks until any thread in \p Group is
/// determined; \returns one determined member. With \p TerminateLosers
/// (the default, matching the paper's definition) all other members are
/// sent terminate requests before returning.
ThreadRef waitForOne(std::span<const ThreadRef> Group,
                     bool TerminateLosers = true);

/// Timed wait-for-one: \returns an empty ref if \p D expired with no
/// member determined — in that case no loser is terminated, so the caller
/// can keep waiting or abort explicitly.
ThreadRef waitForOneUntil(std::span<const ThreadRef> Group, Deadline D,
                          bool TerminateLosers = true);

/// A set of speculative alternatives. Tasks added with higher priority are
/// favored by priority policy managers ("promising tasks can execute
/// before unlikely ones because priorities are programmable").
class SpeculativeSet {
public:
  SpeculativeSet() = default;
  SpeculativeSet(const SpeculativeSet &) = delete;
  SpeculativeSet &operator=(const SpeculativeSet &) = delete;

  /// Forks a speculative task. \p Priority is a policy hint.
  template <typename Fn>
  ThreadRef add(Fn &&Code, int Priority = 0) {
    SpawnOptions Opts;
    Opts.Priority = Priority;
    ThreadRef T = ThreadController::forkThread(
        [Code = std::forward<Fn>(Code)]() mutable -> AnyValue {
          return AnyValue(Code());
        },
        Opts);
    Tasks.push_back(T);
    return T;
  }

  /// Waits for the first completion; terminates the rest.
  ThreadRef awaitFirst() { return waitForOne(Tasks); }

  /// Timed awaitFirst: empty ref on timeout (tasks keep running).
  ThreadRef awaitFirstUntil(Deadline D) {
    return waitForOneUntil(Tasks, D);
  }

  /// Requests termination of every still-running task.
  void abortAll() {
    for (const ThreadRef &T : Tasks)
      ThreadController::threadTerminate(*T);
  }

  const std::vector<ThreadRef> &tasks() const { return Tasks; }

private:
  std::vector<ThreadRef> Tasks;
};

} // namespace sting

#endif // STING_SYNC_SPECULATIVE_H
