//===- sync/Channel.h - Bounded channels -------------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded multi-producer multi-consumer channel. Not itself a paper
/// structure, but the natural CML-style primitive the paper positions the
/// substrate beneath ("the synchronization semantics of a thread is a more
/// general (albeit lower-level) form of ... CML's sync"); examples use it
/// for master/slave work distribution.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SYNC_CHANNEL_H
#define STING_SYNC_CHANNEL_H

#include "sync/ParkList.h"

#include <deque>
#include <optional>

namespace sting {

/// A bounded FIFO channel of T.
template <typename T> class Channel {
public:
  explicit Channel(std::size_t Capacity = 64) : Capacity(Capacity) {
    STING_CHECK(Capacity > 0, "channel capacity must be positive");
  }

  Channel(const Channel &) = delete;
  Channel &operator=(const Channel &) = delete;

  /// Blocks while the channel is full, then enqueues.
  void send(T Val) {
    NotFull.await([&] { return trySend(Val); }, this);
  }

  /// Blocks while the channel is empty, then dequeues.
  T recv() {
    std::optional<T> Out;
    NotEmpty.await([&] { return tryRecvInto(Out); }, this);
    return std::move(*Out);
  }

  /// Timed send: \returns false if \p D expired with the channel still
  /// full. \p Val is consumed only on success, so a timed-out sender can
  /// retry with the same value.
  bool sendUntil(T &Val, Deadline D) {
    return NotFull.awaitUntil([&] { return trySend(Val); }, this, D) ==
           WaitResult::Ready;
  }
  bool sendFor(T &Val, std::uint64_t Nanos) {
    return sendUntil(Val, Deadline::in(Nanos));
  }

  /// Timed receive: \returns nullopt if \p D expired with the channel
  /// still empty. A send racing the deadline wins.
  std::optional<T> recvUntil(Deadline D) {
    std::optional<T> Out;
    NotEmpty.awaitUntil([&] { return tryRecvInto(Out); }, this, D);
    return Out;
  }
  std::optional<T> recvFor(std::uint64_t Nanos) {
    return recvUntil(Deadline::in(Nanos));
  }

  /// Non-blocking send; \returns false when full. (\p Val is consumed only
  /// on success.)
  bool trySend(T &Val) {
    {
      std::lock_guard<SpinLock> Guard(Lock);
      if (Items.size() >= Capacity)
        return false;
      Items.push_back(std::move(Val));
    }
    NotEmpty.wakeOne();
    return true;
  }

  /// Non-blocking receive.
  std::optional<T> tryRecv() {
    std::optional<T> Out;
    if (tryRecvInto(Out))
      NotFull.wakeOne();
    return Out;
  }

  std::size_t size() const {
    std::lock_guard<SpinLock> Guard(Lock);
    return Items.size();
  }

  std::size_t capacity() const { return Capacity; }

private:
  bool tryRecvInto(std::optional<T> &Out) {
    bool Got = false;
    {
      std::lock_guard<SpinLock> Guard(Lock);
      if (!Items.empty()) {
        Out = std::move(Items.front());
        Items.pop_front();
        Got = true;
      }
    }
    if (Got)
      NotFull.wakeOne();
    return Got;
  }

  const std::size_t Capacity;
  mutable SpinLock Lock;
  std::deque<T> Items;
  ParkList NotEmpty;
  ParkList NotFull;
};

} // namespace sting

#endif // STING_SYNC_CHANNEL_H
