//===- sync/HandoffList.h - Registered waiters with direct handoff -*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ParkList's sibling for structures that can hand a producer's payload
/// straight to one blocked consumer instead of waking everyone to re-scan.
/// A waiter embeds a HandoffWaiterBase-derived record in its stack frame,
/// registers it under the structure's own lock, and parks; a producer
/// walks the registered records under that same lock, writes its payload
/// into a compatible waiter's slot, and wakes exactly that thread.
///
/// Unlike ParkList, the list keeps no lock of its own: every record field
/// and every list operation is guarded by the *caller's* lock — the one
/// already serializing the structure's storage — so registration, delivery
/// and unwind all observe one consistent state. The state machine per
/// registration:
///
///   Armed ──deliver()──▶ Delivered   (payload in the waiter's slot; the
///         │                           waiter leaves with it or, on
///         │                           timeout/cancel, re-deposits it)
///         └──nudge()────▶ Nudged     (a *potential* match arrived — e.g. a
///                                     tuple with live-thread fields that
///                                     cannot be matched under a spinlock;
///                                     the waiter re-scans)
///
/// Exactly one transition out of Armed ever happens: deliver/nudge unlink
/// the record under the lock, and the waiter's own exits (match-elsewhere,
/// timeout, cancellation unwind) go through finish(), which atomically
/// either retracts a still-armed registration or observes the final state
/// — so a payload is either still in storage or in exactly one waiter's
/// slot, never both and never neither.
///
/// Wakes happen outside the lock via the ThreadRef that deliver()/nudge()
/// return; unparkThreadKernel re-validates under the thread's waiter lock,
/// so a waiter that already resumed (timeout, chaos) absorbs the unpark as
/// a spurious return, which parkCurrent callers must tolerate anyway.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SYNC_HANDOFFLIST_H
#define STING_SYNC_HANDOFFLIST_H

#include "core/Current.h"
#include "core/ThreadController.h"
#include "support/IntrusiveList.h"

#include <atomic>
#include <cstdint>

namespace sting {

struct HandoffWaiterTag;

/// Outcome of one registration episode, written by the waker under the
/// caller's lock.
enum class HandoffState : std::uint8_t {
  Armed,     ///< registered, nothing happened yet
  Delivered, ///< a producer transferred its payload into the waiter's slot
  Nudged,    ///< a potentially-matching deposit arrived; re-scan required
};

/// Base for stack-pinned waiter records. Derived types add the template
/// being waited for and the delivery slot. All fields are guarded by the
/// lock of the HandoffList the record is registered with.
class HandoffWaiterBase : public ListNode<HandoffWaiterTag> {
public:
  HandoffState state() const { return St; }

private:
  template <typename> friend class HandoffList;

  HandoffState St = HandoffState::Armed;
  Thread *Self = nullptr; ///< bound at enqueue; pinned while linked
};

/// An intrusive list of registered waiter records. Every member except
/// count() and wake() requires the caller to hold the lock that guards
/// this list (documented contract; the list itself is lock-free storage).
template <typename WaiterT> class HandoffList {
  using List = IntrusiveList<HandoffWaiterBase, HandoffWaiterTag>;

public:
  /// Registers \p W (re-arming it) at the tail; FIFO delivery order.
  void enqueue(WaiterT &W) {
    W.St = HandoffState::Armed;
    W.Self = currentThread();
    Waiters.pushBack(W);
    Registered.store(Registered.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
  }

  /// Registers \p W without binding it to the calling thread: deliver() and
  /// nudge() then return a null ThreadRef, which wake() ignores. Used for
  /// registration *proxies* — records owned by a service on behalf of a
  /// remote waiter, where no local thread ever parks on the registration
  /// and completion is observed by whoever owns the record instead.
  void enqueueDetached(WaiterT &W) {
    W.St = HandoffState::Armed;
    W.Self = nullptr;
    Waiters.pushBack(W);
    Registered.store(Registered.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
  }

  /// Walks the registered waiters in FIFO order. \p V may deliver() or
  /// nudge() the record it is handed (both unlink); return false to stop.
  template <typename Visit> void visit(Visit V) {
    for (auto It = Waiters.begin(); It != Waiters.end();) {
      WaiterT &W = static_cast<WaiterT &>(*It);
      ++It; // advance first: V may unlink W
      if (!V(W))
        return;
    }
  }

  /// Completes \p W's registration with a payload the caller already wrote
  /// into its slot. \returns the thread to wake (outside the lock).
  ThreadRef deliver(WaiterT &W) { return complete(W, HandoffState::Delivered); }

  /// Completes \p W's registration with "something arrived, re-scan".
  ThreadRef nudge(WaiterT &W) { return complete(W, HandoffState::Nudged); }

  /// The waiter's own exit: retracts a still-armed registration, or
  /// observes the final state a waker left. After this call the record is
  /// unlinked and the caller owns whatever its slot holds.
  HandoffState finish(WaiterT &W) {
    if (W.isLinked()) {
      unlink(W);
      return HandoffState::Armed;
    }
    return W.St;
  }

  /// Racy registration count, readable without the lock. Producers use it
  /// to skip locking a foreign bin whose waiter list is empty: a waiter
  /// registering concurrently re-scans *after* enqueuing, so storage
  /// published before this read is never missed (the structure's lock
  /// carries the happens-before).
  std::size_t count() const {
    return Registered.load(std::memory_order_relaxed);
  }

  /// Unparks a thread captured by deliver()/nudge(); call without locks.
  static void wake(const ThreadRef &T) {
    if (T)
      ThreadController::unparkThreadKernel(*T, EnqueueReason::KernelBlock);
  }

private:
  ThreadRef complete(WaiterT &W, HandoffState S) {
    unlink(W);
    W.St = S;
    return ThreadRef(W.Self);
  }

  void unlink(WaiterT &W) {
    List::erase(W);
    Registered.store(Registered.load(std::memory_order_relaxed) - 1,
                     std::memory_order_relaxed);
  }

  List Waiters;
  std::atomic<std::size_t> Registered{0};
};

} // namespace sting

#endif // STING_SYNC_HANDOFFLIST_H
