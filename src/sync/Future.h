//===- sync/Future.h - Result parallelism (futures) --------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Futures over the substrate's threads (paper section 4.1): "Threads are a
/// natural representation for futures." A future is just a typed wrapper
/// around a first-class thread with no extra synchronization state:
///
///   - future<T>(f)  — eager: forks a thread computing f (MultiLisp's
///                     (future E)).
///   - delay<T>(f)   — lazy: a delayed thread; runs only when demanded.
///   - touch()       — the paper's touch: free for determined threads,
///                     blocks on evaluating ones, and *steals* delayed or
///                     scheduled stealable ones onto the toucher's TCB
///                     (section 4.1.1).
///
//===----------------------------------------------------------------------===//

#ifndef STING_SYNC_FUTURE_H
#define STING_SYNC_FUTURE_H

#include "core/Thread.h"
#include "core/ThreadController.h"

#include <utility>

namespace sting {

/// A typed handle on a thread's eventual result.
template <typename T> class Future {
public:
  Future() = default;

  /// Wraps an existing thread whose result is a T.
  explicit Future(ThreadRef Th) : Th(std::move(Th)) {}

  /// Eager future: fork a thread computing \p Fn (the MultiLisp future).
  template <typename Fn>
  static Future spawn(Fn &&Code, const SpawnOptions &Opts = {}) {
    return Future(ThreadController::forkThread(wrap(std::forward<Fn>(Code)),
                                               Opts));
  }

  /// Lazy future: a delayed thread, evaluated only when touched (usually by
  /// stealing) or explicitly scheduled via run().
  template <typename Fn>
  static Future delayed(Fn &&Code, const SpawnOptions &Opts = {}) {
    return Future(ThreadController::createThread(
        wrap(std::forward<Fn>(Code)), Opts));
  }

  /// The paper's touch: \returns the computed value, synchronizing as
  /// required. Rethrows if the computation failed.
  const T &touch() const {
    STING_CHECK(Th, "touch of an empty future");
    return ThreadController::threadValue(*Th).template as<T>();
  }

  /// Timed touch (the issue's Future::get_for): \returns a pointer to the
  /// value, or null if \p D expired before the computing thread
  /// determined. A determination racing the deadline wins. Rethrows if
  /// the computation failed.
  const T *touchUntil(Deadline D) const {
    STING_CHECK(Th, "touch of an empty future");
    if (!ThreadController::threadWaitFor(*Th, D))
      return nullptr;
    Th->rethrowIfFailed();
    return &Th->result().template as<T>();
  }
  const T *touchFor(std::uint64_t Nanos) const {
    return touchUntil(Deadline::in(Nanos));
  }

  /// Schedules a delayed future for asynchronous evaluation (thread-run).
  void run() const {
    STING_CHECK(Th, "run of an empty future");
    ThreadController::threadRun(*Th);
  }

  bool isDetermined() const { return Th && Th->isDetermined(); }
  explicit operator bool() const { return static_cast<bool>(Th); }

  /// The underlying first-class thread.
  Thread &thread() const { return *Th; }
  const ThreadRef &threadRef() const { return Th; }

private:
  template <typename Fn> static Thread::Thunk wrap(Fn &&Code) {
    return [Code = std::forward<Fn>(Code)]() mutable -> AnyValue {
      return AnyValue(T(Code()));
    };
  }

  ThreadRef Th;
};

/// Convenience spawners mirroring (future E) and (delay E).
template <typename Fn> auto future(Fn &&Code, const SpawnOptions &Opts = {}) {
  using T = std::invoke_result_t<Fn &>;
  return Future<T>::spawn(std::forward<Fn>(Code), Opts);
}

template <typename Fn> auto delay(Fn &&Code, const SpawnOptions &Opts = {}) {
  using T = std::invoke_result_t<Fn &>;
  return Future<T>::delayed(std::forward<Fn>(Code), Opts);
}

} // namespace sting

#endif // STING_SYNC_FUTURE_H
