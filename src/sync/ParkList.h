//===- sync/ParkList.h - Parked-waiter queues --------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The waiting primitive the synchronization structures are built from: a
/// queue of kernel-parked TCBs with a lost-wakeup-free await protocol.
/// "The application completely controls the condition under which blocked
/// threads may be resumed" (paper section 3.1) — ParkList is that
/// mechanism: each structure supplies its own condition and decides whom
/// to wake.
///
/// Protocol: a waiter re-checks its condition under the list lock before
/// parking; wakers make the condition true *before* calling wake. A waker
/// unlinks the TCB before unparking it; a waiter that returns from the
/// park without having been popped (timeout, spurious return, chaos)
/// unlinks itself under the lock before the next loop iteration, so the
/// queue never holds residue for a thread that is no longer waiting.
///
/// Timed waits (awaitUntil) check the condition *before* the deadline on
/// every pass, so a wake racing the deadline is never lost: if the waker
/// made the condition true, the waiter reports Ready even when the clock
/// has expired. Async cancellation (terminate / raiseIn) unwinds out of
/// the park; the catch block below retracts the waiter's queue node and —
/// if a waker had already popped it, i.e. the dying waiter consumed a
/// wake — passes that wake to the next waiter so signals are never
/// swallowed by cancellation.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SYNC_PARKLIST_H
#define STING_SYNC_PARKLIST_H

#include "core/Current.h"
#include "core/Tcb.h"
#include "core/ThreadController.h"
#include "obs/TraceBuffer.h"
#include "support/Chaos.h"
#include "support/Deadline.h"
#include "support/IntrusiveList.h"
#include "support/SpinLock.h"

#include <mutex>
#include <vector>

namespace sting {

/// A queue of parked thread control blocks.
class ParkList {
  using List = IntrusiveList<Schedulable, WaiterQueueTag>;

public:
  /// Blocks the calling thread until \p Condition() returns true.
  /// \p Condition may have side effects (e.g. a try-acquire); it runs
  /// either outside the lock (fast path) or under it (pre-park check).
  template <typename Cond> void await(Cond Condition, const void *Blocker) {
    (void)awaitUntil(Condition, Blocker, Deadline::never());
  }

  /// Timed await: blocks until \p Condition() holds (Ready) or \p D
  /// expires with the condition still false (Timeout). The condition is
  /// re-checked before reporting Timeout, so a wake racing the deadline
  /// resolves as Ready; a timed-out waiter leaves no queue node behind.
  template <typename Cond>
  WaitResult awaitUntil(Cond Condition, const void *Blocker, Deadline D) {
    for (;;) {
      if (Condition())
        return WaitResult::Ready;
      if (D.expired()) {
        STING_TRACE_EVENT(TimeoutFired, currentThread()->id(), 1);
        return WaitResult::Timeout;
      }
      // Chaos: an extra control transfer right where a waiter decides to
      // publish itself — the window the park protocol must keep safe.
      if (STING_CHAOS_FIRE(PreemptPoint)) {
        STING_TRACE_EVENT(ChaosInject, currentThread()->id(),
                          static_cast<std::uint32_t>(
                              chaos::Site::PreemptPoint));
        ThreadController::yieldProcessor();
      }
      Tcb &Self = *currentTcb();
      {
        std::lock_guard<SpinLock> Guard(Lock);
        if (Condition())
          return WaitResult::Ready;
        Waiters.pushBack(Self);
      }
      try {
        ThreadController::parkCurrent(ParkClass::Kernel, Blocker, D);
      } catch (...) {
        // Async terminate / raise unwinding out of the park. Retract our
        // node; if a waker already popped it, this cancellation consumed
        // a wake some other waiter may be owed — pass the baton.
        bool ConsumedWake = false;
        {
          std::lock_guard<SpinLock> Guard(Lock);
          if (waiterLinked(Self))
            List::erase(Self);
          else
            ConsumedWake = true;
        }
        if (ConsumedWake)
          wakeOne();
        throw;
      }
      // Normal resume. A real waker popped our node before unparking; a
      // timeout or spurious return left it queued — take it back before
      // re-checking, so a timed-out waiter never lingers in the queue.
      {
        std::lock_guard<SpinLock> Guard(Lock);
        if (waiterLinked(Self))
          List::erase(Self);
      }
    }
  }

  /// Wakes the oldest waiter, if any. \returns true if one was woken.
  ///
  /// A linked waiter is pinned inside awaitUntil (its stack frame holds
  /// the queue node), so reading its thread binding under the lock is
  /// safe; once unlinked and the lock released, the waiter may be woken
  /// independently (its timeout timer), finish, and have its TCB recycled
  /// — so the deferred unpark goes by ThreadRef, which re-validates under
  /// the thread's waiter lock (ThreadController::unparkThreadKernel),
  /// never by a raw Tcb pointer.
  bool wakeOne() {
    ThreadRef Woken;
    {
      std::lock_guard<SpinLock> Guard(Lock);
      if (Waiters.empty())
        return false;
      Woken = ThreadRef(Waiters.popFront().asTcb().thread());
    }
    ThreadController::unparkThreadKernel(*Woken, EnqueueReason::KernelBlock);
    return true;
  }

  /// Wakes every waiter (the paper's mutex-release semantics: "all threads
  /// blocked on this mutex are restored onto some ready queue"). Each
  /// waiter is *fully unlinked* while the lock is held — waiters unlink
  /// themselves under the same lock on timeout/cancellation, so splicing
  /// the queue aside and draining it unlocked would let the two race on
  /// the same intrusive nodes. Only the unparks (pinned by ThreadRef, see
  /// wakeOne) run outside the lock.
  void wakeAll() {
    std::vector<ThreadRef> Woken;
    {
      std::lock_guard<SpinLock> Guard(Lock);
      Woken.reserve(Waiters.size());
      while (!Waiters.empty())
        Woken.push_back(ThreadRef(Waiters.popFront().asTcb().thread()));
    }
    for (const ThreadRef &T : Woken)
      ThreadController::unparkThreadKernel(*T, EnqueueReason::KernelBlock);
  }

  /// Racy count for tests and diagnostics.
  std::size_t waiterCount() const {
    std::lock_guard<SpinLock> Guard(Lock);
    return Waiters.size();
  }

private:
  /// Is \p Self's waiter-queue hook linked? The hook is dedicated to park
  /// lists (never touched by ready queues), and every wake path unlinks
  /// nodes while holding Lock, so under our lock "linked" means exactly
  /// "still in Waiters" — the premise the self-unlink paths above rest on.
  static bool waiterLinked(Tcb &Self) {
    return static_cast<ListNode<WaiterQueueTag> &>(
               static_cast<Schedulable &>(Self))
        .isLinked();
  }

  mutable SpinLock Lock;
  List Waiters;
};

} // namespace sting

#endif // STING_SYNC_PARKLIST_H
