//===- sync/ParkList.h - Parked-waiter queues --------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The waiting primitive the synchronization structures are built from: a
/// queue of kernel-parked TCBs with a lost-wakeup-free await protocol.
/// "The application completely controls the condition under which blocked
/// threads may be resumed" (paper section 3.1) — ParkList is that
/// mechanism: each structure supplies its own condition and decides whom
/// to wake.
///
/// Protocol: a waiter re-checks its condition under the list lock before
/// parking; wakers make the condition true *before* calling wake. A waker
/// unlinks the TCB before unparking it, so a waiter that returns from the
/// park owns its link node again (and spurious unparks — e.g. a wakeAll
/// that raced with the waiter's own acquisition — simply re-run the loop).
///
//===----------------------------------------------------------------------===//

#ifndef STING_SYNC_PARKLIST_H
#define STING_SYNC_PARKLIST_H

#include "core/Current.h"
#include "core/Tcb.h"
#include "core/ThreadController.h"
#include "support/IntrusiveList.h"
#include "support/SpinLock.h"

#include <mutex>

namespace sting {

/// A queue of parked thread control blocks.
class ParkList {
public:
  /// Blocks the calling thread until \p Condition() returns true.
  /// \p Condition may have side effects (e.g. a try-acquire); it runs
  /// either outside the lock (fast path) or under it (pre-park check).
  template <typename Cond> void await(Cond Condition, const void *Blocker) {
    for (;;) {
      if (Condition())
        return;
      Tcb &Self = *currentTcb();
      {
        std::lock_guard<SpinLock> Guard(Lock);
        if (Condition())
          return;
        Waiters.pushBack(Self);
      }
      ThreadController::parkCurrent(ParkClass::Kernel, Blocker);
      // Whoever woke us unlinked our node first; loop and re-test.
    }
  }

  /// Wakes the oldest waiter, if any. \returns true if one was woken.
  bool wakeOne() {
    Tcb *Woken = nullptr;
    {
      std::lock_guard<SpinLock> Guard(Lock);
      if (Waiters.empty())
        return false;
      Woken = &Waiters.popFront().asTcb();
    }
    ThreadController::unparkTcb(*Woken, EnqueueReason::KernelBlock);
    return true;
  }

  /// Wakes every waiter (the paper's mutex-release semantics: "all threads
  /// blocked on this mutex are restored onto some ready queue").
  void wakeAll() {
    IntrusiveList<Schedulable, ReadyQueueTag> Woken;
    {
      std::lock_guard<SpinLock> Guard(Lock);
      Woken.splice(Waiters);
    }
    while (!Woken.empty()) {
      Tcb &C = Woken.popFront().asTcb();
      ThreadController::unparkTcb(C, EnqueueReason::KernelBlock);
    }
  }

  /// Racy count for tests and diagnostics.
  std::size_t waiterCount() const {
    std::lock_guard<SpinLock> Guard(Lock);
    return Waiters.size();
  }

private:
  mutable SpinLock Lock;
  IntrusiveList<Schedulable, ReadyQueueTag> Waiters;
};

} // namespace sting

#endif // STING_SYNC_PARKLIST_H
