//===- sync/Mutex.h - Active/passive spinning mutexes ------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's mutex (section 4.2.1): "(make-mutex active passive)".
/// Acquisition escalates through three phases:
///
///  1. *Active* spinning: the thread retains its virtual processor for
///     `active` test attempts.
///  2. *Passive* spinning: the thread yields its VP and retries on each
///     redispatch, `passive` times.
///  3. Blocking: the thread parks on the mutex's waiter queue; release
///     restores all blocked threads to ready queues.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SYNC_MUTEX_H
#define STING_SYNC_MUTEX_H

#include "sync/ParkList.h"

#include <atomic>
#include <cstdint>

namespace sting {

/// Counters exposed for tests and the benchmark harness.
struct MutexStats {
  std::atomic<std::uint64_t> FastAcquires{0};    ///< got it on first try
  std::atomic<std::uint64_t> ActiveAcquires{0};  ///< got it while spinning
  std::atomic<std::uint64_t> PassiveAcquires{0}; ///< got it after yielding
  std::atomic<std::uint64_t> BlockedAcquires{0}; ///< had to park
};

/// A user-level mutex with configurable active and passive spin counts.
class Mutex {
public:
  /// \p ActiveSpins: lock-test attempts while holding the VP.
  /// \p PassiveSpins: yield-and-retry rounds before blocking.
  explicit Mutex(std::uint32_t ActiveSpins = 128,
                 std::uint32_t PassiveSpins = 4)
      : ActiveSpins(ActiveSpins), PassiveSpins(PassiveSpins) {}

  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  /// Acquires the mutex (mutex-acquire). Must run on a sting thread.
  void acquire();

  /// Timed acquire: escalates through active spin rounds (with bounded
  /// exponential backoff between rounds), passive yields, then a timed
  /// park. \returns false if \p D expired unacquired — the waiter queue
  /// then holds no residue for this thread. An acquire racing the
  /// deadline wins: the lock is re-tested before reporting failure.
  bool tryAcquireUntil(Deadline D);
  bool tryAcquireFor(std::uint64_t Nanos) {
    return tryAcquireUntil(Deadline::in(Nanos));
  }

  /// Single acquisition attempt.
  bool tryAcquire() {
    return !Locked.load(std::memory_order_relaxed) &&
           !Locked.exchange(true, std::memory_order_acquire);
  }

  /// Releases the mutex (mutex-release), waking all blocked threads.
  void release();

  bool isLocked() const { return Locked.load(std::memory_order_relaxed); }

  /// BasicLockable aliases so std::lock_guard composes.
  void lock() { acquire(); }
  void unlock() { release(); }

  const MutexStats &stats() const { return Stats; }

private:
  /// Final lock test once the deadline has passed.
  bool tryAcquireExpiring();

  std::uint32_t ActiveSpins;
  std::uint32_t PassiveSpins;
  std::atomic<bool> Locked{false};
  ParkList Blocked;
  MutexStats Stats;
};

/// The paper's (with-mutex mutex body): acquires around a callable and
/// releases even if the body exits with an exception.
template <typename Fn> decltype(auto) withMutex(Mutex &M, Fn &&Body) {
  struct Guard {
    Mutex &M;
    ~Guard() { M.release(); }
  };
  M.acquire();
  Guard G{M};
  return std::forward<Fn>(Body)();
}

} // namespace sting

#endif // STING_SYNC_MUTEX_H
