//===- sync/Speculative.cpp - Speculative parallelism ------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sync/Speculative.h"

namespace sting {

ThreadRef waitForOne(std::span<const ThreadRef> Group, bool TerminateLosers) {
  STING_CHECK(!Group.empty(), "waitForOne over an empty group");

  std::vector<Thread *> Raw;
  Raw.reserve(Group.size());
  for (const ThreadRef &T : Group)
    Raw.push_back(T.get());

  ThreadController::blockOnGroup(1, Raw);

  ThreadRef Winner;
  for (const ThreadRef &T : Group) {
    if (!Winner && T->isDetermined()) {
      Winner = T;
      continue;
    }
    // "(map thread-terminate block-group)" — the paper terminates every
    // member; terminate of the already-determined winner is a no-op, and
    // losers die at their next controller call.
    if (TerminateLosers)
      ThreadController::threadTerminate(*T);
  }
  STING_CHECK(Winner, "blockOnGroup returned without a determined member");
  return Winner;
}

} // namespace sting
