//===- sync/Speculative.cpp - Speculative parallelism ------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sync/Speculative.h"

namespace sting {

ThreadRef waitForOne(std::span<const ThreadRef> Group, bool TerminateLosers) {
  ThreadRef Winner =
      waitForOneUntil(Group, Deadline::never(), TerminateLosers);
  STING_CHECK(Winner, "blockOnGroup returned without a determined member");
  return Winner;
}

ThreadRef waitForOneUntil(std::span<const ThreadRef> Group, Deadline D,
                          bool TerminateLosers) {
  STING_CHECK(!Group.empty(), "waitForOne over an empty group");

  std::vector<Thread *> Raw;
  Raw.reserve(Group.size());
  for (const ThreadRef &T : Group)
    Raw.push_back(T.get());

  if (ThreadController::blockOnGroupUntil(1, Raw, D) == WaitResult::Timeout)
    return ThreadRef(); // losers keep running; caller decides their fate

  ThreadRef Winner;
  for (const ThreadRef &T : Group) {
    if (!Winner && T->isDetermined()) {
      Winner = T;
      continue;
    }
    // "(map thread-terminate block-group)" — the paper terminates every
    // member. Termination is idempotent: an already-determined loser (it
    // raced the winner) is a no-op, a not-yet-started (delayed/scheduled)
    // loser is determined in place without ever running, and an evaluating
    // loser unwinds at its next controller call or park exit.
    if (TerminateLosers)
      ThreadController::threadTerminate(*T);
  }
  STING_CHECK(Winner, "blockOnGroup returned without a determined member");
  return Winner;
}

} // namespace sting
