//===- sync/Stream.h - Synchronizing streams ---------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-defined synchronizing stream of the paper's sieve example
/// (section 3.1.1): "a blocking operation on stream access (hd) and an
/// atomic operation for appending to the end of a stream (attach)".
///
/// A stream is an append-only list of cells; readers traverse it with
/// cursors (the paper's (rest input)), so any number of consumers can read
/// the whole stream independently. hd blocks until the cursor's cell
/// exists.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SYNC_STREAM_H
#define STING_SYNC_STREAM_H

#include "sync/ParkList.h"

#include <atomic>
#include <optional>

namespace sting {

/// An append-only synchronizing stream of T.
template <typename T> class Stream {
  struct Cell {
    explicit Cell(T Val) : Val(std::move(Val)) {}
    T Val;
    std::atomic<Cell *> Next{nullptr};
  };

public:
  Stream() = default;
  Stream(const Stream &) = delete;
  Stream &operator=(const Stream &) = delete;

  ~Stream() {
    Cell *C = Head.load(std::memory_order_relaxed);
    while (C) {
      Cell *Next = C->Next.load(std::memory_order_relaxed);
      delete C;
      C = Next;
    }
  }

  /// A read position. Copyable: copies traverse independently from the
  /// same point (the paper's persistent list semantics).
  class Cursor {
  public:
    Cursor() = default;

  private:
    friend class Stream;
    explicit Cursor(const Stream *S) : S(S) {}
    const Stream *S = nullptr;
    Cell *At = nullptr; ///< last consumed cell; null = before first
  };

  /// \returns a cursor at the beginning of the stream.
  Cursor begin() const { return Cursor(this); }

  /// Atomically appends \p Val (the paper's attach) and wakes readers.
  void attach(T Val) {
    auto *C = new Cell(std::move(Val));
    {
      std::lock_guard<SpinLock> Guard(TailLock);
      if (Cell *Last = Tail) {
        Last->Next.store(C, std::memory_order_release);
      } else {
        Head.store(C, std::memory_order_release);
      }
      Tail = C;
      Count.fetch_add(1, std::memory_order_release);
    }
    Readers.wakeAll();
  }

  /// Blocking head (the paper's hd): waits until the element after
  /// \p Pos exists and returns a reference to it without consuming.
  const T &hd(const Cursor &Pos) {
    Cell *C = nextCell(Pos);
    if (!C) {
      Readers.await([&] { return (C = nextCell(Pos)) != nullptr; }, this);
    }
    return C->Val;
  }

  /// Timed head: \returns null if \p D expired before the element after
  /// \p Pos appeared; an attach racing the deadline wins.
  const T *hdUntil(const Cursor &Pos, Deadline D) {
    Cell *C = nextCell(Pos);
    if (!C &&
        Readers.awaitUntil([&] { return (C = nextCell(Pos)) != nullptr; },
                           this, D) == WaitResult::Timeout)
      return nullptr;
    return &C->Val;
  }
  const T *hdFor(const Cursor &Pos, std::uint64_t Nanos) {
    return hdUntil(Pos, Deadline::in(Nanos));
  }

  /// Timed hd + rest: \returns nullopt on timeout; otherwise returns the
  /// next element by value and advances \p Pos.
  std::optional<T> nextUntil(Cursor &Pos, Deadline D) {
    const T *Val = hdUntil(Pos, D);
    if (!Val)
      return std::nullopt;
    T Out = *Val;
    Pos = rest(Pos);
    return Out;
  }
  std::optional<T> nextFor(Cursor &Pos, std::uint64_t Nanos) {
    return nextUntil(Pos, Deadline::in(Nanos));
  }

  /// Non-blocking head probe.
  const T *tryHd(const Cursor &Pos) const {
    Cell *C = nextCell(Pos);
    return C ? &C->Val : nullptr;
  }

  /// Advances past the current head (the paper's rest). The element must
  /// exist; call hd first (or use next()).
  Cursor rest(const Cursor &Pos) const {
    Cell *C = nextCell(Pos);
    STING_CHECK(C, "rest past the end of a stream");
    Cursor Out = Pos;
    Out.At = C;
    return Out;
  }

  /// hd + rest: blocks for the next element, returns it by value and
  /// advances \p Pos.
  T next(Cursor &Pos) {
    T Val = hd(Pos);
    Pos = rest(Pos);
    return Val;
  }

  /// Elements attached so far.
  std::size_t size() const { return Count.load(std::memory_order_acquire); }

private:
  Cell *nextCell(const Cursor &Pos) const {
    STING_DCHECK(Pos.S == this, "cursor belongs to another stream");
    if (Pos.At)
      return Pos.At->Next.load(std::memory_order_acquire);
    return Head.load(std::memory_order_acquire);
  }

  std::atomic<Cell *> Head{nullptr};
  Cell *Tail = nullptr;
  SpinLock TailLock;
  std::atomic<std::size_t> Count{0};
  ParkList Readers;
};

} // namespace sting

#endif // STING_SYNC_STREAM_H
