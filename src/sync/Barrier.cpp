//===- sync/Barrier.cpp - Barrier synchronization ----------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sync/Barrier.h"

#include "core/Current.h"
#include "core/Thread.h"
#include "core/ThreadController.h"
#include "obs/TraceBuffer.h"

namespace sting {

void waitForAll(std::span<Thread *const> Group) {
  ThreadController::blockOnGroup(Group.size(), Group);
}

void waitForAll(std::span<const ThreadRef> Group) {
  std::vector<Thread *> Raw;
  Raw.reserve(Group.size());
  for (const ThreadRef &T : Group)
    Raw.push_back(T.get());
  ThreadController::blockOnGroup(Raw.size(), Raw);
}

WaitResult waitForAllUntil(std::span<Thread *const> Group, Deadline D) {
  return ThreadController::blockOnGroupUntil(Group.size(), Group, D);
}

WaitResult waitForAllUntil(std::span<const ThreadRef> Group, Deadline D) {
  std::vector<Thread *> Raw;
  Raw.reserve(Group.size());
  for (const ThreadRef &T : Group)
    Raw.push_back(T.get());
  return ThreadController::blockOnGroupUntil(Raw.size(), Raw, D);
}

CyclicBarrier::CyclicBarrier(std::size_t Parties) : Parties(Parties) {
  STING_CHECK(Parties > 0, "barrier needs at least one party");
}

std::uint64_t CyclicBarrier::arriveAndWait() {
  std::uint64_t MyPhase;
  bool Last = false;
  {
    std::lock_guard<SpinLock> Guard(Lock);
    MyPhase = Phase.load(std::memory_order_relaxed);
    if (++Arrived == Parties) {
      Arrived = 0;
      Phase.store(MyPhase + 1, std::memory_order_release);
      Waiters.wakeAll();
      Last = true;
    }
  }
  Thread *Self = currentThread();
  STING_TRACE_EVENT(BarrierArrive, Self ? Self->id() : 0,
                    static_cast<std::uint32_t>(MyPhase));
  if (Last) {
    STING_TRACE_EVENT(BarrierRelease, Self ? Self->id() : 0,
                      static_cast<std::uint32_t>(MyPhase));
    return MyPhase;
  }
  try {
    Waiters.await(
        [&] { return Phase.load(std::memory_order_acquire) != MyPhase; },
        this);
  } catch (...) {
    retractArrival(MyPhase);
    throw;
  }
  return MyPhase;
}

std::optional<std::uint64_t> CyclicBarrier::arriveAndWaitUntil(Deadline D) {
  std::uint64_t MyPhase;
  bool Last = false;
  {
    std::lock_guard<SpinLock> Guard(Lock);
    MyPhase = Phase.load(std::memory_order_relaxed);
    if (++Arrived == Parties) {
      Arrived = 0;
      Phase.store(MyPhase + 1, std::memory_order_release);
      Waiters.wakeAll();
      Last = true;
    }
  }
  Thread *Self = currentThread();
  STING_TRACE_EVENT(BarrierArrive, Self ? Self->id() : 0,
                    static_cast<std::uint32_t>(MyPhase));
  if (Last) {
    STING_TRACE_EVENT(BarrierRelease, Self ? Self->id() : 0,
                      static_cast<std::uint32_t>(MyPhase));
    return MyPhase;
  }
  WaitResult R;
  try {
    R = Waiters.awaitUntil(
        [&] { return Phase.load(std::memory_order_acquire) != MyPhase; },
        this, D);
  } catch (...) {
    retractArrival(MyPhase);
    throw;
  }
  if (R == WaitResult::Ready)
    return MyPhase;
  // Timed out. The release may still race us here: retraction succeeds
  // only if the phase has not advanced; otherwise we were in fact freed.
  if (!retractArrival(MyPhase))
    return MyPhase;
  return std::nullopt;
}

bool CyclicBarrier::retractArrival(std::uint64_t MyPhase) {
  std::lock_guard<SpinLock> Guard(Lock);
  if (Phase.load(std::memory_order_relaxed) != MyPhase)
    return false; // phase completed: our arrival already counted
  STING_CHECK(Arrived > 0, "barrier retraction with no arrivals");
  --Arrived;
  return true;
}

} // namespace sting
