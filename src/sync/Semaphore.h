//===- sync/Semaphore.h - Counting semaphores --------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A counting semaphore over the park machinery. In the paper semaphores
/// appear as one of the representations a tuple-space can specialize to
/// (section 4.2); the tuple module reuses this implementation.
///
//===----------------------------------------------------------------------===//

#ifndef STING_SYNC_SEMAPHORE_H
#define STING_SYNC_SEMAPHORE_H

#include "sync/ParkList.h"

#include <atomic>
#include <cstdint>

namespace sting {

/// A counting semaphore.
class Semaphore {
public:
  explicit Semaphore(std::int64_t Initial = 0) : Count(Initial) {}

  Semaphore(const Semaphore &) = delete;
  Semaphore &operator=(const Semaphore &) = delete;

  /// P / wait: blocks until a permit is available, then takes it.
  void acquire();

  /// Timed P: \returns false if \p D expired with no permit taken (the
  /// waiter queue is left clean); a release racing the deadline wins.
  bool tryAcquireUntil(Deadline D);
  bool tryAcquireFor(std::uint64_t Nanos) {
    return tryAcquireUntil(Deadline::in(Nanos));
  }

  /// Non-blocking P.
  bool tryAcquire();

  /// V / signal: releases \p N permits.
  void release(std::int64_t N = 1);

  std::int64_t available() const {
    return Count.load(std::memory_order_acquire);
  }

private:
  std::atomic<std::int64_t> Count;
  ParkList Waiters;
};

} // namespace sting

#endif // STING_SYNC_SEMAPHORE_H
