//===- dist/Route.h - Router protocol constants and routing hash -*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared vocabulary of the sharded tuple-space router (DESIGN.md §13):
/// the registration-protocol version exchanged in the Hello/HelloOk
/// handshake, the router-facing operation status, and the routing hash.
///
/// Routing is by a *stable* hash of a tuple's concrete key — its arity
/// plus the wire encoding of field 0. Hashing wire bytes (not in-process
/// pointers) is what makes the placement agree across processes and
/// across field spellings: a pending-text field and an interned Symbol
/// of the same characters marshal to the same Text bytes, so a put and a
/// later template for the same key always meet on the same shard. A
/// template whose field 0 is a formal has no concrete key and fans out.
///
//===----------------------------------------------------------------------===//

#ifndef STING_DIST_ROUTE_H
#define STING_DIST_ROUTE_H

#include "net/Wire.h"
#include "tuple/Tuple.h"

#include <cstdint>
#include <optional>
#include <string>

namespace sting::dist {

/// Registration-protocol version, carried as the one Fixnum field of
/// Hello and HelloOk. A shard that speaks a different version replies
/// Err and closes — a clean refusal, never a hang.
constexpr std::int64_t WireVersion = 1;

/// How a router operation ended. Mirrors net::RequestStatus but speaks
/// in shards: Unavailable means *every* candidate shard's breaker was
/// open (or every registration leg died), not a single-endpoint failure.
enum class Status : std::uint8_t {
  Ok,          ///< the operation completed (put acked / match delivered)
  Unavailable, ///< no candidate shard admitted the operation
  Timeout,     ///< the caller's deadline expired with no match
  Canceled,    ///< router shutdown / IoService teardown unwound the call
  Error,       ///< malformed tuple, protocol error, or transport failure
};

/// \returns a stable short name for \p S (tests, Err replies).
const char *statusName(Status S);

/// Marshals one tuple/template field into \p W. \returns false for kinds
/// the wire cannot carry (live threads, thunks) — those never leave the
/// process.
bool writeField(net::wire::Writer &W, const Field &F);

/// Marshals every field of \p T. \returns false if any field is
/// unmarshalable.
bool writeTupleFields(net::wire::Writer &W, const Tuple &T);

/// The routing key: FNV-1a over the arity and field 0's wire encoding.
/// nullopt when field 0 is not concrete data (a formal, live thread or
/// thunk) — such tuples/templates have no home shard.
std::optional<std::uint64_t> routeKey(const Tuple &T);

/// The canonical byte identity of a tuple: its fields' wire encoding, with
/// no opcode byte. Stable across re-encoding — a pending-text field, the
/// Symbol it interns to, and the Text field a Deliver carries all encode
/// to the same bytes — so replication bookkeeping (backup copies,
/// tombstones, resident ledgers; DESIGN.md §14) can count copies by value
/// across processes. Empty string when any field is unmarshalable (such
/// tuples never ride the wire and are never replicated). Pure; callable
/// from any thread.
std::string encodeFields(const Tuple &T);

/// The replica group of hash slot \p Slot in an \p N-shard ring is
/// {Slot, (Slot+1)%N} (DESIGN.md §14); the member serving as primary
/// alternates with the slot's promotion epoch, so an epoch bump *is* a
/// fail-over and the epoch's parity names the elected member with no
/// separate leader record to keep consistent. Pure.
inline std::size_t primaryOf(std::size_t Slot, std::uint64_t Epoch,
                             std::size_t N) {
  return (Slot + static_cast<std::size_t>(Epoch & 1)) % N;
}

/// The other member of \p Slot's replica group — the backup at \p Epoch.
/// Pure; equals primaryOf at epoch+1.
inline std::size_t backupOf(std::size_t Slot, std::uint64_t Epoch,
                            std::size_t N) {
  return (Slot + 1 - static_cast<std::size_t>(Epoch & 1)) % N;
}

} // namespace sting::dist

#endif // STING_DIST_ROUTE_H
