//===- dist/Shard.cpp - Shard-side tuple-space service ------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "dist/Shard.h"

#include "core/Gc.h"
#include "core/ThreadController.h"
#include "dist/Replica.h"
#include "dist/Route.h"
#include "gc/GlobalHeap.h"
#include "net/Wire.h"
#include "obs/Flow.h"
#include "support/SpinLock.h"

#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace sting::dist {

namespace {

using net::BufferedConn;
namespace wire = net::wire;

bool sendPayload(BufferedConn &C, const wire::Writer &W) {
  return C.writeFrame(W.payload().data(), W.payload().size()) && C.flush();
}

bool sendError(BufferedConn &C, const char *Reason) {
  wire::Writer W(wire::Op::Err);
  W.text(Reason);
  return sendPayload(C, W);
}


void adoptFlow(std::uint64_t F) {
  if (!F)
    return;
  obs::setCurrentFlowId(F);
  if (Thread *T = currentThread())
    T->setFlowId(F);
}

void stampReplyFlow(wire::Writer &W) {
  if (obs::FlowId F = obs::currentFlowId())
    W.flow(F);
}

/// Marshals a replication outcome: RepAck on success, Err(reason, epoch)
/// on a fenced/refused op — the clean-refusal discipline Hello set the
/// tone for, so a stale primary gets told, never hung up on. The trailing
/// epoch lets a peer arbitrarily far behind (a fresh router against a
/// cluster with failover history) adopt the receiver's view in one hop
/// instead of inching forward an epoch per retry.
bool sendRepAck(BufferedConn &C, const Replica::Ack &A) {
  if (!A.Ok) {
    wire::Writer W(wire::Op::Err);
    stampReplyFlow(W);
    W.text(A.Err ? A.Err : "replication error");
    W.fixnum(static_cast<std::int64_t>(A.Epoch));
    return sendPayload(C, W);
  }
  wire::Writer W(wire::Op::RepAck);
  stampReplyFlow(W);
  W.fixnum(static_cast<std::int64_t>(A.Epoch));
  W.fixnum(A.Info);
  return sendPayload(C, W);
}

/// One queued push frame (Deliver or Retracted). For a *take* delivery the
/// consumed tuple's values ride along, GC-rooted, so a frame the
/// connection dies before flushing can re-deposit its tuple — the
/// exactly-once half the shard owes (the router owes the other half for
/// frames that *were* flushed).
struct OutFrame {
  std::vector<std::uint8_t> Payload;
  std::uint64_t Id = 0;             ///< owning registration; 0 = none
  std::vector<gc::Value> Redeposit; ///< non-empty only for take deliveries
  bool Taken = false; ///< noteTaken ran (drainOut popped the frame); only
                      ///< then does a dropped frame owe a noteRestored —
                      ///< teardown-dropped frames never told the backup
                      ///< and must just re-deposit locally.
};

/// Per-connection registration state. The reader thread owns the
/// BufferedConn; depositor threads only touch the lock-guarded queue via
/// the proxy delivery callback.
class ShardConn {
public:
  ShardConn(TupleSpaceRef Space, BufferedConn &C, const ShardConfig &Cfg)
      : Space(std::move(Space)), C(C), Cfg(Cfg) {}

  ~ShardConn() { teardown(); }

  TupleSpaceRef Space;
  BufferedConn &C;
  ShardConfig Cfg;

  enum class RegState : std::uint8_t {
    Armed,    ///< registered in the space, no delivery yet
    Enqueued, ///< delivery callback ran; its frame is in (or past) Out
  };

  SpinLock Lock;
  std::unordered_map<std::uint64_t, RegState> Regs;
  std::deque<std::unique_ptr<OutFrame>> Out;
  bool ConnDead = false; ///< write side failed; stop queuing sends

  bool hasWork() {
    std::lock_guard<SpinLock> G(Lock);
    return !Regs.empty() || !Out.empty();
  }

  /// The proxy delivery callback (depositor thread, outside all space
  /// locks): serialize the match now — values may be unreachable from the
  /// space once consumed — and queue the frame for the reader thread.
  void onDeliver(std::uint64_t Id, Match M, bool Remove) {
    wire::Writer W(wire::Op::Deliver);
    if (std::uint64_t F = M.Flow ? M.Flow : obs::currentFlowId())
      W.flow(F);
    W.fixnum(static_cast<std::int64_t>(Id));
    for (gc::Value V : M.Fields)
      W.value(V);
    auto Fr = std::make_unique<OutFrame>();
    Fr->Payload = W.payload();
    Fr->Id = Id;
    if (Remove) {
      Fr->Redeposit = std::move(M.Fields);
      for (gc::Value &Slot : Fr->Redeposit)
        Space->heap().addRoot(&Slot);
    }
    std::lock_guard<SpinLock> G(Lock);
    auto It = Regs.find(Id);
    if (It != Regs.end())
      It->second = RegState::Enqueued;
    Out.push_back(std::move(Fr));
  }

  /// Releases \p Fr. \p Sent distinguishes a flushed frame (roots only)
  /// from a dropped one (re-deposit a consumed tuple first). Under
  /// replication a dropped frame whose noteTaken ran (Fr->Taken) restores
  /// the backup copy — or re-routes the tuple to the slot's current
  /// primary — before (or instead of) the local put. A frame dropped
  /// before drainOut ever popped it never decremented the ledger or told
  /// the backup anything, so it only re-deposits locally: an unpaired
  /// noteRestored would over-count the resident and forward a second
  /// backup copy, materializing a duplicate at the next promotion.
  void dispose(std::unique_ptr<OutFrame> Fr, bool Sent) {
    if (!Fr->Redeposit.empty()) {
      bool Local = true;
      if (!Sent && Fr->Taken && Cfg.Rep)
        Local = Cfg.Rep->noteRestored(Fr->Redeposit);
      for (gc::Value &Slot : Fr->Redeposit)
        Space->heap().removeRoot(&Slot);
      if (!Sent && Local) {
        Tuple T;
        T.reserve(Fr->Redeposit.size());
        for (gc::Value V : Fr->Redeposit)
          T.emplace_back(V);
        Space->put(std::move(T));
      }
    }
  }

  /// Sends every queued push frame. \returns false once the write side
  /// fails; queued and future frames then drain through teardown.
  bool drainOut() {
    for (;;) {
      std::unique_ptr<OutFrame> Fr;
      {
        std::lock_guard<SpinLock> G(Lock);
        if (ConnDead || Out.empty())
          return !ConnDead;
        Fr = std::move(Out.front());
        Out.pop_front();
      }
      // Replication's delivered⇒tombstoned invariant: the backup learns
      // the take *before* the Deliver frame can be observed, so a
      // promotion never resurrects a tuple someone already received. If
      // the write below fails, dispose() restores the copy — Taken marks
      // that there is a tombstone to undo.
      if (!Fr->Redeposit.empty() && Cfg.Rep) {
        Cfg.Rep->noteTaken(Fr->Redeposit);
        Fr->Taken = true;
      }
      bool Sent = C.writeFrame(Fr->Payload.data(), Fr->Payload.size(),
                               Deadline::in(Cfg.PollNanos * 1000)) &&
                  C.flush(Deadline::in(Cfg.PollNanos * 1000));
      std::uint64_t Id = Fr->Id;
      dispose(std::move(Fr), Sent);
      if (!Sent) {
        std::lock_guard<SpinLock> G(Lock);
        ConnDead = true;
        return false;
      }
      if (Id) {
        // The registration completed observably; forget it. (A later
        // Retract for it answers wasArmed=false via the unknown-id path.)
        std::lock_guard<SpinLock> G(Lock);
        auto It = Regs.find(Id);
        if (It != Regs.end() && It->second == RegState::Enqueued)
          Regs.erase(It);
      }
    }
  }

  /// Connection exit: every registration resolves exactly once. Armed ones
  /// retract (their tuples never left the space); delivered ones either
  /// flushed their frame (the router owns the tuple) or re-deposit it.
  void teardown() {
    for (;;) {
      std::uint64_t Id = 0;
      {
        std::lock_guard<SpinLock> G(Lock);
        if (Regs.empty())
          break;
        Id = Regs.begin()->first;
      }
      if (Space->retractProxy(Id)) {
        std::lock_guard<SpinLock> G(Lock);
        Regs.erase(Id);
        continue;
      }
      // A delivery owns the registration. Its callback may still be
      // running on the depositor thread; wait for the frame to reach the
      // queue (it always does — the callback fires exactly once and
      // cannot block on the space).
      for (;;) {
        {
          std::lock_guard<SpinLock> G(Lock);
          auto It = Regs.find(Id);
          if (It == Regs.end() || It->second == RegState::Enqueued) {
            Regs.erase(Id);
            break;
          }
        }
        ThreadController::yieldProcessor();
      }
    }
    // No registration remains, so no further callback can enqueue: the
    // queue is final. Drop every unsent frame, re-depositing consumed
    // tuples.
    std::deque<std::unique_ptr<OutFrame>> Dropped;
    {
      std::lock_guard<SpinLock> G(Lock);
      Dropped.swap(Out);
      ConnDead = true;
    }
    for (auto &Fr : Dropped)
      dispose(std::move(Fr), /*Sent=*/false);
  }
};

void serveShardConn(ShardConn &S) {
  BufferedConn &C = S.C;
  std::vector<std::uint8_t> Frame;
  for (;;) {
    if (!S.drainOut())
      return;
    // With registrations or queued pushes pending, poll so depositor
    // deliveries drain promptly; otherwise block until the client speaks.
    Deadline Poll =
        S.hasWork() ? Deadline::in(S.Cfg.PollNanos) : Deadline::never();
    if (!C.readFrame(Frame, Poll)) {
      if (errno == ETIMEDOUT)
        continue; // poll lap: drain pushes, try again
      return;     // EOF or connection error
    }
    wire::Reader R(Frame.data(), Frame.size());
    if (!R.ok()) {
      if (!sendError(C, "malformed frame"))
        return;
      continue;
    }
    adoptFlow(R.takeFlow());
    switch (R.op()) {
    case wire::Op::Hello: {
      wire::ReadField F;
      if (!R.next(F) || F.T != wire::Tag::Fixnum) {
        if (!sendError(C, "malformed hello"))
          return;
        break;
      }
      if (F.Num != WireVersion) {
        // Clean refusal, then close: the router surfaces this as a leg
        // failure instead of hanging on a silent peer.
        sendError(C, "version mismatch");
        return;
      }
      // Optional (slot, epoch) pairs: the router's promotion view. A
      // reconnecting stale primary learns its fencing here, before any
      // registration can arm against resurrected state.
      if (S.Cfg.Rep) {
        wire::ReadField SlotF, EpochF;
        while (R.next(SlotF) && SlotF.T == wire::Tag::Fixnum &&
               R.next(EpochF) && EpochF.T == wire::Tag::Fixnum)
          S.Cfg.Rep->observeEpoch(static_cast<std::uint64_t>(SlotF.Num),
                                  static_cast<std::uint64_t>(EpochF.Num));
      }
      wire::Writer W(wire::Op::HelloOk);
      stampReplyFlow(W);
      W.fixnum(WireVersion);
      if (!sendPayload(C, W))
        return;
      break;
    }
    case wire::Op::Register: {
      wire::ReadField IdF, FlagsF;
      Tuple Template;
      if (!R.next(IdF) || IdF.T != wire::Tag::Fixnum || !R.next(FlagsF) ||
          FlagsF.T != wire::Tag::Fixnum ||
          !wire::readTuple(R, Template)) {
        if (!sendError(C, "malformed register"))
          return;
        break;
      }
      std::uint64_t Id = static_cast<std::uint64_t>(IdF.Num);
      bool Remove = (FlagsF.Num & 1) != 0;
      bool Duplicate;
      {
        std::lock_guard<SpinLock> G(S.Lock);
        Duplicate = S.Regs.count(Id) != 0;
        // Insert before arming so the callback (which can fire inside
        // registerProxy on an immediate match) finds the entry.
        if (!Duplicate)
          S.Regs.emplace(Id, ShardConn::RegState::Armed);
      }
      if (Duplicate) {
        // Reply outside the lock: a socket write can park, and SpinLock
        // holders must never park.
        if (!sendError(C, "duplicate registration id"))
          return;
        break;
      }
      bool Ok = S.Space->registerProxy(
          Id, std::move(Template), Remove,
          [&S, Remove](std::uint64_t RegId, Match M) {
            S.onDeliver(RegId, std::move(M), Remove);
          });
      if (!Ok) {
        {
          std::lock_guard<SpinLock> G(S.Lock);
          S.Regs.erase(Id);
        }
        // "Dead on arrival": never armed, no delivery will ever fire —
        // the same promise a successful while-armed retract makes.
        wire::Writer W(wire::Op::Retracted);
        stampReplyFlow(W);
        W.fixnum(static_cast<std::int64_t>(Id));
        W.boolean(true);
        if (!sendPayload(C, W))
          return;
      }
      break;
    }
    case wire::Op::Retract: {
      wire::ReadField IdF;
      if (!R.next(IdF) || IdF.T != wire::Tag::Fixnum) {
        if (!sendError(C, "malformed retract"))
          return;
        break;
      }
      std::uint64_t Id = static_cast<std::uint64_t>(IdF.Num);
      bool WasArmed = S.Space->retractProxy(Id);
      if (WasArmed) {
        std::lock_guard<SpinLock> G(S.Lock);
        S.Regs.erase(Id);
      }
      STING_TRACE_EVENT(RouterRetract, 0,
                        WasArmed ? (1u << 16) : 0u);
      wire::Writer W(wire::Op::Retracted);
      stampReplyFlow(W);
      W.fixnum(static_cast<std::int64_t>(Id));
      W.boolean(WasArmed);
      if (!sendPayload(C, W))
        return;
      break;
    }
    case wire::Op::TsOut: {
      Tuple T;
      if (!wire::readTuple(R, T)) {
        if (!sendError(C, "malformed tuple"))
          return;
        break;
      }
      S.Space->put(std::move(T));
      wire::Writer W(wire::Op::TsAck);
      stampReplyFlow(W);
      if (!sendPayload(C, W))
        return;
      break;
    }
    case wire::Op::TsRd:
    case wire::Op::TsIn: {
      bool Destructive = R.op() == wire::Op::TsIn;
      Tuple T;
      if (!wire::readTuple(R, T)) {
        if (!sendError(C, "malformed template"))
          return;
        break;
      }
      // Parks the connection thread like net::tupleSpaceHandler — the
      // unary path for pool connections. Registration connections never
      // send these.
      Match M = Destructive ? S.Space->take(std::move(T))
                            : S.Space->read(std::move(T));
      // Delivered⇒tombstoned: the backup hears about the take before the
      // caller can observe the TsMatch.
      if (Destructive && S.Cfg.Rep)
        S.Cfg.Rep->noteTaken(M.Fields);
      wire::Writer W(wire::Op::TsMatch);
      stampReplyFlow(W);
      wire::writeMatch(W, M);
      if (!sendPayload(C, W))
        return;
      break;
    }
    case wire::Op::RepPut: {
      wire::ReadField SlotF, EpochF, FlagsF;
      Tuple T;
      if (!R.next(SlotF) || SlotF.T != wire::Tag::Fixnum ||
          !R.next(EpochF) || EpochF.T != wire::Tag::Fixnum ||
          !R.next(FlagsF) || FlagsF.T != wire::Tag::Fixnum ||
          !wire::readTuple(R, T)) {
        if (!sendError(C, "malformed repput"))
          return;
        break;
      }
      if (!S.Cfg.Rep) {
        if (!sendError(C, "no replica"))
          return;
        break;
      }
      Replica::Ack A = S.Cfg.Rep->onPut(
          static_cast<std::uint64_t>(SlotF.Num),
          static_cast<std::uint64_t>(EpochF.Num), (FlagsF.Num & 1) != 0,
          std::move(T));
      if (!sendRepAck(C, A))
        return;
      break;
    }
    case wire::Op::RepRetract: {
      wire::ReadField SlotF, EpochF;
      Tuple T;
      if (!R.next(SlotF) || SlotF.T != wire::Tag::Fixnum ||
          !R.next(EpochF) || EpochF.T != wire::Tag::Fixnum ||
          !wire::readTuple(R, T)) {
        if (!sendError(C, "malformed repretract"))
          return;
        break;
      }
      if (!S.Cfg.Rep) {
        if (!sendError(C, "no replica"))
          return;
        break;
      }
      Replica::Ack A =
          S.Cfg.Rep->onRetract(static_cast<std::uint64_t>(SlotF.Num),
                               static_cast<std::uint64_t>(EpochF.Num), T);
      if (!sendRepAck(C, A))
        return;
      break;
    }
    case wire::Op::RepPromote:
    case wire::Op::RepDemote: {
      bool Promote = R.op() == wire::Op::RepPromote;
      wire::ReadField SlotF, EpochF;
      if (!R.next(SlotF) || SlotF.T != wire::Tag::Fixnum ||
          !R.next(EpochF) || EpochF.T != wire::Tag::Fixnum) {
        if (!sendError(C, "malformed promote"))
          return;
        break;
      }
      if (!S.Cfg.Rep) {
        if (!sendError(C, "no replica"))
          return;
        break;
      }
      std::uint64_t Slot = static_cast<std::uint64_t>(SlotF.Num);
      std::uint64_t Epoch = static_cast<std::uint64_t>(EpochF.Num);
      Replica::Ack A = Promote ? S.Cfg.Rep->onPromote(Slot, Epoch)
                               : S.Cfg.Rep->onDemote(Slot, Epoch);
      if (!sendRepAck(C, A))
        return;
      break;
    }
    case wire::Op::RepPull: {
      wire::ReadField SlotF, EpochF, OffsetF;
      if (!R.next(SlotF) || SlotF.T != wire::Tag::Fixnum ||
          !R.next(EpochF) || EpochF.T != wire::Tag::Fixnum) {
        if (!sendError(C, "malformed pull"))
          return;
        break;
      }
      // Chunk cursor; absent means a whole-snapshot request from the top.
      std::uint64_t Offset = 0;
      if (R.next(OffsetF) && OffsetF.T == wire::Tag::Fixnum)
        Offset = static_cast<std::uint64_t>(OffsetF.Num);
      if (!S.Cfg.Rep) {
        if (!sendError(C, "no replica"))
          return;
        break;
      }
      Replica::PullReply P =
          S.Cfg.Rep->onPull(static_cast<std::uint64_t>(SlotF.Num),
                            static_cast<std::uint64_t>(EpochF.Num), Offset);
      if (!P.Ok) {
        if (!sendError(C, P.Err ? P.Err : "pull refused"))
          return;
        break;
      }
      wire::Writer W(wire::Op::RepState);
      stampReplyFlow(W);
      W.fixnum(SlotF.Num);
      W.fixnum(static_cast<std::int64_t>(P.Epoch));
      W.fixnum(P.Complete ? 1 : 0);
      W.fixnum(static_cast<std::int64_t>(P.Version));
      for (const std::string &B : P.Tuples)
        W.blob(B);
      if (!sendPayload(C, W))
        return;
      break;
    }
    default:
      if (!sendError(C, "unknown op"))
        return;
      break;
    }
  }
}

} // namespace

net::Server::Handler shardHandler(TupleSpaceRef Space, ShardConfig Config) {
  return [Space, Config](BufferedConn &C) {
    ShardConn S(Space, C, Config);
    serveShardConn(S);
    // ~ShardConn retracts/re-deposits; it must run before the server
    // closes the socket, which the handler-returns-then-close order
    // guarantees.
  };
}

} // namespace sting::dist
