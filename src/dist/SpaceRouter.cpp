//===- dist/SpaceRouter.cpp - Sharded tuple-space router ----------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "dist/SpaceRouter.h"

#include "core/Current.h"
#include "core/Gc.h"
#include "core/ThreadController.h"
#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "gc/GlobalHeap.h"
#include "obs/Flow.h"
#include "obs/SchedStats.h"
#include "obs/TraceBuffer.h"

#include <cerrno>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace sting::dist {

namespace wire = net::wire;
using net::BufferedConn;
using net::Socket;
using TC = ThreadController;

namespace {

void adoptFlow(std::uint64_t F) {
  if (!F)
    return;
  obs::setCurrentFlowId(F);
  if (Thread *T = currentThread())
    T->setFlowId(F);
}

/// Packs the RouterRoute trace payload: shard index (0xffff = fan-out, no
/// single home) in the low 16 bits, the leg count above.
std::uint32_t routePayload(std::size_t Shard, std::size_t Legs) {
  std::uint32_t S = Shard > 0xffff ? 0xffffu : static_cast<std::uint32_t>(Shard);
  return S | (static_cast<std::uint32_t>(Legs & 0xffff) << 16);
}

} // namespace

/// One blocking-match episode, pinned in the caller's stack frame. Wakers
/// (channel pumps) reach it only through an attached Leg, under that leg's
/// channel lock; once the caller detaches every leg the record is private
/// again. Lock order: Channel::Lock -> RouterOp::Lock.
struct SpaceRouter::RouterOp {
  SpinLock Lock;
  ParkList Done;
  bool HasMatch = false;
  Tuple Delivered;        ///< decoded wire fields (pending text/blob)
  std::uint64_t Flow = 0; ///< depositor's flow, carried by the Deliver
  std::size_t LegsLive = 0;
};

/// One registration leg on one shard. Owned by its channel's Legs map;
/// every field is guarded by the channel lock. A leg resolves exactly once
/// — Deliver, Retracted(wasArmed), or orphaned by channel death — which is
/// the router half of the wire-level Armed→Delivered discipline.
struct SpaceRouter::Leg {
  std::uint64_t Id = 0;
  RouterOp *Op = nullptr; ///< null once the caller detached
  bool Remove = false;
  bool RetractSent = false;
  /// Retracted(wasArmed=false) arrived before the Deliver it promises
  /// (the two are queued by different shard threads, so their order is
  /// not guaranteed): keep the leg until the Deliver shows up.
  bool DeliverOwed = false;
  std::vector<std::uint8_t> RegFrame; ///< Register payload, re-sent on reconnect
};

/// The per-shard registration channel: a pump thread owning the socket,
/// plus the lock-guarded leg table and outbound frame queue that caller
/// threads feed. The pump alternates queue drains with short timed reads,
/// so push dispatch, reconnects and shutdown all make progress within
/// ChannelPollNanos.
class SpaceRouter::Channel {
public:
  Channel(SpaceRouter &R, std::size_t Index) : R(R), Index(Index) {}

  /// Queues the leg's Register frame and takes ownership of the leg.
  /// \returns false (leg destroyed) when the router is closing.
  bool arm(std::unique_ptr<Leg> L) {
    bool NeedFork = false;
    {
      std::lock_guard<SpinLock> G(Lock);
      if (R.Closing.load(std::memory_order_acquire))
        return false;
      OutQ.push_back(L->RegFrame);
      std::uint64_t Id = L->Id;
      Legs.emplace(Id, L.release());
      if (!Started) {
        Started = true;
        NeedFork = true;
      }
    }
    if (NeedFork) {
      SpawnOptions Opts;
      Opts.Group = &R.Vm->rootGroup();
      ThreadRef P = TC::forkThread(
          [this]() -> AnyValue {
            run();
            return AnyValue();
          },
          Opts);
      std::lock_guard<SpinLock> G(Lock);
      Pump = std::move(P);
    }
    return true;
  }

  /// The caller's exit: unhook its op from this channel's leg and queue a
  /// Retract for a still-unresolved one. After detach returns for every
  /// armed leg, no pump references the op.
  void detach(std::uint64_t Id) {
    std::unique_ptr<Leg> Local;
    {
      std::lock_guard<SpinLock> G(Lock);
      auto It = Legs.find(Id);
      if (It == Legs.end())
        return;
      Leg *L = It->second;
      L->Op = nullptr;
      if (L->DeliverOwed || L->RetractSent)
        return;
      // If the Register frame is still queued — the channel has not
      // connected yet, or the pump has not drained it — the shard has
      // never seen this leg. Retract it locally by unqueueing the frame:
      // no delivery can ever fire, so the leg resolves here, without a
      // wire round-trip (and without the reconnect path misreading the
      // pending Retract as an unresolvable tombstone).
      for (auto QIt = OutQ.begin(); QIt != OutQ.end(); ++QIt) {
        if (*QIt == L->RegFrame) {
          OutQ.erase(QIt);
          Legs.erase(It);
          Local.reset(L);
          break;
        }
      }
      if (!Local) {
        L->RetractSent = true;
        wire::Writer W(wire::Op::Retract);
        W.fixnum(static_cast<std::int64_t>(Id));
        OutQ.push_back(W.payload());
      }
    }
    if (Local) {
      R.Stats.Retracts.fetch_add(1, std::memory_order_relaxed);
      if (VirtualProcessor *Vp = currentVp())
        Vp->stats().RouterRetracts.inc();
      STING_TRACE_EVENT(RouterRetract, 0, routePayload(Index, 0) | (1u << 16));
    }
  }

  std::size_t legCount() {
    std::lock_guard<SpinLock> G(Lock);
    return Legs.size();
  }

  /// Blocks until the pump thread (if ever started) has exited.
  void join() {
    for (;;) {
      ThreadRef P;
      {
        std::lock_guard<SpinLock> G(Lock);
        if (!Started)
          return;
        P = Pump;
      }
      if (P) {
        TC::threadWaitFor(*P, Deadline::never());
        return;
      }
      TC::yieldProcessor(); // arm() is mid-fork; the ref lands shortly
    }
  }

private:
  void run();
  bool handshake(BufferedConn &Conn);
  bool drainOut(BufferedConn &Conn);
  void dispatch(wire::Reader &R, std::uint64_t Flow);
  void failAllLegs();
  void resolveAndWake(Leg *L, bool Delivered);

  SpaceRouter &R;
  std::size_t Index;

  SpinLock Lock;
  std::unordered_map<std::uint64_t, Leg *> Legs;
  std::deque<std::vector<std::uint8_t>> OutQ;
  bool Started = false;
  ThreadRef Pump;
  ParkList Sleeper; ///< pump-only: timed park between connect rounds
};

/// Removes \p L from bookkeeping (caller holds the channel lock and will
/// erase/delete it): settles the op side and collects the wake for the
/// caller to fire after unlocking. Delivered legs updated their op before
/// calling this.
void SpaceRouter::Channel::resolveAndWake(Leg *L, bool /*Delivered*/) {
  if (RouterOp *Op = L->Op) {
    {
      std::lock_guard<SpinLock> G(Op->Lock);
      --Op->LegsLive;
    }
    L->Op = nullptr;
    // Waking under the channel lock is safe (ParkList wakes never take
    // these locks) and keeps leg teardown single-pass.
    Op->Done.wakeOne();
  }
}

void SpaceRouter::Channel::failAllLegs() {
  std::vector<Leg *> Dead;
  {
    std::lock_guard<SpinLock> G(Lock);
    for (auto &[Id, L] : Legs) {
      (void)Id;
      R.Stats.Orphans.fetch_add(1, std::memory_order_relaxed);
      resolveAndWake(L, false);
      Dead.push_back(L);
    }
    Legs.clear();
    OutQ.clear();
  }
  for (Leg *L : Dead)
    delete L;
}

bool SpaceRouter::Channel::handshake(BufferedConn &Conn) {
  wire::Writer W(wire::Op::Hello);
  if (std::uint64_t F = obs::currentFlowId())
    W.flow(F);
  W.fixnum(WireVersion);
  // Replication: carry the promoted-slot view as (slot, epoch) pairs, so
  // a rejoining stale primary demotes itself before this connection can
  // arm a registration against resurrected tuples.
  if (R.replicated())
    for (std::size_t S = 0; S != R.Config.Shards.size(); ++S)
      if (std::uint64_t E = R.slotEpoch(S)) {
        W.fixnum(static_cast<std::int64_t>(S));
        W.fixnum(static_cast<std::int64_t>(E));
      }
  if (!Conn.writeFrame(W.payload().data(), W.payload().size()) ||
      !Conn.flush())
    return false;
  std::vector<std::uint8_t> Frame;
  if (!Conn.readFrame(Frame,
                      Deadline::in(R.Config.Shards[Index].RequestTimeoutNanos)))
    return false;
  wire::Reader Rd(Frame.data(), Frame.size());
  if (!Rd.ok() || Rd.op() != wire::Op::HelloOk)
    return false; // Err (version mismatch) or garbage: clean refusal
  Rd.takeFlow();
  wire::ReadField F;
  return Rd.next(F) && F.T == wire::Tag::Fixnum && F.Num == WireVersion;
}

bool SpaceRouter::Channel::drainOut(BufferedConn &Conn) {
  for (;;) {
    std::vector<std::uint8_t> Frame;
    {
      std::lock_guard<SpinLock> G(Lock);
      if (OutQ.empty())
        return true;
      Frame = std::move(OutQ.front());
      OutQ.pop_front();
    }
    if (!Conn.writeFrame(Frame.data(), Frame.size()) || !Conn.flush())
      return false;
  }
}

void SpaceRouter::Channel::run() {
  BufferedConn Conn{Socket()};
  bool Up = false;
  net::CircuitBreaker &Breaker = R.Pool.breaker(Index);
  const net::ClientConfig &CC = R.Config.Shards[Index];
  while (!R.Closing.load(std::memory_order_acquire)) {
    if (!Up) {
      bool Probe = false;
      bool Ok = Breaker.tryAdmit(Probe);
      if (Ok) {
        Socket S = Socket::connectUntil(*R.Io, CC.Host.c_str(), CC.Port,
                                        Deadline::in(CC.ConnectTimeoutNanos));
        Ok = S.valid();
        if (Ok) {
          Conn = BufferedConn(std::move(S), CC.WriteHighWater);
          Ok = handshake(Conn);
        }
        if (Ok)
          Breaker.recordSuccess();
        else
          Breaker.recordFailure();
      }
      if (!Ok) {
        // Fail the queued legs *now*: their callers get Unavailable and
        // can reroute, instead of hanging for the retry pause.
        Conn = BufferedConn(Socket());
        failAllLegs();
        Sleeper.awaitUntil(
            [&] { return R.Closing.load(std::memory_order_acquire); }, this,
            Deadline::in(R.Config.ChannelRetryNanos));
        continue;
      }
      Up = true;
      // Re-arm every live leg on the fresh connection: the shard's
      // per-connection registry started empty, so each unresolved leg
      // re-sends its Register. Tombstones awaiting a Deliver from the
      // *dead* connection can never be paid; orphan them.
      {
        std::lock_guard<SpinLock> G(Lock);
        OutQ.clear();
        for (auto It = Legs.begin(); It != Legs.end();) {
          Leg *L = It->second;
          if (L->DeliverOwed || L->RetractSent) {
            R.Stats.Orphans.fetch_add(1, std::memory_order_relaxed);
            resolveAndWake(L, false);
            It = Legs.erase(It);
            delete L;
            continue;
          }
          OutQ.push_back(L->RegFrame);
          ++It;
        }
      }
    }
    if (!drainOut(Conn)) {
      Up = false;
      continue;
    }
    std::vector<std::uint8_t> Frame;
    if (!Conn.readFrame(Frame, Deadline::in(R.Config.ChannelPollNanos))) {
      if (errno == ETIMEDOUT)
        continue;
      Up = false; // EOF/reset: reconnect lap re-arms
      continue;
    }
    wire::Reader Rd(Frame.data(), Frame.size());
    if (!Rd.ok()) {
      Up = false; // framing is lost; resync with a fresh connection
      continue;
    }
    std::uint64_t Flow = Rd.takeFlow();
    dispatch(Rd, Flow);
  }
  failAllLegs(); // shutdown: parked callers wake and report Canceled
}

void SpaceRouter::Channel::dispatch(wire::Reader &Rd, std::uint64_t Flow) {
  switch (Rd.op()) {
  case wire::Op::Deliver: {
    wire::ReadField IdF;
    Tuple T;
    if (!Rd.next(IdF) || IdF.T != wire::Tag::Fixnum ||
        !wire::readTuple(Rd, T))
      return;
    std::uint64_t Id = static_cast<std::uint64_t>(IdF.Num);
    bool Redeposit = false;
    {
      std::lock_guard<SpinLock> G(Lock);
      auto It = Legs.find(Id);
      if (It == Legs.end())
        return; // the state machine erases a leg only once it cannot
                // receive a Deliver; an unknown id is a no-op
      Leg *L = It->second;
      R.Stats.Deliveries.fetch_add(1, std::memory_order_relaxed);
      if (RouterOp *Op = L->Op) {
        bool Won;
        {
          std::lock_guard<SpinLock> OG(Op->Lock);
          Won = !Op->HasMatch;
          if (Won) {
            Op->HasMatch = true;
            Op->Delivered = std::move(T);
            Op->Flow = Flow;
          }
          --Op->LegsLive;
        }
        L->Op = nullptr;
        Op->Done.wakeOne();
        // A second winner (two shards delivered before any retract
        // landed): this leg's take must go back into the logical space.
        Redeposit = !Won && L->Remove;
      } else {
        // Caller already left (timeout/retract race): a losing take
        // delivery is re-deposited, a read delivery needs nothing.
        Redeposit = L->Remove;
      }
      Legs.erase(It);
      delete L;
    }
    if (Redeposit)
      R.redeposit(std::move(T));
    return;
  }
  case wire::Op::Retracted: {
    wire::ReadField IdF, ArmedF;
    if (!Rd.next(IdF) || IdF.T != wire::Tag::Fixnum || !Rd.next(ArmedF) ||
        (ArmedF.T != wire::Tag::True && ArmedF.T != wire::Tag::False))
      return;
    std::uint64_t Id = static_cast<std::uint64_t>(IdF.Num);
    bool WasArmed = ArmedF.T == wire::Tag::True;
    std::lock_guard<SpinLock> G(Lock);
    auto It = Legs.find(Id);
    if (It == Legs.end())
      return;
    Leg *L = It->second;
    if (WasArmed) {
      // The shard's retract-or-observe promise: no delivery fired, none
      // will. Either our Retract won (count it) or the registration was
      // refused outright (an orphaned leg).
      if (L->RetractSent) {
        R.Stats.Retracts.fetch_add(1, std::memory_order_relaxed);
        if (VirtualProcessor *Vp = currentVp())
          Vp->stats().RouterRetracts.inc();
        STING_TRACE_EVENT(RouterRetract, 0,
                          routePayload(Index, 0) | (1u << 16));
      } else {
        R.Stats.Orphans.fetch_add(1, std::memory_order_relaxed);
      }
      resolveAndWake(L, false);
      Legs.erase(It);
      delete L;
    } else {
      // A delivery owns the registration; its Deliver frame may still be
      // behind us (different shard-side queuing threads). Hold the leg.
      L->DeliverOwed = true;
    }
    return;
  }
  case wire::Op::Overload:
    // The shard shed this connection; nothing useful follows.
    errno = EAGAIN;
    break;
  default:
    break; // stray HelloOk/Err replies carry no registration state
  }
}

SpaceRouter::SpaceRouter(VirtualMachine &Vm, IoService &Io,
                         RouterConfig Config)
    : Vm(&Vm), Io(&Io), Config(std::move(Config)),
      Pool(Io, [this] {
        net::PoolConfig PC;
        PC.MaxConnections = this->Config.MaxConnectionsPerShard;
        PC.Endpoints = this->Config.Shards;
        return PC;
      }()) {
  STING_CHECK(!this->Config.Shards.empty(), "router needs at least one shard");
  STING_CHECK(this->Config.ReplicationFactor >= 1 &&
                  this->Config.ReplicationFactor <= 2,
              "chain-of-two supports replication factors 1 and 2");
  const std::size_t N = this->Config.Shards.size();
  Channels.reserve(N);
  for (std::size_t I = 0; I != N; ++I)
    Channels.push_back(std::make_unique<Channel>(*this, I));
  SlotEpochs = std::make_unique<std::atomic<std::uint64_t>[]>(N);
  for (std::size_t I = 0; I != N; ++I)
    SlotEpochs[I].store(0, std::memory_order_relaxed);
}

SpaceRouter::~SpaceRouter() { shutdown(); }

void SpaceRouter::shutdown() {
  Closing.store(true, std::memory_order_release);
  for (auto &Ch : Channels)
    Ch->join();
  std::vector<ThreadRef> Hs;
  {
    std::lock_guard<SpinLock> G(HelperLock);
    Hs.swap(Helpers);
  }
  for (ThreadRef &H : Hs)
    TC::threadWaitFor(*H, Deadline::never());
}

std::size_t SpaceRouter::pendingLegs() const {
  std::size_t N = 0;
  for (const auto &Ch : Channels)
    N += Ch->legCount();
  return N;
}

RouterStatsSnapshot SpaceRouter::statsSnapshot() const {
  RouterStatsSnapshot S;
  S.Routes = Stats.Routes.load(std::memory_order_relaxed);
  S.Fanouts = Stats.Fanouts.load(std::memory_order_relaxed);
  S.Retracts = Stats.Retracts.load(std::memory_order_relaxed);
  S.Failovers = Stats.Failovers.load(std::memory_order_relaxed);
  S.Deliveries = Stats.Deliveries.load(std::memory_order_relaxed);
  S.Redeposits = Stats.Redeposits.load(std::memory_order_relaxed);
  S.Orphans = Stats.Orphans.load(std::memory_order_relaxed);
  S.Promotions = Stats.Promotions.load(std::memory_order_relaxed);
  S.Unreplicated = Stats.Unreplicated.load(std::memory_order_relaxed);
  return S;
}

std::vector<std::size_t>
SpaceRouter::candidates(const std::optional<std::uint64_t> &Key,
                        bool &LeftHome) {
  const std::size_t N = Channels.size();
  LeftHome = false;
  std::vector<std::size_t> C;
  if (Key) {
    std::size_t Home = static_cast<std::size_t>(*Key % N);
    if (Pool.breaker(Home).state() != net::BreakerState::Open) {
      C.push_back(Home);
      return C;
    }
    LeftHome = true; // home down: reroute to every surviving shard
  }
  for (std::size_t S = 0; S != N; ++S)
    if (Pool.breaker(S).state() != net::BreakerState::Open)
      C.push_back(S);
  return C;
}

void SpaceRouter::redeposit(Tuple T) {
  Stats.Redeposits.fetch_add(1, std::memory_order_relaxed);
  // Never from the pump: a unary put parks on the pool. A short-lived
  // helper carries it; shutdown joins helpers after the channels, so a
  // redeposit racing teardown resolves (possibly as Canceled) first.
  SpawnOptions Opts;
  Opts.Group = &Vm->rootGroup();
  ThreadRef H = TC::forkThread(
      [this, T = std::move(T)]() mutable -> AnyValue {
        (void)put(std::move(T));
        return AnyValue();
      },
      Opts);
  std::lock_guard<SpinLock> G(HelperLock);
  Helpers.push_back(std::move(H));
}

Status SpaceRouter::put(Tuple T) {
  if (Closing.load(std::memory_order_acquire))
    return Status::Canceled;
  for (const Field &F : T)
    if (F.isFormal())
      return Status::Error; // formals belong in templates
  wire::Writer W(wire::Op::TsOut);
  if (std::uint64_t F = obs::currentFlowId())
    W.flow(F);
  if (!writeTupleFields(W, T))
    return Status::Error; // live threads / thunks never leave the process
  std::optional<std::uint64_t> Key = routeKey(T);
  STING_CHECK(Key, "datum-led tuple must have a route key");
  if (replicated())
    return putReplicated(T, *Key);
  const std::size_t N = Channels.size();
  const std::size_t Home = static_cast<std::size_t>(*Key % N);
  Stats.Routes.fetch_add(1, std::memory_order_relaxed);
  if (VirtualProcessor *Vp = currentVp())
    Vp->stats().RouterRoutes.inc();
  bool Attempted = false;
  net::RequestStatus Last = net::RequestStatus::BreakerOpen;
  for (std::size_t I = 0; I != N; ++I) {
    std::size_t S = (Home + I) % N;
    if (Pool.breaker(S).state() == net::BreakerState::Open)
      continue;
    Attempted = true;
    std::vector<std::uint8_t> Reply;
    Last = Pool.requestFrom(S, W, Reply,
                            Deadline::in(Config.PutTimeoutNanos));
    if (Last != net::RequestStatus::Ok)
      continue; // next shard in ring order; the breaker learned already
    wire::Reader Rd(Reply.data(), Reply.size());
    if (!Rd.ok() || Rd.op() != wire::Op::TsAck)
      return Status::Error; // an application-level Err repeats anywhere
    STING_TRACE_EVENT(RouterRoute, 0, routePayload(S, 1));
    if (S != Home) {
      Stats.Failovers.fetch_add(1, std::memory_order_relaxed);
      if (VirtualProcessor *Vp = currentVp())
        Vp->stats().RouterFailovers.inc();
    }
    return Status::Ok;
  }
  if (!Attempted)
    return Status::Unavailable;
  switch (Last) {
  case net::RequestStatus::Timeout:
    return Status::Timeout;
  case net::RequestStatus::Canceled:
    return Status::Canceled;
  case net::RequestStatus::BreakerOpen:
    return Status::Unavailable;
  default:
    return Status::Error;
  }
}

void SpaceRouter::raiseEpoch(std::size_t Slot, std::uint64_t E) {
  std::uint64_t Cur = SlotEpochs[Slot].load(std::memory_order_acquire);
  while (Cur < E && !SlotEpochs[Slot].compare_exchange_weak(
                        Cur, E, std::memory_order_acq_rel))
    ;
}

bool SpaceRouter::tryPromote(std::size_t Slot, std::uint64_t FromEpoch) {
  const std::size_t N = Channels.size();
  if (slotEpoch(Slot) != FromEpoch)
    return true; // someone already moved the view; caller re-reads
  const std::uint64_t NewE = FromEpoch + 1;
  const std::size_t Backup = primaryOf(Slot, NewE, N);
  if (Pool.breaker(Backup).state() == net::BreakerState::Open)
    return false; // both members down: the slot is unavailable
  wire::Writer W(wire::Op::RepPromote);
  if (std::uint64_t F = obs::currentFlowId())
    W.flow(F);
  W.fixnum(static_cast<std::int64_t>(Slot));
  W.fixnum(static_cast<std::int64_t>(NewE));
  std::vector<std::uint8_t> Reply;
  if (Pool.requestFrom(Backup, W, Reply,
                       Deadline::in(Config.PromoteTimeoutNanos)) !=
      net::RequestStatus::Ok)
    return false;
  wire::Reader Rd(Reply.data(), Reply.size());
  if (!Rd.ok() || Rd.op() != wire::Op::RepAck)
    return false; // refused ("not caught up" / "wrong member")
  Rd.takeFlow();
  wire::ReadField EpochF;
  std::uint64_t Acked = NewE;
  if (Rd.next(EpochF) && EpochF.T == wire::Tag::Fixnum)
    Acked = std::max<std::uint64_t>(NewE, static_cast<std::uint64_t>(EpochF.Num));
  raiseEpoch(Slot, Acked);
  Stats.Promotions.fetch_add(1, std::memory_order_relaxed);
  if (VirtualProcessor *Vp = currentVp())
    Vp->stats().ReplPromotions.inc();
  STING_TRACE_EVENT(ReplPromote, 0,
                    static_cast<std::uint32_t>(Slot & 0xffff) |
                        (static_cast<std::uint32_t>(Acked & 0xffff) << 16));
  // Best-effort fence of the old primary: if it is merely slow (not
  // dead) it must discard its residents now. Its own epoch checks — and
  // the Hello pairs on reconnect — cover the case where this demote
  // never lands.
  const std::size_t Old = primaryOf(Slot, FromEpoch, N);
  if (Pool.breaker(Old).state() != net::BreakerState::Open) {
    wire::Writer DW(wire::Op::RepDemote);
    DW.fixnum(static_cast<std::int64_t>(Slot));
    DW.fixnum(static_cast<std::int64_t>(Acked));
    std::vector<std::uint8_t> DR;
    (void)Pool.requestFrom(Old, DW, DR,
                           Deadline::in(Config.PromoteTimeoutNanos));
  }
  return true;
}

Status SpaceRouter::putReplicated(const Tuple &T, std::uint64_t Key) {
  const std::size_t N = Channels.size();
  const std::size_t Slot = static_cast<std::size_t>(Key % N);
  Stats.Routes.fetch_add(1, std::memory_order_relaxed);
  if (VirtualProcessor *Vp = currentVp())
    Vp->stats().RouterRoutes.inc();
  bool Attempted = false;
  net::RequestStatus Last = net::RequestStatus::BreakerOpen;
  // Bounded retry: each lap either talks to the current primary or
  // advances the epoch view. 2N+2 laps cover every member twice plus the
  // promotion hops; real failovers resolve in two or three.
  for (std::size_t Lap = 0; Lap != 2 * N + 2; ++Lap) {
    if (Closing.load(std::memory_order_acquire))
      return Status::Canceled;
    const std::uint64_t E = slotEpoch(Slot);
    const std::size_t P = primaryOf(Slot, E, N);
    if (Pool.breaker(P).state() == net::BreakerState::Open) {
      if (!tryPromote(Slot, E))
        break; // both members unreachable
      continue;
    }
    wire::Writer W(wire::Op::RepPut);
    if (std::uint64_t F = obs::currentFlowId())
      W.flow(F);
    W.fixnum(static_cast<std::int64_t>(Slot));
    W.fixnum(static_cast<std::int64_t>(E));
    W.fixnum(0); // router deposit, not a forwarded copy
    if (!writeTupleFields(W, T))
      return Status::Error;
    Attempted = true;
    std::vector<std::uint8_t> Reply;
    Last = Pool.requestFrom(P, W, Reply, Deadline::in(Config.PutTimeoutNanos));
    if (Last != net::RequestStatus::Ok) {
      (void)tryPromote(Slot, E); // the breaker learned; try the backup
      continue;
    }
    wire::Reader Rd(Reply.data(), Reply.size());
    if (!Rd.ok())
      return Status::Error;
    if (Rd.op() == wire::Op::RepAck) {
      Rd.takeFlow();
      wire::ReadField EpochF, InfoF;
      if (Rd.next(EpochF) && EpochF.T == wire::Tag::Fixnum)
        raiseEpoch(Slot, static_cast<std::uint64_t>(EpochF.Num));
      bool Replicated = Rd.next(InfoF) && InfoF.T == wire::Tag::Fixnum &&
                        (InfoF.Num & 1) != 0;
      if (!Replicated)
        Stats.Unreplicated.fetch_add(1, std::memory_order_relaxed);
      STING_TRACE_EVENT(RouterRoute, 0, routePayload(P, 1));
      if (P != Slot) { // an odd epoch serves off the home member
        Stats.Failovers.fetch_add(1, std::memory_order_relaxed);
        if (VirtualProcessor *Vp = currentVp())
          Vp->stats().RouterFailovers.inc();
      }
      return Status::Ok;
    }
    if (Rd.op() == wire::Op::Err) {
      Rd.takeFlow();
      wire::ReadField F;
      if (Rd.next(F) && F.T == wire::Tag::Text && F.Bytes == "stale epoch") {
        // The member knows a later epoch than we do; adopt it and retry.
        // The refusal's trailing fixnum carries the member's epoch so a
        // view arbitrarily far behind converges in one lap — without it
        // the lap budget caps how much history a fresh router can absorb.
        std::uint64_t Next = E + 1;
        wire::ReadField EpochF;
        if (Rd.next(EpochF) && EpochF.T == wire::Tag::Fixnum)
          Next = std::max<std::uint64_t>(
              Next, static_cast<std::uint64_t>(EpochF.Num));
        raiseEpoch(Slot, Next);
        continue;
      }
    }
    return Status::Error; // "no replica" / malformed: not retriable
  }
  if (!Attempted)
    return Status::Unavailable;
  switch (Last) {
  case net::RequestStatus::Timeout:
    return Status::Timeout;
  case net::RequestStatus::Canceled:
    return Status::Canceled;
  case net::RequestStatus::BreakerOpen:
    return Status::Unavailable;
  default:
    return Status::Error;
  }
}

Status SpaceRouter::matchUntil(Tuple Template, bool Remove, Deadline D,
                               Match &Out) {
  if (Closing.load(std::memory_order_acquire))
    return Status::Canceled;
  std::optional<std::uint64_t> Key = routeKey(Template);
  Stats.Routes.fetch_add(1, std::memory_order_relaxed);
  if (VirtualProcessor *Vp = currentVp())
    Vp->stats().RouterRoutes.inc();

  if (replicated() && Key) {
    // Replicated keyed match: register on the slot's current primary only
    // (the backup's copies are passive — matching there would double-
    // deliver). When the leg dies with the deadline unspent the primary
    // went away, so promote and re-arm at the new epoch. Each round uses
    // a fresh id: the old registration may still be armed on a merely
    // slow shard, and shards refuse duplicate ids.
    const std::size_t N = Channels.size();
    const std::size_t Slot = static_cast<std::size_t>(*Key % N);
    for (;;) {
      if (Closing.load(std::memory_order_acquire))
        return Status::Canceled;
      const std::uint64_t E = slotEpoch(Slot);
      const std::size_t P = primaryOf(Slot, E, N);
      if (Pool.breaker(P).state() == net::BreakerState::Open) {
        if (!tryPromote(Slot, E))
          return Status::Unavailable; // both members unreachable
        continue;
      }
      const std::uint64_t Id = NextId.fetch_add(1, std::memory_order_relaxed);
      wire::Writer W(wire::Op::Register);
      if (std::uint64_t F = obs::currentFlowId())
        W.flow(F);
      W.fixnum(static_cast<std::int64_t>(Id));
      W.fixnum(Remove ? 1 : 0);
      if (!writeTupleFields(W, Template))
        return Status::Error;
      STING_TRACE_EVENT(RouterRoute, 0, routePayload(P, 1));
      if (P != Slot) { // an odd epoch serves off the home member
        Stats.Failovers.fetch_add(1, std::memory_order_relaxed);
        if (VirtualProcessor *Vp = currentVp())
          Vp->stats().RouterFailovers.inc();
      }
      Status St = matchOnce({P}, Template, W.payload(), Id, Remove, D, Out);
      if (St != Status::Unavailable)
        return St;
      if (D.expired())
        return Status::Timeout;
      (void)tryPromote(Slot, E);
    }
  }

  const std::uint64_t Id = NextId.fetch_add(1, std::memory_order_relaxed);
  wire::Writer W(wire::Op::Register);
  if (std::uint64_t F = obs::currentFlowId())
    W.flow(F);
  W.fixnum(static_cast<std::int64_t>(Id));
  W.fixnum(Remove ? 1 : 0);
  if (!writeTupleFields(W, Template))
    return Status::Error;
  bool LeftHome = false;
  std::vector<std::size_t> Cands = candidates(Key, LeftHome);
  if (Cands.empty())
    return Status::Unavailable;
  STING_TRACE_EVENT(
      RouterRoute, 0,
      routePayload(Key ? static_cast<std::size_t>(*Key % Channels.size())
                       : 0xffffu,
                   Cands.size()));
  if (LeftHome) {
    Stats.Failovers.fetch_add(1, std::memory_order_relaxed);
    if (VirtualProcessor *Vp = currentVp())
      Vp->stats().RouterFailovers.inc();
  }
  if (Cands.size() > 1) {
    Stats.Fanouts.fetch_add(Cands.size(), std::memory_order_relaxed);
    if (VirtualProcessor *Vp = currentVp())
      Vp->stats().RouterFanouts.add(Cands.size());
  }
  return matchOnce(Cands, Template, W.payload(), Id, Remove, D, Out);
}

Status SpaceRouter::matchOnce(const std::vector<std::size_t> &Cands,
                              const Tuple &Template,
                              const std::vector<std::uint8_t> &RegFrame,
                              std::uint64_t Id, bool Remove, Deadline D,
                              Match &Out) {
  RouterOp Op;
  Op.LegsLive = Cands.size();
  std::vector<std::size_t> Armed;
  Armed.reserve(Cands.size());
  for (std::size_t S : Cands) {
    auto L = std::make_unique<Leg>();
    L->Id = Id;
    L->Op = &Op;
    L->Remove = Remove;
    L->RegFrame = RegFrame;
    if (Channels[S]->arm(std::move(L))) {
      Armed.push_back(S);
    } else {
      std::lock_guard<SpinLock> G(Op.Lock);
      --Op.LegsLive;
    }
  }

  WaitResult WR = Op.Done.awaitUntil(
      [&] {
        std::lock_guard<SpinLock> G(Op.Lock);
        return Op.HasMatch || Op.LegsLive == 0;
      },
      &Op, D);
  for (std::size_t S : Armed)
    Channels[S]->detach(Id);
  // Every leg is detached: Op is private to this frame again.

  if (Op.HasMatch) {
    // Resolve the delivered wire fields into shared-heap values. Root the
    // output slots first: each intern/string allocation may collect, and
    // earlier values must survive later allocations.
    gc::GlobalHeap &H = sharedHeap();
    Out.Fields.assign(Op.Delivered.size(), gc::Value());
    Out.Flow = Op.Flow;
    for (gc::Value &Slot : Out.Fields)
      H.addRoot(&Slot);
    for (std::size_t I = 0; I != Op.Delivered.size(); ++I) {
      Field &F = Op.Delivered[I];
      if (F.hasPendingText())
        Out.Fields[I] = H.intern(F.pendingText());
      else if (F.hasPendingBlob())
        Out.Fields[I] = H.makeStringShared(F.pendingBlob());
      else
        Out.Fields[I] = F.value();
    }
    std::size_t NumBindings = 0;
    for (const Field &F : Template)
      if (F.isFormal())
        NumBindings = std::max<std::size_t>(NumBindings, F.formalIndex() + 1);
    Out.Bindings.assign(NumBindings, gc::Value());
    for (std::size_t P = 0; P != Template.size() && P != Out.Fields.size();
         ++P)
      if (Template[P].isFormal())
        Out.Bindings[Template[P].formalIndex()] = Out.Fields[P];
    for (gc::Value &Slot : Out.Fields)
      H.removeRoot(&Slot);
    // The data's causal history crosses the shard hop with it, exactly
    // like the local facade's match-flow adoption.
    adoptFlow(Out.Flow);
    return Status::Ok;
  }
  if (Closing.load(std::memory_order_acquire) || Io->stopping())
    return Status::Canceled;
  if (WR == WaitResult::Timeout)
    return Status::Timeout;
  return Status::Unavailable; // every leg died with the deadline unspent
}

net::Server::Handler routerHandler(SpaceRouter &Router) {
  return [&Router](BufferedConn &C) {
    auto SendPayload = [&C](const wire::Writer &W) {
      return C.writeFrame(W.payload().data(), W.payload().size()) &&
             C.flush();
    };
    auto SendError = [&](const char *Reason) {
      wire::Writer W(wire::Op::Err);
      W.text(Reason);
      return SendPayload(W);
    };
    auto StampFlow = [](wire::Writer &W) {
      if (obs::FlowId F = obs::currentFlowId())
        W.flow(F);
    };
    std::vector<std::uint8_t> Frame;
    while (C.readFrame(Frame)) {
      wire::Reader R(Frame.data(), Frame.size());
      if (!R.ok()) {
        if (!SendError("malformed frame"))
          return;
        continue;
      }
      adoptFlow(R.takeFlow());
      switch (R.op()) {
      case wire::Op::TsOut: {
        Tuple T;
        if (!wire::readTuple(R, T)) {
          if (!SendError("malformed tuple"))
            return;
          break;
        }
        Status St = Router.put(std::move(T));
        if (St == Status::Ok) {
          wire::Writer W(wire::Op::TsAck);
          StampFlow(W);
          if (!SendPayload(W))
            return;
        } else if (!SendError(statusName(St))) {
          return;
        }
        break;
      }
      case wire::Op::TsRd:
      case wire::Op::TsIn: {
        bool Destructive = R.op() == wire::Op::TsIn;
        Tuple T;
        if (!wire::readTuple(R, T)) {
          if (!SendError("malformed template"))
            return;
          break;
        }
        Match M;
        Status St = Destructive ? Router.take(std::move(T), M)
                                : Router.read(std::move(T), M);
        if (St == Status::Ok) {
          wire::Writer W(wire::Op::TsMatch);
          StampFlow(W);
          wire::writeMatch(W, M);
          if (!SendPayload(W))
            return;
        } else if (!SendError(statusName(St))) {
          return;
        }
        break;
      }
      case wire::Op::RouterStats: {
        RouterStatsSnapshot S = Router.statsSnapshot();
        wire::Writer W(wire::Op::StatsReply);
        StampFlow(W);
        auto Row = [&W](const char *Name, std::uint64_t V) {
          W.text(Name);
          W.fixnum(static_cast<std::int64_t>(V));
        };
        Row("sting_router_routes_total", S.Routes);
        Row("sting_router_fanouts_total", S.Fanouts);
        Row("sting_router_retracts_total", S.Retracts);
        Row("sting_router_failovers_total", S.Failovers);
        Row("sting_router_deliveries_total", S.Deliveries);
        Row("sting_router_redeposits_total", S.Redeposits);
        Row("sting_router_orphans_total", S.Orphans);
        Row("sting_router_promotions_total", S.Promotions);
        Row("sting_router_unreplicated_total", S.Unreplicated);
        if (!SendPayload(W))
          return;
        break;
      }
      default:
        if (!SendError("unknown op"))
          return;
        break;
      }
    }
  };
}

} // namespace sting::dist
