//===- dist/SpaceRouter.h - Sharded tuple-space router ----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One logical tuple space over many shard VMs (DESIGN.md §13). A
/// SpaceRouter presents the TupleSpace blocking API — put/take/rd with
/// timed and try variants — against a set of shard endpoints, each
/// running dist::shardHandler over its own space:
///
///  - Placement: a tuple's home shard is routeKey(tuple) % N, hashed
///    over wire bytes so placement is stable across processes. Puts go
///    home; an open breaker or transport failure fails the put over to
///    the next live shard in ring order (RouterFailovers).
///
///  - Matching: blocking reads become *registrations*. A template with a
///    concrete key registers on its home shard (or, home breaker open,
///    on every surviving shard — the reroute half of the failover
///    matrix); a wildcard template fans out to every live shard. First
///    delivery wins; every losing leg is retracted, and the shard's
///    wasArmed answer mirrors HandoffList's Armed→Delivered discipline
///    on the wire: a leg resolves exactly once, as a delivery or as a
///    retract, never both. A losing *take* delivery (the race between a
///    deposit and our retract) is re-deposited through the router, so
///    tuples are conserved exactly-once.
///
///  - Health: shard health lives in the multi-endpoint pool's
///    per-endpoint breakers, shared by the unary plane (puts) and the
///    registration plane (channel connects). Unavailable is reported
///    only when every candidate shard is open or dead.
///
///  - Replication (ReplicationFactor = 2, DESIGN.md §14): puts become
///    RepPut against the slot's current *primary* — elected by the
///    slot's epoch, which this router tracks — and the primary copies to
///    its backup before acking. When the primary's breaker opens or a
///    request dies, the router promotes the backup (RepPromote at
///    epoch+1) and retries; keyed matches register on the primary only
///    and re-arm across promotions until their deadline. The epochs ride
///    the Hello handshake so a rejoining stale primary is fenced before
///    any registration can arm on resurrected state.
///
/// Unary requests ride the pool's net::Clients (retry/backoff/breaker);
/// registrations ride one dedicated channel per shard — a pump thread
/// owning the socket, with a Hello/HelloOk version handshake, that
/// re-arms live registrations after a reconnect.
///
//===----------------------------------------------------------------------===//

#ifndef STING_DIST_SPACEROUTER_H
#define STING_DIST_SPACEROUTER_H

#include "dist/Route.h"
#include "net/Pool.h"
#include "net/Server.h"
#include "tuple/Tuple.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace sting {
class VirtualMachine;
} // namespace sting

namespace sting::dist {

struct RouterConfig {
  /// One entry per shard; order defines the hash ring. Breaker/timeout
  /// fields configure both the pooled unary clients and the channel.
  std::vector<net::ClientConfig> Shards;
  /// Pooled unary connections per shard.
  std::size_t MaxConnectionsPerShard = 4;
  /// Channel pump poll period: bounds push-dispatch and shutdown latency.
  std::uint64_t ChannelPollNanos = 1'000'000;
  /// Pause between failed channel connect rounds (each failed round also
  /// fails the legs queued on that channel, so callers are never gated on
  /// this pause — it only paces the dials).
  std::uint64_t ChannelRetryNanos = 10'000'000;
  /// Per-shard budget for one put attempt (the pool client retries
  /// within it).
  std::uint64_t PutTimeoutNanos = 2'000'000'000;
  /// tryRead/tryTake are one bounded registration round-trip: the probe
  /// window before the registration is retracted and "no match" returned.
  std::uint64_t TryWindowNanos = 50'000'000;
  /// Copies per hash slot. 1 is the single-copy router of DESIGN.md §13;
  /// 2 enables chain-of-two replication (DESIGN.md §14) — every shard
  /// must then run a bound dist::Replica. Values above 2 are refused.
  std::size_t ReplicationFactor = 1;
  /// Budget for one RepPromote/RepDemote round-trip during a failover.
  std::uint64_t PromoteTimeoutNanos = 1'000'000'000;
};

/// Router-side tallies, finer-grained than the four obs counters. The
/// exactly-once ledger: every fan-out leg ever armed resolves exactly
/// once, so Fanouts == Deliveries + Retracts + Orphans once quiescent
/// (single-leg registrations count Deliveries/Orphans but not Fanouts,
/// and their retracts — plain timeouts — count Retracts).
struct RouterStatsSnapshot {
  std::uint64_t Routes = 0;     ///< operations routed (puts + matches)
  std::uint64_t Fanouts = 0;    ///< legs armed by multi-shard registrations
  std::uint64_t Retracts = 0;   ///< legs retracted while armed (wasArmed)
  std::uint64_t Failovers = 0;  ///< ops that left their home shard
  std::uint64_t Deliveries = 0; ///< Deliver frames dispatched to legs
  std::uint64_t Redeposits = 0; ///< losing take deliveries re-deposited
  std::uint64_t Orphans = 0;    ///< legs failed by channel death/refusal
  std::uint64_t Promotions = 0; ///< slot epoch bumps this router won
  std::uint64_t Unreplicated = 0; ///< puts acked single-copy (backup down)
};

/// One logical tuple space routed over shard endpoints. Thread-safe; all
/// blocking members must run on sting threads (they park).
class SpaceRouter {
public:
  /// \p Vm hosts the router's pump/helper threads (in its root group, so
  /// they survive any server group the caller tears down); \p Io carries
  /// the sockets. Both must outlive the router.
  SpaceRouter(VirtualMachine &Vm, IoService &Io, RouterConfig Config);
  ~SpaceRouter();

  SpaceRouter(const SpaceRouter &) = delete;
  SpaceRouter &operator=(const SpaceRouter &) = delete;

  /// Stops the channels, fails outstanding registrations (their callers
  /// return Canceled) and joins the router's threads. Idempotent.
  void shutdown();

  // --- The TupleSpace surface, with distribution-visible statuses --------

  /// Deposits \p T on its home shard (replicated mode: on its slot's
  /// current primary, two-copy — §14). Blocks for at most the per-shard
  /// put budget times the failover laps; an open home breaker fails over
  /// in ring order (single-copy) or promotes the backup (replicated).
  /// Ok means some shard durably holds the tuple; Unavailable means no
  /// candidate admitted it (the tuple was NOT deposited).
  Status put(Tuple T);

  /// read/take block until a match is delivered (registration proxy on
  /// the candidate shards — no connection thread parks per waiter);
  /// *Until variants return Timeout when \p D expires first, with the
  /// registration retracted exactly-once. Canceled reports router
  /// shutdown or IoService teardown. All must run on sting threads.
  Status read(Tuple Template, Match &Out) {
    return matchUntil(std::move(Template), false, Deadline::never(), Out);
  }
  Status take(Tuple Template, Match &Out) {
    return matchUntil(std::move(Template), true, Deadline::never(), Out);
  }
  Status readUntil(Tuple Template, Deadline D, Match &Out) {
    return matchUntil(std::move(Template), false, D, Out);
  }
  Status takeUntil(Tuple Template, Deadline D, Match &Out) {
    return matchUntil(std::move(Template), true, D, Out);
  }
  /// try* is one bounded round-trip (TryWindowNanos): Timeout means "no
  /// match right now" — a remote try cannot be instantaneous.
  Status tryRead(Tuple Template, Match &Out) {
    return matchUntil(std::move(Template), false,
                      Deadline::in(Config.TryWindowNanos), Out);
  }
  Status tryTake(Tuple Template, Match &Out) {
    return matchUntil(std::move(Template), true,
                      Deadline::in(Config.TryWindowNanos), Out);
  }

  /// Ring size (fixed at construction — resharding is a roadmap item).
  std::size_t shardCount() const { return Config.Shards.size(); }

  /// The multi-endpoint pool (per-shard breakers live here). Thread-safe;
  /// tests trip breakers through it to simulate gray failures.
  net::ConnectionPool &pool() { return Pool; }

  /// Relaxed-atomic tallies; exact only at quiescence. Thread-safe.
  RouterStatsSnapshot statsSnapshot() const;

  /// Registration legs not yet resolved, summed over every channel. Zero
  /// means no shard holds an armed registration for this router — no
  /// in-flight Retract can still consume a deposited tuple — which is the
  /// settle point drain/teardown sequences should wait for.
  std::size_t pendingLegs() const;

  /// Replication enabled (factor ≥ 2 over a multi-shard ring)? Pure.
  bool replicated() const {
    return Config.ReplicationFactor >= 2 && Config.Shards.size() >= 2;
  }

  /// The router's view of \p Slot's epoch (monotonic; shard refusals and
  /// acks raise it). Thread-safe.
  std::uint64_t slotEpoch(std::size_t Slot) const {
    return SlotEpochs[Slot].load(std::memory_order_acquire);
  }

private:
  class Channel;
  struct RouterOp;
  struct Leg;

  Status matchUntil(Tuple Template, bool Remove, Deadline D, Match &Out);

  /// One arm/await/detach round against \p Cands. Factored out so the
  /// replicated keyed path can retry across promotions.
  Status matchOnce(const std::vector<std::size_t> &Cands, const Tuple &Template,
                   const std::vector<std::uint8_t> &RegFrame, std::uint64_t Id,
                   bool Remove, Deadline D, Match &Out);

  Status putReplicated(const Tuple &T, std::uint64_t Key);

  /// Promotes \p Slot's backup to primary at FromEpoch+1 (idempotent,
  /// concurrent-safe: the shard applies the max epoch, this router CAS-
  /// raises its view). \returns false when the backup refused or is
  /// unreachable. Best-effort demotes the old primary afterwards.
  bool tryPromote(std::size_t Slot, std::uint64_t FromEpoch);

  /// Raises the slot-view epoch to at least \p E (monotonic CAS).
  void raiseEpoch(std::size_t Slot, std::uint64_t E);

  /// Candidate shards for a registration/put given the breaker view;
  /// empty means Unavailable. Sets \p LeftHome when the home shard was
  /// skipped (concrete key, breaker open).
  std::vector<std::size_t> candidates(const std::optional<std::uint64_t> &Key,
                                      bool &LeftHome);

  /// Re-deposits a losing take delivery on a forked thread (the pump
  /// must not block on a unary request).
  void redeposit(Tuple T);

  VirtualMachine *Vm;
  IoService *Io;
  RouterConfig Config;
  net::ConnectionPool Pool;
  std::vector<std::unique_ptr<Channel>> Channels;
  /// Per-slot promotion epochs (replicated mode; all zero otherwise).
  /// Monotonic — concurrent promoters race benignly via raiseEpoch.
  std::unique_ptr<std::atomic<std::uint64_t>[]> SlotEpochs;
  std::atomic<bool> Closing{false};
  std::atomic<std::uint64_t> NextId{1};

  mutable SpinLock HelperLock;
  std::vector<ThreadRef> Helpers; ///< redeposit threads, joined at shutdown

  struct {
    std::atomic<std::uint64_t> Routes{0}, Fanouts{0}, Retracts{0},
        Failovers{0}, Deliveries{0}, Redeposits{0}, Orphans{0},
        Promotions{0}, Unreplicated{0};
  } Stats;
};

/// \returns a handler exposing \p Router to remote clients with the plain
/// tuple-service ops (TsOut/TsRd/TsIn) plus RouterStats (a StatsReply of
/// the snapshot above) — the client→router→shard hop for quickstarts and
/// flow traces. \p Router must outlive the server.
net::Server::Handler routerHandler(SpaceRouter &Router);

} // namespace sting::dist

#endif // STING_DIST_SPACEROUTER_H
