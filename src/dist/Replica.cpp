//===- dist/Replica.cpp - Chain-of-two shard replication ----------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "dist/Replica.h"

#include "core/Current.h"
#include "core/ThreadController.h"
#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "obs/Flow.h"
#include "obs/TraceBuffer.h"
#include "sync/ParkList.h"

#include <algorithm>
#include <mutex>

namespace sting::dist {

namespace wire = net::wire;
using TC = ThreadController;

namespace {

/// Packs the ReplForward/ReplPromote trace payload: slot in the low 16
/// bits, a retract bit, then the epoch's low bits.
std::uint32_t replPayload(std::uint64_t Slot, bool Retract,
                          std::uint64_t Epoch) {
  return static_cast<std::uint32_t>(Slot & 0xffff) |
         (Retract ? 1u << 16 : 0u) |
         (static_cast<std::uint32_t>(Epoch & 0x7fff) << 17);
}

/// Rebuilds a Tuple from encodeFields() bytes (prefixing a throwaway
/// opcode so the frame Reader accepts it).
bool decodeFields(const std::string &Bytes, Tuple &Out) {
  std::vector<std::uint8_t> Buf;
  Buf.reserve(Bytes.size() + 1);
  Buf.push_back(static_cast<std::uint8_t>(wire::Op::Echo));
  Buf.insert(Buf.end(), Bytes.begin(), Bytes.end());
  wire::Reader R(Buf.data(), Buf.size());
  return R.ok() && wire::readTuple(R, Out);
}

void stampFlow(wire::Writer &W) {
  if (obs::FlowId F = obs::currentFlowId())
    W.flow(F);
}

} // namespace

Replica::Replica(VirtualMachine &Vm, IoService &Io, TupleSpaceRef Space,
                 std::size_t Self, ReplicaConfig Config)
    : Vm(&Vm), Io(&Io), Space(std::move(Space)), Self(Self),
      Config(Config) {
  STING_CHECK(Config.ReplicationFactor <= 2,
              "chain-of-two supports at most one backup per slot");
}

Replica::~Replica() { shutdown(); }

void Replica::bind(std::vector<net::ClientConfig> Shards) {
  net::PoolConfig PC;
  PC.MaxConnections = Config.MaxConnectionsPerPeer;
  PC.Endpoints = Shards;
  auto Pool = std::make_unique<net::ConnectionPool>(*Io, std::move(PC));
  std::lock_guard<SpinLock> G(Lock);
  RingSize = Shards.size();
  Peers = std::move(Pool);
}

void Replica::shutdown() {
  Closing.store(true, std::memory_order_release);
  std::vector<ThreadRef> Hs;
  {
    std::lock_guard<SpinLock> G(Lock);
    for (auto &[S, St] : Slots)
      if (St.Puller)
        Hs.push_back(std::move(St.Puller));
  }
  for (ThreadRef &H : Hs)
    TC::threadWaitFor(*H, Deadline::never());
  // Peers stays alive: connection handlers may still hold this Replica
  // (via ShardConfig's shared_ptr) and race a last forward; the pool dies
  // with the Replica itself.
}

Replica::SlotState &Replica::slot(std::uint64_t S) { return Slots[S]; }

const Replica::SlotState *Replica::slotIfPresent(std::uint64_t S) const {
  auto It = Slots.find(S);
  return It == Slots.end() ? nullptr : &It->second;
}

std::uint64_t Replica::slotEpoch(std::uint64_t S) const {
  std::lock_guard<SpinLock> G(Lock);
  const SlotState *St = slotIfPresent(S);
  return St ? St->Epoch : 0;
}

bool Replica::needsCatchup(std::uint64_t S) const {
  std::lock_guard<SpinLock> G(Lock);
  const SlotState *St = slotIfPresent(S);
  return St && St->NeedsCatchup;
}

ReplicaStatsSnapshot Replica::statsSnapshot() const {
  ReplicaStatsSnapshot S;
  S.Forwards = Stats.Forwards.load(std::memory_order_relaxed);
  S.ForwardFailures = Stats.ForwardFailures.load(std::memory_order_relaxed);
  S.StaleRejections = Stats.StaleRejections.load(std::memory_order_relaxed);
  S.Tombstones = Stats.Tombstones.load(std::memory_order_relaxed);
  S.Materialized = Stats.Materialized.load(std::memory_order_relaxed);
  S.Discarded = Stats.Discarded.load(std::memory_order_relaxed);
  S.CatchupTuples = Stats.CatchupTuples.load(std::memory_order_relaxed);
  S.Promotions = Stats.Promotions.load(std::memory_order_relaxed);
  return S;
}

void Replica::advanceLocked(std::uint64_t Slot, SlotState &St,
                            std::uint64_t Epoch, RoleEffects &Fx) {
  bool WasPrimary =
      RingSize >= 2 && primaryOf(Slot, St.Epoch, RingSize) == Self;
  bool IsPrimary = RingSize >= 2 && primaryOf(Slot, Epoch, RingSize) == Self;
  St.Epoch = Epoch;
  Fx.Slot = Slot;
  if (!WasPrimary && IsPrimary) {
    // Backup rising: every stored copy enters the serving space and
    // becomes a resident this shard now answers pulls for. Tombstones
    // refer to copies the old primary already consumed; after the flip
    // nothing will forward those retracts again, so they die here.
    for (auto &[B, N] : St.Store) {
      for (std::uint64_t I = 0; I != N; ++I)
        Fx.Materialize.push_back(B);
      St.Residents[B] += N;
    }
    St.Store.clear();
    St.Tombstones.clear();
    ++St.ResidentsVersion;
    ++St.StoreGen;
    St.NeedsCatchup = false;
    Stats.Promotions.fetch_add(1, std::memory_order_relaxed);
  } else if (WasPrimary && !IsPrimary) {
    // Primary fenced: its replicated residents now live (and get
    // consumed) at the peer; keeping them here would double-deliver.
    // Locally seeded tuples were never residents and stay untouched.
    for (auto &[B, N] : St.Residents)
      for (std::uint64_t I = 0; I != N; ++I)
        Fx.Discard.push_back(B);
    St.Residents.clear();
    St.Store.clear();
    St.Tombstones.clear();
    ++St.ResidentsVersion;
    ++St.StoreGen;
    St.NeedsCatchup = true;
    Fx.StartPull = true;
  }
}

std::size_t Replica::applyEffects(RoleEffects Fx) {
  if (!Fx.Discard.empty()) {
    // A racing primary put may sit between its ledger increment and the
    // space deposit landing; reclaiming before it lands would silently
    // miss it and leave a split-brain resident behind the demotion. Each
    // pending deposit is one space op from done — wait them out.
    for (;;) {
      {
        std::lock_guard<SpinLock> G(Lock);
        const SlotState *St = slotIfPresent(Fx.Slot);
        if (!St || St->PendingDeposits == 0)
          break;
      }
      TC::yieldProcessor();
    }
  }
  for (const std::string &B : Fx.Discard) {
    Tuple T;
    if (decodeFields(B, T) && Space->tryTake(std::move(T)))
      Stats.Discarded.fetch_add(1, std::memory_order_relaxed);
  }
  std::size_t Mat = 0;
  for (const std::string &B : Fx.Materialize) {
    Tuple T;
    if (decodeFields(B, T)) {
      Space->put(std::move(T));
      ++Mat;
    }
  }
  if (Mat)
    Stats.Materialized.fetch_add(Mat, std::memory_order_relaxed);
  if (Fx.StartPull)
    startPull(Fx.Slot);
  return Mat;
}

void Replica::adoptAtLeast(std::uint64_t Slot, std::uint64_t Epoch) {
  RoleEffects Fx;
  {
    std::lock_guard<SpinLock> G(Lock);
    SlotState &St = slot(Slot);
    if (Epoch <= St.Epoch)
      return;
    advanceLocked(Slot, St, Epoch, Fx);
  }
  applyEffects(std::move(Fx));
}

void Replica::observeEpoch(std::uint64_t Slot, std::uint64_t Epoch) {
  adoptAtLeast(Slot, Epoch);
}

Replica::ForwardResult Replica::forward(std::size_t Peer,
                                        const wire::Writer &W,
                                        std::uint64_t TimeoutNanos,
                                        std::uint64_t *StaleEpoch) {
  net::ConnectionPool *P;
  {
    std::lock_guard<SpinLock> G(Lock);
    P = Peers.get();
  }
  if (!P || Closing.load(std::memory_order_acquire))
    return ForwardResult::PeerDown;
  std::vector<std::uint8_t> Reply;
  if (P->requestFrom(Peer, W, Reply, Deadline::in(TimeoutNanos)) !=
      net::RequestStatus::Ok)
    return ForwardResult::PeerDown;
  wire::Reader Rd(Reply.data(), Reply.size());
  if (!Rd.ok())
    return ForwardResult::PeerDown;
  if (Rd.op() == wire::Op::RepAck)
    return ForwardResult::Ok;
  if (Rd.op() == wire::Op::Err) {
    Rd.takeFlow();
    wire::ReadField F;
    if (Rd.next(F) && F.T == wire::Tag::Text && F.Bytes == "stale epoch") {
      wire::ReadField EpochF;
      if (StaleEpoch && Rd.next(EpochF) && EpochF.T == wire::Tag::Fixnum)
        *StaleEpoch = static_cast<std::uint64_t>(EpochF.Num);
      return ForwardResult::PeerStale;
    }
  }
  return ForwardResult::PeerDown;
}

Replica::Ack Replica::onPut(std::uint64_t S, std::uint64_t Epoch,
                            bool Forwarded, Tuple T) {
  std::string Bytes = encodeFields(T);
  RoleEffects Fx;
  std::uint64_t E;
  {
    std::lock_guard<SpinLock> G(Lock);
    if (RingSize < 2)
      return {false, 0, 0, "unbound"};
    SlotState &St = slot(S);
    if (Epoch < St.Epoch) {
      Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
      return {false, St.Epoch, 0, "stale epoch"};
    }
    if (Epoch > St.Epoch)
      advanceLocked(S, St, Epoch, Fx);
    E = St.Epoch;
    if (Forwarded) {
      if (backupOf(S, E, RingSize) != Self) {
        Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
        return {false, E, 0, "stale epoch"};
      }
      // Commute with a retract that outran us: the copy was already
      // consumed, so it annihilates instead of landing.
      auto It = St.Tombstones.find(Bytes);
      if (It != St.Tombstones.end()) {
        if (--It->second == 0)
          St.Tombstones.erase(It);
      } else {
        ++St.Store[Bytes];
      }
      ++St.StoreGen;
    } else if (primaryOf(S, E, RingSize) != Self) {
      Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
      return {false, E, 0, "stale epoch"};
    }
  }
  std::size_t Flipped = applyEffects(std::move(Fx));
  (void)Flipped;
  if (Forwarded)
    return {true, E, 0, nullptr};

  // Primary deposit: copy to the backup *first*, so by the time any take
  // can observe the tuple its backup copy is durable at the peer. A dead
  // peer degrades to a single-copy ack — availability over replication —
  // and the degradation is visible in Info bit0 and ForwardFailures.
  bool Replicated = false;
  if (!inert()) {
    wire::Writer W(wire::Op::RepPut);
    stampFlow(W);
    W.fixnum(static_cast<std::int64_t>(S));
    W.fixnum(static_cast<std::int64_t>(E));
    W.fixnum(1); // forwarded
    if (!writeTupleFields(W, T))
      return {false, E, 0, "unmarshalable tuple"};
    std::uint64_t PeerE = 0;
    switch (forward(backupOf(S, E, RingSize), W, Config.ForwardTimeoutNanos,
                    &PeerE)) {
    case ForwardResult::Ok:
      Replicated = true;
      Stats.Forwards.fetch_add(1, std::memory_order_relaxed);
      if (VirtualProcessor *Vp = currentVp())
        Vp->stats().ReplForwards.inc();
      STING_TRACE_EVENT(ReplForward, 0, replPayload(S, false, E));
      break;
    case ForwardResult::PeerDown:
      Stats.ForwardFailures.fetch_add(1, std::memory_order_relaxed);
      break;
    case ForwardResult::PeerStale: {
      // The backup is ahead of us: we were fenced while this put was in
      // flight. Abort without depositing — the router retries against
      // the member the new epoch elects.
      adoptAtLeast(S, std::max(E + 1, PeerE));
      Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
      return {false, slotEpoch(S), 0, "stale epoch"};
    }
    }
  }
  {
    std::lock_guard<SpinLock> G(Lock);
    SlotState &St = slot(S);
    if (St.Epoch != E || primaryOf(S, E, RingSize) != Self) {
      // Demoted while forwarding: depositing now would resurrect the
      // tuple on the wrong member. The backup copy (if one landed) is
      // the new primary's problem and its epoch logic already owns it.
      Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
      return {false, St.Epoch, 0, "stale epoch"};
    }
    ++St.Residents[Bytes];
    ++St.ResidentsVersion;
    ++St.PendingDeposits;
  }
  Space->put(std::move(T));
  std::uint64_t After;
  {
    std::lock_guard<SpinLock> G(Lock);
    SlotState &St = slot(S);
    --St.PendingDeposits;
    After = St.Epoch;
  }
  if (After == E)
    return {true, E, Replicated ? 1 : 0, nullptr};
  // A demotion raced the deposit. Its discard pass waits out pending
  // deposits, so the copy that just landed is reclaimed with the rest of
  // the ledger rather than surviving as a split-brain resident. With a
  // backup copy the promoted peer materialized it and owns delivery;
  // degraded single-copy puts leave no surviving copy, so report stale
  // and let the router re-route.
  if (Replicated)
    return {true, After, 1, nullptr};
  Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
  return {false, After, 0, "stale epoch"};
}

Replica::Ack Replica::onRetract(std::uint64_t S, std::uint64_t Epoch,
                                const Tuple &T) {
  std::string Bytes = encodeFields(T);
  RoleEffects Fx;
  std::uint64_t E;
  {
    std::lock_guard<SpinLock> G(Lock);
    if (RingSize < 2)
      return {false, 0, 0, "unbound"};
    SlotState &St = slot(S);
    if (Epoch < St.Epoch) {
      Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
      return {false, St.Epoch, 0, "stale epoch"};
    }
    if (Epoch > St.Epoch)
      advanceLocked(S, St, Epoch, Fx);
    E = St.Epoch;
    if (backupOf(S, E, RingSize) != Self) {
      Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
      return {false, E, 0, "stale epoch"};
    }
    auto It = St.Store.find(Bytes);
    if (It != St.Store.end()) {
      if (--It->second == 0)
        St.Store.erase(It);
    } else {
      ++St.Tombstones[Bytes];
      Stats.Tombstones.fetch_add(1, std::memory_order_relaxed);
    }
    ++St.StoreGen;
  }
  applyEffects(std::move(Fx));
  return {true, E, 0, nullptr};
}

Replica::Ack Replica::onPromote(std::uint64_t S, std::uint64_t Epoch) {
  RoleEffects Fx;
  std::uint64_t E;
  {
    std::lock_guard<SpinLock> G(Lock);
    if (RingSize < 2)
      return {false, 0, 0, "unbound"};
    SlotState &St = slot(S);
    if (Epoch <= St.Epoch) {
      if (primaryOf(S, St.Epoch, RingSize) == Self)
        return {true, St.Epoch, 0, nullptr}; // idempotent re-promote
      Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
      return {false, St.Epoch, 0, "stale epoch"};
    }
    if (primaryOf(S, Epoch, RingSize) != Self)
      return {false, St.Epoch, 0, "wrong member"};
    if (St.NeedsCatchup)
      return {false, St.Epoch, 0, "not caught up"};
    advanceLocked(S, St, Epoch, Fx);
    E = St.Epoch;
  }
  std::size_t Mat = applyEffects(std::move(Fx));
  if (VirtualProcessor *Vp = currentVp())
    Vp->stats().ReplPromotions.inc();
  STING_TRACE_EVENT(ReplPromote, 0, replPayload(S, false, E));
  return {true, E, static_cast<std::int64_t>(Mat), nullptr};
}

Replica::Ack Replica::onDemote(std::uint64_t S, std::uint64_t Epoch) {
  RoleEffects Fx;
  std::uint64_t E;
  std::size_t Dropped;
  {
    std::lock_guard<SpinLock> G(Lock);
    if (RingSize < 2)
      return {false, 0, 0, "unbound"};
    SlotState &St = slot(S);
    if (Epoch <= St.Epoch)
      return {true, St.Epoch, 0, nullptr}; // already there (or past)
    if (backupOf(S, Epoch, RingSize) != Self)
      return {false, St.Epoch, 0, "wrong member"};
    advanceLocked(S, St, Epoch, Fx);
    E = St.Epoch;
    Dropped = Fx.Discard.size();
  }
  applyEffects(std::move(Fx));
  return {true, E, static_cast<std::int64_t>(Dropped), nullptr};
}

Replica::PullReply Replica::onPull(std::uint64_t S, std::uint64_t Epoch,
                                   std::uint64_t Offset) {
  RoleEffects Fx;
  PullReply R;
  {
    std::lock_guard<SpinLock> G(Lock);
    if (RingSize < 2) {
      R.Err = "unbound";
      return R;
    }
    SlotState &St = slot(S);
    if (Epoch > St.Epoch)
      advanceLocked(S, St, Epoch, Fx);
    R.Epoch = St.Epoch;
    if (primaryOf(S, St.Epoch, RingSize) != Self) {
      R.Err = "not primary";
    } else {
      // The offset cursor skips copies earlier chunks already carried.
      // Iteration order is stable across chunks because any Residents
      // mutation bumps ResidentsVersion, which makes the puller restart
      // the transfer from offset zero.
      R.Ok = true;
      R.Version = St.ResidentsVersion;
      std::uint64_t Skip = Offset;
      for (const auto &[B, N] : St.Residents) {
        if (Skip >= N) {
          Skip -= N;
          continue;
        }
        for (std::uint64_t I = Skip; I != N; ++I) {
          if (R.Tuples.size() >= Config.PullMaxTuples) {
            R.Complete = false;
            break;
          }
          R.Tuples.push_back(B);
        }
        Skip = 0;
        if (!R.Complete)
          break;
      }
    }
  }
  applyEffects(std::move(Fx));
  return R;
}

void Replica::noteTaken(const std::vector<gc::Value> &Fields) {
  if (inert() || Closing.load(std::memory_order_acquire))
    return;
  Tuple T;
  T.reserve(Fields.size());
  for (gc::Value V : Fields)
    T.emplace_back(V);
  std::optional<std::uint64_t> Key = routeKey(T);
  if (!Key)
    return;
  std::string Bytes = encodeFields(T);
  std::uint64_t S, E;
  std::size_t Peer;
  {
    std::lock_guard<SpinLock> G(Lock);
    S = *Key % RingSize;
    SlotState &St = slot(S);
    E = St.Epoch;
    if (primaryOf(S, E, RingSize) != Self)
      return; // strays in a demoted member's space are not replicated
    auto It = St.Residents.find(Bytes);
    if (It == St.Residents.end())
      return; // locally seeded, never replicated: nothing to retract
    if (--It->second == 0)
      St.Residents.erase(It);
    ++St.ResidentsVersion;
    Peer = backupOf(S, E, RingSize);
  }
  wire::Writer W(wire::Op::RepRetract);
  stampFlow(W);
  W.fixnum(static_cast<std::int64_t>(S));
  W.fixnum(static_cast<std::int64_t>(E));
  if (!writeTupleFields(W, T))
    return;
  std::uint64_t PeerE = 0;
  switch (forward(Peer, W, Config.ForwardTimeoutNanos, &PeerE)) {
  case ForwardResult::Ok:
    Stats.Forwards.fetch_add(1, std::memory_order_relaxed);
    if (VirtualProcessor *Vp = currentVp())
      Vp->stats().ReplForwards.inc();
    STING_TRACE_EVENT(ReplForward, 0, replPayload(S, true, E));
    break;
  case ForwardResult::PeerDown:
    // The §14 retract window: if this member dies before the backup
    // learns, promotion can resurrect one already-delivered tuple.
    Stats.ForwardFailures.fetch_add(1, std::memory_order_relaxed);
    break;
  case ForwardResult::PeerStale:
    adoptAtLeast(S, std::max(E + 1, PeerE));
    break;
  }
}

bool Replica::noteRestored(const std::vector<gc::Value> &Fields) {
  if (inert() || Closing.load(std::memory_order_acquire))
    return true;
  Tuple T;
  T.reserve(Fields.size());
  for (gc::Value V : Fields)
    T.emplace_back(V);
  std::optional<std::uint64_t> Key = routeKey(T);
  if (!Key)
    return true;
  std::string Bytes = encodeFields(T);
  std::uint64_t S, E;
  std::size_t Peer;
  bool IsPrimary;
  {
    std::lock_guard<SpinLock> G(Lock);
    S = *Key % RingSize;
    SlotState &St = slot(S);
    E = St.Epoch;
    IsPrimary = primaryOf(S, E, RingSize) == Self;
    if (IsPrimary) {
      ++St.Residents[Bytes]; // undoing noteTaken's decrement
      ++St.ResidentsVersion;
      Peer = backupOf(S, E, RingSize);
    } else {
      Peer = primaryOf(S, E, RingSize);
    }
  }
  wire::Writer W(wire::Op::RepPut);
  stampFlow(W);
  W.fixnum(static_cast<std::int64_t>(S));
  W.fixnum(static_cast<std::int64_t>(E));
  W.fixnum(IsPrimary ? 1 : 0);
  if (!writeTupleFields(W, T))
    return true;
  std::uint64_t PeerE = 0;
  ForwardResult FR = forward(Peer, W, Config.ForwardTimeoutNanos, &PeerE);
  if (IsPrimary) {
    // Restore the backup copy; the caller re-deposits locally either way.
    if (FR == ForwardResult::Ok) {
      Stats.Forwards.fetch_add(1, std::memory_order_relaxed);
      if (VirtualProcessor *Vp = currentVp())
        Vp->stats().ReplForwards.inc();
      STING_TRACE_EVENT(ReplForward, 0, replPayload(S, false, E));
    } else {
      Stats.ForwardFailures.fetch_add(1, std::memory_order_relaxed);
      if (FR == ForwardResult::PeerStale)
        adoptAtLeast(S, std::max(E + 1, PeerE));
    }
    return true;
  }
  // Demoted while the delivery was in flight: route the tuple to the
  // member takes now ask — a full primary deposit, which forwards a copy
  // right back to us as its backup. Only keep it locally when even that
  // fails (conservation beats placement).
  if (FR == ForwardResult::Ok)
    return false;
  if (FR == ForwardResult::PeerStale)
    adoptAtLeast(S, std::max(E + 1, PeerE));
  Stats.ForwardFailures.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Replica::startPull(std::uint64_t S) {
  ThreadRef Prev;
  {
    std::lock_guard<SpinLock> G(Lock);
    if (Closing.load(std::memory_order_acquire) || RingSize < 2)
      return;
    SlotState &St = slot(S);
    if (St.PullRunning || !St.NeedsCatchup)
      return;
    St.PullRunning = true;
    Prev = std::move(St.Puller);
  }
  // PullRunning gates one live helper per slot, so Prev (if any) already
  // dropped the flag and is at most a return-statement away from done:
  // joining it here reclaims its thread state and bounds helper refs to
  // one per slot across arbitrarily many demotions.
  if (Prev)
    TC::threadWaitFor(*Prev, Deadline::never());
  SpawnOptions Opts;
  Opts.Group = &Vm->rootGroup();
  ThreadRef H = TC::forkThread(
      [this, S]() -> AnyValue {
        runPull(S);
        return AnyValue();
      },
      Opts);
  std::lock_guard<SpinLock> G(Lock);
  slot(S).Puller = std::move(H);
}

void Replica::runPull(std::uint64_t S) {
  ParkList Nap;
  // One transfer is a version-stable sequence of chunks (RepState carries
  // the primary's ledger version; a mismatch means the offset cursor lost
  // its meaning, restart) that *replaces* the slot's side store — it never
  // adds to it. The StoreGen fence rejects an install any live forwarded
  // put/retract raced: those copies came through both the snapshot and
  // the live channel, and an additive install would double-count them,
  // materializing duplicates at the next promotion.
  std::vector<std::string> Stage; ///< chunks accumulated so far
  std::uint64_t Offset = 0;       ///< copies Stage already covers
  std::uint64_t WantVersion = 0;  ///< ledger version chunk 0 reported
  std::uint64_t GenAtStart = 0;   ///< StoreGen when the transfer began
  bool InTransfer = false;
  for (int Attempt = 0; Attempt != 32; ++Attempt) {
    if (Closing.load(std::memory_order_acquire))
      break;
    std::uint64_t E;
    std::size_t Peer;
    {
      std::lock_guard<SpinLock> G(Lock);
      SlotState &St = slot(S);
      if (!St.NeedsCatchup || primaryOf(S, St.Epoch, RingSize) == Self) {
        St.PullRunning = false;
        return;
      }
      E = St.Epoch;
      Peer = primaryOf(S, E, RingSize);
      if (!InTransfer) {
        // Fresh transfer: record the fence before the first chunk can be
        // requested, so any forward landing after this point aborts it.
        GenAtStart = St.StoreGen;
        Stage.clear();
        Offset = 0;
      }
    }
    wire::Writer W(wire::Op::RepPull);
    W.fixnum(static_cast<std::int64_t>(S));
    W.fixnum(static_cast<std::int64_t>(E));
    W.fixnum(static_cast<std::int64_t>(Offset));
    net::ConnectionPool *P;
    {
      std::lock_guard<SpinLock> G(Lock);
      P = Peers.get();
    }
    std::vector<std::uint8_t> Reply;
    bool Got = P && P->requestFrom(Peer, W, Reply,
                                   Deadline::in(Config.PullTimeoutNanos)) ==
                        net::RequestStatus::Ok;
    bool ChunkOk = false, Complete = false;
    if (Got) {
      wire::Reader Rd(Reply.data(), Reply.size());
      Got = Rd.ok() && Rd.op() == wire::Op::RepState;
      if (Got) {
        Rd.takeFlow();
        wire::ReadField SlotF, EpochF, CompleteF, VersionF;
        Got = Rd.next(SlotF) && SlotF.T == wire::Tag::Fixnum &&
              Rd.next(EpochF) && EpochF.T == wire::Tag::Fixnum &&
              Rd.next(CompleteF) && CompleteF.T == wire::Tag::Fixnum &&
              Rd.next(VersionF) && VersionF.T == wire::Tag::Fixnum;
        if (Got) {
          Complete = CompleteF.Num != 0;
          std::uint64_t V = static_cast<std::uint64_t>(VersionF.Num);
          if (InTransfer && V != WantVersion) {
            // The primary's ledger moved under the cursor: the chunks no
            // longer tile one snapshot. Start over.
            InTransfer = false;
          } else {
            if (!InTransfer) {
              WantVersion = V;
              InTransfer = true;
            }
            ChunkOk = true;
            wire::ReadField F;
            while (Rd.next(F))
              if (F.T == wire::Tag::Blob)
                Stage.emplace_back(F.Bytes);
            Offset = Stage.size();
          }
          RoleEffects Fx;
          std::size_t Installed = 0;
          bool Finished = false, Rose = false;
          {
            std::lock_guard<SpinLock> G(Lock);
            SlotState &St = slot(S);
            std::uint64_t PeerE = static_cast<std::uint64_t>(EpochF.Num);
            if (PeerE > St.Epoch)
              advanceLocked(S, St, PeerE, Fx);
            if (primaryOf(S, St.Epoch, RingSize) == Self) {
              // We rose mid-pull; the snapshot is someone's stale view.
              St.PullRunning = false;
              Rose = true;
            } else if (ChunkOk && Complete) {
              if (St.StoreGen != GenAtStart) {
                // A live forward raced the transfer; its copy may also be
                // in the snapshot. Installing would double-count it —
                // restart against a still store instead.
                InTransfer = false;
              } else {
                St.Store.clear();
                for (const std::string &B : Stage)
                  ++St.Store[B];
                // Every tombstone predates the snapshot (the gen fence
                // held), and its retract left the primary's ledger before
                // the snapshot was cut: already reflected, drop them.
                St.Tombstones.clear();
                ++St.StoreGen;
                Installed = Stage.size();
                St.NeedsCatchup = false;
                St.PullRunning = false;
                Finished = true;
              }
            }
          }
          applyEffects(std::move(Fx));
          if (Rose)
            return;
          if (Finished) {
            if (Installed) {
              Stats.CatchupTuples.fetch_add(Installed,
                                            std::memory_order_relaxed);
              if (VirtualProcessor *Vp = currentVp())
                Vp->stats().ReplCatchupTuples.add(Installed);
            }
            return;
          }
          if (ChunkOk && !Complete)
            continue; // mid-transfer: fetch the next chunk right away
        }
      }
    }
    // Pull failed, the ledger moved, or a forward raced the install:
    // pause, then retry from a clean slate.
    InTransfer = false;
    Nap.awaitUntil(
        [&] { return Closing.load(std::memory_order_acquire); }, &Nap,
        Deadline::in(50'000'000));
  }
  std::lock_guard<SpinLock> G(Lock);
  slot(S).PullRunning = false; // gave up; stays catch-up-owed (visible)
}

} // namespace sting::dist
