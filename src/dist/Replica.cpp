//===- dist/Replica.cpp - Chain-of-two shard replication ----------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "dist/Replica.h"

#include "core/Current.h"
#include "core/ThreadController.h"
#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "obs/Flow.h"
#include "obs/TraceBuffer.h"
#include "sync/ParkList.h"

#include <mutex>

namespace sting::dist {

namespace wire = net::wire;
using TC = ThreadController;

namespace {

/// Packs the ReplForward/ReplPromote trace payload: slot in the low 16
/// bits, a retract bit, then the epoch's low bits.
std::uint32_t replPayload(std::uint64_t Slot, bool Retract,
                          std::uint64_t Epoch) {
  return static_cast<std::uint32_t>(Slot & 0xffff) |
         (Retract ? 1u << 16 : 0u) |
         (static_cast<std::uint32_t>(Epoch & 0x7fff) << 17);
}

/// Rebuilds a Tuple from encodeFields() bytes (prefixing a throwaway
/// opcode so the frame Reader accepts it).
bool decodeFields(const std::string &Bytes, Tuple &Out) {
  std::vector<std::uint8_t> Buf;
  Buf.reserve(Bytes.size() + 1);
  Buf.push_back(static_cast<std::uint8_t>(wire::Op::Echo));
  Buf.insert(Buf.end(), Bytes.begin(), Bytes.end());
  wire::Reader R(Buf.data(), Buf.size());
  return R.ok() && wire::readTuple(R, Out);
}

void stampFlow(wire::Writer &W) {
  if (obs::FlowId F = obs::currentFlowId())
    W.flow(F);
}

} // namespace

Replica::Replica(VirtualMachine &Vm, IoService &Io, TupleSpaceRef Space,
                 std::size_t Self, ReplicaConfig Config)
    : Vm(&Vm), Io(&Io), Space(std::move(Space)), Self(Self),
      Config(Config) {
  STING_CHECK(Config.ReplicationFactor <= 2,
              "chain-of-two supports at most one backup per slot");
}

Replica::~Replica() { shutdown(); }

void Replica::bind(std::vector<net::ClientConfig> Shards) {
  net::PoolConfig PC;
  PC.MaxConnections = Config.MaxConnectionsPerPeer;
  PC.Endpoints = Shards;
  auto Pool = std::make_unique<net::ConnectionPool>(*Io, std::move(PC));
  std::lock_guard<SpinLock> G(Lock);
  RingSize = Shards.size();
  Peers = std::move(Pool);
}

void Replica::shutdown() {
  Closing.store(true, std::memory_order_release);
  std::vector<ThreadRef> Hs;
  {
    std::lock_guard<SpinLock> G(Lock);
    Hs.swap(Helpers);
  }
  for (ThreadRef &H : Hs)
    TC::threadWaitFor(*H, Deadline::never());
  // Peers stays alive: connection handlers may still hold this Replica
  // (via ShardConfig's shared_ptr) and race a last forward; the pool dies
  // with the Replica itself.
}

Replica::SlotState &Replica::slot(std::uint64_t S) { return Slots[S]; }

const Replica::SlotState *Replica::slotIfPresent(std::uint64_t S) const {
  auto It = Slots.find(S);
  return It == Slots.end() ? nullptr : &It->second;
}

std::uint64_t Replica::slotEpoch(std::uint64_t S) const {
  std::lock_guard<SpinLock> G(Lock);
  const SlotState *St = slotIfPresent(S);
  return St ? St->Epoch : 0;
}

bool Replica::needsCatchup(std::uint64_t S) const {
  std::lock_guard<SpinLock> G(Lock);
  const SlotState *St = slotIfPresent(S);
  return St && St->NeedsCatchup;
}

ReplicaStatsSnapshot Replica::statsSnapshot() const {
  ReplicaStatsSnapshot S;
  S.Forwards = Stats.Forwards.load(std::memory_order_relaxed);
  S.ForwardFailures = Stats.ForwardFailures.load(std::memory_order_relaxed);
  S.StaleRejections = Stats.StaleRejections.load(std::memory_order_relaxed);
  S.Tombstones = Stats.Tombstones.load(std::memory_order_relaxed);
  S.Materialized = Stats.Materialized.load(std::memory_order_relaxed);
  S.Discarded = Stats.Discarded.load(std::memory_order_relaxed);
  S.CatchupTuples = Stats.CatchupTuples.load(std::memory_order_relaxed);
  S.Promotions = Stats.Promotions.load(std::memory_order_relaxed);
  return S;
}

void Replica::advanceLocked(std::uint64_t Slot, SlotState &St,
                            std::uint64_t Epoch, RoleEffects &Fx) {
  bool WasPrimary =
      RingSize >= 2 && primaryOf(Slot, St.Epoch, RingSize) == Self;
  bool IsPrimary = RingSize >= 2 && primaryOf(Slot, Epoch, RingSize) == Self;
  St.Epoch = Epoch;
  Fx.Slot = Slot;
  if (!WasPrimary && IsPrimary) {
    // Backup rising: every stored copy enters the serving space and
    // becomes a resident this shard now answers pulls for. Tombstones
    // refer to copies the old primary already consumed; after the flip
    // nothing will forward those retracts again, so they die here.
    for (auto &[B, N] : St.Store) {
      for (std::uint64_t I = 0; I != N; ++I)
        Fx.Materialize.push_back(B);
      St.Residents[B] += N;
    }
    St.Store.clear();
    St.Tombstones.clear();
    St.NeedsCatchup = false;
    Stats.Promotions.fetch_add(1, std::memory_order_relaxed);
  } else if (WasPrimary && !IsPrimary) {
    // Primary fenced: its replicated residents now live (and get
    // consumed) at the peer; keeping them here would double-deliver.
    // Locally seeded tuples were never residents and stay untouched.
    for (auto &[B, N] : St.Residents)
      for (std::uint64_t I = 0; I != N; ++I)
        Fx.Discard.push_back(B);
    St.Residents.clear();
    St.Store.clear();
    St.Tombstones.clear();
    St.NeedsCatchup = true;
    Fx.StartPull = true;
  }
}

std::size_t Replica::applyEffects(RoleEffects Fx) {
  for (const std::string &B : Fx.Discard) {
    Tuple T;
    if (decodeFields(B, T) && Space->tryTake(std::move(T)))
      Stats.Discarded.fetch_add(1, std::memory_order_relaxed);
  }
  std::size_t Mat = 0;
  for (const std::string &B : Fx.Materialize) {
    Tuple T;
    if (decodeFields(B, T)) {
      Space->put(std::move(T));
      ++Mat;
    }
  }
  if (Mat)
    Stats.Materialized.fetch_add(Mat, std::memory_order_relaxed);
  if (Fx.StartPull)
    startPull(Fx.Slot);
  return Mat;
}

void Replica::adoptAtLeast(std::uint64_t Slot, std::uint64_t Epoch) {
  RoleEffects Fx;
  {
    std::lock_guard<SpinLock> G(Lock);
    SlotState &St = slot(Slot);
    if (Epoch <= St.Epoch)
      return;
    advanceLocked(Slot, St, Epoch, Fx);
  }
  applyEffects(std::move(Fx));
}

void Replica::observeEpoch(std::uint64_t Slot, std::uint64_t Epoch) {
  adoptAtLeast(Slot, Epoch);
}

Replica::ForwardResult Replica::forward(std::size_t Peer,
                                        const wire::Writer &W,
                                        std::uint64_t TimeoutNanos) {
  net::ConnectionPool *P;
  {
    std::lock_guard<SpinLock> G(Lock);
    P = Peers.get();
  }
  if (!P || Closing.load(std::memory_order_acquire))
    return ForwardResult::PeerDown;
  std::vector<std::uint8_t> Reply;
  if (P->requestFrom(Peer, W, Reply, Deadline::in(TimeoutNanos)) !=
      net::RequestStatus::Ok)
    return ForwardResult::PeerDown;
  wire::Reader Rd(Reply.data(), Reply.size());
  if (!Rd.ok())
    return ForwardResult::PeerDown;
  if (Rd.op() == wire::Op::RepAck)
    return ForwardResult::Ok;
  if (Rd.op() == wire::Op::Err) {
    Rd.takeFlow();
    wire::ReadField F;
    if (Rd.next(F) && F.T == wire::Tag::Text && F.Bytes == "stale epoch")
      return ForwardResult::PeerStale;
  }
  return ForwardResult::PeerDown;
}

Replica::Ack Replica::onPut(std::uint64_t S, std::uint64_t Epoch,
                            bool Forwarded, Tuple T) {
  std::string Bytes = encodeFields(T);
  RoleEffects Fx;
  std::uint64_t E;
  {
    std::lock_guard<SpinLock> G(Lock);
    if (RingSize < 2)
      return {false, 0, 0, "unbound"};
    SlotState &St = slot(S);
    if (Epoch < St.Epoch) {
      Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
      return {false, St.Epoch, 0, "stale epoch"};
    }
    if (Epoch > St.Epoch)
      advanceLocked(S, St, Epoch, Fx);
    E = St.Epoch;
    if (Forwarded) {
      if (backupOf(S, E, RingSize) != Self) {
        Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
        return {false, E, 0, "stale epoch"};
      }
      // Commute with a retract that outran us: the copy was already
      // consumed, so it annihilates instead of landing.
      auto It = St.Tombstones.find(Bytes);
      if (It != St.Tombstones.end()) {
        if (--It->second == 0)
          St.Tombstones.erase(It);
      } else {
        ++St.Store[Bytes];
      }
    } else if (primaryOf(S, E, RingSize) != Self) {
      Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
      return {false, E, 0, "stale epoch"};
    }
  }
  std::size_t Flipped = applyEffects(std::move(Fx));
  (void)Flipped;
  if (Forwarded)
    return {true, E, 0, nullptr};

  // Primary deposit: copy to the backup *first*, so by the time any take
  // can observe the tuple its backup copy is durable at the peer. A dead
  // peer degrades to a single-copy ack — availability over replication —
  // and the degradation is visible in Info bit0 and ForwardFailures.
  bool Replicated = false;
  if (!inert()) {
    wire::Writer W(wire::Op::RepPut);
    stampFlow(W);
    W.fixnum(static_cast<std::int64_t>(S));
    W.fixnum(static_cast<std::int64_t>(E));
    W.fixnum(1); // forwarded
    if (!writeTupleFields(W, T))
      return {false, E, 0, "unmarshalable tuple"};
    switch (forward(backupOf(S, E, RingSize), W, Config.ForwardTimeoutNanos)) {
    case ForwardResult::Ok:
      Replicated = true;
      Stats.Forwards.fetch_add(1, std::memory_order_relaxed);
      if (VirtualProcessor *Vp = currentVp())
        Vp->stats().ReplForwards.inc();
      STING_TRACE_EVENT(ReplForward, 0, replPayload(S, false, E));
      break;
    case ForwardResult::PeerDown:
      Stats.ForwardFailures.fetch_add(1, std::memory_order_relaxed);
      break;
    case ForwardResult::PeerStale: {
      // The backup is ahead of us: we were fenced while this put was in
      // flight. Abort without depositing — the router retries against
      // the member the new epoch elects.
      adoptAtLeast(S, E + 1);
      Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
      return {false, slotEpoch(S), 0, "stale epoch"};
    }
    }
  }
  {
    std::lock_guard<SpinLock> G(Lock);
    SlotState &St = slot(S);
    if (St.Epoch != E || primaryOf(S, E, RingSize) != Self) {
      // Demoted while forwarding: depositing now would resurrect the
      // tuple on the wrong member. The backup copy (if one landed) is
      // the new primary's problem and its epoch logic already owns it.
      Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
      return {false, St.Epoch, 0, "stale epoch"};
    }
    ++St.Residents[Bytes];
  }
  Space->put(std::move(T));
  return {true, E, Replicated ? 1 : 0, nullptr};
}

Replica::Ack Replica::onRetract(std::uint64_t S, std::uint64_t Epoch,
                                const Tuple &T) {
  std::string Bytes = encodeFields(T);
  RoleEffects Fx;
  std::uint64_t E;
  {
    std::lock_guard<SpinLock> G(Lock);
    if (RingSize < 2)
      return {false, 0, 0, "unbound"};
    SlotState &St = slot(S);
    if (Epoch < St.Epoch) {
      Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
      return {false, St.Epoch, 0, "stale epoch"};
    }
    if (Epoch > St.Epoch)
      advanceLocked(S, St, Epoch, Fx);
    E = St.Epoch;
    if (backupOf(S, E, RingSize) != Self) {
      Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
      return {false, E, 0, "stale epoch"};
    }
    auto It = St.Store.find(Bytes);
    if (It != St.Store.end()) {
      if (--It->second == 0)
        St.Store.erase(It);
    } else {
      ++St.Tombstones[Bytes];
      Stats.Tombstones.fetch_add(1, std::memory_order_relaxed);
    }
  }
  applyEffects(std::move(Fx));
  return {true, E, 0, nullptr};
}

Replica::Ack Replica::onPromote(std::uint64_t S, std::uint64_t Epoch) {
  RoleEffects Fx;
  std::uint64_t E;
  {
    std::lock_guard<SpinLock> G(Lock);
    if (RingSize < 2)
      return {false, 0, 0, "unbound"};
    SlotState &St = slot(S);
    if (Epoch <= St.Epoch) {
      if (primaryOf(S, St.Epoch, RingSize) == Self)
        return {true, St.Epoch, 0, nullptr}; // idempotent re-promote
      Stats.StaleRejections.fetch_add(1, std::memory_order_relaxed);
      return {false, St.Epoch, 0, "stale epoch"};
    }
    if (primaryOf(S, Epoch, RingSize) != Self)
      return {false, St.Epoch, 0, "wrong member"};
    if (St.NeedsCatchup)
      return {false, St.Epoch, 0, "not caught up"};
    advanceLocked(S, St, Epoch, Fx);
    E = St.Epoch;
  }
  std::size_t Mat = applyEffects(std::move(Fx));
  if (VirtualProcessor *Vp = currentVp())
    Vp->stats().ReplPromotions.inc();
  STING_TRACE_EVENT(ReplPromote, 0, replPayload(S, false, E));
  return {true, E, static_cast<std::int64_t>(Mat), nullptr};
}

Replica::Ack Replica::onDemote(std::uint64_t S, std::uint64_t Epoch) {
  RoleEffects Fx;
  std::uint64_t E;
  std::size_t Dropped;
  {
    std::lock_guard<SpinLock> G(Lock);
    if (RingSize < 2)
      return {false, 0, 0, "unbound"};
    SlotState &St = slot(S);
    if (Epoch <= St.Epoch)
      return {true, St.Epoch, 0, nullptr}; // already there (or past)
    if (backupOf(S, Epoch, RingSize) != Self)
      return {false, St.Epoch, 0, "wrong member"};
    advanceLocked(S, St, Epoch, Fx);
    E = St.Epoch;
    Dropped = Fx.Discard.size();
  }
  applyEffects(std::move(Fx));
  return {true, E, static_cast<std::int64_t>(Dropped), nullptr};
}

Replica::PullReply Replica::onPull(std::uint64_t S, std::uint64_t Epoch) {
  RoleEffects Fx;
  PullReply R;
  {
    std::lock_guard<SpinLock> G(Lock);
    if (RingSize < 2) {
      R.Err = "unbound";
      return R;
    }
    SlotState &St = slot(S);
    if (Epoch > St.Epoch)
      advanceLocked(S, St, Epoch, Fx);
    R.Epoch = St.Epoch;
    if (primaryOf(S, St.Epoch, RingSize) != Self) {
      R.Err = "not primary";
    } else {
      R.Ok = true;
      for (const auto &[B, N] : St.Residents) {
        for (std::uint64_t I = 0; I != N; ++I) {
          if (R.Tuples.size() >= Config.PullMaxTuples) {
            R.Complete = false;
            break;
          }
          R.Tuples.push_back(B);
        }
        if (!R.Complete)
          break;
      }
    }
  }
  applyEffects(std::move(Fx));
  return R;
}

void Replica::noteTaken(const std::vector<gc::Value> &Fields) {
  if (inert() || Closing.load(std::memory_order_acquire))
    return;
  Tuple T;
  T.reserve(Fields.size());
  for (gc::Value V : Fields)
    T.emplace_back(V);
  std::optional<std::uint64_t> Key = routeKey(T);
  if (!Key)
    return;
  std::string Bytes = encodeFields(T);
  std::uint64_t S, E;
  std::size_t Peer;
  {
    std::lock_guard<SpinLock> G(Lock);
    S = *Key % RingSize;
    SlotState &St = slot(S);
    E = St.Epoch;
    if (primaryOf(S, E, RingSize) != Self)
      return; // strays in a demoted member's space are not replicated
    auto It = St.Residents.find(Bytes);
    if (It == St.Residents.end())
      return; // locally seeded, never replicated: nothing to retract
    if (--It->second == 0)
      St.Residents.erase(It);
    Peer = backupOf(S, E, RingSize);
  }
  wire::Writer W(wire::Op::RepRetract);
  stampFlow(W);
  W.fixnum(static_cast<std::int64_t>(S));
  W.fixnum(static_cast<std::int64_t>(E));
  if (!writeTupleFields(W, T))
    return;
  switch (forward(Peer, W, Config.ForwardTimeoutNanos)) {
  case ForwardResult::Ok:
    Stats.Forwards.fetch_add(1, std::memory_order_relaxed);
    if (VirtualProcessor *Vp = currentVp())
      Vp->stats().ReplForwards.inc();
    STING_TRACE_EVENT(ReplForward, 0, replPayload(S, true, E));
    break;
  case ForwardResult::PeerDown:
    // The §14 retract window: if this member dies before the backup
    // learns, promotion can resurrect one already-delivered tuple.
    Stats.ForwardFailures.fetch_add(1, std::memory_order_relaxed);
    break;
  case ForwardResult::PeerStale:
    adoptAtLeast(S, E + 1);
    break;
  }
}

bool Replica::noteRestored(const std::vector<gc::Value> &Fields) {
  if (inert() || Closing.load(std::memory_order_acquire))
    return true;
  Tuple T;
  T.reserve(Fields.size());
  for (gc::Value V : Fields)
    T.emplace_back(V);
  std::optional<std::uint64_t> Key = routeKey(T);
  if (!Key)
    return true;
  std::string Bytes = encodeFields(T);
  std::uint64_t S, E;
  std::size_t Peer;
  bool IsPrimary;
  {
    std::lock_guard<SpinLock> G(Lock);
    S = *Key % RingSize;
    SlotState &St = slot(S);
    E = St.Epoch;
    IsPrimary = primaryOf(S, E, RingSize) == Self;
    if (IsPrimary) {
      ++St.Residents[Bytes]; // undoing noteTaken's decrement
      Peer = backupOf(S, E, RingSize);
    } else {
      Peer = primaryOf(S, E, RingSize);
    }
  }
  wire::Writer W(wire::Op::RepPut);
  stampFlow(W);
  W.fixnum(static_cast<std::int64_t>(S));
  W.fixnum(static_cast<std::int64_t>(E));
  W.fixnum(IsPrimary ? 1 : 0);
  if (!writeTupleFields(W, T))
    return true;
  ForwardResult FR = forward(Peer, W, Config.ForwardTimeoutNanos);
  if (IsPrimary) {
    // Restore the backup copy; the caller re-deposits locally either way.
    if (FR == ForwardResult::Ok) {
      Stats.Forwards.fetch_add(1, std::memory_order_relaxed);
      if (VirtualProcessor *Vp = currentVp())
        Vp->stats().ReplForwards.inc();
      STING_TRACE_EVENT(ReplForward, 0, replPayload(S, false, E));
    } else {
      Stats.ForwardFailures.fetch_add(1, std::memory_order_relaxed);
      if (FR == ForwardResult::PeerStale)
        adoptAtLeast(S, E + 1);
    }
    return true;
  }
  // Demoted while the delivery was in flight: route the tuple to the
  // member takes now ask — a full primary deposit, which forwards a copy
  // right back to us as its backup. Only keep it locally when even that
  // fails (conservation beats placement).
  if (FR == ForwardResult::Ok)
    return false;
  Stats.ForwardFailures.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Replica::startPull(std::uint64_t S) {
  {
    std::lock_guard<SpinLock> G(Lock);
    if (Closing.load(std::memory_order_acquire) || RingSize < 2)
      return;
    SlotState &St = slot(S);
    if (St.PullRunning || !St.NeedsCatchup)
      return;
    St.PullRunning = true;
  }
  SpawnOptions Opts;
  Opts.Group = &Vm->rootGroup();
  ThreadRef H = TC::forkThread(
      [this, S]() -> AnyValue {
        runPull(S);
        return AnyValue();
      },
      Opts);
  std::lock_guard<SpinLock> G(Lock);
  Helpers.push_back(std::move(H));
}

void Replica::runPull(std::uint64_t S) {
  ParkList Nap;
  for (int Attempt = 0; Attempt != 16; ++Attempt) {
    if (Closing.load(std::memory_order_acquire))
      break;
    std::uint64_t E;
    std::size_t Peer;
    {
      std::lock_guard<SpinLock> G(Lock);
      SlotState &St = slot(S);
      if (!St.NeedsCatchup || primaryOf(S, St.Epoch, RingSize) == Self) {
        St.PullRunning = false;
        return;
      }
      E = St.Epoch;
      Peer = primaryOf(S, E, RingSize);
    }
    wire::Writer W(wire::Op::RepPull);
    W.fixnum(static_cast<std::int64_t>(S));
    W.fixnum(static_cast<std::int64_t>(E));
    net::ConnectionPool *P;
    {
      std::lock_guard<SpinLock> G(Lock);
      P = Peers.get();
    }
    std::vector<std::uint8_t> Reply;
    bool Got = P && P->requestFrom(Peer, W, Reply,
                                   Deadline::in(Config.PullTimeoutNanos)) ==
                        net::RequestStatus::Ok;
    if (Got) {
      wire::Reader Rd(Reply.data(), Reply.size());
      Got = Rd.ok() && Rd.op() == wire::Op::RepState;
      if (Got) {
        Rd.takeFlow();
        wire::ReadField SlotF, EpochF, CompleteF;
        Got = Rd.next(SlotF) && SlotF.T == wire::Tag::Fixnum &&
              Rd.next(EpochF) && EpochF.T == wire::Tag::Fixnum &&
              Rd.next(CompleteF) && CompleteF.T == wire::Tag::Fixnum;
        if (Got) {
          std::vector<std::string> Blobs;
          wire::ReadField F;
          while (Rd.next(F))
            if (F.T == wire::Tag::Blob)
              Blobs.emplace_back(F.Bytes);
          RoleEffects Fx;
          std::size_t Installed = 0;
          {
            std::lock_guard<SpinLock> G(Lock);
            SlotState &St = slot(S);
            std::uint64_t PeerE = static_cast<std::uint64_t>(EpochF.Num);
            if (PeerE > St.Epoch)
              advanceLocked(S, St, PeerE, Fx);
            if (primaryOf(S, St.Epoch, RingSize) == Self) {
              // We rose mid-pull; the snapshot is someone's stale view.
              St.PullRunning = false;
              // fallthrough to apply role effects outside the lock
            } else {
              for (const std::string &B : Blobs) {
                auto It = St.Tombstones.find(B);
                if (It != St.Tombstones.end()) {
                  if (--It->second == 0)
                    St.Tombstones.erase(It);
                } else {
                  ++St.Store[B];
                  ++Installed;
                }
              }
              if (CompleteF.Num != 0) {
                St.NeedsCatchup = false;
                St.PullRunning = false;
              }
            }
          }
          applyEffects(std::move(Fx));
          if (Installed) {
            Stats.CatchupTuples.fetch_add(Installed,
                                          std::memory_order_relaxed);
            if (VirtualProcessor *Vp = currentVp())
              Vp->stats().ReplCatchupTuples.add(Installed);
          }
          {
            std::lock_guard<SpinLock> G(Lock);
            SlotState &St = slot(S);
            if (!St.PullRunning || !St.NeedsCatchup) {
              St.PullRunning = false;
              return;
            }
          }
        }
      }
    }
    // Pull failed or the transfer is still incomplete: pause, retry.
    Nap.awaitUntil(
        [&] { return Closing.load(std::memory_order_acquire); }, &Nap,
        Deadline::in(50'000'000));
  }
  std::lock_guard<SpinLock> G(Lock);
  slot(S).PullRunning = false; // gave up; stays catch-up-owed (visible)
}

} // namespace sting::dist
