//===- dist/Route.cpp - Router protocol constants and routing hash ------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "dist/Route.h"

namespace sting::dist {

const char *statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "ok";
  case Status::Unavailable:
    return "unavailable";
  case Status::Timeout:
    return "timeout";
  case Status::Canceled:
    return "canceled";
  case Status::Error:
    return "error";
  }
  return "?";
}

bool writeField(net::wire::Writer &W, const Field &F) {
  switch (F.kind()) {
  case Field::Kind::Datum:
    if (F.hasPendingText())
      W.text(F.pendingText());
    else if (F.hasPendingBlob())
      W.blob(F.pendingBlob());
    else
      W.value(F.value());
    return true;
  case Field::Kind::Formal:
    W.formal(F.formalIndex());
    return true;
  case Field::Kind::LiveThread:
  case Field::Kind::Thunk:
    return false;
  }
  return false;
}

bool writeTupleFields(net::wire::Writer &W, const Tuple &T) {
  for (const Field &F : T)
    if (!writeField(W, F))
      return false;
  return true;
}

std::string encodeFields(const Tuple &T) {
  net::wire::Writer W(net::wire::Op::Echo);
  if (!writeTupleFields(W, T))
    return {};
  const auto &P = W.payload();
  // Skip the opcode byte: the identity is the fields, not the frame.
  return std::string(reinterpret_cast<const char *>(P.data()) + 1,
                     P.size() - 1);
}

std::optional<std::uint64_t> routeKey(const Tuple &T) {
  if (!T.empty() && T.front().kind() != Field::Kind::Datum)
    return std::nullopt;
  // FNV-1a over (arity LE32, field-0 wire bytes). The temporary Writer's
  // first byte is its opcode; skip it so only field bytes feed the hash.
  std::uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](std::uint8_t B) {
    H ^= B;
    H *= 0x100000001b3ull;
  };
  std::uint32_t Arity = static_cast<std::uint32_t>(T.size());
  for (int I = 0; I < 4; ++I)
    Mix(static_cast<std::uint8_t>(Arity >> (8 * I)));
  if (!T.empty()) {
    net::wire::Writer W(net::wire::Op::Echo);
    if (!writeField(W, T.front()))
      return std::nullopt;
    const auto &P = W.payload();
    for (std::size_t I = 1; I < P.size(); ++I)
      Mix(P[I]);
  }
  return H;
}

} // namespace sting::dist
