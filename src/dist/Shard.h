//===- dist/Shard.h - Shard-side tuple-space service ------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shard half of the sharded tuple-space router (DESIGN.md §13): a
/// net::Server handler that serves one shard's slice of the logical space.
/// It is a superset of net::tupleSpaceHandler — TsOut/TsRd/TsIn behave
/// identically — plus the registration protocol:
///
///  - Hello/HelloOk: version handshake opening a registration connection;
///    a version mismatch gets an Err reply and a close, never a hang. The
///    router may append (slot, epoch) pairs after the version — its view
///    of slot promotions — which fence a stale primary at reconnect time
///    (DESIGN.md §14).
///
///  - Register(id, flags, template): arms a registration *proxy* in the
///    space (TupleSpace::registerProxy) on behalf of a remote waiter. No
///    connection thread parks per blocked take — the registration is an
///    entry in the space's blocked-reader table, and a matching deposit's
///    callback enqueues a Deliver(id, fields) push frame.
///
///  - Retract(id): retracts the registration, answering Retracted(id,
///    wasArmed). wasArmed=true is the HandoffList retract-or-observe
///    guarantee on the wire: no delivery fired and none will. wasArmed=
///    false means a delivery owns the registration — its Deliver frame is
///    already on this connection or still in flight from the depositor's
///    callback, so the router must keep the registration record until the
///    Deliver arrives (frames from the two sources are NOT ordered).
///
///  - RepPut/RepRetract/RepPromote/RepDemote/RepPull (with a Replica
///    wired): the replication protocol of DESIGN.md §14, dispatched into
///    dist::Replica. A take's Deliver frame (and a unary TsIn's TsMatch)
///    is preceded by a forwarded, acknowledged RepRetract to the backup,
///    so every observed delivery already has a tombstoned copy.
///
/// Exactly-once conservation across connection death: teardown retracts
/// every armed registration (the tuple never left the space) and
/// re-deposits the tuple of every *take* delivery whose Deliver frame was
/// never flushed to the socket — a consumed tuple is either observably
/// delivered or back in the space, never silently dropped. Under
/// replication the re-deposit first restores the backup copy
/// (Replica::noteRestored), keeping copy counts balanced.
///
//===----------------------------------------------------------------------===//

#ifndef STING_DIST_SHARD_H
#define STING_DIST_SHARD_H

#include "net/Server.h"
#include "net/Services.h"

#include <cstdint>
#include <memory>

namespace sting::dist {

class Replica;

struct ShardConfig {
  /// Outbound-drain poll period once a connection holds registrations or
  /// queued push frames: the reader thread alternates timed frame reads
  /// with queue drains, bounding Deliver push latency by this period.
  std::uint64_t PollNanos = 1'000'000;
  /// This shard's replication brain (DESIGN.md §14), shared by every
  /// connection the handler serves. Null runs the shard single-copy: the
  /// Rep* ops answer Err("no replica") and takes skip the retract
  /// forward. The Replica must outlive the server (keep the shared_ptr
  /// alive until net::Server::stop returns).
  std::shared_ptr<Replica> Rep;
};

/// \returns a handler serving \p Space as one shard: the tuple service
/// ops plus the registration (and, with Config.Rep, replication)
/// protocols above. Blocking TsRd/TsIn still park the connection thread
/// (pool connections); routers keep registrations on a dedicated
/// connection and never mix the two. Handlers run on sting threads and
/// may park on socket writes and replication forwards. \p Space must
/// outlive the server.
net::Server::Handler shardHandler(TupleSpaceRef Space, ShardConfig Config = {});

} // namespace sting::dist

#endif // STING_DIST_SHARD_H
