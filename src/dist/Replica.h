//===- dist/Replica.h - Chain-of-two shard replication ----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shard side of chain-of-two replication (DESIGN.md §14). Each hash
/// slot's tuples live on a two-member replica group — the slot's home
/// shard and its ring successor — and a per-slot *epoch* elects which
/// member currently serves as primary (epoch parity, dist::primaryOf).
/// A Replica instance is one shard's replication brain, shared by every
/// connection that dist::shardHandler serves:
///
///  - Primary put (router RepPut): forward a copy to the backup and wait
///    for its RepAck *before* depositing into the serving space, so any
///    take that can observe the tuple happens after the backup holds a
///    copy. A dead backup degrades to a single-copy deposit (availability
///    over replication, reported in the ack and counted).
///
///  - Backup copy (forwarded RepPut / RepRetract): copies live in a
///    byte-keyed side store, never in the serving TupleSpace — a backup
///    copy must not match local registrations or wildcard fan-out legs.
///    Retracting bytes with no stored copy records a tombstone that eats
///    the next put of equal bytes, so the pair commutes across unordered
///    connections and a delivered tuple is never resurrected.
///
///  - Promotion/demotion (RepPromote/RepDemote/Hello epochs): advancing a
///    slot's epoch atomically swaps the roles — the new primary
///    materializes its side store into the serving space, the demoted
///    member discards the replicated residents it deposited as primary
///    and re-enters as a backup owing a catch-up pull (RepPull/RepState)
///    before it can be promoted again.
///
/// Thread-safety: every public member is thread-safe. One SpinLock guards
/// the slot table; it is never held across an RPC or a space operation.
/// Blocking members (the forwarding and catch-up paths) park and must run
/// on sting threads — which connection handler threads are.
///
//===----------------------------------------------------------------------===//

#ifndef STING_DIST_REPLICA_H
#define STING_DIST_REPLICA_H

#include "dist/Route.h"
#include "net/Pool.h"
#include "support/SpinLock.h"
#include "tuple/TupleSpace.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace sting {
class VirtualMachine;
} // namespace sting

namespace sting::dist {

struct ReplicaConfig {
  /// Copies per slot. 1 disables replication (every hook is a no-op);
  /// only 1 and 2 are supported — the chain has one link.
  std::size_t ReplicationFactor = 2;
  /// Per-attempt budget for one primary→backup forward RPC. Bounds the
  /// latency a dead backup adds to a put before it degrades to a
  /// single-copy ack.
  std::uint64_t ForwardTimeoutNanos = 1'000'000'000;
  /// Budget for one catch-up pull round-trip (the reply carries up to
  /// PullMaxTuples blobs).
  std::uint64_t PullTimeoutNanos = 2'000'000'000;
  /// Anti-entropy chunk bound: a RepState reply carries at most this many
  /// tuples. Larger transfers continue across chunks via the RepPull
  /// offset cursor; the whole sequence installs atomically once complete.
  std::size_t PullMaxTuples = 65536;
  /// Pooled connections per peer for forwards and pulls.
  std::size_t MaxConnectionsPerPeer = 2;
};

/// Monotonic tallies of one shard's replication activity. Readable at any
/// time (relaxed atomics); exact only at quiescence.
struct ReplicaStatsSnapshot {
  std::uint64_t Forwards = 0;        ///< put/retract copies sent to the backup
  std::uint64_t ForwardFailures = 0; ///< forwards that got no RepAck (degraded)
  std::uint64_t StaleRejections = 0; ///< ops fenced off with "stale epoch"
  std::uint64_t Tombstones = 0;      ///< retracts that outran their put
  std::uint64_t Materialized = 0;    ///< copies promoted into the serving space
  std::uint64_t Discarded = 0;       ///< stale residents dropped on demotion
  std::uint64_t CatchupTuples = 0;   ///< copies installed by anti-entropy pulls
  std::uint64_t Promotions = 0;      ///< epoch advances applied by this shard
};

/// One shard's replication state and peer links. Construct alongside the
/// shard's TupleSpace, hand it to dist::ShardConfig, then bind() once
/// every shard's endpoint is known. Destruction (or shutdown()) joins the
/// catch-up helpers; the VirtualMachine and IoService must outlive it.
class Replica {
public:
  /// \p Self is this shard's position in the ring (== its default slot).
  /// No RPCs happen until bind(); until then forwards degrade as if the
  /// peer were down.
  Replica(VirtualMachine &Vm, IoService &Io, TupleSpaceRef Space,
          std::size_t Self, ReplicaConfig Config = {});
  ~Replica();

  Replica(const Replica &) = delete;
  Replica &operator=(const Replica &) = delete;

  /// Supplies the ring topology — one ClientConfig per shard, in ring
  /// order, Self included (its entry is never dialed). Call once, after
  /// every shard's server is listening and before traffic. Not
  /// thread-safe with concurrent replication ops (wire it up first).
  void bind(std::vector<net::ClientConfig> Shards);

  /// Joins catch-up helpers and drops peer connections. Idempotent;
  /// called by the destructor. Further ops degrade to unbound behavior.
  void shutdown();

  /// Replication disabled (factor 1 or single-shard ring)? Pure.
  bool inert() const { return Config.ReplicationFactor < 2 || RingSize < 2; }

  /// Outcome of one replication op, ready to marshal as RepAck or Err.
  struct Ack {
    bool Ok = false;
    std::uint64_t Epoch = 0;  ///< this shard's slot epoch after the op
    std::int64_t Info = 0;    ///< RepAck info field (see net::wire::Op)
    const char *Err = nullptr; ///< refusal reason when !Ok
  };

  /// RepPut: \p Forwarded set means a primary→backup copy (stored in the
  /// side store, tombstone-aware); clear means a router deposit — this
  /// shard must be \p Slot's primary at \p Epoch, forwards to the backup
  /// and waits for its ack, then deposits \p T into the serving space.
  /// Blocks (forward RPC + space deposit). A stale \p Epoch is refused
  /// without touching the space.
  Ack onPut(std::uint64_t Slot, std::uint64_t Epoch, bool Forwarded,
            Tuple T);

  /// RepRetract from the slot's primary: drop one stored copy of \p T's
  /// bytes, or record a tombstone when the copy has not arrived yet.
  /// Non-blocking (map ops only, after epoch reconciliation effects).
  Ack onRetract(std::uint64_t Slot, std::uint64_t Epoch, const Tuple &T);

  /// RepPromote: become \p Slot's primary at exactly \p Epoch (or report
  /// the higher epoch already held). Materializes the side store into the
  /// serving space — Info is the count. Refuses "not caught up" while a
  /// pull is owed, "wrong member" when the epoch's parity elects the
  /// peer. Blocks on the space deposits, never on RPCs.
  Ack onPromote(std::uint64_t Slot, std::uint64_t Epoch);

  /// RepDemote: fence this shard off \p Slot at \p Epoch — discard the
  /// replicated residents it deposited as primary (Info is the count) and
  /// start an asynchronous catch-up pull from the new primary. Blocks on
  /// the space takes, never on RPCs.
  Ack onDemote(std::uint64_t Slot, std::uint64_t Epoch);

  /// RepPull reply data: one chunk of the resident ledger snapshot a
  /// rejoining backup installs.
  struct PullReply {
    bool Ok = false;
    std::uint64_t Epoch = 0;
    bool Complete = true; ///< false: more copies remain past this chunk
    /// Ledger version the chunk was cut at. A multi-chunk transfer is only
    /// coherent while every chunk reports the same version — any resident
    /// mutation bumps it, invalidating the offset cursor.
    std::uint64_t Version = 0;
    std::vector<std::string> Tuples; ///< encoded field bytes, one per copy
    const char *Err = nullptr;
  };

  /// RepPull: snapshot this primary's resident ledger for \p Slot,
  /// skipping the first \p Offset copies (the chunk cursor of a transfer
  /// already in progress). Non-blocking.
  PullReply onPull(std::uint64_t Slot, std::uint64_t Epoch,
                   std::uint64_t Offset = 0);

  /// A Hello handshake carried the router's (slot, epoch) view: adopt any
  /// newer epoch, with the same side effects as a demote when the new
  /// parity elects the peer. Blocks on space ops when a role flips.
  void observeEpoch(std::uint64_t Slot, std::uint64_t Epoch);

  /// A take is about to become observable (its Deliver/TsMatch is about
  /// to flush): if the consumed tuple was a replicated resident, forward
  /// the retract to the backup and wait for its ack, so every observed
  /// delivery already has a tombstoned copy. Blocks (one RPC). Tuples
  /// this shard never deposited as primary (locally seeded, or consumed
  /// after a demotion) are skipped. Call with the match's resolved
  /// fields.
  void noteTaken(const std::vector<gc::Value> &Fields);

  /// A consumed tuple's delivery was dropped unsent and the tuple is
  /// going back: undo noteTaken. Restores the backup copy (one RPC) and
  /// \returns true when the caller should re-deposit into the local
  /// space. When this shard is no longer the slot's primary the tuple is
  /// instead re-routed to the current primary (so it lands where takes
  /// look), and false is returned unless that re-route failed — the
  /// local deposit is then the conservation fallback. Blocks.
  bool noteRestored(const std::vector<gc::Value> &Fields);

  /// This shard's ring position. Pure.
  std::size_t selfIndex() const { return Self; }

  /// Current epoch of \p Slot (0 before any promotion). Thread-safe.
  std::uint64_t slotEpoch(std::uint64_t Slot) const;

  /// True while \p Slot's side store owes an anti-entropy pull.
  bool needsCatchup(std::uint64_t Slot) const;

  ReplicaStatsSnapshot statsSnapshot() const;

private:
  struct SlotState {
    std::uint64_t Epoch = 0;
    bool NeedsCatchup = false;
    bool PullRunning = false;
    /// Backup-role side store: encoded field bytes -> copies held.
    std::unordered_map<std::string, std::uint64_t> Store;
    /// Retracts that outran their puts: bytes -> pending annihilations.
    std::unordered_map<std::string, std::uint64_t> Tombstones;
    /// Primary-role ledger: bytes -> copies this shard deposited into the
    /// serving space through the replicated path (what a pull serves and
    /// a demotion discards).
    std::unordered_map<std::string, std::uint64_t> Residents;
    /// Bumped on every Residents mutation. A catch-up transfer's chunk
    /// offsets are only meaningful while this holds still (RepState
    /// carries it; the puller restarts on a mismatch).
    std::uint64_t ResidentsVersion = 0;
    /// Bumped on every forwarded Store/Tombstones mutation. The catch-up
    /// installer records it when a transfer starts and refuses to install
    /// a snapshot any live forward has raced — the snapshot *replaces*
    /// the store, so an unfenced install would drop or double-count the
    /// racing copy.
    std::uint64_t StoreGen = 0;
    /// Primary deposits between their ledger increment and the space put
    /// landing. A demotion's discard pass waits this out so its reclaim
    /// cannot silently miss a tuple still in flight to the space.
    std::uint64_t PendingDeposits = 0;
    /// The slot's catch-up helper (at most one alive — PullRunning gates
    /// it). The previous, finished helper is joined when the next pull
    /// starts, so repeated demotions never accumulate thread refs.
    ThreadRef Puller;
  };

  /// Deferred space work collected under the lock, applied after unlock.
  struct RoleEffects {
    std::vector<std::string> Materialize; ///< one entry per copy to put
    std::vector<std::string> Discard;     ///< one entry per copy to take
    bool StartPull = false;
    std::uint64_t Slot = 0;
  };

  SlotState &slot(std::uint64_t S);
  const SlotState *slotIfPresent(std::uint64_t S) const;

  /// Lock held. Advances \p St to \p Epoch, flipping roles as the parity
  /// dictates and collecting the space work into \p Fx.
  void advanceLocked(std::uint64_t Slot, SlotState &St, std::uint64_t Epoch,
                     RoleEffects &Fx);
  /// Applies collected effects with the lock released. \returns tuples
  /// materialized (for promote's Info).
  std::size_t applyEffects(RoleEffects Fx);

  /// One primary→backup RPC. \returns Ok / PeerDown / PeerStale; a stale
  /// refusal stores the peer's epoch (from the Err frame's trailing
  /// fixnum) into \p StaleEpoch when provided, so the caller adopts the
  /// peer's actual epoch instead of inching forward one at a time.
  enum class ForwardResult { Ok, PeerDown, PeerStale };
  ForwardResult forward(std::size_t Peer, const net::wire::Writer &W,
                        std::uint64_t TimeoutNanos,
                        std::uint64_t *StaleEpoch = nullptr);

  /// Adopts a newer epoch learned from a peer's refusal or handshake,
  /// with the role flip's side effects. No-op when not newer.
  void adoptAtLeast(std::uint64_t Slot, std::uint64_t Epoch);

  void startPull(std::uint64_t Slot);
  void runPull(std::uint64_t Slot);

  VirtualMachine *Vm;
  IoService *Io;
  TupleSpaceRef Space;
  std::size_t Self;
  ReplicaConfig Config;

  mutable SpinLock Lock;
  std::size_t RingSize = 0; ///< 0 until bind()
  std::unordered_map<std::uint64_t, SlotState> Slots;
  std::unique_ptr<net::ConnectionPool> Peers; ///< set by bind()
  std::atomic<bool> Closing{false};

  struct {
    std::atomic<std::uint64_t> Forwards{0}, ForwardFailures{0},
        StaleRejections{0}, Tombstones{0}, Materialized{0}, Discarded{0},
        CatchupTuples{0}, Promotions{0};
  } Stats;
};

using ReplicaRef = std::shared_ptr<Replica>;

} // namespace sting::dist

#endif // STING_DIST_REPLICA_H
