//===- gc/Object.h - Value utilities -----------------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Non-allocating utilities over tagged values: structural equality,
/// hashing, list traversal and debug formatting. Allocation lives on the
/// heaps (LocalHeap / GlobalHeap); this header is pure inspection.
///
//===----------------------------------------------------------------------===//

#ifndef STING_GC_OBJECT_H
#define STING_GC_OBJECT_H

#include "gc/Value.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace sting {
namespace gc {

/// Structural equality (Scheme's equal?): fixnums and immediates by value,
/// strings by content, symbols and foreigns by identity, pairs/vectors/
/// boxes/records recursively.
bool valueEqual(Value A, Value B);

/// Structural hash consistent with valueEqual.
std::uint64_t valueHash(Value V);

/// String/symbol content view.
std::string_view textOf(Value V);

/// Pair accessors.
inline Value car(Value V) { return V.asObject()->slot(0); }
inline Value cdr(Value V) { return V.asObject()->slot(1); }
inline bool isPair(Value V) {
  return V.isObject() && V.asObject()->kind() == ObjectKind::Pair;
}

/// Length of a proper list; aborts on improper lists in debug builds.
std::size_t listLength(Value List);

/// \returns element \p Index of a proper list.
Value listRef(Value List, std::size_t Index);

/// Debug rendering ("(1 2 . 3)", "#(1 2)", "\"text\"", ...).
std::string valueToString(Value V);

} // namespace gc
} // namespace sting

#endif // STING_GC_OBJECT_H
