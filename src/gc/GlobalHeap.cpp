//===- gc/GlobalHeap.cpp - Shared older generation --------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "gc/GlobalHeap.h"

#include "gc/LocalHeap.h"
#include "support/Clock.h"

#include <cstring>
#include <mutex>

namespace sting {
namespace gc {

GlobalHeap::GlobalHeap(std::size_t BlockBytes)
    : BlockBytes(BlockBytes < 4096 ? 4096 : BlockBytes) {}

GlobalHeap::~GlobalHeap() = default;

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

Object *GlobalHeap::allocateFromFreeList(std::size_t Bytes) {
  for (auto It = FreeList.begin(); It != FreeList.end(); ++It) {
    Object *Chunk = *It;
    std::size_t ChunkBytes = Chunk->sizeInBytes();
    if (ChunkBytes < Bytes)
      continue;
    FreeList.erase(It);
    std::size_t Leftover = ChunkBytes - Bytes;
    if (Leftover >= sizeof(Object)) {
      // Split: the tail remains a free chunk (possibly header-only).
      auto *Tail = reinterpret_cast<Object *>(
          reinterpret_cast<char *>(Chunk) + Bytes);
      Tail->initHeader(ObjectKind::FreeChunk,
                       static_cast<std::uint32_t>(
                           (Leftover - sizeof(Object)) / 8));
      FreeList.push_back(Tail);
    }
    return Chunk;
  }
  return nullptr;
}

Object *GlobalHeap::allocateLocked(ObjectKind Kind, std::uint32_t SlotCount) {
  const std::size_t Bytes = sizeof(Object) + std::size_t(SlotCount) * 8;

  Object *O = allocateFromFreeList(Bytes);
  if (!O) {
    if (Blocks.empty() || !Blocks.back()->remaining() ||
        Blocks.back()->remaining() < Bytes) {
      std::size_t NewBlock = BlockBytes > Bytes + 16 ? BlockBytes : Bytes + 16;
      Blocks.push_back(std::make_unique<Area>(NewBlock));
    }
    O = static_cast<Object *>(Blocks.back()->allocate(Bytes));
    STING_CHECK(O, "old-generation block allocation failed");
  }

  O->initHeader(Kind, SlotCount);
  O->setInOld();
  if (O->hasTracedSlots()) {
    for (std::uint32_t I = 0; I != SlotCount; ++I)
      O->slots()[I] = Value::nil();
  } else {
    std::memset(static_cast<void *>(O->slots()), 0,
                std::size_t(SlotCount) * 8);
  }

  ++Stats.ObjectsAllocated;
  Stats.BytesAllocated += Bytes;
  return O;
}

Object *GlobalHeap::allocate(ObjectKind Kind, std::uint32_t SlotCount) {
  std::lock_guard<SpinLock> Guard(Lock);
  return allocateLocked(Kind, SlotCount);
}

Value GlobalHeap::consShared(Value Car, Value Cdr) {
  STING_DCHECK((!Car.isObject() || Car.asObject()->isInOld()) &&
                   (!Cdr.isObject() || Cdr.asObject()->isInOld()),
               "shared cons over unescaped young values");
  Object *O = allocate(ObjectKind::Pair, 2);
  O->setSlotRaw(0, Car);
  O->setSlotRaw(1, Cdr);
  return Value::object(O);
}

Value GlobalHeap::makeVectorShared(std::uint32_t Length, Value Fill) {
  Object *O = allocate(ObjectKind::Vector, Length);
  for (std::uint32_t I = 0; I != Length; ++I)
    O->setSlotRaw(I, Fill);
  return Value::object(O);
}

Value GlobalHeap::makeStringShared(std::string_view Text) {
  const auto Words = static_cast<std::uint32_t>((Text.size() + 7) / 8);
  Object *O = allocate(ObjectKind::String, Words);
  O->setByteLength(Text.size());
  std::memcpy(O->bytes(), Text.data(), Text.size());
  return Value::object(O);
}

Value GlobalHeap::makeBoxShared(Value V) {
  Object *O = allocate(ObjectKind::Box, 1);
  O->setSlotRaw(0, V);
  return Value::object(O);
}

Value GlobalHeap::intern(std::string_view Name) {
  std::lock_guard<SpinLock> Guard(Lock);
  auto It = Symbols.find(std::string(Name));
  if (It != Symbols.end())
    return Value::object(It->second);

  const auto Words = static_cast<std::uint32_t>((Name.size() + 7) / 8);
  Object *O = allocateLocked(ObjectKind::Symbol, Words);
  O->setByteLength(Name.size());
  std::memcpy(O->bytes(), Name.data(), Name.size());
  Symbols.emplace(std::string(Name), O);
  return Value::object(O);
}

//===----------------------------------------------------------------------===//
// Roots
//===----------------------------------------------------------------------===//

void GlobalHeap::addRoot(Value *Slot) {
  std::lock_guard<SpinLock> Guard(Lock);
  Roots.push_back(Slot);
}

void GlobalHeap::removeRoot(Value *Slot) {
  std::lock_guard<SpinLock> Guard(Lock);
  for (auto It = Roots.begin(); It != Roots.end(); ++It) {
    if (*It != Slot)
      continue;
    Roots.erase(It);
    return;
  }
}

bool GlobalHeap::contains(const void *P) const {
  std::lock_guard<SpinLock> Guard(Lock);
  for (const auto &Block : Blocks)
    if (Block->contains(P))
      return true;
  return false;
}

GlobalHeapStats GlobalHeap::stats() const {
  std::lock_guard<SpinLock> Guard(Lock);
  return Stats;
}

//===----------------------------------------------------------------------===//
// Full collection
//===----------------------------------------------------------------------===//

void GlobalHeap::markValue(Value V, std::vector<Object *> &Gray) {
  if (!V.isObject())
    return;
  Object *O = V.asObject();
  if (!O->isInOld() || O->isMarked())
    return;
  O->setMarked(true);
  Gray.push_back(O);
}

void GlobalHeap::collectFull(const std::vector<LocalHeap *> &Mutators) {
  std::lock_guard<SpinLock> Guard(Lock);
  ++Stats.FullCollections;
  std::uint64_t PauseStart = nowNanos();

  // --- Mark -------------------------------------------------------------
  std::vector<Object *> Gray;
  for (Value *Slot : Roots)
    markValue(*Slot, Gray);
  for (auto &[Name, Sym] : Symbols) {
    if (!Sym->isMarked()) {
      Sym->setMarked(true);
      Gray.push_back(Sym);
    }
  }
  for (LocalHeap *Mutator : Mutators) {
    // Young objects may hold the only references into the old generation;
    // scanning the whole young area (live or not) conservatively retains
    // some floating garbage for one cycle, which is sound.
    Mutator->From->forEachObject([&](Object &O) {
      if (O.isForwarded() || !O.hasTracedSlots())
        return;
      for (std::uint32_t I = 0, E = O.slotCount(); I != E; ++I)
        markValue(O.slots()[I], Gray);
    });
    for (HandleScope *Scope = Mutator->Scopes; Scope;
         Scope = Scope->previous())
      for (Value *Slot = Scope->begin(); Slot != Scope->end(); ++Slot)
        markValue(*Slot, Gray);
    for (Value *Slot : Mutator->ExternalRoots)
      markValue(*Slot, Gray);
  }

  while (!Gray.empty()) {
    Object *O = Gray.back();
    Gray.pop_back();
    if (!O->hasTracedSlots())
      continue;
    for (std::uint32_t I = 0, E = O->slotCount(); I != E; ++I)
      markValue(O->slots()[I], Gray);
  }

  // --- Prune remembered sets whose containers died ------------------------
  for (LocalHeap *Mutator : Mutators) {
    auto &Entries = Mutator->Remembered;
    std::size_t Keep = 0;
    for (std::size_t I = 0; I != Entries.size(); ++I)
      if (Entries[I].Container->isMarked())
        Entries[Keep++] = Entries[I];
    Entries.resize(Keep);
  }

  // --- Sweep --------------------------------------------------------------
  FreeList.clear();
  std::uint64_t Live = 0;
  std::uint64_t Swept = 0;
  for (const auto &Block : Blocks) {
    Object *PendingFree = nullptr;
    Block->forEachObject([&](Object &O) {
      const std::size_t Bytes = O.sizeInBytes();
      const bool IsGarbage =
          O.kind() == ObjectKind::FreeChunk || !O.isMarked();
      if (!IsGarbage) {
        O.setMarked(false);
        Live += Bytes;
        PendingFree = nullptr;
        return;
      }
      if (O.kind() != ObjectKind::FreeChunk)
        Swept += Bytes;
      if (PendingFree) {
        // Coalesce with the preceding free chunk.
        PendingFree->initHeader(
            ObjectKind::FreeChunk,
            static_cast<std::uint32_t>(
                (PendingFree->sizeInBytes() + Bytes - sizeof(Object)) / 8));
        return;
      }
      O.initHeader(ObjectKind::FreeChunk,
                   static_cast<std::uint32_t>((Bytes - sizeof(Object)) / 8));
      O.setInOld();
      PendingFree = &O;
      FreeList.push_back(&O);
    });
  }

  Stats.BytesSwept += Swept;
  Stats.LiveBytesAfterLastGc = Live;
  Stats.PauseNanos.record(nowNanos() - PauseStart);
}

} // namespace gc
} // namespace sting
