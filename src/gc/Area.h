//===- gc/Area.h - Allocation areas ------------------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A contiguous bump-allocated region — the paper's "areas" (Fig. 1: each
/// thread's storage is organized into areas; the VM address space also
/// holds shared areas). Local heaps use a pair of areas as young
/// semispaces; the global heap uses a list of areas as old-generation
/// blocks.
///
//===----------------------------------------------------------------------===//

#ifndef STING_GC_AREA_H
#define STING_GC_AREA_H

#include "gc/Value.h"

#include <cstddef>
#include <cstdint>

namespace sting {
namespace gc {

/// A contiguous allocation region with bump allocation.
class Area {
public:
  explicit Area(std::size_t Bytes);
  ~Area();

  Area(const Area &) = delete;
  Area &operator=(const Area &) = delete;

  /// Bump-allocates \p Bytes (8-aligned); returns null when full.
  void *allocate(std::size_t Bytes) {
    std::size_t Aligned = (Bytes + 7) & ~std::size_t(7);
    if (Top + Aligned > End)
      return nullptr;
    void *Result = Top;
    Top += Aligned;
    return Result;
  }

  /// Empties the area (used when a semispace becomes the new to-space).
  void reset() { Top = Base; }

  bool contains(const void *P) const { return P >= Base && P < Top; }

  std::size_t capacity() const { return static_cast<std::size_t>(End - Base); }
  std::size_t used() const { return static_cast<std::size_t>(Top - Base); }
  std::size_t remaining() const { return static_cast<std::size_t>(End - Top); }

  char *base() const { return Base; }
  char *top() const { return Top; }

  /// Iterates the objects allocated in this area in address order.
  /// \p Visit is called with each object header.
  template <typename Fn> void forEachObject(Fn Visit) const {
    char *P = Base;
    while (P < Top) {
      auto *O = reinterpret_cast<Object *>(P);
      Visit(*O);
      P += O->sizeInBytes();
    }
  }

private:
  char *Base;
  char *Top;
  char *End;
};

} // namespace gc
} // namespace sting

#endif // STING_GC_AREA_H
