//===- gc/Handles.cpp - Precise GC roots ------------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "gc/Handles.h"

#include "gc/LocalHeap.h"

namespace sting {
namespace gc {

HandleScope::HandleScope(LocalHeap &Heap) : Heap(Heap), Prev(Heap.Scopes) {
  Heap.Scopes = this;
}

HandleScope::~HandleScope() {
  STING_DCHECK(Heap.Scopes == this, "handle scopes destroyed out of order");
  Heap.Scopes = Prev;
}

} // namespace gc
} // namespace sting
