//===- gc/Value.h - Tagged values and heap objects --------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tagged value model of the storage substrate (paper section 2 item 3
/// and Fig. 1). The coordination language manages heap data for the
/// computation language; here a compact Scheme-like value universe stands
/// in for Orbit's object model (see the substitution table in DESIGN.md).
///
/// Encoding (64-bit words, 3-bit low tags):
///   000  fixnum        payload = value << 3 (61-bit signed)
///   001  heap pointer  payload = 8-aligned Object address
///   010  immediate     nil / true / false / unspecified
///   011  foreign       8-aligned pointer the collector never traces
///
//===----------------------------------------------------------------------===//

#ifndef STING_GC_VALUE_H
#define STING_GC_VALUE_H

#include "support/Debug.h"

#include <cstddef>
#include <cstdint>

namespace sting {
namespace gc {

class Object;

/// A tagged 64-bit value.
class Value {
  static constexpr std::uint64_t TagMask = 7;
  static constexpr std::uint64_t FixnumTag = 0;
  static constexpr std::uint64_t HeapTag = 1;
  static constexpr std::uint64_t ImmediateTag = 2;
  static constexpr std::uint64_t ForeignTag = 3;

  enum ImmediateCode : std::uint64_t {
    ImmNil = 0,
    ImmTrue = 1,
    ImmFalse = 2,
    ImmUnspecified = 3,
  };

public:
  /// Default: nil.
  constexpr Value() : Bits(ImmediateTag) {}

  static constexpr Value fixnum(std::int64_t N) {
    return Value(static_cast<std::uint64_t>(N) << 3);
  }
  static constexpr Value nil() {
    return Value((ImmNil << 3) | ImmediateTag);
  }
  static constexpr Value trueValue() {
    return Value((ImmTrue << 3) | ImmediateTag);
  }
  static constexpr Value falseValue() {
    return Value((ImmFalse << 3) | ImmediateTag);
  }
  static constexpr Value unspecified() {
    return Value((ImmUnspecified << 3) | ImmediateTag);
  }
  static Value boolean(bool B) { return B ? trueValue() : falseValue(); }

  static Value object(Object *O) {
    auto P = reinterpret_cast<std::uint64_t>(O);
    STING_DCHECK((P & TagMask) == 0, "unaligned object pointer");
    return Value(P | HeapTag);
  }

  static Value foreign(void *P) {
    auto Bits = reinterpret_cast<std::uint64_t>(P);
    STING_DCHECK((Bits & TagMask) == 0, "unaligned foreign pointer");
    return Value(Bits | ForeignTag);
  }

  bool isFixnum() const { return (Bits & TagMask) == FixnumTag; }
  bool isObject() const { return (Bits & TagMask) == HeapTag; }
  bool isImmediate() const { return (Bits & TagMask) == ImmediateTag; }
  bool isForeign() const { return (Bits & TagMask) == ForeignTag; }

  bool isNil() const { return Bits == nil().Bits; }
  bool isTrue() const { return Bits == trueValue().Bits; }
  bool isFalse() const { return Bits == falseValue().Bits; }
  bool isUnspecified() const { return Bits == unspecified().Bits; }

  /// Scheme truthiness: everything but #f is true.
  bool isTruthy() const { return !isFalse(); }

  std::int64_t asFixnum() const {
    STING_DCHECK(isFixnum(), "asFixnum on non-fixnum");
    return static_cast<std::int64_t>(Bits) >> 3;
  }

  Object *asObject() const {
    STING_DCHECK(isObject(), "asObject on non-object");
    return reinterpret_cast<Object *>(Bits & ~TagMask);
  }

  void *asForeign() const {
    STING_DCHECK(isForeign(), "asForeign on non-foreign");
    return reinterpret_cast<void *>(Bits & ~TagMask);
  }

  std::uint64_t raw() const { return Bits; }
  static Value fromRaw(std::uint64_t Raw) { return Value(Raw); }

  /// Identity comparison (eq?): same bits.
  bool operator==(const Value &RHS) const { return Bits == RHS.Bits; }

private:
  constexpr explicit Value(std::uint64_t Bits) : Bits(Bits) {}
  std::uint64_t Bits;
};

static_assert(sizeof(Value) == 8, "values are single words");

/// Kinds of heap objects.
enum class ObjectKind : std::uint8_t {
  Pair,     ///< car, cdr (2 traced slots)
  Vector,   ///< N traced slots
  Box,      ///< 1 traced slot (mutable cell)
  String,   ///< raw bytes; slot 0 holds the byte length as a raw word
  Symbol,   ///< interned string; layout as String
  Bytes,    ///< raw bytes; layout as String
  Record,   ///< traced slots with a leading tag slot (closures, structs)
  FreeChunk ///< swept space inside an old-generation block
};

/// Object header flag bits.
enum ObjectFlags : std::uint8_t {
  FlagForwarded = 1 << 0, ///< slot 0 holds the forwarding pointer
  FlagInOld = 1 << 1,     ///< lives in the shared older generation
  FlagMarked = 1 << 2,    ///< mark bit for full collections
};

/// A heap object: a 16-byte header followed by SlotCount 8-byte payload
/// words. Pair/Vector/Box/Record payload words are traced Values; String/
/// Symbol/Bytes payloads are raw data whose byte length lives in the
/// header's aux word. The aux word doubles as the forwarding pointer so
/// that even zero-slot objects can be forwarded in place.
class Object {
public:
  ObjectKind kind() const { return Kind; }
  void setKind(ObjectKind K) { Kind = K; }

  std::uint32_t slotCount() const { return SlotCount; }

  bool isForwarded() const { return Flags & FlagForwarded; }
  bool isInOld() const { return Flags & FlagInOld; }
  bool isMarked() const { return Flags & FlagMarked; }

  void setForwarded(Object *To) {
    Flags |= FlagForwarded;
    Aux = reinterpret_cast<std::uint64_t>(To);
  }
  Object *forwardedTo() const {
    STING_DCHECK(isForwarded(), "not forwarded");
    return reinterpret_cast<Object *>(Aux);
  }

  void setInOld() { Flags |= FlagInOld; }
  void setMarked(bool M) {
    if (M)
      Flags |= FlagMarked;
    else
      Flags &= static_cast<std::uint8_t>(~FlagMarked);
  }

  std::uint8_t age() const { return Age; }
  void bumpAge() {
    if (Age != 255)
      ++Age;
  }

  /// Payload access.
  Value *slots() {
    return reinterpret_cast<Value *>(reinterpret_cast<char *>(this) +
                                     sizeof(Object));
  }
  const Value *slots() const {
    return const_cast<Object *>(this)->slots();
  }

  Value slot(std::uint32_t I) const {
    STING_DCHECK(I < SlotCount, "slot index out of range");
    return slots()[I];
  }

  /// Raw (untraced) store; use the heap's write-barriered store for
  /// mutations after construction.
  void setSlotRaw(std::uint32_t I, Value V) {
    STING_DCHECK(I < SlotCount, "slot index out of range");
    slots()[I] = V;
  }

  /// Raw byte payload of String/Symbol/Bytes.
  char *bytes() { return reinterpret_cast<char *>(slots()); }
  const char *bytes() const {
    return reinterpret_cast<const char *>(slots());
  }
  std::size_t byteLength() const { return static_cast<std::size_t>(Aux); }
  void setByteLength(std::size_t N) { Aux = N; }

  /// True when the payload words are traced Values.
  bool hasTracedSlots() const {
    switch (Kind) {
    case ObjectKind::Pair:
    case ObjectKind::Vector:
    case ObjectKind::Box:
    case ObjectKind::Record:
      return true;
    case ObjectKind::String:
    case ObjectKind::Symbol:
    case ObjectKind::Bytes:
    case ObjectKind::FreeChunk:
      return false;
    }
    STING_UNREACHABLE("bad object kind");
  }

  /// Total size in bytes including the header.
  std::size_t sizeInBytes() const {
    return sizeof(Object) + std::size_t(SlotCount) * 8;
  }

  /// Header initialization; used by the heaps only.
  void initHeader(ObjectKind K, std::uint32_t Slots) {
    Kind = K;
    Flags = 0;
    Age = 0;
    Pad = 0;
    SlotCount = Slots;
    Aux = 0;
  }

private:
  ObjectKind Kind;
  std::uint8_t Flags;
  std::uint8_t Age;
  std::uint8_t Pad;
  std::uint32_t SlotCount;
  std::uint64_t Aux;
};

static_assert(sizeof(Object) == 16, "object header is two words");

} // namespace gc
} // namespace sting

#endif // STING_GC_VALUE_H
