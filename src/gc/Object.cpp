//===- gc/Object.cpp - Value utilities --------------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "gc/Object.h"

#include <cstdio>
#include <cstring>

namespace sting {
namespace gc {

std::string_view textOf(Value V) {
  Object *O = V.asObject();
  STING_DCHECK(O->kind() == ObjectKind::String ||
                   O->kind() == ObjectKind::Symbol ||
                   O->kind() == ObjectKind::Bytes,
               "textOf on a non-text object");
  return std::string_view(O->bytes(), O->byteLength());
}

bool valueEqual(Value A, Value B) {
  if (A == B)
    return true; // eq? fast path covers fixnums, immediates, identity
  if (!A.isObject() || !B.isObject())
    return false;
  Object *OA = A.asObject();
  Object *OB = B.asObject();
  if (OA->kind() != OB->kind())
    return false;

  switch (OA->kind()) {
  case ObjectKind::String:
  case ObjectKind::Bytes:
    return OA->byteLength() == OB->byteLength() &&
           std::memcmp(OA->bytes(), OB->bytes(), OA->byteLength()) == 0;
  case ObjectKind::Symbol:
    return false; // interned: identity already failed
  case ObjectKind::Pair:
    return valueEqual(OA->slot(0), OB->slot(0)) &&
           valueEqual(OA->slot(1), OB->slot(1));
  case ObjectKind::Box:
    return valueEqual(OA->slot(0), OB->slot(0));
  case ObjectKind::Vector:
  case ObjectKind::Record: {
    if (OA->slotCount() != OB->slotCount())
      return false;
    for (std::uint32_t I = 0, E = OA->slotCount(); I != E; ++I)
      if (!valueEqual(OA->slot(I), OB->slot(I)))
        return false;
    return true;
  }
  case ObjectKind::FreeChunk:
    return false;
  }
  STING_UNREACHABLE("bad object kind");
}

static std::uint64_t hashMix(std::uint64_t H, std::uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  return H;
}

static std::uint64_t hashBytes(const char *P, std::size_t N) {
  // FNV-1a.
  std::uint64_t H = 1469598103934665603ull;
  for (std::size_t I = 0; I != N; ++I) {
    H ^= static_cast<unsigned char>(P[I]);
    H *= 1099511628211ull;
  }
  return H;
}

std::uint64_t valueHash(Value V) {
  if (!V.isObject())
    return hashMix(0x5b, V.raw());
  Object *O = V.asObject();
  switch (O->kind()) {
  case ObjectKind::String:
  case ObjectKind::Bytes:
  case ObjectKind::Symbol:
    return hashBytes(O->bytes(), O->byteLength());
  case ObjectKind::Pair:
    return hashMix(valueHash(O->slot(0)), valueHash(O->slot(1)));
  case ObjectKind::Box:
    return hashMix(0xb0, valueHash(O->slot(0)));
  case ObjectKind::Vector:
  case ObjectKind::Record: {
    std::uint64_t H = 0x7ec + O->slotCount();
    for (std::uint32_t I = 0, E = O->slotCount(); I != E; ++I)
      H = hashMix(H, valueHash(O->slot(I)));
    return H;
  }
  case ObjectKind::FreeChunk:
    return 0;
  }
  STING_UNREACHABLE("bad object kind");
}

std::size_t listLength(Value List) {
  std::size_t N = 0;
  while (!List.isNil()) {
    STING_DCHECK(isPair(List), "listLength on an improper list");
    ++N;
    List = cdr(List);
  }
  return N;
}

Value listRef(Value List, std::size_t Index) {
  while (Index--) {
    STING_DCHECK(isPair(List), "listRef past end of list");
    List = cdr(List);
  }
  STING_DCHECK(isPair(List), "listRef past end of list");
  return car(List);
}

static void renderValue(Value V, std::string &Out, int Depth) {
  if (Depth > 16) {
    Out += "...";
    return;
  }
  if (V.isFixnum()) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(V.asFixnum()));
    Out += Buf;
    return;
  }
  if (V.isNil()) {
    Out += "()";
    return;
  }
  if (V.isTrue()) {
    Out += "#t";
    return;
  }
  if (V.isFalse()) {
    Out += "#f";
    return;
  }
  if (V.isUnspecified()) {
    Out += "#unspecified";
    return;
  }
  if (V.isForeign()) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "#<foreign %p>", V.asForeign());
    Out += Buf;
    return;
  }

  Object *O = V.asObject();
  switch (O->kind()) {
  case ObjectKind::String:
    Out += '"';
    Out.append(O->bytes(), O->byteLength());
    Out += '"';
    return;
  case ObjectKind::Symbol:
    Out.append(O->bytes(), O->byteLength());
    return;
  case ObjectKind::Bytes:
    Out += "#<bytes>";
    return;
  case ObjectKind::Box:
    Out += "#&";
    renderValue(O->slot(0), Out, Depth + 1);
    return;
  case ObjectKind::Pair: {
    Out += '(';
    Value Cur = V;
    bool First = true;
    while (isPair(Cur)) {
      if (!First)
        Out += ' ';
      First = false;
      renderValue(car(Cur), Out, Depth + 1);
      Cur = cdr(Cur);
    }
    if (!Cur.isNil()) {
      Out += " . ";
      renderValue(Cur, Out, Depth + 1);
    }
    Out += ')';
    return;
  }
  case ObjectKind::Vector:
  case ObjectKind::Record: {
    Out += O->kind() == ObjectKind::Vector ? "#(" : "#<record ";
    for (std::uint32_t I = 0, E = O->slotCount(); I != E; ++I) {
      if (I)
        Out += ' ';
      renderValue(O->slot(I), Out, Depth + 1);
    }
    Out += O->kind() == ObjectKind::Vector ? ")" : ">";
    return;
  }
  case ObjectKind::FreeChunk:
    Out += "#<free>";
    return;
  }
  STING_UNREACHABLE("bad object kind");
}

std::string valueToString(Value V) {
  std::string Out;
  renderValue(V, Out, 0);
  return Out;
}

} // namespace gc
} // namespace sting
