//===- gc/GlobalHeap.h - Shared older generation -----------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual machine's shared older generation (paper Fig. 1: "Shared
/// older generation" inside the VM address space): "long-lived or
/// persistent data allocated by a thread is accessible to other threads in
/// the same virtual machine." Non-moving block allocator with mark-sweep
/// full collection; promotion targets and cross-thread data live here so
/// per-thread scavenges never need to touch another thread's young area.
///
//===----------------------------------------------------------------------===//

#ifndef STING_GC_GLOBALHEAP_H
#define STING_GC_GLOBALHEAP_H

#include "gc/Area.h"
#include "support/Histogram.h"
#include "support/SpinLock.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sting {
namespace gc {

class LocalHeap;

/// Statistics surfaced to tests and benchmarks.
struct GlobalHeapStats {
  std::uint64_t BytesAllocated = 0;
  std::uint64_t ObjectsAllocated = 0;
  std::uint64_t FullCollections = 0;
  std::uint64_t BytesSwept = 0;
  std::uint64_t LiveBytesAfterLastGc = 0;
  /// Stop-the-world duration of each full collection, in ns.
  Histogram PauseNanos;
};

/// The shared older generation of one virtual machine.
class GlobalHeap {
public:
  explicit GlobalHeap(std::size_t BlockBytes = 256 * 1024);
  ~GlobalHeap();

  GlobalHeap(const GlobalHeap &) = delete;
  GlobalHeap &operator=(const GlobalHeap &) = delete;

  /// Allocates an old-generation object. Thread-safe (per-heap lock on the
  /// refill and free-list paths).
  Object *allocate(ObjectKind Kind, std::uint32_t SlotCount);

  /// Shared-allocation helpers for runtime structures whose data must be
  /// visible across threads (tuple spaces, streams, thread results).
  Value consShared(Value Car, Value Cdr);
  Value makeVectorShared(std::uint32_t Length, Value Fill);
  Value makeStringShared(std::string_view Text);
  Value makeBoxShared(Value V);

  /// Interns \p Name, returning the unique symbol object. Symbols are
  /// permanent (treated as roots by full collections).
  Value intern(std::string_view Name);

  // --- Root registry -----------------------------------------------------

  /// Registers \p Slot as a permanent root (e.g. a runtime structure's
  /// table pointer). The slot must stay valid until removeRoot.
  void addRoot(Value *Slot);
  void removeRoot(Value *Slot);

  // --- Full collection ----------------------------------------------------

  /// Mark-sweep collection of the older generation. Requires mutator
  /// quiescence for the duration (the paper's full collections are likewise
  /// global; only *young* collections are per-thread and unsynchronized).
  /// \p Mutators are the live local heaps whose young areas and handle
  /// scopes are scanned as additional roots.
  void collectFull(const std::vector<LocalHeap *> &Mutators);

  bool contains(const void *P) const;

  GlobalHeapStats stats() const;

private:
  Object *allocateLocked(ObjectKind Kind, std::uint32_t SlotCount);
  Object *allocateFromFreeList(std::size_t Bytes);
  void markValue(Value V, std::vector<Object *> &Gray);

  mutable SpinLock Lock;
  std::size_t BlockBytes;
  std::vector<std::unique_ptr<Area>> Blocks;
  /// First-fit free list of swept chunks (addresses of FreeChunk objects).
  std::vector<Object *> FreeList;
  std::vector<Value *> Roots;
  std::unordered_map<std::string, Object *> Symbols;
  GlobalHeapStats Stats;
};

} // namespace gc
} // namespace sting

#endif // STING_GC_GLOBALHEAP_H
