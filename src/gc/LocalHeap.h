//===- gc/LocalHeap.h - Per-thread young generation --------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-thread storage of paper section 2 item 3: "A thread allocates
/// data on a stack and heap that it manages exclusively. Thus, threads
/// garbage collect their state independently of one another; no global
/// synchronization is necessary in order for a thread to initiate a
/// garbage collection."
///
/// A LocalHeap is a pair of young semispaces plus a remembered set of
/// old-to-young slots. Scavenges are Cheney copies rooted at the heap's
/// handle scopes, registered root ranges and remembered set; survivors age
/// and are promoted into the machine's shared older generation. Values
/// escaping to other threads are promoted eagerly via escape() (see the
/// substitution table in DESIGN.md for how this realizes the paper's
/// inter-area reference discipline).
///
//===----------------------------------------------------------------------===//

#ifndef STING_GC_LOCALHEAP_H
#define STING_GC_LOCALHEAP_H

#include "gc/Area.h"
#include "gc/Handles.h"
#include "support/Histogram.h"

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace sting {
namespace gc {

class GlobalHeap;

/// Per-heap statistics surfaced to tests and benchmarks.
struct LocalHeapStats {
  std::uint64_t Scavenges = 0;
  std::uint64_t BytesCopied = 0;
  std::uint64_t BytesPromoted = 0;
  std::uint64_t ObjectsAllocated = 0;
  std::uint64_t BytesAllocated = 0;
  std::uint64_t Escapes = 0;
  /// Stop duration of each scavenge (and escape promotion), in ns.
  Histogram PauseNanos;
};

/// A thread's private young generation.
class LocalHeap {
public:
  /// Survivors of this many scavenges are promoted to the old generation.
  static constexpr std::uint8_t PromoteAge = 2;

  explicit LocalHeap(GlobalHeap &Global,
                     std::size_t YoungBytes = 256 * 1024);
  ~LocalHeap();

  LocalHeap(const LocalHeap &) = delete;
  LocalHeap &operator=(const LocalHeap &) = delete;

  GlobalHeap &global() const { return Global; }

  // --- Allocation ---------------------------------------------------------

  /// Allocates a young object, scavenging on exhaustion. Objects too large
  /// for the young area go straight to the old generation.
  Object *allocate(ObjectKind Kind, std::uint32_t SlotCount);

  Value cons(Value Car, Value Cdr);
  Value makeVector(std::uint32_t Length, Value Fill);
  Value makeString(std::string_view Text);
  Value makeBox(Value V);
  /// A Record's slot 0 is a tag; the remaining slots are fields.
  Value makeRecord(Value Tag, std::uint32_t FieldCount, Value Fill);

  // --- Mutation (write barrier) -------------------------------------------

  /// Stores \p V into \p Container's slot \p Index, recording an
  /// old-to-young reference when needed. The container must belong to this
  /// thread's heap or be thread-confined old data (cross-thread containers
  /// take escaped values — see escape()).
  void write(Object *Container, std::uint32_t Index, Value V);

  // --- Collection -----------------------------------------------------------

  /// Independent minor collection: Cheney-copies the live young graph,
  /// promoting survivors that reached PromoteAge. No other thread is
  /// stopped or consulted.
  void scavenge();

  /// Promotes \p V's whole young subgraph to the shared old generation and
  /// returns the (old) value — the hand-off point for data escaping to
  /// another thread. Internally a scavenge with \p V as a must-promote
  /// root, so every local reference is forwarded consistently.
  Value escape(Value V);

  // --- Roots ----------------------------------------------------------------

  /// Registers an external root slot (e.g. a C++ structure holding a young
  /// value). Prefer HandleScope for lexically scoped roots.
  void addRoot(Value *Slot);
  void removeRoot(Value *Slot);

  bool contains(const void *P) const {
    return From->contains(P) || To->contains(P);
  }

  const LocalHeapStats &stats() const { return Stats; }
  std::size_t usedBytes() const { return From->used(); }
  std::size_t capacityBytes() const { return From->capacity(); }

  /// Pause-notification hook, fired after every scavenge with the stop
  /// duration in nanoseconds. The gc layer links only against support, so
  /// this is a plain function pointer rather than an obs type; core wires
  /// it to the owning VP's scheduler stats (see Tcb::ensureHeap).
  using PauseSink = void (*)(void *Ctx, std::uint64_t Nanos);
  void setPauseSink(PauseSink S, void *Ctx) {
    Sink = S;
    SinkCtx = Ctx;
  }

private:
  friend class HandleScope;

  /// Copies \p V's target out of from-space if needed; \returns the
  /// relocated value. \p ForcePromote sends survivors straight to the old
  /// generation regardless of age (escape promotion).
  Value evacuate(Value V, bool ForcePromote);

  /// Scans one gray object's slots, evacuating young targets; records
  /// old-to-young slots in the remembered set.
  void scanObject(Object &O, bool InOld, bool ForcePromote);

  void scavengeWith(Value *EscapeRoot);

  GlobalHeap &Global;
  std::unique_ptr<Area> From;
  std::unique_ptr<Area> To;

  HandleScope *Scopes = nullptr;
  std::vector<Value *> ExternalRoots;

  /// An old-generation slot currently pointing at this heap's young
  /// objects. (Container, Index) pairs rather than raw slot addresses so
  /// full collections can prune entries whose container died.
  struct RememberedEntry {
    Object *Container;
    std::uint32_t Index;
  };
  friend class GlobalHeap;
  std::vector<RememberedEntry> Remembered;

  /// Gray stack for promoted objects (they live outside to-space, so the
  /// Cheney scan pointer cannot reach them).
  std::vector<Object *> PromotedGray;

  LocalHeapStats Stats;
  PauseSink Sink = nullptr;
  void *SinkCtx = nullptr;
  bool Collecting = false;
};

} // namespace gc
} // namespace sting

#endif // STING_GC_LOCALHEAP_H
