//===- gc/HeapImage.h - Persistent heap images -------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent long-lived objects (paper sections 1 and 6: the system
/// "contains the necessary functionality to handle persistent long-lived
/// objects"; the abstract machine is "intended to support long-lived
/// applications, persistent objects, and multiple address spaces").
///
/// A heap image is the old-generation subgraph reachable from a root
/// vector, serialized to a file. Loading reconstructs the graph in another
/// (possibly fresh) old generation — symbols re-intern so identity-based
/// matching (e.g. tuple tags) survives the round trip.
///
/// Values that name live runtime state (foreign pointers) are not
/// persistable; save fails cleanly on them.
///
//===----------------------------------------------------------------------===//

#ifndef STING_GC_HEAPIMAGE_H
#define STING_GC_HEAPIMAGE_H

#include "gc/Value.h"

#include <optional>
#include <span>
#include <vector>

namespace sting {
namespace gc {

class GlobalHeap;

/// Serializes the subgraph reachable from \p Roots into \p Path. All
/// reachable heap values must live in the old generation (escape young
/// data first). \returns false on I/O failure or unpersistable values.
bool saveHeapImage(std::span<const Value> Roots, const char *Path);

/// Loads an image into \p Heap. \returns the relocated root vector, or
/// nullopt on failure (missing/corrupt file, version mismatch).
std::optional<std::vector<Value>> loadHeapImage(GlobalHeap &Heap,
                                                const char *Path);

} // namespace gc
} // namespace sting

#endif // STING_GC_HEAPIMAGE_H
