//===- gc/HeapImage.cpp - Persistent heap images -------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// Format (little-endian, 64-bit words unless noted):
//   magic "STNGIMG1" | root count | object count
//   per object: kind u8 | slot count u32 | byte length u64 |
//               payload (tagged words for traced kinds, raw bytes else)
//   root vector (tagged words)
//
// Tagged word encoding: fixnums and immediates keep their in-memory bits
// (low tag 000/010); heap references are encoded as (index << 3) | 0b001;
// foreign pointers are rejected at save time.
//
//===----------------------------------------------------------------------===//

#include "gc/HeapImage.h"

#include "gc/GlobalHeap.h"
#include "gc/Object.h"
#include "support/Debug.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace sting {
namespace gc {

namespace {

constexpr char Magic[8] = {'S', 'T', 'N', 'G', 'I', 'M', 'G', '1'};

struct FileCloser {
  void operator()(std::FILE *F) const {
    if (F)
      std::fclose(F);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool writeWord(std::FILE *F, std::uint64_t W) {
  return std::fwrite(&W, sizeof(W), 1, F) == 1;
}

bool readWord(std::FILE *F, std::uint64_t &W) {
  return std::fread(&W, sizeof(W), 1, F) == 1;
}

/// Assigns BFS indices to every reachable heap object.
bool enumerate(std::span<const Value> Roots,
               std::unordered_map<Object *, std::uint64_t> &Index,
               std::vector<Object *> &Order) {
  std::vector<Object *> Work;
  auto Visit = [&](Value V) {
    if (V.isForeign())
      return false; // not persistable
    if (!V.isObject())
      return true;
    Object *O = V.asObject();
    if (Index.count(O))
      return true;
    Index.emplace(O, Order.size());
    Order.push_back(O);
    Work.push_back(O);
    return true;
  };

  for (Value R : Roots)
    if (!Visit(R))
      return false;
  while (!Work.empty()) {
    Object *O = Work.back();
    Work.pop_back();
    if (!O->hasTracedSlots())
      continue;
    for (std::uint32_t I = 0, E = O->slotCount(); I != E; ++I)
      if (!Visit(O->slot(I)))
        return false;
  }
  return true;
}

std::uint64_t encodeValue(
    Value V, const std::unordered_map<Object *, std::uint64_t> &Index) {
  if (!V.isObject())
    return V.raw();
  auto It = Index.find(V.asObject());
  STING_CHECK(It != Index.end(), "encoding unenumerated object");
  return (It->second << 3) | 1;
}

} // namespace

bool saveHeapImage(std::span<const Value> Roots, const char *Path) {
  std::unordered_map<Object *, std::uint64_t> Index;
  std::vector<Object *> Order;
  if (!enumerate(Roots, Index, Order))
    return false;

  FilePtr F(std::fopen(Path, "wb"));
  if (!F)
    return false;

  if (std::fwrite(Magic, sizeof(Magic), 1, F.get()) != 1)
    return false;
  if (!writeWord(F.get(), Roots.size()) ||
      !writeWord(F.get(), Order.size()))
    return false;

  for (Object *O : Order) {
    std::uint8_t Kind = static_cast<std::uint8_t>(O->kind());
    if (std::fwrite(&Kind, 1, 1, F.get()) != 1)
      return false;
    std::uint32_t Slots = O->slotCount();
    if (std::fwrite(&Slots, sizeof(Slots), 1, F.get()) != 1)
      return false;
    if (!writeWord(F.get(), O->byteLength()))
      return false;

    if (O->hasTracedSlots()) {
      for (std::uint32_t I = 0; I != Slots; ++I)
        if (!writeWord(F.get(), encodeValue(O->slot(I), Index)))
          return false;
    } else if (Slots != 0) {
      if (std::fwrite(O->bytes(), std::size_t(Slots) * 8, 1, F.get()) != 1)
        return false;
    }
  }

  for (Value R : Roots)
    if (!writeWord(F.get(), encodeValue(R, Index)))
      return false;
  return std::fflush(F.get()) == 0;
}

std::optional<std::vector<Value>> loadHeapImage(GlobalHeap &Heap,
                                                const char *Path) {
  FilePtr F(std::fopen(Path, "rb"));
  if (!F)
    return std::nullopt;

  char Header[8];
  if (std::fread(Header, sizeof(Header), 1, F.get()) != 1 ||
      std::memcmp(Header, Magic, sizeof(Magic)) != 0)
    return std::nullopt;

  std::uint64_t RootCount = 0, ObjectCount = 0;
  if (!readWord(F.get(), RootCount) || !readWord(F.get(), ObjectCount))
    return std::nullopt;

  // Pass 1: allocate every object (so references can be patched by index)
  // and stash raw payloads. Symbols re-intern for identity.
  std::vector<Object *> Objects(ObjectCount, nullptr);
  struct PendingSlots {
    Object *O;
    std::vector<std::uint64_t> Encoded;
  };
  std::vector<PendingSlots> Patches;

  for (std::uint64_t I = 0; I != ObjectCount; ++I) {
    std::uint8_t KindByte = 0;
    std::uint32_t Slots = 0;
    std::uint64_t ByteLen = 0;
    if (std::fread(&KindByte, 1, 1, F.get()) != 1 ||
        std::fread(&Slots, sizeof(Slots), 1, F.get()) != 1 ||
        !readWord(F.get(), ByteLen))
      return std::nullopt;
    auto Kind = static_cast<ObjectKind>(KindByte);

    if (Kind == ObjectKind::Symbol) {
      std::string Name(ByteLen, '\0');
      std::vector<char> Buf(std::size_t(Slots) * 8);
      if (Slots != 0 &&
          std::fread(Buf.data(), Buf.size(), 1, F.get()) != 1)
        return std::nullopt;
      std::memcpy(Name.data(), Buf.data(), ByteLen);
      Objects[I] = Heap.intern(Name).asObject();
      continue;
    }

    Object *O = Heap.allocate(Kind, Slots);
    O->setByteLength(ByteLen);
    Objects[I] = O;

    if (O->hasTracedSlots()) {
      PendingSlots P;
      P.O = O;
      P.Encoded.resize(Slots);
      for (std::uint32_t J = 0; J != Slots; ++J)
        if (!readWord(F.get(), P.Encoded[J]))
          return std::nullopt;
      Patches.push_back(std::move(P));
    } else if (Slots != 0) {
      if (std::fread(O->bytes(), std::size_t(Slots) * 8, 1, F.get()) != 1)
        return std::nullopt;
    }
  }

  auto Decode = [&](std::uint64_t W) -> std::optional<Value> {
    if ((W & 7) == 1) {
      std::uint64_t Idx = W >> 3;
      if (Idx >= Objects.size())
        return std::nullopt;
      return Value::object(Objects[Idx]);
    }
    return Value::fromRaw(W);
  };

  // Pass 2: patch references.
  for (PendingSlots &P : Patches)
    for (std::uint32_t J = 0; J != P.Encoded.size(); ++J) {
      auto V = Decode(P.Encoded[J]);
      if (!V)
        return std::nullopt;
      P.O->setSlotRaw(J, *V);
    }

  std::vector<Value> Roots;
  Roots.reserve(RootCount);
  for (std::uint64_t I = 0; I != RootCount; ++I) {
    std::uint64_t W = 0;
    if (!readWord(F.get(), W))
      return std::nullopt;
    auto V = Decode(W);
    if (!V)
      return std::nullopt;
    Roots.push_back(*V);
  }
  return Roots;
}

} // namespace gc
} // namespace sting
