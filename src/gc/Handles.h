//===- gc/Handles.h - Precise GC roots ---------------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Precise roots for the per-thread scavenger. Orbit compiled Scheme with
/// precise stack maps; a C++ host cannot scan its native stacks precisely,
/// so mutators pin live values in HandleScopes (see the substitution table
/// in DESIGN.md). A scope is a fixed-size frame of root slots chained from
/// its LocalHeap; Handle<> wraps one slot.
///
//===----------------------------------------------------------------------===//

#ifndef STING_GC_HANDLES_H
#define STING_GC_HANDLES_H

#include "gc/Value.h"

#include <cstddef>

namespace sting {
namespace gc {

class LocalHeap;

/// A stack-allocated frame of GC root slots.
class HandleScope {
public:
  static constexpr std::size_t Capacity = 64;

  explicit HandleScope(LocalHeap &Heap);
  ~HandleScope();

  HandleScope(const HandleScope &) = delete;
  HandleScope &operator=(const HandleScope &) = delete;

  /// Registers \p V as a root; \returns the slot address (stable for the
  /// scope's lifetime, updated in place by scavenges).
  Value *pin(Value V) {
    STING_CHECK(Used < Capacity, "HandleScope overflow");
    Slots[Used] = V;
    return &Slots[Used++];
  }

  LocalHeap &heap() const { return Heap; }

  /// Root iteration for the scavenger.
  Value *begin() { return Slots; }
  Value *end() { return Slots + Used; }
  HandleScope *previous() const { return Prev; }

private:
  LocalHeap &Heap;
  HandleScope *Prev;
  std::size_t Used = 0;
  Value Slots[Capacity];
};

/// A rooted value living in the innermost HandleScope.
class Handle {
public:
  Handle() = default;
  Handle(HandleScope &Scope, Value V) : Slot(Scope.pin(V)) {}

  Value get() const {
    STING_DCHECK(Slot, "empty handle");
    return *Slot;
  }
  void set(Value V) {
    STING_DCHECK(Slot, "empty handle");
    *Slot = V;
  }

  Object *object() const { return get().asObject(); }
  bool empty() const { return Slot == nullptr; }

  /// Address of the root slot (for APIs that update roots in place).
  Value *slot() const { return Slot; }

private:
  Value *Slot = nullptr;
};

} // namespace gc
} // namespace sting

#endif // STING_GC_HANDLES_H
