//===- gc/Area.cpp - Allocation areas --------------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "gc/Area.h"

#include "support/Debug.h"

#include <cstdlib>

namespace sting {
namespace gc {

Area::Area(std::size_t Bytes) {
  std::size_t Aligned = (Bytes + 15) & ~std::size_t(15);
  Base = static_cast<char *>(std::aligned_alloc(16, Aligned));
  STING_CHECK(Base, "area allocation failed");
  Top = Base;
  End = Base + Aligned;
}

Area::~Area() { std::free(Base); }

} // namespace gc
} // namespace sting
