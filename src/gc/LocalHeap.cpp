//===- gc/LocalHeap.cpp - Per-thread young generation ----------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// Cheney scavenger with age-based promotion into the shared old generation.
// Two gray sets: the classic to-space scan pointer for copied-young
// survivors, and an explicit stack for objects promoted out of the young
// area (the scan pointer cannot reach those).
//
//===----------------------------------------------------------------------===//

#include "gc/LocalHeap.h"

#include "gc/GlobalHeap.h"
#include "support/Clock.h"

#include <cstring>

namespace sting {
namespace gc {

LocalHeap::LocalHeap(GlobalHeap &Global, std::size_t YoungBytes)
    : Global(Global), From(std::make_unique<Area>(YoungBytes)),
      To(std::make_unique<Area>(YoungBytes)) {}

LocalHeap::~LocalHeap() {
  STING_DCHECK(!Scopes, "LocalHeap destroyed with live handle scopes");
}

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

Object *LocalHeap::allocate(ObjectKind Kind, std::uint32_t SlotCount) {
  const std::size_t Bytes = sizeof(Object) + std::size_t(SlotCount) * 8;

  // Objects too large to scavenge profitably go straight to the old
  // generation (they would otherwise be copied on every collection).
  if (Bytes > From->capacity() / 4)
    return Global.allocate(Kind, SlotCount);

  void *P = From->allocate(Bytes);
  if (!P) {
    scavenge();
    P = From->allocate(Bytes);
    if (!P)
      return Global.allocate(Kind, SlotCount); // young area truly full
  }

  auto *O = static_cast<Object *>(P);
  O->initHeader(Kind, SlotCount);
  if (O->hasTracedSlots()) {
    for (std::uint32_t I = 0; I != SlotCount; ++I)
      O->slots()[I] = Value::nil();
  } else {
    std::memset(static_cast<void *>(O->slots()), 0,
                std::size_t(SlotCount) * 8);
  }
  ++Stats.ObjectsAllocated;
  Stats.BytesAllocated += Bytes;
  return O;
}

namespace {
/// Pins constructor arguments for the duration of an allocation, which may
/// scavenge and move whatever they point at.
class AllocPin {
public:
  AllocPin(LocalHeap &Heap, Value &A) : Heap(Heap), A(&A) {
    Heap.addRoot(&A);
  }
  AllocPin(LocalHeap &Heap, Value &A, Value &B) : Heap(Heap), A(&A), B(&B) {
    Heap.addRoot(&A);
    Heap.addRoot(&B);
  }
  ~AllocPin() {
    if (B)
      Heap.removeRoot(B);
    Heap.removeRoot(A);
  }

private:
  LocalHeap &Heap;
  Value *A;
  Value *B = nullptr;
};
} // namespace

Value LocalHeap::cons(Value Car, Value Cdr) {
  AllocPin Pin(*this, Car, Cdr);
  Object *O = allocate(ObjectKind::Pair, 2);
  O->setSlotRaw(0, Car);
  O->setSlotRaw(1, Cdr);
  // The heap that allocated O may be the *global* heap (large-object path);
  // then young operands form old-to-young edges.
  if (O->isInOld()) {
    write(O, 0, Car);
    write(O, 1, Cdr);
  }
  return Value::object(O);
}

Value LocalHeap::makeVector(std::uint32_t Length, Value Fill) {
  AllocPin Pin(*this, Fill);
  Object *O = allocate(ObjectKind::Vector, Length);
  for (std::uint32_t I = 0; I != Length; ++I)
    O->setSlotRaw(I, Fill);
  if (O->isInOld() && Length != 0)
    write(O, 0, Fill); // one remembered entry covers the uniform fill
  return Value::object(O);
}

Value LocalHeap::makeString(std::string_view Text) {
  const auto Words = static_cast<std::uint32_t>((Text.size() + 7) / 8);
  Object *O = allocate(ObjectKind::String, Words);
  O->setByteLength(Text.size());
  std::memcpy(O->bytes(), Text.data(), Text.size());
  return Value::object(O);
}

Value LocalHeap::makeBox(Value V) {
  AllocPin Pin(*this, V);
  Object *O = allocate(ObjectKind::Box, 1);
  O->setSlotRaw(0, V);
  if (O->isInOld())
    write(O, 0, V);
  return Value::object(O);
}

Value LocalHeap::makeRecord(Value Tag, std::uint32_t FieldCount, Value Fill) {
  AllocPin Pin(*this, Tag, Fill);
  Object *O = allocate(ObjectKind::Record, FieldCount + 1);
  O->setSlotRaw(0, Tag);
  for (std::uint32_t I = 0; I != FieldCount; ++I)
    O->setSlotRaw(I + 1, Fill);
  if (O->isInOld()) {
    write(O, 0, Tag);
    if (FieldCount != 0)
      write(O, 1, Fill);
  }
  return Value::object(O);
}

//===----------------------------------------------------------------------===//
// Write barrier
//===----------------------------------------------------------------------===//

void LocalHeap::write(Object *Container, std::uint32_t Index, Value V) {
  Container->setSlotRaw(Index, V);
  if (!Container->isInOld() || !V.isObject() || V.asObject()->isInOld())
    return;
  STING_DCHECK(contains(V.asObject()),
               "old-to-young store targets another thread's young area; "
               "cross-thread values must go through escape()");
  Remembered.push_back(RememberedEntry{Container, Index});
}

//===----------------------------------------------------------------------===//
// Roots
//===----------------------------------------------------------------------===//

void LocalHeap::addRoot(Value *Slot) { ExternalRoots.push_back(Slot); }

void LocalHeap::removeRoot(Value *Slot) {
  for (auto It = ExternalRoots.begin(); It != ExternalRoots.end(); ++It) {
    if (*It != Slot)
      continue;
    ExternalRoots.erase(It);
    return;
  }
}

//===----------------------------------------------------------------------===//
// Scavenging
//===----------------------------------------------------------------------===//

Value LocalHeap::evacuate(Value V, bool ForcePromote) {
  if (!V.isObject())
    return V;
  Object *O = V.asObject();
  if (O->isInOld())
    return V;
  if (To->contains(O))
    return V; // already a to-space copy from this cycle
  STING_DCHECK(From->contains(O), "evacuating a foreign young object");
  if (O->isForwarded())
    return Value::object(O->forwardedTo());

  const std::size_t Bytes = O->sizeInBytes();
  const bool Promote =
      ForcePromote || std::uint8_t(O->age() + 1) >= PromoteAge;

  Object *Copy;
  if (Promote) {
    Copy = Global.allocate(O->kind(), O->slotCount());
    std::memcpy(Copy->slots(), O->slots(),
                std::size_t(O->slotCount()) * 8);
    // Carry the aux word (byte length of strings; O is not forwarded yet).
    Copy->setByteLength(O->byteLength());
    Stats.BytesPromoted += Bytes;
    PromotedGray.push_back(Copy);
  } else {
    void *P = To->allocate(Bytes);
    STING_CHECK(P, "to-space overflow (semispaces are equal-sized)");
    std::memcpy(P, O, Bytes);
    Copy = static_cast<Object *>(P);
    Copy->bumpAge();
    Stats.BytesCopied += Bytes;
  }
  O->setForwarded(Copy);
  return Value::object(Copy);
}

void LocalHeap::scanObject(Object &O, bool InOld, bool ForcePromote) {
  if (!O.hasTracedSlots())
    return;
  for (std::uint32_t I = 0, E = O.slotCount(); I != E; ++I) {
    Value V = O.slots()[I];
    if (!V.isObject() || V.asObject()->isInOld())
      continue;
    Value Moved = evacuate(V, ForcePromote);
    O.slots()[I] = Moved;
    if (InOld && Moved.isObject() && !Moved.asObject()->isInOld())
      Remembered.push_back(RememberedEntry{&O, I});
  }
}

void LocalHeap::scavenge() { scavengeWith(nullptr); }

Value LocalHeap::escape(Value V) {
  if (!V.isObject() || V.asObject()->isInOld())
    return V;
  ++Stats.Escapes;
  Value Root = V;
  scavengeWith(&Root);
  STING_DCHECK(!Root.isObject() || Root.asObject()->isInOld(),
               "escape left a young value");
  return Root;
}

void LocalHeap::scavengeWith(Value *EscapeRoot) {
  STING_CHECK(!Collecting, "recursive scavenge (allocation during GC?)");
  Collecting = true;
  ++Stats.Scavenges;
  std::uint64_t PauseStart = nowNanos();

  To->reset();
  char *Scan = To->base();

  auto DrainGray = [&](bool Force) {
    for (;;) {
      bool Progress = false;
      while (Scan < To->top()) {
        auto *O = reinterpret_cast<Object *>(Scan);
        Scan += O->sizeInBytes();
        scanObject(*O, /*InOld=*/false, Force);
        Progress = true;
      }
      while (!PromotedGray.empty()) {
        Object *O = PromotedGray.back();
        PromotedGray.pop_back();
        scanObject(*O, /*InOld=*/true, Force);
        Progress = true;
      }
      if (!Progress)
        return;
    }
  };

  // Phase 1: the escape root's subgraph is promoted wholesale, before any
  // other root can pin part of it in to-space.
  if (EscapeRoot) {
    *EscapeRoot = evacuate(*EscapeRoot, /*ForcePromote=*/true);
    DrainGray(/*Force=*/true);
  }

  // Phase 2: ordinary roots — handle scopes, registered slots, and the
  // remembered set of old-to-young references.
  for (HandleScope *Scope = Scopes; Scope; Scope = Scope->previous())
    for (Value *Slot = Scope->begin(); Slot != Scope->end(); ++Slot)
      *Slot = evacuate(*Slot, /*ForcePromote=*/false);
  for (Value *Slot : ExternalRoots)
    *Slot = evacuate(*Slot, /*ForcePromote=*/false);

  std::vector<RememberedEntry> OldEntries;
  OldEntries.swap(Remembered);
  for (const RememberedEntry &E : OldEntries) {
    Value V = E.Container->slots()[E.Index];
    if (!V.isObject() || V.asObject()->isInOld())
      continue; // overwritten since recorded
    Value Moved = evacuate(V, /*ForcePromote=*/false);
    E.Container->slots()[E.Index] = Moved;
    if (Moved.isObject() && !Moved.asObject()->isInOld())
      Remembered.push_back(E); // still young: keep tracking
  }

  DrainGray(/*Force=*/false);

  std::swap(From, To);
  Collecting = false;

  std::uint64_t Pause = nowNanos() - PauseStart;
  Stats.PauseNanos.record(Pause);
  if (Sink)
    Sink(SinkCtx, Pause);
}

} // namespace gc
} // namespace sting
