//===- core/VirtualMachine.cpp - Virtual machines ---------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/VirtualMachine.h"

#include "core/Current.h"
#include "core/PhysicalProcessor.h"
#include "core/ThreadController.h"
#include "core/VirtualProcessor.h"
#include "core/Watchdog.h"
#include "gc/GlobalHeap.h"
#include "obs/Exposition.h"
#include "obs/TraceExporter.h"
#include "support/Chaos.h"

namespace sting {

static VmConfig sanitize(VmConfig Config) {
  if (Config.NumVps == 0)
    Config.NumVps = 1;
  if (Config.NumPps == 0)
    Config.NumPps = 1;
  if (Config.NumPps > Config.NumVps)
    Config.NumPps = Config.NumVps;
  if (Config.StackSize < 16 * 1024)
    Config.StackSize = 16 * 1024;
  if (!Config.Policy)
    Config.Policy = makeLocalFifoPolicy();
  if (!Config.PpPolicy)
    Config.PpPolicy = makeRoundRobinPhysicalPolicy();
  if (Config.DefaultQuantumNanos == 0)
    Config.DefaultQuantumNanos = 2'000'000;
  return Config;
}

VirtualMachine::VirtualMachine(VmConfig InConfig)
    : Config(sanitize(std::move(InConfig))),
      Topo(Config.Topology, Config.NumVps), RootGroup(ThreadGroup::create()) {
  chaos::initFromEnvOnce();
  for (unsigned I = 0; I != Config.NumVps; ++I)
    Vps.push_back(
        std::make_unique<VirtualProcessor>(*this, I, Config.Policy(*this, I)));

  for (unsigned I = 0; I != Config.NumPps; ++I)
    Pps.push_back(std::make_unique<PhysicalProcessor>(
        *this, I, Config.PpPolicy(*this, I)));

  // Assign VPs to physical processors round-robin.
  for (unsigned I = 0; I != Config.NumVps; ++I)
    Pps[I % Config.NumPps]->assignVp(*Vps[I]);

  Clock = std::make_unique<PreemptionClock>(*this, Config.PreemptTickNanos,
                                            Config.EnablePreemption);

  if (Config.StallBudgetNanos != 0)
    Dog = std::make_unique<Watchdog>(*this, Config.StallBudgetNanos,
                                     Config.StallPollNanos);

  if (Config.SamplerPeriodNanos != 0) {
    LoadSampler = std::make_unique<obs::Sampler>(
        Config.SamplerPeriodNanos, Config.SamplerCapacity, [this] {
          obs::LoadSample S;
          for (const auto &Vp : Vps) {
            std::uint64_t Ready = 0, Mailbox = 0;
            Vp->loadDepths(Ready, Mailbox);
            S.ReadyDepth += Ready;
            S.MailboxDepth += Mailbox;
            if (!Vp->isRunningThread() && Ready + Mailbox == 0)
              ++S.ParkedVps;
          }
          return S;
        });
    LoadSampler->start();
  }

  for (auto &Pp : Pps)
    Pp->start();
}

VirtualMachine::~VirtualMachine() {
  ShuttingDown.store(true, std::memory_order_release);
  if (LoadSampler)
    LoadSampler->stop(); // its probe walks Vps; stop before they go away
  if (Dog)
    Dog->stop(); // before VPs/PPs go away underneath its sampler
  IdleEc.notifyAll();
  Clock->stop();
  for (auto &Pp : Pps)
    Pp->stop();
  Pps.clear();
  Vps.clear(); // drains ready queues
  delete Heap.load(std::memory_order_relaxed);
}

VirtualProcessor &VirtualMachine::vp(unsigned Index) const {
  STING_CHECK(Index < Vps.size(), "VP index out of range");
  return *Vps[Index];
}

ThreadRef VirtualMachine::fork(Thread::Thunk Code, const SpawnOptions &Opts) {
  ThreadRef T = createThread(std::move(Code), Opts);
  ThreadController::threadRun(*T, Opts.Vp);
  return T;
}

ThreadRef VirtualMachine::createThread(Thread::Thunk Code,
                                       const SpawnOptions &Opts) {
  STING_CHECK(!Opts.Vp || &Opts.Vp->vm() == this,
              "SpawnOptions::Vp belongs to another machine");
  return Thread::create(*this, std::move(Code), Opts);
}

AnyValue VirtualMachine::run(Thread::Thunk Code, const SpawnOptions &Opts) {
  ThreadRef T = fork(std::move(Code), Opts);
  T->join();
  T->rethrowIfFailed();
  return T->takeResult();
}

obs::SchedStatsSnapshot VirtualMachine::aggregateStats() const {
  obs::SchedStatsSnapshot Total;
  for (const obs::SchedStatsSnapshot &S : perVpStats())
    Total += S;
  return Total;
}

std::vector<obs::SchedStatsSnapshot> VirtualMachine::perVpStats() const {
  std::vector<obs::SchedStatsSnapshot> Out;
  Out.reserve(Vps.size());
  for (const auto &Vp : Vps) {
    obs::SchedStatsSnapshot S = Vp->stats().snapshot();
    // The trace totals live in the ring, not the counter block; fold them
    // in here so truncated traces show up in every report and scrape.
    if (const obs::TraceBuffer *B = Vp->traceBuffer()) {
      S.TraceEvents = B->written();
      S.TraceDrops = B->dropped();
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

std::string VirtualMachine::statsReport() const {
  return obs::formatStatsReport(aggregateStats(), perVpStats());
}

std::string VirtualMachine::metricsText() const {
  return obs::formatPrometheus(aggregateStats(), perVpStats());
}

void VirtualMachine::setTracingEnabled(bool On) {
  for (const auto &Vp : Vps)
    if (obs::TraceBuffer *B = Vp->traceBuffer())
      B->setEnabled(On);
}

std::vector<obs::VpTraceSnapshot> VirtualMachine::snapshotTrace() const {
  std::vector<obs::VpTraceSnapshot> Out;
  for (const auto &Vp : Vps) {
    obs::TraceBuffer *B = Vp->traceBuffer();
    if (!B)
      continue;
    Out.push_back({B->vpId(), B->dropped(), B->snapshot()});
  }
  // The watchdog's pseudo-VP ring rides along so WatchdogReport events
  // show up in exports.
  if (Dog)
    if (obs::TraceBuffer *B = Dog->traceBuffer())
      Out.push_back({B->vpId(), B->dropped(), B->snapshot()});
  return Out;
}

bool VirtualMachine::writeChromeTrace(const std::string &Path,
                                      const std::string &ProcessName) const {
  std::vector<obs::VpTraceSnapshot> Snaps = snapshotTrace();
  if (Snaps.empty())
    return false;
  obs::TraceExporter Exporter;
  Exporter.addProcess(ProcessName, std::move(Snaps));
  if (LoadSampler)
    Exporter.addLoadSamples(LoadSampler->snapshot());
  return Exporter.writeFile(Path);
}

gc::GlobalHeap &VirtualMachine::globalHeap() {
  gc::GlobalHeap *H = Heap.load(std::memory_order_acquire);
  if (H)
    return *H;
  std::lock_guard<SpinLock> Guard(GlobalHeapLock);
  H = Heap.load(std::memory_order_relaxed);
  if (!H) {
    H = new gc::GlobalHeap();
    Heap.store(H, std::memory_order_release);
  }
  return *H;
}

} // namespace sting
