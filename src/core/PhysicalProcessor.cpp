//===- core/PhysicalProcessor.cpp - Physical processors --------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/PhysicalProcessor.h"

#include "core/Current.h"
#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"

namespace sting {

namespace {
/// How long an idle PP naps before re-polling (it is also woken eagerly by
/// notifyWork on any enqueue).
constexpr std::uint64_t IdleNapNanos = 1'000'000; // 1 ms
} // namespace

PhysicalProcessor::PhysicalProcessor(VirtualMachine &Vm, unsigned Index,
                                     std::unique_ptr<PhysicalPolicy> Policy)
    : Vm(&Vm), Index(Index), Policy(std::move(Policy)) {
  STING_CHECK(this->Policy, "physical processor needs a policy");
}

PhysicalProcessor::~PhysicalProcessor() {
  STING_DCHECK(!Os.joinable(), "physical processor destroyed while running");
}

void PhysicalProcessor::assignVp(VirtualProcessor &Vp) {
  Vps.push_back(&Vp);
}

void PhysicalProcessor::start() {
  Os = std::thread([this] { run(); });
}

void PhysicalProcessor::stop() {
  if (Os.joinable())
    Os.join();
}

void PhysicalProcessor::run() {
  currentCursor().Pp = this;

  EventCount &Idle = Vm->idleEventCount();
  while (!Vm->isShuttingDown()) {
    VirtualProcessor *Vp = Policy->nextVp(*this);
    if (!Vp) {
      // Sleep until an enqueue notifies, with a nap cap as a safety net.
      // The eventcount handshake: register as a waiter, re-check every
      // VP's queues, and only then sleep — an enqueue that lands between
      // the re-check and the sleep sees the waiter registration and bumps
      // the epoch, so the commit returns immediately (no lost wakeups).
      EventCount::Key K = Idle.prepareWait();
      bool Work = false;
      for (VirtualProcessor *Candidate : Vps)
        Work |= Candidate->hasReadyWork();
      if (Work || Vm->isShuttingDown())
        Idle.cancelWait();
      else
        Idle.commitWait(K, IdleNapNanos);
      Policy->workPublished(*this);
      continue;
    }

    ++Switches;
    Vp->Pp = this;
    currentCursor().Vp = Vp;
#ifdef STING_TRACE
    // Point this OS thread's event sink at the VP it is about to run: a VP
    // is pinned to one PP for life, so its ring has exactly one writer.
    obs::setThreadTraceBuffer(Vp->traceBuffer());
#endif
    switchContext(PpCtx, Vp->SchedCtx);
#ifdef STING_TRACE
    obs::setThreadTraceBuffer(nullptr);
#endif
    currentCursor().Vp = nullptr;
  }

  currentCursor() = ExecutionCursor();
}

} // namespace sting
