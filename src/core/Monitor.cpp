//===- core/Monitor.cpp - Machine introspection --------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Monitor.h"

#include "core/ThreadGroup.h"
#include "core/VirtualMachine.h"

#include <cstdio>

namespace sting {

std::size_t MachineSnapshot::liveThreads() const {
  std::size_t N = 0;
  for (const GroupInfo &G : Groups)
    N += G.Threads.size();
  return N;
}

static ThreadInfo describeThread(Thread &T) {
  ThreadInfo Info;
  Info.Id = T.id();
  Info.State = T.state();
  Info.UserBlocked = T.isUserBlocked();
  Info.Priority = T.priority();
  Info.ParentId = T.parent() ? T.parent()->id() : 0;
  Info.GroupId = T.group() ? T.group()->id() : 0;
  return Info;
}

GroupInfo snapshotGroup(ThreadGroup &Group) {
  GroupInfo Info;
  Info.Id = Group.id();
  Info.ParentId = Group.parent() ? Group.parent()->id() : 0;
  Info.TotalCreated = Group.totalCreated();
  for (const ThreadRef &T : Group.threads())
    Info.Threads.push_back(describeThread(*T));
  Info.Live = Info.Threads.size();
  return Info;
}

MachineSnapshot
snapshotMachine(VirtualMachine &Vm,
                const std::vector<ThreadGroup *> &ExtraGroups) {
  MachineSnapshot Snap;
  Snap.ThreadsCreated = Vm.stats().ThreadsCreated.load();
  Snap.ThreadsDetermined = Vm.stats().ThreadsDetermined.load();
  Snap.Steals = Vm.stats().Steals.load();
  for (const auto &Vp : Vm.vps())
    Snap.Vps.push_back(Vp->stats().snapshot());

  // The machine's root group, any group whose ancestry reaches it, and
  // caller-supplied extras.
  ThreadGroup *Root = &Vm.rootGroup();
  Snap.Groups.push_back(snapshotGroup(*Root));
  for (const ThreadGroupRef &G : ThreadGroup::allGroups()) {
    if (G.get() == Root)
      continue;
    for (ThreadGroup *A = G->parent(); A; A = A->parent()) {
      if (A == Root) {
        Snap.Groups.push_back(snapshotGroup(*G));
        break;
      }
    }
  }
  for (ThreadGroup *G : ExtraGroups)
    if (G && G != Root)
      Snap.Groups.push_back(snapshotGroup(*G));
  return Snap;
}

std::string renderSnapshot(const MachineSnapshot &Snap) {
  std::string Out;
  char Line[256];

  std::snprintf(Line, sizeof(Line),
                "machine: created=%llu determined=%llu steals=%llu "
                "live=%zu\n",
                (unsigned long long)Snap.ThreadsCreated,
                (unsigned long long)Snap.ThreadsDetermined,
                (unsigned long long)Snap.Steals, Snap.liveThreads());
  Out += Line;

  for (std::size_t I = 0; I != Snap.Vps.size(); ++I) {
    const obs::SchedStatsSnapshot &S = Snap.Vps[I];
    std::snprintf(Line, sizeof(Line),
                  "  vp%zu: dispatches=%llu yields=%llu parks=%llu "
                  "exits=%llu tcb-reuse=%llu/%llu\n",
                  I, (unsigned long long)S.Dispatches,
                  (unsigned long long)S.Yields,
                  (unsigned long long)S.Parks,
                  (unsigned long long)S.Exits,
                  (unsigned long long)S.TcbReuses,
                  (unsigned long long)(S.TcbReuses + S.TcbAllocs));
    Out += Line;
  }

  for (const GroupInfo &G : Snap.Groups) {
    std::snprintf(Line, sizeof(Line),
                  "  group %llu (parent %llu): live=%zu created=%llu\n",
                  (unsigned long long)G.Id, (unsigned long long)G.ParentId,
                  G.Live, (unsigned long long)G.TotalCreated);
    Out += Line;
    for (const ThreadInfo &T : G.Threads) {
      std::snprintf(Line, sizeof(Line),
                    "    thread %llu: %s%s prio=%d parent=%llu\n",
                    (unsigned long long)T.Id, threadStateName(T.State),
                    T.UserBlocked ? " (blocked)" : "", T.Priority,
                    (unsigned long long)T.ParentId);
      Out += Line;
    }
  }
  return Out;
}

} // namespace sting
