//===- core/Current.h - Per-OS-thread execution cursor ----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's VP keeps dedicated registers identifying the currently
/// executing thread, the VP itself, and its physical processor; the C++
/// equivalent is a thread-local cursor on each OS thread acting as a
/// physical processor. Code running outside any virtual machine sees null
/// entries.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_CURRENT_H
#define STING_CORE_CURRENT_H

namespace sting {

class PhysicalProcessor;
class Tcb;
class Thread;
class VirtualMachine;
class VirtualProcessor;

/// Where execution currently stands on this OS thread.
struct ExecutionCursor {
  PhysicalProcessor *Pp = nullptr;
  VirtualProcessor *Vp = nullptr;
  Tcb *CurTcb = nullptr;
};

/// \returns the mutable cursor for this OS thread.
ExecutionCursor &currentCursor();

/// \returns the current virtual processor, or null outside a VM
/// (the paper's current-vp).
VirtualProcessor *currentVp();

/// \returns the currently executing thread, or null outside a VM (the
/// paper's current-thread). During a steal this is the *stolen* thread,
/// which runs on the toucher's TCB.
Thread *currentThread();

/// \returns the current TCB, or null outside a VM.
Tcb *currentTcb();

/// \returns the current virtual machine, or null outside a VM.
VirtualMachine *currentVm();

/// True when called from inside a sting thread.
bool onStingThread();

} // namespace sting

#endif // STING_CORE_CURRENT_H
