//===- core/Fluid.h - Fluid (dynamic) bindings -------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluid bindings over the per-thread dynamic environment (paper section
/// 3.1: a thread holds "references to the thunk's dynamic and exception
/// environment", which are "used to implement fluid bindings and
/// inter-process exceptions").
///
/// A Fluid<T> is a dynamically scoped variable: Fluid<T>::Scope rebinds it
/// for the current thread's dynamic extent, and a thread created while a
/// binding is active *inherits* it (the environment is captured into the
/// child at fork). Lookups walk the immutable environment chain, so
/// inheritance is O(1) at fork and shares structure.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_FLUID_H
#define STING_CORE_FLUID_H

#include "core/Current.h"
#include "core/Thread.h"

#include <memory>

namespace sting {

namespace detail {

/// One binding frame in a dynamic environment chain.
struct FluidNode {
  std::shared_ptr<FluidNode> Next;
  const void *Key;
  std::shared_ptr<void> Value;
};

/// The current thread's dynamic-environment head (a per-OS-thread slot
/// outside any machine).
std::shared_ptr<FluidNode> &currentFluidEnv();

} // namespace detail

/// A dynamically scoped variable of type T.
template <typename T> class Fluid {
public:
  explicit Fluid(T Default) : Default(std::move(Default)) {}

  Fluid(const Fluid &) = delete;
  Fluid &operator=(const Fluid &) = delete;

  /// \returns the innermost binding in the current dynamic environment,
  /// or the default when unbound.
  const T &get() const {
    for (const detail::FluidNode *N = detail::currentFluidEnv().get(); N;
         N = N->Next.get())
      if (N->Key == this)
        return *static_cast<const T *>(N->Value.get());
    return Default;
  }

  /// RAII rebinding for the current dynamic extent (the paper's
  /// fluid-let). Threads forked inside the scope inherit the binding.
  class Scope {
  public:
    Scope(const Fluid &F, T Value) {
      auto &Env = detail::currentFluidEnv();
      Saved = Env;
      auto Node = std::make_shared<detail::FluidNode>();
      Node->Next = Env;
      Node->Key = &F;
      Node->Value = std::make_shared<T>(std::move(Value));
      Env = std::move(Node);
    }

    ~Scope() { detail::currentFluidEnv() = std::move(Saved); }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    std::shared_ptr<detail::FluidNode> Saved;
  };

private:
  T Default;
};

} // namespace sting

#endif // STING_CORE_FLUID_H
