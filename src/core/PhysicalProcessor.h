//===- core/PhysicalProcessor.h - Physical processors -----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A physical processor: one OS thread multiplexing virtual processors "in
/// the same way that threads are multiplexed on virtual processors"
/// (paper section 2). The paper maps each node of its 8-processor SGI to a
/// lightweight Unix thread; we map each PP to a POSIX thread (see the
/// substitution table in DESIGN.md).
///
/// Each PP owns a VP-level scheduling policy (round-robin over its assigned
/// VPs, skipping VPs with no ready work) and parks on the machine's idle
/// event count when no VP anywhere has work.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_PHYSICALPROCESSOR_H
#define STING_CORE_PHYSICALPROCESSOR_H

#include "arch/Context.h"
#include "core/PhysicalPolicy.h"

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace sting {

class VirtualMachine;
class VirtualProcessor;

/// One OS thread executing virtual processors.
class PhysicalProcessor {
public:
  PhysicalProcessor(VirtualMachine &Vm, unsigned Index,
                    std::unique_ptr<PhysicalPolicy> Policy);
  ~PhysicalProcessor();

  PhysicalProcessor(const PhysicalProcessor &) = delete;
  PhysicalProcessor &operator=(const PhysicalProcessor &) = delete;

  unsigned index() const { return Index; }
  VirtualMachine &vm() const { return *Vm; }

  /// VPs assigned to this processor.
  const std::vector<VirtualProcessor *> &assignedVps() const { return Vps; }

  /// Assigns \p Vp to this processor; called by the VM during construction
  /// (before start()).
  void assignVp(VirtualProcessor &Vp);

  /// Starts the underlying OS thread.
  void start();

  /// Joins the OS thread; the VM must already be shutting down.
  void stop();

  /// Number of VP switch-ins performed (for tests/benches).
  std::uint64_t vpSwitches() const { return Switches; }

  /// The VP-scheduling policy this processor is closed over.
  PhysicalPolicy &policy() { return *Policy; }

private:
  friend class VirtualProcessor;

  void run();

  VirtualMachine *Vm;
  unsigned Index;
  std::unique_ptr<PhysicalPolicy> Policy;
  std::vector<VirtualProcessor *> Vps;
  std::thread Os;
  Context PpCtx;
  std::uint64_t Switches = 0;
};

} // namespace sting

#endif // STING_CORE_PHYSICALPROCESSOR_H
