//===- core/Thread.h - First-class lightweight threads ----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central abstraction (section 3.1): a thread is a first-class
/// non-strict data structure encapsulating a thunk, state information,
/// genealogy and a chain of waiters. Threads may be passed around, stored
/// in data structures (including tuples), and outlive their creators.
///
/// The state machine is exactly the paper's:
///
///   Delayed ──(threadRun / steal)──► Scheduled ──► Evaluating ──► Determined
///      │                                 │
///      └───────────(steal)──────────► Stolen ───────────────────► Determined
///
/// Evaluating threads have a dynamic context (a Tcb) with sub-states
/// (running, blocked, suspended) managed by the thread controller. Only a
/// thread effects its own transitions out of Evaluating; other threads
/// merely *request* transitions, which are applied at the target's next
/// thread-controller call (paper section 3.1, final paragraph).
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_THREAD_H
#define STING_CORE_THREAD_H

#include "core/Schedulable.h"
#include "support/AnyValue.h"
#include "support/Deadline.h"
#include "support/IntrusivePtr.h"
#include "support/SpinLock.h"
#include "support/UniqueFunction.h"

#include <atomic>
#include <cstdint>
#include <memory>

namespace sting {

class Tcb;
class ThreadGroup;
class VirtualMachine;
class VirtualProcessor;

namespace detail {
struct FluidNode;
} // namespace detail

/// Hook tag for membership in a ThreadGroup's member list.
struct GroupMemberTag;

/// The paper's thread states (section 3.1).
enum class ThreadState : std::uint8_t {
  /// Created by createThread; will never run unless demanded or scheduled.
  Delayed,
  /// Known to a VP's policy manager; not yet running, has no TCB.
  Scheduled,
  /// Running (or blocked / suspended) with a TCB.
  Evaluating,
  /// Its thunk is being evaluated inline on another thread's TCB (4.1.1).
  Stolen,
  /// The thunk's value has been stored in the thread.
  Determined,
};

/// \returns a printable name for \p S.
const char *threadStateName(ThreadState S);

class Thread;
using ThreadRef = IntrusivePtr<Thread>;

/// A waiter record — the paper's *thread barrier* (TB, Fig. 5). Lives on
/// the waiting thread's stack (or in an external joiner's frame), chained
/// from the target thread's waiter list under the target's waiter lock.
struct ThreadBarrier {
  enum class WaiterKind : std::uint8_t {
    TcbWaiter,      ///< A sting thread parked in blockOnGroup.
    ExternalWaiter, ///< An OS thread in Thread::join (outside the VM).
  };

  ThreadBarrier *Next = nullptr;
  WaiterKind Kind = WaiterKind::TcbWaiter;
  Tcb *WaiterTcb = nullptr;       ///< valid for TcbWaiter
  void *ExternalSignal = nullptr; ///< valid for ExternalWaiter
  Thread *Target = nullptr;       ///< for debugging, as in the paper
};

/// Options supplied when creating a thread.
struct SpawnOptions {
  /// Explicit placement; null lets the creator's policy manager choose
  /// (the paper's first load-balancing decision point, section 3.3).
  VirtualProcessor *Vp = nullptr;
  /// Scheduling priority hint (pm-priority); larger is more urgent.
  int Priority = 0;
  /// Quantum hint in nanoseconds (pm-quantum); 0 means the VM default.
  std::uint64_t QuantumNanos = 0;
  /// May this thread's thunk be evaluated on a toucher's TCB? (4.1.1:
  /// "users can parametrize thread state to inform the TC if a thread can
  /// steal or not".)
  bool Stealable = true;
  /// Group to join; null inherits the creator's group.
  ThreadGroup *Group = nullptr;
  /// Skip genealogy bookkeeping (the paper's cheapest creation path, used
  /// for the Fig. 6 "Thread Creation" row).
  bool NoGenealogy = false;
};

/// A first-class lightweight thread of control.
class Thread final : public Schedulable, public RefCounted<Thread>,
                     public ListNode<GroupMemberTag> {
public:
  using Thunk = UniqueFunction<AnyValue()>;

  /// Creates a thread in the Delayed state. Does not schedule it. The
  /// normal entry points are VirtualMachine::fork / createThread and the
  /// sting:: free functions; this is the underlying factory.
  static ThreadRef create(VirtualMachine &Vm, Thunk Code,
                          const SpawnOptions &Opts = {});

  ThreadState state() const { return State.load(std::memory_order_acquire); }
  bool isDetermined() const { return state() == ThreadState::Determined; }

  /// \returns the determined value. Must only be called once the thread is
  /// determined (threadValue / wait handle the synchronization).
  const AnyValue &result() const;

  /// Blocks the *calling OS thread* until this thread is determined. For
  /// use from outside the virtual machine (e.g. main). Inside a sting
  /// thread, use sting::threadWait, which blocks via the thread controller.
  void join();

  /// Timed join. \returns true once determined, false if \p D expired
  /// first; a timed-out joiner retracts its waiter record before
  /// returning. Same calling rules as join().
  bool joinFor(Deadline D);

  /// True if the thread is evaluating and currently parked by
  /// thread-block / thread-suspend (i.e. resumable by threadRun). Racy by
  /// nature; intended for monitoring and tests.
  bool isUserBlocked() const;

  /// Typed convenience over result().
  template <typename T> const T &valueAs() const { return result().as<T>(); }

  /// Moves the determined value out of the thread (single consumer).
  AnyValue takeResult() {
    STING_CHECK(isDetermined(), "takeResult() on an undetermined thread");
    return std::move(Result);
  }

  // --- Attributes -------------------------------------------------------

  std::uint64_t id() const { return Id; }
  VirtualMachine &vm() const { return *Vm; }

  /// The causal flow this thread works on behalf of (obs/Flow.h).
  /// Inherited from the creator at fork; re-adopted from the waker on
  /// unpark edges and from tuple depositors on match, so one request keeps
  /// a single id across its whole cross-VP journey. Relaxed atomics: the
  /// id is telemetry, never a synchronization channel.
  std::uint64_t flowId() const {
    return Flow.load(std::memory_order_relaxed);
  }
  void setFlowId(std::uint64_t F) {
    Flow.store(F, std::memory_order_relaxed);
  }

  int priority() const { return Priority.load(std::memory_order_relaxed); }
  void setPriority(int P) { Priority.store(P, std::memory_order_relaxed); }

  std::uint64_t quantumNanos() const { return QuantumNanos; }
  void setQuantumNanos(std::uint64_t Q) { QuantumNanos = Q; }

  bool isStealable() const {
    return Stealable.load(std::memory_order_relaxed);
  }
  void setStealable(bool S) {
    Stealable.store(S, std::memory_order_relaxed);
  }

  /// True if the thread was determined by a terminate request rather than
  /// by its thunk returning.
  bool wasTerminated() const {
    return Terminated.load(std::memory_order_relaxed);
  }

  /// True if the thunk exited with an uncaught exception; the result then
  /// holds the std::exception_ptr (the paper's cross-thread exception
  /// propagation: exceptions surface to whoever demands the value).
  bool failed() const { return Failed.load(std::memory_order_relaxed); }

  /// Rethrows the captured exception if the thread failed; otherwise a
  /// no-op. Called by threadValue on behalf of consumers.
  void rethrowIfFailed() const;

  // --- Genealogy (section 3.1: parent/siblings/children for debugging and
  // profiling; children are enumerated through the thread's group). -------

  /// The creating thread, or null for roots / NoGenealogy threads.
  Thread *parent() const { return Parent.get(); }

  /// The thread's group (never null once created normally).
  ThreadGroup *group() const { return Group.get(); }

  /// The thread's dynamic environment (paper section 3.1: fluid bindings).
  /// Captured from the creator at fork; mutated only by the owning thread
  /// through Fluid<T>::Scope.
  std::shared_ptr<detail::FluidNode> FluidEnv;

private:
  friend class RefCounted<Thread>;
  friend class Schedulable;
  friend class Tcb;
  friend class ThreadController;
  friend class VirtualProcessor;
  friend class ThreadGroup;

  Thread(VirtualMachine &Vm, Thunk Code, const SpawnOptions &Opts);
  ~Thread();

  /// Attempts the CAS \p From -> \p To on the state word.
  bool tryTransition(ThreadState From, ThreadState To) {
    return State.compare_exchange_strong(From, To,
                                         std::memory_order_acq_rel);
  }

  /// Stores \p Value, marks the thread Determined, wakes all waiters and
  /// leaves the group. \p ViaTerminate distinguishes thread-terminate.
  /// Called exactly once, by the thread controller.
  void determine(AnyValue Value, bool ViaTerminate);

  /// Adds \p TB to the waiter chain unless already determined.
  /// \returns false if the thread was already determined (no registration).
  bool addWaiter(ThreadBarrier &TB);

  /// Removes \p TB from the waiter chain if still present. \returns true
  /// if it was found (i.e. the waiter still "owed" a wakeup).
  bool removeWaiter(ThreadBarrier &TB);

  std::atomic<ThreadState> State{ThreadState::Delayed};
  std::atomic<bool> Stealable{true};
  std::atomic<bool> Terminated{false};
  std::atomic<bool> Failed{false};
  /// thread-suspend arrived while the thread was still delayed/scheduled;
  /// honored immediately after the thread is bound to a TCB.
  std::atomic<bool> SuspendOnStart{false};
  std::uint64_t SuspendOnStartQuantum = 0;
  std::atomic<int> Priority{0};
  std::atomic<std::uint64_t> Flow{0};
  std::uint64_t QuantumNanos = 0;
  std::uint64_t Id;

  VirtualMachine *Vm;
  Thunk Code;
  AnyValue Result;

  /// Guards the waiter chain and the determined-vs-register race (the
  /// paper's per-thread mutex, Fig. 5).
  SpinLock WaiterLock;
  ThreadBarrier *Waiters = nullptr;

  /// The TCB currently evaluating this thread, published under WaiterLock
  /// so requesters (threadRun, threadTerminate, suspend timers) can reach
  /// the dynamic context race-free. Cleared by determine().
  Tcb *OwnedTcb = nullptr;

  IntrusivePtr<ThreadGroup> Group;
  ThreadRef Parent;
};

} // namespace sting

#endif // STING_CORE_THREAD_H
