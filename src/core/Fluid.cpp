//===- core/Fluid.cpp - Fluid (dynamic) bindings ------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Fluid.h"

namespace sting {
namespace detail {

std::shared_ptr<FluidNode> &currentFluidEnv() {
  if (Thread *T = currentThread())
    return T->FluidEnv;
  // Outside any machine: a per-OS-thread environment.
  static thread_local std::shared_ptr<FluidNode> External;
  return External;
}

} // namespace detail
} // namespace sting
