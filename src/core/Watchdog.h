//===- core/Watchdog.h - Stall watchdog over VP heartbeats -------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-priority monitor (one OS thread, asleep between polls) that
/// samples every VP's dispatch-progress counters, feeds them to the pure
/// obs::StallDetector, and emits a diagnostic report when the machine
/// stalls: per-VP heartbeats and waiter counters, live-thread and
/// pending-timer totals, any caller-registered diagnostics (waiter-queue
/// depths, mutex owners, ...), and the tail of each VP's trace ring.
///
/// Off by default: created only when VmConfig::StallBudgetNanos is
/// non-zero, so the default build pays nothing. Reports go to stderr, to
/// the path named by $STING_WATCHDOG_REPORT (if set), to the report hook
/// (if installed), and — since the watchdog thread owns a pseudo-VP trace
/// ring — as WatchdogReport trace events visible in Chrome exports.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_WATCHDOG_H
#define STING_CORE_WATCHDOG_H

#include "obs/StallDetector.h"
#include "obs/TraceBuffer.h"
#include "support/UniqueFunction.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace sting {

class VirtualMachine;

/// The stall watchdog. Lifetime is owned by the VirtualMachine; stop()
/// runs before VPs are torn down.
class Watchdog {
public:
  Watchdog(VirtualMachine &Vm, std::uint64_t BudgetNanos,
           std::uint64_t PollNanos);
  ~Watchdog();

  Watchdog(const Watchdog &) = delete;
  Watchdog &operator=(const Watchdog &) = delete;

  /// Stops the monitor thread (idempotent).
  void stop();

  /// Registers a named diagnostic rendered into every report (e.g. a
  /// test's mutex owners or a channel's waiter depth). Callbacks run on
  /// the watchdog thread and must not block on the machine.
  void addDiagnostic(std::string Name, std::function<std::string()> Fn);

  /// Number of stall reports emitted so far.
  std::uint64_t reportsEmitted() const {
    return Reports.load(std::memory_order_acquire);
  }

  /// The most recent report text ("" if none yet).
  std::string lastReport() const;

  /// Installs a callback invoked (on the watchdog thread) with each
  /// report.
  void setReportHook(std::function<void(const std::string &)> Hook);

  /// The watchdog's own trace ring (pseudo-VP), null when the machine is
  /// untraced.
  obs::TraceBuffer *traceBuffer() const { return Ring.get(); }

  std::uint64_t budgetNanos() const { return Detector.budgetNanos(); }

private:
  void loop();
  obs::MachineSample sample() const;
  std::string buildReport(obs::StallVerdict Verdict,
                          const obs::MachineSample &S) const;
  void emitReport(const std::string &Report);

  VirtualMachine &Vm;
  obs::StallDetector Detector;
  std::uint64_t PollNanos;

  std::unique_ptr<obs::TraceBuffer> Ring;

  mutable std::mutex Mu; ///< guards Diagnostics, Hook, Last, Cv
  std::condition_variable Cv;
  bool Stop = false;
  std::vector<std::pair<std::string, std::function<std::string()>>>
      Diagnostics;
  std::function<void(const std::string &)> Hook;
  std::string Last;
  std::atomic<std::uint64_t> Reports{0};

  std::thread Monitor;
};

} // namespace sting

#endif // STING_CORE_WATCHDOG_H
