//===- core/Current.cpp - Per-OS-thread execution cursor -------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Current.h"

#include "core/Tcb.h"
#include "core/VirtualProcessor.h"

namespace sting {

static thread_local ExecutionCursor Cursor;

ExecutionCursor &currentCursor() { return Cursor; }

VirtualProcessor *currentVp() { return Cursor.Vp; }

Tcb *currentTcb() { return Cursor.CurTcb; }

Thread *currentThread() {
  Tcb *C = Cursor.CurTcb;
  return C ? C->activeThread() : nullptr;
}

VirtualMachine *currentVm() {
  return Cursor.Vp ? &Cursor.Vp->vm() : nullptr;
}

bool onStingThread() { return Cursor.CurTcb != nullptr; }

} // namespace sting
