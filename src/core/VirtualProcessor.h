//===- core/VirtualProcessor.h - First-class virtual processors -*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A virtual processor (paper section 3.2): an abstraction of a physical
/// computing device, closed over (1) a thread controller implementing the
/// thread state-transition function and (2) a policy manager implementing
/// scheduling and migration. VPs are first-class: they can be enumerated
/// (vm.vps()), passed to fork for explicit placement, and addressed
/// relative to the current VP through the machine topology.
///
/// Each VP runs its scheduler loop on its own execution context, so VPs are
/// multiplexed on physical processors exactly the way threads are
/// multiplexed on VPs.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_VIRTUALPROCESSOR_H
#define STING_CORE_VIRTUALPROCESSOR_H

#include "arch/Context.h"
#include "arch/Stack.h"
#include "core/PolicyManager.h"
#include "core/Tcb.h"
#include "obs/SchedStats.h"
#include "obs/TraceBuffer.h"

#include <atomic>
#include <cstdint>
#include <memory>

namespace sting {

class PhysicalProcessor;
class VirtualMachine;

/// Why the scheduler context was re-entered from a thread; tells the
/// scheduler how to dispose of the TCB that just switched out.
enum class SchedAction : std::uint8_t {
  None,
  /// Re-enqueue the TCB (yield / preemption); operand: EnqueueReason.
  Yield,
  /// Complete the park protocol (block / suspend).
  Park,
  /// The thread determined; unbind and recycle the TCB.
  Exit,
};

/// Per-VP counters surfaced to tests, the monitor and the benchmark
/// harness. Now the obs-layer counter block; field names are unchanged so
/// existing `vp.stats().Yields`-style reads keep working (Counter converts
/// to uint64_t implicitly).
using VpStats = obs::SchedStats;

/// A first-class virtual processor.
class VirtualProcessor {
public:
  VirtualProcessor(VirtualMachine &Vm, unsigned Index,
                   std::unique_ptr<PolicyManager> Policy);
  ~VirtualProcessor();

  VirtualProcessor(const VirtualProcessor &) = delete;
  VirtualProcessor &operator=(const VirtualProcessor &) = delete;

  VirtualMachine &vm() const { return *Vm; }
  unsigned index() const { return Index; }

  /// The policy manager this VP is closed over.
  PolicyManager &policy() { return *Policy; }

  /// The physical processor currently executing this VP (null if none).
  PhysicalProcessor *physicalProcessor() const { return Pp; }

  const obs::SchedStats &stats() const { return Stats; }

  /// Mutable counter access for the substrate and custom policy managers
  /// (counters are monotonic telemetry; non-owner writers must use
  /// Counter::incShared, see obs/SchedStats.h).
  obs::SchedStats &stats() { return Stats; }

  /// This VP's event ring; null unless the machine was configured with
  /// tracing and the build has STING_TRACE.
  obs::TraceBuffer *traceBuffer() const { return Trace.get(); }

  /// Enqueues \p Item on this VP via its policy manager and wakes idle
  /// physical processors. Takes over the caller's Thread reference.
  void enqueue(Schedulable &Item, EnqueueReason Reason);

  /// True if this VP's policy reports ready work.
  bool hasReadyWork() const { return Policy->hasReadyWork(*this); }

  /// Occupancy probe for the load sampler; forwards to the policy.
  void loadDepths(std::uint64_t &ReadyDepth,
                  std::uint64_t &MailboxDepth) const {
    Policy->loadDepths(*this, ReadyDepth, MailboxDepth);
  }

  /// True while a thread is dispatched on this VP (readable from any
  /// thread; the watchdog's heartbeat sampler uses it).
  bool isRunningThread() const {
    return Running.load(std::memory_order_relaxed) != nullptr;
  }

  // --- Preemption interface used by the machine clock -------------------

  /// Absolute deadline (ns) of the running thread's slice; 0 while idle.
  std::atomic<std::uint64_t> SliceDeadline{0};
  /// Raised by the clock when the slice expires; consumed at checkpoints.
  std::atomic<bool> PreemptFlag{false};

  // --- Topology-relative addressing (paper section 3.2) -----------------

  VirtualProcessor &leftVp() const;
  VirtualProcessor &rightVp() const;
  VirtualProcessor &upVp() const;
  VirtualProcessor &downVp() const;

private:
  friend class PhysicalProcessor;
  friend class ThreadController;
  friend class VirtualMachine;

  /// Body of the scheduler loop; runs on SchedCtx.
  void schedulerLoop();
  static void schedulerEntry(void *Arg);

  /// Context entry for freshly bound TCBs.
  static void tcbEntry(void *Arg);

  /// Dispatches one ready item; \returns false if there was nothing to run
  /// (after consulting pm-vp-idle).
  bool dispatchOne();

  /// Binds \p T (already CAS'd to Evaluating) to a TCB and runs it.
  void runFresh(Thread &T);

  /// Resumes a parked/yielded TCB.
  void resume(Tcb &C);

  /// Switches from the scheduler context into \p C and, after control
  /// returns, performs the action the thread requested on its way out.
  void switchInto(Tcb &C);

  /// Allocates a TCB + stack from the caches (or fresh).
  Tcb &acquireTcb();

  /// Recycles \p C after its thread exited.
  void recycleTcb(Tcb &C);

  VirtualMachine *Vm;
  unsigned Index;
  std::unique_ptr<PolicyManager> Policy;
  PhysicalProcessor *Pp = nullptr;

  Context SchedCtx;
  Stack *SchedStack = nullptr;
  bool SchedStarted = false;

  /// The TCB currently running on this VP (null while in the scheduler).
  /// Atomic only so off-VP observers (the watchdog) read it untorn; the
  /// owning VP uses relaxed plain-store semantics.
  std::atomic<Tcb *> Running{nullptr};

  /// Action requested by the thread that last switched back to SchedCtx.
  SchedAction Action = SchedAction::None;
  EnqueueReason ActionReason = EnqueueReason::Yielded;
  Tcb *ActionTcb = nullptr;

  /// True between a fruitless dispatch (nothing runnable anywhere) and the
  /// next successful one; drives the VpParks/VpUnparks counters and the
  /// park/unpark trace events. VPs are born parked: a VP that has never
  /// dispatched is idle by definition, so startup emits no event (a trace
  /// gated off right after construction must stay empty). Owner-only, so
  /// a plain bool.
  bool IdleParked = true;

  /// Dispatches remaining before this VP yields to its physical processor
  /// so sibling VPs get processor time (backstop for the time slice).
  int DispatchBudget = 0;
  /// Absolute end of this VP's current slice on its physical processor.
  std::uint64_t PpSliceDeadline = 0;

  StackPool Stacks;
  IntrusiveList<Tcb, TcbCacheTag> TcbCache;
  std::size_t CachedTcbs = 0;

  obs::SchedStats Stats;
  std::unique_ptr<obs::TraceBuffer> Trace;
};

} // namespace sting

#endif // STING_CORE_VIRTUALPROCESSOR_H
