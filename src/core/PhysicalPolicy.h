//===- core/PhysicalPolicy.h - VP-on-PP scheduling policies ------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second level of the paper's two-level scheduling architecture:
/// "associated with each physical processor is a policy manager that
/// dictates the scheduling of the virtual processors which execute on it"
/// (section 2), and the program model "permits the scheduling of virtual
/// processors on physical processors to be customizable in the same way
/// that the scheduling of threads on a virtual processor is customizable"
/// (section 2 item 4).
///
/// A PhysicalPolicy picks which assigned VP a physical processor enters
/// next. Returning null sends the PP to sleep on the machine's idle event
/// count until new work is published.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_PHYSICALPOLICY_H
#define STING_CORE_PHYSICALPOLICY_H

#include <functional>
#include <memory>

namespace sting {

class PhysicalProcessor;
class VirtualMachine;
class VirtualProcessor;

/// Abstract VP-scheduling policy for one physical processor.
class PhysicalPolicy {
public:
  virtual ~PhysicalPolicy();

  /// Chooses the next VP for \p Pp to execute, or null to sleep. Called
  /// every time the PP regains control (a VP exhausted its slice or went
  /// idle). Implementations may probe workless VPs (their pm-vp-idle hook
  /// can migrate threads in), but must eventually return null when no VP
  /// anywhere has work, or the PP will spin.
  virtual VirtualProcessor *nextVp(PhysicalProcessor &Pp) = 0;

  /// Notification that new work was published somewhere in the machine
  /// (resets any "everything is idle" bookkeeping).
  virtual void workPublished(PhysicalProcessor &Pp);
};

/// Factory invoked once per physical processor at machine construction.
using PhysicalPolicyFactory = std::function<std::unique_ptr<PhysicalPolicy>(
    VirtualMachine &Vm, unsigned PpIndex)>;

/// The default: round-robin over the PP's assigned VPs, skipping VPs
/// without ready work but probing each workless VP once per idle episode
/// so its policy manager can migrate threads from loaded siblings.
PhysicalPolicyFactory makeRoundRobinPhysicalPolicy();

/// Dedicated-first: always runs the lowest-indexed assigned VP that has
/// work. Gives earlier VPs strict priority over later ones — the shape
/// used to keep a "foreground" VP responsive while background VPs soak up
/// leftover processor time.
PhysicalPolicyFactory makeDedicatedFirstPhysicalPolicy();

} // namespace sting

#endif // STING_CORE_PHYSICALPOLICY_H
