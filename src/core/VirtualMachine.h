//===- core/VirtualMachine.h - First-class virtual machines -----*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A virtual machine (paper section 2): a collection of virtual processors
/// closed over an address space. "There may be many more virtual
/// processors than the actual physical processors available. ... Multiple
/// virtual machines can execute on a single physical machine." A VM's
/// public state includes the vector of its virtual processors, which
/// programs may enumerate for explicit thread placement.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_VIRTUALMACHINE_H
#define STING_CORE_VIRTUALMACHINE_H

#include "core/PhysicalPolicy.h"
#include "core/PolicyManager.h"
#include "core/PreemptionClock.h"
#include "core/Thread.h"
#include "core/ThreadGroup.h"
#include "core/Topology.h"
#include "obs/SchedStats.h"
#include "obs/Sampler.h"
#include "obs/TraceBuffer.h"
#include "support/EventCount.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sting {

class PhysicalProcessor;
class VirtualProcessor;
class Watchdog;
namespace gc {
class GlobalHeap;
} // namespace gc

/// Construction-time configuration of a virtual machine.
struct VmConfig {
  /// Virtual processors in the machine.
  unsigned NumVps = 2;
  /// Physical processors (OS threads) multiplexing the VPs.
  unsigned NumPps = 1;
  /// Usable bytes per thread stack.
  std::size_t StackSize = 128 * 1024;
  /// Default thread quantum.
  std::uint64_t DefaultQuantumNanos = 2'000'000; // 2 ms
  /// Start with quantum preemption on? (Toggleable at runtime.)
  bool EnablePreemption = false;
  /// Preemption-clock tick.
  std::uint64_t PreemptTickNanos = 1'000'000; // 1 ms
  /// Time slice of a VP on its physical processor: a VP with a non-empty
  /// queue yields the PP to sibling VPs this often (VPs are multiplexed on
  /// PPs "in the same way that threads are multiplexed on VPs").
  std::uint64_t VpSliceNanos = 1'000'000; // 1 ms
  /// Maximum nesting of stolen thunks on one TCB; a touch that would
  /// exceed it blocks instead (steals consume the toucher's stack, so deep
  /// dependency chains can otherwise overflow it).
  int MaxStealDepth = 64;
  /// Per-VP scheduling policy factory; default is local FIFO.
  PolicyFactory Policy;
  /// Per-PP policy multiplexing VPs onto physical processors; default is
  /// round-robin with idle probing (the paper's two-level scheduling:
  /// VP-on-PP scheduling is customizable like thread-on-VP scheduling).
  PhysicalPolicyFactory PpPolicy;
  /// VP interconnection for self-relative addressing.
  TopologyKind Topology = TopologyKind::Ring;
  /// Allocate per-VP trace rings and start with event tracing on. Only
  /// effective in builds with STING_TRACE; otherwise rings are never
  /// allocated and emission sites compile to nothing. Counters
  /// (SchedStats) are unconditional either way.
  bool EnableTracing = true;
  /// Entries per VP trace ring (rounded up to a power of two). Overflow
  /// overwrites the oldest events; see obs/TraceBuffer.h.
  std::size_t TraceCapacity = 1 << 14;
  /// Stall budget for the watchdog: a machine with no dispatch progress
  /// for this long is reported (see core/Watchdog.h). 0 (the default)
  /// disables the watchdog entirely — no monitor thread is created.
  std::uint64_t StallBudgetNanos = 0;
  /// Watchdog sampling period. Only meaningful with a non-zero budget.
  std::uint64_t StallPollNanos = 10'000'000; // 10 ms
  /// Background load-sampler period (obs/Sampler.h): every period the
  /// sampler thread records ready-queue depth, mailbox occupancy and the
  /// parked-VP count into a ring exported as Chrome counter events. 0
  /// (the default) disables the sampler — no thread is created.
  std::uint64_t SamplerPeriodNanos = 0;
  /// Entries in the sampler ring (rounded up to a power of two).
  /// Overflow overwrites the oldest samples.
  std::size_t SamplerCapacity = 4096;
};

/// Machine-wide counters surfaced to tests and the benchmark harness.
struct VmStats {
  std::atomic<std::uint64_t> ThreadsCreated{0};
  std::atomic<std::uint64_t> ThreadsDetermined{0};
  std::atomic<std::uint64_t> Steals{0};
};

/// A first-class virtual machine.
class VirtualMachine {
public:
  explicit VirtualMachine(VmConfig Config = VmConfig());
  ~VirtualMachine();

  VirtualMachine(const VirtualMachine &) = delete;
  VirtualMachine &operator=(const VirtualMachine &) = delete;

  const VmConfig &config() const { return Config; }

  // --- Processors --------------------------------------------------------

  /// The machine's VP vector — the paper's `(vm.vp-vector ...)`.
  const std::vector<std::unique_ptr<VirtualProcessor>> &vps() const {
    return Vps;
  }
  VirtualProcessor &vp(unsigned Index) const;
  unsigned numVps() const { return static_cast<unsigned>(Vps.size()); }

  const Topology &topology() const { return Topo; }

  // --- Thread creation (the paper's fork-thread / create-thread) ---------

  /// Creates and schedules a thread; usable from inside or outside the VM.
  ThreadRef fork(Thread::Thunk Code, const SpawnOptions &Opts = {});

  /// Creates a delayed thread: "a delayed thread will never be run unless
  /// the value of the thread is explicitly demanded."
  ThreadRef createThread(Thread::Thunk Code, const SpawnOptions &Opts = {});

  /// Convenience: fork \p Code, join from this (external) OS thread, and
  /// return the result. The usual way for main() to enter the machine.
  AnyValue run(Thread::Thunk Code, const SpawnOptions &Opts = {});

  // --- Machine services ---------------------------------------------------

  ThreadGroup &rootGroup() const { return *RootGroup; }
  PreemptionClock &clock() const { return *Clock; }
  VmStats &stats() { return Stats; }

  /// The stall watchdog; null unless VmConfig::StallBudgetNanos was set.
  Watchdog *watchdog() const { return Dog.get(); }

  // --- Observability (see DESIGN.md "Observability") ----------------------

  /// Sums the per-VP SchedStats blocks. Counters are monotonic and read
  /// relaxed, so this is safe at any time; for exact balances (enqueues ==
  /// dequeues) call it after the machine quiesces.
  obs::SchedStatsSnapshot aggregateStats() const;

  /// One snapshot per VP, in VP-index order.
  std::vector<obs::SchedStatsSnapshot> perVpStats() const;

  /// Plain-text table of aggregate plus per-VP counters.
  std::string statsReport() const;

  /// Prometheus text exposition of the same counters (plus run-slice and
  /// GC-pause summaries); what the net-layer metrics service serves.
  std::string metricsText() const;

  /// The background load sampler; null unless VmConfig::SamplerPeriodNanos
  /// was set.
  obs::Sampler *sampler() const { return LoadSampler.get(); }

  /// Toggles event emission on every VP's ring at runtime. No-op when the
  /// machine has no rings (STING_TRACE off or EnableTracing false).
  void setTracingEnabled(bool On);

  /// Captures every VP's trace ring. Empty when the machine has no rings.
  std::vector<obs::VpTraceSnapshot> snapshotTrace() const;

  /// Exports this machine's trace as Chrome trace_event JSON (one process
  /// named \p ProcessName, one track per VP). \returns false when there is
  /// nothing to export or the file cannot be written.
  bool writeChromeTrace(const std::string &Path,
                        const std::string &ProcessName = "sting-vm") const;

  /// The machine's shared older generation (paper Fig. 1: "Shared older
  /// generation" in the VM address space). Created lazily.
  gc::GlobalHeap &globalHeap();

  /// Wakes idle physical processors; called after any enqueue. Cheap when
  /// nobody sleeps: the eventcount folds the waiter count into the epoch
  /// word, so this is one uncontended atomic load unless a PP is parked.
  void notifyWork() { IdleEc.notifyAll(); }

  bool isShuttingDown() const {
    return ShuttingDown.load(std::memory_order_acquire);
  }

  std::uint64_t nextThreadId() {
    return NextThreadId.fetch_add(1, std::memory_order_relaxed);
  }

  /// The idle-PP eventcount (DESIGN.md section 8): PPs with no runnable VP
  /// sleep here; notifyWork advances the epoch.
  EventCount &idleEventCount() { return IdleEc; }

private:
  friend class PhysicalProcessor;
  friend class VirtualProcessor;

  VmConfig Config;
  Topology Topo;
  std::vector<std::unique_ptr<VirtualProcessor>> Vps;
  std::vector<std::unique_ptr<PhysicalProcessor>> Pps;
  std::unique_ptr<PreemptionClock> Clock;
  std::unique_ptr<Watchdog> Dog;
  std::unique_ptr<obs::Sampler> LoadSampler;
  ThreadGroupRef RootGroup;

  SpinLock GlobalHeapLock;
  std::atomic<gc::GlobalHeap *> Heap{nullptr};

  EventCount IdleEc;
  std::atomic<bool> ShuttingDown{false};
  std::atomic<std::uint64_t> NextThreadId{1};
  VmStats Stats;
};

} // namespace sting

#endif // STING_CORE_VIRTUALMACHINE_H
