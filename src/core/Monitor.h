//===- core/Monitor.h - Machine introspection --------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Debugging and monitoring over the first-class runtime objects (paper
/// section 3.1: "genealogy information serves as a useful debugging and
/// profiling tool that allows applications to monitor the dynamic
/// unfolding of a process tree"; thread groups carry "operations for
/// debugging and monitoring (e.g., resetting, listing all threads in a
/// given group, listing all groups, profiling genealogy information)").
///
/// Snapshots are racy by nature (the machine keeps running); they are
/// consistent enough for profiling, dashboards and tests.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_MONITOR_H
#define STING_CORE_MONITOR_H

#include "core/Thread.h"
#include "core/VirtualProcessor.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sting {

class ThreadGroup;
class VirtualMachine;

/// One thread's snapshot row.
struct ThreadInfo {
  std::uint64_t Id = 0;
  ThreadState State = ThreadState::Delayed;
  bool UserBlocked = false;
  int Priority = 0;
  std::uint64_t ParentId = 0; ///< 0 for roots
  std::uint64_t GroupId = 0;  ///< 0 when ungrouped
};

/// One group's snapshot row.
struct GroupInfo {
  std::uint64_t Id = 0;
  std::uint64_t ParentId = 0;
  std::size_t Live = 0;
  std::uint64_t TotalCreated = 0;
  std::vector<ThreadInfo> Threads;
};

/// A whole-machine snapshot.
struct MachineSnapshot {
  std::uint64_t ThreadsCreated = 0;
  std::uint64_t ThreadsDetermined = 0;
  std::uint64_t Steals = 0;
  std::vector<obs::SchedStatsSnapshot> Vps;
  std::vector<GroupInfo> Groups; ///< the root group and its descendants

  /// Live threads across all captured groups.
  std::size_t liveThreads() const;
};

/// Captures the state of \p Vm: machine counters, per-VP statistics, and
/// the group tree reachable from the root group (plus \p ExtraGroups).
MachineSnapshot snapshotMachine(VirtualMachine &Vm,
                                const std::vector<ThreadGroup *> &ExtraGroups = {});

/// Captures one group (members and counters).
GroupInfo snapshotGroup(ThreadGroup &Group);

/// Renders a snapshot as a human-readable report, e.g. for the paper's
/// "profiling genealogy information" use case.
std::string renderSnapshot(const MachineSnapshot &Snapshot);

} // namespace sting

#endif // STING_CORE_MONITOR_H
