//===- core/PhysicalPolicy.cpp - VP-on-PP scheduling policies -----------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/PhysicalPolicy.h"

#include "core/PhysicalProcessor.h"
#include "core/VirtualProcessor.h"

namespace sting {

PhysicalPolicy::~PhysicalPolicy() = default;

void PhysicalPolicy::workPublished(PhysicalProcessor &) {}

namespace {

class RoundRobinPhysicalPolicy final : public PhysicalPolicy {
public:
  VirtualProcessor *nextVp(PhysicalProcessor &Pp) override {
    const auto &Vps = Pp.assignedVps();
    const std::size_t N = Vps.size();
    if (N == 0)
      return nullptr;

    for (std::size_t I = 0; I != N; ++I) {
      VirtualProcessor *Vp = Vps[(Next + I) % N];
      if (Vp->hasReadyWork()) {
        Next = (Next + I + 1) % N;
        IdleProbes = 0;
        return Vp;
      }
    }

    // No VP reports local work: probe each once per idle episode so its
    // pm-vp-idle hook may migrate threads from loaded siblings.
    if (IdleProbes < N) {
      VirtualProcessor *Vp = Vps[Next];
      Next = (Next + 1) % N;
      ++IdleProbes;
      return Vp;
    }
    IdleProbes = 0;
    return nullptr; // sleep
  }

private:
  std::size_t Next = 0;
  std::size_t IdleProbes = 0;
};

class DedicatedFirstPhysicalPolicy final : public PhysicalPolicy {
public:
  VirtualProcessor *nextVp(PhysicalProcessor &Pp) override {
    const auto &Vps = Pp.assignedVps();
    for (VirtualProcessor *Vp : Vps)
      if (Vp->hasReadyWork())
        return Vp;
    if (IdleProbes < Vps.size())
      return Vps[IdleProbes++];
    IdleProbes = 0;
    return nullptr;
  }

private:
  std::size_t IdleProbes = 0;
};

} // namespace

PhysicalPolicyFactory makeRoundRobinPhysicalPolicy() {
  return [](VirtualMachine &, unsigned) {
    return std::make_unique<RoundRobinPhysicalPolicy>();
  };
}

PhysicalPolicyFactory makeDedicatedFirstPhysicalPolicy() {
  return [](VirtualMachine &, unsigned) {
    return std::make_unique<DedicatedFirstPhysicalPolicy>();
  };
}

} // namespace sting
