//===- core/Tcb.cpp - Thread control blocks --------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Tcb.h"

#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "gc/LocalHeap.h"

namespace sting {

Tcb::~Tcb() {
  STING_DCHECK(!Stk, "TCB destroyed while still owning a stack");
  delete Heap;
}

gc::LocalHeap &Tcb::ensureHeap() {
  if (!Heap)
    Heap = new gc::LocalHeap(vp()->vm().globalHeap());
  return *Heap;
}

} // namespace sting
