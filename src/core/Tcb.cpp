//===- core/Tcb.cpp - Thread control blocks --------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Tcb.h"

#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "gc/LocalHeap.h"

namespace sting {

Tcb::~Tcb() {
  STING_DCHECK(!Stk, "TCB destroyed while still owning a stack");
  delete Heap;
}

gc::LocalHeap &Tcb::ensureHeap() {
  if (!Heap) {
    Heap = new gc::LocalHeap(vp()->vm().globalHeap());
    // A scavenge always runs on the OS thread of the VP currently running
    // this TCB, so recording into that VP's stats satisfies the
    // histogram's single-writer contract.
    Heap->setPauseSink(
        [](void *Ctx, std::uint64_t Nanos) {
          static_cast<Tcb *>(Ctx)->vp()->stats().GcPauseNanos.record(Nanos);
        },
        this);
  }
  return *Heap;
}

} // namespace sting
