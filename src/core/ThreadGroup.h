//===- core/ThreadGroup.h - Thread groups -----------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread groups (paper section 3.1): "STING also provides thread groups as
/// a means of gaining control over a related collection of threads. ...
/// Every thread has a thread group identifier that associates it with a
/// given group. Thread groups provide operations analogous to ordinary
/// thread operations as well as operations for debugging and monitoring."
///
/// A child thread joins its creator's group by default, so terminating a
/// thread's subtree is `kill-group(T.group())` — exactly the paper's idiom.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_THREADGROUP_H
#define STING_CORE_THREADGROUP_H

#include "core/Thread.h"
#include "support/IntrusiveList.h"
#include "support/IntrusivePtr.h"
#include "support/SpinLock.h"

#include <cstdint>
#include <vector>

namespace sting {

class ThreadGroup;
using ThreadGroupRef = IntrusivePtr<ThreadGroup>;

/// Registry hook: every live group is enumerable (the paper's "listing
/// all groups" monitoring operation).
struct GroupRegistryTag;

/// A first-class collection of related threads.
class ThreadGroup final : public RefCounted<ThreadGroup>,
                          public ListNode<GroupRegistryTag> {
public:
  /// Creates a fresh group. \p Parent links groups into a hierarchy for
  /// monitoring; it imposes no lifecycle coupling.
  static ThreadGroupRef create(ThreadGroup *Parent = nullptr);

  std::uint64_t id() const { return Id; }
  ThreadGroup *parent() const { return Parent.get(); }

  /// Number of live (undetermined) member threads.
  std::size_t liveCount() const;

  /// Total threads ever added; a profiling counter (the paper's genealogy
  /// monitoring hooks).
  std::uint64_t totalCreated() const {
    return Created.load(std::memory_order_relaxed);
  }

  /// Snapshot of the live members. References keep the threads alive even
  /// if they determine concurrently.
  std::vector<ThreadRef> threads() const;

  /// The paper's kill-group: requests termination of every live member.
  /// Threads observe the request at their next thread-controller call; the
  /// group may still have live members when this returns.
  void terminateAll();

  /// Requests suspension of every live member (honored at the members'
  /// next controller call).
  void suspendAll();

  /// Resumes every suspended member.
  void resumeAll();

  /// Snapshot of every live group in the process — the paper's "listing
  /// all groups" debugging operation. References keep them alive.
  static std::vector<ThreadGroupRef> allGroups();

private:
  friend class RefCounted<ThreadGroup>;
  friend class Thread;

  explicit ThreadGroup(ThreadGroup *Parent);
  ~ThreadGroup();

  void addMember(Thread &T);
  void removeMember(Thread &T);

  std::uint64_t Id;
  ThreadGroupRef Parent;
  mutable SpinLock Lock;
  IntrusiveList<Thread, GroupMemberTag> Members;
  std::atomic<std::uint64_t> Created{0};
};

} // namespace sting

#endif // STING_CORE_THREADGROUP_H
