//===- core/Topology.h - Virtual processor topologies -----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Self-relative VP addressing (paper section 3.2): "Systolic style
/// programs for example can be expressed by using self-relative addressing
/// off the current VP (e.g., left-VP, right-VP, up-VP, etc.). The system
/// provides a number of default addressing modes for many common topologies
/// (e.g., hypercubes, meshes, systolic arrays, etc.)."
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_TOPOLOGY_H
#define STING_CORE_TOPOLOGY_H

#include <cstdint>
#include <vector>

namespace sting {

/// Supported default addressing modes.
enum class TopologyKind : std::uint8_t {
  Ring,      ///< 1-D ring: left/right wrap around
  Mesh2D,    ///< 2-D torus mesh: left/right/up/down wrap
  Hypercube, ///< n-cube: neighbours differ in one address bit
};

/// Maps VP indices to topological neighbours for a machine of N VPs.
class Topology {
public:
  Topology(TopologyKind Kind, unsigned NumVps);

  TopologyKind kind() const { return Kind; }
  unsigned size() const { return NumVps; }

  /// Mesh dimensions (Rows x Cols == NumVps padded; only meaningful for
  /// Mesh2D).
  unsigned rows() const { return Rows; }
  unsigned cols() const { return Cols; }

  unsigned leftOf(unsigned Vp) const;
  unsigned rightOf(unsigned Vp) const;
  unsigned upOf(unsigned Vp) const;
  unsigned downOf(unsigned Vp) const;

  /// All distinct neighbours of \p Vp (for hypercubes, one per dimension).
  std::vector<unsigned> neighborsOf(unsigned Vp) const;

  /// Hops between two VPs in this topology (shortest path).
  unsigned distance(unsigned A, unsigned B) const;

private:
  TopologyKind Kind;
  unsigned NumVps;
  unsigned Rows = 1;
  unsigned Cols = 1;
  unsigned Dims = 0; ///< hypercube dimensions
};

} // namespace sting

#endif // STING_CORE_TOPOLOGY_H
