//===- core/ThreadGroup.cpp - Thread groups --------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/ThreadGroup.h"

#include "core/ThreadController.h"

#include <atomic>

namespace sting {

static std::atomic<std::uint64_t> NextGroupId{1};

/// Process-wide registry of live groups ("listing all groups").
namespace {
struct GroupRegistry {
  SpinLock Lock;
  IntrusiveList<ThreadGroup, GroupRegistryTag> Groups;
};
GroupRegistry &registry() {
  static GroupRegistry R;
  return R;
}
} // namespace

ThreadGroup::ThreadGroup(ThreadGroup *Parent)
    : Id(NextGroupId.fetch_add(1, std::memory_order_relaxed)),
      Parent(Parent) {
  GroupRegistry &R = registry();
  std::lock_guard<SpinLock> Guard(R.Lock);
  R.Groups.pushBack(*this);
}

ThreadGroup::~ThreadGroup() {
  // Members hold a reference to the group, so the group can only die after
  // every member left.
  STING_DCHECK(Members.empty(), "destroying a group with live members");
  GroupRegistry &R = registry();
  std::lock_guard<SpinLock> Guard(R.Lock);
  IntrusiveList<ThreadGroup, GroupRegistryTag>::erase(*this);
}

std::vector<ThreadGroupRef> ThreadGroup::allGroups() {
  GroupRegistry &R = registry();
  std::vector<ThreadGroupRef> Out;
  std::lock_guard<SpinLock> Guard(R.Lock);
  for (ThreadGroup &G : R.Groups) {
    // A group whose final release already committed is mid-destruction
    // (its destructor is blocked on our lock); skip it rather than
    // resurrect it.
    if (G.retainIfAlive())
      Out.push_back(ThreadGroupRef::adopt(&G));
  }
  return Out;
}

ThreadGroupRef ThreadGroup::create(ThreadGroup *Parent) {
  return ThreadGroupRef::adopt(new ThreadGroup(Parent));
}

void ThreadGroup::addMember(Thread &T) {
  Created.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<SpinLock> Guard(Lock);
  Members.pushBack(T);
}

void ThreadGroup::removeMember(Thread &T) {
  std::lock_guard<SpinLock> Guard(Lock);
  IntrusiveList<Thread, GroupMemberTag>::erase(T);
}

std::size_t ThreadGroup::liveCount() const {
  std::lock_guard<SpinLock> Guard(Lock);
  return Members.size();
}

std::vector<ThreadRef> ThreadGroup::threads() const {
  std::vector<ThreadRef> Snapshot;
  std::lock_guard<SpinLock> Guard(Lock);
  for (Thread &T : const_cast<IntrusiveList<Thread, GroupMemberTag> &>(
           Members))
    Snapshot.push_back(ThreadRef(&T));
  return Snapshot;
}

void ThreadGroup::terminateAll() {
  // Snapshot first: threadTerminate may determine members, which mutates
  // the member list under our lock.
  for (const ThreadRef &T : threads())
    ThreadController::threadTerminate(*T);
}

void ThreadGroup::suspendAll() {
  for (const ThreadRef &T : threads())
    ThreadController::threadSuspend(*T, /*QuantumNanos=*/0);
}

void ThreadGroup::resumeAll() {
  for (const ThreadRef &T : threads())
    ThreadController::threadRun(*T);
}

} // namespace sting
