//===- core/Topology.cpp - Virtual processor topologies --------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Topology.h"

#include "support/Debug.h"

#include <bit>
#include <cmath>

namespace sting {

Topology::Topology(TopologyKind Kind, unsigned NumVps)
    : Kind(Kind), NumVps(NumVps) {
  STING_CHECK(NumVps > 0, "topology over zero VPs");
  switch (Kind) {
  case TopologyKind::Ring:
    Rows = 1;
    Cols = NumVps;
    break;
  case TopologyKind::Mesh2D: {
    // Pick the most square factorization Rows x Cols == NumVps.
    unsigned Best = 1;
    for (unsigned R = 1; R * R <= NumVps; ++R)
      if (NumVps % R == 0)
        Best = R;
    Rows = Best;
    Cols = NumVps / Best;
    break;
  }
  case TopologyKind::Hypercube:
    STING_CHECK(std::has_single_bit(NumVps),
                "hypercube topology needs a power-of-two VP count");
    Dims = static_cast<unsigned>(std::countr_zero(NumVps));
    break;
  }
}

unsigned Topology::leftOf(unsigned Vp) const {
  STING_DCHECK(Vp < NumVps, "VP index out of range");
  switch (Kind) {
  case TopologyKind::Ring:
    return (Vp + NumVps - 1) % NumVps;
  case TopologyKind::Mesh2D: {
    unsigned R = Vp / Cols, C = Vp % Cols;
    return R * Cols + (C + Cols - 1) % Cols;
  }
  case TopologyKind::Hypercube:
    return Vp ^ 1u; // dimension-0 neighbour
  }
  STING_UNREACHABLE("bad topology kind");
}

unsigned Topology::rightOf(unsigned Vp) const {
  STING_DCHECK(Vp < NumVps, "VP index out of range");
  switch (Kind) {
  case TopologyKind::Ring:
    return (Vp + 1) % NumVps;
  case TopologyKind::Mesh2D: {
    unsigned R = Vp / Cols, C = Vp % Cols;
    return R * Cols + (C + 1) % Cols;
  }
  case TopologyKind::Hypercube:
    return Vp ^ 1u;
  }
  STING_UNREACHABLE("bad topology kind");
}

unsigned Topology::upOf(unsigned Vp) const {
  STING_DCHECK(Vp < NumVps, "VP index out of range");
  switch (Kind) {
  case TopologyKind::Ring:
    return leftOf(Vp); // degenerate: a ring has no second dimension
  case TopologyKind::Mesh2D: {
    unsigned R = Vp / Cols, C = Vp % Cols;
    return ((R + Rows - 1) % Rows) * Cols + C;
  }
  case TopologyKind::Hypercube:
    return Dims >= 2 ? (Vp ^ 2u) : (Vp ^ 1u);
  }
  STING_UNREACHABLE("bad topology kind");
}

unsigned Topology::downOf(unsigned Vp) const {
  STING_DCHECK(Vp < NumVps, "VP index out of range");
  switch (Kind) {
  case TopologyKind::Ring:
    return rightOf(Vp);
  case TopologyKind::Mesh2D: {
    unsigned R = Vp / Cols, C = Vp % Cols;
    return ((R + 1) % Rows) * Cols + C;
  }
  case TopologyKind::Hypercube:
    return Dims >= 2 ? (Vp ^ 2u) : (Vp ^ 1u);
  }
  STING_UNREACHABLE("bad topology kind");
}

std::vector<unsigned> Topology::neighborsOf(unsigned Vp) const {
  std::vector<unsigned> Out;
  switch (Kind) {
  case TopologyKind::Ring:
    if (NumVps == 1)
      return Out;
    Out.push_back(leftOf(Vp));
    if (rightOf(Vp) != Out.front())
      Out.push_back(rightOf(Vp));
    return Out;
  case TopologyKind::Mesh2D: {
    for (unsigned N : {leftOf(Vp), rightOf(Vp), upOf(Vp), downOf(Vp)}) {
      if (N == Vp)
        continue;
      bool Seen = false;
      for (unsigned E : Out)
        Seen |= E == N;
      if (!Seen)
        Out.push_back(N);
    }
    return Out;
  }
  case TopologyKind::Hypercube:
    for (unsigned D = 0; D != Dims; ++D)
      Out.push_back(Vp ^ (1u << D));
    return Out;
  }
  STING_UNREACHABLE("bad topology kind");
}

unsigned Topology::distance(unsigned A, unsigned B) const {
  STING_DCHECK(A < NumVps && B < NumVps, "VP index out of range");
  switch (Kind) {
  case TopologyKind::Ring: {
    unsigned D = A > B ? A - B : B - A;
    return D < NumVps - D ? D : NumVps - D;
  }
  case TopologyKind::Mesh2D: {
    auto Wrap = [](unsigned X, unsigned Y, unsigned N) {
      unsigned D = X > Y ? X - Y : Y - X;
      return D < N - D ? D : N - D;
    };
    return Wrap(A / Cols, B / Cols, Rows) + Wrap(A % Cols, B % Cols, Cols);
  }
  case TopologyKind::Hypercube:
    return static_cast<unsigned>(std::popcount(A ^ B));
  }
  STING_UNREACHABLE("bad topology kind");
}

} // namespace sting
