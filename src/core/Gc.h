//===- core/Gc.h - Storage-model bridge --------------------------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binds the storage model to the execution model: every evaluating thread
/// has a local heap cached in its TCB (paper Fig. 1: TCB encapsulates
/// thread storage — stacks and heaps organized into areas), created lazily
/// on first managed allocation and recycled with the TCB. Code outside any
/// machine gets a per-OS-thread heap over a process-wide old generation.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_GC_H
#define STING_CORE_GC_H

#include "gc/LocalHeap.h"

namespace sting {

/// \returns the local heap of the current mutator (the evaluating thread's
/// TCB heap, or a per-OS-thread heap outside the machine).
gc::LocalHeap &mutatorHeap();

/// \returns the shared older generation of the current machine (or of the
/// process when called outside a machine).
gc::GlobalHeap &sharedHeap();

} // namespace sting

#endif // STING_CORE_GC_H
