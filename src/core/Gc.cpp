//===- core/Gc.cpp - Storage-model bridge -----------------------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Gc.h"

#include "core/Current.h"
#include "core/Tcb.h"
#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "gc/GlobalHeap.h"

#include <memory>

namespace sting {

static gc::GlobalHeap &processHeap() {
  static gc::GlobalHeap Heap;
  return Heap;
}

gc::GlobalHeap &sharedHeap() {
  if (VirtualMachine *Vm = currentVm())
    return Vm->globalHeap();
  return processHeap();
}

gc::LocalHeap &mutatorHeap() {
  if (Tcb *C = currentTcb())
    return C->ensureHeap();
  static thread_local std::unique_ptr<gc::LocalHeap> ExternalHeap;
  if (!ExternalHeap)
    ExternalHeap = std::make_unique<gc::LocalHeap>(processHeap());
  return *ExternalHeap;
}

} // namespace sting
