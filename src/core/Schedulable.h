//===- core/Schedulable.h - Items a policy manager schedules ----*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's pm-get-next-thread "returns the next ready TCB or thread to
/// run" (section 3.3): ready queues hold two kinds of objects — raw threads
/// that have never run (no dynamic state yet) and TCBs of threads resuming
/// from a yield, block or suspension. Schedulable is their common base,
/// with an LLVM-style kind discriminator instead of RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_SCHEDULABLE_H
#define STING_CORE_SCHEDULABLE_H

#include "support/IntrusiveList.h"

#include <cstdint>

namespace sting {

class Thread;
class Tcb;

/// Tag for the ready-queue hook shared by Thread and Tcb.
struct ReadyQueueTag;

/// Tag for the waiter-queue hook (ParkList). Distinct from the ready-queue
/// hook: a timeout or async raise unparks a kernel-parked TCB *without*
/// unlinking it from its waiter list (only the structure's own lock may do
/// that), so the TCB can transiently sit in a waiter list and a ready
/// queue at once. The waiter re-retracts its node itself on resume.
struct WaiterQueueTag;

/// Base class for objects a policy manager can enqueue and dispatch.
class Schedulable : public ListNode<ReadyQueueTag>,
                    public ListNode<WaiterQueueTag> {
public:
  enum class Kind : std::uint8_t {
    Thread, ///< A scheduled thread with no dynamic context yet.
    Tcb,    ///< An evaluating thread's control block, ready to resume.
  };

  Kind kind() const { return TheKind; }
  bool isThread() const { return TheKind == Kind::Thread; }
  bool isTcb() const { return TheKind == Kind::Tcb; }

  /// Downcasts; the kind must match (checked in debug builds).
  Thread &asThread();
  Tcb &asTcb();

  /// Scheduling priority of the underlying thread (larger runs first under
  /// priority policies).
  int schedPriority() const;

  /// Id of the underlying thread (0 if a TCB is between bindings); used by
  /// trace instrumentation in the policy managers.
  std::uint64_t schedThreadId() const;

protected:
  explicit Schedulable(Kind K) : TheKind(K) {}
  ~Schedulable() = default;

private:
  Kind TheKind;
};

} // namespace sting

#endif // STING_CORE_SCHEDULABLE_H
