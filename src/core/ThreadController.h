//===- core/ThreadController.h - The thread controller ----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thread controller (paper section 3.1): the synchronous
/// state-transition function on threads, exposed as the set of procedures
/// users manipulate threads with. The controller allocates no storage, so
/// "a TC call never triggers garbage collection": waiter records live on
/// the waiting thread's stack, queue links are intrusive, and TCBs come
/// from per-VP caches.
///
/// Paper-to-API mapping:
///   (fork-thread expr vp)        forkThread
///   (create-thread expr)         createThread
///   (thread-run thread [vp])     threadRun
///   (thread-wait thread)         threadWait
///   (thread-value thread)        threadValue
///   (thread-block thread ...)    threadBlock / blockCurrent
///   (thread-suspend thread . q)  threadSuspend
///   (thread-terminate thread .v) threadTerminate
///   (yield-processor)            yieldProcessor
///   (current-thread)             sting::currentThread (core/Current.h)
///   block-on-group (Fig. 5)      blockOnGroup
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_THREADCONTROLLER_H
#define STING_CORE_THREADCONTROLLER_H

#include "core/PolicyManager.h"
#include "core/Tcb.h"
#include "core/Thread.h"
#include "support/Deadline.h"

#include <span>

namespace sting {

class VirtualProcessor;

/// The thread controller. All members are static: the controller is a
/// state-transition function, not a data structure; its per-VP state lives
/// in the VirtualProcessor it executes on.
class ThreadController {
public:
  // --- Creation and scheduling -------------------------------------------

  /// Creates a thread evaluating \p Code and schedules it (fork-thread).
  /// Must be called from a sting thread or with \p Opts.Vp set; from plain
  /// OS threads use VirtualMachine::fork.
  static ThreadRef forkThread(Thread::Thunk Code,
                              const SpawnOptions &Opts = {});

  /// Creates a delayed thread (create-thread).
  static ThreadRef createThread(Thread::Thunk Code,
                                const SpawnOptions &Opts = {});

  /// Inserts a delayed, blocked or suspended thread into the ready queue of
  /// \p Vp's policy manager (thread-run). Null \p Vp picks via the current
  /// policy. No-op for threads that are already runnable or determined.
  static void threadRun(Thread &T, VirtualProcessor *Vp = nullptr);

  // --- Synchronization ----------------------------------------------------

  /// Blocks the calling thread until \p T is determined (thread-wait).
  /// If \p T is delayed or scheduled and stealable, evaluates its thunk
  /// inline on the caller's TCB instead of blocking — the paper's stealing
  /// optimization (section 4.1.1).
  static void threadWait(Thread &T);

  /// Timed thread-wait. \returns true once \p T is determined, false if
  /// \p D expired first (the wait leaves no residue on \p T's waiter
  /// chain). Callable from external OS threads, where it maps to a timed
  /// join.
  static bool threadWaitFor(Thread &T, Deadline D);

  /// thread-wait followed by reading the result (thread-value).
  static const AnyValue &threadValue(Thread &T);

  /// Blocks the calling thread; \p Blocker is "the condition on which the
  /// thread is blocking" (recorded for debugging). Resumed by threadRun.
  static void threadBlock(const void *Blocker = nullptr);

  /// Suspends the calling thread; with \p QuantumNanos != 0 the machine
  /// clock resumes it after the period elapses, "otherwise the thread is
  /// suspended indefinitely until explicitly resumed using thread-run".
  static void threadSuspend(std::uint64_t QuantumNanos = 0);

  /// Requests that \p T suspend (honored at T's next controller call).
  static void threadSuspend(Thread &T, std::uint64_t QuantumNanos);

  /// Requests that \p T terminate with \p Result (thread-terminate).
  /// Delayed/scheduled targets are determined immediately; evaluating
  /// targets observe the request at their next controller call. Never
  /// blocks. \returns true if the request was accepted (false if \p T was
  /// already determined or is being stolen).
  static bool threadTerminate(Thread &T, AnyValue Result = AnyValue());

  /// Terminates the calling thread with \p Result; never returns.
  [[noreturn]] static void terminateSelf(AnyValue Result = AnyValue());

  /// Raises \p E asynchronously in \p T — the paper's inter-process
  /// exceptions (section 3.1). An evaluating target observes the
  /// exception at its next controller call; it unwinds the target's
  /// frames and is catchable there, failing the thread if uncaught.
  /// Delayed/scheduled targets fail immediately without running.
  /// \returns true if the exception was delivered or armed.
  static bool raiseIn(Thread &T, std::exception_ptr E);

  /// Relinquishes the VP; the thread goes to its policy's ready queue
  /// (yield-processor).
  static void yieldProcessor();

  /// A preemption safe point: applies pending preemption and requested
  /// transitions. Long-running loops should call this (the paper delivers
  /// preemption at TC entries; see DESIGN.md substitution table).
  static void checkpoint();

  // --- Group synchronization (paper Fig. 5, section 4.3) ------------------

  /// Blocks the calling thread until \p Count of the \p Group threads are
  /// determined. Count == 1 yields wait-for-one; Count == Group.size()
  /// yields wait-for-all. Thread-barrier records are allocated on the
  /// caller's stack and fully deregistered before returning.
  static void blockOnGroup(std::size_t Count,
                           std::span<Thread *const> Group);

  /// Timed blockOnGroup. Registration is retracted on every exit path
  /// (completion, timeout, async terminate/raise unwinding through the
  /// park), so the caller's stack records never outlive the call.
  static WaitResult blockOnGroupUntil(std::size_t Count,
                                      std::span<Thread *const> Group,
                                      Deadline D);

  // --- Building blocks for higher-level structures (sync/, tuple/) --------

  /// Parks the calling thread. \p Class selects who may resume it
  /// (ParkClass::User: threadRun / timers; ParkClass::Kernel: only the
  /// structure that holds it). The caller must have published its TCB to
  /// the waking side *before* calling; the park protocol tolerates wakeups
  /// that arrive between publication and the final context switch.
  ///
  /// With a real \p D the machine clock delivers a wakeup once the
  /// deadline passes. The return is then indistinguishable from any other
  /// wake — kernel park sites re-check their condition (and the deadline)
  /// in a loop, which also makes them tolerant of spurious returns; every
  /// kernel park may return spuriously (chaos injection exploits this).
  static void parkCurrent(ParkClass Class, const void *Blocker,
                          Deadline D = Deadline::never());

  /// Resumes a parked TCB; the counterpart of parkCurrent, used by wakeup
  /// paths inside runtime structures. Safe against the Parking window.
  /// \returns true if this call delivered the wakeup.
  static bool unparkTcb(Tcb &C, EnqueueReason Reason);

  /// Like unparkTcb but only resumes user-class parks (thread-block /
  /// thread-suspend); the threadRun path.
  static bool unparkTcbIfUser(Tcb &C, EnqueueReason Reason);

  /// Kernel wake addressed by *thread identity*: re-validates under \p T's
  /// waiter lock that the thread is still evaluating and bound to a TCB,
  /// then delivers a kernel-only unpark. Wake paths that unlink a waiter
  /// under a structure lock but unpark after releasing it must use this:
  /// between the unlink and the unpark, the waiter may be woken
  /// independently (a timeout timer), finish its wait, terminate, and have
  /// its TCB recycled — a raw Tcb* dangles there, a ThreadRef cannot. The
  /// kernel-only constraint keeps a late delivery away from any user park
  /// the target may have entered since; at worst it spuriously returns a
  /// later kernel park, which every kernel park site tolerates.
  static bool unparkThreadKernel(Thread &T, EnqueueReason Reason);

  /// Runs the thread bound to \p C to completion and exits. The VP's entry
  /// trampoline for fresh TCBs; never returns. Internal.
  [[noreturn]] static void runToCompletion(Tcb &C);

  /// Attempts to steal \p T: transitions Delayed/Scheduled -> Stolen and
  /// evaluates the thunk on the caller's TCB. \returns true if this call
  /// performed the steal (T is then determined).
  static bool trySteal(Thread &T);

  /// Timeout delivery from the machine clock: wakes \p T's TCB if it is
  /// still in a timed park whose deadline is \p DeadlineNanos. Delivery is
  /// kernel-only: a stale timer that slips past the deadline check can
  /// only produce a spurious return in a kernel park (tolerated by
  /// construction), never resume a user park early. Internal —
  /// PreemptionClock only.
  static void deliverTimeout(Thread &T, std::uint64_t DeadlineNanos);

private:
  friend class VirtualProcessor;

  /// Which park classes a wakeup may affect.
  enum class UnparkClass : std::uint8_t {
    Any,        ///< structure wakeups (unparkTcb)
    UserOnly,   ///< threadRun / suspend-resume timers (unparkTcbIfUser)
    KernelOnly, ///< park-timeout delivery; must never touch a user park
  };

  /// Shared unpark machinery; \p Constraint restricts which park classes
  /// this wakeup is allowed to resume.
  static bool unparkImpl(Tcb &C, EnqueueReason Reason, UnparkClass Constraint);

  /// Applies requested transitions / preemption; called at controller
  /// entries. May not return (terminate) or may park (suspend).
  static void applyRequests(Tcb &C);

  /// Runs \p T's thunk to completion on the current TCB (steal execution).
  static void runStolen(Thread &T);

  /// Common exit: determine the current thread and leave the TCB.
  [[noreturn]] static void exitCurrent(AnyValue Result, bool ViaTerminate);
};

} // namespace sting

#endif // STING_CORE_THREADCONTROLLER_H
