//===- core/Thread.cpp - First-class lightweight threads -------------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Thread.h"

#include "core/Current.h"
#include "core/Fluid.h"
#include "core/Tcb.h"
#include "core/ThreadController.h"
#include "core/ThreadGroup.h"
#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "obs/Flow.h"

#include <condition_variable>
#include <exception>
#include <mutex>

namespace sting {

const char *threadStateName(ThreadState S) {
  switch (S) {
  case ThreadState::Delayed:
    return "delayed";
  case ThreadState::Scheduled:
    return "scheduled";
  case ThreadState::Evaluating:
    return "evaluating";
  case ThreadState::Stolen:
    return "stolen";
  case ThreadState::Determined:
    return "determined";
  }
  STING_UNREACHABLE("bad ThreadState");
}

//===----------------------------------------------------------------------===//
// Schedulable
//===----------------------------------------------------------------------===//

Thread &Schedulable::asThread() {
  STING_DCHECK(isThread(), "Schedulable is not a Thread");
  return *static_cast<Thread *>(this);
}

Tcb &Schedulable::asTcb() {
  STING_DCHECK(isTcb(), "Schedulable is not a Tcb");
  return *static_cast<Tcb *>(this);
}

int Schedulable::schedPriority() const {
  if (TheKind == Kind::Thread)
    return static_cast<const Thread *>(this)->priority();
  const Thread *T = static_cast<const Tcb *>(this)->thread();
  return T ? T->priority() : 0;
}

std::uint64_t Schedulable::schedThreadId() const {
  if (TheKind == Kind::Thread)
    return static_cast<const Thread *>(this)->id();
  const Thread *T = static_cast<const Tcb *>(this)->thread();
  return T ? T->id() : 0;
}

//===----------------------------------------------------------------------===//
// Thread
//===----------------------------------------------------------------------===//

Thread::Thread(VirtualMachine &Vm, Thunk Code, const SpawnOptions &Opts)
    : Schedulable(Kind::Thread), Id(Vm.nextThreadId()), Vm(&Vm),
      Code(std::move(Code)) {
  Stealable.store(Opts.Stealable, std::memory_order_relaxed);
  Priority.store(Opts.Priority, std::memory_order_relaxed);
  QuantumNanos = Opts.QuantumNanos;

  // Capture the creator's dynamic environment (paper 3.1: the thread holds
  // references to the thunk's dynamic environment). O(1): chains share
  // structure. Works for external creators too (their environment is a
  // per-OS-thread slot).
  FluidEnv = detail::currentFluidEnv();

  if (!Opts.NoGenealogy) {
    Thread *Creator = currentThread();
    if (Creator && &Creator->vm() == &Vm)
      Parent = ThreadRef(Creator);
    if (Opts.Group)
      Group = IntrusivePtr<ThreadGroup>(Opts.Group);
    else if (Parent && Parent->group())
      Group = IntrusivePtr<ThreadGroup>(Parent->group());
    else
      Group = IntrusivePtr<ThreadGroup>(&Vm.rootGroup());
    Group->addMember(*this);
  }

  // Causal flow: continue the creator's flow when there is one (fork
  // extends the request the creator was serving), otherwise start a fresh
  // flow at this root. Every thread carries a nonzero id.
  if (obs::FlowId F = obs::currentFlowId())
    Flow.store(F, std::memory_order_relaxed);
  else
    Flow.store(obs::newFlowId(), std::memory_order_relaxed);

  Vm.stats().ThreadsCreated.fetch_add(1, std::memory_order_relaxed);
  if (VirtualProcessor *Vp = currentVp())
    Vp->stats().ThreadsCreated.inc();
  else
    // External (non-substrate) creations — main() entering via run() —
    // are charged to vp0 so creations still balance terminations.
    Vm.vp(0).stats().ThreadsCreated.incShared();
  STING_TRACE_EVENT(ThreadCreate, id(), 0);
}

Thread::~Thread() {
  STING_DCHECK(!Waiters, "destroying a thread that still has waiters");
}

ThreadRef Thread::create(VirtualMachine &Vm, Thunk Code,
                         const SpawnOptions &Opts) {
  return ThreadRef::adopt(new Thread(Vm, std::move(Code), Opts));
}

const AnyValue &Thread::result() const {
  STING_CHECK(isDetermined(), "result() on an undetermined thread");
  return Result;
}

void Thread::rethrowIfFailed() const {
  if (!failed())
    return;
  std::rethrow_exception(result().as<std::exception_ptr>());
}

bool Thread::isUserBlocked() const {
  auto *Self = const_cast<Thread *>(this);
  std::lock_guard<SpinLock> Guard(Self->WaiterLock);
  if (state() != ThreadState::Evaluating || !Self->OwnedTcb)
    return false;
  ParkState S = Self->OwnedTcb->Park.load(std::memory_order_acquire);
  return S == ParkState::ParkedUser || S == ParkState::ParkingUser;
}

bool Thread::addWaiter(ThreadBarrier &TB) {
  std::lock_guard<SpinLock> Guard(WaiterLock);
  if (state() == ThreadState::Determined)
    return false;
  TB.Target = this;
  TB.Next = Waiters;
  Waiters = &TB;
  return true;
}

bool Thread::removeWaiter(ThreadBarrier &TB) {
  std::lock_guard<SpinLock> Guard(WaiterLock);
  for (ThreadBarrier **P = &Waiters; *P; P = &(*P)->Next) {
    if (*P != &TB)
      continue;
    *P = TB.Next;
    TB.Next = nullptr;
    return true;
  }
  return false;
}

/// External joiner's rendezvous, allocated in the joiner's frame.
namespace {
struct ExternalJoin {
  std::mutex M;
  std::condition_variable Cv;
  bool Done = false;
};
} // namespace

/// Wakes one waiter record. Runs under the determined thread's waiter
/// lock; must not touch \p TB after signaling its owner (the owner may pop
/// its stack frame as soon as it observes the wakeup — see the lifetime
/// protocol in Thread.h).
static void wakeWaiter(ThreadBarrier &TB) {
  switch (TB.Kind) {
  case ThreadBarrier::WaiterKind::TcbWaiter: {
    Tcb *C = TB.WaiterTcb;
    if (C->WaitCount.fetch_sub(1, std::memory_order_acq_rel) == 1)
      ThreadController::unparkTcb(*C, EnqueueReason::KernelBlock);
    return;
  }
  case ThreadBarrier::WaiterKind::ExternalWaiter: {
    auto *EJ = static_cast<ExternalJoin *>(TB.ExternalSignal);
    std::lock_guard<std::mutex> Guard(EJ->M);
    EJ->Done = true;
    EJ->Cv.notify_all();
    return;
  }
  }
  STING_UNREACHABLE("bad waiter kind");
}

void Thread::determine(AnyValue Value, bool ViaTerminate) {
  WaiterLock.lock();
  STING_DCHECK(state() != ThreadState::Determined, "double determine");
  Result = std::move(Value);
  Terminated.store(ViaTerminate, std::memory_order_relaxed);
  OwnedTcb = nullptr;
  State.store(ThreadState::Determined, std::memory_order_release);
  // Bookkeeping must be visible before any waiter wakes: joiners observe
  // stats and group membership immediately after their wakeup.
  Vm->stats().ThreadsDetermined.fetch_add(1, std::memory_order_relaxed);
  if (Group)
    Group->removeMember(*this);

  ThreadBarrier *Chain = Waiters;
  Waiters = nullptr;
  // Process the chain while still holding the lock: a waiter that finds its
  // record absent under this lock may rely on the wakeup side-effects being
  // complete (see Thread.h).
  while (Chain) {
    ThreadBarrier *Next = Chain->Next;
    wakeWaiter(*Chain);
    Chain = Next;
  }
  WaiterLock.unlock();

  Code.reset();
}

void Thread::join() {
  if (isDetermined())
    return;

  STING_CHECK(!onStingThread() || &currentThread()->vm() != Vm,
              "join() called from inside the machine; use threadWait");

  // Demanding a delayed, stealable thread from outside the machine
  // evaluates it inline, mirroring the controller's steal of section 4.1.1.
  if (state() == ThreadState::Delayed && isStealable() &&
      tryTransition(ThreadState::Delayed, ThreadState::Stolen)) {
    AnyValue V;
    bool DidFail = false;
    try {
      V = Code();
    } catch (...) {
      V = AnyValue(std::current_exception());
      DidFail = true;
    }
    Failed.store(DidFail, std::memory_order_relaxed);
    determine(std::move(V), /*ViaTerminate=*/false);
    return;
  }

  ExternalJoin EJ;
  ThreadBarrier TB;
  TB.Kind = ThreadBarrier::WaiterKind::ExternalWaiter;
  TB.ExternalSignal = &EJ;
  if (!addWaiter(TB))
    return; // determined in the meantime

  std::unique_lock<std::mutex> Lock(EJ.M);
  EJ.Cv.wait(Lock, [&] { return EJ.Done; });
}

bool Thread::joinFor(Deadline D) {
  if (D.isNever()) {
    join();
    return true;
  }
  if (isDetermined())
    return true;

  STING_CHECK(!onStingThread() || &currentThread()->vm() != Vm,
              "joinFor() called from inside the machine; use threadWaitFor");

  ExternalJoin EJ;
  ThreadBarrier TB;
  TB.Kind = ThreadBarrier::WaiterKind::ExternalWaiter;
  TB.ExternalSignal = &EJ;
  if (!addWaiter(TB))
    return true; // determined in the meantime

  {
    std::unique_lock<std::mutex> Lock(EJ.M);
    while (!EJ.Done) {
      std::uint64_t Rem = D.remainingNanos();
      if (Rem == 0)
        break;
      EJ.Cv.wait_for(Lock, std::chrono::nanoseconds(Rem));
    }
    if (EJ.Done)
      return true;
  }

  // Timed out: retract the record so the stack frame can pop. If the
  // record is already gone, determine() is (or was) signalling it — wait
  // out the handshake, then report success.
  if (removeWaiter(TB))
    return false;
  std::unique_lock<std::mutex> Lock(EJ.M);
  EJ.Cv.wait(Lock, [&] { return EJ.Done; });
  return true;
}

} // namespace sting
