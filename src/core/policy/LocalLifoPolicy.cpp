//===- core/policy/LocalLifoPolicy.cpp - Per-VP LIFO policy ----------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// LIFO dispatch: the most recently created thread runs first. The paper
// recommends this for tree-structured result-parallel programs — under
// futures it runs threads computing *later* results first, so touches of
// earlier results find them still delayed/scheduled and steal them,
// unfolding the call graph without context switches (section 4.1.1).
//
//===----------------------------------------------------------------------===//

#include "core/PolicyManager.h"

#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "core/policy/ReadyQueue.h"

#include <memory>

namespace sting {

namespace {

class LocalLifoPolicy final : public PolicyManager {
public:
  explicit LocalLifoPolicy(VirtualMachine &Vm) : Vm(&Vm) {}

  Schedulable *getNextThread(VirtualProcessor &) override {
    return Queue.popFront();
  }

  void enqueueThread(Schedulable &Item, VirtualProcessor &,
                     EnqueueReason Reason) override {
    // Read the id before publishing: once the item is visible in a queue
    // another VP (dispatch or steal) may pop and recycle it concurrently.
    const std::uint64_t TraceId = Item.schedThreadId();
    Queue.pushFront(Item); // LIFO
    STING_TRACE_EVENT(Enqueue, TraceId,
                      obs::enqueuePayload(Queue.size(),
                                          static_cast<std::uint8_t>(Reason)));
  }

  bool hasReadyWork(const VirtualProcessor &) const override {
    return !Queue.empty();
  }

  void drain(VirtualProcessor &,
             const std::function<void(Schedulable &)> &Drop) override {
    Queue.drainInto(Drop);
  }

private:
  VirtualMachine *Vm;
  ReadyQueue Queue;
};

} // namespace

PolicyFactory makeLocalLifoPolicy() {
  return [](VirtualMachine &Vm, unsigned) {
    return std::make_unique<LocalLifoPolicy>(Vm);
  };
}

} // namespace sting
