//===- core/policy/LocalLifoPolicy.cpp - Per-VP LIFO policy ----------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// LIFO dispatch: the most recently created thread runs first. The paper
// recommends this for tree-structured result-parallel programs — under
// futures it runs threads computing *later* results first, so touches of
// earlier results find them still delayed/scheduled and steal them,
// unfolding the call graph without context switches (section 4.1.1).
//
// Backed by the lock-free fast path (DESIGN.md section 8): the owning VP
// pushes and pops the bottom of a Chase-Lev deque with no atomic RMW;
// remote enqueuers post to an MPSC mailbox the owner drains at dispatch.
//
//===----------------------------------------------------------------------===//

#include "core/PolicyManager.h"

#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "core/policy/FastPath.h"

#include <memory>

namespace sting {

namespace {

class LocalLifoPolicy final : public PolicyManager {
public:
  explicit LocalLifoPolicy(VirtualMachine &Vm) : Vm(&Vm) {}

  Schedulable *getNextThread(VirtualProcessor &Vp) override {
    // Remote posts first reach the deque here; they slot in as if freshly
    // pushed, so the newest runnable work (local or remote) runs next.
    fastpath::drainMailbox(Mailbox, Vp,
                          [&](Schedulable &Item) { Deque.pushBottom(Item); });
    return Deque.popBottom();
  }

  void enqueueThread(Schedulable &Item, VirtualProcessor &Vp,
                     EnqueueReason Reason) override {
    if (!fastpath::onOwner(Vp))
      return fastpath::postRemote(Mailbox, Item, Vp, Reason);
    // Read the id before publishing: once the item is visible in a queue
    // another VP (dispatch or steal) may pop and recycle it concurrently.
    const std::uint64_t TraceId = Item.schedThreadId();
    Deque.pushBottom(Item); // LIFO via popBottom
    STING_TRACE_EVENT(Enqueue, TraceId,
                      obs::enqueuePayload(Deque.size(),
                                          static_cast<std::uint8_t>(Reason)));
  }

  bool hasReadyWork(const VirtualProcessor &) const override {
    return !Deque.empty() || !Mailbox.empty();
  }

  void loadDepths(const VirtualProcessor &, std::uint64_t &ReadyDepth,
                  std::uint64_t &MailboxDepth) const override {
    ReadyDepth = Deque.size();
    MailboxDepth = Mailbox.size();
  }

  void drain(VirtualProcessor &,
             const std::function<void(Schedulable &)> &Drop) override {
    // Runs single-threaded after the PPs have joined.
    Mailbox.drain(Drop);
    while (Schedulable *Item = Deque.popBottom())
      Drop(*Item);
  }

private:
  VirtualMachine *Vm;
  WorkStealingDeque Deque;
  RemoteMailbox Mailbox;
};

} // namespace

PolicyFactory makeLocalLifoPolicy() {
  return [](VirtualMachine &Vm, unsigned) {
    return std::make_unique<LocalLifoPolicy>(Vm);
  };
}

} // namespace sting
