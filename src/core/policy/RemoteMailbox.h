//===- core/policy/RemoteMailbox.h - Per-VP remote enqueues -----*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded MPSC mailbox, one per VP, carrying cross-VP enqueues —
/// unparks, migrations, tuple-space wakeups, enqueues from off-machine
/// threads and the preemption clock. Remote producers never touch the
/// owner's Chase-Lev deque (which tolerates exactly one writer at the
/// bottom); they post here and the owner drains at dispatch. The ring is
/// Vyukov's bounded MPMC queue specialized to a single consumer: a
/// producer claims a cell with one CAS on Tail and publishes with one
/// release store of the cell sequence; the owner consumes with plain
/// loads plus one release store per cell. When the ring is full —
/// pathological fan-in to one VP — producers overflow into a spin-locked
/// intrusive list, so posting never blocks and never spins unboundedly.
///
/// Emptiness is answered from Tail/Head/OverflowSize alone, so
/// hasReadyWork stays accurate from any thread: Tail is advanced *before*
/// the cell is published, hence a claimed-but-unpublished post already
/// reports non-empty (the no-lost-wakeup direction; the drain may
/// transiently see the unpublished cell and return short, but the VP's
/// physical processor re-polls instead of sleeping).
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_POLICY_REMOTEMAILBOX_H
#define STING_CORE_POLICY_REMOTEMAILBOX_H

#include "core/Schedulable.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace sting {

/// A bounded MPSC queue of Schedulable pointers with a locked overflow
/// list. Any thread may post(); exactly one owner thread may drain().
class RemoteMailbox {
public:
  explicit RemoteMailbox(std::size_t Capacity = 1024)
      : Cells(roundUpPow2(Capacity)), Mask(Cells.size() - 1) {
    for (std::size_t I = 0; I != Cells.size(); ++I)
      Cells[I].Seq.store(I, std::memory_order_relaxed);
  }

  RemoteMailbox(const RemoteMailbox &) = delete;
  RemoteMailbox &operator=(const RemoteMailbox &) = delete;

  /// Posts \p Item from any thread. Lock-free unless the ring is full, in
  /// which case the item goes to the overflow list under a spin lock.
  /// \returns true when the fast (ring) path was taken.
  bool post(Schedulable &Item) {
    std::uint64_t T = Tail.load(std::memory_order_relaxed);
    for (;;) {
      Cell &C = Cells[T & Mask];
      std::uint64_t Seq = C.Seq.load(std::memory_order_acquire);
      std::int64_t Dif =
          static_cast<std::int64_t>(Seq) - static_cast<std::int64_t>(T);
      if (Dif == 0) {
        if (Tail.compare_exchange_weak(T, T + 1,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
          C.Item = &Item;
          C.Seq.store(T + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded T; retry with the fresh value.
      } else if (Dif < 0) {
        // Ring full: fall back to the locked overflow list.
        {
          std::lock_guard<SpinLock> Guard(OverflowLock);
          Overflow.pushBack(Item);
        }
        OverflowSize.fetch_add(1, std::memory_order_seq_cst);
        return false;
      } else {
        T = Tail.load(std::memory_order_relaxed);
      }
    }
  }

  /// Owner-only: drains every currently-published item, invoking
  /// \p Consume in post order (ring first, then overflow). \returns the
  /// number of items delivered.
  template <typename Fn> std::size_t drain(Fn &&Consume) {
    std::size_t N = 0;
    std::uint64_t H = Head.load(std::memory_order_relaxed);
    for (;;) {
      Cell &C = Cells[H & Mask];
      std::uint64_t Seq = C.Seq.load(std::memory_order_acquire);
      if (Seq != H + 1)
        break; // unpublished (or empty) — stop, do not spin on a slow poster
      Schedulable *Item = C.Item;
      C.Seq.store(H + Cells.size(), std::memory_order_release);
      ++H;
      Head.store(H, std::memory_order_release);
      Consume(*Item);
      ++N;
    }
    if (OverflowSize.load(std::memory_order_seq_cst) != 0) {
      IntrusiveList<Schedulable, ReadyQueueTag> Spilled;
      std::size_t Count = 0;
      {
        std::lock_guard<SpinLock> Guard(OverflowLock);
        while (!Overflow.empty()) {
          Spilled.pushBack(Overflow.popFront());
          ++Count;
        }
      }
      OverflowSize.fetch_sub(Count, std::memory_order_seq_cst);
      while (!Spilled.empty()) {
        Consume(Spilled.popFront());
        ++N;
      }
    }
    return N;
  }

  /// True when no post is pending. Accurate from any thread: a producer
  /// advances Tail (or OverflowSize) before publishing, so a pending item
  /// is never reported empty.
  bool empty() const {
    return Head.load(std::memory_order_seq_cst) ==
               Tail.load(std::memory_order_seq_cst) &&
           OverflowSize.load(std::memory_order_seq_cst) == 0;
  }

  /// Approximate pending count (diagnostics).
  std::size_t size() const {
    std::uint64_t H = Head.load(std::memory_order_acquire);
    std::uint64_t T = Tail.load(std::memory_order_acquire);
    return static_cast<std::size_t>(T - H) +
           OverflowSize.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return Cells.size(); }

private:
  struct Cell {
    std::atomic<std::uint64_t> Seq;
    Schedulable *Item = nullptr;
  };

  static std::size_t roundUpPow2(std::size_t N) {
    std::size_t P = 8;
    while (P < N)
      P <<= 1;
    return P;
  }

  std::vector<Cell> Cells;
  std::size_t Mask;
  // Producers contend on Tail; the owner walks Head. Separate lines so a
  // posting storm does not bounce the consumer's cursor.
  alignas(64) std::atomic<std::uint64_t> Tail{0};
  alignas(64) std::atomic<std::uint64_t> Head{0};
  alignas(64) SpinLock OverflowLock;
  IntrusiveList<Schedulable, ReadyQueueTag> Overflow;
  std::atomic<std::size_t> OverflowSize{0};
};

} // namespace sting

#endif // STING_CORE_POLICY_REMOTEMAILBOX_H
