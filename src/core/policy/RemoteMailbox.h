//===- core/policy/RemoteMailbox.h - Per-VP remote enqueues -----*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded MPSC mailbox, one per VP, carrying cross-VP enqueues —
/// unparks, migrations, tuple-space wakeups, enqueues from off-machine
/// threads and the preemption clock. Remote producers never touch the
/// owner's Chase-Lev deque (which tolerates exactly one writer at the
/// bottom); they post here and the owner drains at dispatch. Each ring is
/// Vyukov's bounded MPMC queue specialized to a single consumer: a
/// producer claims a cell with one CAS on Tail and publishes with one
/// release store of the cell sequence; the owner consumes with plain
/// loads plus one release store per cell.
///
/// When a ring is full — pathological fan-in to one VP — producers *chain
/// a larger ring* onto it (CAS-installed; losers free their candidate)
/// instead of serializing on a locked overflow list, so sustained overflow
/// stays lock-free: every producer keeps paying one CAS per post, just in
/// a later ring. The chain is bounded because each link doubles capacity
/// up to MaxRingCapacity. Chaining trades global FIFO for lock-freedom:
/// order holds within a ring (and across a burst drained whole), not
/// across drains — see drain().
///
/// Chained rings do not pin memory forever: once the whole overflow chain
/// has sat empty for several consecutive drains, the owner detaches it
/// into a still-visible Retired slot and frees it as soon as no producer
/// is mid-walk (the SlowPosts counter). A producer that read a ring
/// pointer can therefore always finish its post — rings move from the
/// live chain to Retired (where empty()/size()/drain() keep covering
/// them) and are only deleted after the slow-path population quiesces.
///
/// Emptiness is answered from the rings' Tail/Head cursors alone, so
/// hasReadyWork stays accurate from any thread: Tail is advanced *before*
/// the cell is published, hence a claimed-but-unpublished post already
/// reports non-empty (the no-lost-wakeup direction; the drain may
/// transiently see the unpublished cell and return short, but the VP's
/// physical processor re-polls instead of sleeping).
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_POLICY_REMOTEMAILBOX_H
#define STING_CORE_POLICY_REMOTEMAILBOX_H

#include "core/Schedulable.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sting {

/// A lock-free MPSC queue of Schedulable pointers built from a chain of
/// Vyukov rings. Any thread may post(); exactly one owner thread may
/// drain().
class RemoteMailbox {
public:
  /// Chained rings stop doubling here; a full chain keeps extending at
  /// this size, so capacity is unbounded either way.
  static constexpr std::size_t MaxRingCapacity = 1 << 16;

  explicit RemoteMailbox(std::size_t Capacity = 1024)
      : Primary(new Ring(roundUpPow2(Capacity))) {}

  RemoteMailbox(const RemoteMailbox &) = delete;
  RemoteMailbox &operator=(const RemoteMailbox &) = delete;

  ~RemoteMailbox() {
    freeChain(Primary);
    freeChain(Retired.load(std::memory_order_acquire));
  }

  /// Posts \p Item from any thread; always lock-free. When the primary
  /// ring is full the post lands in a chained (larger) ring, growing the
  /// chain on first use. \returns true when the primary-ring fast path was
  /// taken (the observability bit reported as "ring path").
  bool post(Schedulable &Item) {
    if (Primary->tryPost(Item))
      return true;
    // Slow path: about to walk (and possibly extend) the overflow chain.
    // The SlowPosts window pins every ring pointer this walk can read —
    // the owner's shrink frees a detached chain only once SlowPosts has
    // been observed at zero *after* the detach, so the chain we are about
    // to traverse cannot be deleted under us. seq_cst on the increment
    // pairs with the seq_cst detach/re-check in maybeShrink (a Dekker
    // store-load: either the owner sees our count, or we see its unlink).
    SlowPosts.fetch_add(1, std::memory_order_seq_cst);
    Ring *R = Primary;
    bool Fast = false;
    for (;;) {
      if (R->tryPost(Item)) {
        Fast = R == Primary;
        break;
      }
      // This ring is full; move to (or install) the next link. The CAS
      // publishes the fully-constructed ring, and losers delete their
      // candidate — only ever a ring no other thread has seen.
      Ring *Next = R->Next.load(std::memory_order_seq_cst);
      if (!Next) {
        std::size_t Cap = R->Cells.size() * 2;
        if (Cap > MaxRingCapacity)
          Cap = MaxRingCapacity;
        Ring *Candidate = new Ring(Cap);
        if (R->Next.compare_exchange_strong(Next, Candidate,
                                            std::memory_order_release,
                                            std::memory_order_acquire))
          Next = Candidate;
        else
          delete Candidate; // another producer won; use theirs
      }
      R = Next;
    }
    // Release: the post's publish store must be visible to an owner that
    // later observes the decremented count and frees the chain.
    SlowPosts.fetch_sub(1, std::memory_order_release);
    return Fast;
  }

  /// Owner-only: drains every currently-published item, walking the
  /// primary ring first and then each chained ring in install order.
  /// Delivery is FIFO *within each ring*; a single overflow burst drained
  /// by one call therefore comes out in post order, but order is NOT
  /// preserved across drains once a chained ring holds residue — an item
  /// stranded in a chained ring is delivered after later posts that
  /// landed in the since-drained primary. Consumers (VP dispatch) treat
  /// mailbox order as best-effort fairness, never as a correctness
  /// invariant. \returns the number of items delivered.
  template <typename Fn> std::size_t drain(Fn &&Consume) {
    std::size_t N = 0;
    for (Ring *R = Primary; R; R = R->Next.load(std::memory_order_acquire))
      N += R->drainRing(Consume);
    for (Ring *R = Retired.load(std::memory_order_acquire); R;
         R = R->Next.load(std::memory_order_acquire))
      N += R->drainRing(Consume);
    maybeShrink(Consume);
    return N;
  }

  /// True when no post is pending. Accurate from any thread: a producer
  /// advances a ring's Tail before publishing, and a full ring (the only
  /// reason to move down the chain) is by definition non-empty, so a
  /// pending item is never reported empty. Covers the retired chain too —
  /// the detach protocol publishes Retired *before* unlinking, so a
  /// straggler's post is visible through one pointer or the other at
  /// every instant (no lost-wakeup window).
  bool empty() const {
    for (Ring *R = Primary; R; R = R->Next.load(std::memory_order_acquire))
      if (R->Head.load(std::memory_order_seq_cst) !=
          R->Tail.load(std::memory_order_seq_cst))
        return false;
    for (Ring *R = Retired.load(std::memory_order_seq_cst); R;
         R = R->Next.load(std::memory_order_acquire))
      if (R->Head.load(std::memory_order_seq_cst) !=
          R->Tail.load(std::memory_order_seq_cst))
        return false;
    return true;
  }

  /// Approximate pending count (diagnostics).
  std::size_t size() const {
    std::size_t N = 0;
    for (Ring *R = Primary; R; R = R->Next.load(std::memory_order_acquire))
      N += R->pending();
    for (Ring *R = Retired.load(std::memory_order_acquire); R;
         R = R->Next.load(std::memory_order_acquire))
      N += R->pending();
    return N;
  }

  /// Capacity of the primary ring (posts beyond it chain, they never
  /// block).
  std::size_t capacity() const { return Primary->Cells.size(); }

  /// Number of rings still reachable (live chain + retired, 1 after a
  /// completed shrink).
  std::size_t ringCount() const {
    std::size_t N = 0;
    for (Ring *R = Primary; R; R = R->Next.load(std::memory_order_acquire))
      ++N;
    N += retiredRingCount();
    return N;
  }

  /// Rings detached but not yet freed (diagnostics/tests).
  std::size_t retiredRingCount() const {
    std::size_t N = 0;
    for (Ring *R = Retired.load(std::memory_order_acquire); R;
         R = R->Next.load(std::memory_order_acquire))
      ++N;
    return N;
  }

private:
  struct Cell {
    std::atomic<std::uint64_t> Seq;
    Schedulable *Item = nullptr;
  };

  struct Ring {
    explicit Ring(std::size_t Capacity) : Cells(Capacity), Mask(Capacity - 1) {
      for (std::size_t I = 0; I != Cells.size(); ++I)
        Cells[I].Seq.store(I, std::memory_order_relaxed);
    }

    /// One-CAS Vyukov post. \returns false when this ring is full.
    bool tryPost(Schedulable &Item) {
      std::uint64_t T = Tail.load(std::memory_order_relaxed);
      for (;;) {
        Cell &C = Cells[T & Mask];
        std::uint64_t Seq = C.Seq.load(std::memory_order_acquire);
        std::int64_t Dif =
            static_cast<std::int64_t>(Seq) - static_cast<std::int64_t>(T);
        if (Dif == 0) {
          if (Tail.compare_exchange_weak(T, T + 1, std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
            C.Item = &Item;
            C.Seq.store(T + 1, std::memory_order_release);
            return true;
          }
          // CAS failure reloaded T; retry with the fresh value.
        } else if (Dif < 0) {
          return false; // full
        } else {
          T = Tail.load(std::memory_order_relaxed);
        }
      }
    }

    /// Owner-only drain of this ring's published items.
    template <typename Fn> std::size_t drainRing(Fn &&Consume) {
      std::size_t N = 0;
      std::uint64_t H = Head.load(std::memory_order_relaxed);
      for (;;) {
        Cell &C = Cells[H & Mask];
        std::uint64_t Seq = C.Seq.load(std::memory_order_acquire);
        if (Seq != H + 1)
          break; // unpublished (or empty) — stop, do not spin on a poster
        Schedulable *Item = C.Item;
        C.Seq.store(H + Cells.size(), std::memory_order_release);
        ++H;
        Head.store(H, std::memory_order_release);
        Consume(*Item);
        ++N;
      }
      return N;
    }

    /// Approximate occupancy (diagnostics).
    std::size_t pending() const {
      std::uint64_t H = Head.load(std::memory_order_acquire);
      std::uint64_t T = Tail.load(std::memory_order_acquire);
      return static_cast<std::size_t>(T - H);
    }

    std::vector<Cell> Cells;
    std::size_t Mask;
    // Producers contend on Tail; the owner walks Head. Separate lines so a
    // posting storm does not bounce the consumer's cursor.
    alignas(64) std::atomic<std::uint64_t> Tail{0};
    alignas(64) std::atomic<std::uint64_t> Head{0};
    alignas(64) std::atomic<Ring *> Next{nullptr};
  };

  static std::size_t roundUpPow2(std::size_t N) {
    std::size_t P = 8;
    while (P < N)
      P <<= 1;
    return P;
  }

  static void freeChain(Ring *R) {
    while (R) {
      Ring *Next = R->Next.load(std::memory_order_acquire);
      delete R;
      R = Next;
    }
  }

  /// Owner-only, called at the end of every drain. Two independent
  /// phases of the shrink protocol:
  ///
  /// Phase 2 — free a previously detached chain once it is provably
  /// unreachable: the detach's seq_cst unlink and the producers' seq_cst
  /// SlowPosts increment form a Dekker store-load pair, so a SlowPosts
  /// of zero read *after* the unlink means every producer that could
  /// have read a detached ring pointer has finished its post. Each ring
  /// is drained one last time on the way out — a straggler may have
  /// landed a post in the Retired window — so no item is ever freed
  /// with its ring.
  ///
  /// Phase 1 — detach the overflow chain after it has sat empty for
  /// QuiescentDrains consecutive drains (hysteresis so a steady overflow
  /// load does not thrash allocate/free). Publish order is the safety
  /// hinge: Retired is stored *before* Primary->Next is cleared, so at
  /// every instant the chain is visible through at least one of the two
  /// pointers — empty()/size()/drain() never transiently lose a posted
  /// item (the no-lost-wakeup direction of hasReadyWork).
  template <typename Fn> void maybeShrink(Fn &&Consume) {
    if (Ring *Detached = Retired.load(std::memory_order_relaxed)) {
      if (SlowPosts.load(std::memory_order_seq_cst) != 0)
        return; // a producer may still hold a detached ring pointer
      for (Ring *R = Detached; R;) {
        Ring *Next = R->Next.load(std::memory_order_acquire);
        R->drainRing(Consume); // straggler posts from the detach window
        delete R;
        R = Next;
      }
      Retired.store(nullptr, std::memory_order_release);
      return; // one phase per drain keeps the tail of drain() cheap
    }
    Ring *Chain = Primary->Next.load(std::memory_order_acquire);
    if (!Chain) {
      EmptyChainDrains = 0;
      return;
    }
    for (Ring *R = Chain; R; R = R->Next.load(std::memory_order_acquire))
      if (R->Head.load(std::memory_order_seq_cst) !=
          R->Tail.load(std::memory_order_seq_cst)) {
        EmptyChainDrains = 0;
        return;
      }
    if (++EmptyChainDrains < QuiescentDrains)
      return;
    EmptyChainDrains = 0;
    // Detach: publish to Retired first, then unlink (seq_cst — the
    // Dekker partner of post()'s SlowPosts increment).
    Retired.store(Chain, std::memory_order_release);
    Primary->Next.store(nullptr, std::memory_order_seq_cst);
  }

  Ring *const Primary;
  /// Detached-but-not-yet-freed overflow chain (phase 2 input).
  std::atomic<Ring *> Retired{nullptr};
  /// Producers mid-walk on the overflow chain; seq_cst Dekker partner of
  /// the detach unlink. Own line: bumped only on the overflow slow path,
  /// and sharing it with Primary would dirty the fast path's line.
  alignas(64) std::atomic<std::size_t> SlowPosts{0};
  /// Consecutive drains that found the whole overflow chain empty.
  unsigned EmptyChainDrains = 0;
  static constexpr unsigned QuiescentDrains = 8;
};

} // namespace sting

#endif // STING_CORE_POLICY_REMOTEMAILBOX_H
