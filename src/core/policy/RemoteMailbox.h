//===- core/policy/RemoteMailbox.h - Per-VP remote enqueues -----*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded MPSC mailbox, one per VP, carrying cross-VP enqueues —
/// unparks, migrations, tuple-space wakeups, enqueues from off-machine
/// threads and the preemption clock. Remote producers never touch the
/// owner's Chase-Lev deque (which tolerates exactly one writer at the
/// bottom); they post here and the owner drains at dispatch. Each ring is
/// Vyukov's bounded MPMC queue specialized to a single consumer: a
/// producer claims a cell with one CAS on Tail and publishes with one
/// release store of the cell sequence; the owner consumes with plain
/// loads plus one release store per cell.
///
/// When a ring is full — pathological fan-in to one VP — producers *chain
/// a larger ring* onto it (CAS-installed; losers free their candidate)
/// instead of serializing on a locked overflow list, so sustained overflow
/// stays lock-free: every producer keeps paying one CAS per post, just in
/// a later ring. Rings are never freed before the mailbox dies (the same
/// retirement rule as WorkStealingDeque's grown rings), so a producer that
/// read a ring pointer can always finish its post; the chain is bounded
/// because each link doubles capacity up to MaxRingCapacity. Chaining
/// trades global FIFO for lock-freedom: order holds within a ring (and
/// across a burst drained whole), not across drains — see drain().
///
/// Emptiness is answered from the rings' Tail/Head cursors alone, so
/// hasReadyWork stays accurate from any thread: Tail is advanced *before*
/// the cell is published, hence a claimed-but-unpublished post already
/// reports non-empty (the no-lost-wakeup direction; the drain may
/// transiently see the unpublished cell and return short, but the VP's
/// physical processor re-polls instead of sleeping).
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_POLICY_REMOTEMAILBOX_H
#define STING_CORE_POLICY_REMOTEMAILBOX_H

#include "core/Schedulable.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sting {

/// A lock-free MPSC queue of Schedulable pointers built from a chain of
/// Vyukov rings. Any thread may post(); exactly one owner thread may
/// drain().
class RemoteMailbox {
public:
  /// Chained rings stop doubling here; a full chain keeps extending at
  /// this size, so capacity is unbounded either way.
  static constexpr std::size_t MaxRingCapacity = 1 << 16;

  explicit RemoteMailbox(std::size_t Capacity = 1024)
      : Primary(new Ring(roundUpPow2(Capacity))) {}

  RemoteMailbox(const RemoteMailbox &) = delete;
  RemoteMailbox &operator=(const RemoteMailbox &) = delete;

  ~RemoteMailbox() {
    Ring *R = Primary;
    while (R) {
      Ring *Next = R->Next.load(std::memory_order_acquire);
      delete R;
      R = Next;
    }
  }

  /// Posts \p Item from any thread; always lock-free. When the primary
  /// ring is full the post lands in a chained (larger) ring, growing the
  /// chain on first use. \returns true when the primary-ring fast path was
  /// taken (the observability bit reported as "ring path").
  bool post(Schedulable &Item) {
    Ring *R = Primary;
    for (;;) {
      if (R->tryPost(Item))
        return R == Primary;
      // This ring is full; move to (or install) the next link. The CAS
      // publishes the fully-constructed ring, and losers delete their
      // candidate — only ever a ring no other thread has seen.
      Ring *Next = R->Next.load(std::memory_order_acquire);
      if (!Next) {
        std::size_t Cap = R->Cells.size() * 2;
        if (Cap > MaxRingCapacity)
          Cap = MaxRingCapacity;
        Ring *Candidate = new Ring(Cap);
        if (R->Next.compare_exchange_strong(Next, Candidate,
                                            std::memory_order_release,
                                            std::memory_order_acquire))
          Next = Candidate;
        else
          delete Candidate; // another producer won; use theirs
      }
      R = Next;
    }
  }

  /// Owner-only: drains every currently-published item, walking the
  /// primary ring first and then each chained ring in install order.
  /// Delivery is FIFO *within each ring*; a single overflow burst drained
  /// by one call therefore comes out in post order, but order is NOT
  /// preserved across drains once a chained ring holds residue — an item
  /// stranded in a chained ring is delivered after later posts that
  /// landed in the since-drained primary. Consumers (VP dispatch) treat
  /// mailbox order as best-effort fairness, never as a correctness
  /// invariant. \returns the number of items delivered.
  template <typename Fn> std::size_t drain(Fn &&Consume) {
    std::size_t N = 0;
    for (Ring *R = Primary; R; R = R->Next.load(std::memory_order_acquire))
      N += R->drainRing(Consume);
    return N;
  }

  /// True when no post is pending. Accurate from any thread: a producer
  /// advances a ring's Tail before publishing, and a full ring (the only
  /// reason to move down the chain) is by definition non-empty, so a
  /// pending item is never reported empty.
  bool empty() const {
    for (Ring *R = Primary; R; R = R->Next.load(std::memory_order_acquire))
      if (R->Head.load(std::memory_order_seq_cst) !=
          R->Tail.load(std::memory_order_seq_cst))
        return false;
    return true;
  }

  /// Approximate pending count (diagnostics).
  std::size_t size() const {
    std::size_t N = 0;
    for (Ring *R = Primary; R; R = R->Next.load(std::memory_order_acquire)) {
      std::uint64_t H = R->Head.load(std::memory_order_acquire);
      std::uint64_t T = R->Tail.load(std::memory_order_acquire);
      N += static_cast<std::size_t>(T - H);
    }
    return N;
  }

  /// Capacity of the primary ring (posts beyond it chain, they never
  /// block).
  std::size_t capacity() const { return Primary->Cells.size(); }

  /// Number of rings in the chain (1 until the first overflow).
  std::size_t ringCount() const {
    std::size_t N = 0;
    for (Ring *R = Primary; R; R = R->Next.load(std::memory_order_acquire))
      ++N;
    return N;
  }

private:
  struct Cell {
    std::atomic<std::uint64_t> Seq;
    Schedulable *Item = nullptr;
  };

  struct Ring {
    explicit Ring(std::size_t Capacity) : Cells(Capacity), Mask(Capacity - 1) {
      for (std::size_t I = 0; I != Cells.size(); ++I)
        Cells[I].Seq.store(I, std::memory_order_relaxed);
    }

    /// One-CAS Vyukov post. \returns false when this ring is full.
    bool tryPost(Schedulable &Item) {
      std::uint64_t T = Tail.load(std::memory_order_relaxed);
      for (;;) {
        Cell &C = Cells[T & Mask];
        std::uint64_t Seq = C.Seq.load(std::memory_order_acquire);
        std::int64_t Dif =
            static_cast<std::int64_t>(Seq) - static_cast<std::int64_t>(T);
        if (Dif == 0) {
          if (Tail.compare_exchange_weak(T, T + 1, std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
            C.Item = &Item;
            C.Seq.store(T + 1, std::memory_order_release);
            return true;
          }
          // CAS failure reloaded T; retry with the fresh value.
        } else if (Dif < 0) {
          return false; // full
        } else {
          T = Tail.load(std::memory_order_relaxed);
        }
      }
    }

    /// Owner-only drain of this ring's published items.
    template <typename Fn> std::size_t drainRing(Fn &&Consume) {
      std::size_t N = 0;
      std::uint64_t H = Head.load(std::memory_order_relaxed);
      for (;;) {
        Cell &C = Cells[H & Mask];
        std::uint64_t Seq = C.Seq.load(std::memory_order_acquire);
        if (Seq != H + 1)
          break; // unpublished (or empty) — stop, do not spin on a poster
        Schedulable *Item = C.Item;
        C.Seq.store(H + Cells.size(), std::memory_order_release);
        ++H;
        Head.store(H, std::memory_order_release);
        Consume(*Item);
        ++N;
      }
      return N;
    }

    std::vector<Cell> Cells;
    std::size_t Mask;
    // Producers contend on Tail; the owner walks Head. Separate lines so a
    // posting storm does not bounce the consumer's cursor.
    alignas(64) std::atomic<std::uint64_t> Tail{0};
    alignas(64) std::atomic<std::uint64_t> Head{0};
    alignas(64) std::atomic<Ring *> Next{nullptr};
  };

  static std::size_t roundUpPow2(std::size_t N) {
    std::size_t P = 8;
    while (P < N)
      P <<= 1;
    return P;
  }

  Ring *const Primary;
};

} // namespace sting

#endif // STING_CORE_POLICY_REMOTEMAILBOX_H
