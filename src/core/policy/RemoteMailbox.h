//===- core/policy/RemoteMailbox.h - Per-VP remote enqueues -----*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded MPSC mailbox, one per VP, carrying cross-VP enqueues —
/// unparks, migrations, tuple-space wakeups, enqueues from off-machine
/// threads and the preemption clock. Remote producers never touch the
/// owner's Chase-Lev deque (which tolerates exactly one writer at the
/// bottom); they post here and the owner drains at dispatch. Each ring is
/// Vyukov's bounded MPMC queue specialized to a single consumer: a
/// producer claims a cell with one CAS on Tail and publishes with one
/// release store of the cell sequence; the owner consumes with plain
/// loads plus one release store per cell.
///
/// When a ring is full — pathological fan-in to one VP — producers *chain
/// a larger ring* onto it (CAS-installed; losers free their candidate)
/// instead of serializing on a locked overflow list, so sustained overflow
/// stays lock-free: every producer keeps paying one CAS per post, just in
/// a later ring. The chain is bounded because each link doubles capacity
/// up to MaxRingCapacity. Chaining trades global FIFO for lock-freedom:
/// order holds within a ring (and across a burst drained whole), not
/// across drains — see drain().
///
/// Chained rings do not pin memory forever: once the whole overflow chain
/// has sat empty for several consecutive drains, the owner detaches it
/// into a still-visible Retired slot, later unpublishes it, and frees it
/// only once no reader can still hold a pointer into it (the ChainPins
/// counter, bumped by slow-path producers *and* by cross-thread observers
/// like empty()/size(), which are read by stealing processors and the
/// watchdog). A pinned walker can therefore always finish — rings move
/// from the live chain to Retired (where empty()/size()/drain() keep
/// covering them) and are only deleted after the pinned population
/// quiesces twice: once before the unpublish (so no straggler post lands
/// in an invisible ring) and once after (so no observer that read the
/// Retired pointer is still dereferencing it).
///
/// Emptiness is answered from the rings' Tail/Head cursors alone, so
/// hasReadyWork stays accurate from any thread: Tail is advanced *before*
/// the cell is published, hence a claimed-but-unpublished post already
/// reports non-empty (the no-lost-wakeup direction; the drain may
/// transiently see the unpublished cell and return short, but the VP's
/// physical processor re-polls instead of sleeping).
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_POLICY_REMOTEMAILBOX_H
#define STING_CORE_POLICY_REMOTEMAILBOX_H

#include "core/Schedulable.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sting {

/// A lock-free MPSC queue of Schedulable pointers built from a chain of
/// Vyukov rings. Any thread may post(); exactly one owner thread may
/// drain().
class RemoteMailbox {
public:
  /// Chained rings stop doubling here; a full chain keeps extending at
  /// this size, so capacity is unbounded either way.
  static constexpr std::size_t MaxRingCapacity = 1 << 16;

  explicit RemoteMailbox(std::size_t Capacity = 1024)
      : Primary(new Ring(roundUpPow2(Capacity))) {}

  RemoteMailbox(const RemoteMailbox &) = delete;
  RemoteMailbox &operator=(const RemoteMailbox &) = delete;

  ~RemoteMailbox() {
    freeChain(Primary);
    freeChain(Retired.load(std::memory_order_acquire));
    freeChain(Doomed);
  }

  /// Posts \p Item from any thread; always lock-free. When the primary
  /// ring is full the post lands in a chained (larger) ring, growing the
  /// chain on first use. \returns true when the primary-ring fast path was
  /// taken (the observability bit reported as "ring path").
  bool post(Schedulable &Item) {
    if (Primary->tryPost(Item))
      return true;
    // Slow path: about to walk (and possibly extend) the overflow chain.
    // The ChainPins window pins every ring pointer this walk can read —
    // the owner's shrink frees a detached chain only once ChainPins has
    // been observed at zero *after* the detach, so the chain we are about
    // to traverse cannot be deleted under us. seq_cst on the increment
    // pairs with the seq_cst detach/re-check in maybeShrink (a Dekker
    // store-load: either the owner sees our count, or we see its unlink).
    ChainPins.fetch_add(1, std::memory_order_seq_cst);
    Ring *R = Primary;
    bool Fast = false;
    for (;;) {
      if (R->tryPost(Item)) {
        Fast = R == Primary;
        break;
      }
      // This ring is full; move to (or install) the next link. The CAS
      // publishes the fully-constructed ring, and losers delete their
      // candidate — only ever a ring no other thread has seen.
      Ring *Next = R->Next.load(std::memory_order_seq_cst);
      if (!Next) {
        std::size_t Cap = R->Cells.size() * 2;
        if (Cap > MaxRingCapacity)
          Cap = MaxRingCapacity;
        Ring *Candidate = new Ring(Cap);
        if (R->Next.compare_exchange_strong(Next, Candidate,
                                            std::memory_order_release,
                                            std::memory_order_acquire))
          Next = Candidate;
        else
          delete Candidate; // another producer won; use theirs
      }
      R = Next;
    }
    // Release: the post's publish store must be visible to an owner that
    // later observes the decremented count and frees the chain.
    ChainPins.fetch_sub(1, std::memory_order_release);
    return Fast;
  }

  /// Owner-only: drains every currently-published item, walking the
  /// primary ring first and then each chained ring in install order.
  /// Delivery is FIFO *within each ring*; a single overflow burst drained
  /// by one call therefore comes out in post order, but order is NOT
  /// preserved across drains once a chained ring holds residue — an item
  /// stranded in a chained ring is delivered after later posts that
  /// landed in the since-drained primary. Consumers (VP dispatch) treat
  /// mailbox order as best-effort fairness, never as a correctness
  /// invariant. \returns the number of items delivered.
  template <typename Fn> std::size_t drain(Fn &&Consume) {
    std::size_t N = 0;
    for (Ring *R = Primary; R; R = R->Next.load(std::memory_order_acquire))
      N += R->drainRing(Consume);
    for (Ring *R = Retired.load(std::memory_order_acquire); R;
         R = R->Next.load(std::memory_order_acquire))
      N += R->drainRing(Consume);
    maybeShrink(Consume);
    return N;
  }

  /// True when no post is pending. Accurate from any thread: a producer
  /// advances a ring's Tail before publishing, and a full ring (the only
  /// reason to move down the chain) is by definition non-empty, so a
  /// pending item is never reported empty. Covers the retired chain too —
  /// the detach protocol publishes Retired *before* unlinking, and
  /// residue in an unpublished (doomed) chain is delivered by the owner
  /// in the same drain that unpublishes it, so a pending item is visible
  /// through some pointer (or already being delivered) at every instant.
  /// The walk runs under a ChainPins pin (see maybeShrink) so the owner
  /// never frees a ring this thread is still dereferencing — except on
  /// the pin-free fast path: with no chained and no retired ring, the
  /// only ring to inspect is the never-freed primary, and this is the
  /// hot case (hasReadyWork polls here from the dispatch loop). Read
  /// order matters for the fast path: Next before Retired, so a
  /// mid-detach chain (Retired published, Next not yet cleared) is seen
  /// through one pointer or the other.
  bool empty() const {
    Ring *Next = Primary->Next.load(std::memory_order_seq_cst);
    if (!Next && !Retired.load(std::memory_order_seq_cst))
      return Primary->Head.load(std::memory_order_seq_cst) ==
             Primary->Tail.load(std::memory_order_seq_cst);
    PinnedWalk Pin(ChainPins);
    for (Ring *R = Primary; R; R = R->Next.load(std::memory_order_seq_cst))
      if (R->Head.load(std::memory_order_seq_cst) !=
          R->Tail.load(std::memory_order_seq_cst))
        return false;
    for (Ring *R = Retired.load(std::memory_order_seq_cst); R;
         R = R->Next.load(std::memory_order_seq_cst))
      if (R->Head.load(std::memory_order_seq_cst) !=
          R->Tail.load(std::memory_order_seq_cst))
        return false;
    return true;
  }

  /// Approximate pending count (diagnostics).
  std::size_t size() const {
    if (!Primary->Next.load(std::memory_order_seq_cst) &&
        !Retired.load(std::memory_order_seq_cst))
      return Primary->pending(); // fast path: only the never-freed ring
    PinnedWalk Pin(ChainPins);
    std::size_t N = 0;
    for (Ring *R = Primary; R; R = R->Next.load(std::memory_order_seq_cst))
      N += R->pending();
    for (Ring *R = Retired.load(std::memory_order_seq_cst); R;
         R = R->Next.load(std::memory_order_seq_cst))
      N += R->pending();
    return N;
  }

  /// Capacity of the primary ring (posts beyond it chain, they never
  /// block).
  std::size_t capacity() const { return Primary->Cells.size(); }

  /// Number of rings still reachable (live chain + retired, 1 after a
  /// completed shrink; an unpublished doomed chain awaiting its free is
  /// owner-private and not counted).
  std::size_t ringCount() const {
    PinnedWalk Pin(ChainPins);
    std::size_t N = 0;
    for (Ring *R = Primary; R; R = R->Next.load(std::memory_order_seq_cst))
      ++N;
    for (Ring *R = Retired.load(std::memory_order_seq_cst); R;
         R = R->Next.load(std::memory_order_seq_cst))
      ++N;
    return N;
  }

  /// Rings detached but still published via Retired (diagnostics/tests).
  std::size_t retiredRingCount() const {
    PinnedWalk Pin(ChainPins);
    std::size_t N = 0;
    for (Ring *R = Retired.load(std::memory_order_seq_cst); R;
         R = R->Next.load(std::memory_order_seq_cst))
      ++N;
    return N;
  }

private:
  struct Cell {
    std::atomic<std::uint64_t> Seq;
    Schedulable *Item = nullptr;
  };

  struct Ring {
    explicit Ring(std::size_t Capacity) : Cells(Capacity), Mask(Capacity - 1) {
      for (std::size_t I = 0; I != Cells.size(); ++I)
        Cells[I].Seq.store(I, std::memory_order_relaxed);
    }

    /// One-CAS Vyukov post. \returns false when this ring is full.
    bool tryPost(Schedulable &Item) {
      std::uint64_t T = Tail.load(std::memory_order_relaxed);
      for (;;) {
        Cell &C = Cells[T & Mask];
        std::uint64_t Seq = C.Seq.load(std::memory_order_acquire);
        std::int64_t Dif =
            static_cast<std::int64_t>(Seq) - static_cast<std::int64_t>(T);
        if (Dif == 0) {
          if (Tail.compare_exchange_weak(T, T + 1, std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
            C.Item = &Item;
            C.Seq.store(T + 1, std::memory_order_release);
            return true;
          }
          // CAS failure reloaded T; retry with the fresh value.
        } else if (Dif < 0) {
          return false; // full
        } else {
          T = Tail.load(std::memory_order_relaxed);
        }
      }
    }

    /// Owner-only drain of this ring's published items.
    template <typename Fn> std::size_t drainRing(Fn &&Consume) {
      std::size_t N = 0;
      std::uint64_t H = Head.load(std::memory_order_relaxed);
      for (;;) {
        Cell &C = Cells[H & Mask];
        std::uint64_t Seq = C.Seq.load(std::memory_order_acquire);
        if (Seq != H + 1)
          break; // unpublished (or empty) — stop, do not spin on a poster
        Schedulable *Item = C.Item;
        C.Seq.store(H + Cells.size(), std::memory_order_release);
        ++H;
        Head.store(H, std::memory_order_release);
        Consume(*Item);
        ++N;
      }
      return N;
    }

    /// Approximate occupancy (diagnostics).
    std::size_t pending() const {
      std::uint64_t H = Head.load(std::memory_order_acquire);
      std::uint64_t T = Tail.load(std::memory_order_acquire);
      return static_cast<std::size_t>(T - H);
    }

    std::vector<Cell> Cells;
    std::size_t Mask;
    // Producers contend on Tail; the owner walks Head. Separate lines so a
    // posting storm does not bounce the consumer's cursor.
    alignas(64) std::atomic<std::uint64_t> Tail{0};
    alignas(64) std::atomic<std::uint64_t> Head{0};
    alignas(64) std::atomic<Ring *> Next{nullptr};
  };

  static std::size_t roundUpPow2(std::size_t N) {
    std::size_t P = 8;
    while (P < N)
      P <<= 1;
    return P;
  }

  static void freeChain(Ring *R) {
    while (R) {
      Ring *Next = R->Next.load(std::memory_order_acquire);
      delete R;
      R = Next;
    }
  }

  /// Owner-only, called at the end of every drain. Three independent
  /// phases of the shrink protocol, one per drain:
  ///
  /// Phase 3 — free the unpublished (doomed) chain once it is provably
  /// untouchable: the phase-2 seq_cst unpublish of Retired and a
  /// reader's seq_cst ChainPins increment form a Dekker store-load pair,
  /// so a ChainPins of zero read *after* the unpublish means every
  /// reader that could have loaded a doomed ring pointer — through
  /// Retired or through a pre-unlink Primary->Next — has finished its
  /// walk, and every later reader sees nullptr through both pointers.
  ///
  /// Phase 2 — unpublish a previously detached chain: a ChainPins of
  /// zero read after the detach's unlink means no straggler producer is
  /// mid-walk, so every post that could land in a detached ring is
  /// published — deliver that residue here, in the same drain, so
  /// clearing Retired never hides a pending item (the no-lost-wakeup
  /// direction of hasReadyWork). The chain then parks owner-privately in
  /// Doomed until phase 3; it can never gain another item.
  ///
  /// Phase 1 — detach the overflow chain after it has sat empty for
  /// QuiescentDrains consecutive drains (hysteresis so a steady overflow
  /// load does not thrash allocate/free). Publish order is the safety
  /// hinge: Retired is stored *before* Primary->Next is cleared, so at
  /// every instant the chain is visible through at least one of the two
  /// pointers — empty()/size()/drain() never transiently lose a posted
  /// item.
  template <typename Fn> void maybeShrink(Fn &&Consume) {
    if (Doomed) {
      if (ChainPins.load(std::memory_order_seq_cst) != 0)
        return; // a reader admitted before the unpublish may still walk it
      freeChain(Doomed);
      Doomed = nullptr;
      return; // one phase per drain keeps the tail of drain() cheap
    }
    if (Ring *Detached = Retired.load(std::memory_order_relaxed)) {
      if (ChainPins.load(std::memory_order_seq_cst) != 0)
        return; // a straggler may still be posting into a detached ring
      // Unpublish before delivering residue: readers from here on see
      // nullptr (Dekker with their pin), and the items a straggler
      // landed in the Retired window go out through this very drain.
      Retired.store(nullptr, std::memory_order_seq_cst);
      for (Ring *R = Detached; R; R = R->Next.load(std::memory_order_acquire))
        R->drainRing(Consume);
      Doomed = Detached;
      return;
    }
    Ring *Chain = Primary->Next.load(std::memory_order_acquire);
    if (!Chain) {
      EmptyChainDrains = 0;
      return;
    }
    for (Ring *R = Chain; R; R = R->Next.load(std::memory_order_acquire))
      if (R->Head.load(std::memory_order_seq_cst) !=
          R->Tail.load(std::memory_order_seq_cst)) {
        EmptyChainDrains = 0;
        return;
      }
    if (++EmptyChainDrains < QuiescentDrains)
      return;
    EmptyChainDrains = 0;
    // Detach: publish to Retired first, then unlink (seq_cst — the
    // Dekker partner of the readers' ChainPins increment).
    Retired.store(Chain, std::memory_order_release);
    Primary->Next.store(nullptr, std::memory_order_seq_cst);
  }

  /// RAII pin for any cross-thread walk of the overflow/retired chains.
  /// seq_cst on the increment is the Dekker partner of maybeShrink's
  /// unlink/unpublish stores: either the owner sees the pin and defers
  /// the free, or the pinned walk sees the cleared pointer.
  struct PinnedWalk {
    explicit PinnedWalk(std::atomic<std::size_t> &Pins) : Pins(Pins) {
      Pins.fetch_add(1, std::memory_order_seq_cst);
    }
    ~PinnedWalk() { Pins.fetch_sub(1, std::memory_order_release); }
    PinnedWalk(const PinnedWalk &) = delete;
    PinnedWalk &operator=(const PinnedWalk &) = delete;
    std::atomic<std::size_t> &Pins;
  };

  Ring *const Primary;
  /// Detached-but-still-published overflow chain (phase 2 input).
  std::atomic<Ring *> Retired{nullptr};
  /// Unpublished chain awaiting its final quiescent window (phase 3
  /// input). Owner-only; never read by other threads.
  Ring *Doomed = nullptr;
  /// Readers mid-walk on the overflow/retired chains: slow-path
  /// producers plus cross-thread observers (empty/size/ringCount).
  /// seq_cst Dekker partner of the detach unlink and the phase-2
  /// unpublish. Own line: bumped off the post fast path, and sharing it
  /// with Primary would dirty the fast path's line. Mutable so const
  /// observers can pin.
  alignas(64) mutable std::atomic<std::size_t> ChainPins{0};
  /// Consecutive drains that found the whole overflow chain empty.
  unsigned EmptyChainDrains = 0;
  static constexpr unsigned QuiescentDrains = 8;
};

} // namespace sting

#endif // STING_CORE_POLICY_REMOTEMAILBOX_H
