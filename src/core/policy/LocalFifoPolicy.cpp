//===- core/policy/LocalFifoPolicy.cpp - Per-VP FIFO policy ----------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// The default policy: one FIFO ready queue per VP, round-robin placement of
// new threads across the machine. With preemption enabled this is the
// "round-robin preemptive scheduler" the paper recommends for master/slave
// and worker-farm fairness (sections 3.3, 4.2.2). No migration.
//
// Backed by the lock-free fast path (DESIGN.md section 8): the owning VP
// pushes at the bottom of a Chase-Lev deque and pops FIFO from the top
// (one uncontended CAS); remote enqueuers post to an MPSC mailbox the
// owner drains at dispatch, preserving arrival order.
//
//===----------------------------------------------------------------------===//

#include "core/PolicyManager.h"

#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "core/policy/FastPath.h"

#include <memory>

namespace sting {

namespace {

class LocalFifoPolicy final : public PolicyManager {
public:
  LocalFifoPolicy(VirtualMachine &Vm,
                  std::shared_ptr<std::atomic<unsigned>> PlacementCursor)
      : Vm(&Vm), PlacementCursor(std::move(PlacementCursor)) {}

  Schedulable *getNextThread(VirtualProcessor &Vp) override {
    // Mailbox items entered the machine at their post time; appending them
    // at the bottom keeps global FIFO order within this VP.
    fastpath::drainMailbox(Mailbox, Vp,
                          [&](Schedulable &Item) { Deque.pushBottom(Item); });
    return Deque.takeTop(); // FIFO
  }

  void enqueueThread(Schedulable &Item, VirtualProcessor &Vp,
                     EnqueueReason Reason) override {
    if (!fastpath::onOwner(Vp))
      return fastpath::postRemote(Mailbox, Item, Vp, Reason);
    // Read the id before publishing: once the item is visible in a queue
    // another VP (dispatch or steal) may pop and recycle it concurrently.
    const std::uint64_t TraceId = Item.schedThreadId();
    Deque.pushBottom(Item);
    STING_TRACE_EVENT(Enqueue, TraceId,
                      obs::enqueuePayload(Deque.size(),
                                          static_cast<std::uint8_t>(Reason)));
  }

  bool hasReadyWork(const VirtualProcessor &) const override {
    return !Deque.empty() || !Mailbox.empty();
  }

  void loadDepths(const VirtualProcessor &, std::uint64_t &ReadyDepth,
                  std::uint64_t &MailboxDepth) const override {
    ReadyDepth = Deque.size();
    MailboxDepth = Mailbox.size();
  }

  VirtualProcessor &selectVpForNewThread(VirtualProcessor &) override {
    unsigned I =
        PlacementCursor->fetch_add(1, std::memory_order_relaxed);
    return Vm->vp(I % Vm->numVps());
  }

  void drain(VirtualProcessor &,
             const std::function<void(Schedulable &)> &Drop) override {
    // Runs single-threaded after the PPs have joined.
    Mailbox.drain(Drop);
    while (Schedulable *Item = Deque.takeTop())
      Drop(*Item);
  }

private:
  VirtualMachine *Vm;
  std::shared_ptr<std::atomic<unsigned>> PlacementCursor;
  WorkStealingDeque Deque;
  RemoteMailbox Mailbox;
};

} // namespace

PolicyFactory makeLocalFifoPolicy() {
  auto Cursor = std::make_shared<std::atomic<unsigned>>(0);
  return [Cursor](VirtualMachine &Vm, unsigned) {
    return std::make_unique<LocalFifoPolicy>(Vm, Cursor);
  };
}

} // namespace sting
