//===- core/policy/LocalFifoPolicy.cpp - Per-VP FIFO policy ----------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// The default policy: one FIFO ready queue per VP, round-robin placement of
// new threads across the machine. With preemption enabled this is the
// "round-robin preemptive scheduler" the paper recommends for master/slave
// and worker-farm fairness (sections 3.3, 4.2.2). No migration.
//
//===----------------------------------------------------------------------===//

#include "core/PolicyManager.h"

#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "core/policy/ReadyQueue.h"

#include <memory>

namespace sting {

namespace {

class LocalFifoPolicy final : public PolicyManager {
public:
  LocalFifoPolicy(VirtualMachine &Vm,
                  std::shared_ptr<std::atomic<unsigned>> PlacementCursor)
      : Vm(&Vm), PlacementCursor(std::move(PlacementCursor)) {}

  Schedulable *getNextThread(VirtualProcessor &) override {
    return Queue.popFront();
  }

  void enqueueThread(Schedulable &Item, VirtualProcessor &,
                     EnqueueReason Reason) override {
    // Read the id before publishing: once the item is visible in a queue
    // another VP (dispatch or steal) may pop and recycle it concurrently.
    const std::uint64_t TraceId = Item.schedThreadId();
    Queue.pushBack(Item);
    STING_TRACE_EVENT(Enqueue, TraceId,
                      obs::enqueuePayload(Queue.size(),
                                          static_cast<std::uint8_t>(Reason)));
  }

  bool hasReadyWork(const VirtualProcessor &) const override {
    return !Queue.empty();
  }

  VirtualProcessor &selectVpForNewThread(VirtualProcessor &) override {
    unsigned I =
        PlacementCursor->fetch_add(1, std::memory_order_relaxed);
    return Vm->vp(I % Vm->numVps());
  }

  void drain(VirtualProcessor &,
             const std::function<void(Schedulable &)> &Drop) override {
    Queue.drainInto(Drop);
  }

private:
  VirtualMachine *Vm;
  std::shared_ptr<std::atomic<unsigned>> PlacementCursor;
  ReadyQueue Queue;
};

} // namespace

PolicyFactory makeLocalFifoPolicy() {
  auto Cursor = std::make_shared<std::atomic<unsigned>>(0);
  return [Cursor](VirtualMachine &Vm, unsigned) {
    return std::make_unique<LocalFifoPolicy>(Vm, Cursor);
  };
}

} // namespace sting
