//===- core/policy/GlobalFifoPolicy.cpp - Machine-global FIFO --------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// One shared, locked ready queue for the whole machine. "Global queues
// imply contention among policy managers whenever they need to execute a
// new thread, but such an implementation is useful in implementing many
// kinds of parallel algorithms", e.g. master/slave worker pools of
// long-lived threads that rarely block (paper section 3.3).
//
//===----------------------------------------------------------------------===//

#include "core/PolicyManager.h"

#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "core/policy/ReadyQueue.h"

#include <memory>

namespace sting {

namespace {

class GlobalFifoPolicy final : public PolicyManager {
public:
  explicit GlobalFifoPolicy(std::shared_ptr<ReadyQueue> Shared)
      : Queue(std::move(Shared)) {}

  Schedulable *getNextThread(VirtualProcessor &) override {
    return Queue->popFront();
  }

  void enqueueThread(Schedulable &Item, VirtualProcessor &,
                     EnqueueReason Reason) override {
    // Read the id before publishing: once the item is visible in a queue
    // another VP (dispatch or steal) may pop and recycle it concurrently.
    const std::uint64_t TraceId = Item.schedThreadId();
    Queue->pushBack(Item);
    STING_TRACE_EVENT(Enqueue, TraceId,
                      obs::enqueuePayload(Queue->size(),
                                          static_cast<std::uint8_t>(Reason)));
  }

  bool hasReadyWork(const VirtualProcessor &) const override {
    return !Queue->empty();
  }

  /// The queue is machine-global, so every VP reports the same depth; the
  /// sampler's per-machine sum over-counts by numVps-1. Attribute the
  /// depth to VP 0 only so the aggregate stays truthful.
  void loadDepths(const VirtualProcessor &Vp, std::uint64_t &ReadyDepth,
                  std::uint64_t &MailboxDepth) const override {
    ReadyDepth = Vp.index() == 0 ? Queue->size() : 0;
    MailboxDepth = 0;
  }

  void drain(VirtualProcessor &,
             const std::function<void(Schedulable &)> &Drop) override {
    Queue->drainInto(Drop); // first VP drains everything; the rest no-op
  }

private:
  std::shared_ptr<ReadyQueue> Queue;
};

} // namespace

PolicyFactory makeGlobalFifoPolicy() {
  auto Shared = std::make_shared<ReadyQueue>();
  return [Shared](VirtualMachine &, unsigned) {
    return std::make_unique<GlobalFifoPolicy>(Shared);
  };
}

} // namespace sting
