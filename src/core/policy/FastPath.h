//===- core/policy/FastPath.h - Shared lock-free policy plumbing -*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The owner/remote split shared by the deque-backed policies (local FIFO,
/// local LIFO, steal-half): an enqueue performed *by the VP that owns the
/// queue* goes straight to the Chase-Lev deque; everything else — unparks
/// from sibling VPs, the preemption clock, off-machine callers — posts to
/// the owner's MPSC mailbox, which the owner drains at the top of every
/// dispatch. See DESIGN.md section 8 for the full protocol.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_POLICY_FASTPATH_H
#define STING_CORE_POLICY_FASTPATH_H

#include "core/Current.h"
#include "core/VirtualProcessor.h"
#include "core/policy/RemoteMailbox.h"
#include "core/policy/WorkStealingDeque.h"

#include <cstdint>

namespace sting::fastpath {

/// True when the calling thread is dispatching for \p Vp — the only case
/// allowed to touch the owner end of \p Vp's deque. A policy instance is
/// owned by exactly one VP, and every PolicyManager entry point receives
/// that VP, so this is the complete owner test.
inline bool onOwner(const VirtualProcessor &Vp) { return currentVp() == &Vp; }

/// Remote-enqueue path: posts \p Item to \p Vp's mailbox and charges the
/// target's (shared-writer) counters. The caller's reference to a Thread
/// item transfers to the mailbox exactly as it would to a ready queue.
inline void postRemote(RemoteMailbox &Mailbox, Schedulable &Item,
                       VirtualProcessor &Vp, EnqueueReason Reason) {
  // Read the id before publishing: once the item is visible the owner may
  // drain, dispatch and recycle it concurrently.
  const std::uint64_t TraceId = Item.schedThreadId();
  const bool Ring = Mailbox.post(Item);
  Vp.stats().MailboxPosts.incShared();
  STING_TRACE_EVENT(MailboxPost, TraceId,
                    obs::mailboxPostPayload(Vp.index(), Ring));
  STING_TRACE_EVENT(Enqueue, TraceId,
                    obs::enqueuePayload(Mailbox.size(),
                                        static_cast<std::uint8_t>(Reason)));
}

/// Owner-side drain: moves every published mailbox item into the owner's
/// structures via \p Consume and charges the drain counters. Costs two
/// uncontended loads when the mailbox is empty (the common case).
template <typename Fn>
inline void drainMailbox(RemoteMailbox &Mailbox, VirtualProcessor &Vp,
                         Fn &&Consume) {
  if (Mailbox.empty())
    return;
  std::size_t N = Mailbox.drain(static_cast<Fn &&>(Consume));
  if (N == 0)
    return;
  Vp.stats().MailboxDrains.add(N);
  STING_TRACE_EVENT(MailboxDrain, 0,
                    N > 0xffffffff ? 0xffffffffu
                                   : static_cast<std::uint32_t>(N));
}

/// The whole fast path as one value: a Chase-Lev deque plus a remote
/// mailbox plus the owner test, for *out-of-tree* policy managers that
/// want the lock-free protocol without re-deriving it (the in-tree
/// deque-backed policies compose the pieces directly because they
/// interleave extra structures — e.g. steal-half's private queue —
/// between the drain and the pop).
///
/// Usage, from each PolicyManager entry point:
///
///   void enqueueThread(Schedulable &S, VirtualProcessor &Vp,
///                      EnqueueReason R) override { Q.enqueue(S, Vp, R); }
///   Schedulable *getNextThread(VirtualProcessor &Vp) override {
///     return Q.dequeue(Vp);
///   }
///   bool hasReadyWork(const VirtualProcessor &) const override {
///     return Q.hasReadyWork();
///   }
///   void drain(VirtualProcessor &Vp, const Drop &D) override {
///     Q.drainAll(Vp, D);
///   }
///
/// stealTop() is the victim end for cross-instance work stealing.
class FastPathQueue {
public:
  explicit FastPathQueue(std::size_t MailboxCapacity = 1024)
      : Mailbox(MailboxCapacity) {}

  /// Routes by ownership: the owner pushes straight onto the deque
  /// bottom, everyone else posts to the mailbox (with the standard
  /// counters and trace events on both paths).
  void enqueue(Schedulable &Item, VirtualProcessor &Vp,
               EnqueueReason Reason) {
    if (!onOwner(Vp))
      return postRemote(Mailbox, Item, Vp, Reason);
    const std::uint64_t TraceId = Item.schedThreadId();
    Deque.pushBottom(Item);
    STING_TRACE_EVENT(Enqueue, TraceId,
                      obs::enqueuePayload(Deque.size(),
                                          static_cast<std::uint8_t>(Reason)));
  }

  /// Owner-side dispatch: drains the mailbox into the deque, then takes
  /// from the top (FIFO order across both paths).
  Schedulable *dequeue(VirtualProcessor &Vp) {
    drainMailbox(Mailbox, Vp,
                 [this](Schedulable &Item) { Deque.pushBottom(Item); });
    return Deque.takeTop();
  }

  /// Readable from any thread (idle PPs, the watchdog).
  bool hasReadyWork() const { return !Deque.empty() || !Mailbox.empty(); }

  /// Victim end for sibling policies: one element off the top, or null.
  Schedulable *stealTop() {
    Schedulable *Item = nullptr;
    while (Deque.steal(Item) == WorkStealingDeque::StealResult::Lost) {
    }
    return Item;
  }

  /// Shutdown drain (runs single-threaded after the PPs have joined).
  template <typename Fn> void drainAll(VirtualProcessor &, Fn &&Drop) {
    Mailbox.drain(Drop);
    while (Schedulable *Item = Deque.takeTop())
      Drop(*Item);
  }

private:
  WorkStealingDeque Deque;
  RemoteMailbox Mailbox;
};

} // namespace sting::fastpath

#endif // STING_CORE_POLICY_FASTPATH_H
