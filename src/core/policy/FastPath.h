//===- core/policy/FastPath.h - Shared lock-free policy plumbing -*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The owner/remote split shared by the deque-backed policies (local FIFO,
/// local LIFO, steal-half): an enqueue performed *by the VP that owns the
/// queue* goes straight to the Chase-Lev deque; everything else — unparks
/// from sibling VPs, the preemption clock, off-machine callers — posts to
/// the owner's MPSC mailbox, which the owner drains at the top of every
/// dispatch. See DESIGN.md section 8 for the full protocol.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_POLICY_FASTPATH_H
#define STING_CORE_POLICY_FASTPATH_H

#include "core/Current.h"
#include "core/VirtualProcessor.h"
#include "core/policy/RemoteMailbox.h"
#include "core/policy/WorkStealingDeque.h"

#include <cstdint>

namespace sting::fastpath {

/// True when the calling thread is dispatching for \p Vp — the only case
/// allowed to touch the owner end of \p Vp's deque. A policy instance is
/// owned by exactly one VP, and every PolicyManager entry point receives
/// that VP, so this is the complete owner test.
inline bool onOwner(const VirtualProcessor &Vp) { return currentVp() == &Vp; }

/// Remote-enqueue path: posts \p Item to \p Vp's mailbox and charges the
/// target's (shared-writer) counters. The caller's reference to a Thread
/// item transfers to the mailbox exactly as it would to a ready queue.
inline void postRemote(RemoteMailbox &Mailbox, Schedulable &Item,
                       VirtualProcessor &Vp, EnqueueReason Reason) {
  // Read the id before publishing: once the item is visible the owner may
  // drain, dispatch and recycle it concurrently.
  const std::uint64_t TraceId = Item.schedThreadId();
  const bool Ring = Mailbox.post(Item);
  Vp.stats().MailboxPosts.incShared();
  STING_TRACE_EVENT(MailboxPost, TraceId,
                    obs::mailboxPostPayload(Vp.index(), Ring));
  STING_TRACE_EVENT(Enqueue, TraceId,
                    obs::enqueuePayload(Mailbox.size(),
                                        static_cast<std::uint8_t>(Reason)));
}

/// Owner-side drain: moves every published mailbox item into the owner's
/// structures via \p Consume and charges the drain counters. Costs two
/// uncontended loads when the mailbox is empty (the common case).
template <typename Fn>
inline void drainMailbox(RemoteMailbox &Mailbox, VirtualProcessor &Vp,
                         Fn &&Consume) {
  if (Mailbox.empty())
    return;
  std::size_t N = Mailbox.drain(static_cast<Fn &&>(Consume));
  if (N == 0)
    return;
  Vp.stats().MailboxDrains.add(N);
  STING_TRACE_EVENT(MailboxDrain, 0,
                    N > 0xffffffff ? 0xffffffffu
                                   : static_cast<std::uint32_t>(N));
}

} // namespace sting::fastpath

#endif // STING_CORE_POLICY_FASTPATH_H
