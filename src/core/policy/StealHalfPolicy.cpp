//===- core/policy/StealHalfPolicy.cpp - Two-level queues + migration ------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// The migration-capable policy from the paper's design discussion
// (section 3.3): threads are classified by granularity — evaluating TCBs
// live on a VP-private queue that is never a migration target, while
// scheduled threads live on a public queue from which idle VPs steal half.
// This realizes "only scheduled threads can be migrated ... the evaluating
// thread queue is local to the VP on which it was created", which lets the
// private queue skip ready-queue contention entirely.
//
// Backed by the lock-free fast path (DESIGN.md section 8): the public
// queue is a Chase-Lev deque — the owner pushes/pops without locks and an
// idle sibling steals a batch of up to half the visible elements from the
// top, one CAS per element, preserving FIFO order. The private queue is a
// plain intrusive list (owner-only by construction; remote wakeups of
// pinned TCBs arrive through the mailbox and are routed by the owner).
//
//===----------------------------------------------------------------------===//

#include "core/PolicyManager.h"

#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "core/policy/FastPath.h"
#include "support/Chaos.h"
#include "support/Random.h"

#include <memory>
#include <vector>

namespace sting {

namespace {

class StealHalfPolicy;

/// Registry shared by all instances so an idle VP can find victims.
struct StealRegistry {
  std::vector<StealHalfPolicy *> Members;
};

class StealHalfPolicy final : public PolicyManager {
public:
  StealHalfPolicy(VirtualMachine &Vm, unsigned VpIndex,
                  std::shared_ptr<StealRegistry> Registry)
      : Vm(&Vm), VpIndex(VpIndex), Registry(std::move(Registry)) {
    if (this->Registry->Members.size() <= VpIndex)
      this->Registry->Members.resize(VpIndex + 1, nullptr);
    this->Registry->Members[VpIndex] = this;
  }

  Schedulable *getNextThread(VirtualProcessor &Vp) override {
    fastpath::drainMailbox(Mailbox, Vp,
                          [&](Schedulable &Item) { route(Item); });
    // Private (evaluating) work first: resuming a blocked thread preserves
    // its warm TCB; then local public threads in FIFO order.
    if (!Private.empty()) {
      Schedulable &Item = Private.popFront();
      PrivateSize.store(PrivateSize.load(std::memory_order_relaxed) - 1,
                        std::memory_order_release);
      return &Item;
    }
    return Public.takeTop();
  }

  void enqueueThread(Schedulable &Item, VirtualProcessor &Vp,
                     EnqueueReason Reason) override {
    if (!fastpath::onOwner(Vp))
      return fastpath::postRemote(Mailbox, Item, Vp, Reason);
    // Read the id before publishing: once the item is visible in a queue
    // another VP (dispatch or steal) may pop and recycle it concurrently.
    const std::uint64_t TraceId = Item.schedThreadId();
    std::size_t Depth;
    if (Item.isTcb()) {
      pushPrivate(Item);
      Depth = PrivateSize.load(std::memory_order_relaxed);
    } else {
      Public.pushBottom(Item);
      Depth = Public.size();
    }
    STING_TRACE_EVENT(Enqueue, TraceId,
                      obs::enqueuePayload(Depth,
                                          static_cast<std::uint8_t>(Reason)));
  }

  bool hasReadyWork(const VirtualProcessor &) const override {
    return PrivateSize.load(std::memory_order_acquire) != 0 ||
           !Public.empty() || !Mailbox.empty();
  }

  void loadDepths(const VirtualProcessor &, std::uint64_t &ReadyDepth,
                  std::uint64_t &MailboxDepth) const override {
    ReadyDepth = PrivateSize.load(std::memory_order_acquire) + Public.size();
    MailboxDepth = Mailbox.size();
  }

  Schedulable *vpIdle(VirtualProcessor &Vp) override {
    // Dynamic load balancing in two phases. First, randomized two-choice
    // selection: probe two distinct random siblings and steal from the one
    // with the deeper visible deque. Power-of-two-choices keeps thieves
    // from convoying on the same victim (the failure mode of a fixed scan
    // order when one VP holds all the work and many VPs go idle at once)
    // while staying O(1) per idle transition. The RNG is a private
    // Xoshiro256 seeded from (chaos seed, VP index), so chaos soak runs
    // replay the same probe sequence for a given seed. Second, if both
    // probes come up empty, fall back to the exhaustive nearest-first
    // sweep — randomized probing alone could starve a two-VP machine or
    // miss the single busy sibling indefinitely.
    const auto &Members = Registry->Members;
    const std::size_t N = Members.size();
    if (N > 2) {
      std::size_t Ia = siblingIndex(N);
      std::size_t Ib = siblingIndex(N);
      // Re-draw once for distinctness; a duplicate pair degrades to a
      // single probe, which the fallback sweep below covers anyway.
      if (Ib == Ia)
        Ib = siblingIndex(N);
      StealHalfPolicy *A = Registry->Members[Ia];
      StealHalfPolicy *B = Ib == Ia ? nullptr : Registry->Members[Ib];
      if (A && B && B->Public.size() > A->Public.size())
        std::swap(A, B);
      for (StealHalfPolicy *Victim : {A, B})
        if (Victim && Victim != this)
          if (Schedulable *Item = stealFrom(*Victim, Vp))
            return Item;
    }
    for (std::size_t Hop = 1; Hop < N; ++Hop) {
      StealHalfPolicy *Victim = Members[(VpIndex + Hop) % N];
      if (!Victim || Victim == this)
        continue;
      if (Schedulable *Item = stealFrom(*Victim, Vp))
        return Item;
    }
    return nullptr;
  }

  void drain(VirtualProcessor &,
             const std::function<void(Schedulable &)> &Drop) override {
    // Runs single-threaded after the PPs have joined.
    Mailbox.drain(Drop);
    while (!Private.empty()) {
      PrivateSize.store(PrivateSize.load(std::memory_order_relaxed) - 1,
                        std::memory_order_release);
      Drop(Private.popFront());
    }
    while (Schedulable *Item = Public.takeTop())
      Drop(*Item);
  }

  std::uint64_t StealsPerformed = 0;

private:
  /// Picks a random registry index other than our own. Requires N > 1.
  std::size_t siblingIndex(std::size_t N) {
    std::size_t Pick = StealRng.nextBelow(N - 1);
    if (Pick >= VpIndex)
      ++Pick; // skew past our own slot
    return Pick;
  }

  /// Steals up to half of \p Victim's visible public deque, one CAS per
  /// element. Elements come off the victim's top (its FIFO end), so the
  /// batch preserves the victim's dispatch order; the first stolen element
  /// dispatches here immediately and the rest are pushed to our own deque
  /// bottom, where takeTop recovers the same order. \returns the element
  /// to dispatch, or null if nothing was moved.
  Schedulable *stealFrom(StealHalfPolicy &Victim, VirtualProcessor &Vp) {
    std::size_t Visible = Victim.Public.size();
    if (Visible == 0)
      return nullptr;
    if (STING_CHAOS_FIRE(StealDeny)) {
      STING_TRACE_EVENT(ChaosInject, 0,
                        static_cast<std::uint32_t>(chaos::Site::StealDeny));
      return nullptr;
    }
    std::size_t Target = Visible / 2 + (Visible % 2); // at least 1
    Schedulable *First = nullptr;
    std::size_t Moved = 0;
    while (Moved != Target) {
      Schedulable *Item = nullptr;
      WorkStealingDeque::StealResult R = Victim.Public.steal(Item);
      if (R == WorkStealingDeque::StealResult::Lost) {
        Vp.stats().DequeStealCas.inc();
        // Another thief (or the victim's last-element pop) won; the
        // deque may still hold work, so retry the same victim.
        continue;
      }
      if (R == WorkStealingDeque::StealResult::Empty)
        break;
      if (First)
        Public.pushBottom(*Item);
      else
        First = Item;
      ++Moved;
    }
    if (Moved == 0)
      return nullptr;
    ++StealsPerformed;
    Vp.stats().DequeSteals.add(Moved);
    STING_TRACE_EVENT(Migrate, 0,
                      static_cast<std::uint32_t>(
                          Moved > 0xffffffff ? 0xffffffff : Moved));
    if (Moved > 1)
      Vp.vm().notifyWork();
    return First;
  }

  void pushPrivate(Schedulable &Item) {
    Private.pushBack(Item);
    PrivateSize.store(PrivateSize.load(std::memory_order_relaxed) + 1,
                      std::memory_order_release);
  }

  /// Mailbox-drain router: pinned TCBs rejoin the private queue, raw
  /// threads become public (and thus stealable) work.
  void route(Schedulable &Item) {
    if (Item.isTcb())
      pushPrivate(Item);
    else
      Public.pushBottom(Item);
  }

  VirtualMachine *Vm;
  unsigned VpIndex;
  std::shared_ptr<StealRegistry> Registry;

  /// Victim-probe RNG, owner-only (vpIdle runs on the VP's dispatcher).
  /// Seeded from (chaos seed, VP index) so a chaos run's probe sequence is
  /// a pure function of the seed; outside chaos builds the seed defaults
  /// to 1 and runs are still repeatable.
  Xoshiro256 StealRng{chaos::seed() * 0x9E3779B97F4A7C15ull + VpIndex + 1};

  /// Evaluating TCBs; never a migration target. Owner-only plain list —
  /// the size mirror is atomic because hasReadyWork is read cross-thread
  /// (idle PPs, the watchdog's heartbeat sampler).
  IntrusiveList<Schedulable, ReadyQueueTag> Private;
  std::atomic<std::size_t> PrivateSize{0};

  WorkStealingDeque Public; ///< scheduled threads; migratable
  RemoteMailbox Mailbox;
};

} // namespace

PolicyFactory makeStealHalfPolicy() {
  auto Registry = std::make_shared<StealRegistry>();
  return [Registry](VirtualMachine &Vm, unsigned VpIndex) {
    return std::make_unique<StealHalfPolicy>(Vm, VpIndex, Registry);
  };
}

} // namespace sting
