//===- core/policy/StealHalfPolicy.cpp - Two-level queues + migration ------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// The migration-capable policy from the paper's design discussion
// (section 3.3): threads are classified by granularity — evaluating TCBs
// live on a VP-private queue that is never a migration target, while
// scheduled threads live on a public queue from which idle VPs steal half.
// This realizes "only scheduled threads can be migrated ... the evaluating
// thread queue is local to the VP on which it was created", which lets the
// private queue skip ready-queue contention entirely.
//
//===----------------------------------------------------------------------===//

#include "core/PolicyManager.h"

#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "core/policy/ReadyQueue.h"

#include <memory>
#include <vector>

namespace sting {

namespace {

class StealHalfPolicy;

/// Registry shared by all instances so an idle VP can find victims.
struct StealRegistry {
  std::vector<StealHalfPolicy *> Members;
};

class StealHalfPolicy final : public PolicyManager {
public:
  StealHalfPolicy(VirtualMachine &Vm, unsigned VpIndex,
                  std::shared_ptr<StealRegistry> Registry)
      : Vm(&Vm), VpIndex(VpIndex), Registry(std::move(Registry)) {
    if (this->Registry->Members.size() <= VpIndex)
      this->Registry->Members.resize(VpIndex + 1, nullptr);
    this->Registry->Members[VpIndex] = this;
  }

  Schedulable *getNextThread(VirtualProcessor &) override {
    // Private (evaluating) work first: resuming a blocked thread preserves
    // its warm TCB; then local public threads.
    if (Schedulable *Item = Private.popFront())
      return Item;
    return Public.popFront();
  }

  void enqueueThread(Schedulable &Item, VirtualProcessor &,
                     EnqueueReason Reason) override {
    // Read the id before publishing: once the item is visible in a queue
    // another VP (dispatch or steal) may pop and recycle it concurrently.
    const std::uint64_t TraceId = Item.schedThreadId();
    // Granularity split: TCBs are pinned (their stacks and heaps are cached
    // on this VP); raw threads are fair game for migration.
    std::size_t Depth;
    if (Item.isTcb()) {
      Private.pushBack(Item);
      Depth = Private.size();
    } else {
      Public.pushBack(Item);
      Depth = Public.size();
    }
    STING_TRACE_EVENT(Enqueue, TraceId,
                      obs::enqueuePayload(Depth,
                                          static_cast<std::uint8_t>(Reason)));
  }

  bool hasReadyWork(const VirtualProcessor &) const override {
    return !Private.empty() || !Public.empty();
  }

  Schedulable *vpIdle(VirtualProcessor &Vp) override {
    // Dynamic load balancing: scan siblings (nearest first in index order)
    // and steal half of the first non-empty public queue.
    const auto &Members = Registry->Members;
    const std::size_t N = Members.size();
    for (std::size_t Hop = 1; Hop < N; ++Hop) {
      StealHalfPolicy *Victim = Members[(VpIndex + Hop) % N];
      if (!Victim || Victim == this || Victim->Public.empty())
        continue;
      std::size_t Moved = Victim->Public.popHalfInto(Public);
      if (Moved != 0) {
        ++StealsPerformed;
        STING_TRACE_EVENT(Migrate, 0,
                          static_cast<std::uint32_t>(
                              Moved > 0xffffffff ? 0xffffffff : Moved));
        Vp.vm().notifyWork();
        return Public.popFront();
      }
    }
    return nullptr;
  }

  void drain(VirtualProcessor &,
             const std::function<void(Schedulable &)> &Drop) override {
    Private.drainInto(Drop);
    Public.drainInto(Drop);
  }

  std::uint64_t StealsPerformed = 0;

private:
  VirtualMachine *Vm;
  unsigned VpIndex;
  std::shared_ptr<StealRegistry> Registry;
  ReadyQueue Private; ///< evaluating TCBs; never a migration target
  ReadyQueue Public;  ///< scheduled threads; migratable
};

} // namespace

PolicyFactory makeStealHalfPolicy() {
  auto Registry = std::make_shared<StealRegistry>();
  return [Registry](VirtualMachine &Vm, unsigned VpIndex) {
    return std::make_unique<StealHalfPolicy>(Vm, VpIndex, Registry);
  };
}

} // namespace sting
