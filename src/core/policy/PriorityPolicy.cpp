//===- core/policy/PriorityPolicy.cpp - Priority scheduling ----------------===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
// Per-VP priority queues: larger Thread::priority dispatches first, FIFO
// among equals. This is the scheduling half of the paper's speculative
// support — "promising tasks can execute before unlikely ones because
// priorities are programmable" (section 4.3).
//
//===----------------------------------------------------------------------===//

#include "core/PolicyManager.h"

#include "core/VirtualMachine.h"
#include "core/VirtualProcessor.h"
#include "support/SpinLock.h"

#include <map>
#include <memory>
#include <mutex>

namespace sting {

namespace {

class PriorityPolicy final : public PolicyManager {
public:
  PriorityPolicy(VirtualMachine &Vm,
                 std::shared_ptr<std::atomic<unsigned>> PlacementCursor)
      : Vm(&Vm), PlacementCursor(std::move(PlacementCursor)) {}

  Schedulable *getNextThread(VirtualProcessor &) override {
    if (Size.load(std::memory_order_acquire) == 0)
      return nullptr;
    std::lock_guard<SpinLock> Guard(Lock);
    if (Items.empty())
      return nullptr;
    auto First = Items.begin();
    Schedulable *Item = First->second;
    Items.erase(First);
    Size.fetch_sub(1, std::memory_order_release);
    return Item;
  }

  void enqueueThread(Schedulable &Item, VirtualProcessor &,
                     EnqueueReason Reason) override {
    // Read the id before publishing: once the item is visible in a queue
    // another VP (dispatch or steal) may pop and recycle it concurrently.
    const std::uint64_t TraceId = Item.schedThreadId();
    std::size_t Depth;
    {
      std::lock_guard<SpinLock> Guard(Lock);
      // multimap keeps equal keys in insertion order -> FIFO within a level.
      Items.emplace(Item.schedPriority(), &Item);
      Depth = Size.fetch_add(1, std::memory_order_release) + 1;
    }
    STING_TRACE_EVENT(Enqueue, TraceId,
                      obs::enqueuePayload(Depth,
                                          static_cast<std::uint8_t>(Reason)));
  }

  bool hasReadyWork(const VirtualProcessor &) const override {
    return Size.load(std::memory_order_acquire) != 0;
  }

  void loadDepths(const VirtualProcessor &, std::uint64_t &ReadyDepth,
                  std::uint64_t &MailboxDepth) const override {
    ReadyDepth = Size.load(std::memory_order_acquire);
    MailboxDepth = 0;
  }

  VirtualProcessor &selectVpForNewThread(VirtualProcessor &) override {
    unsigned I = PlacementCursor->fetch_add(1, std::memory_order_relaxed);
    return Vm->vp(I % Vm->numVps());
  }

  void drain(VirtualProcessor &,
             const std::function<void(Schedulable &)> &Drop) override {
    std::lock_guard<SpinLock> Guard(Lock);
    for (auto &[Priority, Item] : Items)
      Drop(*Item);
    Items.clear();
    Size.store(0, std::memory_order_release);
  }

private:
  VirtualMachine *Vm;
  std::shared_ptr<std::atomic<unsigned>> PlacementCursor;
  SpinLock Lock;
  std::multimap<int, Schedulable *, std::greater<int>> Items;
  std::atomic<std::size_t> Size{0};
};

} // namespace

PolicyFactory makePriorityPolicy() {
  auto Cursor = std::make_shared<std::atomic<unsigned>>(0);
  return [Cursor](VirtualMachine &Vm, unsigned) {
    return std::make_unique<PriorityPolicy>(Vm, Cursor);
  };
}

} // namespace sting
