//===- core/policy/WorkStealingDeque.h - Chase-Lev deque --------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Chase-Lev work-stealing deque of Schedulable pointers — the lock-free
/// public queue behind the built-in per-VP policies (DESIGN.md section 8).
/// The owning VP pushes and pops at the bottom with no atomic RMW on the
/// uncontended path; thieves (and the owner, when it wants FIFO order)
/// take from the top with a single CAS. This realizes the paper's
/// "Serialization" policy axis: the local enqueue/dispatch fast path
/// bypasses locking entirely, and only the migration edge pays a CAS.
///
/// Memory-order notes (after Le, Pop, Cohen & Nardelli, "Correct and
/// Efficient Work-Stealing for Weak Memory Models", PPoPP'13), adapted to
/// seq_cst operations on Top/Bottom instead of standalone fences because
/// ThreadSanitizer models atomic operations precisely but only
/// approximates fences:
///
///   * popBottom publishes the decremented Bottom with seq_cst, then reads
///     Top with seq_cst; steal reads Top then Bottom the same way. The
///     single total order over these four accesses guarantees that when
///     owner and thief race for the last element, at least one of them
///     sees the other and the Top CAS arbitrates.
///   * pushBottom's slot store is made visible by the release store of
///     Bottom; steal's acquire load of Bottom therefore sees the element
///     (and everything the enqueuer wrote into it) before reading the
///     slot.
///   * A slot is only overwritten after the owner re-reads Top (acquire)
///     and finds it advanced past that index, which synchronizes with the
///     successful thief CAS (release) — so a thief's slot read always
///     happens-before the owner's overwrite.
///
/// The ring grows by doubling; retired rings are kept on a chain until the
/// deque is destroyed, so a thief holding a stale ring pointer can always
/// complete its read (its CAS on Top then decides whether the read
/// counts). Indices are 64-bit and never wrap in practice.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_POLICY_WORKSTEALINGDEQUE_H
#define STING_CORE_POLICY_WORKSTEALINGDEQUE_H

#include "core/Schedulable.h"
#include "support/Debug.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace sting {

/// A lock-free work-stealing deque. Exactly one owner thread may call
/// pushBottom/popBottom/takeTop; any thread may call steal/size/empty.
class WorkStealingDeque {
public:
  /// Outcome of a steal attempt, distinguished so callers can count
  /// contended CAS failures separately from emptiness.
  enum class StealResult : std::uint8_t {
    Ok,    ///< an element was transferred
    Empty, ///< the deque was observed empty
    Lost,  ///< another consumer won the CAS race; retrying may succeed
  };

  explicit WorkStealingDeque(std::size_t InitialCapacity = 256)
      : Buf(Ring::alloc(roundUpPow2(InitialCapacity), nullptr)) {}

  WorkStealingDeque(const WorkStealingDeque &) = delete;
  WorkStealingDeque &operator=(const WorkStealingDeque &) = delete;

  ~WorkStealingDeque() {
    Ring *R = Buf.load(std::memory_order_relaxed);
    while (R) {
      Ring *Prev = R->Prev;
      Ring::free(R);
      R = Prev;
    }
  }

  /// Owner-only: appends \p Item at the bottom. Lock-free; grows the ring
  /// when full (amortized O(1), old rings are retired, not freed).
  void pushBottom(Schedulable &Item) {
    std::int64_t B = Bottom.load(std::memory_order_relaxed);
    std::int64_t T = Top.load(std::memory_order_acquire);
    Ring *A = Buf.load(std::memory_order_relaxed);
    if (B - T > static_cast<std::int64_t>(A->Capacity) - 1)
      A = grow(A, B, T);
    A->slot(B).store(&Item, std::memory_order_relaxed);
    Bottom.store(B + 1, std::memory_order_release);
  }

  /// Owner-only: removes and \returns the most recently pushed element
  /// (LIFO), or null if empty. No atomic RMW unless the deque holds
  /// exactly one element (the take/steal race, arbitrated by CAS on Top).
  Schedulable *popBottom() {
    std::int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Ring *A = Buf.load(std::memory_order_relaxed);
    Bottom.store(B, std::memory_order_seq_cst);
    std::int64_t T = Top.load(std::memory_order_seq_cst);
    if (T > B) {
      // Already empty; restore the canonical empty shape.
      Bottom.store(B + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Schedulable *X = A->slot(B).load(std::memory_order_relaxed);
    if (T == B) {
      // Last element: race a concurrent steal for it.
      if (!Top.compare_exchange_strong(T, T + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed))
        X = nullptr; // a thief got it
      Bottom.store(B + 1, std::memory_order_relaxed);
    }
    return X;
  }

  /// Any thread: attempts to transfer the oldest element (FIFO end) into
  /// \p Out. On StealResult::Lost the caller may retry.
  StealResult steal(Schedulable *&Out) {
    std::int64_t T = Top.load(std::memory_order_seq_cst);
    std::int64_t B = Bottom.load(std::memory_order_seq_cst);
    if (T >= B)
      return StealResult::Empty;
    Ring *A = Buf.load(std::memory_order_acquire);
    Schedulable *X = A->slot(T).load(std::memory_order_relaxed);
    if (!Top.compare_exchange_strong(T, T + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return StealResult::Lost;
    Out = X;
    return StealResult::Ok;
  }

  /// Owner-only FIFO pop: takes from the top via the steal path (one CAS,
  /// uncontended unless a thief races). \returns null when empty.
  Schedulable *takeTop() {
    for (;;) {
      Schedulable *Out = nullptr;
      switch (steal(Out)) {
      case StealResult::Ok:
        return Out;
      case StealResult::Empty:
        return nullptr;
      case StealResult::Lost:
        continue; // a thief advanced Top under us; re-read and retry
      }
    }
  }

  /// Approximate element count; exact when no operation is in flight.
  std::size_t size() const {
    std::int64_t B = Bottom.load(std::memory_order_acquire);
    std::int64_t T = Top.load(std::memory_order_acquire);
    return B > T ? static_cast<std::size_t>(B - T) : 0;
  }

  bool empty() const { return size() == 0; }

  /// Current ring capacity (tests and diagnostics).
  std::size_t capacity() const {
    return Buf.load(std::memory_order_acquire)->Capacity;
  }

private:
  struct Ring {
    std::size_t Capacity; ///< power of two
    Ring *Prev;           ///< retired predecessor, freed at destruction
    // Slots follow the header in the same allocation.

    std::atomic<Schedulable *> &slot(std::int64_t I) {
      auto *Slots = reinterpret_cast<std::atomic<Schedulable *> *>(this + 1);
      return Slots[static_cast<std::size_t>(I) & (Capacity - 1)];
    }

    static Ring *alloc(std::size_t Capacity, Ring *Prev) {
      void *Mem = ::operator new(
          sizeof(Ring) + Capacity * sizeof(std::atomic<Schedulable *>),
          std::align_val_t{alignof(Ring)});
      Ring *R = static_cast<Ring *>(Mem);
      R->Capacity = Capacity;
      R->Prev = Prev;
      for (std::size_t I = 0; I != Capacity; ++I)
        new (reinterpret_cast<std::atomic<Schedulable *> *>(R + 1) + I)
            std::atomic<Schedulable *>(nullptr);
      return R;
    }

    static void free(Ring *R) {
      ::operator delete(R, std::align_val_t{alignof(Ring)});
    }
  };

  static std::size_t roundUpPow2(std::size_t N) {
    std::size_t P = 8;
    while (P < N)
      P <<= 1;
    return P;
  }

  /// Owner-only: doubles the ring, copying the live window [T, B). The old
  /// ring stays reachable (chained) for thieves still reading it.
  Ring *grow(Ring *Old, std::int64_t B, std::int64_t T) {
    Ring *New = Ring::alloc(Old->Capacity * 2, Old);
    for (std::int64_t I = T; I != B; ++I)
      New->slot(I).store(Old->slot(I).load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    Buf.store(New, std::memory_order_release);
    return New;
  }

  // Top and Bottom are the two contended words; keep them (and the ring
  // pointer) on separate cache lines so thieves hammering Top never evict
  // the owner's Bottom line (see the false-sharing notes in DESIGN.md §8).
  alignas(64) std::atomic<std::int64_t> Top{0};
  alignas(64) std::atomic<std::int64_t> Bottom{0};
  alignas(64) std::atomic<Ring *> Buf;
};

} // namespace sting

#endif // STING_CORE_POLICY_WORKSTEALINGDEQUE_H
