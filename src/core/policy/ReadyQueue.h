//===- core/policy/ReadyQueue.h - Locked ready queue -----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The building block of the built-in policy managers: an intrusive list of
/// Schedulable items with a spin lock and a lock-free emptiness probe. The
/// paper's "Serialization" policy axis is about where instances of this
/// structure sit (per VP vs. machine-global) and which operations bypass
/// the lock.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_POLICY_READYQUEUE_H
#define STING_CORE_POLICY_READYQUEUE_H

#include "core/Schedulable.h"
#include "support/SpinLock.h"

#include <atomic>
#include <functional>
#include <mutex>

namespace sting {

/// A locked FIFO/LIFO-capable ready queue.
class ReadyQueue {
public:
  void pushBack(Schedulable &Item) {
    std::lock_guard<SpinLock> Guard(Lock);
    Items.pushBack(Item);
    Size.fetch_add(1, std::memory_order_release);
  }

  void pushFront(Schedulable &Item) {
    std::lock_guard<SpinLock> Guard(Lock);
    Items.pushFront(Item);
    Size.fetch_add(1, std::memory_order_release);
  }

  Schedulable *popFront() {
    if (empty())
      return nullptr;
    std::lock_guard<SpinLock> Guard(Lock);
    if (Items.empty())
      return nullptr;
    Size.fetch_sub(1, std::memory_order_release);
    return &Items.popFront();
  }

  /// Moves the back half of this queue (ceil(size/2) items, at least one
  /// when non-empty) to the *front* of \p Out, preserving the segment's
  /// relative order; the migration primitive of locked steal-half
  /// policies. LockFreeQueueTest pins the ordering contract.
  ///
  /// The two locks are never held together: the segment is detached under
  /// this queue's lock into a local list, then spliced under Out's lock —
  /// so two queues stealing from each other concurrently cannot deadlock
  /// (the ABBA hazard the previous nested-lock version had).
  std::size_t popHalfInto(ReadyQueue &Out) {
    IntrusiveList<Schedulable, ReadyQueueTag> Seg;
    std::size_t Taken = 0;
    {
      std::lock_guard<SpinLock> Guard(Lock);
      std::size_t N = Items.size();
      std::size_t Take = N / 2 + (N % 2); // at least 1 when non-empty
      while (Taken != Take && !Items.empty()) {
        // popBack walks newest-first; pushFront rebuilds original order.
        Seg.pushFront(Items.popBack());
        ++Taken;
      }
      Size.fetch_sub(Taken, std::memory_order_release);
    }
    if (Taken == 0)
      return 0;
    std::lock_guard<SpinLock> Guard(Out.Lock);
    while (!Seg.empty())
      Out.Items.pushFront(Seg.popBack());
    Out.Size.fetch_add(Taken, std::memory_order_release);
    return Taken;
  }

  bool empty() const { return Size.load(std::memory_order_acquire) == 0; }
  std::size_t size() const { return Size.load(std::memory_order_acquire); }

  void drainInto(const std::function<void(Schedulable &)> &Drop) {
    std::lock_guard<SpinLock> Guard(Lock);
    while (!Items.empty()) {
      Size.fetch_sub(1, std::memory_order_release);
      Drop(Items.popFront());
    }
  }

private:
  SpinLock Lock;
  IntrusiveList<Schedulable, ReadyQueueTag> Items;
  /// Own line: the lock-free emptiness probe is hammered by idle PPs and
  /// the watchdog, and must not contend with the lock word above.
  alignas(64) std::atomic<std::size_t> Size{0};
};

} // namespace sting

#endif // STING_CORE_POLICY_READYQUEUE_H
