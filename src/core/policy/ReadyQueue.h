//===- core/policy/ReadyQueue.h - Locked ready queue -----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The building block of the built-in policy managers: an intrusive list of
/// Schedulable items with a spin lock and a lock-free emptiness probe. The
/// paper's "Serialization" policy axis is about where instances of this
/// structure sit (per VP vs. machine-global) and which operations bypass
/// the lock.
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_POLICY_READYQUEUE_H
#define STING_CORE_POLICY_READYQUEUE_H

#include "core/Schedulable.h"
#include "support/SpinLock.h"

#include <atomic>
#include <functional>
#include <mutex>

namespace sting {

/// A locked FIFO/LIFO-capable ready queue.
class ReadyQueue {
public:
  void pushBack(Schedulable &Item) {
    std::lock_guard<SpinLock> Guard(Lock);
    Items.pushBack(Item);
    Size.fetch_add(1, std::memory_order_release);
  }

  void pushFront(Schedulable &Item) {
    std::lock_guard<SpinLock> Guard(Lock);
    Items.pushFront(Item);
    Size.fetch_add(1, std::memory_order_release);
  }

  Schedulable *popFront() {
    if (empty())
      return nullptr;
    std::lock_guard<SpinLock> Guard(Lock);
    if (Items.empty())
      return nullptr;
    Size.fetch_sub(1, std::memory_order_release);
    return &Items.popFront();
  }

  /// Moves roughly half of this queue's items (from the back) into \p Out;
  /// the migration primitive of steal-half policies. \returns the count.
  std::size_t popHalfInto(ReadyQueue &Out) {
    std::lock_guard<SpinLock> Guard(Lock);
    std::size_t N = Items.size();
    std::size_t Take = N / 2 + (N % 2); // at least 1 when non-empty
    std::size_t Taken = 0;
    while (Taken != Take && !Items.empty()) {
      Schedulable &Item = Items.popBack();
      Size.fetch_sub(1, std::memory_order_release);
      Out.pushFront(Item);
      ++Taken;
    }
    return Taken;
  }

  bool empty() const { return Size.load(std::memory_order_acquire) == 0; }
  std::size_t size() const { return Size.load(std::memory_order_acquire); }

  void drainInto(const std::function<void(Schedulable &)> &Drop) {
    std::lock_guard<SpinLock> Guard(Lock);
    while (!Items.empty()) {
      Size.fetch_sub(1, std::memory_order_release);
      Drop(Items.popFront());
    }
  }

private:
  SpinLock Lock;
  IntrusiveList<Schedulable, ReadyQueueTag> Items;
  std::atomic<std::size_t> Size{0};
};

} // namespace sting

#endif // STING_CORE_POLICY_READYQUEUE_H
