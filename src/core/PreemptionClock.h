//===- core/PreemptionClock.h - Preemption and timers -----------*- C++ -*-===//
//
// Part of libsting. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine's clock: raises per-VP preemption flags when a thread's
/// quantum expires, and resumes threads suspended with a quantum
/// ("(thread-suspend thread . quantum) ... the thread is resumed when the
/// period specified has elapsed", paper section 3.1).
///
/// Substitution note (DESIGN.md section 1): the paper preempts via timer
/// interrupts; here a watchdog OS thread raises flags that threads observe
/// at thread-controller entry points and explicit checkpoints. The paper's
/// protocol is likewise deferred — a preempted thread "enters the
/// controller", and TCB flag bits may defer the preemption (section 4.2.2).
///
//===----------------------------------------------------------------------===//

#ifndef STING_CORE_PREEMPTIONCLOCK_H
#define STING_CORE_PREEMPTIONCLOCK_H

#include "core/Thread.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sting {

class VirtualMachine;

/// The per-machine watchdog thread.
class PreemptionClock {
public:
  PreemptionClock(VirtualMachine &Vm, std::uint64_t TickNanos,
                  bool PreemptionEnabled);
  ~PreemptionClock();

  PreemptionClock(const PreemptionClock &) = delete;
  PreemptionClock &operator=(const PreemptionClock &) = delete;

  /// Globally enables/disables quantum preemption (per-thread and per-TCB
  /// controls still apply on top).
  void setPreemptionEnabled(bool Enabled);
  bool preemptionEnabled() const {
    return Enabled.load(std::memory_order_relaxed);
  }

  /// Schedules \p T to be resumed (threadRun) \p DelayNanos from now if it
  /// is still suspended at that point.
  void scheduleResume(ThreadRef T, std::uint64_t DelayNanos);

  /// Arms a timed-park timeout: at the absolute monotonic time
  /// \p DeadlineNanos, wakes \p T's TCB if it is still in a timed park
  /// with that exact deadline (ThreadController::deliverTimeout).
  /// parkCurrent arms at most one timer per (TCB, deadline): re-parks of
  /// the same wait reuse the queued timer.
  void scheduleTimeout(ThreadRef T, std::uint64_t DeadlineNanos);

  /// Number of timers currently armed (resumes + park timeouts); a
  /// heartbeat input for the stall watchdog — a machine with live threads,
  /// no ready work and no pending timers is wedged.
  std::size_t pendingTimers() const;

  /// Number of preempt flags raised so far (for tests/benches).
  std::uint64_t preemptsRaised() const {
    return Raised.load(std::memory_order_relaxed);
  }

  void stop();

private:
  void run();
  void fireDueTimers(std::uint64_t Now);
  void raisePreemptFlags(std::uint64_t Now);

  struct Timer {
    enum class Kind : std::uint8_t {
      Resume,        ///< threadRun the target (suspend quantum elapsed)
      KernelTimeout, ///< deliverTimeout to the target's parked TCB
    };
    std::uint64_t DeadlineNanos;
    ThreadRef Target;
    Kind What = Kind::Resume;
    bool operator>(const Timer &RHS) const {
      return DeadlineNanos > RHS.DeadlineNanos;
    }
  };

  VirtualMachine *Vm;
  std::uint64_t TickNanos;
  std::atomic<bool> Enabled;
  std::atomic<bool> Stopping{false};
  std::atomic<std::uint64_t> Raised{0};

  mutable std::mutex TimerLock;
  std::condition_variable TimerCv;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> Timers;

  std::thread Os;
};

/// Scoped preemption disable for the current thread — the paper's
/// (without-preemption body) special form (section 4.2.2). A preemption
/// arriving inside the scope is deferred and honored on exit.
class WithoutPreemption {
public:
  WithoutPreemption();
  ~WithoutPreemption();

  WithoutPreemption(const WithoutPreemption &) = delete;
  WithoutPreemption &operator=(const WithoutPreemption &) = delete;
};

/// The paper's more general (without-interrupts body): defers preemption
/// *and* every asynchronous transition request (terminate, suspend,
/// cross-thread raise) until the scope exits.
class WithoutInterrupts {
public:
  WithoutInterrupts();
  ~WithoutInterrupts();

  WithoutInterrupts(const WithoutInterrupts &) = delete;
  WithoutInterrupts &operator=(const WithoutInterrupts &) = delete;

private:
  WithoutPreemption NoPreempt;
};

} // namespace sting

#endif // STING_CORE_PREEMPTIONCLOCK_H
